(* Legacy-code interoperability (paper §3, §4.1.2): instrumented code
   linking against an uninstrumented library. Tagged pointers flow into
   legacy code unchanged (binary compatibility); pointers coming back
   have their bounds cleared, so no false positives occur — and no
   protection either, exactly the paper's guarantee.

   Run with: dune exec examples/legacy_interop.exe *)

open Core
open Ir

let ip = Ctype.Ptr Ctype.I64

let prog ~off =
  (* an uninstrumented "library": sums an array it receives *)
  let lib_sum =
    func ~instrumented:false "lib_sum" [ ("p", ip); ("n", Ctype.I64) ] Ctype.I64
      [
        Let ("s", Ctype.I64, i 0);
        Let ("k", Ctype.I64, i 0);
        While
          ( v "k" <: v "n",
            [
              Assign ("s", v "s" +: Load (Ctype.I64, Gep (Ctype.I64, v "p", [ at (v "k") ])));
              Assign ("k", v "k" +: i 1);
            ] );
        Return (Some (v "s"));
      ]
  in
  (* legacy allocator-ish helper returning an untagged pointer *)
  let lib_pass =
    func ~instrumented:false "lib_pass" [ ("p", ip) ] ip [ Return (Some (v "p")) ]
  in
  let main =
    func "main" [] Ctype.I64
      [
        Let ("p", ip, Malloc (Ctype.I64, i 8));
        Let ("k", Ctype.I64, i 0);
        While
          ( v "k" <: i 8,
            [
              Store (Ctype.I64, Gep (Ctype.I64, v "p", [ at (v "k") ]), v "k");
              Assign ("k", v "k" +: i 1);
            ] );
        (* the tagged pointer flows into legacy code unchanged *)
        Let ("s", Ctype.I64, Call ("lib_sum", [ v "p"; i 8 ]));
        (* the pointer coming back through legacy code has no bounds *)
        Let ("q", ip, Call ("lib_pass", [ v "p" ]));
        Store (Ctype.I64, Gep (Ctype.I64, v "q", [ at (i off) ]), i 99);
        (* the instrumented pointer itself is still fully protected *)
        Store (Ctype.I64, Gep (Ctype.I64, v "p", [ at (i off) ]), i 99);
        Return (Some (v "s"));
      ]
  in
  program ~tenv:Ctype.empty_tenv ~globals:[] [ lib_sum; lib_pass; main ]

let () =
  print_endline "in-bounds run (off = 3):";
  let r = Vm.run ~config:Vm.ifp_subheap (prog ~off:3) in
  (match r.Vm.outcome with
  | Vm.Finished s -> Printf.printf "  legacy lib_sum computed %Ld over the tagged array\n" s
  | Vm.Trapped t -> Printf.printf "  unexpected trap: %s\n" (Trap.to_string t)
  | Vm.Aborted m -> Printf.printf "  abort: %s\n" (Vm.abort_reason_string m));

  print_endline "\nout-of-bounds run (off = 12, array has 8 elements):";
  let r = Vm.run ~config:Vm.ifp_subheap (prog ~off:12) in
  (match r.Vm.outcome with
  | Vm.Trapped t ->
    Printf.printf "  TRAP on the instrumented access: %s\n" (Trap.to_string t)
  | Vm.Finished _ -> print_endline "  (no trap?)"
  | Vm.Aborted m -> Printf.printf "  abort: %s\n" (Vm.abort_reason_string m));
  print_endline
    "\nnote: the store through the legacy-returned pointer q went through\n\
     silently (bounds cleared at the legacy boundary, §4.1.2), while the\n\
     same store through the instrumented pointer p trapped — partial\n\
     protection for legacy interop, full protection for instrumented code."
