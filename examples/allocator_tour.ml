(* Tour of the three object-metadata schemes: one program whose objects
   land in all of them — a small local (local-offset), heap nodes
   (subheap or wrapped local-offset), and a large global (global table).

   Run with: dune exec examples/allocator_tour.exe *)

open Core
open Ir

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "node";
      fields =
        [
          { fname = "value"; fty = Ctype.I64 };
          { fname = "next"; fty = Ctype.Ptr (Ctype.Struct "node") };
        ];
    }

let np = Ctype.Ptr (Ctype.Struct "node")

let prog =
  let big = global "big_table" (Ctype.Array (Ctype.I64, 256)) (* 2 KiB > 1008 *) in
  let main =
    func "main" [] Ctype.I64
      [
        (* a stack object whose address escapes: local-offset scheme *)
        Decl_local ("acc", Ctype.Struct "node");
        Expr (Call ("bump", [ Addr_local "acc" ]));
        (* heap nodes: subheap scheme (or wrapped local-offset) *)
        Let ("head", np, null (Ctype.Struct "node"));
        Let ("k", Ctype.I64, i 0);
        While
          ( v "k" <: i 100,
            [
              Let ("n", np, Malloc (Ctype.Struct "node", i 1));
              Store (Ctype.I64, Gep (Ctype.Struct "node", v "n", [ fld "value" ]), v "k");
              Store (np, Gep (Ctype.Struct "node", v "n", [ fld "next" ]), v "head");
              Assign ("head", v "n");
              Assign ("k", v "k" +: i 1);
            ] );
        (* a big global indexed dynamically: global-table scheme *)
        Let ("j", Ctype.I64, i 0);
        While
          ( v "j" <: i 256,
            [
              Store (Ctype.I64,
                     Gep (Ctype.Array (Ctype.I64, 256), Addr_global "big_table",
                          [ at (v "j") ]),
                     v "j");
              Assign ("j", v "j" +: i 1);
            ] );
        (* walk the list *)
        Let ("s", Ctype.I64, i 0);
        While
          ( Binop (Ne, v "head", null (Ctype.Struct "node")),
            [
              Assign ("s",
                      v "s" +: Load (Ctype.I64,
                                     Gep (Ctype.Struct "node", v "head", [ fld "value" ])));
              Assign ("head",
                      Load (np, Gep (Ctype.Struct "node", v "head", [ fld "next" ])));
            ] );
        Return (Some (v "s" +: Load (Ctype.I64, Gep (Ctype.Struct "node", Addr_local "acc", [ fld "value" ]))));
      ]
  in
  let bump =
    func "bump" [ ("p", np) ] Ctype.Void
      [
        Store (Ctype.I64, Gep (Ctype.Struct "node", v "p", [ fld "value" ]), i 1000);
        Return None;
      ]
  in
  program ~tenv ~globals:[ big ] [ bump; main ]

let show name cfg =
  let r = Vm.run ~config:cfg prog in
  let c = r.Vm.counters in
  Printf.printf "%-10s %-14s objs: %d local / %d heap / %d global;\n"
    name
    (match r.Vm.outcome with
    | Vm.Finished x -> Printf.sprintf "ret=%Ld" x
    | Vm.Trapped t -> "TRAP " ^ Trap.to_string t
    | Vm.Aborted m -> "ABORT " ^ Vm.abort_reason_string m)
    c.local_objs c.heap_objs c.global_objs;
  Printf.printf "           promotes=%d (valid %d), instr overhead x%.2f, footprint %d B\n"
    (Counters.promotes_total c) c.promotes_valid
    (float_of_int (Counters.total_instrs c)
    /. float_of_int
         (Counters.total_instrs (Vm.run ~config:Vm.baseline prog).Vm.counters))
    r.Vm.mem_footprint;
  List.iter (fun (k, n) -> Printf.printf "           alloc %s = %d\n" k n)
    r.Vm.alloc_extra

let () =
  print_endline "same program under the three allocator configurations:\n";
  show "baseline" Vm.baseline;
  show "subheap" Vm.ifp_subheap;
  show "wrapped" Vm.ifp_wrapped
