(* Quickstart: drive the In-Fat Pointer machinery directly through the
   library API — no compiler, no VM. We set up a metadata context,
   register one object under the local-offset scheme, move a pointer
   around with the IFP instructions, and watch promote retrieve (and
   narrow) its bounds.

   Run with: dune exec examples/quickstart.exe *)

open Core

let () =
  (* a simulated machine with regions for the heap-ish object, layout
     tables and the global metadata table *)
  let mem = Memory.create () in
  Memory.map mem ~base:0x10000L ~size:65536;
  Memory.map mem ~base:0x200000L ~size:65536;
  Memory.map mem ~base:0x300000L ~size:(4096 * 16);
  let meta =
    Meta.create ~memory:mem
      ~mac_key:(Mac.fresh_key (Prng.create 1L))
      ~layout_region:(0x200000L, 65536)
      ~global_table:(0x300000L, 4096) ()
  in

  (* struct S { char vulnerable[12]; char sensitive[12]; } — Listing 1 *)
  let tenv =
    Ctype.declare Ctype.empty_tenv
      {
        Ctype.sname = "S";
        fields =
          [
            { fname = "vulnerable"; fty = Ctype.Array (Ctype.I8, 12) };
            { fname = "sensitive"; fty = Ctype.Array (Ctype.I8, 12) };
          ];
      }
  in
  let s_ty = Ctype.Struct "S" in
  let size = Ctype.sizeof tenv s_ty in
  Printf.printf "sizeof(struct S) = %d\n" size;

  (* the compiler would emit the layout table at compile time *)
  let layout_ptr = Meta.intern_layout meta tenv s_ty in
  Printf.printf "layout table materialised at 0x%Lx (%d elements)\n" layout_ptr
    (Meta.layout_count meta layout_ptr);

  (* IFP_Register: object metadata + tagged pointer *)
  let p = Meta.Local_offset.register meta ~base:0x10000L ~size ~layout_ptr in
  Format.printf "registered object: %a@." Tag.pp p;

  (* promote the base pointer: object bounds *)
  let r = Promote.run meta p in
  Format.printf "promote(base) -> bounds %a@." Bounds.pp r.Promote.bounds;

  (* derive &p->vulnerable[0]: ifpadd moves the address, ifpidx bumps the
     subobject index to the 'vulnerable' element *)
  let layout = Layout.build tenv s_ty in
  let idx =
    Option.get (Layout.index_of_path layout [ Layout.Field "vulnerable" ])
  in
  let q = Insn.ifpidx (Insn.ifpadd p ~delta:0L ~bounds:r.Promote.bounds) idx in
  let rq = Promote.run meta q in
  Format.printf "promote(&p->vulnerable) -> bounds %a (narrowed)@." Bounds.pp
    rq.Promote.bounds;

  (* in-bounds access passes the implicit check *)
  let ok = Insn.check_result q ~bounds:rq.Promote.bounds ~size:1 in
  Printf.printf "store to vulnerable[0]: %s\n" (if ok then "OK" else "TRAP");

  (* the intra-object overflow: vulnerable[12] is inside the object but
     outside the subobject — only subobject granularity catches it *)
  let q12 = Insn.ifpadd q ~delta:12L ~bounds:rq.Promote.bounds in
  (match Insn.ifpchk q12 ~bounds:rq.Promote.bounds ~size:1 with
  | () -> Printf.printf "store to vulnerable[12]: OK (?!)\n"
  | exception Trap.Trap t ->
    Printf.printf "store to vulnerable[12]: TRAP (%s)\n" (Trap.to_string t));

  (* with only object bounds it would have been silent *)
  let silent = Insn.check_result q12 ~bounds:r.Promote.bounds ~size:1 in
  Printf.printf "same store under object-granularity bounds: %s\n"
    (if silent then "silent corruption of 'sensitive'" else "trap");

  Meta.Local_offset.deregister meta p;
  print_endline "object deregistered; promote now rejects the metadata:";
  match (Promote.run meta p).Promote.outcome with
  | Promote.Metadata_invalid why -> Printf.printf "  -> invalid metadata (%s)\n" why
  | _ -> print_endline "  -> unexpected"
