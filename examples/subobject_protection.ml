(* The paper's Listing 1/Listing 2 end to end: a MiniC program with an
   intra-object overflow, compiled with the instrumentation pass and run
   on the VM under several configurations.

   Run with: dune exec examples/subobject_protection.exe *)

open Core
open Ir

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "S";
      fields =
        [
          { fname = "vulnerable"; fty = Ctype.Array (Ctype.I8, 12) };
          { fname = "sensitive"; fty = Ctype.Array (Ctype.I8, 12) };
        ];
    }

(* struct Boo boo; gv_ptr = &boo; foo() writes gv_ptr->vulnerable[off] *)
let listing2 ~off =
  let sp = Ctype.Ptr (Ctype.Struct "S") in
  let gv = global "gv_ptr" sp in
  let main =
    func "main" [] Ctype.I64
      [
        Decl_local ("boo", Ctype.Struct "S");
        Store_global ("gv_ptr", Addr_local "boo");
        Expr (Call ("foo", [ i off ]));
        (* read back the first byte of 'sensitive' as the checksum *)
        Return
          (Some
             (Cast
                ( Ctype.I64,
                  Load
                    ( Ctype.I8,
                      Gep (Ctype.Struct "S", Addr_local "boo",
                           [ fld "sensitive"; at (i 0) ]) ) )));
      ]
  in
  let foo =
    func "foo" [ ("off", Ctype.I64) ] Ctype.Void
      [
        (* the pointer is reloaded from the global: its bounds can only
           come from promote + layout-table narrowing *)
        Let ("p", sp, Load_global "gv_ptr");
        Store (Ctype.I8,
               Gep (Ctype.Struct "S", v "p", [ fld "vulnerable"; at (v "off") ]),
               i 0x41);
        Return None;
      ]
  in
  program ~tenv ~globals:[ gv ] [ foo; main ]

let show name cfg prog =
  let r = Vm.run ~config:cfg prog in
  Printf.printf "  %-12s %s\n" name
    (match r.Vm.outcome with
    | Vm.Finished x -> Printf.sprintf "finished, sensitive[0] = 0x%Lx" x
    | Vm.Trapped t -> "TRAP: " ^ Trap.to_string t
    | Vm.Aborted m -> "abort: " ^ Vm.abort_reason_string m)

let () =
  print_endline "write to vulnerable[5] (in bounds):";
  let good = listing2 ~off:5 in
  show "baseline" Vm.baseline good;
  show "ifp" Vm.ifp_wrapped good;

  print_endline "\nwrite to vulnerable[12] (intra-object overflow into 'sensitive'):";
  let bad = listing2 ~off:12 in
  show "baseline" Vm.baseline bad;
  show "ifp" Vm.ifp_wrapped bad;
  show "no-promote" (Vm.no_promote Vm.Alloc_wrapped) bad;
  print_endline
    "\nbaseline silently corrupts the sensitive field (returns 0x41);\n\
     In-Fat Pointer narrows the promoted pointer to the 'vulnerable'\n\
     subobject and traps; disabling promote loses exactly this case."
