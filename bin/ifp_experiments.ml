(* Regenerate every table and figure of the paper's evaluation (§5):
     table2    — metadata-scheme constraints (Table 2)
     table4    — dynamic event counts (Table 4)
     fig10     — runtime overhead, subheap/wrapped +/- no-promote (Fig. 10)
     fig11     — dynamic IFP-instruction mix (Fig. 11)
     fig12     — memory overhead (Fig. 12)
     fig13     — hardware area model (Fig. 13)
     baselines — comparator schemes on the same runs (Table 1 / §5.2.2)
     juliet    — functional evaluation summary (§5.1)
     all       — everything above

   All VM runs are dispatched through the lib/campaign engine: the
   workload x config matrix is expanded into content-addressed jobs,
   executed on `-j N` worker domains, served from the on-disk result
   cache when unchanged, and observable through a JSONL event log. The
   tables printed on stdout are byte-identical for any `-j`; an
   end-of-run aggregate is written to BENCH_experiments.json.

   Runs are crash-safe when given a write-ahead journal (--journal):
   each completion is CRC32-framed and flushed before the next job, so
   after a SIGKILL/OOM/power loss, --resume JOURNAL replays the finished
   prefix and re-runs only the rest — converging to tables and
   aggregates identical to an uninterrupted run. SIGINT/SIGTERM drain
   gracefully: running jobs finish and are journaled, pending jobs are
   skipped, and the process exits nonzero (resume with --resume).

   Usage: ifp_experiments [TARGET] [-j N] [--cache-dir DIR] [--no-cache]
                          [--log FILE] [--no-log] [--retries N]
                          [--journal FILE] [--resume FILE]
                          [--bench-out FILE] *)

open Core
module W = Ifp_workloads.Workload
module Registry = Ifp_workloads.Registry
module Table = Ifp_util.Table
module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Rcache = Ifp_campaign.Cache
module Events = Ifp_campaign.Events
module Cli = Ifp_campaign.Cli

(* ---------------- options ---------------- *)

type opts = {
  target : string;
  workers : int;
  cache_dir : string option;
  cache_max_bytes : int option;
  log_path : string option;
  bench_out : string;
  retries : int;
  journal : string option;
  resume : bool;
  chaos_kill_after : int option;
}

let default_opts =
  {
    target = "all";
    workers = 1;
    cache_dir = Some ".ifp-cache";
    cache_max_bytes = None;
    log_path = Some "campaign.jsonl";
    bench_out = "BENCH_experiments.json";
    retries = 2;
    journal = None;
    resume = false;
    chaos_kill_after = None;
  }

let usage () =
  prerr_endline
    "usage: ifp_experiments [TARGET] [-j N] [--cache-dir DIR] [--no-cache]\n\
    \                       [--cache-max-bytes BYTES[k|M|G]]\n\
    \                       [--log FILE] [--no-log] [--retries N]\n\
    \                       [--journal FILE] [--resume FILE]\n\
    \                       [--bench-out FILE]\n\
     TARGET: all table2 table4 fig10 fig11 fig12 fig13 baselines extensions\n\
    \        juliet  (default: all)\n\
    \  --journal FILE  write-ahead journal of completed jobs (crash-safe)\n\
    \  --resume FILE   replay FILE's completed jobs, run the rest, keep\n\
    \                  journaling to it; tolerates a torn final record\n\
    \  (--chaos-kill-after N: test hook — SIGKILL self after N jobs)";
  exit 1

let parse_opts argv =
  let o = ref default_opts in
  let i = ref 1 in
  let next what =
    incr i;
    if !i >= Array.length argv then (
      Printf.eprintf "missing argument to %s\n" what;
      usage ())
    else argv.(!i)
  in
  let int_arg what =
    let s = next what in
    match int_of_string_opt s with
    | Some n when n >= 0 -> n
    | _ ->
      Printf.eprintf "bad %s argument %S\n" what s;
      usage ()
  in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "-j" | "--jobs" -> o := { !o with workers = max 1 (int_arg "-j") }
    | "--cache-dir" -> o := { !o with cache_dir = Some (next "--cache-dir") }
    | "--no-cache" -> o := { !o with cache_dir = None }
    | "--cache-max-bytes" -> (
      let s = next "--cache-max-bytes" in
      match Cli.parse_bytes s with
      | Some b -> o := { !o with cache_max_bytes = Some b }
      | None ->
        Printf.eprintf "bad --cache-max-bytes argument %S\n" s;
        usage ())
    | "--log" -> o := { !o with log_path = Some (next "--log") }
    | "--no-log" -> o := { !o with log_path = None }
    | "--retries" -> o := { !o with retries = int_arg "--retries" }
    | "--journal" -> o := { !o with journal = Some (next "--journal") }
    | "--resume" ->
      o := { !o with journal = Some (next "--resume"); resume = true }
    | "--chaos-kill-after" ->
      o := { !o with chaos_kill_after = Some (int_arg "--chaos-kill-after") }
    | "--bench-out" -> o := { !o with bench_out = next "--bench-out" }
    | "-h" | "--help" -> usage ()
    | s when String.length s > 0 && s.[0] = '-' ->
      Printf.eprintf "unknown option %s\n" s;
      usage ()
    | target -> o := { !o with target });
    incr i
  done;
  !o

(* ---------------- the job matrix ---------------- *)

let row_jobs () =
  List.concat_map
    (fun (wl : W.t) ->
      let prog = Lazy.force wl.prog in
      List.map
        (fun (vname, config) ->
          Job.make
            ~name:(wl.name ^ "/" ^ vname)
            ~group:wl.name ~variant:vname ~config prog)
        Report.variants)
    Registry.all

let juliet_cases = lazy (Ifp_juliet.Juliet.all_cases ())

let juliet_configs =
  [
    ("baseline", Vm.baseline);
    ("wrapped", Vm.ifp_wrapped);
    ("subheap", Vm.ifp_subheap);
    ("subheap-np", Vm.no_promote Vm.Alloc_subheap);
  ]

(* the §5.3 walker ablation compares full narrowing against none *)
let juliet_ext_configs =
  [
    ("subheap", Vm.ifp_subheap);
    ("no-narrowing", Vm.no_narrowing Vm.Alloc_subheap);
  ]

let juliet_job_name case_id which cname =
  Printf.sprintf "juliet/%s/%s/%s" case_id which cname

let juliet_jobs cfgs =
  List.concat_map
    (fun (c : Ifp_juliet.Juliet.case) ->
      List.concat_map
        (fun (cname, config) ->
          [
            Job.make
              ~name:(juliet_job_name c.id "bad" cname)
              ~group:("juliet/" ^ c.id) ~variant:cname ~config c.bad;
            Job.make
              ~name:(juliet_job_name c.id "good" cname)
              ~group:("juliet/" ^ c.id) ~variant:cname ~config c.good;
          ])
        cfgs)
    (Lazy.force juliet_cases)

let infer_workloads = [ "wolfcrypt-dh"; "health"; "coremark" ]

let extensions_jobs () =
  let wl name = Option.get (Registry.find name) in
  let mixed =
    List.concat_map
      (fun name ->
        let prog = Lazy.force (wl name).W.prog in
        List.map
          (fun (vname, config) ->
            Job.make ~name:(name ^ "/" ^ vname) ~group:name ~variant:vname
              ~config prog)
          [
            ("subheap", Vm.ifp_subheap);
            ("mixed", Vm.ifp_mixed);
            ("wrapped", Vm.ifp_wrapped);
          ])
      [ "em3d"; "treeadd" ]
  in
  let infer =
    List.concat_map
      (fun name ->
        let prog = Lazy.force (wl name).W.prog in
        [
          Job.make ~name:(name ^ "/subheap") ~group:name ~variant:"subheap"
            ~config:Vm.ifp_subheap prog;
          Job.make ~name:(name ^ "/subheap-infer") ~group:name
            ~variant:"subheap-infer"
            ~config:{ Vm.ifp_subheap with infer_alloc_types = true }
            prog;
        ])
      infer_workloads
  in
  mixed @ infer @ juliet_jobs juliet_ext_configs

let jobs_for_target = function
  | "table2" | "fig13" -> []
  | "table4" | "fig10" | "fig11" | "fig12" | "baselines" -> row_jobs ()
  | "extensions" -> extensions_jobs ()
  | "juliet" -> juliet_jobs juliet_configs
  | "all" -> row_jobs () @ extensions_jobs () @ juliet_jobs juliet_configs
  | other ->
    Printf.eprintf "unknown experiment %s\n" other;
    usage ()

(* identical (program, config) work submitted under two labels — e.g.
   em3d/subheap appearing in both the row matrix and the extensions set —
   is deduplicated by name before dispatch *)
let dedupe_jobs jobs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (j : Job.t) ->
      if Hashtbl.mem seen j.name then false
      else (
        Hashtbl.add seen j.name ();
        true))
    jobs

(* ---------------- campaign-backed result lookup ---------------- *)

type ctx = { outcomes : (string, Engine.outcome) Hashtbl.t }

(* serve a result from the campaign; a job that failed at the engine
   level yields a visible Aborted placeholder, and a lookup outside the
   campaign's scope (defensive — should not happen) falls back to a
   serial in-process run *)
let result_of ctx name ~config ~prog =
  match Hashtbl.find_opt ctx.outcomes name with
  | Some { Engine.result = Some r; _ } -> r
  | Some { Engine.status = Engine.Failed why; _ } ->
    Report.aborted_result ("campaign job failed: " ^ why)
  | Some { Engine.status = Engine.Timed_out; _ } ->
    Report.aborted_result "campaign job timed out"
  | Some { Engine.status = Engine.Skipped; _ } ->
    (* only reachable if rendering proceeds despite an interrupt *)
    Report.aborted_result "campaign job skipped (interrupted)"
  | Some { Engine.result = None; _ } ->
    Report.aborted_result "campaign job produced no result"
  | None -> Vm.run ~config prog

let row_of ctx (wl : W.t) =
  let prog = Lazy.force wl.prog in
  Report.of_results ~name:wl.name
    ~lookup:(fun vname ->
      let config = List.assoc vname Report.variants in
      result_of ctx (wl.name ^ "/" ^ vname) ~config ~prog)

let juliet_run ctx cname config (c : Ifp_juliet.Juliet.case) which =
  let name, prog =
    match which with
    | `Bad -> (juliet_job_name c.id "bad" cname, c.bad)
    | `Good -> (juliet_job_name c.id "good" cname, c.good)
  in
  result_of ctx name ~config ~prog

let juliet_run_all ctx (cname, config) =
  Ifp_juliet.Juliet.run_all_with
    ~run:(juliet_run ctx cname config)
    (Lazy.force juliet_cases)

let fmt_x r = Printf.sprintf "%.2fx" r
let fmt_pct r = Ifp_util.Stats.percent r

let sci n =
  if n = 0 then "0"
  else if n < 100_000 then string_of_int n
  else Printf.sprintf "%.2e" (float_of_int n)

(* ---------------- Table 2 ---------------- *)

let table2 () =
  print_endline "== Table 2: object metadata schemes (constraints measured) ==";
  let rows =
    [
      [ "local offset"; "base granule-aligned"; "<= 1008 B"; "unlimited";
        "small objects, locals" ];
      [ "subheap"; "pow2-aligned blocks"; "block-capacity bound";
        "16 control regs / block sizes"; "heap objects" ];
      [ "global table"; "none"; "none";
        Printf.sprintf "%d rows" (Tag.global_table_entries - 1);
        "large globals, fallback" ];
    ]
  in
  Table.print
    ~header:[ "scheme"; "placement constraint"; "max object size";
              "object count limit"; "use scenario" ]
    rows;
  (* verify the constants against the implementation *)
  Printf.printf
    "\n(tag budget: 16 bits = 2 poison + 2 selector + 12 scheme/subobject;\n\
    \ local offset: %d B granule, %d B max object, %d layout elements;\n\
    \ subheap: %d subobject-index values; global table: %d entries)\n\n"
    Tag.granule Tag.local_offset_max_object Tag.local_offset_max_elements
    Tag.subheap_max_elements Tag.global_table_entries

(* ---------------- Table 4 ---------------- *)

let table4 ctx =
  print_endline
    "== Table 4: object instrumentation, valid promotes, dynamic instructions ==";
  let header =
    [ "benchmark"; "glob(LT%)"; "local(LT%)"; "heap(LT%)"; "valid promote";
      "(% of promotes)"; "baseline instrs"; "subheap"; "wrapped"; "status" ]
  in
  let body =
    List.map
      (fun (wl : W.t) ->
        let r = row_of ctx wl in
        let c = r.subheap.Vm.counters in
        let pct a b = if b = 0 then "-" else Printf.sprintf "%d%%" (100 * a / b) in
        let objs n lt = if n = 0 then "0" else sci n ^ " (" ^ pct lt n ^ ")" in
        let promotes = Counters.promotes_total c in
        let base_instrs = Counters.total_instrs r.baseline.Vm.counters in
        [
          wl.name;
          objs c.global_objs c.global_objs_layout;
          objs c.local_objs c.local_objs_layout;
          objs c.heap_objs c.heap_objs_layout;
          sci c.promotes_valid;
          pct c.promotes_valid promotes;
          sci base_instrs;
          fmt_x (Report.instr_overhead ~baseline:r.baseline r.subheap);
          fmt_x (Report.instr_overhead ~baseline:r.baseline r.wrapped);
          Report.status_string r;
        ])
      Registry.all
  in
  Table.print ~header body;
  let geo sel =
    Ifp_util.Stats.geomean
      (List.map
         (fun (wl : W.t) ->
           let r = row_of ctx wl in
           Report.instr_overhead ~baseline:r.baseline (sel r))
         Registry.all)
  in
  Printf.printf
    "\ngeo-mean dynamic instruction increase: subheap %s, wrapped %s\n\
     (paper: subheap +5%%, wrapped +14%%)\n\n"
    (fmt_pct (geo (fun r -> r.Report.subheap)))
    (fmt_pct (geo (fun r -> r.Report.wrapped)))

(* ---------------- Fig 10 ---------------- *)

let fig10 ctx =
  print_endline "== Figure 10: runtime overhead (cycles vs baseline) ==";
  let header =
    [ "benchmark"; "subheap"; "wrapped"; "subheap-np"; "wrapped-np"; "status" ]
  in
  let body =
    List.map
      (fun (wl : W.t) ->
        let r = row_of ctx wl in
        let ov x = fmt_pct (Report.runtime_overhead ~baseline:r.baseline x) in
        [ wl.name; ov r.subheap; ov r.wrapped; ov r.subheap_np;
          ov r.wrapped_np; Report.status_string r ])
      Registry.all
  in
  Table.print ~header body;
  let geo sel =
    Ifp_util.Stats.geomean
      (List.map
         (fun (wl : W.t) ->
           let r = row_of ctx wl in
           Report.runtime_overhead ~baseline:r.baseline (sel r))
         Registry.all)
  in
  Printf.printf
    "\ngeo-mean runtime overhead: subheap %s, wrapped %s (paper: ~12%%, ~24%%)\n\
     no-promote controls:       subheap %s, wrapped %s\n\n"
    (fmt_pct (geo (fun r -> r.Report.subheap)))
    (fmt_pct (geo (fun r -> r.Report.wrapped)))
    (fmt_pct (geo (fun r -> r.Report.subheap_np)))
    (fmt_pct (geo (fun r -> r.Report.wrapped_np)))

(* ---------------- Fig 11 ---------------- *)

let fig11 ctx =
  print_endline
    "== Figure 11: dynamic counts of In-Fat Pointer instructions (subheap) ==";
  let header =
    [ "benchmark"; "promote"; "ifp arithmetic"; "bounds ld/st"; "% of baseline" ]
  in
  let body =
    List.map
      (fun (wl : W.t) ->
        let r = row_of ctx wl in
        let c = r.subheap.Vm.counters in
        let n k = Counters.ifp_count c k in
        let promote = n Insn.Promote in
        let arith =
          n Insn.Ifpadd + n Insn.Ifpidx + n Insn.Ifpbnd + n Insn.Ifpchk
          + n Insn.Ifpextract + n Insn.Ifpmd + n Insn.Ifpmac
        in
        let ldst = n Insn.Ldbnd + n Insn.Stbnd in
        let basei = Counters.total_instrs r.baseline.Vm.counters in
        [
          wl.name; sci promote; sci arith; sci ldst;
          Printf.sprintf "%.1f%%"
            (100.0 *. float_of_int (promote + arith + ldst) /. float_of_int basei);
        ])
      Registry.all
  in
  Table.print ~header body;
  print_newline ()

(* ---------------- Fig 12 ---------------- *)

(* the paper excludes programs whose footprint is below `time -v`'s
   resolution (<6 MB there); at our scaled-down sizes the equivalent
   cutoff is 16 KiB of baseline footprint *)
let fig12_cutoff = 16 * 1024

let fig12 ctx =
  print_endline "== Figure 12: memory overhead (max footprint vs baseline) ==";
  let header = [ "benchmark"; "subheap"; "wrapped" ] in
  let included, excluded =
    List.partition
      (fun (wl : W.t) ->
        (row_of ctx wl).baseline.Vm.mem_footprint >= fig12_cutoff)
      Registry.all
  in
  let fig12_excluded = List.map (fun (wl : W.t) -> wl.W.name) excluded in
  let body =
    List.map
      (fun (wl : W.t) ->
        let r = row_of ctx wl in
        let ov x = fmt_pct (Report.memory_overhead ~baseline:r.baseline x) in
        [ wl.name; ov r.subheap; ov r.wrapped ])
      included
  in
  Table.print ~header body;
  let geo sel =
    Ifp_util.Stats.geomean
      (List.map
         (fun (wl : W.t) ->
           let r = row_of ctx wl in
           Report.memory_overhead ~baseline:r.baseline (sel r))
         included)
  in
  Printf.printf
    "\ngeo-mean memory overhead: subheap %s, wrapped %s (paper: -6%%, +21%%)\n\
     (excluded, as in the paper: %s)\n\n"
    (fmt_pct (geo (fun r -> r.Report.subheap)))
    (fmt_pct (geo (fun r -> r.Report.wrapped)))
    (String.concat ", " fig12_excluded)

(* ---------------- Fig 13 ---------------- *)

let fig13 () =
  print_endline "== Figure 13: LUT increase in the modified processor (model) ==";
  let open Ifp_hwmodel.Hwmodel in
  Table.print
    ~header:[ "component"; "stage"; "LUTs"; "FFs" ]
    (List.map
       (fun c ->
         [ c.cname; stage_to_string c.stage; string_of_int c.luts;
           string_of_int c.ffs ])
       components);
  Printf.printf "\nper-stage added LUTs:\n";
  List.iter
    (fun (s, l) -> Printf.printf "  %-16s %d\n" (stage_to_string s) l)
    (by_stage full);
  Printf.printf
    "\ntotals: %d -> %d LUTs (+%.0f%%), %d -> %d FFs\n\
     (paper: 37,088 -> 59,261 LUTs, +60%%; 21,993 -> 32,545 FFs, +48%%)\n"
    vanilla_luts (total_luts full) (lut_increase_pct full) vanilla_ffs
    (total_ffs full);
  let no_walker = { full with layout_walker = false } in
  let no_bregs = { full with bounds_registers = false } in
  Printf.printf
    "\nablations (§5.3):\n\
    \  drop layout walker:    +%d LUTs (+%.0f%%) — loses hardware narrowing\n\
    \  drop bounds registers: +%d LUTs (+%.0f%%) — the largest single saving\n\n"
    (added_luts no_walker) (lut_increase_pct no_walker) (added_luts no_bregs)
    (lut_increase_pct no_bregs)

(* ---------------- Baselines ---------------- *)

let baselines ctx =
  print_endline
    "== Comparators (Table 1 / §5.2.2): projected overheads, geo-mean over all benchmarks ==";
  let header =
    [ "scheme"; "instr overhead"; "runtime overhead"; "memory"; "subobject?" ]
  in
  let geo f =
    Ifp_util.Stats.geomean
      (List.map (fun (wl : W.t) -> f (row_of ctx wl)) Registry.all)
  in
  let comparator_rows =
    List.map
      (fun model ->
        let gi =
          geo (fun r ->
              (Ifp_baselines.Baselines.project model ~baseline:r.Report.baseline
                 ~ifp:r.Report.subheap)
                .instr_overhead)
        in
        let gc =
          geo (fun r ->
              (Ifp_baselines.Baselines.project model ~baseline:r.Report.baseline
                 ~ifp:r.Report.subheap)
                .cycle_overhead)
        in
        let det =
          match model.Ifp_baselines.Baselines.subobject with
          | Ifp_baselines.Baselines.Full -> "yes"
          | Object_only -> "object only"
          | Probabilistic p -> Printf.sprintf "prob. %.0f%%" (100.0 *. p)
          | None_ -> "no"
        in
        [ model.Ifp_baselines.Baselines.name; fmt_x gi; fmt_x gc;
          fmt_x model.memory_factor; det ])
      Ifp_baselines.Baselines.all
  in
  (* memory ratios only over benchmarks above the footprint cutoff, as
     in Fig. 12 *)
  let geo_mem sel =
    Ifp_util.Stats.geomean
      (List.filter_map
         (fun (wl : W.t) ->
           let r = row_of ctx wl in
           if r.Report.baseline.Vm.mem_footprint < fig12_cutoff then None
           else Some (Report.memory_overhead ~baseline:r.baseline (sel r)))
         Registry.all)
  in
  let ifp_rows =
    [
      [ "In-Fat Pointer (subheap)";
        fmt_x (geo (fun r -> Report.instr_overhead ~baseline:r.Report.baseline r.subheap));
        fmt_x (geo (fun r -> Report.runtime_overhead ~baseline:r.Report.baseline r.subheap));
        fmt_x (geo_mem (fun r -> r.Report.subheap));
        "yes" ];
      [ "In-Fat Pointer (wrapped)";
        fmt_x (geo (fun r -> Report.instr_overhead ~baseline:r.Report.baseline r.wrapped));
        fmt_x (geo (fun r -> Report.runtime_overhead ~baseline:r.Report.baseline r.wrapped));
        fmt_x (geo_mem (fun r -> r.Report.wrapped));
        "yes" ];
    ]
  in
  Table.print ~header (comparator_rows @ ifp_rows);
  print_newline ()

(* ---------------- Extensions / ablations ---------------- *)

let extensions ctx =
  print_endline
    "== Extensions & ablations (paper future work / §5.3 trade-offs) ==";
  (* A1a: drop the layout-table walker -> object granularity only *)
  let _, s_full = juliet_run_all ctx (List.nth juliet_ext_configs 0) in
  let _, s_nonarrow = juliet_run_all ctx (List.nth juliet_ext_configs 1) in
  Printf.printf
    "layout-walker ablation (saves %d LUTs in the area model):\n\
    \  full narrowing: %d/%d detected; walker disabled: %d/%d\n\
    \  -> the difference is exactly the intra-object cases only hardware\n\
    \     narrowing can catch after a pointer's round trip through memory\n\n"
    3059 s_full.detected s_full.total s_nonarrow.detected s_nonarrow.total;
  (* A1b: mixed allocator fixes the subheap's array-fragmentation cost *)
  let em3d = Option.get (Registry.find "em3d") in
  let treeadd = Option.get (Registry.find "treeadd") in
  Printf.printf "mixed allocator (runtime scheme selection, §4.2.1 future work):\n";
  List.iter
    (fun (wl : W.t) ->
      let prog = Lazy.force wl.prog in
      let res vname config = result_of ctx (wl.name ^ "/" ^ vname) ~config ~prog in
      let sub = res "subheap" Vm.ifp_subheap in
      let mix = res "mixed" Vm.ifp_mixed in
      let wrap = res "wrapped" Vm.ifp_wrapped in
      let fp (r : Vm.result) = r.Vm.mem_footprint in
      let cyc (r : Vm.result) = r.Vm.counters.Counters.cycles in
      Printf.printf
        "  %-8s footprint: subheap %d / mixed %d / wrapped %d; cycles: %d / %d / %d\n"
        wl.name (fp sub) (fp mix) (fp wrap) (cyc sub) (cyc mix) (cyc wrap))
    [ em3d; treeadd ];
  (* A1c: allocation-wrapper type inference (§5.2.1 future work) *)
  Printf.printf
    "\nallocation-wrapper type inference (recovers layout tables):\n";
  List.iter
    (fun name ->
      let wl = Option.get (Registry.find name) in
      let prog = Lazy.force wl.W.prog in
      let lt vname config =
        let c = (result_of ctx (name ^ "/" ^ vname) ~config ~prog).Vm.counters in
        (c.Counters.heap_objs_layout, c.Counters.heap_objs)
      in
      let off_lt, off_n = lt "subheap" Vm.ifp_subheap in
      let on_lt, on_n =
        lt "subheap-infer" { Vm.ifp_subheap with infer_alloc_types = true }
      in
      Printf.printf "  %-14s layout tables: %d/%d objects -> %d/%d with inference\n"
        name off_lt off_n on_lt on_n)
    infer_workloads;
  print_newline ()

(* ---------------- Juliet ---------------- *)

let juliet ctx =
  print_endline "== Functional evaluation (§5.1): Juliet-style suite ==";
  List.iter
    (fun (cname, config) ->
      let _, s = juliet_run_all ctx (cname, config) in
      Printf.printf "  %-12s %d/%d bad cases detected, %d good-case failures\n"
        cname s.Ifp_juliet.Juliet.detected s.total s.good_failures)
    juliet_configs;
  print_newline ()

(* ---------------- aggregate (BENCH_experiments.json) ---------------- *)

let bench_aggregate ~opts ~(stats : Engine.stats) ctx rows_computed =
  let open Events in
  let workloads =
    if not rows_computed then Null
    else
      List
        (List.map
           (fun (wl : W.t) ->
             let r = row_of ctx wl in
             let ov f = Float (f ~baseline:r.Report.baseline) in
             Obj
               [
                 ("name", String wl.name);
                 ("status", String (Report.status_string r));
                 ( "outcomes",
                   Obj
                     (List.map
                        (fun (vname, why) -> (vname, String why))
                        (Report.check_outcomes r)) );
                 ("baseline_cycles", Int r.baseline.Vm.counters.Counters.cycles);
                 ( "baseline_instrs",
                   Int (Counters.total_instrs r.baseline.Vm.counters) );
                 ("runtime_overhead_subheap", ov (fun ~baseline -> Report.runtime_overhead ~baseline r.subheap));
                 ("runtime_overhead_wrapped", ov (fun ~baseline -> Report.runtime_overhead ~baseline r.wrapped));
                 ("instr_overhead_subheap", ov (fun ~baseline -> Report.instr_overhead ~baseline r.subheap));
                 ("instr_overhead_wrapped", ov (fun ~baseline -> Report.instr_overhead ~baseline r.wrapped));
                 ("memory_overhead_subheap", ov (fun ~baseline -> Report.memory_overhead ~baseline r.subheap));
                 ("memory_overhead_wrapped", ov (fun ~baseline -> Report.memory_overhead ~baseline r.wrapped));
               ])
           Registry.all)
  in
  let geomean =
    if not rows_computed then Null
    else
      let geo f =
        Ifp_util.Stats.geomean
          (List.map (fun (wl : W.t) -> f (row_of ctx wl)) Registry.all)
      in
      Obj
        [
          ( "runtime_overhead_subheap",
            Float (geo (fun r -> Report.runtime_overhead ~baseline:r.Report.baseline r.subheap)) );
          ( "runtime_overhead_wrapped",
            Float (geo (fun r -> Report.runtime_overhead ~baseline:r.Report.baseline r.wrapped)) );
          ( "instr_overhead_subheap",
            Float (geo (fun r -> Report.instr_overhead ~baseline:r.Report.baseline r.subheap)) );
          ( "instr_overhead_wrapped",
            Float (geo (fun r -> Report.instr_overhead ~baseline:r.Report.baseline r.wrapped)) );
        ]
  in
  Obj
    [
      ("bench", String "ifp_experiments");
      ("target", String opts.target);
      ("model_digest", String Job.model_digest);
      ("campaign", Obj (Engine.stats_json stats));
      ("events_log", match opts.log_path with Some p -> String p | None -> Null);
      ("workloads", workloads);
      ("geomean", geomean);
    ]

(* ---------------- driver ---------------- *)

let targets_of = function
  | "all" ->
    [ "table2"; "table4"; "fig10"; "fig11"; "fig12"; "fig13"; "baselines";
      "extensions"; "juliet" ]
  | t -> [ t ]

let needs_rows target =
  List.exists
    (fun t ->
      List.mem t [ "table4"; "fig10"; "fig11"; "fig12"; "baselines" ])
    (targets_of target)

let () =
  let opts = parse_opts Sys.argv in
  let jobs = dedupe_jobs (jobs_for_target opts.target) in
  let cache =
    Option.map
      (fun dir -> Rcache.create ?max_bytes:opts.cache_max_bytes ~dir ())
      opts.cache_dir
  in
  let stop = Cli.install_interrupt () in
  let journal, replay = Cli.open_journal ~path:opts.journal ~resume:opts.resume in
  let log, log_truncated = Cli.open_log ~path:opts.log_path ~resume:opts.resume in
  Cli.emit_resumed log ~replay ~log_truncated;
  let on_job_done =
    match opts.chaos_kill_after with
    | Some n -> Ifp_campaign.Chaos.arm_kill ~after:n
    | None -> fun _ -> ()
  in
  let outcomes, stats =
    Engine.run ~workers:opts.workers ?cache ?journal ~log ~stop ~on_job_done
      ~retries:opts.retries jobs
  in
  if stats.Engine.interrupted then
    Cli.finish
      ~hint:
        (Printf.sprintf
           "campaign interrupted: %d done, %d skipped%s"
           (stats.Engine.completed + stats.Engine.failed
          + stats.Engine.timed_out)
           stats.Engine.skipped
           (match opts.journal with
           | Some p -> Printf.sprintf "; resume with --resume %s" p
           | None -> " (no --journal: a re-run starts from the cache only)"))
      ~journal ~log ~interrupted:true ();
  let ctx = { outcomes = Hashtbl.create (Array.length outcomes * 2) } in
  Array.iter
    (fun (o : Engine.outcome) -> Hashtbl.replace ctx.outcomes o.job.Job.name o)
    outcomes;
  let run = function
    | "table2" -> table2 ()
    | "table4" -> table4 ctx
    | "fig10" -> fig10 ctx
    | "fig11" -> fig11 ctx
    | "fig12" -> fig12 ctx
    | "fig13" -> fig13 ()
    | "baselines" -> baselines ctx
    | "extensions" -> extensions ctx
    | "juliet" -> juliet ctx
    | other ->
      Printf.eprintf "unknown experiment %s\n" other;
      exit 1
  in
  List.iter run (targets_of opts.target);
  Events.write_json_file ~path:opts.bench_out
    (bench_aggregate ~opts ~stats ctx (needs_rows opts.target));
  Cli.finish ~journal ~log ~interrupted:false ()
