(* Host-performance microbenchmark for the simulator hot path.

   Times the fig10 workloads under the three execution engines — the
   name-keyed reference interpreter (Vm_ref), the slot-resolved
   interpreter (Vm) and the closure-compiled engine (Vm_closure) — on
   the same VM configurations, and reports host wall-clock nanoseconds
   per simulated instruction for each engine plus the generation-over-
   generation speedups. While timing, it also cross-checks that all
   engines agree on outcome, every counter, cache statistics and
   program output — a run that diverges fails loudly rather than
   producing a pretty but meaningless table.

   The aggregate is written to BENCH_vm.json. Unlike the experiment
   tables, this output is wall-clock and host-dependent by nature; the
   JSON is for trend tracking, not byte-diffing (CI only checks shape
   and the engine-agreement bit). The historical columns are kept:
   before/after still mean Vm_ref -> Vm, and the closure engine adds
   its own column and speedup.

     ifp_bench [--quick] [--reps N] [--out PATH] [--engine E]...
               [--profile] [workload ...]

   --quick     three workloads, one rep: the CI smoke configuration.
   --engine E  time only engine E (vm | vm-ref | closure); repeatable.
               Engine agreement is checked across whichever engines run.
   --profile   after timing, print the closure engine's per-opcode
               dispatch histogram (counts + cumulative ns share) for
               each workload/config. Implies the closure engine. *)

module W = Ifp_workloads.Workload
module Registry = Ifp_workloads.Registry
module Vm = Core.Vm
module Vm_ref = Core.Vm_ref
module Vm_closure = Core.Vm_closure
module Engines = Core.Engines
module Profile = Core.Profile
module Counters = Core.Counters
module Events = Ifp_campaign.Events

type opts = {
  quick : bool;
  reps : int;
  out : string;
  only : string list;  (* empty = fig10 set *)
  engines : Vm.engine list;  (* empty = all three *)
  profile : bool;
}

let usage () =
  prerr_endline
    "usage: ifp_bench [--quick] [--reps N] [--out PATH] [--engine E]... \
     [--profile] [workload ...]";
  Printf.eprintf "  engines: %s\n" (String.concat " | " Engines.names);
  exit 2

let parse_opts argv =
  let opts =
    ref
      {
        quick = false;
        reps = 3;
        out = "BENCH_vm.json";
        only = [];
        engines = [];
        profile = false;
      }
  in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
      opts := { !opts with quick = true; reps = 1 };
      go rest
    | "--reps" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n > 0 -> opts := { !opts with reps = n }
      | _ -> usage ());
      go rest
    | "--out" :: p :: rest ->
      opts := { !opts with out = p };
      go rest
    | "--engine" :: e :: rest ->
      (match Engines.of_string e with
      | Some eng when not (List.mem eng !opts.engines) ->
        opts := { !opts with engines = !opts.engines @ [ eng ] };
        go rest
      | Some _ -> go rest
      | None ->
        Printf.eprintf "unknown engine %s\n" e;
        usage ())
    | "--profile" :: rest ->
      opts := { !opts with profile = true };
      go rest
    | w :: rest ->
      if String.length w > 0 && w.[0] = '-' then usage ();
      opts := { !opts with only = !opts.only @ [ w ] };
      go rest
  in
  go (List.tl (Array.to_list argv));
  let o = !opts in
  let engines = if o.engines = [] then Engines.all else o.engines in
  let engines =
    if o.profile && not (List.mem Vm.Eng_closure engines) then
      engines @ [ Vm.Eng_closure ]
    else engines
  in
  { o with engines }

let quick_set = [ "treeadd"; "mst"; "ft" ]

let workloads opts =
  match opts.only with
  | [] ->
    if opts.quick then
      List.filter (fun (w : W.t) -> List.mem w.name quick_set) Registry.all
    else Registry.all
  | names ->
    List.map
      (fun n ->
        match Registry.find n with
        | Some w -> w
        | None ->
          Printf.eprintf "unknown workload %s (have: %s)\n" n
            (String.concat " " Registry.names);
          exit 2)
      names

let configs =
  [
    ("baseline", Vm.baseline);
    ("ifp-subheap", Vm.ifp_subheap);
    ("ifp-wrapped", Vm.ifp_wrapped);
  ]

(* ---- engine agreement ------------------------------------------------ *)

let outcome_string = function
  | Vm.Finished v -> "finished:" ^ Int64.to_string v
  | Vm.Trapped t -> "trapped:" ^ Core.Trap.to_string t
  | Vm.Aborted r -> "aborted:" ^ Vm.abort_reason_string r

let counters_fields (c : Counters.t) =
  [
    ("base_instrs", c.base_instrs);
    ("cycles", c.cycles);
    ("loads", c.loads);
    ("stores", c.stores);
    ("implicit_checks", c.implicit_checks);
    ("promotes_valid", c.promotes_valid);
    ("ifp_total", Counters.ifp_total c);
  ]

(* [agree ~names a b] compares run [b] against reference run [a];
   [names] labels the pair in mismatch reports *)
let agree ~names (a : Vm.result) (b : Vm.result) =
  let pair = names in
  let errs = ref [] in
  let chk name x y =
    if x <> y then
      errs := Printf.sprintf "%s %s: %s vs %s" pair name x y :: !errs
  in
  chk "outcome" (outcome_string a.outcome) (outcome_string b.outcome);
  List.iter2
    (fun (n, x) (_, y) -> chk n (string_of_int x) (string_of_int y))
    (counters_fields a.counters)
    (counters_fields b.counters);
  Array.iteri
    (fun i x ->
      chk (Printf.sprintf "ifp[%d]" i) (string_of_int x)
        (string_of_int b.counters.ifp.(i)))
    a.counters.ifp;
  chk "cache_accesses" (string_of_int a.cache_accesses)
    (string_of_int b.cache_accesses);
  chk "cache_misses" (string_of_int a.cache_misses)
    (string_of_int b.cache_misses);
  chk "mem_footprint" (string_of_int a.mem_footprint)
    (string_of_int b.mem_footprint);
  chk "output" (String.concat "|" a.output) (String.concat "|" b.output);
  List.rev !errs

(* ---- timing ---------------------------------------------------------- *)

(* best-of-N wall clock: the minimum is the least noise-contaminated
   observation of the true cost *)
let time_best ~reps f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

type row = {
  wname : string;
  cname : string;
  sim_instrs : int;
  ns : (Vm.engine * float) list;  (* host ns per sim instr, per engine *)
  mismatches : string list;
}

let engine_runner = function
  | Vm.Eng_vm -> fun config prog -> Vm.run ~config prog
  | Vm.Eng_ref -> fun config prog -> Vm_ref.run ~config prog
  | Vm.Eng_closure -> fun config prog -> Vm_closure.run ~config prog

let ns_of r eng = List.assoc_opt eng r.ns

let bench_one ~reps ~engines (wl : W.t) (cname, config) =
  let prog = Lazy.force wl.prog in
  let runs =
    List.map
      (fun eng ->
        let res, t = time_best ~reps (fun () -> (engine_runner eng) config prog) in
        (eng, res, t))
      engines
  in
  let ref_eng, ref_res, _ = List.hd runs in
  let mismatches =
    List.concat_map
      (fun (eng, res, _) ->
        if eng == ref_eng then []
        else
          agree
            ~names:
              (Printf.sprintf "[%s vs %s]" (Engines.to_string ref_eng)
                 (Engines.to_string eng))
            ref_res res)
      runs
  in
  let sim_instrs = max 1 (Counters.total_instrs ref_res.Vm.counters) in
  let per t = t *. 1e9 /. float_of_int sim_instrs in
  {
    wname = wl.name;
    cname;
    sim_instrs;
    ns = List.map (fun (eng, _, t) -> (eng, per t)) runs;
    mismatches;
  }

(* ---- profile mode ---------------------------------------------------- *)

let ns_clock () = Unix.gettimeofday () *. 1e9

let print_profile (wl : W.t) (cname, config) =
  let prog = Lazy.force wl.prog in
  let p = Profile.create ~clock:ns_clock in
  ignore (Vm_closure.run ~config ~profile:p prog);
  let rows = Profile.report p in
  let total_ns = List.fold_left (fun acc (r : Profile.row) -> acc +. r.ns) 0.0 rows in
  Printf.printf "\n%s/%s dispatch profile (%.1f ms probe-attributed):\n"
    wl.name cname (total_ns /. 1e6);
  Printf.printf "  %-18s %12s %12s %7s %7s\n" "op" "count" "self-ms" "share"
    "cum";
  let cum = ref 0.0 in
  List.iter
    (fun (r : Profile.row) ->
      cum := !cum +. r.share;
      Printf.printf "  %-18s %12d %12.2f %6.1f%% %6.1f%%\n" r.op r.count
        (r.ns /. 1e6) (100.0 *. r.share) (100.0 *. !cum))
    rows

(* ---- reporting ------------------------------------------------------- *)

let json_of_rows rows geo_speedup geo_closure ok opts =
  let open Events in
  let fopt = function Some x -> Float x | None -> Null in
  let ratio a b = match (a, b) with Some a, Some b -> Some (a /. b) | _ -> None in
  Obj
    [
      ("bench", String "ifp_bench");
      ("unit", String "host ns per simulated instruction");
      ("quick", Bool opts.quick);
      ("reps", Int opts.reps);
      ("engines", List (List.map (fun e -> String (Engines.to_string e)) opts.engines));
      ("engines_agree", Bool ok);
      ( "rows",
        List
          (List.map
             (fun r ->
               let ref_ns = ns_of r Vm.Eng_ref in
               let vm_ns = ns_of r Vm.Eng_vm in
               let cl_ns = ns_of r Vm.Eng_closure in
               Obj
                 [
                   ("workload", String r.wname);
                   ("config", String r.cname);
                   ("sim_instrs", Int r.sim_instrs);
                   ("before_ns_per_instr", fopt ref_ns);
                   ("after_ns_per_instr", fopt vm_ns);
                   ("closure_ns_per_instr", fopt cl_ns);
                   ("speedup", fopt (ratio ref_ns vm_ns));
                   ("closure_speedup", fopt (ratio vm_ns cl_ns));
                 ])
             rows) );
      ("geomean_speedup", fopt geo_speedup);
      ("geomean_closure_speedup", fopt geo_closure);
    ]

let () =
  let opts = parse_opts Sys.argv in
  let wls = workloads opts in
  let engines = opts.engines in
  let header =
    String.concat " -> " (List.map Engines.to_string engines) ^ " ns/instr"
  in
  Printf.printf "engines: %s\n%!" header;
  let rows =
    List.concat_map
      (fun wl ->
        List.map
          (fun cfg ->
            let r = bench_one ~reps:opts.reps ~engines wl cfg in
            let cols =
              String.concat " -> "
                (List.map
                   (fun (_, ns) -> Printf.sprintf "%6.2f" ns)
                   r.ns)
            in
            Printf.printf "%-12s %-12s %9d sim-instrs  %s%s\n%!" r.wname
              r.cname r.sim_instrs cols
              (if r.mismatches = [] then "" else "  ENGINE MISMATCH");
            r)
          configs)
      wls
  in
  let geo_over f =
    let ratios = List.filter_map f rows in
    if ratios = [] then None else Some (Core.Stats.geomean ratios)
  in
  let geo =
    geo_over (fun r ->
        match (ns_of r Vm.Eng_ref, ns_of r Vm.Eng_vm) with
        | Some a, Some b -> Some (a /. b)
        | _ -> None)
  in
  let geo_closure =
    geo_over (fun r ->
        match (ns_of r Vm.Eng_vm, ns_of r Vm.Eng_closure) with
        | Some a, Some b -> Some (a /. b)
        | _ -> None)
  in
  let bad = List.filter (fun r -> r.mismatches <> []) rows in
  List.iter
    (fun r ->
      Printf.eprintf "MISMATCH %s/%s:\n" r.wname r.cname;
      List.iter (Printf.eprintf "  %s\n") r.mismatches)
    bad;
  (match geo with
  | Some g ->
    Printf.printf "\ngeo-mean speedup (Vm_ref -> Vm): %.2fx over %d runs\n" g
      (List.length rows)
  | None -> ());
  (match geo_closure with
  | Some g ->
    Printf.printf "geo-mean speedup (Vm -> closure): %.2fx over %d runs\n" g
      (List.length rows)
  | None -> ());
  if opts.profile then
    List.iter
      (fun wl -> List.iter (print_profile wl) configs)
      wls;
  Events.write_json_file ~path:opts.out
    (json_of_rows rows geo geo_closure (bad = []) opts);
  Printf.printf "wrote %s\n" opts.out;
  if bad <> [] then exit 1
