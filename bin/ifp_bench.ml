(* Host-performance microbenchmark for the simulator hot path.

   Times the fig10 workloads under the slot-resolved interpreter
   (Vm.run) and the name-keyed reference interpreter (Vm_ref.run) on the
   same VM configurations, and reports host wall-clock nanoseconds per
   simulated instruction for both engines plus the speedup. While
   timing, it also cross-checks that the two engines agree on outcome,
   every counter, cache statistics and program output — a run that
   diverges fails loudly rather than producing a pretty but meaningless
   table.

   The aggregate is written to BENCH_vm.json. Unlike the experiment
   tables, this output is wall-clock and host-dependent by nature; the
   JSON is for trend tracking, not byte-diffing (CI only checks shape
   and the engine-agreement bit).

     ifp_bench [--quick] [--reps N] [--out PATH] [workload ...]

   --quick  three workloads, one rep: the CI smoke configuration. *)

module W = Ifp_workloads.Workload
module Registry = Ifp_workloads.Registry
module Vm = Core.Vm
module Vm_ref = Core.Vm_ref
module Counters = Core.Counters
module Events = Ifp_campaign.Events

type opts = {
  quick : bool;
  reps : int;
  out : string;
  only : string list;  (* empty = fig10 set *)
}

let usage () =
  prerr_endline
    "usage: ifp_bench [--quick] [--reps N] [--out PATH] [workload ...]";
  exit 2

let parse_opts argv =
  let opts = ref { quick = false; reps = 3; out = "BENCH_vm.json"; only = [] } in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
      opts := { !opts with quick = true; reps = 1 };
      go rest
    | "--reps" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n > 0 -> opts := { !opts with reps = n }
      | _ -> usage ());
      go rest
    | "--out" :: p :: rest ->
      opts := { !opts with out = p };
      go rest
    | w :: rest ->
      if String.length w > 0 && w.[0] = '-' then usage ();
      opts := { !opts with only = !opts.only @ [ w ] };
      go rest
  in
  go (List.tl (Array.to_list argv));
  !opts

let quick_set = [ "treeadd"; "mst"; "ft" ]

let workloads opts =
  match opts.only with
  | [] ->
    if opts.quick then
      List.filter (fun (w : W.t) -> List.mem w.name quick_set) Registry.all
    else Registry.all
  | names ->
    List.map
      (fun n ->
        match Registry.find n with
        | Some w -> w
        | None ->
          Printf.eprintf "unknown workload %s (have: %s)\n" n
            (String.concat " " Registry.names);
          exit 2)
      names

let configs =
  [
    ("baseline", Vm.baseline);
    ("ifp-subheap", Vm.ifp_subheap);
    ("ifp-wrapped", Vm.ifp_wrapped);
  ]

(* ---- engine agreement ------------------------------------------------ *)

let outcome_string = function
  | Vm.Finished v -> "finished:" ^ Int64.to_string v
  | Vm.Trapped t -> "trapped:" ^ Core.Trap.to_string t
  | Vm.Aborted r -> "aborted:" ^ Vm.abort_reason_string r

let counters_fields (c : Counters.t) =
  [
    ("base_instrs", c.base_instrs);
    ("cycles", c.cycles);
    ("loads", c.loads);
    ("stores", c.stores);
    ("implicit_checks", c.implicit_checks);
    ("promotes_valid", c.promotes_valid);
    ("ifp_total", Counters.ifp_total c);
  ]

let agree (a : Vm.result) (b : Vm.result) =
  let errs = ref [] in
  let chk name x y =
    if x <> y then errs := Printf.sprintf "%s: %s vs %s" name x y :: !errs
  in
  chk "outcome" (outcome_string a.outcome) (outcome_string b.outcome);
  List.iter2
    (fun (n, x) (_, y) -> chk n (string_of_int x) (string_of_int y))
    (counters_fields a.counters)
    (counters_fields b.counters);
  Array.iteri
    (fun i x ->
      chk (Printf.sprintf "ifp[%d]" i) (string_of_int x)
        (string_of_int b.counters.ifp.(i)))
    a.counters.ifp;
  chk "cache_accesses" (string_of_int a.cache_accesses)
    (string_of_int b.cache_accesses);
  chk "cache_misses" (string_of_int a.cache_misses)
    (string_of_int b.cache_misses);
  chk "mem_footprint" (string_of_int a.mem_footprint)
    (string_of_int b.mem_footprint);
  chk "output" (String.concat "|" a.output) (String.concat "|" b.output);
  List.rev !errs

(* ---- timing ---------------------------------------------------------- *)

(* best-of-N wall clock: the minimum is the least noise-contaminated
   observation of the true cost *)
let time_best ~reps f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

type row = {
  wname : string;
  cname : string;
  sim_instrs : int;
  ref_ns : float;  (* host ns per simulated instruction, Vm_ref *)
  vm_ns : float;  (* host ns per simulated instruction, Vm *)
  mismatches : string list;
}

let bench_one ~reps (wl : W.t) (cname, config) =
  let prog = Lazy.force wl.prog in
  let vm_res, vm_t = time_best ~reps (fun () -> Vm.run ~config prog) in
  let ref_res, ref_t = time_best ~reps (fun () -> Vm_ref.run ~config prog) in
  let sim_instrs = max 1 (Counters.total_instrs vm_res.Vm.counters) in
  let per t = t *. 1e9 /. float_of_int sim_instrs in
  {
    wname = wl.name;
    cname;
    sim_instrs;
    ref_ns = per ref_t;
    vm_ns = per vm_t;
    mismatches = agree vm_res ref_res;
  }

(* ---- reporting ------------------------------------------------------- *)

let json_of_rows rows geo_speedup ok opts =
  let open Events in
  Obj
    [
      ("bench", String "ifp_bench");
      ("unit", String "host ns per simulated instruction");
      ("quick", Bool opts.quick);
      ("reps", Int opts.reps);
      ("engines_agree", Bool ok);
      ( "rows",
        List
          (List.map
             (fun r ->
               Obj
                 [
                   ("workload", String r.wname);
                   ("config", String r.cname);
                   ("sim_instrs", Int r.sim_instrs);
                   ("before_ns_per_instr", Float r.ref_ns);
                   ("after_ns_per_instr", Float r.vm_ns);
                   ("speedup", Float (r.ref_ns /. r.vm_ns));
                 ])
             rows) );
      ("geomean_speedup", Float geo_speedup);
    ]

let () =
  let opts = parse_opts Sys.argv in
  let wls = workloads opts in
  let rows =
    List.concat_map
      (fun wl ->
        List.map
          (fun cfg ->
            let r = bench_one ~reps:opts.reps wl cfg in
            Printf.printf "%-12s %-12s %9d sim-instrs  %7.2f -> %6.2f ns/instr  %5.2fx%s\n%!"
              r.wname r.cname r.sim_instrs r.ref_ns r.vm_ns
              (r.ref_ns /. r.vm_ns)
              (if r.mismatches = [] then "" else "  ENGINE MISMATCH");
            r)
          configs)
      wls
  in
  let geo =
    Core.Stats.geomean (List.map (fun r -> r.ref_ns /. r.vm_ns) rows)
  in
  let bad = List.filter (fun r -> r.mismatches <> []) rows in
  List.iter
    (fun r ->
      Printf.eprintf "MISMATCH %s/%s:\n" r.wname r.cname;
      List.iter (Printf.eprintf "  %s\n") r.mismatches)
    bad;
  Printf.printf "\ngeo-mean speedup (Vm_ref -> Vm): %.2fx over %d runs\n" geo
    (List.length rows);
  Events.write_json_file ~path:opts.out
    (json_of_rows rows geo (bad = []) opts);
  Printf.printf "wrote %s\n" opts.out;
  if bad <> [] then exit 1
