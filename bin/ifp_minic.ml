(* Compile and run a MiniC source file on the simulated machine:

     ifp_minic FILE [CONFIG] [--dump-ir] [--dump-instrumented] [--trace]

   CONFIG is one of baseline | subheap | wrapped | mixed | subheap-np |
   wrapped-np | no-narrowing | infer-types (default: subheap). *)

let config_of = function
  | "baseline" -> Core.Vm.baseline
  | "subheap" -> Core.Vm.ifp_subheap
  | "wrapped" -> Core.Vm.ifp_wrapped
  | "mixed" -> Core.Vm.ifp_mixed
  | "subheap-np" -> Core.Vm.no_promote Core.Vm.Alloc_subheap
  | "wrapped-np" -> Core.Vm.no_promote Core.Vm.Alloc_wrapped
  | "no-narrowing" -> Core.Vm.no_narrowing Core.Vm.Alloc_subheap
  | "infer-types" -> { Core.Vm.ifp_subheap with infer_alloc_types = true }
  | s ->
    Printf.eprintf "unknown config %s\n" s;
    exit 2

let () =
  let args = Array.to_list Sys.argv in
  let flags, positional =
    List.partition (fun a -> String.length a > 2 && String.sub a 0 2 = "--")
      (List.tl args)
  in
  let file, cfg_name =
    match positional with
    | [ f ] -> (f, "subheap")
    | [ f; c ] -> (f, c)
    | _ ->
      Printf.eprintf "usage: ifp_minic FILE [CONFIG] [--dump-ir] [--dump-instrumented]\n";
      exit 2
  in
  let src = In_channel.with_open_text file In_channel.input_all in
  let prog =
    try Core.Parser.parse src with
    | Core.Parser.Parse_error (m, line) ->
      Printf.eprintf "%s:%d: parse error: %s\n" file line m;
      exit 1
    | Core.Lexer.Lex_error (m, line) ->
      Printf.eprintf "%s:%d: lex error: %s\n" file line m;
      exit 1
  in
  (try Core.Typecheck.check_program prog
   with Core.Typecheck.Type_error m ->
     Printf.eprintf "%s: type error: %s\n" file m;
     exit 1);
  if List.mem "--dump-ir" flags then
    print_string (Core.Ir_pp.program_to_string prog);
  if List.mem "--dump-instrumented" flags then begin
    let instr, _ = Core.Instrument.run prog in
    print_string (Core.Ir_pp.program_to_string instr)
  end;
  let config = config_of cfg_name in
  let config =
    if List.mem "--trace" flags then { config with trace_limit = 64 } else config
  in
  let r = Core.Vm.run ~config prog in
  List.iter
    (fun (ev : Core.Vm.trace_event) ->
      match ev with
      | Core.Vm.T_promote { ptr; outcome; bounds } ->
        Printf.printf "trace: promote 0x%Lx -> %s %s\n" ptr outcome bounds
      | Core.Vm.T_register { what; ptr; size } ->
        Printf.printf "trace: register %s 0x%Lx (%d B)\n" what ptr size
      | Core.Vm.T_deregister { what; ptr } ->
        Printf.printf "trace: deregister %s 0x%Lx\n" what ptr
      | Core.Vm.T_trap msg -> Printf.printf "trace: TRAP %s\n" msg)
    r.Core.Vm.trace;
  List.iter print_endline r.Core.Vm.output;
  let c = r.Core.Vm.counters in
  Printf.printf "[%s] %s\n" cfg_name
    (match r.Core.Vm.outcome with
    | Core.Vm.Finished x -> Printf.sprintf "exited with %Ld" x
    | Core.Vm.Trapped t -> "TRAP: " ^ Core.Trap.to_string t
    | Core.Vm.Aborted m -> "abort: " ^ Core.Vm.abort_reason_string m);
  Printf.printf
    "[%s] %d instructions (%d IFP), %d cycles, %d promotes (%d valid), footprint %d B\n"
    cfg_name
    (Core.Counters.total_instrs c)
    (Core.Counters.ifp_total c) c.cycles
    (Core.Counters.promotes_total c)
    c.promotes_valid r.Core.Vm.mem_footprint

