(* Run one workload (or all) under a chosen configuration and print its
   dynamic statistics. *)

open Cmdliner

let variant_of_string = function
  | "baseline" -> Ok Core.Vm.baseline
  | "subheap" -> Ok Core.Vm.ifp_subheap
  | "wrapped" -> Ok Core.Vm.ifp_wrapped
  | "subheap-np" -> Ok (Core.Vm.no_promote Core.Vm.Alloc_subheap)
  | "wrapped-np" -> Ok (Core.Vm.no_promote Core.Vm.Alloc_wrapped)
  | "mixed" -> Ok Core.Vm.ifp_mixed
  | "no-narrowing" -> Ok (Core.Vm.no_narrowing Core.Vm.Alloc_subheap)
  | "infer-types" -> Ok { Core.Vm.ifp_subheap with infer_alloc_types = true }
  | s -> Error (`Msg ("unknown variant " ^ s))

let engine_of_string s =
  match Core.Engines.of_string s with
  | Some e -> Ok e
  | None ->
    Error
      (`Msg
        (Printf.sprintf "unknown engine %s (expected %s)" s
           (String.concat " | " Core.Engines.names)))

let run_one ~verbose name cfg_name cfg =
  match Ifp_workloads.Registry.find name with
  | None ->
    Printf.eprintf "unknown workload %s (have: %s)\n" name
      (String.concat ", " Ifp_workloads.Registry.names);
    exit 1
  | Some wl ->
    let prog = Lazy.force wl.Ifp_workloads.Workload.prog in
    let t0 = Sys.time () in
    let r = Core.Engines.run ~config:cfg prog in
    let dt = Sys.time () -. t0 in
    let open Core in
    let c = r.Vm.counters in
    Printf.printf "%-12s %-11s %-22s instrs=%-10d cycles=%-11d promotes=%-8d valid=%-8d footprint=%-9d (%.2fs)\n"
      name cfg_name
      (match r.Vm.outcome with
      | Vm.Finished x -> Printf.sprintf "ret=%Ld" x
      | Vm.Trapped t -> "TRAP " ^ Trap.to_string t
      | Vm.Aborted m -> "ABORT " ^ Vm.abort_reason_string m)
      (Counters.total_instrs c) c.cycles
      (Counters.ifp_count c Insn.Promote)
      c.promotes_valid r.Vm.mem_footprint dt;
    if verbose then begin
      Printf.printf "  objects: %d global (%d LT), %d local (%d LT), %d heap (%d LT)\n"
        c.global_objs c.global_objs_layout c.local_objs c.local_objs_layout
        c.heap_objs c.heap_objs_layout;
      Printf.printf "  promote mix: valid=%d null=%d legacy=%d poisoned=%d invalid=%d subobj=%d narrows ok/fail=%d/%d\n"
        c.promotes_valid c.promotes_null c.promotes_legacy c.promotes_poisoned
        c.promotes_invalid_meta c.promotes_subobj c.narrows_ok c.narrows_failed;
      Printf.printf "  ifp mix:";
      List.iter
        (fun k ->
          let n = Counters.ifp_count c k in
          if n > 0 then Printf.printf " %s=%d" (Insn.mnemonic k) n)
        Insn.all;
      print_newline ();
      Printf.printf "  cache: %d accesses, %d misses; alloc: %s\n"
        r.Vm.cache_accesses r.Vm.cache_misses
        (String.concat ", "
           (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) r.Vm.alloc_extra))
    end

let main workload variants engine verbose =
  let names =
    match workload with
    | "all" -> Ifp_workloads.Registry.names
    | w -> [ w ]
  in
  let variants =
    match variants with
    | [] -> [ "baseline"; "subheap"; "wrapped" ]
    | vs -> vs
  in
  List.iter
    (fun name ->
      List.iter
        (fun vname ->
          match variant_of_string vname with
          | Ok cfg -> run_one ~verbose name vname { cfg with Core.Vm.engine }
          | Error (`Msg m) ->
            Printf.eprintf "%s\n" m;
            exit 1)
        variants)
    names

let workload_arg =
  Arg.(value & pos 0 string "all" & info [] ~docv:"WORKLOAD"
         ~doc:"Workload name, or 'all'.")

let variants_arg =
  Arg.(value & opt_all string [] & info [ "variant"; "c" ] ~docv:"VARIANT"
         ~doc:
           "baseline | subheap | wrapped | subheap-np | wrapped-np | mixed | \
            no-narrowing | infer-types (repeatable)")

let engine_arg =
  let engine_conv =
    Arg.conv
      ( engine_of_string,
        fun fmt e -> Format.pp_print_string fmt (Core.Engines.to_string e) )
  in
  Arg.(value & opt engine_conv Core.Vm.Eng_vm
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine: vm | vm-ref | closure (default vm). All \
                 engines produce identical results; they differ only in \
                 host speed.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print detailed counters.")

let cmd =
  Cmd.v
    (Cmd.info "ifp_run" ~doc:"Run an In-Fat Pointer benchmark workload")
    Term.(const main $ workload_arg $ variants_arg $ engine_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)
