(* Campaign-scale differential fuzzing with counterexample minimization.

   Rounds of seeded, size-bounded generated MiniC programs are pushed
   through the campaign engine; each case's runner executes the full
   oracle battery (three engines x three configs agreement,
   baseline-vs-IFP behavioral equivalence, fault-classifier sanity).
   Divergent cases are greedily minimized into parser-image repros and
   written to the content-addressed corpus; the campaign stops after
   --dry consecutive rounds produce no new distinct counterexample, or
   at the --rounds cap.

   Everything inherits the campaign engine's machinery: -j workers,
   result cache (battery verdicts are digest-addressed, salted so they
   never collide with plain runs), per-job watchdog, CRC write-ahead
   journal, --resume, SIGINT/SIGTERM graceful drain (exit 130). A
   killed and resumed campaign reaches the same final report.

   Usage:
     ifp_fuzz [--seed S] [--rounds N] [--cases N] [--dry K] [--quick]
              [-j N] [--cache-dir DIR] [--cache-max-bytes B[k|M|G]]
              [--log FILE] [--no-log] [--timeout SECS] [--retries N]
              [--journal FILE] [--resume FILE] [--corpus DIR]
              [--shrink-budget N] [--out FILE]
     ifp_fuzz --repro FILE-or-DIGEST [--fault-seed S] [--corpus DIR] *)

module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Rcache = Ifp_campaign.Cache
module Events = Ifp_campaign.Events
module Cli = Ifp_campaign.Cli
module Vm = Ifp_vm.Vm
module Table = Ifp_util.Table
module Gen = Ifp_fuzz.Gen
module Oracle = Ifp_fuzz.Oracle
module Fuzz = Ifp_fuzz.Fuzz

type opts = {
  seed : int64;
  rounds : int;
  cases : int;
  dry : int;
  quick : bool;
  workers : int;
  cache_dir : string option;
  cache_max_bytes : int option;
  log_path : string option;
  timeout : float option;
  retries : int;
  journal : string option;
  resume : bool;
  corpus : string;
  shrink_budget : int;
  out : string;
  repro : string option;
  fault_seed : int64;
}

let default_opts =
  {
    seed = 1L;
    rounds = 8;
    cases = 250;
    dry = 2;
    quick = false;
    workers = 1;
    cache_dir = None;
    cache_max_bytes = None;
    log_path = Some "fuzz.jsonl";
    timeout = Some 120.0;
    retries = 1;
    journal = None;
    resume = false;
    corpus = "test/golden/fuzz";
    shrink_budget = 1200;
    out = "BENCH_fuzz.json";
    repro = None;
    fault_seed = 1L;
  }

let usage () =
  prerr_endline
    "usage: ifp_fuzz [--seed S] [--rounds N] [--cases N] [--dry K] [--quick]\n\
    \                [-j N] [--cache-dir DIR] [--cache-max-bytes BYTES[k|M|G]]\n\
    \                [--log FILE] [--no-log] [--timeout SECS] [--retries N]\n\
    \                [--journal FILE] [--resume FILE] [--corpus DIR]\n\
    \                [--shrink-budget N] [--out FILE]\n\
    \       ifp_fuzz --repro FILE-or-DIGEST [--fault-seed S] [--corpus DIR]";
  exit 1

let parse_opts argv =
  let o = ref default_opts in
  let i = ref 1 in
  let next what =
    incr i;
    if !i >= Array.length argv then (
      Printf.eprintf "missing argument to %s\n" what;
      usage ())
    else argv.(!i)
  in
  let int_arg what =
    let s = next what in
    match int_of_string_opt s with
    | Some n when n >= 0 -> n
    | _ ->
      Printf.eprintf "bad %s argument %S\n" what s;
      usage ()
  in
  let int64_arg what =
    let s = next what in
    match Int64.of_string_opt s with
    | Some n -> n
    | None ->
      Printf.eprintf "bad %s argument %S\n" what s;
      usage ()
  in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "--seed" -> o := { !o with seed = int64_arg "--seed" }
    | "--rounds" -> o := { !o with rounds = max 1 (int_arg "--rounds") }
    | "--cases" -> o := { !o with cases = max 1 (int_arg "--cases") }
    | "--dry" -> o := { !o with dry = max 1 (int_arg "--dry") }
    | "--quick" -> o := { !o with quick = true }
    | "-j" | "--jobs" -> o := { !o with workers = max 1 (int_arg "-j") }
    | "--cache-dir" -> o := { !o with cache_dir = Some (next "--cache-dir") }
    | "--no-cache" -> o := { !o with cache_dir = None }
    | "--cache-max-bytes" -> (
      let s = next "--cache-max-bytes" in
      match Cli.parse_bytes s with
      | Some b -> o := { !o with cache_max_bytes = Some b }
      | None ->
        Printf.eprintf "bad --cache-max-bytes argument %S\n" s;
        usage ())
    | "--log" -> o := { !o with log_path = Some (next "--log") }
    | "--no-log" -> o := { !o with log_path = None }
    | "--timeout" -> (
      let s = next "--timeout" in
      match float_of_string_opt s with
      | Some t when t > 0.0 -> o := { !o with timeout = Some t }
      | Some _ -> o := { !o with timeout = None }
      | None ->
        Printf.eprintf "bad --timeout argument %S\n" s;
        usage ())
    | "--retries" -> o := { !o with retries = int_arg "--retries" }
    | "--journal" -> o := { !o with journal = Some (next "--journal") }
    | "--resume" ->
      o := { !o with journal = Some (next "--resume"); resume = true }
    | "--corpus" -> o := { !o with corpus = next "--corpus" }
    | "--shrink-budget" ->
      o := { !o with shrink_budget = int_arg "--shrink-budget" }
    | "--out" -> o := { !o with out = next "--out" }
    | "--repro" -> o := { !o with repro = Some (next "--repro") }
    | "--canon" ->
      (* parse + typecheck + reprint: the corpus' canonical text form *)
      let path = next "--canon" in
      let src = In_channel.with_open_text path In_channel.input_all in
      let p = Ifp_compiler.Parser.parse src in
      Ifp_compiler.Typecheck.check_program p;
      print_string (Ifp_compiler.Ir_pp.program_to_string p);
      exit 0
    | "--shrink" ->
      (* minimize a diverging source file and print the result *)
      let path = next "--shrink" in
      let src = In_channel.with_open_text path In_channel.input_all in
      let fault_seed = !o.fault_seed in
      (match Fuzz.check_source ~fault_seed src with
      | Error m ->
        Printf.eprintf "%s: %s\n" path m;
        exit 1
      | Ok [] ->
        Printf.eprintf "%s: no divergence to minimize\n" path;
        exit 1
      | Ok (f :: _) ->
        let key = Oracle.failure_key f in
        let prog = Ifp_compiler.Parser.parse src in
        Ifp_compiler.Typecheck.check_program prog;
        let small =
          Fuzz.minimize ~budget:!o.shrink_budget ~fault_seed ~key prog
        in
        print_string (Ifp_compiler.Ir_pp.program_to_string small);
        exit 0)
    | "--emit-seed" ->
      (* debug aid: print the generated source for a raw case seed *)
      let s = int64_arg "--emit-seed" in
      let knobs = if !o.quick then Gen.quick else Gen.default in
      print_string (Gen.source ~knobs ~seed:s ());
      exit 0
    | "--fault-seed" -> o := { !o with fault_seed = int64_arg "--fault-seed" }
    | "-h" | "--help" -> usage ()
    | s ->
      Printf.eprintf "unknown option %s\n" s;
      usage ());
    incr i
  done;
  !o

(* ---------------- repro mode ---------------- *)

let print_sig_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go la lb =
    match (la, lb) with
    | x :: la', y :: lb' ->
      if not (String.equal x y) then Printf.printf "  -%s\n  +%s\n" x y;
      go la' lb'
    | x :: la', [] ->
      Printf.printf "  -%s\n" x;
      go la' []
    | [], y :: lb' ->
      Printf.printf "  +%s\n" y;
      go [] lb'
    | [], [] -> ()
  in
  go la lb

let repro opts target =
  let path =
    if Sys.file_exists target && not (Sys.is_directory target) then target
    else
      (* digest (prefix) lookup in the corpus *)
      match
        List.filter
          (fun (d, _) -> String.length target <= String.length d
                         && String.sub d 0 (String.length target) = target)
          (Fuzz.corpus_entries ~dir:opts.corpus)
      with
      | [ (d, _) ] -> Filename.concat opts.corpus (d ^ ".minic")
      | [] ->
        Printf.eprintf "repro: no file and no corpus entry matching %s\n" target;
        exit 2
      | many ->
        Printf.eprintf "repro: ambiguous digest %s (%s)\n" target
          (String.concat ", " (List.map fst many));
        exit 2
  in
  let src = In_channel.with_open_text path In_channel.input_all in
  Printf.printf "== repro %s (digest %s, fault seed %Ld) ==\n" path
    (Fuzz.text_digest src) opts.fault_seed;
  let prog =
    match Ifp_compiler.Parser.parse src with
    | exception Ifp_compiler.Parser.Parse_error (m, l) ->
      Printf.eprintf "%s:%d: parse error: %s\n" path l m;
      exit 1
    | p ->
      (try Ifp_compiler.Typecheck.check_program p with
      | Ifp_compiler.Typecheck.Type_error m ->
        Printf.eprintf "%s: type error: %s\n" path m;
        exit 1);
      p
  in
  (* the full engine x config matrix, with signatures kept for diffing *)
  let matrix =
    List.map
      (fun (cname, cfg) ->
        ( cname,
          List.map
            (fun (ename, erun) -> (ename, Oracle.result_sig (erun cfg prog)))
            Oracle.engines ))
      Oracle.configs
  in
  let header = [ "config"; "engine"; "outcome"; "cycles"; "output" ] in
  let body =
    List.concat_map
      (fun (cname, per_engine) ->
        List.map
          (fun (ename, s) ->
            let line n =
              match List.nth_opt (String.split_on_char '\n' s) n with
              | Some l -> l
              | None -> ""
            in
            let outcome =
              match String.index_opt (line 0) '=' with
              | Some k ->
                String.sub (line 0) (k + 1) (String.length (line 0) - k - 1)
              | None -> line 0
            in
            let cycles =
              List.nth_opt (String.split_on_char ' ' (line 1)) 1
              |> Option.value ~default:""
            in
            let out_line = line 6 in
            [ cname; ename; outcome; cycles; out_line ])
          per_engine)
      matrix
  in
  Table.print ~header body;
  (* per-config engine diffs: first divergent step, unified style *)
  List.iter
    (fun (cname, per_engine) ->
      match per_engine with
      | (ref_name, ref_sig) :: rest ->
        List.iter
          (fun (ename, s) ->
            if not (String.equal s ref_sig) then begin
              Printf.printf "\n-- %s: %s vs %s diverge --\n" cname ref_name
                ename;
              print_sig_diff ref_sig s
            end)
          rest
      | [] -> ())
    matrix;
  (* and the oracle verdict *)
  let failures, _ = Oracle.check ~fault_seed:opts.fault_seed prog in
  if failures = [] then begin
    Printf.printf "\nall oracles agree: no divergence\n";
    exit 0
  end
  else begin
    Printf.printf "\n%d oracle failure(s):\n" (List.length failures);
    List.iter
      (fun (f : Oracle.failure) ->
        Printf.printf "  [%s] %s\n" (Oracle.failure_key f) f.Oracle.detail)
      failures;
    exit 1
  end

(* ---------------- campaign mode ---------------- *)

let () =
  let opts = parse_opts Sys.argv in
  (match opts.repro with Some t -> repro opts t | None -> ());
  let knobs = if opts.quick then Gen.quick else Gen.default in
  let cache =
    Option.map
      (fun dir -> Rcache.create ?max_bytes:opts.cache_max_bytes ~dir ())
      opts.cache_dir
  in
  let stop = Cli.install_interrupt () in
  let journal, replay = Cli.open_journal ~path:opts.journal ~resume:opts.resume in
  let log, log_truncated = Cli.open_log ~path:opts.log_path ~resume:opts.resume in
  Cli.emit_resumed log ~replay ~log_truncated;
  let seen = Hashtbl.create 16 in
  (* corpus entries already present count as known, not new *)
  List.iter
    (fun (d, _) -> Hashtbl.replace seen d ())
    (Fuzz.corpus_entries ~dir:opts.corpus);
  let total_cases = ref 0 in
  let total_divergent = ref 0 in
  let new_digests = ref [] in
  let agg = ref [] in
  let interrupted = ref false in
  let dry_rounds = ref 0 in
  let round = ref 0 in
  while
    (not !interrupted) && !round < opts.rounds && !dry_rounds < opts.dry
  do
    let r = !round in
    let jobs =
      List.init opts.cases (fun idx ->
          Fuzz.job ~knobs ~campaign_seed:opts.seed ~round:r ~idx)
    in
    let outcomes, stats =
      Engine.run ~workers:opts.workers ?cache ?journal ~log ~stop
        ~retries:opts.retries ?job_timeout:opts.timeout ~runner:Fuzz.runner
        jobs
    in
    agg := stats :: !agg;
    total_cases := !total_cases + stats.Engine.completed;
    if stats.Engine.interrupted then interrupted := true
    else begin
      let divergent =
        Array.to_list outcomes
        |> List.filter_map (fun (o : Engine.outcome) ->
               match (o.Engine.status, o.Engine.result) with
               | Engine.Done, Some res when Fuzz.failures_of res <> [] ->
                 Some (o.Engine.job, Fuzz.failures_of res)
               | _ -> None)
      in
      total_divergent := !total_divergent + List.length divergent;
      let fresh = ref 0 in
      List.iter
        (fun ((j : Job.t), failures) ->
          let keys = List.map Oracle.failure_key failures in
          let fault_seed = j.Job.config.Vm.seed in
          let minimized =
            Fuzz.minimize ~budget:opts.shrink_budget ~fault_seed
              ~key:(List.hd keys) j.Job.prog
          in
          let text = Ifp_compiler.Ir_pp.program_to_string minimized in
          let digest = Fuzz.text_digest text in
          if not (Hashtbl.mem seen digest) then begin
            Hashtbl.replace seen digest ();
            incr fresh;
            new_digests := digest :: !new_digests;
            let d =
              Fuzz.corpus_write ~dir:opts.corpus ~src:text ~seed:fault_seed
                ~keys
            in
            Printf.printf
              "  counterexample %s (%s) minimized to %d lines -> %s/%s.minic\n%!"
              j.Job.name (List.hd keys)
              (List.length (String.split_on_char '\n' text))
              opts.corpus d
          end)
        divergent;
      if !fresh = 0 then incr dry_rounds else dry_rounds := 0;
      Printf.printf
        "round %d: %d cases, %d divergent, %d new counterexample(s), %d \
         cache/journal hits (%.1fs)%s\n%!"
        r (List.length jobs) (List.length divergent) !fresh
        (stats.Engine.cache_hits + stats.Engine.journal_replays)
        stats.Engine.wall_seconds
        (if !fresh = 0 then Printf.sprintf " [dry %d/%d]" !dry_rounds opts.dry
         else "")
    end;
    incr round
  done;
  if !interrupted then
    Cli.finish
      ~hint:
        (Printf.sprintf "fuzz campaign interrupted in round %d%s" (!round - 1)
           (match opts.journal with
           | Some p -> Printf.sprintf "; resume with --resume %s" p
           | None -> ""))
      ~journal ~log ~interrupted:true ();
  let stats_sum f = List.fold_left (fun acc s -> acc + f s) 0 !agg in
  let open Events in
  Events.write_json_file ~path:opts.out
    (Obj
       [
         ("bench", String "ifp_fuzz");
         ("seed", String (Int64.to_string opts.seed));
         ("quick", Bool opts.quick);
         ("rounds_run", Int !round);
         ("cases_per_round", Int opts.cases);
         ("programs", Int !total_cases);
         ("divergent", Int !total_divergent);
         ("new_counterexamples", Int (List.length !new_digests));
         ( "corpus",
           List (List.rev_map (fun d -> String d) !new_digests) );
         ("dried_out", Bool (!dry_rounds >= opts.dry));
         ("model_digest", String Job.model_digest);
         ( "campaign",
           Obj
             [
               ("jobs", Int (stats_sum (fun s -> s.Engine.jobs)));
               ("completed", Int (stats_sum (fun s -> s.Engine.completed)));
               ("failed", Int (stats_sum (fun s -> s.Engine.failed)));
               ("timed_out", Int (stats_sum (fun s -> s.Engine.timed_out)));
               ("cache_hits", Int (stats_sum (fun s -> s.Engine.cache_hits)));
               ( "journal_replays",
                 Int (stats_sum (fun s -> s.Engine.journal_replays)) );
               ( "wall_seconds",
                 Float
                   (List.fold_left
                      (fun acc s -> acc +. s.Engine.wall_seconds)
                      0.0 !agg) );
             ] );
       ]);
  Printf.printf
    "fuzz campaign: %d programs, %d divergent, %d new counterexample(s)%s; \
     wrote %s\n"
    !total_cases !total_divergent
    (List.length !new_digests)
    (if !dry_rounds >= opts.dry then
       Printf.sprintf " — dried out after %d quiet round(s)" !dry_rounds
     else "")
    opts.out;
  (* the CI gate: a fuzz run must end with zero unexplained divergences *)
  if !total_divergent > 0 then begin
    Cli.finish ~journal ~log ~interrupted:false ();
    exit 1
  end
  else Cli.finish ~journal ~log ~interrupted:false ()
