(* Temporal-mode evaluation: everything the spatial tables deliberately
   do not show.

     - detection: the Juliet temporal families (CWE-416/415) under
       baseline, spatial IFP and temporal IFP — temporal mode must catch
       every bad variant, spatial mode must miss every one (the stale
       pointer promotes against the churn object's valid metadata);
     - overhead: per-workload cycle/memory deltas of switching temporal
       mode on, for both allocator configurations;
     - hardware: the free-epoch machinery priced by the area model, and
       the per-scheme extra metadata bytes;
     - comparators: CryptSan-like and RV-CURE-like projected onto the
       same runs (the temporal columns Table 1 lacks).

   The aggregate is written to BENCH_temporal.json. Exit status is 0
   only if every temporal bad case is detected under both temporal
   configurations with no good-case failures and every workload
   checksum agrees across configurations — the CI gate.

   Usage: ifp_temporal [--quick] [--out FILE] *)

open Core
module W = Ifp_workloads.Workload
module Registry = Ifp_workloads.Registry
module J = Ifp_juliet.Juliet
module B = Ifp_baselines.Baselines
module H = Ifp_hwmodel.Hwmodel
module Table = Ifp_util.Table
module Stats = Ifp_util.Stats
module Events = Ifp_campaign.Events

let quick_workloads = [ "treeadd"; "mst"; "ft" ]

let full_workloads =
  [ "treeadd"; "bisort"; "mst"; "health"; "perimeter"; "ft"; "ks"; "anagram" ]

let configs =
  [
    ("baseline", Vm.baseline);
    ("ifp-subheap", Vm.ifp_subheap);
    ("ifp-subheap-t", { Vm.ifp_subheap with Vm.temporal = true });
    ("ifp-wrapped", Vm.ifp_wrapped);
    ("ifp-wrapped-t", { Vm.ifp_wrapped with Vm.temporal = true });
  ]

let fmt_x v = Printf.sprintf "%.3fx" v
let fmt_pct v = Printf.sprintf "%+.2f%%" v

(* ---------------- Juliet temporal families ---------------- *)

let juliet_section () =
  print_endline
    "== Juliet temporal families (CWE-416/415): 6 cases, bad must trap only \
     under temporal mode ==";
  let cases = J.temporal_cases () in
  let rows =
    List.map
      (fun (name, config) ->
        let _, s = J.run_all ~config cases in
        (name, s))
      configs
  in
  Table.print
    ~header:[ "config"; "detected"; "missed"; "good failures" ]
    (List.map
       (fun (name, s) ->
         [
           name;
           Printf.sprintf "%d/%d" s.J.detected s.J.total;
           string_of_int s.J.missed;
           string_of_int s.J.good_failures;
         ])
       rows);
  print_newline ();
  rows

(* ---------------- workload overhead deltas ---------------- *)

type wl_row = {
  wname : string;
  results : (string * Vm.result) list;  (** one per config, same order *)
}

let run_workloads names =
  List.filter_map
    (fun n ->
      match Registry.find n with
      | None ->
        Printf.eprintf "unknown workload %s\n" n;
        None
      | Some wl ->
        let prog = Lazy.force wl.W.prog in
        Some
          {
            wname = wl.W.name;
            results =
              List.map (fun (cname, cfg) -> (cname, Vm.run ~config:cfg prog)) configs;
          })
    names

let checksums_agree row =
  match List.map (fun (_, r) -> r.Vm.outcome) row.results with
  | Vm.Finished v :: rest ->
    List.for_all (function Vm.Finished w -> Int64.equal v w | _ -> false) rest
  | _ -> false

let cycles r = r.Vm.counters.Ifp_vm.Counters.cycles

let overhead_of row cname =
  let base = cycles (List.assoc "baseline" row.results) in
  float_of_int (cycles (List.assoc cname row.results)) /. float_of_int base

let mem_of row cname = (List.assoc cname row.results).Vm.mem_footprint

let overhead_section rows =
  print_endline
    "== Temporal-mode overhead: cycle ratio vs baseline, and the delta \
     temporal mode adds ==";
  Table.print
    ~header:
      [
        "workload"; "subheap"; "subheap-t"; "d cycles"; "d mem"; "wrapped";
        "wrapped-t"; "d cycles"; "d mem";
      ]
    (List.map
       (fun row ->
         let ov = overhead_of row in
         let dmem spatial temporal =
           let s = mem_of row spatial and t = mem_of row temporal in
           100.0 *. (float_of_int t /. float_of_int s -. 1.0)
         in
         [
           row.wname;
           fmt_x (ov "ifp-subheap");
           fmt_x (ov "ifp-subheap-t");
           fmt_pct (100.0 *. (ov "ifp-subheap-t" -. ov "ifp-subheap"));
           fmt_pct (dmem "ifp-subheap" "ifp-subheap-t");
           fmt_x (ov "ifp-wrapped");
           fmt_x (ov "ifp-wrapped-t");
           fmt_pct (100.0 *. (ov "ifp-wrapped-t" -. ov "ifp-wrapped"));
           fmt_pct (dmem "ifp-wrapped" "ifp-wrapped-t");
         ])
       rows);
  let geo cname = Stats.geomean (List.map (fun r -> overhead_of r cname) rows) in
  Printf.printf
    "\ngeo-mean cycle overhead: subheap %s -> %s temporal, wrapped %s -> %s \
     temporal\n\
     (temporal adds metadata re-MACs on free plus quarantined footprint; no \
     promote-path slowdown — the epoch compare rides the existing fetch)\n\n"
    (fmt_x (geo "ifp-subheap"))
    (fmt_x (geo "ifp-subheap-t"))
    (fmt_x (geo "ifp-wrapped"))
    (fmt_x (geo "ifp-wrapped-t"))

(* ---------------- hardware pricing ---------------- *)

let hw_section () =
  print_endline "== Hardware pricing of the free-epoch extension (area model) ==";
  Table.print
    ~header:[ "component"; "stage"; "LUTs"; "FFs" ]
    (List.map
       (fun (c : H.component) ->
         [ c.H.cname; H.stage_to_string c.H.stage; string_of_int c.H.luts;
           string_of_int c.H.ffs ])
       H.temporal_components);
  let delta_luts = H.added_luts H.full_temporal - H.added_luts H.full in
  let delta_ffs = H.added_ffs H.full_temporal - H.added_ffs H.full in
  Printf.printf
    "\nadded area: +%d LUTs / +%d FFs on top of the spatial design (+%.1f%% -> \
     +%.1f%% over vanilla)\n"
    delta_luts delta_ffs
    (H.lut_increase_pct H.full)
    (H.lut_increase_pct H.full_temporal);
  Printf.printf "extra metadata bytes per object:\n";
  List.iter
    (fun (what, bytes) -> Printf.printf "  %-20s %d\n" what bytes)
    H.temporal_metadata_bytes;
  print_newline ()

(* ---------------- temporal comparators ---------------- *)

let comparator_section rows =
  print_endline
    "== Temporal comparators (CryptSan-like, RV-CURE-like) projected on the \
     same runs ==";
  let geo f = Stats.geomean (List.map f rows) in
  let projections =
    List.map
      (fun model ->
        let gi =
          geo (fun row ->
              (B.project model
                 ~baseline:(List.assoc "baseline" row.results)
                 ~ifp:(List.assoc "ifp-subheap" row.results))
                .B.instr_overhead)
        in
        let gc =
          geo (fun row ->
              (B.project model
                 ~baseline:(List.assoc "baseline" row.results)
                 ~ifp:(List.assoc "ifp-subheap" row.results))
                .B.cycle_overhead)
        in
        (model, gi, gc))
      B.temporal_models
  in
  Table.print
    ~header:[ "scheme"; "instr overhead"; "runtime overhead"; "memory";
              "spatial?"; "temporal?" ]
    (List.map
       (fun ((model : B.model), gi, gc) ->
         let det = function
           | B.Full -> "yes"
           | B.Object_only -> "object only"
           | B.Probabilistic p -> Printf.sprintf "prob. %.0f%%" (100.0 *. p)
           | B.None_ -> "no"
         in
         [ model.B.name; fmt_x gi; fmt_x gc; fmt_x model.B.memory_factor;
           det model.B.object_; det model.B.temporal ])
       projections);
  print_newline ();
  projections

(* ---------------- aggregate ---------------- *)

let detection_to_string = function
  | B.Full -> "full"
  | B.Object_only -> "object-only"
  | B.Probabilistic p -> Printf.sprintf "probabilistic-%.4f" p
  | B.None_ -> "none"

let write_bench ~path ~quick juliet rows projections =
  let open Events in
  let summary_json (s : J.summary) =
    Obj
      [
        ("total", Int s.J.total);
        ("detected", Int s.J.detected);
        ("missed", Int s.J.missed);
        ("false_positives", Int s.J.false_positives);
        ("good_failures", Int s.J.good_failures);
      ]
  in
  let config_json row cname =
    let r = List.assoc cname row.results in
    Obj
      [
        ("cycles", Int (cycles r));
        ("overhead", Float (overhead_of row cname));
        ("mem_footprint", Int r.Vm.mem_footprint);
      ]
  in
  let geo cname =
    Stats.geomean (List.map (fun r -> overhead_of r cname) rows)
  in
  write_json_file ~path
    (Obj
       [
         ("bench", String "ifp_temporal");
         ("quick", Bool quick);
         ( "juliet_temporal",
           Obj (List.map (fun (name, s) -> (name, summary_json s)) juliet) );
         ( "workloads",
           List
             (List.map
                (fun row ->
                  Obj
                    ([ ("name", String row.wname);
                       ( "baseline_cycles",
                         Int (cycles (List.assoc "baseline" row.results)) ) ]
                    @ List.filter_map
                        (fun (cname, _) ->
                          if cname = "baseline" then None
                          else Some (cname, config_json row cname))
                        configs))
                rows) );
         ( "geomean_cycle_overhead",
           Obj
             (List.filter_map
                (fun (cname, _) ->
                  if cname = "baseline" then None
                  else Some (cname, Float (geo cname)))
                configs) );
         ( "hwmodel",
           Obj
             [
               ("spatial_added_luts", Int (H.added_luts H.full));
               ("temporal_added_luts", Int (H.added_luts H.full_temporal));
               ( "delta_luts",
                 Int (H.added_luts H.full_temporal - H.added_luts H.full) );
               ( "delta_ffs",
                 Int (H.added_ffs H.full_temporal - H.added_ffs H.full) );
               ("lut_increase_pct", Float (H.lut_increase_pct H.full));
               ( "lut_increase_pct_temporal",
                 Float (H.lut_increase_pct H.full_temporal) );
               ( "metadata_bytes",
                 Obj
                   (List.map
                      (fun (k, v) -> (k, Int v))
                      H.temporal_metadata_bytes) );
             ] );
         ( "comparators",
           List
             (List.map
                (fun ((model : B.model), gi, gc) ->
                  Obj
                    [
                      ("name", String model.B.name);
                      ("instr_overhead", Float gi);
                      ("cycle_overhead", Float gc);
                      ("memory_overhead", Float model.B.memory_factor);
                      ("temporal", String (detection_to_string model.B.temporal));
                    ])
                projections) );
       ])

(* ---------------- driver ---------------- *)

let () =
  let quick = ref false and out = ref "BENCH_temporal.json" in
  let rec parse i =
    if i < Array.length Sys.argv then
      match Sys.argv.(i) with
      | "--quick" ->
        quick := true;
        parse (i + 1)
      | "--out" when i + 1 < Array.length Sys.argv ->
        out := Sys.argv.(i + 1);
        parse (i + 2)
      | a ->
        Printf.eprintf "usage: ifp_temporal [--quick] [--out FILE] (got %S)\n" a;
        exit 1
  in
  parse 1;
  let juliet = juliet_section () in
  let rows = run_workloads (if !quick then quick_workloads else full_workloads) in
  let bad_checksums = List.filter (fun r -> not (checksums_agree r)) rows in
  List.iter
    (fun r -> Printf.eprintf "checksum disagreement in workload %s\n" r.wname)
    bad_checksums;
  overhead_section rows;
  hw_section ();
  let projections = comparator_section rows in
  write_bench ~path:!out ~quick:!quick juliet rows projections;
  Printf.printf "aggregate written to %s\n" !out;
  let temporal_ok =
    List.for_all
      (fun (name, s) ->
        let is_temporal =
          name = "ifp-subheap-t" || name = "ifp-wrapped-t"
        in
        (not is_temporal)
        || (s.J.detected = s.J.total && s.J.good_failures = 0))
      juliet
  in
  (* spatial configs must also stay clean on the good variants *)
  let goods_ok =
    List.for_all (fun (_, s) -> s.J.good_failures = 0) juliet
  in
  if temporal_ok && goods_ok && bad_checksums = [] then exit 0
  else (
    prerr_endline "FAIL: temporal detection or checksum gate violated";
    exit 1)
