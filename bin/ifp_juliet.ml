(* Functional evaluation (paper §5.1): run the generated Juliet-style
   suite under the chosen configuration and report detection results.

   The 2x72 case programs are dispatched through the lib/campaign engine,
   so runs parallelise with -j N and repeat invocations hit the on-disk
   result cache.

   With --journal the campaign is crash-safe (write-ahead journal of
   completed cases); --resume JOURNAL replays it, and SIGINT/SIGTERM
   drain gracefully (exit 130, resumable).

   Usage: ifp_juliet [CONFIG] [-v] [-j N] [--cache-dir DIR] [--no-cache]
                     [--journal FILE] [--resume FILE] [--log FILE] *)

module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Rcache = Ifp_campaign.Cache
module Events = Ifp_campaign.Events
module Cli = Ifp_campaign.Cli

let config_of = function
  | "baseline" -> Core.Vm.baseline
  | "subheap" -> Core.Vm.ifp_subheap
  | "wrapped" -> Core.Vm.ifp_wrapped
  | "subheap-np" -> Core.Vm.no_promote Core.Vm.Alloc_subheap
  | "wrapped-np" -> Core.Vm.no_promote Core.Vm.Alloc_wrapped
  | "mixed" -> Core.Vm.ifp_mixed
  | "no-narrowing" -> Core.Vm.no_narrowing Core.Vm.Alloc_subheap
  | s ->
    Printf.eprintf "unknown config %s\n" s;
    exit 1

let () =
  let cfg_name = ref "wrapped" in
  let verbose = ref false in
  let workers = ref 1 in
  let cache_dir = ref (Some ".ifp-cache") in
  let cache_max_bytes = ref None in
  let log_path = ref None in
  let journal_path = ref None in
  let resume = ref false in
  let argv = Sys.argv in
  let i = ref 1 in
  let next what =
    incr i;
    if !i >= Array.length argv then (
      Printf.eprintf "missing argument to %s\n" what;
      exit 1)
    else argv.(!i)
  in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "-v" -> verbose := true
    | "-j" | "--jobs" ->
      workers := max 1 (int_of_string_opt (next "-j") |> Option.value ~default:1)
    | "--cache-dir" -> cache_dir := Some (next "--cache-dir")
    | "--no-cache" -> cache_dir := None
    | "--cache-max-bytes" -> (
      let s = next "--cache-max-bytes" in
      match Cli.parse_bytes s with
      | Some b -> cache_max_bytes := Some b
      | None ->
        Printf.eprintf "bad --cache-max-bytes argument %S\n" s;
        exit 1)
    | "--log" -> log_path := Some (next "--log")
    | "--journal" -> journal_path := Some (next "--journal")
    | "--resume" ->
      journal_path := Some (next "--resume");
      resume := true
    | s when String.length s > 0 && s.[0] = '-' ->
      Printf.eprintf "unknown option %s\n" s;
      exit 1
    | name -> cfg_name := name);
    incr i
  done;
  let cfg_name = !cfg_name in
  let config = config_of cfg_name in
  let cases = Ifp_juliet.Juliet.all_cases () in
  let job_name (c : Ifp_juliet.Juliet.case) which =
    Printf.sprintf "juliet/%s/%s/%s" c.id which cfg_name
  in
  let jobs =
    List.concat_map
      (fun (c : Ifp_juliet.Juliet.case) ->
        [
          Job.make ~name:(job_name c "bad") ~group:("juliet/" ^ c.id)
            ~variant:cfg_name ~config c.bad;
          Job.make ~name:(job_name c "good") ~group:("juliet/" ^ c.id)
            ~variant:cfg_name ~config c.good;
        ])
      cases
  in
  let cache =
    Option.map
      (fun dir -> Rcache.create ?max_bytes:!cache_max_bytes ~dir ())
      !cache_dir
  in
  let stop = Cli.install_interrupt () in
  let journal, replay = Cli.open_journal ~path:!journal_path ~resume:!resume in
  let log, log_truncated = Cli.open_log ~path:!log_path ~resume:!resume in
  Cli.emit_resumed log ~replay ~log_truncated;
  let outcomes, stats =
    Engine.run ~workers:!workers ?cache ?journal ~log ~stop jobs
  in
  if stats.Engine.interrupted then
    Cli.finish
      ~hint:
        (Printf.sprintf "juliet campaign interrupted: %d skipped%s"
           stats.Engine.skipped
           (match !journal_path with
           | Some p -> Printf.sprintf "; resume with --resume %s" p
           | None -> ""))
      ~journal ~log ~interrupted:true ();
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun (o : Engine.outcome) -> Hashtbl.replace tbl o.job.Job.name o)
    outcomes;
  let run (c : Ifp_juliet.Juliet.case) which =
    let name = job_name c (match which with `Bad -> "bad" | `Good -> "good") in
    match Hashtbl.find_opt tbl name with
    | Some { Engine.result = Some r; _ } -> r
    | Some { Engine.status = Engine.Failed why; _ } ->
      Core.Report.aborted_result ("campaign job failed: " ^ why)
    | _ ->
      Core.Vm.run ~config (match which with `Bad -> c.bad | `Good -> c.good)
  in
  let outcomes, summary = Ifp_juliet.Juliet.run_all_with ~run cases in
  Printf.printf "Juliet-style functional evaluation under %s (%d cases)\n\n"
    cfg_name summary.total;
  List.iter
    (fun (o : Ifp_juliet.Juliet.outcome) ->
      let verdict =
        match o.bad_verdict with
        | Ifp_juliet.Juliet.Detected -> "DETECTED"
        | Silent -> "missed"
        | False_positive -> "false-positive"
        | Error m -> "ERROR " ^ m
      in
      if !verbose || o.bad_verdict <> Ifp_juliet.Juliet.Detected || not o.good_ok
      then
        Printf.printf "  %-36s bad: %-10s good: %s\n" o.case.id verdict
          (if o.good_ok then "ok" else "FAILED"))
    outcomes;
  Printf.printf
    "\nsummary: %d/%d bad cases detected, %d missed, %d good-case failures\n"
    summary.detected summary.total summary.missed summary.good_failures;
  Cli.finish ~journal ~log ~interrupted:false ()
