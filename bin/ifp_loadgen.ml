(* Load generator for ifp_serviced: forks N client processes, each with
   its own tenant identity, and hammers the daemon with a mixed stream
   of experiment, fault-injection and Juliet jobs (tens of thousands of
   submissions cycling over a few dozen distinct jobs, so the sharded
   result cache sees both cold misses and a long hot tail).

   Each child records per-job latency, backpressure rejections and the
   MD5 of every completion's canonical result bytes. The parent merges
   the summaries, computes exact p50/p95/p99 and throughput (overall and
   per tenant), cross-checks that every client saw identical bytes for
   identical job digests, optionally re-runs every distinct job directly
   through Engine.default_runner to assert daemon-served ≡ direct-run
   byte-for-byte (--verify, on by default), asks the daemon for its own
   stats snapshot, and writes the whole benchmark to BENCH_service.json.

   Exits nonzero on any child failure, cross-client inconsistency or
   verification mismatch.

   Usage: ifp_loadgen [--socket PATH] [--clients N] [-n JOBS]
                      [--seeds N] [--juliet N] [--out FILE]
                      [--no-verify] [--quiet] *)

module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Events = Ifp_campaign.Events
module Vm = Ifp_vm.Vm
module Report = Core.Report
module W = Ifp_workloads.Workload
module Registry = Ifp_workloads.Registry
module Fault = Ifp_faultinject.Fault
module Victim = Ifp_faultinject.Victim
module Juliet = Ifp_juliet.Juliet
module Client = Ifp_service.Client
module Protocol = Ifp_service.Protocol
module Chaosproxy = Ifp_service.Chaosproxy

(* ---------------- options ---------------- *)

type opts = {
  socket : string;
  clients : int;
  jobs : int;
  seeds : int;  (** fault-plan seeds per class x variant *)
  juliet : int;  (** Juliet cases in the mix (good+bad each) *)
  out : string;
  verify : bool;
  quiet : bool;
  chaos_seed : int64 option;  (** Some = interpose the chaos proxy *)
  chaos_drop : float;
  chaos_corrupt : float;
  chaos_delay : float;
  chaos_truncate : float;
  chaos_dribble : float;
  chaos_dup : float;
  resilient : bool;  (** children use Client.Resilient *)
  budget : float;  (** per-submit wall-clock budget (resilient mode) *)
}

let default_opts =
  {
    socket = "ifp-service.sock";
    clients = 2;
    jobs = 10_000;
    seeds = 2;
    juliet = 8;
    out = "BENCH_service.json";
    verify = true;
    quiet = false;
    chaos_seed = None;
    chaos_drop = 0.02;
    chaos_corrupt = 0.02;
    chaos_delay = 0.02;
    chaos_truncate = 0.01;
    chaos_dribble = 0.01;
    chaos_dup = 0.01;
    resilient = false;
    budget = 120.0;
  }

let usage () =
  prerr_endline
    "usage: ifp_loadgen [--socket PATH] [--clients N] [-n JOBS]\n\
    \                   [--seeds N] [--juliet N] [--out FILE]\n\
    \                   [--no-verify] [--quiet]\n\
    \                   [--via-chaos SEED] [--chaos-drop R]\n\
    \                   [--chaos-corrupt R] [--chaos-delay R]\n\
    \                   [--chaos-truncate R] [--chaos-dribble R]\n\
    \                   [--chaos-dup R] [--resilient] [--budget SECS]\n\
     Hammers a running ifp_serviced with a mixed job stream from N\n\
     forked client processes and writes throughput + latency quantiles\n\
     to --out (default BENCH_service.json).\n\
     --via-chaos SEED interposes a deterministic network-chaos proxy\n\
     between the clients and the daemon (per-chunk fault rates set by\n\
     the --chaos-* flags); --resilient switches the clients to the\n\
     reconnecting circuit-breaker client so the run converges anyway.";
  exit 1

let parse_opts argv =
  let o = ref default_opts in
  let i = ref 1 in
  let next what =
    incr i;
    if !i >= Array.length argv then (
      Printf.eprintf "missing argument to %s\n" what;
      usage ())
    else argv.(!i)
  in
  let int_arg what =
    let s = next what in
    match int_of_string_opt s with
    | Some n when n >= 0 -> n
    | _ ->
      Printf.eprintf "bad %s argument %S\n" what s;
      usage ()
  in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "--socket" -> o := { !o with socket = next "--socket" }
    | "--clients" -> o := { !o with clients = max 1 (int_arg "--clients") }
    | "-n" | "--jobs" -> o := { !o with jobs = max 1 (int_arg "-n") }
    | "--seeds" -> o := { !o with seeds = max 1 (int_arg "--seeds") }
    | "--juliet" -> o := { !o with juliet = int_arg "--juliet" }
    | "--out" -> o := { !o with out = next "--out" }
    | "--verify" -> o := { !o with verify = true }
    | "--no-verify" -> o := { !o with verify = false }
    | "--quiet" -> o := { !o with quiet = true }
    | "--via-chaos" -> (
      let s = next "--via-chaos" in
      match Int64.of_string_opt s with
      | Some seed -> o := { !o with chaos_seed = Some seed }
      | None ->
        Printf.eprintf "bad --via-chaos seed %S\n" s;
        usage ())
    | ( "--chaos-drop" | "--chaos-corrupt" | "--chaos-delay"
      | "--chaos-truncate" | "--chaos-dribble" | "--chaos-dup" ) as what -> (
      let s = next what in
      match float_of_string_opt s with
      | Some r when r >= 0.0 && r <= 1.0 ->
        o :=
          (match what with
          | "--chaos-drop" -> { !o with chaos_drop = r }
          | "--chaos-corrupt" -> { !o with chaos_corrupt = r }
          | "--chaos-delay" -> { !o with chaos_delay = r }
          | "--chaos-truncate" -> { !o with chaos_truncate = r }
          | "--chaos-dribble" -> { !o with chaos_dribble = r }
          | _ -> { !o with chaos_dup = r })
      | _ ->
        Printf.eprintf "bad %s rate %S\n" what s;
        usage ())
    | "--resilient" -> o := { !o with resilient = true }
    | "--budget" -> (
      let s = next "--budget" in
      match float_of_string_opt s with
      | Some b when b > 0.0 -> o := { !o with budget = b }
      | _ ->
        Printf.eprintf "bad --budget argument %S\n" s;
        usage ())
    | "-h" | "--help" -> usage ()
    | s ->
      Printf.eprintf "unknown option %s\n" s;
      usage ());
    incr i
  done;
  !o

(* ---------------- the distinct job mix ---------------- *)

(* the same cheap workloads the campaign tests use: the point here is
   protocol/scheduler/cache traffic, not simulator wall-clock *)
let experiment_workloads = [ "wolfcrypt-dh"; "power"; "ks" ]

let experiment_jobs () =
  List.concat_map
    (fun name ->
      match Registry.find name with
      | None -> []
      | Some wl ->
        let prog = Lazy.force wl.W.prog in
        List.map
          (fun (vname, config) ->
            Job.make ~name:(name ^ "/" ^ vname) ~group:name ~variant:vname
              ~config prog)
          Report.variants)
    experiment_workloads

let fault_variants =
  [
    ("baseline", Vm.baseline);
    ("ifp", Vm.ifp_wrapped);
    ("ifp-np", Vm.no_promote Vm.Alloc_wrapped);
  ]

let fault_jobs ~seeds =
  let prog = Victim.program () in
  List.concat_map
    (fun cls ->
      List.concat_map
        (fun (vname, config) ->
          List.init seeds (fun seed ->
              let plan = Fault.default_plan cls ~seed:(Int64.of_int seed) in
              Job.make
                ~name:
                  (Printf.sprintf "fault/%s/%s/%d" (Fault.class_name cls)
                     vname seed)
                ~group:("fault/" ^ Fault.class_name cls)
                ~variant:vname
                ~config:{ config with Vm.fault_plan = Some plan }
                prog))
        fault_variants)
    Fault.all_classes

let juliet_jobs ~count =
  if count <= 0 then []
  else
    let config = Vm.ifp_wrapped in
    let cases = Juliet.all_cases () in
    let cases = List.filteri (fun i _ -> i < count) cases in
    List.concat_map
      (fun (c : Juliet.case) ->
        [
          Job.make
            ~name:(Printf.sprintf "juliet/%s/bad" c.id)
            ~group:("juliet/" ^ c.id) ~variant:"wrapped" ~config c.bad;
          Job.make
            ~name:(Printf.sprintf "juliet/%s/good" c.id)
            ~group:("juliet/" ^ c.id) ~variant:"wrapped" ~config c.good;
        ])
      cases

let distinct_jobs opts =
  let jobs =
    experiment_jobs () @ fault_jobs ~seeds:opts.seeds
    @ juliet_jobs ~count:opts.juliet
  in
  if jobs = [] then (
    prerr_endline "ifp_loadgen: empty job mix";
    exit 1);
  Array.of_list jobs

(* ---------------- child processes ---------------- *)

type child_summary = {
  cs_tenant : string;
  cs_weight : int;
  cs_done : int;
  cs_busy : int;  (** backpressure rejections absorbed by retry *)
  cs_cache_hits : int;  (** completions flagged from_cache *)
  cs_not_done : int;  (** completions with a non-Done engine status *)
  cs_lat : float array;  (** per-job seconds, submit to reply *)
  cs_md5 : (string * string) list;  (** job digest -> MD5 of result bytes *)
  cs_errors : string list;
  (* resilient-mode recovery counters (all 0 for the plain client) *)
  cs_reconnects : int;
  cs_resubmits : int;
  cs_breaker : (int * int * int);  (** (opens, half_opens, closes) *)
}

(* child [k] takes stream positions k, k+clients, k+2*clients, ... so
   every client sees the full mix and distinct jobs interleave across
   tenants (maximal shard-lock and scheduler contention). [socket] is
   the daemon — or the chaos proxy standing in front of it. *)
let run_child ~opts ~socket ~jobs ~k ~out_file =
  let tenant = "t" ^ string_of_int k in
  let weight = 1 + (k mod 2) in
  let n_distinct = Array.length jobs in
  let busy = ref 0 in
  let cache_hits = ref 0 in
  let not_done = ref 0 in
  let lat = ref [] in
  let md5 = Hashtbl.create 64 in
  let errors = ref [] in
  let completed = ref 0 in
  let reconnects = ref 0 in
  let resubmits = ref 0 in
  let breaker_transitions = ref (0, 0, 0) in
  let record job (comp : Protocol.completion) t0 =
    lat := (Unix.gettimeofday () -. t0) :: !lat;
    incr completed;
    if comp.Protocol.c_from_cache then incr cache_hits;
    (match comp.Protocol.c_status with
    | Engine.Done -> ()
    | st ->
      incr not_done;
      errors :=
        Printf.sprintf "%s: %s" job.Job.name (Protocol.status_string st)
        :: !errors);
    let h = Digest.to_hex (Digest.string comp.Protocol.c_result_bytes) in
    match Hashtbl.find_opt md5 comp.Protocol.c_digest with
    | None -> Hashtbl.add md5 comp.Protocol.c_digest h
    | Some h' when h' = h -> ()
    | Some h' ->
      errors :=
        Printf.sprintf "%s: result bytes changed between repeats (%s vs %s)"
          job.Job.name h' h
        :: !errors
  in
  (try
     if opts.resilient then begin
       (* the self-healing client: survives the chaos proxy and daemon
          restarts by reconnecting + idempotently re-submitting. The
          per-frame io deadline scales down with the call budget: a
          dropped frame must cost a slice of the budget, not the 30 s
          default (one drop would otherwise eat half of --budget 60) *)
       let io_timeout = Float.max 1.0 (Float.min 30.0 (opts.budget /. 12.0)) in
       let rt =
         Client.Resilient.create
           (Client.Resilient.config ~weight ~io_timeout
              ~connect_timeout:(Float.min 5.0 io_timeout)
              ~call_budget:opts.budget ~socket ~tenant ())
       in
       let i = ref k in
       while !i < opts.jobs do
         let job = jobs.(!i mod n_distinct) in
         let t0 = Unix.gettimeofday () in
         record job (Client.Resilient.submit rt job) t0;
         i := !i + opts.clients
       done;
       busy := Client.Resilient.busy_retries rt;
       reconnects := Client.Resilient.reconnects rt;
       resubmits := Client.Resilient.resubmits rt;
       breaker_transitions :=
         Ifp_service.Breaker.transitions (Client.Resilient.breaker rt);
       Client.Resilient.close rt
     end
     else begin
       let c = Client.connect ~weight ~socket ~tenant () in
       let i = ref k in
       while !i < opts.jobs do
         let job = jobs.(!i mod n_distinct) in
         let t0 = Unix.gettimeofday () in
         record job (Client.submit_wait ~on_busy:(fun _ -> incr busy) c job) t0;
         i := !i + opts.clients
       done;
       Client.close c
     end
   with e -> errors := ("client " ^ tenant ^ ": " ^ Printexc.to_string e) :: !errors);
  let summary =
    {
      cs_tenant = tenant;
      cs_weight = weight;
      cs_done = !completed;
      cs_busy = !busy;
      cs_cache_hits = !cache_hits;
      cs_not_done = !not_done;
      cs_lat = Array.of_list (List.rev !lat);
      cs_md5 = Hashtbl.fold (fun k v acc -> (k, v) :: acc) md5 [];
      cs_errors = List.rev !errors;
      cs_reconnects = !reconnects;
      cs_resubmits = !resubmits;
      cs_breaker = !breaker_transitions;
    }
  in
  let oc = open_out_bin out_file in
  Marshal.to_channel oc summary [];
  close_out oc;
  (* _exit: skip at_exit so the child never flushes the parent's
     buffered stdout a second time *)
  if summary.cs_errors = [] then Unix._exit 0 else Unix._exit 1

(* ---------------- the chaos proxy child ----------------

   The proxy needs pump threads, and this parent forks client processes
   — forking a multithreaded OCaml process is unsafe (only the forking
   thread survives; any lock held by another thread stays locked
   forever). So the proxy lives in its own single-purpose forked child:
   the parent stays thread-free until all forks are done, and the proxy
   child never forks. On SIGTERM the child stops the proxy, writes its
   stats (marshalled Events.json) to [stats_file], and exits. *)

let run_proxy_child ~plan ~listen ~upstream ~stats_file =
  let stop = Atomic.make false in
  let handler _ = Atomic.set stop true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
  Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
  let p = Chaosproxy.start ~plan ~listen ~upstream () in
  while not (Atomic.get stop) do
    Thread.delay 0.05
  done;
  Chaosproxy.stop p;
  let oc = open_out_bin stats_file in
  Marshal.to_channel oc (Chaosproxy.stats_json p) [];
  close_out oc;
  Unix._exit 0

let start_chaos_proxy opts seed =
  let plan =
    Chaosproxy.plan ~delay_rate:opts.chaos_delay ~corrupt_rate:opts.chaos_corrupt
      ~drop_rate:opts.chaos_drop ~truncate_rate:opts.chaos_truncate
      ~dribble_rate:opts.chaos_dribble ~duplicate_rate:opts.chaos_dup ~seed ()
  in
  let listen = opts.socket ^ ".chaos" in
  let stats_file = Filename.temp_file "ifp-chaos" ".stats" in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 -> run_proxy_child ~plan ~listen ~upstream:opts.socket ~stats_file
  | pid ->
    (* wait for the proxy socket before unleashing the clients *)
    let rec wait n =
      if n > 0 && not (Sys.file_exists listen) then (
        Unix.sleepf 0.02;
        wait (n - 1))
    in
    wait 250;
    (pid, listen, stats_file, Chaosproxy.fingerprint plan)

let stop_chaos_proxy (pid, _listen, stats_file, _fp) =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
  let stats =
    try
      let ic = open_in_bin stats_file in
      let j : Events.json = Marshal.from_channel ic in
      close_in ic;
      j
    with _ -> Events.Null
  in
  (try Sys.remove stats_file with Sys_error _ -> ());
  stats

(* ---------------- aggregation ---------------- *)

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (q *. float n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let latency_json lat =
  let sorted = Array.copy lat in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let mean =
    if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 sorted /. float n
  in
  let ms s = Events.Float (1000.0 *. s) in
  Events.Obj
    [
      ("count", Events.Int n);
      ("mean_ms", ms mean);
      ("p50_ms", ms (quantile sorted 0.50));
      ("p95_ms", ms (quantile sorted 0.95));
      ("p99_ms", ms (quantile sorted 0.99));
      ("max_ms", ms (if n = 0 then 0.0 else sorted.(n - 1)));
    ]

let () =
  (* clients write into sockets the chaos proxy severs at will: the
     write must surface as EPIPE (a retryable connection failure the
     resilient client absorbs), not SIGPIPE's default process kill.
     Set before forking so every client child and the proxy child
     inherit it. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let opts = parse_opts Sys.argv in
  let jobs = distinct_jobs opts in
  if not opts.quiet then
    Printf.printf
      "ifp_loadgen: %d jobs (%d distinct) across %d clients -> %s\n%!"
      opts.jobs (Array.length jobs) opts.clients opts.socket;
  let chaos = Option.map (start_chaos_proxy opts) opts.chaos_seed in
  let client_socket =
    match chaos with
    | Some (_, listen, _, fp) ->
      if not opts.quiet then
        Printf.printf "ifp_loadgen: chaos proxy %s on %s -> %s\n%!" fp listen
          opts.socket;
      listen
    | None -> opts.socket
  in
  let t_start = Unix.gettimeofday () in
  let children =
    List.init opts.clients (fun k ->
        let out_file = Filename.temp_file "ifp-loadgen" ".child" in
        flush stdout;
        flush stderr;
        match Unix.fork () with
        | 0 -> run_child ~opts ~socket:client_socket ~jobs ~k ~out_file
        | pid -> (pid, out_file))
  in
  let child_failed = ref false in
  let summaries =
    List.map
      (fun (pid, out_file) ->
        let _, status = Unix.waitpid [] pid in
        (match status with
        | Unix.WEXITED 0 -> ()
        | _ -> child_failed := true);
        let summary =
          try
            let ic = open_in_bin out_file in
            let s : child_summary = Marshal.from_channel ic in
            close_in ic;
            Some s
          with _ -> None
        in
        (try Sys.remove out_file with Sys_error _ -> ());
        summary)
      children
    |> List.filter_map Fun.id
  in
  let wall = Unix.gettimeofday () -. t_start in
  let chaos_stats = Option.map stop_chaos_proxy chaos in
  if List.length summaries < opts.clients then child_failed := true;
  List.iter
    (fun s ->
      List.iter
        (fun e -> Printf.eprintf "ifp_loadgen: %s: %s\n" s.cs_tenant e)
        s.cs_errors)
    summaries;
  let total_done = List.fold_left (fun a s -> a + s.cs_done) 0 summaries in
  let total_busy = List.fold_left (fun a s -> a + s.cs_busy) 0 summaries in
  let total_hits =
    List.fold_left (fun a s -> a + s.cs_cache_hits) 0 summaries
  in
  let total_not_done =
    List.fold_left (fun a s -> a + s.cs_not_done) 0 summaries
  in
  let total_reconnects =
    List.fold_left (fun a s -> a + s.cs_reconnects) 0 summaries
  in
  let total_resubmits =
    List.fold_left (fun a s -> a + s.cs_resubmits) 0 summaries
  in
  let breaker_opens, breaker_half_opens, breaker_closes =
    List.fold_left
      (fun (o, h, c) s ->
        let o', h', c' = s.cs_breaker in
        (o + o', h + h', c + c'))
      (0, 0, 0) summaries
  in
  let all_lat = Array.concat (List.map (fun s -> s.cs_lat) summaries) in
  (* every tenant that ran a given digest must have seen the same bytes:
     cache-served, queue-served and freshly-run replies all agree *)
  let observed = Hashtbl.create 64 in
  let consistency_errors = ref 0 in
  List.iter
    (fun s ->
      List.iter
        (fun (digest, h) ->
          match Hashtbl.find_opt observed digest with
          | None -> Hashtbl.add observed digest h
          | Some h' when h' = h -> ()
          | Some _ ->
            incr consistency_errors;
            Printf.eprintf
              "ifp_loadgen: cross-client result mismatch for digest %s\n"
              digest)
        s.cs_md5)
    summaries;
  (* --verify: the acceptance check — daemon-served results must be
     byte-identical (canonical No_sharing marshalling) to running the
     same job directly through the engine's runner in this process *)
  let verify_checked = ref 0 in
  let verify_mismatches = ref 0 in
  if opts.verify then begin
    if not opts.quiet then
      Printf.printf "ifp_loadgen: verifying %d distinct jobs vs direct run...\n%!"
        (Array.length jobs);
    let seen = Hashtbl.create 64 in
    Array.iter
      (fun job ->
        let digest = Job.digest job in
        if not (Hashtbl.mem seen digest) then begin
          Hashtbl.add seen digest ();
          match Hashtbl.find_opt observed digest with
          | None -> ()  (* job count below mix size: never submitted *)
          | Some daemon_md5 ->
            incr verify_checked;
            let direct =
              Protocol.encode_result (Some (Engine.default_runner job))
            in
            let direct_md5 = Digest.to_hex (Digest.string direct) in
            if direct_md5 <> daemon_md5 then begin
              incr verify_mismatches;
              Printf.eprintf
                "ifp_loadgen: VERIFY MISMATCH %s (daemon %s, direct %s)\n"
                job.Job.name daemon_md5 direct_md5
            end
        end)
      jobs
  end;
  (* the daemon's own view: shard hit rates, queue depths, utilization *)
  let server_stats =
    try
      let c = Client.connect ~socket:opts.socket ~tenant:"loadgen-stats" () in
      let json = Client.stats c in
      Client.close c;
      json
    with _ -> Events.Null
  in
  let throughput = if wall > 0.0 then float total_done /. wall else 0.0 in
  let tenant_json s =
    Events.Obj
      [
        ("tenant", Events.String s.cs_tenant);
        ("weight", Events.Int s.cs_weight);
        ("jobs", Events.Int s.cs_done);
        ("busy_rejections", Events.Int s.cs_busy);
        ("cache_hits", Events.Int s.cs_cache_hits);
        ("latency", latency_json s.cs_lat);
      ]
  in
  let bench =
    Events.Obj
      [
        ("bench", Events.String "service");
        ("socket", Events.String opts.socket);
        ("clients", Events.Int opts.clients);
        ("jobs_requested", Events.Int opts.jobs);
        ("jobs_completed", Events.Int total_done);
        ("distinct_jobs", Events.Int (Array.length jobs));
        ("wall_s", Events.Float wall);
        ("throughput_jobs_per_s", Events.Float throughput);
        ("latency", latency_json all_lat);
        ("busy_rejections", Events.Int total_busy);
        ("client_observed_cache_hits", Events.Int total_hits);
        ("non_done_completions", Events.Int total_not_done);
        ("cross_client_mismatches", Events.Int !consistency_errors);
        ( "verify",
          if opts.verify then
            Events.Obj
              [
                ("checked", Events.Int !verify_checked);
                ("mismatches", Events.Int !verify_mismatches);
              ]
          else Events.Null );
        ("tenants", Events.List (List.map tenant_json summaries));
        ( "chaos",
          match (chaos_stats, opts.chaos_seed) with
          | Some stats, Some seed ->
            Events.Obj
              [
                ("seed", Events.String (Int64.to_string seed));
                ("proxy", stats);
              ]
          | _ -> Events.Null );
        ( "resilience",
          if opts.resilient then
            Events.Obj
              [
                ("reconnects", Events.Int total_reconnects);
                ("resubmits", Events.Int total_resubmits);
                ("breaker_opens", Events.Int breaker_opens);
                ("breaker_half_opens", Events.Int breaker_half_opens);
                ("breaker_closes", Events.Int breaker_closes);
              ]
          else Events.Null );
        ("server", server_stats);
      ]
  in
  Events.write_json_file ~path:opts.out bench;
  if not opts.quiet then begin
    let sorted = Array.copy all_lat in
    Array.sort compare sorted;
    Printf.printf
      "ifp_loadgen: %d jobs in %.2f s (%.0f jobs/s)  p50 %.2f ms  p95 %.2f \
       ms  p99 %.2f ms\n"
      total_done wall throughput
      (1000.0 *. quantile sorted 0.50)
      (1000.0 *. quantile sorted 0.95)
      (1000.0 *. quantile sorted 0.99);
    Printf.printf
      "ifp_loadgen: %d busy rejections, %d client-observed cache hits; \
       wrote %s\n"
      total_busy total_hits opts.out;
    if opts.resilient then
      Printf.printf
        "ifp_loadgen: resilience: %d reconnects, %d resubmits, breaker \
         %d/%d/%d (open/half-open/close)\n"
        total_reconnects total_resubmits breaker_opens breaker_half_opens
        breaker_closes;
    if opts.verify then
      Printf.printf "ifp_loadgen: verify: %d checked, %d mismatches\n"
        !verify_checked !verify_mismatches
  end;
  let failed =
    !child_failed || total_done < opts.jobs || !consistency_errors > 0
    || !verify_mismatches > 0 || total_not_done > 0
  in
  exit (if failed then 1 else 0)
