(* The experiment daemon: serves experiment/fault/juliet jobs to many
   concurrent clients over a Unix-domain socket (see lib/service and
   DESIGN.md §9).

   The process runs until SIGTERM/SIGINT, then drains gracefully:
   in-flight and queued jobs complete and are answered, new work is
   refused, the socket is unlinked, and the final stats snapshot is
   printed (and written to --stats-out) before a clean exit 0.

   Usage: ifp_serviced [--socket PATH] [-j N] [--cache-dir DIR]
                       [--no-cache] [--cache-max-bytes BYTES[k|M|G]]
                       [--shards N] [--queue-depth N] [--retries N]
                       [--timeout SECS] [--log FILE] [--stats-out FILE]
                       [--ready-fd FD] *)

module Cli = Ifp_campaign.Cli
module Events = Ifp_campaign.Events
module Journal = Ifp_campaign.Journal
module Shard = Ifp_service.Shard
module Server = Ifp_service.Server

type opts = {
  socket : string;
  workers : int;
  cache_dir : string option;
  cache_max_bytes : int option;
  shards : int;
  queue_depth : int;
  retries : int;
  timeout : float option;
  drain_timeout : float;
  idle_timeout : float;
  io_timeout : float;
  poison_threshold : int;
  journal_path : string option;
  log_path : string option;
  stats_out : string option;
  ready_fd : int option;
}

let default_opts =
  {
    socket = "ifp-service.sock";
    workers = 2;
    cache_dir = Some ".ifp-service-cache";
    cache_max_bytes = None;
    shards = 8;
    queue_depth = 64;
    retries = 1;
    timeout = None;
    drain_timeout = 60.0;
    idle_timeout = 60.0;
    io_timeout = 30.0;
    poison_threshold = 3;
    journal_path = None;
    log_path = Some "service.jsonl";
    stats_out = None;
    ready_fd = None;
  }

let usage () =
  prerr_endline
    "usage: ifp_serviced [--socket PATH] [-j N] [--cache-dir DIR]\n\
    \                    [--no-cache] [--cache-max-bytes BYTES[k|M|G]]\n\
    \                    [--shards N] [--queue-depth N] [--retries N]\n\
    \                    [--timeout SECS] [--drain-timeout SECS]\n\
    \                    [--idle-timeout SECS] [--io-timeout SECS]\n\
    \                    [--poison-threshold N] [--journal FILE]\n\
    \                    [--log FILE] [--no-log]\n\
    \                    [--stats-out FILE] [--ready-fd FD]\n\
     Serves experiment jobs over a Unix-domain socket until SIGTERM,\n\
     then drains gracefully and exits 0. --ready-fd FD writes one byte\n\
     to FD once the socket is listening (for supervisors and CI).\n\
     --journal FILE gives crash-restart durability: completions are\n\
     journaled before the reply, and a restarted daemon replays them\n\
     byte-identically. --idle-timeout / --io-timeout reap idle and\n\
     slow-loris connections; --poison-threshold quarantines a job\n\
     digest after N worker crashes.";
  exit 1

let parse_opts argv =
  let o = ref default_opts in
  let i = ref 1 in
  let next what =
    incr i;
    if !i >= Array.length argv then (
      Printf.eprintf "missing argument to %s\n" what;
      usage ())
    else argv.(!i)
  in
  let int_arg what =
    let s = next what in
    match int_of_string_opt s with
    | Some n when n >= 0 -> n
    | _ ->
      Printf.eprintf "bad %s argument %S\n" what s;
      usage ()
  in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "--socket" -> o := { !o with socket = next "--socket" }
    | "-j" | "--jobs" | "--workers" -> o := { !o with workers = max 1 (int_arg "-j") }
    | "--cache-dir" -> o := { !o with cache_dir = Some (next "--cache-dir") }
    | "--no-cache" -> o := { !o with cache_dir = None }
    | "--cache-max-bytes" -> (
      let s = next "--cache-max-bytes" in
      match Cli.parse_bytes s with
      | Some b -> o := { !o with cache_max_bytes = Some b }
      | None ->
        Printf.eprintf "bad --cache-max-bytes argument %S\n" s;
        usage ())
    | "--shards" -> o := { !o with shards = max 1 (int_arg "--shards") }
    | "--queue-depth" -> o := { !o with queue_depth = max 1 (int_arg "--queue-depth") }
    | "--retries" -> o := { !o with retries = int_arg "--retries" }
    | "--timeout" -> (
      let s = next "--timeout" in
      match float_of_string_opt s with
      | Some t when t > 0.0 -> o := { !o with timeout = Some t }
      | Some _ -> o := { !o with timeout = None }
      | None ->
        Printf.eprintf "bad --timeout argument %S\n" s;
        usage ())
    | "--drain-timeout" | "--idle-timeout" | "--io-timeout" ->
      let what = argv.(!i) in
      let s = next what in
      (match float_of_string_opt s with
      | Some t when t > 0.0 ->
        o :=
          (match what with
          | "--drain-timeout" -> { !o with drain_timeout = t }
          | "--idle-timeout" -> { !o with idle_timeout = t }
          | _ -> { !o with io_timeout = t })
      | _ ->
        Printf.eprintf "bad %s argument %S\n" what s;
        usage ())
    | "--poison-threshold" ->
      o := { !o with poison_threshold = max 1 (int_arg "--poison-threshold") }
    | "--journal" -> o := { !o with journal_path = Some (next "--journal") }
    | "--log" -> o := { !o with log_path = Some (next "--log") }
    | "--no-log" -> o := { !o with log_path = None }
    | "--stats-out" -> o := { !o with stats_out = Some (next "--stats-out") }
    | "--ready-fd" -> o := { !o with ready_fd = Some (int_arg "--ready-fd") }
    | "-h" | "--help" -> usage ()
    | s ->
      Printf.eprintf "unknown option %s\n" s;
      usage ());
    incr i
  done;
  !o

let () =
  let opts = parse_opts Sys.argv in
  let shard =
    Option.map
      (fun dir ->
        Shard.create ?max_bytes:opts.cache_max_bytes ~dir ~shards:opts.shards
          ())
      opts.cache_dir
  in
  let log =
    match opts.log_path with
    | Some path -> Events.create ~path
    | None -> Events.null
  in
  (* crash-restart durability: resume over the existing journal (replay
     is authoritative — a restarted daemon serves prior results
     byte-identically), truncating any tail torn by a SIGKILL *)
  let journal =
    Option.map
      (fun path ->
        let j, replay = Journal.open_resume ~path in
        let n = List.length replay.Journal.entries in
        if n > 0 then
          Printf.printf "ifp_serviced: journal replayed %d entries from %s\n%!"
            n path;
        j)
      opts.journal_path
  in
  (* the daemon's whole point is install-then-restore: serve until a
     signal, drain, put the old handlers back, exit 0 *)
  let signals = Cli.install_stop () in
  let cfg =
    {
      (Server.default_config ~socket_path:opts.socket) with
      Server.workers = opts.workers;
      shard;
      queue_depth = opts.queue_depth;
      retries = opts.retries;
      job_timeout = opts.timeout;
      drain_timeout = opts.drain_timeout;
      idle_timeout = opts.idle_timeout;
      io_timeout = opts.io_timeout;
      poison_threshold = opts.poison_threshold;
      journal;
      log;
      banner = "ifp_serviced/1";
    }
  in
  Printf.printf "ifp_serviced: listening on %s (%d workers, %s)\n%!"
    opts.socket opts.workers
    (match opts.cache_dir with
    | Some dir -> Printf.sprintf "%d cache shards in %s" opts.shards dir
    | None -> "no cache");
  (* readiness signal for supervisors: one byte once the socket exists.
     Server.run binds before serving, but we only learn "bound" by
     polling; a pipe write after run returns would be too late, so we
     watch for the socket file from a helper thread. *)
  (match opts.ready_fd with
  | None -> ()
  | Some fdnum ->
    let fd : Unix.file_descr = Obj.magic (fdnum : int) in
    ignore
      (Thread.create
         (fun () ->
           let rec wait n =
             if n <= 0 then ()
             else if Sys.file_exists opts.socket then (
               (try ignore (Unix.write fd (Bytes.of_string "R") 0 1)
                with Unix.Unix_error _ -> ());
               try Unix.close fd with Unix.Unix_error _ -> ())
             else (
               Thread.delay 0.02;
               wait (n - 1))
           in
           wait 500)
         ()));
  let final = Server.run ~stop:signals.Cli.stop cfg in
  signals.Cli.restore ();
  (match opts.stats_out with
  | Some path -> Events.write_json_file ~path final
  | None -> ());
  print_endline (Events.json_to_string final);
  Option.iter Journal.close journal;
  Events.close log;
  (* clean drain is the daemon's success path — unlike the batch CLIs'
     exit 130, SIGTERM here means "retire", not "interrupted" *)
  exit 0
