(* Fault-injection campaign: corrupt the simulated machine mid-run and
   measure what each variant detects (the §3.3/§4.3 security argument,
   quantified).

   For every fault class x variant, N seeded plans are run against the
   pointer-chasing victim workload; each faulted run is compared to the
   variant's golden (uninjected) run and classified as
   detected / silent corruption / benign / not-fired. IFP variants are
   expected to detect every fired tag or metadata corruption; Baseline
   has no defense and is expected to show silent corruption for heap
   smashes.

   All runs go through the lib/campaign engine (parallel workers, result
   cache — fault plans are part of the job digest — JSONL log, per-job
   watchdog). The coverage table is printed on stdout and the per-class
   x per-variant counts are written to BENCH_faults.json.

   With --journal the campaign is crash-safe: completions are written
   ahead to a CRC32-framed journal, --resume JOURNAL replays them, and
   SIGINT/SIGTERM drain gracefully (exit 130, resumable).

   Usage: ifp_faults [--seeds N] [-j N] [--cache-dir DIR] [--no-cache]
                     [--log FILE] [--no-log] [--timeout SECS]
                     [--journal FILE] [--resume FILE]
                     [--retries N] [--out FILE] *)

open Core
module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Rcache = Ifp_campaign.Cache
module Events = Ifp_campaign.Events
module Cli = Ifp_campaign.Cli
module Fault = Ifp_faultinject.Fault
module Classify = Ifp_faultinject.Classify
module Victim = Ifp_faultinject.Victim
module Table = Ifp_util.Table

(* ---------------- options ---------------- *)

type opts = {
  seeds : int;
  workers : int;
  cache_dir : string option;
  cache_max_bytes : int option;
  log_path : string option;
  out : string;
  retries : int;
  timeout : float option;
  journal : string option;
  resume : bool;
}

let default_opts =
  {
    seeds = 20;
    workers = 1;
    cache_dir = Some ".ifp-cache";
    cache_max_bytes = None;
    log_path = Some "faults.jsonl";
    out = "BENCH_faults.json";
    retries = 1;
    timeout = Some 60.0;
    journal = None;
    resume = false;
  }

let usage () =
  prerr_endline
    "usage: ifp_faults [--seeds N] [-j N] [--cache-dir DIR] [--no-cache]\n\
    \                  [--cache-max-bytes BYTES[k|M|G]]\n\
    \                  [--log FILE] [--no-log] [--timeout SECS]\n\
    \                  [--journal FILE] [--resume FILE]\n\
    \                  [--retries N] [--out FILE]";
  exit 1

let parse_opts argv =
  let o = ref default_opts in
  let i = ref 1 in
  let next what =
    incr i;
    if !i >= Array.length argv then (
      Printf.eprintf "missing argument to %s\n" what;
      usage ())
    else argv.(!i)
  in
  let int_arg what =
    let s = next what in
    match int_of_string_opt s with
    | Some n when n >= 0 -> n
    | _ ->
      Printf.eprintf "bad %s argument %S\n" what s;
      usage ()
  in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "--seeds" -> o := { !o with seeds = max 1 (int_arg "--seeds") }
    | "-j" | "--jobs" -> o := { !o with workers = max 1 (int_arg "-j") }
    | "--cache-dir" -> o := { !o with cache_dir = Some (next "--cache-dir") }
    | "--no-cache" -> o := { !o with cache_dir = None }
    | "--cache-max-bytes" -> (
      let s = next "--cache-max-bytes" in
      match Cli.parse_bytes s with
      | Some b -> o := { !o with cache_max_bytes = Some b }
      | None ->
        Printf.eprintf "bad --cache-max-bytes argument %S\n" s;
        usage ())
    | "--log" -> o := { !o with log_path = Some (next "--log") }
    | "--no-log" -> o := { !o with log_path = None }
    | "--timeout" -> (
      let s = next "--timeout" in
      match float_of_string_opt s with
      | Some t when t > 0.0 -> o := { !o with timeout = Some t }
      | Some _ -> o := { !o with timeout = None }
      | None ->
        Printf.eprintf "bad --timeout argument %S\n" s;
        usage ())
    | "--retries" -> o := { !o with retries = int_arg "--retries" }
    | "--journal" -> o := { !o with journal = Some (next "--journal") }
    | "--resume" ->
      o := { !o with journal = Some (next "--resume"); resume = true }
    | "--out" -> o := { !o with out = next "--out" }
    | "-h" | "--help" -> usage ()
    | s ->
      Printf.eprintf "unknown option %s\n" s;
      usage ());
    incr i
  done;
  !o

(* ---------------- the job matrix ---------------- *)

(* wrapped allocation gives every heap object MAC'd local-offset
   metadata, so the metadata-targeting classes always have a target *)
let variants =
  [
    ("baseline", Vm.baseline);
    ("ifp", Vm.ifp_wrapped);
    ("ifp-np", Vm.no_promote Vm.Alloc_wrapped);
  ]

(* The temporal classes run their own matrix: the heap-retiring victim
   (so the program issues the colliding free itself) against spatial IFP
   — measuring what a spatial-only design sees of a temporal fault — and
   both temporal IFP allocators. The spatial matrix above is untouched:
   its classes, victim and configs are exactly the pre-temporal ones. *)
let is_temporal_class = function
  | Fault.Uaf_use | Fault.Double_free -> true
  | _ -> false

let spatial_classes =
  List.filter (fun c -> not (is_temporal_class c)) Fault.all_classes

let temporal_classes = List.filter is_temporal_class Fault.all_classes

let temporal_variants =
  [
    ("baseline", Vm.baseline);
    ("ifp", Vm.ifp_wrapped);
    ("ifp-t", { Vm.ifp_wrapped with Vm.temporal = true });
    ("ifp-sub-t", { Vm.ifp_subheap with Vm.temporal = true });
  ]

let golden_name vname = "golden/" ^ vname
let temporal_golden_name vname = "golden-t/" ^ vname

let fault_name cls vname seed =
  Printf.sprintf "fault/%s/%s/%d" (Fault.class_name cls) vname seed

let jobs ~seeds =
  let prog = Victim.program () in
  let tprog = Victim.temporal_program () in
  let golden =
    List.map
      (fun (vname, config) ->
        Job.make ~name:(golden_name vname) ~group:"golden" ~variant:vname
          ~config prog)
      variants
    @ List.map
        (fun (vname, config) ->
          Job.make
            ~name:(temporal_golden_name vname)
            ~group:"golden" ~variant:vname ~config tprog)
        temporal_variants
  in
  let faulted_matrix classes variants prog =
    List.concat_map
      (fun cls ->
        List.concat_map
          (fun (vname, config) ->
            List.init seeds (fun seed ->
                let plan = Fault.default_plan cls ~seed:(Int64.of_int seed) in
                Job.make
                  ~name:(fault_name cls vname seed)
                  ~group:("fault/" ^ Fault.class_name cls)
                  ~variant:vname
                  ~config:{ config with Vm.fault_plan = Some plan }
                  prog))
          variants)
      classes
  in
  golden
  @ faulted_matrix spatial_classes variants prog
  @ faulted_matrix temporal_classes temporal_variants tprog

(* ---------------- classification & tally ---------------- *)

let observed (r : Vm.result) =
  {
    Classify.outcome =
      (match r.Vm.outcome with
      | Vm.Finished n -> `Finished n
      | Vm.Trapped t -> `Trapped t
      | Vm.Aborted m -> `Aborted (Vm.abort_reason_string m));
    output = r.Vm.output;
  }

type tally = {
  mutable detected : int;  (** trapped with a class-appropriate trap *)
  mutable detected_other : int;  (** trapped, but not the expected trap *)
  mutable silent : int;
  mutable benign : int;
  mutable not_fired : int;
  mutable aborted : int;
  mutable engine_failed : int;  (** Failed / Timed_out at the engine level *)
}

let fresh_tally () =
  { detected = 0; detected_other = 0; silent = 0; benign = 0; not_fired = 0;
    aborted = 0; engine_failed = 0 }

let count tally = function
  | Classify.Detected { expected = true; _ } ->
    tally.detected <- tally.detected + 1
  | Classify.Detected { expected = false; _ } ->
    tally.detected_other <- tally.detected_other + 1
  | Classify.Silent_corruption -> tally.silent <- tally.silent + 1
  | Classify.Benign -> tally.benign <- tally.benign + 1
  | Classify.Not_fired -> tally.not_fired <- tally.not_fired + 1
  | Classify.Aborted _ -> tally.aborted <- tally.aborted + 1

(* detection rate over the runs where the fault actually landed *)
let fired_runs t =
  t.detected + t.detected_other + t.silent + t.benign + t.aborted

let detection_rate t =
  let fired = fired_runs t in
  if fired = 0 then None
  else Some (float_of_int (t.detected + t.detected_other) /. float_of_int fired)

(* ---------------- driver ---------------- *)

let () =
  let opts = parse_opts Sys.argv in
  let all_jobs = jobs ~seeds:opts.seeds in
  let cache =
    Option.map
      (fun dir -> Rcache.create ?max_bytes:opts.cache_max_bytes ~dir ())
      opts.cache_dir
  in
  let stop = Cli.install_interrupt () in
  let journal, replay = Cli.open_journal ~path:opts.journal ~resume:opts.resume in
  let log, log_truncated = Cli.open_log ~path:opts.log_path ~resume:opts.resume in
  Cli.emit_resumed log ~replay ~log_truncated;
  let outcomes, stats =
    Engine.run ~workers:opts.workers ?cache ?journal ~log ~stop
      ~retries:opts.retries ?job_timeout:opts.timeout all_jobs
  in
  if stats.Engine.interrupted then
    Cli.finish
      ~hint:
        (Printf.sprintf "fault campaign interrupted: %d skipped%s"
           stats.Engine.skipped
           (match opts.journal with
           | Some p -> Printf.sprintf "; resume with --resume %s" p
           | None -> ""))
      ~journal ~log ~interrupted:true ();
  let by_name = Hashtbl.create (Array.length outcomes * 2) in
  Array.iter
    (fun (o : Engine.outcome) -> Hashtbl.replace by_name o.Engine.job.Job.name o)
    outcomes;
  let result_of name =
    match Hashtbl.find_opt by_name name with
    | Some { Engine.result = Some r; _ } -> Some r
    | _ -> None
  in
  let goldens_of golden_name variants =
    List.map
      (fun (vname, _) ->
        match result_of (golden_name vname) with
        | Some r -> (vname, observed r)
        | None ->
          Printf.eprintf "fatal: golden run for %s did not complete\n" vname;
          exit 1)
      variants
  in
  let goldens = goldens_of golden_name variants in
  let tgoldens = goldens_of temporal_golden_name temporal_variants in
  (* classify every (class, variant, seed) cell *)
  let tallies_of classes variants goldens =
    List.map
      (fun cls ->
        ( cls,
          List.map
            (fun (vname, _) ->
              let t = fresh_tally () in
              for seed = 0 to opts.seeds - 1 do
                match Hashtbl.find_opt by_name (fault_name cls vname seed) with
                | Some { Engine.result = Some r; _ } ->
                  let fired = r.Vm.fault_injections <> [] in
                  count t
                    (Classify.classify ~cls ~fired
                       ~golden:(List.assoc vname goldens)
                       ~faulted:(observed r))
                | _ -> t.engine_failed <- t.engine_failed + 1
              done;
              (vname, t))
            variants ))
      classes
  in
  let tallies = tallies_of spatial_classes variants goldens in
  let ttallies = tallies_of temporal_classes temporal_variants tgoldens in
  (* ---------------- report ---------------- *)
  Printf.printf
    "== Fault-injection coverage: %d seeds per class x variant, victim %s ==\n"
    opts.seeds Victim.name;
  let header =
    [ "fault class"; "variant"; "detected"; "other-trap"; "silent"; "benign";
      "not-fired"; "aborted"; "failed"; "detection" ]
  in
  let rows_of tallies =
    List.concat_map
      (fun (cls, per_variant) ->
        List.map
          (fun (vname, t) ->
            [
              Fault.class_name cls;
              vname;
              string_of_int t.detected;
              string_of_int t.detected_other;
              string_of_int t.silent;
              string_of_int t.benign;
              string_of_int t.not_fired;
              string_of_int t.aborted;
              string_of_int t.engine_failed;
              (match detection_rate t with
              | None -> "-"
              | Some r -> Printf.sprintf "%.0f%%" (100.0 *. r));
            ])
          per_variant)
      tallies
  in
  Table.print ~header (rows_of tallies);
  Printf.printf
    "\n== Temporal fault coverage: %d seeds per class x variant, victim %s ==\n"
    opts.seeds Victim.temporal_name;
  Table.print ~header (rows_of ttallies);
  Printf.printf
    "\ncampaign: %d jobs, %d completed, %d failed, %d timed out, %d cache \
     hits (%.1fs)\n"
    stats.Engine.jobs stats.Engine.completed stats.Engine.failed
    stats.Engine.timed_out stats.Engine.cache_hits stats.Engine.wall_seconds;
  (* ---------------- aggregate (BENCH_faults.json) ---------------- *)
  let open Events in
  let tally_json t =
    Obj
      [
        ("detected", Int t.detected);
        ("detected_other_trap", Int t.detected_other);
        ("silent_corruption", Int t.silent);
        ("benign", Int t.benign);
        ("not_fired", Int t.not_fired);
        ("aborted", Int t.aborted);
        ("engine_failed", Int t.engine_failed);
        ( "detection_rate",
          match detection_rate t with None -> Null | Some r -> Float r );
      ]
  in
  Events.write_json_file ~path:opts.out
    (Obj
       [
         ("bench", String "ifp_faults");
         ("victim", String Victim.name);
         ("seeds", Int opts.seeds);
         ("model_digest", String Job.model_digest);
         ("campaign", Obj (Engine.stats_json stats));
         ( "classes",
           Obj
             (List.map
                (fun (cls, per_variant) ->
                  ( Fault.class_name cls,
                    Obj
                      (List.map
                         (fun (vname, t) -> (vname, tally_json t))
                         per_variant) ))
                tallies) );
         ("temporal_victim", String Victim.temporal_name);
         ( "temporal_classes",
           Obj
             (List.map
                (fun (cls, per_variant) ->
                  ( Fault.class_name cls,
                    Obj
                      (List.map
                         (fun (vname, t) -> (vname, tally_json t))
                         per_variant) ))
                ttallies) );
       ]);
  Printf.printf "wrote %s\n" opts.out;
  (* explicit exit: a Timed_out job's abandoned domain must not delay
     process death once the journal, log and aggregate are flushed *)
  Cli.finish ~journal ~log ~interrupted:false ()
