(* Tests for lib/service: wire framing (torn/truncated/corrupt/oversized
   frames), weighted-fair scheduling, and the daemon end-to-end —
   handshake rejection, concurrent multi-client byte-identity against
   direct engine runs, cache hits on repeats, backpressure, client
   disconnect mid-job, malformed-frame survival, and graceful drain. *)

open Core
module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Events = Ifp_campaign.Events
module Crc32 = Ifp_util.Crc32
module Frame = Ifp_service.Frame
module Protocol = Ifp_service.Protocol
module Sched = Ifp_service.Sched
module Shard = Ifp_service.Shard
module Server = Ifp_service.Server
module Client = Ifp_service.Client

let temp_dir prefix =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

(* ---------------- framing ---------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_raw fd s =
  let b = Bytes.of_string s in
  let n = Unix.write fd b 0 (Bytes.length b) in
  Alcotest.(check int) "raw write complete" (Bytes.length b) n

(* a hand-built header, so tests can lie about length and checksum *)
let header ~len ~crc =
  let b = Bytes.create 8 in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.set_int32_be b 4 crc;
  Bytes.to_string b

let check_framing_error what f =
  match f () with
  | _ -> Alcotest.fail (what ^ ": expected Framing_error")
  | exception Frame.Framing_error _ -> ()

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let payloads = [ ""; "x"; String.make 70_000 'q'; "\x00\xff\n tail" ] in
      (* a thread writes so the 70k payload can't deadlock the buffers *)
      let w =
        Thread.create
          (fun () ->
            List.iter (fun p -> Frame.write a p) payloads;
            Unix.close a)
          ()
      in
      List.iter
        (fun expected ->
          match Frame.read b with
          | Some got ->
            Alcotest.(check int) "payload length" (String.length expected)
              (String.length got);
            Alcotest.(check bool) "payload bytes" true (String.equal expected got)
          | None -> Alcotest.fail "unexpected EOF")
        payloads;
      Alcotest.(check bool) "clean EOF at frame boundary" true
        (Frame.read b = None);
      Thread.join w)

let test_frame_torn_header () =
  with_socketpair (fun a b ->
      write_raw a "\x00\x00\x01";
      Unix.close a;
      check_framing_error "torn header" (fun () -> Frame.read b))

let test_frame_truncated_payload () =
  with_socketpair (fun a b ->
      let payload = "hello framing" in
      write_raw a
        (header ~len:(String.length payload) ~crc:(Crc32.string payload));
      write_raw a (String.sub payload 0 4);
      Unix.close a;
      check_framing_error "truncated payload" (fun () -> Frame.read b))

let test_frame_crc_mismatch () =
  with_socketpair (fun a b ->
      let payload = "checksummed payload" in
      write_raw a
        (header ~len:(String.length payload)
           ~crc:(Int32.logxor (Crc32.string payload) 1l));
      write_raw a payload;
      check_framing_error "crc mismatch" (fun () -> Frame.read b))

let test_frame_oversized_rejected () =
  with_socketpair (fun a b ->
      (* the length word claims > max_frame; read must reject before
         allocating or consuming a payload *)
      write_raw a (header ~len:(Frame.max_frame + 1) ~crc:0l);
      check_framing_error "oversized frame" (fun () -> Frame.read b))

(* ---------------- scheduling ---------------- *)

let test_sched_weighted_round_robin () =
  let t : int Sched.t = Sched.create ~depth_limit:16 () in
  Sched.register t ~tenant:"heavy" ~weight:2;
  Sched.register t ~tenant:"light" ~weight:1;
  for i = 0 to 5 do
    match Sched.push t ~tenant:"heavy" i with
    | Sched.Queued _ -> ()
    | Sched.Full _ -> Alcotest.fail "push heavy"
  done;
  for i = 0 to 2 do
    match Sched.push t ~tenant:"light" (100 + i) with
    | Sched.Queued _ -> ()
    | Sched.Full _ -> Alcotest.fail "push light"
  done;
  let order =
    List.init 9 (fun _ ->
        match Sched.pop t with
        | Some (tenant, _) -> tenant
        | None -> Alcotest.fail "early close")
  in
  (* weight 2 tenant gets two consecutive dequeues per rotor visit *)
  Alcotest.(check (list string)) "2:1 interleave"
    [ "heavy"; "heavy"; "light"; "heavy"; "heavy"; "light";
      "heavy"; "heavy"; "light" ]
    order;
  Sched.close t;
  Alcotest.(check bool) "drained close pops None" true (Sched.pop t = None)

let test_sched_backpressure_and_fifo () =
  let t : int Sched.t = Sched.create ~depth_limit:2 () in
  (match Sched.push t ~tenant:"a" 1 with
  | Sched.Queued { depth } -> Alcotest.(check int) "depth 1" 1 depth
  | Sched.Full _ -> Alcotest.fail "unexpected Full");
  ignore (Sched.push t ~tenant:"a" 2);
  (match Sched.push t ~tenant:"a" 3 with
  | Sched.Full { depth; limit } ->
    Alcotest.(check int) "full depth" 2 depth;
    Alcotest.(check int) "full limit" 2 limit
  | Sched.Queued _ -> Alcotest.fail "expected Full");
  (* items pushed before close are delivered, FIFO, then None *)
  Sched.close t;
  (match Sched.push t ~tenant:"a" 4 with
  | Sched.Full _ -> ()
  | Sched.Queued _ -> Alcotest.fail "push after close");
  Alcotest.(check bool) "fifo 1" true (Sched.pop t = Some ("a", 1));
  Alcotest.(check bool) "fifo 2" true (Sched.pop t = Some ("a", 2));
  Alcotest.(check bool) "then closed" true (Sched.pop t = None)

(* ---------------- the daemon, end to end ---------------- *)

(* distinct digests, deterministic results, milliseconds to run *)
let job i =
  let prog =
    Ir.program ~tenv:Ctype.empty_tenv ~globals:[]
      [ Ir.func "main" [] Ctype.I64 [ Ir.Return (Some (Ir.i (i * 7))) ] ]
  in
  Job.make
    ~name:(Printf.sprintf "svc/%02d" i)
    ~group:"svc" ~variant:"subheap" ~config:Vm.ifp_subheap prog

let direct_bytes j = Protocol.encode_result (Some (Engine.default_runner j))

type running = {
  r_socket : string;
  r_stop : bool Atomic.t;
  r_thread : Thread.t;
  r_final : Events.json option ref;
}

let start_server ?(workers = 1) ?shard ?(queue_depth = 64) ?runner ~socket ()
    =
  let stop = Atomic.make false in
  let final = ref None in
  let cfg =
    {
      (Server.default_config ~socket_path:socket) with
      Server.workers;
      shard;
      queue_depth;
      runner;
    }
  in
  let th =
    Thread.create
      (fun () ->
        final := Some (Server.run ~stop:(fun () -> Atomic.get stop) cfg))
      ()
  in
  let rec wait n =
    if Sys.file_exists socket then ()
    else if n <= 0 then Alcotest.fail "server did not bind its socket"
    else begin
      Thread.delay 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  { r_socket = socket; r_stop = stop; r_thread = th; r_final = final }

let stop_server r =
  Atomic.set r.r_stop true;
  Thread.join r.r_thread;
  match !(r.r_final) with
  | Some json -> json
  | None -> Alcotest.fail "server returned no snapshot"

let assoc_int key = function
  | Events.Obj fields -> (
    match List.assoc_opt key fields with
    | Some (Events.Int n) -> n
    | _ -> Alcotest.fail ("snapshot missing int field " ^ key))
  | _ -> Alcotest.fail "snapshot is not an object"

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let raw_handshake ?(magic = Protocol.magic) ?(version = Protocol.version)
    ?(tenant = "raw") fd =
  Frame.write fd
    (Protocol.encode_handshake
       { Protocol.hs_magic = magic; hs_version = version; hs_tenant = tenant;
         hs_weight = 1 });
  match Frame.read fd with
  | None -> Alcotest.fail "server closed during handshake"
  | Some payload -> Protocol.decode_reply payload

let test_server_multi_client_byte_identity () =
  let dir = temp_dir "ifp-svc-cache" in
  let socket = Filename.concat dir "s.sock" in
  let shard = Shard.create ~dir:(Filename.concat dir "cache") ~shards:4 () in
  let r = start_server ~workers:2 ~shard ~socket () in
  let jobs = List.init 12 job in
  let n_clients = 3 in
  let results = Array.make n_clients [] in
  let failures = Atomic.make [] in
  let clients =
    List.init n_clients (fun k ->
        Thread.create
          (fun () ->
            try
              let c =
                Client.connect ~socket ~tenant:("t" ^ string_of_int k) ()
              in
              (* two passes: the second must be served from the shard
                 cache with the exact same canonical bytes *)
              results.(k) <-
                List.concat_map
                  (fun pass ->
                    List.map
                      (fun j ->
                        let comp = Client.submit_wait c j in
                        (Job.digest j, pass, comp))
                      jobs)
                  [ 0; 1 ];
              Client.close c
            with e ->
              Atomic.set failures (Printexc.to_string e :: Atomic.get failures))
          ())
  in
  List.iter Thread.join clients;
  Alcotest.(check (list string)) "no client errors" [] (Atomic.get failures);
  let expected =
    List.map (fun j -> (Job.digest j, direct_bytes j)) jobs
  in
  Array.iter
    (fun rs ->
      Alcotest.(check int) "each client ran both passes"
        (2 * List.length jobs) (List.length rs);
      List.iter
        (fun (digest, _pass, (comp : Protocol.completion)) ->
          Alcotest.(check string) "digest echoed" digest
            comp.Protocol.c_digest;
          (match comp.Protocol.c_status with
          | Engine.Done -> ()
          | st -> Alcotest.fail ("job not Done: " ^ Protocol.status_string st));
          (* the tentpole acceptance check: daemon bytes = direct bytes *)
          Alcotest.(check bool) "byte-identical to direct run" true
            (String.equal
               (List.assoc digest expected)
               comp.Protocol.c_result_bytes))
        rs)
    results;
  (* 3 clients x 12 jobs x 2 passes = 72 submissions of 12 distinct jobs:
     at least the second pass of every client must hit the cache *)
  let cache_hits =
    Array.to_list results
    |> List.concat_map (fun rs ->
           List.filter
             (fun (_, _, c) -> c.Protocol.c_from_cache)
             rs)
    |> List.length
  in
  Alcotest.(check bool)
    (Printf.sprintf "repeats hit the shard cache (%d hits)" cache_hits)
    true
    (cache_hits >= List.length jobs);
  let snap = stop_server r in
  Alcotest.(check int) "snapshot counts every submission" 72
    (assoc_int "submitted" snap);
  Alcotest.(check int) "snapshot completions" 72 (assoc_int "completed" snap);
  Alcotest.(check bool) "socket unlinked on drain" false
    (Sys.file_exists socket);
  rm_rf dir

let test_server_handshake_rejected () =
  let dir = temp_dir "ifp-svc-hs" in
  let socket = Filename.concat dir "s.sock" in
  let r = start_server ~socket () in
  (* wrong magic *)
  let fd = raw_connect socket in
  (match raw_handshake ~magic:"not-ifp" fd with
  | Protocol.Refused _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  Unix.close fd;
  (* version skew *)
  let fd = raw_connect socket in
  (match raw_handshake ~version:(Protocol.version + 1) fd with
  | Protocol.Refused _ -> ()
  | _ -> Alcotest.fail "future version accepted");
  Unix.close fd;
  (* empty tenant *)
  let fd = raw_connect socket in
  (match raw_handshake ~tenant:"" fd with
  | Protocol.Refused _ -> ()
  | _ -> Alcotest.fail "empty tenant accepted");
  Unix.close fd;
  (* and the Client module still connects fine afterwards *)
  let c = Client.connect ~socket ~tenant:"ok" () in
  Client.ping c;
  Client.close c;
  let snap = stop_server r in
  Alcotest.(check int) "handshake rejects counted" 3
    (assoc_int "handshake_rejects" snap);
  rm_rf dir

(* a malformed frame kills only its own connection *)
let survives_poison ~what ~poison () =
  let dir = temp_dir "ifp-svc-poison" in
  let socket = Filename.concat dir "s.sock" in
  let r = start_server ~socket () in
  let fd = raw_connect socket in
  (match raw_handshake fd with
  | Protocol.Welcome _ -> ()
  | _ -> Alcotest.fail "handshake refused");
  poison fd;
  (* the server answers with a best-effort Refused or just closes; it
     must not crash, hang, or poison other connections *)
  (match Frame.read fd with
  | Some payload -> (
    match Protocol.decode_reply payload with
    | Protocol.Refused _ -> ()
    | _ -> Alcotest.fail (what ^ ": expected Refused"))
  | None -> ()
  | exception Frame.Framing_error _ -> ()
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let c = Client.connect ~socket ~tenant:"after" () in
  Client.ping c;
  let comp = Client.submit_wait c (job 1) in
  Alcotest.(check bool) (what ^ ": jobs still served") true
    (String.equal (direct_bytes (job 1)) comp.Protocol.c_result_bytes);
  Client.close c;
  let snap = stop_server r in
  Alcotest.(check int) (what ^ ": protocol error counted") 1
    (assoc_int "protocol_errors" snap);
  rm_rf dir

let test_server_survives_crc_mismatch () =
  survives_poison ~what:"crc"
    ~poison:(fun fd ->
      let payload = Protocol.encode_request Protocol.Ping in
      write_raw fd
        (header ~len:(String.length payload)
           ~crc:(Int32.logxor (Crc32.string payload) 1l));
      write_raw fd payload)
    ()

let test_server_survives_oversized_frame () =
  survives_poison ~what:"oversized"
    ~poison:(fun fd -> write_raw fd (header ~len:(Frame.max_frame + 1) ~crc:0l))
    ()

let test_server_survives_garbage_payload () =
  survives_poison ~what:"garbage"
    ~poison:(fun fd ->
      (* valid frame, but the payload is not a marshalled request *)
      Frame.write fd "certainly not a request")
    ()

let test_server_client_disconnect_mid_job () =
  let dir = temp_dir "ifp-svc-gone" in
  let socket = Filename.concat dir "s.sock" in
  let shard = Shard.create ~dir:(Filename.concat dir "cache") ~shards:2 () in
  let slow j =
    Thread.delay 0.2;
    Engine.default_runner j
  in
  let r = start_server ~shard ~runner:slow ~socket () in
  let j = job 99 in
  (* submit, then vanish before the reply *)
  let fd = raw_connect socket in
  (match raw_handshake ~tenant:"ghost" fd with
  | Protocol.Welcome _ -> ()
  | _ -> Alcotest.fail "handshake refused");
  Frame.write fd (Protocol.encode_request (Protocol.Submit j));
  Unix.close fd;
  (* the abandoned job must still complete and land in the cache; a
     later client gets it as a hit with the canonical bytes *)
  let c = Client.connect ~socket ~tenant:"heir" () in
  let rec await tries =
    if tries > 100 then Alcotest.fail "abandoned job never reached the cache"
    else
      let comp = Client.submit_wait c j in
      Alcotest.(check bool) "bytes match direct run" true
        (String.equal (direct_bytes j) comp.Protocol.c_result_bytes);
      if not comp.Protocol.c_from_cache then begin
        Thread.delay 0.05;
        await (tries + 1)
      end
  in
  await 0;
  Client.close c;
  ignore (stop_server r);
  rm_rf dir

let test_server_backpressure_busy () =
  let dir = temp_dir "ifp-svc-busy" in
  let socket = Filename.concat dir "s.sock" in
  let slow j =
    Thread.delay 0.25;
    Engine.default_runner j
  in
  (* one worker, one queue slot: three concurrent submits from the same
     tenant cannot all be absorbed — at least one sees Busy *)
  let r = start_server ~queue_depth:1 ~runner:slow ~socket () in
  let busy = Atomic.make 0 in
  let failures = Atomic.make [] in
  let submit_thread k =
    Thread.create
      (fun () ->
        try
          let c = Client.connect ~socket ~tenant:"bp" () in
          let comp =
            Client.submit_wait
              ~on_busy:(fun b ->
                Atomic.incr busy;
                Alcotest.(check int) "busy reports the limit" 1
                  b.Protocol.b_limit;
                Alcotest.(check bool) "retry hint positive" true
                  (b.Protocol.b_retry_after > 0.0))
              c (job (200 + k))
          in
          (match comp.Protocol.c_status with
          | Engine.Done -> ()
          | st -> Alcotest.fail (Protocol.status_string st));
          Client.close c
        with e ->
          Atomic.set failures (Printexc.to_string e :: Atomic.get failures))
      ()
  in
  let threads = List.init 3 submit_thread in
  List.iter Thread.join threads;
  Alcotest.(check (list string)) "no submit errors" [] (Atomic.get failures);
  Alcotest.(check bool)
    (Printf.sprintf "backpressure fired (%d busy replies)" (Atomic.get busy))
    true
    (Atomic.get busy >= 1);
  let snap = stop_server r in
  Alcotest.(check int) "all three jobs completed" 3
    (assoc_int "completed" snap);
  Alcotest.(check bool) "busy replies in the snapshot" true
    (assoc_int "busy_rejected" snap >= 1);
  rm_rf dir

let test_server_stats_and_drain () =
  let dir = temp_dir "ifp-svc-stats" in
  let socket = Filename.concat dir "s.sock" in
  let shard = Shard.create ~dir:(Filename.concat dir "cache") ~shards:2 () in
  let r = start_server ~shard ~socket () in
  let c = Client.connect ~socket ~tenant:"obs" () in
  ignore (Client.submit_wait c (job 7));
  ignore (Client.submit_wait c (job 7));
  let snap = Client.stats c in
  Alcotest.(check int) "live stats: submitted" 2 (assoc_int "submitted" snap);
  (match snap with
  | Events.Obj fields ->
    Alcotest.(check bool) "live stats: queues listed" true
      (List.mem_assoc "queues" fields);
    Alcotest.(check bool) "live stats: tenants listed" true
      (List.mem_assoc "tenants" fields);
    (match List.assoc_opt "cache" fields with
    | Some (Events.Obj cache) ->
      Alcotest.(check bool) "live stats: cache hit rate" true
        (List.mem_assoc "hit_rate" cache)
    | _ -> Alcotest.fail "live stats: no cache section")
  | _ -> Alcotest.fail "stats is not an object");
  Client.close c;
  let snap = stop_server r in
  Alcotest.(check int) "final snapshot: cache hit recorded" 1
    (assoc_int "cache_hits" snap);
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket);
  (* post-drain connects fail outright: nothing is listening *)
  (match raw_connect socket with
  | fd ->
    Unix.close fd;
    Alcotest.fail "connected to a drained server"
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) -> ());
  rm_rf dir

let tests =
  [
    Alcotest.test_case "frame roundtrip + clean EOF" `Quick
      test_frame_roundtrip;
    Alcotest.test_case "frame torn header" `Quick test_frame_torn_header;
    Alcotest.test_case "frame truncated payload" `Quick
      test_frame_truncated_payload;
    Alcotest.test_case "frame crc mismatch" `Quick test_frame_crc_mismatch;
    Alcotest.test_case "frame oversized rejected" `Quick
      test_frame_oversized_rejected;
    Alcotest.test_case "sched weighted round-robin" `Quick
      test_sched_weighted_round_robin;
    Alcotest.test_case "sched backpressure + fifo + close" `Quick
      test_sched_backpressure_and_fifo;
    Alcotest.test_case "server multi-client byte identity" `Quick
      test_server_multi_client_byte_identity;
    Alcotest.test_case "server handshake rejection" `Quick
      test_server_handshake_rejected;
    Alcotest.test_case "server survives crc mismatch" `Quick
      test_server_survives_crc_mismatch;
    Alcotest.test_case "server survives oversized frame" `Quick
      test_server_survives_oversized_frame;
    Alcotest.test_case "server survives garbage payload" `Quick
      test_server_survives_garbage_payload;
    Alcotest.test_case "server client disconnect mid-job" `Quick
      test_server_client_disconnect_mid_job;
    Alcotest.test_case "server backpressure busy" `Quick
      test_server_backpressure_busy;
    Alcotest.test_case "server stats + graceful drain" `Quick
      test_server_stats_and_drain;
  ]
