(* Tests for the lib/campaign experiment engine: serial-vs-parallel
   determinism, on-disk cache round-trips and invalidation, fault
   isolation with bounded retries, and the JSONL event log. *)

open Core
module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Rcache = Ifp_campaign.Cache
module Events = Ifp_campaign.Events
module W = Ifp_workloads.Workload
module Registry = Ifp_workloads.Registry

let temp_dir prefix =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let jobs_for_workloads names =
  List.concat_map
    (fun name ->
      let wl = Option.get (Registry.find name) in
      let prog = Lazy.force wl.W.prog in
      List.map
        (fun (vname, config) ->
          Job.make ~name:(name ^ "/" ^ vname) ~group:name ~variant:vname
            ~config prog)
        Report.variants)
    names

(* three cheap workloads keep this test fast while still crossing all
   five configurations *)
let det_workloads = [ "wolfcrypt-dh"; "power"; "ks" ]

let test_serial_parallel_determinism () =
  let jobs = jobs_for_workloads det_workloads in
  let serial, s_stats = Engine.run ~workers:1 jobs in
  let parallel, p_stats = Engine.run ~workers:4 jobs in
  Alcotest.(check int) "same job count" s_stats.Engine.jobs p_stats.Engine.jobs;
  Alcotest.(check int) "all completed serially" (List.length jobs)
    s_stats.Engine.completed;
  Alcotest.(check int) "all completed in parallel" (List.length jobs)
    p_stats.Engine.completed;
  Array.iteri
    (fun idx (s : Engine.outcome) ->
      let p = parallel.(idx) in
      Alcotest.(check string)
        "outcome order matches submission order" s.Engine.job.Job.name
        p.Engine.job.Job.name;
      Alcotest.(check string) "digests agree" s.Engine.digest p.Engine.digest;
      Alcotest.(check bool)
        (Printf.sprintf "results for %s identical" s.Engine.job.Job.name)
        true
        (s.Engine.result = p.Engine.result))
    serial;
  (* the aggregate a renderer would compute is identical too *)
  let row outcomes name =
    Report.of_results ~name ~lookup:(fun vname ->
        let o =
          Array.to_list outcomes
          |> List.find (fun (o : Engine.outcome) ->
                 o.Engine.job.Job.name = name ^ "/" ^ vname)
        in
        Option.get o.Engine.result)
  in
  List.iter
    (fun name ->
      let rs = row serial name and rp = row parallel name in
      Alcotest.(check bool)
        (name ^ " row equal") true
        (rs.Report.subheap.Vm.counters = rp.Report.subheap.Vm.counters
        && Report.status_string rs = Report.status_string rp))
    det_workloads

let tiny_job ?(seed = 0x5eedL) name =
  let prog =
    Ir.program ~tenv:Ctype.empty_tenv ~globals:[]
      [ Ir.func "main" [] Ctype.I64 [ Ir.Return (Some (Ir.i 42)) ] ]
  in
  Job.make ~name ~group:"tiny" ~variant:"subheap"
    ~config:{ Vm.ifp_subheap with seed }
    prog

let test_cache_roundtrip () =
  let dir = temp_dir "ifp-cache-test" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cache = Rcache.create ~dir () in
      let job = tiny_job "tiny/subheap" in
      let cold, cold_stats = Engine.run ~cache [ job ] in
      Alcotest.(check bool) "cold run misses" false cold.(0).Engine.from_cache;
      Alcotest.(check int) "no hits cold" 0 cold_stats.Engine.cache_hits;
      let warm, warm_stats = Engine.run ~cache [ job ] in
      Alcotest.(check bool) "warm run hits" true warm.(0).Engine.from_cache;
      Alcotest.(check int) "one hit warm" 1 warm_stats.Engine.cache_hits;
      Alcotest.(check int) "hit runs nothing" 0 warm.(0).Engine.attempts;
      Alcotest.(check bool) "cached result identical" true
        (cold.(0).Engine.result = warm.(0).Engine.result);
      (* a config change (different MAC seed) must change the digest and
         miss the cache *)
      let other = tiny_job ~seed:0xfeedL "tiny/subheap" in
      Alcotest.(check bool) "config change changes digest" false
        (Job.digest job = Job.digest other);
      let miss, _ = Engine.run ~cache [ other ] in
      Alcotest.(check bool) "changed config misses" false
        miss.(0).Engine.from_cache;
      (* direct store/find round-trip *)
      let digest = Job.digest job in
      Alcotest.(check bool) "find returns stored entry" true
        (match Rcache.find cache ~digest with
        | Rcache.Hit _ -> true
        | _ -> false);
      Alcotest.(check bool) "unknown digest misses" true
        (Rcache.find cache ~digest:(String.make 32 '0') = Rcache.Miss);
      (* a corrupted entry is quarantined, never an error *)
      let rec find_results path =
        if Sys.is_directory path then
          Array.to_list (Sys.readdir path)
          |> List.concat_map (fun f -> find_results (Filename.concat path f))
        else if Filename.check_suffix path ".result" then [ path ]
        else []
      in
      List.iter
        (fun path ->
          let oc = open_out path in
          output_string oc "corrupt";
          close_out oc)
        (find_results dir);
      Alcotest.(check bool) "corrupt entry is quarantined to .corrupt" true
        (match Rcache.find cache ~digest with
        | Rcache.Quarantined { path; _ } ->
          Filename.check_suffix path ".corrupt" && Sys.file_exists path
        | _ -> false);
      Alcotest.(check bool) "probe after quarantine is a clean miss" true
        (Rcache.find cache ~digest = Rcache.Miss))

let test_retry_then_fail () =
  let log_path = Filename.temp_file "ifp-campaign-test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log_path with Sys_error _ -> ())
    (fun () ->
      let ok = tiny_job "tiny/ok" in
      let boom = tiny_job ~seed:1L "tiny/boom" in
      let runner (job : Job.t) =
        if job.Job.name = "tiny/boom" then failwith "injected crash"
        else Vm.run ~config:job.Job.config job.Job.prog
      in
      let log = Events.create ~path:log_path in
      let outcomes, stats =
        Engine.run ~retries:2 ~runner ~log [ ok; boom ]
      in
      Events.close log;
      (* the crashing job fails after bounded retries... *)
      Alcotest.(check bool) "boom failed" true
        (match outcomes.(1).Engine.status with
        | Engine.Failed _ -> true
        | Engine.Done | Engine.Timed_out | Engine.Skipped -> false);
      Alcotest.(check int) "boom attempted 1 + 2 retries" 3
        outcomes.(1).Engine.attempts;
      Alcotest.(check bool) "boom has no result" true
        (outcomes.(1).Engine.result = None);
      (* ...without killing the rest of the campaign *)
      Alcotest.(check bool) "ok job done" true
        (outcomes.(0).Engine.status = Engine.Done);
      Alcotest.(check int) "stats: one failure" 1 stats.Engine.failed;
      Alcotest.(check int) "stats: two retries" 2 stats.Engine.retries;
      (* the JSONL log saw the whole story, one valid object per line *)
      let lines = ref [] in
      let ic = open_in log_path in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let count needle =
        List.length
          (List.filter
             (fun l ->
               String.length l > 0
               && l.[0] = '{'
               && l.[String.length l - 1] = '}'
               &&
               let re = {|"event":"|} ^ needle ^ {|"|} in
               let rec contains i =
                 i + String.length re <= String.length l
                 && (String.sub l i (String.length re) = re || contains (i + 1))
               in
               contains 0)
             !lines)
      in
      Alcotest.(check int) "campaign_start logged" 1 (count "campaign_start");
      Alcotest.(check int) "two retry events" 2 (count "retry");
      Alcotest.(check int) "one job_failed event" 1 (count "job_failed");
      Alcotest.(check int) "one job_finish event" 1 (count "job_finish");
      Alcotest.(check int) "campaign_end logged" 1 (count "campaign_end"))

let test_backoff_deterministic () =
  let d = String.make 32 'a' in
  let d1 = Engine.backoff_delay ~base:0.05 ~digest:d ~attempt:1 in
  let d1' = Engine.backoff_delay ~base:0.05 ~digest:d ~attempt:1 in
  let d2 = Engine.backoff_delay ~base:0.05 ~digest:d ~attempt:2 in
  Alcotest.(check (float 0.0)) "same (digest, attempt), same delay" d1 d1';
  Alcotest.(check bool) "delay grows with attempt" true (d2 > d1);
  Alcotest.(check bool) "within the jitter envelope" true
    (d1 >= 0.05 && d1 < 0.075 && d2 >= 0.1 && d2 < 0.15);
  Alcotest.(check (float 0.0)) "zero base disables the sleep" 0.0
    (Engine.backoff_delay ~base:0.0 ~digest:d ~attempt:3)

let test_watchdog_times_out () =
  let ok = tiny_job "tiny/ok" in
  let stuck = tiny_job ~seed:2L "tiny/stuck" in
  let runner (job : Job.t) =
    if job.Job.name = "tiny/stuck" then Unix.sleepf 2.0;
    Vm.run ~config:job.Job.config job.Job.prog
  in
  let outcomes, stats =
    Engine.run ~retries:2 ~job_timeout:0.2 ~runner [ ok; stuck ]
  in
  Alcotest.(check bool) "stuck job timed out" true
    (outcomes.(1).Engine.status = Engine.Timed_out);
  Alcotest.(check bool) "no result for a timed-out job" true
    (outcomes.(1).Engine.result = None);
  Alcotest.(check int) "a timeout is not retried" 1 outcomes.(1).Engine.attempts;
  Alcotest.(check bool) "rest of the campaign unaffected" true
    (outcomes.(0).Engine.status = Engine.Done);
  Alcotest.(check int) "stats count the timeout" 1 stats.Engine.timed_out;
  Alcotest.(check int) "a timeout is not a failure" 0 stats.Engine.failed

let find_results dir =
  let rec go path =
    if Sys.is_directory path then
      Array.to_list (Sys.readdir path)
      |> List.concat_map (fun f -> go (Filename.concat path f))
    else if Filename.check_suffix path ".result" then [ path ]
    else []
  in
  go dir

let test_cache_crc_catches_damage () =
  (* the v3 CRC framing must catch both torn writes (short payload) and
     bit rot (flipped byte) deterministically, flagged [crc_mismatch] *)
  let damage_and_probe damage =
    let dir = temp_dir "ifp-cache-crc" in
    Fun.protect
      ~finally:(fun () -> rm_rf dir)
      (fun () ->
        let cache = Rcache.create ~dir () in
        let job = tiny_job "tiny/crc" in
        let _ = Engine.run ~cache [ job ] in
        let path = List.hd (find_results dir) in
        damage path;
        Rcache.find cache ~digest:(Job.digest job))
  in
  let flip_last_byte path =
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
    let size = (Unix.fstat fd).Unix.st_size in
    ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
    let b = Bytes.create 1 in
    ignore (Unix.read fd b 0 1);
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
    ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
    ignore (Unix.write fd b 0 1);
    Unix.close fd
  in
  let truncate_payload path =
    let size = (Unix.stat path).Unix.st_size in
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
    Unix.ftruncate fd (size - 7);
    Unix.close fd
  in
  (match damage_and_probe flip_last_byte with
  | Rcache.Quarantined { crc_mismatch; _ } ->
    Alcotest.(check bool) "flipped byte flagged as CRC mismatch" true
      crc_mismatch
  | _ -> Alcotest.fail "flipped byte not quarantined");
  match damage_and_probe truncate_payload with
  | Rcache.Quarantined { crc_mismatch; _ } ->
    Alcotest.(check bool) "torn payload flagged as CRC mismatch" true
      crc_mismatch
  | _ -> Alcotest.fail "torn payload not quarantined"

let test_events_torn_line_tolerated () =
  let path = Filename.temp_file "ifp-events-torn" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let log = Events.create ~path in
      Events.emit log "one" [];
      Events.emit log "two" [];
      Events.close log;
      let lines, truncated = Events.read_lines ~path in
      Alcotest.(check (pair int bool)) "clean log: all lines, not truncated"
        (2, false)
        (List.length lines, truncated);
      (* tear the final line mid-object, as a killed writer would *)
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (size - 5);
      Unix.close fd;
      let lines, truncated = Events.read_lines ~path in
      Alcotest.(check (pair int bool)) "torn log: partial line dropped"
        (1, true)
        (List.length lines, truncated);
      Alcotest.(check bool) "surviving line is the first event" true
        (match lines with
        | [ l ] ->
          let re = {|"event":"one"|} in
          let rec contains i =
            i + String.length re <= String.length l
            && (String.sub l i (String.length re) = re || contains (i + 1))
          in
          contains 0
        | _ -> false);
      (* iter_lines agrees *)
      let seen = ref 0 in
      let truncated' = Events.iter_lines ~path (fun _ -> incr seen) in
      Alcotest.(check (pair int bool)) "iter_lines agrees" (1, true)
        (!seen, truncated');
      (* open_append physically repairs the torn tail and continues *)
      let log, repaired = Events.open_append ~path in
      Alcotest.(check bool) "open_append reports the repair" true repaired;
      Events.emit log "three" [];
      Events.close log;
      let lines, truncated = Events.read_lines ~path in
      Alcotest.(check (pair int bool)) "appended log reads clean" (2, false)
        (List.length lines, truncated);
      let log, repaired = Events.open_append ~path in
      Alcotest.(check bool) "clean reopen repairs nothing" false repaired;
      Events.close log;
      (* a missing file reads as empty, not an error *)
      let ghost = path ^ ".missing" in
      Alcotest.(check (pair int bool)) "missing file reads empty" (0, false)
        (let ls, t = Events.read_lines ~path:ghost in
         (List.length ls, t)))

let test_failed_job_visible_in_row () =
  (* a hard-failed variant still renders: the placeholder result keeps
     the row assemblable and the failure shows up in the status column *)
  let r = Report.aborted_result "campaign job failed: injected" in
  let row =
    Report.of_results ~name:"synthetic" ~lookup:(fun vname ->
        if vname = "wrapped" then r
        else
          Vm.run ~config:(List.assoc vname Report.variants)
            (Ir.program ~tenv:Ctype.empty_tenv ~globals:[]
               [ Ir.func "main" [] Ctype.I64 [ Ir.Return (Some (Ir.i 0)) ] ]))
  in
  Alcotest.(check string) "status flags the aborted variant"
    "wrapped(abort)" (Report.status_string row);
  Alcotest.(check bool) "reason preserved" true
    (List.mem_assoc "wrapped" (Report.check_outcomes row))

let test_cache_lru_byte_budget () =
  let result =
    Vm.run ~config:Vm.ifp_subheap
      (Ir.program ~tenv:Ctype.empty_tenv ~globals:[]
         [ Ir.func "main" [] Ctype.I64 [ Ir.Return (Some (Ir.i 42)) ] ])
  in
  let digest c = String.make 30 c ^ Printf.sprintf "%02d" (Char.code c) in
  (* entry size depends on the marshalled result, so measure it first *)
  let entry_bytes =
    let dir = temp_dir "ifp-cache-measure" in
    Fun.protect
      ~finally:(fun () -> rm_rf dir)
      (fun () ->
        let c = Rcache.create ~dir () in
        Rcache.store c ~digest:(digest 'a') ~job_name:"jx" result;
        (Rcache.stats c).Rcache.bytes)
  in
  Alcotest.(check bool) "measured a real entry" true (entry_bytes > 0);
  let dir = temp_dir "ifp-cache-lru" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (* room for three entries and change: the fourth store must evict *)
      let budget = (3 * entry_bytes) + (entry_bytes / 2) in
      let cache = Rcache.create ~max_bytes:budget ~dir () in
      let store ch =
        Rcache.store cache ~digest:(digest ch) ~job_name:"jx" result;
        (* mtime is the LRU clock; keep stores strictly ordered *)
        Thread.delay 0.02
      in
      store 'a';
      store 'b';
      store 'c';
      (* a hit refreshes 'a', demoting 'b' to least-recently-used *)
      (match Rcache.find cache ~digest:(digest 'a') with
      | Rcache.Hit _ -> ()
      | _ -> Alcotest.fail "expected hit on 'a'");
      Thread.delay 0.02;
      store 'd';
      store 'e';
      let hit ch =
        match Rcache.find cache ~digest:(digest ch) with
        | Rcache.Hit _ -> true
        | _ -> false
      in
      Alcotest.(check bool) "'b' (coldest) evicted" false (hit 'b');
      Alcotest.(check bool) "'c' (next coldest) evicted" false (hit 'c');
      Alcotest.(check bool) "'a' survived via its hit" true (hit 'a');
      Alcotest.(check bool) "'d' survived" true (hit 'd');
      Alcotest.(check bool) "'e' survived" true (hit 'e');
      let s = Rcache.stats cache in
      Alcotest.(check int) "two evictions" 2 s.Rcache.evictions;
      Alcotest.(check int) "three entries left" 3 s.Rcache.entries;
      Alcotest.(check bool) "tally within budget" true (s.Rcache.bytes <= budget);
      Alcotest.(check bool) "evicted bytes accounted" true
        (s.Rcache.evicted_bytes >= 2 * (entry_bytes - 8));
      (* a reopened cache grounds its tally from the surviving files *)
      let reopened = Rcache.create ~max_bytes:budget ~dir () in
      let s2 = Rcache.stats reopened in
      Alcotest.(check int) "reopen sees the survivors" 3 s2.Rcache.entries;
      Alcotest.(check int) "reopen grounds the byte tally" s.Rcache.bytes
        s2.Rcache.bytes)

let test_parse_bytes () =
  let check input expected =
    Alcotest.(check (option int))
      (Printf.sprintf "parse_bytes %S" input)
      expected
      (Ifp_campaign.Cli.parse_bytes input)
  in
  check "0" (Some 0);
  check "123" (Some 123);
  check "1k" (Some 1024);
  check "2K" (Some 2048);
  check "1m" (Some (1024 * 1024));
  check "512M" (Some (512 * 1024 * 1024));
  check "3g" (Some (3 * 1024 * 1024 * 1024));
  check "1G" (Some (1024 * 1024 * 1024));
  check "" None;
  check "k" None;
  check "-1" None;
  check "1.5M" None;
  check "10x" None;
  check "1kk" None

let test_install_stop_restores_handlers () =
  (* SIGUSR1 stands in for SIGTERM so a restored default handler can't
     kill the test runner *)
  let fired = ref 0 in
  let previous =
    Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> incr fired))
  in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigusr1 previous)
    (fun () ->
      let signals = Ifp_campaign.Cli.install_stop ~signals:[ Sys.sigusr1 ] () in
      Alcotest.(check bool) "flag starts false" false (signals.stop ());
      Unix.kill (Unix.getpid ()) Sys.sigusr1;
      let rec await n =
        if signals.stop () then ()
        else if n <= 0 then Alcotest.fail "stop flag never fired"
        else begin
          Thread.delay 0.01;
          await (n - 1)
        end
      in
      await 200;
      Alcotest.(check int) "counting handler was displaced" 0 !fired;
      signals.restore ();
      signals.restore ();  (* idempotent *)
      Unix.kill (Unix.getpid ()) Sys.sigusr1;
      let rec await2 n =
        if !fired > 0 then ()
        else if n <= 0 then Alcotest.fail "previous handler not restored"
        else begin
          Thread.delay 0.01;
          await2 (n - 1)
        end
      in
      await2 200;
      Alcotest.(check int) "previous handler back in place" 1 !fired)

let tests =
  [
    Alcotest.test_case "serial = parallel (3 workloads x 5 variants)" `Slow
      test_serial_parallel_determinism;
    Alcotest.test_case "cache round-trip and invalidation" `Quick
      test_cache_roundtrip;
    Alcotest.test_case "retry then fail, campaign survives" `Quick
      test_retry_then_fail;
    Alcotest.test_case "backoff delay is deterministic and bounded" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "watchdog cuts off a runaway job" `Quick
      test_watchdog_times_out;
    Alcotest.test_case "cache CRC catches torn writes and bit rot" `Quick
      test_cache_crc_catches_damage;
    Alcotest.test_case "event log tolerates a torn final line" `Quick
      test_events_torn_line_tolerated;
    Alcotest.test_case "failed variant visible in row status" `Quick
      test_failed_job_visible_in_row;
    Alcotest.test_case "cache LRU byte budget evicts coldest" `Quick
      test_cache_lru_byte_budget;
    Alcotest.test_case "parse_bytes suffixes" `Quick test_parse_bytes;
    Alcotest.test_case "install_stop restores previous handlers" `Quick
      test_install_stop_restores_handlers;
  ]
