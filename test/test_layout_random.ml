(* Property-based testing of the layout-table generator over random
   nested struct/array types: structural invariants of the preorder
   flattening, agreement between [index_of_path]/[narrow] and a reference
   offset computation done directly on the type, and round-tripping
   through the in-memory encoding. *)

open Core

(* random type environments: a chain of struct declarations where struct
   [i] may reference structs [< i] *)
type rand_ty_ctx = { env : Ctype.tenv; names : string list }

let scalar_gen =
  QCheck.Gen.oneofl [ Ctype.I8; Ctype.I16; Ctype.I32; Ctype.I64; Ctype.F64 ]

let gen_field_ty ctx depth st =
  let open QCheck.Gen in
  let base =
    if depth <= 0 || ctx.names = [] then scalar_gen
    else
      frequency
        [
          (4, scalar_gen);
          (2, map (fun n -> Ctype.Struct n) (oneofl ctx.names));
          (1, map (fun n -> Ctype.Ptr (Ctype.Struct n)) (oneofl ctx.names));
        ]
  in
  (let* b = base in
   let* arr = frequency [ (3, return 0); (2, int_range 1 4) ] in
   return (if arr = 0 then b else Ctype.Array (b, arr)))
    st

let gen_ctx st =
  let open QCheck.Gen in
  let n_structs = int_range 1 4 st in
  let ctx = ref { env = Ctype.empty_tenv; names = [] } in
  for i = 0 to n_structs - 1 do
    let name = Printf.sprintf "t%d" i in
    let n_fields = int_range 1 5 st in
    let fields =
      List.init n_fields (fun j ->
          { Ctype.fname = Printf.sprintf "f%d" j;
            fty = gen_field_ty !ctx (2 - (i / 2)) st })
    in
    ctx :=
      { env = Ctype.declare !ctx.env { Ctype.sname = name; fields };
        names = name :: !ctx.names }
  done;
  let root = List.hd !ctx.names in
  (!ctx.env, Ctype.Struct root)

let arb_ty =
  QCheck.make gen_ctx ~print:(fun (env, ty) -> Ctype.to_string env ty)

let prop_preorder_parents =
  QCheck.Test.make ~count:300 ~name:"layout parents precede children"
    arb_ty (fun (env, ty) ->
      let l = Layout.build env ty in
      let elems = Layout.elements l in
      Array.for_all (fun (e : Layout.element) -> e.parent >= 0) elems
      && Array.to_list elems
         |> List.mapi (fun i (e : Layout.element) -> (i, e))
         |> List.for_all (fun (i, (e : Layout.element)) ->
                i = 0 || e.parent < i))

let prop_bounds_well_formed =
  QCheck.Test.make ~count:300 ~name:"layout element bounds well-formed"
    arb_ty (fun (env, ty) ->
      let l = Layout.build env ty in
      Array.for_all
        (fun (e : Layout.element) ->
          e.base >= 0 && e.base < e.bound && e.elem_size > 0
          && (e.bound - e.base) mod e.elem_size = 0)
        (Layout.elements l))

let prop_element0_is_object =
  QCheck.Test.make ~count:300 ~name:"element 0 covers the object"
    arb_ty (fun (env, ty) ->
      let l = Layout.build env ty in
      let e0 = Layout.get l 0 in
      e0.parent = 0 && e0.base = 0 && e0.bound = Ctype.sizeof env ty)

(* reference: enumerate all (path, absolute offset range) pairs of a type
   directly, then check index_of_path + narrow agree *)
let rec enum_paths env ty ~off ~depth =
  if depth > 3 then []
  else
    match ty with
    | Ctype.Struct s ->
      List.concat_map
        (fun ((f : Ctype.field), foff) ->
          let here =
            ( [ Layout.Field f.fname ],
              off + foff,
              off + foff + Ctype.sizeof env f.fty )
          in
          let deeper =
            enum_paths env f.fty ~off:(off + foff) ~depth:(depth + 1)
            |> List.map (fun (p, lo, hi) -> (Layout.Field f.fname :: p, lo, hi))
          in
          here :: deeper)
        (Ctype.fields_with_offsets env s)
    | Ctype.Array (elt, n) when n > 0 ->
      (* descend into element 0 of the array *)
      enum_paths env elt ~off ~depth:(depth + 1)
      |> List.map (fun (p, lo, hi) -> (Layout.Index :: p, lo, hi))
    | _ -> []

let prop_narrow_agrees_with_reference =
  QCheck.Test.make ~count:200
    ~name:"narrow agrees with direct offset computation" arb_ty
    (fun (env, ty) ->
      let l = Layout.build env ty in
      let size = Ctype.sizeof env ty in
      let base = 0x8000L in
      enum_paths env ty ~off:0 ~depth:0
      |> List.for_all (fun (path, lo, hi) ->
             match Layout.index_of_path l path with
             | None -> false
             | Some idx -> (
               (* probe with a pointer at the subobject start *)
               let addr = Int64.add base (Int64.of_int lo) in
               match Layout.narrow l ~obj_base:base ~obj_size:size ~addr ~index:idx with
               | None -> false
               | Some (nlo, nhi) ->
                 (* the narrowed bounds contain the reference subobject;
                    for arrays the table element covers the whole array,
                    so containment (not equality) is the invariant *)
                 Int64.compare nlo (Int64.add base (Int64.of_int lo)) <= 0
                 && Int64.compare (Int64.add base (Int64.of_int hi)) nhi <= 0
                 && Int64.compare base nlo <= 0
                 && Int64.compare nhi (Int64.add base (Int64.of_int size)) <= 0)))

let prop_memory_roundtrip =
  QCheck.Test.make ~count:200 ~name:"layout tables round-trip through memory"
    arb_ty (fun (env, ty) ->
      let l = Layout.build env ty in
      if Layout.length l <= 1 then true
      else begin
        let mem = Memory.create () in
        Memory.map mem ~base:0x200000L ~size:(1 lsl 16);
        Memory.map mem ~base:0x300000L ~size:4096;
        let meta =
          Meta.create ~memory:mem ~mac_key:1L
            ~layout_region:(0x200000L, 1 lsl 16)
            ~global_table:(0x300000L, 16) ()
        in
        let ptr = Meta.intern_layout meta env ty in
        Meta.layout_count meta ptr = Layout.length l
        && List.for_all
             (fun i ->
               let a = Meta.read_element meta ptr i in
               let b = Layout.get l i in
               a.Layout.parent = b.Layout.parent
               && a.base = b.base && a.bound = b.bound
               && a.elem_size = b.elem_size)
             (List.init (Layout.length l) Fun.id)
      end)

let prop_walk_steps_bounded =
  QCheck.Test.make ~count:300 ~name:"walker chain length bounded by depth"
    arb_ty (fun (env, ty) ->
      let l = Layout.build env ty in
      List.for_all
        (fun i -> Layout.walk_steps l ~index:i <= Layout.length l)
        (List.init (Layout.length l) Fun.id))

let tests =
  [
    QCheck_alcotest.to_alcotest prop_preorder_parents;
    QCheck_alcotest.to_alcotest prop_bounds_well_formed;
    QCheck_alcotest.to_alcotest prop_element0_is_object;
    QCheck_alcotest.to_alcotest prop_narrow_agrees_with_reference;
    QCheck_alcotest.to_alcotest prop_memory_roundtrip;
    QCheck_alcotest.to_alcotest prop_walk_steps_bounded;
  ]
