(* The differential fuzzer: generator determinism and well-typedness,
   printer round-trips on generated programs, the oracle battery,
   greedy shrinking, failure-line encoding, and replay of the committed
   counterexample corpus in test/golden/fuzz/. *)

open Ifp_compiler
module Prng = Ifp_util.Prng
module Gen = Ifp_fuzz.Gen
module Oracle = Ifp_fuzz.Oracle
module Shrink = Ifp_fuzz.Shrink
module Fuzz = Ifp_fuzz.Fuzz

let corpus_dir = "golden/fuzz"

let seeds base n = List.init n (fun i -> Prng.mix2 base (Int64.of_int i))

(* ---- generator ------------------------------------------------------- *)

let test_determinism () =
  List.iter
    (fun seed ->
      let a = Gen.source ~knobs:Gen.quick ~seed () in
      let b = Gen.source ~knobs:Gen.quick ~seed () in
      Alcotest.(check string)
        (Printf.sprintf "seed %Ld reproducible" seed)
        a b)
    (seeds 11L 8);
  let a = Gen.source ~seed:1L () and b = Gen.source ~seed:2L () in
  Alcotest.(check bool) "distinct seeds differ" false (String.equal a b)

let test_well_typed () =
  (* every generated program parses and typechecks (Gen.generate raises
     Gen_bug otherwise), for both knob presets *)
  List.iter
    (fun seed -> ignore (Gen.generate ~knobs:Gen.quick ~seed ()))
    (seeds 100L 40);
  List.iter
    (fun seed -> ignore (Gen.generate ~knobs:Gen.default ~seed ()))
    (seeds 200L 15)

let test_roundtrip () =
  (* generated programs are parser images: print -> reparse is the
     identity, and reprinting is byte-stable *)
  List.iter
    (fun seed ->
      let p = Gen.generate ~knobs:Gen.quick ~seed () in
      let text = Ir_pp.program_to_string p in
      let p2 = Parser.parse text in
      Typecheck.check_program p2;
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld reparse equal" seed)
        true (Ir.equal_program p p2);
      Alcotest.(check string)
        (Printf.sprintf "seed %Ld reprint stable" seed)
        text
        (Ir_pp.program_to_string p2))
    (seeds 300L 12)

(* ---- oracle ---------------------------------------------------------- *)

let test_battery_green () =
  (* well-defined generated programs must pass the whole battery *)
  List.iter
    (fun seed ->
      let p = Gen.generate ~knobs:Gen.quick ~seed () in
      let failures, _ = Oracle.check ~fault_seed:seed p in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %Ld battery" seed)
        []
        (List.map Oracle.failure_key failures))
    (seeds 400L 6)

let test_temporal_knob_off_identical () =
  (* the temporal knob must not perturb the PRNG stream when off: same
     seed, knob explicitly false = the preset's output *)
  List.iter
    (fun seed ->
      let a = Gen.source ~knobs:Gen.quick ~seed () in
      let b = Gen.source ~knobs:{ Gen.quick with Gen.temporal = false } ~seed () in
      Alcotest.(check string) (Printf.sprintf "seed %Ld" seed) a b)
    (seeds 500L 4)

let test_temporal_battery () =
  (* safe programs: finish under temporal mode, engines agree, and the
     armed uaf_use / double_free plans never classify silent *)
  List.iter
    (fun seed ->
      let p = Gen.generate ~knobs:Gen.quick ~seed () in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %Ld temporal battery" seed)
        []
        (List.map Oracle.failure_key (Oracle.check_temporal ~fault_seed:seed p)))
    (seeds 600L 4)

let test_temporal_variants_trap () =
  (* temporal-knob programs: must die with a temporal trap under both
     temporal configs, bit-identically across engines *)
  List.iter
    (fun seed ->
      let knobs = { Gen.quick with Gen.temporal = true } in
      let p = Gen.generate ~knobs ~seed () in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %Ld temporal variant" seed)
        []
        (List.map Oracle.failure_key
           (Oracle.check_temporal ~expect_fault:true p)))
    (seeds 700L 6)

let oob_src =
  "i64 main() {\n\
  \  let junk: i64 = 42;\n\
  \  let p: i64* = malloc(i64, 4);\n\
  \  p[0] = 7;\n\
  \  let x: i64 = p[5];\n\
  \  __print_i64(x);\n\
  \  if (x > 2) {\n\
  \    junk = 9;\n\
  \  }\n\
  \  return (x + junk);\n\
   }\n"

let test_battery_flags_oob () =
  match Fuzz.check_source oob_src with
  | Error m -> Alcotest.failf "oob source rejected: %s" m
  | Ok failures ->
    let keys = List.map Oracle.failure_key failures in
    Alcotest.(check bool)
      "ifp-subheap equivalence divergence detected" true
      (List.mem "equivalence/ifp-subheap" keys)

let test_failure_line_roundtrip () =
  let f =
    {
      Oracle.oracle = "engines";
      site = "ifp-subheap/closure";
      detail = "-cycles=12 +cycles=13\nwith newline and \"quotes\"";
    }
  in
  (match Oracle.of_line (Oracle.to_line f) with
  | Some g ->
    Alcotest.(check string) "oracle" f.Oracle.oracle g.Oracle.oracle;
    Alcotest.(check string) "site" f.Oracle.site g.Oracle.site;
    Alcotest.(check string) "detail" f.Oracle.detail g.Oracle.detail
  | None -> Alcotest.fail "of_line rejected its own encoding");
  Alcotest.(check (option reject)) "non-failure line ignored" None
    (Option.map ignore (Oracle.of_line "12345"))

(* ---- shrinker -------------------------------------------------------- *)

let test_shrink_preserves_failure () =
  let prog = Parser.parse oob_src in
  Typecheck.check_program prog;
  let key = "equivalence/ifp-subheap" in
  let small = Fuzz.minimize ~fault_seed:1L ~key prog in
  let text = Ir_pp.program_to_string small in
  (* still reproduces under replay *)
  (match Fuzz.check_source text with
  | Ok failures ->
    Alcotest.(check bool) "minimized still diverges" true
      (List.exists (fun f -> Oracle.failure_key f = key) failures)
  | Error m -> Alcotest.failf "minimized program invalid: %s" m);
  (* and actually shrank *)
  let lines s = List.length (String.split_on_char '\n' s) in
  Alcotest.(check bool) "got smaller" true (lines text < lines oob_src);
  (* printing the minimized program is a fixpoint (parser image) *)
  Alcotest.(check string) "minimized reprint stable" text
    (Ir_pp.program_to_string (Parser.parse text))

let test_shrink_keeps_input_when_keep_fails () =
  let prog = Parser.parse oob_src in
  let out = Shrink.minimize ~keep:(fun _ -> false) prog in
  Alcotest.(check bool) "unchanged" true (Ir.equal_program prog out)

(* ---- campaign plumbing ----------------------------------------------- *)

let test_job_digests () =
  let j () = Fuzz.job ~knobs:Gen.quick ~campaign_seed:7L ~round:0 ~idx:3 in
  let a = j () and b = j () in
  Alcotest.(check string) "same case same digest" (Ifp_campaign.Job.digest a)
    (Ifp_campaign.Job.digest b);
  let c = Fuzz.job ~knobs:Gen.quick ~campaign_seed:7L ~round:0 ~idx:4 in
  Alcotest.(check bool) "distinct cases distinct digests" false
    (String.equal (Ifp_campaign.Job.digest a) (Ifp_campaign.Job.digest c))

let test_runner_verdict () =
  let j = Fuzz.job ~knobs:Gen.quick ~campaign_seed:7L ~round:1 ~idx:0 in
  let r = Fuzz.runner j in
  (match r.Ifp_vm.Vm.outcome with
  | Ifp_vm.Vm.Finished 0L -> ()
  | o ->
    Alcotest.failf "clean case verdict: %s"
      (match o with
      | Ifp_vm.Vm.Finished n -> Printf.sprintf "finished:%Ld" n
      | _ -> "non-finish"));
  Alcotest.(check int) "no failures decoded" 0
    (List.length (Fuzz.failures_of r))

(* ---- corpus ---------------------------------------------------------- *)

let read_expect path =
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  let seed =
    List.find_map
      (fun l ->
        match String.split_on_char ' ' l with
        | [ "seed"; s ] -> Int64.of_string_opt s
        | _ -> None)
      lines
    |> Option.value ~default:1L
  in
  let keys =
    List.filter_map
      (fun l ->
        match String.split_on_char ' ' l with
        | [ "failure"; k ] -> Some k
        | _ -> None)
      lines
  in
  (seed, keys)

let test_corpus_replay () =
  let entries = Fuzz.corpus_entries ~dir:corpus_dir in
  Alcotest.(check bool) "corpus not empty" true (entries <> []);
  List.iter
    (fun (digest, src) ->
      Alcotest.(check string)
        (digest ^ " content-addressed")
        digest (Fuzz.text_digest src);
      let seed, expected =
        read_expect (Filename.concat corpus_dir (digest ^ ".expect"))
      in
      Alcotest.(check bool) (digest ^ " has expectations") true (expected <> []);
      match Fuzz.check_source ~fault_seed:seed src with
      | Error m -> Alcotest.failf "%s: invalid corpus entry: %s" digest m
      | Ok failures ->
        let keys = List.map Oracle.failure_key failures in
        List.iter
          (fun k ->
            Alcotest.(check bool)
              (Printf.sprintf "%s reproduces %s" digest k)
              true (List.mem k keys))
          expected;
        (* corpus text is canonical: printing its parse is the identity *)
        Alcotest.(check string) (digest ^ " canonical") src
          (Ir_pp.program_to_string (Parser.parse src)))
    entries

let test_corpus_write_roundtrip () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fuzz-corpus-test" in
  let src = "i64 main() {\n  return 0;\n}\n" in
  let d = Fuzz.corpus_write ~dir ~src ~seed:9L ~keys:[ "engines/x" ] in
  let entries = Fuzz.corpus_entries ~dir in
  Alcotest.(check bool) "written entry listed" true
    (List.mem_assoc d entries);
  Alcotest.(check string) "text preserved" src (List.assoc d entries);
  let seed, keys = read_expect (Filename.concat dir (d ^ ".expect")) in
  Alcotest.(check int64) "seed preserved" 9L seed;
  Alcotest.(check (list string)) "keys preserved" [ "engines/x" ] keys

let tests =
  [
    Alcotest.test_case "generator determinism" `Quick test_determinism;
    Alcotest.test_case "generated programs well-typed" `Quick test_well_typed;
    Alcotest.test_case "generated programs round-trip" `Quick test_roundtrip;
    Alcotest.test_case "oracle battery green on clean seeds" `Quick
      test_battery_green;
    Alcotest.test_case "oracle battery flags oob" `Quick test_battery_flags_oob;
    Alcotest.test_case "temporal knob off is byte-identical" `Quick
      test_temporal_knob_off_identical;
    Alcotest.test_case "temporal battery green on safe seeds" `Quick
      test_temporal_battery;
    Alcotest.test_case "temporal variants trap temporally" `Quick
      test_temporal_variants_trap;
    Alcotest.test_case "failure line round-trip" `Quick
      test_failure_line_roundtrip;
    Alcotest.test_case "shrinker preserves failure" `Quick
      test_shrink_preserves_failure;
    Alcotest.test_case "shrinker no-op without failure" `Quick
      test_shrink_keeps_input_when_keep_fails;
    Alcotest.test_case "job digests deterministic" `Quick test_job_digests;
    Alcotest.test_case "runner verdict on clean case" `Quick
      test_runner_verdict;
    Alcotest.test_case "corpus replay" `Quick test_corpus_replay;
    Alcotest.test_case "corpus write round-trip" `Quick
      test_corpus_write_roundtrip;
  ]
