(* Tests for the comparator models and the hardware area model. *)

open Core
module B = Ifp_baselines.Baselines
module H = Ifp_hwmodel.Hwmodel

let sample_rows () =
  let wl = Option.get (Ifp_workloads.Registry.find "treeadd") in
  let prog = Lazy.force wl.Ifp_workloads.Workload.prog in
  let baseline = Vm.run ~config:Vm.baseline prog in
  let ifp = Vm.run ~config:Vm.ifp_subheap prog in
  (baseline, ifp)

let test_projection_basics () =
  let baseline, ifp = sample_rows () in
  List.iter
    (fun model ->
      let p = B.project model ~baseline ~ifp in
      Alcotest.(check bool)
        (model.B.name ^ " overhead >= 1")
        true
        (p.B.instr_overhead >= 1.0 && p.cycle_overhead >= 1.0))
    B.all

let test_framer_heavier_than_mte () =
  let baseline, ifp = sample_rows () in
  let ov m = (B.project m ~baseline ~ifp).B.cycle_overhead in
  Alcotest.(check bool) "FRAMER >> MTE" true (ov B.framer > ov B.mte);
  Alcotest.(check bool) "SoftBound > MTE" true (ov B.softbound > ov B.mte)

let test_detection_table () =
  Alcotest.(check bool) "MPX catches subobject" true
    (B.detects B.mpx Ifp_juliet.Juliet.Intra_object = B.Full);
  Alcotest.(check bool) "ASan misses subobject" true
    (B.detects B.asan Ifp_juliet.Juliet.Intra_object = B.None_);
  Alcotest.(check bool) "ASan catches object overflow" true
    (B.detects B.asan Ifp_juliet.Juliet.Overflow = B.Object_only);
  (match B.detects B.mte Ifp_juliet.Juliet.Overflow with
  | B.Probabilistic p -> Alcotest.(check (float 0.01)) "15/16" 0.9375 p
  | _ -> Alcotest.fail "MTE should be probabilistic")

let test_hw_totals_match_paper () =
  Alcotest.(check int) "vanilla LUTs" 37_088 H.vanilla_luts;
  Alcotest.(check int) "modified LUTs" 59_261 (H.total_luts H.full);
  Alcotest.(check int) "modified FFs" 32_545 (H.total_ffs H.full);
  Alcotest.(check bool) "about +60%" true
    (abs_float (H.lut_increase_pct H.full -. 60.0) < 2.0)

let test_hw_stage_shares () =
  let stages = H.by_stage H.full in
  let total = List.fold_left (fun a (_, l) -> a + l) 0 stages in
  let exec = List.assoc H.Execute stages in
  let issue = List.assoc H.Issue stages in
  (* paper: execute ~62%, issue ~29% of the increase *)
  let share x = float_of_int x /. float_of_int total in
  Alcotest.(check bool) "execute ~62%" true (abs_float (share exec -. 0.62) < 0.05);
  Alcotest.(check bool) "issue ~29%" true (abs_float (share issue -. 0.29) < 0.05)

let test_hw_ablations () =
  let no_walker = { H.full with layout_walker = false } in
  Alcotest.(check int) "walker saves 3059 LUTs" 3059
    (H.added_luts H.full - H.added_luts no_walker);
  let no_bregs = { H.full with bounds_registers = false } in
  Alcotest.(check bool) "no-bregs under 30% less" true
    (H.added_luts no_bregs < H.added_luts H.full - 6000);
  let one_scheme = { H.full with schemes = [ "local" ] } in
  Alcotest.(check bool) "fewer schemes, less area" true
    (H.added_luts one_scheme < H.added_luts H.full)

let test_hw_temporal_pricing () =
  (* temporal off = exactly the paper's calibrated totals *)
  Alcotest.(check bool) "full has temporal off" false H.full.H.temporal;
  Alcotest.(check int) "temporal-off totals unchanged" 59_261
    (H.total_luts H.full);
  let extra = H.added_luts H.full_temporal - H.added_luts H.full in
  let expect =
    List.fold_left (fun a (c : H.component) -> a + c.H.luts) 0
      H.temporal_components
  in
  Alcotest.(check int) "temporal adds its component LUTs" expect extra;
  Alcotest.(check bool) "small relative to the IFP unit" true
    (extra > 0 && extra < 1000);
  (* the epoch machinery lives in the execute stage *)
  let exec cfg = List.assoc H.Execute (H.by_stage cfg) in
  Alcotest.(check int) "all of it in execute" extra
    (exec H.full_temporal - exec H.full);
  (* metadata pricing: only the subheap block record grows *)
  Alcotest.(check int) "local-offset epoch free" 0
    (List.assoc "local-offset object" H.temporal_metadata_bytes);
  Alcotest.(check int) "subheap block doubles" 32
    (List.assoc "subheap block" H.temporal_metadata_bytes);
  Alcotest.(check int) "global-table epoch free" 0
    (List.assoc "global-table row" H.temporal_metadata_bytes)

let tests =
  [
    Alcotest.test_case "projection basics" `Slow test_projection_basics;
    Alcotest.test_case "comparator ordering" `Slow test_framer_heavier_than_mte;
    Alcotest.test_case "detection table" `Quick test_detection_table;
    Alcotest.test_case "hw totals vs paper" `Quick test_hw_totals_match_paper;
    Alcotest.test_case "hw stage shares" `Quick test_hw_stage_shares;
    Alcotest.test_case "hw ablations" `Quick test_hw_ablations;
    Alcotest.test_case "hw temporal pricing" `Quick test_hw_temporal_pricing;
  ]
