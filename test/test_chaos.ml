(* Chaos-harness integration tests: fork the real chaos_child campaign
   binary, SIGKILL it at seeded points (or SIGTERM it mid-flight), and
   assert that --resume converges to output byte-identical to an
   uninterrupted run — for several kill points and worker counts. Also
   covers seeded journal-tail truncation, torn cache entries, and the
   in-process graceful-stop path. *)

open Core
module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Journal = Ifp_campaign.Journal
module Rcache = Ifp_campaign.Cache
module Events = Ifp_campaign.Events
module Chaos = Ifp_campaign.Chaos

(* the victim binary is built next to the test runner (see test/dune);
   resolve it relative to the running executable so the tests work from
   any cwd (`dune runtest` and `dune exec` differ) *)
let child_exe =
  let beside = Filename.concat (Filename.dirname Sys.executable_name) "chaos_child.exe" in
  if Sys.file_exists beside then beside else "./chaos_child.exe"
let child_jobs = 30

let fresh_dir prefix =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir path 0o755;
  path

let fresh_path prefix ext =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s-%d-%d%s" prefix (Unix.getpid ()) (Random.bits ()) ext)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

(* spawn chaos_child with stdout/stderr discarded; returns pid *)
let spawn args =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process child_exe
      (Array.of_list (child_exe :: args))
      Unix.stdin devnull devnull
  in
  Unix.close devnull;
  pid

let run_child args =
  let _, status = Unix.waitpid [] (spawn args) in
  status

let status_str = function
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "signaled %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n

(* one golden, uninterrupted run shared by every chaos case *)
let golden =
  lazy
    (let out = fresh_path "ifp-chaos-golden" ".txt" in
     (match run_child [ "--out"; out ] with
     | Unix.WEXITED 0 -> ()
     | st -> Alcotest.failf "golden chaos_child run: %s" (status_str st));
     let bytes = read_file out in
     remove_quiet out;
     bytes)

let check_resume_matches_golden ~label ~journal ~workers =
  let out = fresh_path "ifp-chaos-resume" ".txt" in
  (match
     run_child
       [ "--out"; out; "--resume"; journal; "-j"; string_of_int workers ]
   with
  | Unix.WEXITED 0 -> ()
  | st -> Alcotest.failf "%s: resume run: %s" label (status_str st));
  Alcotest.(check string)
    (label ^ ": resumed table byte-identical to golden")
    (Lazy.force golden) (read_file out);
  remove_quiet out

let test_kill_and_resume () =
  (* for every seeded kill point x worker count: the child must die on
     SIGKILL having journaled exactly/at least the armed number of
     completions, and --resume must converge to the golden table *)
  List.iter
    (fun seed ->
      List.iter
        (fun workers ->
          let p = Chaos.plan Chaos.Kill_runner ~seed in
          let k = Chaos.kill_point p ~jobs:child_jobs in
          let label =
            Printf.sprintf "%s j=%d" (Chaos.fingerprint p) workers
          in
          let journal = fresh_path "ifp-chaos-kill" ".wal" in
          let out = fresh_path "ifp-chaos-kill" ".txt" in
          (match
             run_child
               [ "--out"; out; "--journal"; journal; "--kill-after";
                 string_of_int k; "-j"; string_of_int workers ]
           with
          | Unix.WSIGNALED s when s = Sys.sigkill -> ()
          | st -> Alcotest.failf "%s: expected SIGKILL death, got %s" label
                    (status_str st));
          Alcotest.(check bool)
            (label ^ ": no output table from the killed run")
            false (Sys.file_exists out);
          let rep = Journal.replay ~path:journal in
          let n = List.length rep.Journal.entries in
          (* WAL discipline: the record hits disk before the hook fires,
             so the k-th completion is always journaled; concurrent
             workers may have landed a few more *)
          if not (n >= k && n <= child_jobs) then
            Alcotest.failf "%s: %d journaled records outside [%d, %d]"
              label n k child_jobs;
          if workers = 1 then
            Alcotest.(check int)
              (label ^ ": single worker journals exactly k records")
              k n;
          check_resume_matches_golden ~label ~journal ~workers;
          Alcotest.(check int)
            (label ^ ": journal complete after resume")
            child_jobs
            (List.length (Journal.replay ~path:journal).Journal.entries);
          remove_quiet journal)
        [ 1; 3 ])
    [ 0xC4A05L; 0x7EA51DEL ]

let test_truncate_journal_tail_and_resume () =
  (* complete a run, chop seeded bytes off the journal tail, resume:
     only torn records may be lost, and resume restores the full set *)
  List.iter
    (fun seed ->
      let p = Chaos.plan Chaos.Truncate_journal_tail ~seed in
      let label = Chaos.fingerprint p in
      let journal = fresh_path "ifp-chaos-trunc" ".wal" in
      let out = fresh_path "ifp-chaos-trunc" ".txt" in
      (match run_child [ "--out"; out; "--journal"; journal ] with
      | Unix.WEXITED 0 -> ()
      | st -> Alcotest.failf "%s: full run: %s" label (status_str st));
      remove_quiet out;
      let cut = Chaos.truncate_journal_tail p ~path:journal in
      if cut = None then Alcotest.failf "%s: nothing truncated" label;
      let rep = Journal.replay ~path:journal in
      let n = List.length rep.Journal.entries in
      if n > child_jobs then
        Alcotest.failf "%s: replay grew records (%d)" label n;
      check_resume_matches_golden ~label ~journal ~workers:2;
      Alcotest.(check int)
        (label ^ ": journal complete after resume")
        child_jobs
        (List.length (Journal.replay ~path:journal).Journal.entries);
      remove_quiet journal)
    [ 3L; 0xB0B0L ]

let test_sigterm_drains_and_resumes () =
  (* graceful path: slow jobs, SIGTERM mid-campaign. Either the child
     drains and exits 130 (then resume must converge) or — if the
     machine was fast enough to finish first — it exits 0 with the
     golden table directly. Both are correct behaviours; a raw death is
     not. *)
  let journal = fresh_path "ifp-chaos-term" ".wal" in
  let out = fresh_path "ifp-chaos-term" ".txt" in
  let pid =
    spawn
      [ "--out"; out; "--journal"; journal; "--slow-ms"; "40"; "-j"; "2" ]
  in
  Unix.sleepf 0.25;
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let _, status = Unix.waitpid [] pid in
  (match status with
  | Unix.WEXITED 130 ->
    Alcotest.(check bool) "no table from the interrupted run" false
      (Sys.file_exists out);
    let rep = Journal.replay ~path:journal in
    Alcotest.(check bool) "drained journal is not torn" false
      rep.Journal.torn_tail;
    check_resume_matches_golden ~label:"sigterm" ~journal ~workers:2
  | Unix.WEXITED 0 ->
    (* campaign finished before the signal landed *)
    Alcotest.(check string) "finished run matches golden"
      (Lazy.force golden) (read_file out)
  | st -> Alcotest.failf "sigterm: expected exit 130 or 0, got %s"
            (status_str st));
  remove_quiet out;
  remove_quiet journal

let tiny_prog i =
  Ir.program ~tenv:Ctype.empty_tenv ~globals:[]
    [ Ir.func "main" [] Ctype.I64 [ Ir.Return (Some (Ir.i (i * 3))) ] ]

let tiny_job i =
  Job.make
    ~name:(Printf.sprintf "chaos-mem/%02d" i)
    ~group:"chaos-mem" ~variant:"subheap" ~config:Vm.ifp_subheap
    (tiny_prog i)

let test_tear_cache_entry_quarantines () =
  let dir = fresh_dir "ifp-chaos-cache" in
  let jobs = List.init 8 tiny_job in
  let cache = Rcache.create ~dir () in
  let first, _ = Engine.run ~cache jobs in
  let p = Chaos.plan Chaos.Tear_cache_entry ~seed:11L in
  (match Chaos.tear_cache_entry p ~dir with
  | Some _ -> ()
  | None -> Alcotest.fail "no cache entry to tear");
  (* an engine pass over the damaged cache self-heals: quarantines the
     torn entry (emitting the corruption event), re-runs that one job,
     and serves the other seven from cache with identical results *)
  let log_path = fresh_path "ifp-chaos-cache" ".jsonl" in
  let log = Events.create ~path:log_path in
  let again, stats = Engine.run ~cache ~log jobs in
  Events.close log;
  Alcotest.(check int) "seven served from cache" 7 stats.Engine.cache_hits;
  Array.iteri
    (fun i (o : Engine.outcome) ->
      Alcotest.(check bool) "self-healed result identical" true
        (o.Engine.result = first.(i).Engine.result))
    again;
  let lines, truncated = Events.read_lines ~path:log_path in
  Alcotest.(check bool) "event log intact" false truncated;
  let has_corruption_event =
    List.exists
      (fun l ->
        let has s =
          let n = String.length l and m = String.length s in
          let rec go i = i + m <= n && (String.sub l i m = s || go (i + 1)) in
          go 0
        in
        has "\"cache_crc_mismatch\"" || has "\"cache_corrupt\"")
      lines
  in
  Alcotest.(check bool) "corruption event emitted" true has_corruption_event;
  remove_quiet log_path;
  (* the engine re-stored the healed entry; tear again and probe by
     hand: exactly one digest quarantines (preserving the evidence
     file), never a Hit with a wrong result, and the rest still hit *)
  let torn =
    match Chaos.tear_cache_entry p ~dir with
    | Some path -> path
    | None -> Alcotest.fail "no cache entry to tear (second pass)"
  in
  let quarantined = ref 0 in
  List.iter
    (fun (j : Job.t) ->
      match Rcache.find cache ~digest:(Job.digest j) with
      | Rcache.Hit _ -> ()
      | Rcache.Miss -> Alcotest.fail "unexpected cache miss"
      | Rcache.Quarantined { path; _ } ->
        incr quarantined;
        Alcotest.(check bool) "quarantine file preserved" true
          (Sys.file_exists path))
    jobs;
  Alcotest.(check int) "exactly the torn entry quarantined" 1 !quarantined;
  Alcotest.(check bool) "torn original gone" false (Sys.file_exists torn)

let test_graceful_stop_in_process () =
  (* in-process dual of the SIGTERM test: flip the stop flag from the
     first completion hook, confirm the drain (skipped jobs, interrupted
     stats, journal holds only completions), then resume to convergence *)
  let journal_path = fresh_path "ifp-chaos-stop" ".wal" in
  let jobs = List.init 12 tiny_job in
  let stopped = Atomic.make false in
  let journal = Journal.create ~path:journal_path in
  let _, s1 =
    Engine.run ~workers:2 ~journal
      ~stop:(fun () -> Atomic.get stopped)
      ~on_job_done:(fun _ -> Atomic.set stopped true)
      jobs
  in
  Journal.close journal;
  Alcotest.(check bool) "run reports interrupted" true s1.Engine.interrupted;
  Alcotest.(check bool) "some jobs were skipped" true (s1.Engine.skipped > 0);
  let rep = Journal.replay ~path:journal_path in
  let done_before = List.length rep.Journal.entries in
  Alcotest.(check int) "journal holds exactly the completions" done_before
    (s1.Engine.completed + s1.Engine.failed + s1.Engine.timed_out);
  (* resume: replays everything journaled, runs only the skipped rest *)
  let journal, rep = Journal.open_resume ~path:journal_path in
  Alcotest.(check bool) "graceful journal is not torn" false
    rep.Journal.torn_tail;
  let full, s2 = Engine.run ~workers:2 ~journal jobs in
  Journal.close journal;
  Alcotest.(check bool) "resumed run completes" false s2.Engine.interrupted;
  Alcotest.(check int) "replays = prior completions" done_before
    s2.Engine.journal_replays;
  let reference, _ = Engine.run jobs in
  Array.iteri
    (fun i (o : Engine.outcome) ->
      Alcotest.(check bool) "converged result identical" true
        (o.Engine.result = reference.(i).Engine.result))
    full;
  remove_quiet journal_path

let tests =
  [
    Alcotest.test_case "SIGKILL at seeded points; resume is byte-identical"
      `Slow test_kill_and_resume;
    Alcotest.test_case "seeded journal-tail truncation; resume converges"
      `Slow test_truncate_journal_tail_and_resume;
    Alcotest.test_case "SIGTERM drains gracefully; resume converges" `Slow
      test_sigterm_drains_and_resumes;
    Alcotest.test_case "torn cache entry quarantines and self-heals" `Quick
      test_tear_cache_entry_quarantines;
    Alcotest.test_case "in-process graceful stop and resume" `Quick
      test_graceful_stop_in_process;
  ]
