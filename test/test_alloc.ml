(* Tests for the buddy allocator and the three runtime allocators. *)

open Core

let test_buddy_alloc_free () =
  let b = Buddy.create ~base:0x1000_0000L ~size_log2:20 ~min_log2:12 in
  (match Buddy.alloc b 12 with
  | Some a ->
    Alcotest.(check int64) "first block at base" 0x1000_0000L a;
    Alcotest.(check bool) "aligned" true
      (Int64.equal (Bits.align_down64 a 4096) a)
  | None -> Alcotest.fail "alloc failed");
  Alcotest.(check int) "in use" 4096 (Buddy.bytes_in_use b)

let test_buddy_coalescing () =
  let b = Buddy.create ~base:0x1000_0000L ~size_log2:20 ~min_log2:12 in
  let a1 = Option.get (Buddy.alloc b 12) in
  let a2 = Option.get (Buddy.alloc b 12) in
  Buddy.free b a1 12;
  Buddy.free b a2 12;
  Alcotest.(check int) "all returned" 0 (Buddy.bytes_in_use b);
  (* after coalescing, a full-size block is allocatable again *)
  match Buddy.alloc b 20 with
  | Some a -> Alcotest.(check int64) "whole arena back" 0x1000_0000L a
  | None -> Alcotest.fail "coalescing failed"

let test_buddy_exhaustion () =
  let b = Buddy.create ~base:0x1000_0000L ~size_log2:13 ~min_log2:12 in
  ignore (Buddy.alloc b 12);
  ignore (Buddy.alloc b 12);
  Alcotest.(check bool) "exhausted" true (Buddy.alloc b 12 = None)

let prop_buddy_alignment =
  QCheck.Test.make ~count:200 ~name:"buddy blocks are naturally aligned"
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 12 16))
    (fun sizes ->
      let b = Buddy.create ~base:0x1000_0000L ~size_log2:24 ~min_log2:12 in
      List.for_all
        (fun l ->
          match Buddy.alloc b l with
          | None -> true
          | Some a -> Int64.equal (Bits.align_down64 a (1 lsl l)) a)
        sizes)

let mk_env () =
  let mem = Memory.create () in
  Memory.map mem ~base:0x200000L ~size:(1 lsl 16);
  Memory.map mem ~base:0x300000L ~size:(4096 * 16);
  let meta =
    Meta.create ~memory:mem ~mac_key:7L
      ~layout_region:(0x200000L, 1 lsl 16)
      ~global_table:(0x300000L, 512) ()
  in
  (mem, meta)

let test_baseline_reuse () =
  let mem, _ = mk_env () in
  let a = Baseline_alloc.create ~memory:mem ~base:0x1000_0000L ~size:(1 lsl 20) in
  let p1, _ = a.Alloc.malloc ~size:48 ~cty:None in
  a.Alloc.free p1 |> ignore;
  let p2, _ = a.Alloc.malloc ~size:40 ~cty:None in
  Alcotest.(check int64) "same size class reused" p1 p2;
  Alcotest.(check bool) "16-aligned payload" true
    (Int64.equal (Bits.align_down64 p2 16) p2);
  let s = a.Alloc.stats () in
  Alcotest.(check int) "allocs" 2 s.Alloc.n_allocs;
  Alcotest.(check int) "frees" 1 s.Alloc.n_frees

let test_baseline_untagged () =
  let mem, _ = mk_env () in
  let a = Baseline_alloc.create ~memory:mem ~base:0x1000_0000L ~size:(1 lsl 20) in
  let p, _ = a.Alloc.malloc ~size:64 ~cty:None in
  Alcotest.(check bool) "legacy pointer" true (Tag.scheme p = Tag.Legacy)

let tenv_node =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "n2";
      fields =
        [ { fname = "a"; fty = Ctype.I64 }; { fname = "b"; fty = Ctype.I64 } ];
    }

let test_wrapped_schemes () =
  let mem, meta = mk_env () in
  let base_alloc =
    Baseline_alloc.create ~memory:mem ~base:0x1000_0000L ~size:(1 lsl 22)
  in
  let w = Wrapped_alloc.create ~meta ~tenv:tenv_node ~base_alloc in
  (* small object: local-offset scheme, metadata behind it *)
  let p, _ = w.Alloc.malloc ~size:16 ~cty:(Some (Ctype.Struct "n2")) in
  Alcotest.(check bool) "small -> local offset" true
    (Tag.scheme p = Tag.Local_offset);
  (match Meta.Local_offset.lookup meta p with
  | Ok om, _ ->
    Alcotest.(check int) "size recorded" 16 om.Meta.obj_size;
    Alcotest.(check bool) "layout attached" true
      (not (Int64.equal om.layout_ptr 0L))
  | Error e, _ -> Alcotest.fail e);
  (* large object: global-table fallback *)
  let q, _ = w.Alloc.malloc ~size:5000 ~cty:None in
  Alcotest.(check bool) "large -> global table" true
    (Tag.scheme q = Tag.Global_table);
  (* free deregisters *)
  w.Alloc.free p |> ignore;
  (match Meta.Local_offset.lookup meta p with
  | Error _, _ -> ()
  | Ok _, _ -> Alcotest.fail "metadata survived free");
  w.Alloc.free q |> ignore

let test_subheap_pooling () =
  let mem, meta = mk_env () in
  let sh =
    Subheap_alloc.create ~meta ~tenv:tenv_node ~memory:mem ~base:0x1000_0000L
      ~size_log2:24
  in
  let p1, _ = sh.Alloc.malloc ~size:16 ~cty:(Some (Ctype.Struct "n2")) in
  let p2, _ = sh.Alloc.malloc ~size:16 ~cty:(Some (Ctype.Struct "n2")) in
  Alcotest.(check bool) "subheap scheme" true (Tag.scheme p1 = Tag.Subheap);
  (* same pool: adjacent slots in the same block *)
  Alcotest.(check int64) "slot stride" 16L (Int64.sub (Tag.addr p2) (Tag.addr p1));
  (* lookup resolves exact object bounds *)
  (match Meta.Subheap.lookup meta p2 with
  | Ok om, _, _ ->
    Alcotest.(check int64) "slot base" (Tag.addr p2) om.Meta.obj_base;
    Alcotest.(check int) "obj size" 16 om.obj_size
  | Error e, _, _ -> Alcotest.fail e);
  (* slot reuse after free *)
  sh.Alloc.free p1 |> ignore;
  let p3, _ = sh.Alloc.malloc ~size:16 ~cty:(Some (Ctype.Struct "n2")) in
  Alcotest.(check int64) "slot reused" (Tag.addr p1) (Tag.addr p3)

let test_subheap_separates_types () =
  let mem, meta = mk_env () in
  let sh =
    Subheap_alloc.create ~meta ~tenv:tenv_node ~memory:mem ~base:0x1000_0000L
      ~size_log2:24
  in
  let p1, _ = sh.Alloc.malloc ~size:16 ~cty:(Some (Ctype.Struct "n2")) in
  let p2, _ = sh.Alloc.malloc ~size:16 ~cty:None in
  (* same size, different type info -> different pools/blocks *)
  let b1 = Bits.align_down64 (Tag.addr p1) 4096 in
  let b2 = Bits.align_down64 (Tag.addr p2) 4096 in
  Alcotest.(check bool) "different blocks" true (not (Int64.equal b1 b2))

let test_subheap_huge_fallback () =
  let mem, meta = mk_env () in
  let sh =
    Subheap_alloc.create ~meta ~tenv:tenv_node ~memory:mem ~base:0x1000_0000L
      ~size_log2:24
  in
  let p, _ = sh.Alloc.malloc ~size:100_000 ~cty:None in
  Alcotest.(check bool) "huge -> global table" true
    (Tag.scheme p = Tag.Global_table);
  (match Meta.Global_table.lookup meta p with
  | Ok om, _ -> Alcotest.(check int) "size" 100_000 om.Meta.obj_size
  | Error e, _ -> Alcotest.fail e);
  sh.Alloc.free p |> ignore

let test_subheap_footprint_tighter_than_baseline () =
  (* the headline memory property: same-size nodes pack tighter than
     glibc-style chunks with headers *)
  let mem, meta = mk_env () in
  let bl = Baseline_alloc.create ~memory:mem ~base:0x1100_0000L ~size:(1 lsl 22) in
  let sh =
    Subheap_alloc.create ~meta ~tenv:tenv_node ~memory:mem ~base:0x1000_0000L
      ~size_log2:24
  in
  for _ = 1 to 500 do
    ignore (bl.Alloc.malloc ~size:16 ~cty:None);
    ignore (sh.Alloc.malloc ~size:16 ~cty:(Some (Ctype.Struct "n2")))
  done;
  let fb = (bl.Alloc.stats ()).Alloc.footprint_bytes in
  let fs = (sh.Alloc.stats ()).Alloc.footprint_bytes in
  Alcotest.(check bool) "subheap tighter" true (fs < fb)

let tests =
  [
    Alcotest.test_case "buddy alloc/free" `Quick test_buddy_alloc_free;
    Alcotest.test_case "buddy coalescing" `Quick test_buddy_coalescing;
    Alcotest.test_case "buddy exhaustion" `Quick test_buddy_exhaustion;
    QCheck_alcotest.to_alcotest prop_buddy_alignment;
    Alcotest.test_case "baseline reuse" `Quick test_baseline_reuse;
    Alcotest.test_case "baseline untagged" `Quick test_baseline_untagged;
    Alcotest.test_case "wrapped scheme selection" `Quick test_wrapped_schemes;
    Alcotest.test_case "subheap pooling" `Quick test_subheap_pooling;
    Alcotest.test_case "subheap separates types" `Quick test_subheap_separates_types;
    Alcotest.test_case "subheap huge fallback" `Quick test_subheap_huge_fallback;
    Alcotest.test_case "subheap packs tighter" `Quick
      test_subheap_footprint_tighter_than_baseline;
  ]
