(* Executable version of the paper's §3 "Protection Scope and
   Guarantees": what In-Fat Pointer promises, what it explicitly does
   not, and the MAC's role against metadata tampering. *)

open Core
open Ir

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "obj";
      fields =
        [
          { fname = "a"; fty = Ctype.I64 };
          { fname = "b"; fty = Ctype.I64 };
        ];
    }

let op = Ctype.Ptr (Ctype.Struct "obj")

(* -- temporal errors: §3 "cannot detect temporal memory errors beyond
      those that invalidate object metadata" -- *)

let test_use_after_free_detected_when_metadata_invalidated () =
  (* wrapped allocator: free deregisters the local-offset metadata, so a
     promote through a stale pointer finds invalid metadata and poisons *)
  let gv = global "g" op in
  let prog =
    program ~tenv ~globals:[ gv ]
      [
        func "main" [] Ctype.I64
          [
            Let ("p", op, Malloc (Ctype.Struct "obj", i 1));
            Store_global ("g", v "p");
            Free (v "p");
            (* reload: promote must reject the dead metadata *)
            Let ("q", op, Load_global "g");
            Store (Ctype.I64, Gep (Ctype.Struct "obj", v "q", [ fld "a" ]), i 1);
            Return (Some (i 0));
          ];
      ]
  in
  match (Vm.run ~config:Vm.ifp_wrapped prog).Vm.outcome with
  | Vm.Trapped _ -> ()
  | _ -> Alcotest.fail "use-after-free with invalidated metadata should trap"

let test_use_after_free_missed_when_slot_reused () =
  (* subheap allocator: the freed slot's block metadata stays valid (it
     is shared by the whole block), so the stale pointer still promotes
     to plausible bounds — exactly the paper's stated limitation *)
  let gv = global "g" op in
  let prog =
    program ~tenv ~globals:[ gv ]
      [
        func "main" [] Ctype.I64
          [
            Let ("p", op, Malloc (Ctype.Struct "obj", i 1));
            Store_global ("g", v "p");
            Free (v "p");
            (* slot gets reused by a new object of the same type *)
            Let ("p2", op, Malloc (Ctype.Struct "obj", i 1));
            Store (Ctype.I64, Gep (Ctype.Struct "obj", v "p2", [ fld "a" ]), i 7);
            Let ("q", op, Load_global "g");
            (* in-bounds use of the stale pointer: silently reads p2 *)
            Return (Some (Load (Ctype.I64, Gep (Ctype.Struct "obj", v "q", [ fld "a" ]))));
          ];
      ]
  in
  match (Vm.run ~config:Vm.ifp_subheap prog).Vm.outcome with
  | Vm.Finished x ->
    Alcotest.(check int64) "stale pointer silently observes the new object" 7L x
  | _ -> Alcotest.fail "expected the documented temporal miss"

(* -- metadata tampering: the MAC catches corruption of in-memory object
      metadata by stray writes (e.g. from legacy code) -- *)

let test_metadata_tamper_detected_end_to_end () =
  (* a legacy function scribbles over the local-offset metadata that
     lives just after the object; the next promote must reject it *)
  let gv = global "g" (Ctype.Ptr Ctype.I64) in
  let prog =
    program ~tenv ~globals:[ gv ]
      [
        (* legacy code: untagged pointer arithmetic, unchecked writes *)
        func ~instrumented:false "scribble" [ ("p", Ctype.Ptr Ctype.I64) ]
          Ctype.Void
          [
            (* the wrapped allocator puts metadata right after the 16-byte
               object: offsets 2 and 3 hit it *)
            Store (Ctype.I64, Gep (Ctype.I64, v "p", [ at (i 2) ]), i 0xBAD);
            Store (Ctype.I64, Gep (Ctype.I64, v "p", [ at (i 3) ]), i 0xBAD);
            Return None;
          ];
        func "main" [] Ctype.I64
          [
            Let ("p", Ctype.Ptr Ctype.I64, Malloc (Ctype.I64, i 2));
            Store_global ("g", v "p");
            Expr (Call ("scribble", [ v "p" ]));
            (* reload and dereference: promote finds a broken MAC *)
            Let ("q", Ctype.Ptr Ctype.I64, Load_global "g");
            Store (Ctype.I64, Gep (Ctype.I64, v "q", [ at (i 0) ]), i 1);
            Return (Some (i 0));
          ];
      ]
  in
  match (Vm.run ~config:Vm.ifp_wrapped prog).Vm.outcome with
  | Vm.Trapped (Trap.Poisoned_dereference _) -> ()
  | Vm.Trapped t -> Alcotest.fail ("wrong trap: " ^ Trap.to_string t)
  | _ -> Alcotest.fail "tampered metadata should poison the promote"

(* -- tag-preservation assumption: §3 "does not support applications
      that modify these bits" -- *)

let test_tag_destruction_loses_protection_but_stays_silent () =
  (* casting through i64 and masking the tag off produces a legacy
     pointer: protection is lost, but no false positive occurs *)
  let prog =
    program ~tenv ~globals:[]
      [
        func "main" [] Ctype.I64
          [
            Let ("p", op, Malloc (Ctype.Struct "obj", i 1));
            Let ("raw", Ctype.I64,
                 Binop (BAnd, Cast (Ctype.I64, v "p"), i64 0xFFFF_FFFF_FFFFL));
            Let ("q", op, Cast (op, v "raw"));
            (* out-of-bounds through the stripped pointer: silent *)
            Store (Ctype.I64, Gep (Ctype.Struct "obj", v "q", [ at (i 3); fld "a" ]), i 1);
            Return (Some (i 0));
          ];
      ]
  in
  match (Vm.run ~config:Vm.ifp_subheap prog).Vm.outcome with
  | Vm.Finished _ -> ()
  | Vm.Trapped t -> Alcotest.fail ("false positive: " ^ Trap.to_string t)
  | Vm.Aborted m -> Alcotest.fail (Vm.abort_reason_string m)

(* -- off-by-one pointers: legal to hold, illegal to dereference -- *)

let test_one_past_end_pointer_legal_until_deref () =
  let prog ~deref =
    program ~tenv ~globals:[]
      [
        func "main" [] Ctype.I64
          ([
             Let ("a", Ctype.Ptr Ctype.I64, Malloc (Ctype.I64, i 4));
             (* classic idiom: end pointer for a loop bound *)
             Let ("end_", Ctype.Ptr Ctype.I64, Gep (Ctype.I64, v "a", [ at (i 4) ]));
             Let ("it", Ctype.Ptr Ctype.I64, v "a");
             Let ("s", Ctype.I64, i 0);
             While
               ( Binop (Ne, v "it", v "end_"),
                 [
                   Assign ("s", v "s" +: Load (Ctype.I64, v "it"));
                   Assign ("it", Gep (Ctype.I64, v "it", [ at (i 1) ]));
                 ] );
           ]
          @ (if deref then
               [ Assign ("s", v "s" +: Load (Ctype.I64, v "end_")) ]
             else [])
          @ [ Return (Some (v "s")) ]);
      ]
  in
  (match (Vm.run ~config:Vm.ifp_subheap (prog ~deref:false)).Vm.outcome with
  | Vm.Finished _ -> ()
  | Vm.Trapped t ->
    Alcotest.fail ("end-pointer idiom false positive: " ^ Trap.to_string t)
  | Vm.Aborted m -> Alcotest.fail (Vm.abort_reason_string m));
  match (Vm.run ~config:Vm.ifp_subheap (prog ~deref:true)).Vm.outcome with
  | Vm.Trapped _ -> ()
  | _ -> Alcotest.fail "dereferencing the end pointer should trap"

let tests =
  [
    Alcotest.test_case "UAF caught when metadata invalidated" `Quick
      test_use_after_free_detected_when_metadata_invalidated;
    Alcotest.test_case "UAF missed on slot reuse (documented)" `Quick
      test_use_after_free_missed_when_slot_reused;
    Alcotest.test_case "metadata tamper caught by MAC" `Quick
      test_metadata_tamper_detected_end_to_end;
    Alcotest.test_case "tag destruction: silent, unprotected" `Quick
      test_tag_destruction_loses_protection_but_stays_silent;
    Alcotest.test_case "one-past-end pointer idiom" `Quick
      test_one_past_end_pointer_legal_until_deref;
  ]
