(* Unit tests for the slot-resolution pass: name interning, call-target
   binding, gep lowering (including consecutive-field folding) and the
   structural purity of the pass. *)

open Core
open Ir

let tenv =
  let t =
    Ctype.declare Ctype.empty_tenv
      {
        Ctype.sname = "inner";
        fields =
          [
            { fname = "x"; fty = Ctype.I64 };
            { fname = "y"; fty = Ctype.I32 };
          ];
      }
  in
  Ctype.declare t
    {
      Ctype.sname = "outer";
      fields =
        [
          { fname = "a"; fty = Ctype.I64 };
          { fname = "b"; fty = Ctype.Struct "inner" };
        ];
    }

let resolve_funcs funcs =
  let p = program ~tenv ~globals:[] funcs in
  Resolve.run p

let find_func (r : Resolve.program) name =
  match Array.find_opt (fun f -> f.Resolve.fname = name) r.Resolve.funcs with
  | Some f -> f
  | None -> Alcotest.fail ("resolved program lost function " ^ name)

let test_var_interning () =
  let r =
    resolve_funcs
      [
        func "f" [ ("a", Ctype.I64); ("b", Ctype.I64) ] Ctype.I64
          [
            Let ("c", Ctype.I64, v "a" +: v "b");
            Return (Some (v "c" +: v "a"));
          ];
      ]
  in
  let f = find_func r "f" in
  Alcotest.(check (list int)) "params get the first slots" [ 0; 1 ] f.Resolve.params;
  Alcotest.(check int) "slots are dense" 3 f.Resolve.n_vars;
  Alcotest.(check (array string)) "slot -> name mapping" [| "a"; "b"; "c" |]
    f.Resolve.var_names

let test_call_targets () =
  let r =
    resolve_funcs
      [
        func "callee" [ ("x", Ctype.I64) ] Ctype.I64 [ Return (Some (v "x")) ];
        func "main" [] Ctype.I64
          [
            Expr (Call ("__print_i64", [ i 1 ]));
            Expr (Call ("missing", []));
            Return (Some (Call ("callee", [ i 7 ])));
          ];
      ]
  in
  let m = find_func r "main" in
  (match m.Resolve.body with
  | [
   Resolve.Expr (Resolve.Call { target = Resolve.C_print_i64; n_args = 1; _ });
   Resolve.Expr (Resolve.Call { target = Resolve.C_unknown "missing"; _ });
   Resolve.Return
     (Some (Resolve.Call { target = Resolve.C_func idx; n_args = 1; _ }));
  ] ->
    Alcotest.(check string) "function index bound" "callee"
      r.Resolve.funcs.(idx).Resolve.fname
  | _ -> Alcotest.fail "unexpected lowering of call statements");
  Alcotest.(check string) "main located" "main"
    r.Resolve.funcs.(r.Resolve.main).Resolve.fname

let test_gep_field_folding () =
  (* consecutive struct-field steps fold into one Rs_field whose offset
     is the sum and whose size is the innermost field's *)
  let r =
    resolve_funcs
      [
        func "f" [ ("p", Ctype.Ptr (Ctype.Struct "outer")) ] Ctype.I64
          [
            Return
              (Some
                 (Load
                    ( Ctype.I32,
                      Gep (Ctype.Struct "outer", v "p", [ fld "b"; fld "y" ])
                    )));
          ];
      ]
  in
  let f = find_func r "f" in
  match f.Resolve.body with
  | [
   Resolve.Return
     (Some
        (Resolve.Load
           {
             cls = Resolve.Cls_int;
             bytes = 4;
             addr = Resolve.Gep { steps = [ Resolve.Rs_field { off; fsize } ]; _ };
           }));
  ] ->
    let off_b, _ = Ctype.field_offset tenv "outer" "b" in
    let off_y, _ = Ctype.field_offset tenv "inner" "y" in
    Alcotest.(check int) "folded offset" (off_b + off_y) off;
    Alcotest.(check int) "innermost field size" 4 fsize
  | _ -> Alcotest.fail "field chain did not fold to a single step"

let test_gep_index_stride () =
  let r =
    resolve_funcs
      [
        func "f" [ ("p", Ctype.Ptr (Ctype.Struct "inner")); ("k", Ctype.I64) ]
          Ctype.I64
          [
            Return
              (Some
                 (Load
                    ( Ctype.I64,
                      Gep
                        ( Ctype.Struct "inner",
                          v "p",
                          [ at (v "k"); fld "x" ] ) )));
          ];
      ]
  in
  let f = find_func r "f" in
  match f.Resolve.body with
  | [
   Resolve.Return
     (Some
        (Resolve.Load
           {
             addr =
               Resolve.Gep
                 {
                   steps =
                     [
                       Resolve.Rs_index { esize; _ }; Resolve.Rs_field { off = 0; _ };
                     ];
                   _;
                 };
             _;
           }));
  ] ->
    Alcotest.(check int) "element stride = sizeof inner"
      (Ctype.sizeof tenv (Ctype.Struct "inner"))
      esize
  | _ -> Alcotest.fail "unexpected gep lowering"

let test_purity () =
  (* resolving twice yields structurally identical programs: the pass
     shares no mutable state across runs *)
  let p =
    program ~tenv ~globals:[]
      [
        func "main" [] Ctype.I64
          [
            Let ("s", Ctype.I64, i 0);
            While (v "s" <: i 4, [ Assign ("s", v "s" +: i 1) ]);
            Return (Some (v "s"));
          ];
      ]
  in
  Alcotest.(check bool) "deterministic" true (Resolve.run p = Resolve.run p)

(* every site id carried by the resolved program, in walk order *)
let collect_sites (r : Resolve.program) =
  let sites = ref [] in
  let add s = sites := s :: !sites in
  let rec expr (e : Resolve.expr) =
    match e with
    | Resolve.Gep { base; steps; site; _ } ->
      add site;
      expr base;
      List.iter
        (function Resolve.Rs_index { idx; _ } -> expr idx | _ -> ())
        steps
    | Resolve.Ifp_promote { e; site } ->
      add site;
      expr e
    | Resolve.Binop (_, a, b) ->
      expr a;
      expr b
    | Resolve.Unop (_, a) -> expr a
    | Resolve.Load { addr; _ } -> expr addr
    | Resolve.Call { args; _ } -> List.iter expr args
    | Resolve.Malloc { count; _ } -> expr count
    | Resolve.Cast { e; _ } -> expr e
    | Resolve.Int _ | Resolve.Float _ | Resolve.Var _ | Resolve.Addr_local _
    | Resolve.Addr_global _ | Resolve.Load_global _ | Resolve.Bad _ ->
      ()
  and stmt (s : Resolve.stmt) =
    match s with
    | Resolve.Let { e; _ } | Resolve.Assign { e; _ } -> expr e
    | Resolve.Store { addr; v; _ } ->
      expr addr;
      expr v
    | Resolve.Store_global { e; _ } -> expr e
    | Resolve.If (c, t, f) ->
      expr c;
      List.iter stmt t;
      List.iter stmt f
    | Resolve.While (c, b) ->
      expr c;
      List.iter stmt b
    | Resolve.Return (Some e) | Resolve.Expr e | Resolve.Free e -> expr e
    | Resolve.Ifp_register_local { site; _ } -> add site
    | Resolve.Bad_store_global { e; _ } -> expr e
    | Resolve.Return None | Resolve.Break | Resolve.Continue
    | Resolve.Decl_local _ | Resolve.Ifp_deregister_local _ ->
      ()
  in
  Array.iter (fun f -> List.iter stmt f.Resolve.body) r.Resolve.funcs;
  List.rev !sites

let test_site_stability () =
  (* an instrumented real workload exercises gep, promote and
     register-local sites; ids must be dense, unique, and identical
     across re-resolution — the closure engine keys per-site inline
     caches on them, and plan digests over resolved programs depend on
     them *)
  let wl =
    match Ifp_workloads.Registry.find "treeadd" with
    | Some wl -> wl
    | None -> Alcotest.fail "treeadd workload missing"
  in
  let prog, _ = Instrument.run (Lazy.force wl.Ifp_workloads.Workload.prog) in
  let r1 = Resolve.run prog and r2 = Resolve.run prog in
  Alcotest.(check bool) "re-resolution is structurally identical" true (r1 = r2);
  let sites = collect_sites r1 in
  Alcotest.(check bool) "program has sites" true (List.length sites > 0);
  Alcotest.(check int) "n_sites counts every site" r1.Resolve.n_sites
    (List.length sites);
  let sorted = List.sort_uniq compare sites in
  Alcotest.(check (list int)) "ids dense and unique in [0, n_sites)"
    (List.init r1.Resolve.n_sites (fun i -> i))
    sorted;
  (* same program text resolved through a fresh instrumentation gets the
     same ids: nothing in the pipeline leaks state across runs *)
  let prog', _ = Instrument.run (Lazy.force wl.Ifp_workloads.Workload.prog) in
  let r3 = Resolve.run prog' in
  Alcotest.(check (list int)) "stable across fresh instrumentation"
    sites (collect_sites r3)

let tests =
  [
    Alcotest.test_case "variable interning" `Quick test_var_interning;
    Alcotest.test_case "call targets" `Quick test_call_targets;
    Alcotest.test_case "gep field folding" `Quick test_gep_field_folding;
    Alcotest.test_case "gep index stride" `Quick test_gep_index_stride;
    Alcotest.test_case "purity" `Quick test_purity;
    Alcotest.test_case "site-id stability" `Quick test_site_stability;
  ]
