(* Tests for the MAC, the three object-metadata schemes and the promote
   engine. *)

open Core

let mk_ctx () =
  let mem = Memory.create () in
  Memory.map mem ~base:0x1000L ~size:(1 lsl 20);
  Memory.map mem ~base:0x200000L ~size:(1 lsl 16) (* layout region *);
  Memory.map mem ~base:0x300000L ~size:(4096 * 16) (* global table *);
  let meta =
    Meta.create ~memory:mem ~mac_key:0x1234_5678L
      ~layout_region:(0x200000L, 1 lsl 16)
      ~global_table:(0x300000L, 256) ()
  in
  (mem, meta)

let tenv_s =
  let t = Ctype.empty_tenv in
  let t =
    Ctype.declare t
      {
        Ctype.sname = "NestedTy";
        fields =
          [ { fname = "v3"; fty = Ctype.I32 }; { fname = "v4"; fty = Ctype.I32 } ];
      }
  in
  Ctype.declare t
    {
      Ctype.sname = "S";
      fields =
        [
          { fname = "v1"; fty = Ctype.I32 };
          { fname = "array"; fty = Ctype.Array (Ctype.Struct "NestedTy", 2) };
          { fname = "v5"; fty = Ctype.I32 };
        ];
    }

(* ---- MAC ---- *)

let test_mac () =
  let key = 0xABCDL in
  let m = Mac.compute ~key [ 1L; 2L; 3L ] in
  Alcotest.(check bool) "48-bit" true (Int64.compare m (Bits.mask 48) <= 0);
  Alcotest.(check bool) "verifies" true (Mac.verify ~key [ 1L; 2L; 3L ] ~mac:m);
  Alcotest.(check bool) "field change detected" false
    (Mac.verify ~key [ 1L; 2L; 4L ] ~mac:m);
  Alcotest.(check bool) "order sensitive" false
    (Mac.verify ~key [ 2L; 1L; 3L ] ~mac:m);
  Alcotest.(check bool) "key sensitive" false
    (Mac.verify ~key:0x9999L [ 1L; 2L; 3L ] ~mac:m)

(* ---- layout interning ---- *)

let test_intern_layout () =
  let _, meta = mk_ctx () in
  let p1 = Meta.intern_layout meta tenv_s (Ctype.Struct "S") in
  let p2 = Meta.intern_layout meta tenv_s (Ctype.Struct "S") in
  Alcotest.(check int64) "shared per type" p1 p2;
  Alcotest.(check int) "count header" 6 (Meta.layout_count meta p1);
  let e3 = Meta.read_element meta p1 3 in
  Alcotest.(check int) "element 3 parent" 2 e3.Layout.parent;
  (* scalar types get no table *)
  Alcotest.(check int64) "scalar no table" 0L
    (Meta.intern_layout meta tenv_s Ctype.I64)

(* ---- local-offset scheme ---- *)

let test_local_offset_roundtrip () =
  let _, meta = mk_ctx () in
  let lt = Meta.intern_layout meta tenv_s (Ctype.Struct "S") in
  let p = Meta.Local_offset.register meta ~base:0x2000L ~size:24 ~layout_ptr:lt in
  Alcotest.(check bool) "scheme" true (Tag.scheme p = Tag.Local_offset);
  (match Meta.Local_offset.lookup meta p with
  | Ok om, fetches ->
    Alcotest.(check int64) "base" 0x2000L om.Meta.obj_base;
    Alcotest.(check int) "size" 24 om.obj_size;
    Alcotest.(check int64) "layout" lt om.layout_ptr;
    Alcotest.(check int) "two fetches" 2 (List.length fetches)
  | Error e, _ -> Alcotest.fail e);
  (* lookup from an interior pointer after ifpadd *)
  let q = Insn.ifpadd p ~delta:20L ~bounds:(Bounds.of_base_size 0x2000L 24) in
  match Meta.Local_offset.lookup meta q with
  | Ok om, _ -> Alcotest.(check int64) "interior base" 0x2000L om.Meta.obj_base
  | Error e, _ -> Alcotest.fail e

let test_local_offset_tamper_detected () =
  let mem, meta = mk_ctx () in
  let p = Meta.Local_offset.register meta ~base:0x2000L ~size:24 ~layout_ptr:0L in
  (* corrupt the size field (metadata at 0x2020: 24 -> align 32) *)
  let meta_addr = Tag.metadata_addr_local_offset p in
  Memory.write_u16 mem meta_addr 900;
  match Meta.Local_offset.lookup meta p with
  | Error _, _ -> ()
  | Ok _, _ -> Alcotest.fail "tampered metadata accepted"

let test_local_offset_deregister () =
  let _, meta = mk_ctx () in
  let p = Meta.Local_offset.register meta ~base:0x2000L ~size:100 ~layout_ptr:0L in
  Meta.Local_offset.deregister meta p;
  match Meta.Local_offset.lookup meta p with
  | Error _, _ -> ()
  | Ok _, _ -> Alcotest.fail "deregistered metadata still valid"

let test_local_offset_limits () =
  Alcotest.(check bool) "1008 fits" true (Meta.Local_offset.fits ~size:1008);
  Alcotest.(check bool) "1009 does not" false (Meta.Local_offset.fits ~size:1009);
  Alcotest.(check bool) "0 does not" false (Meta.Local_offset.fits ~size:0);
  Alcotest.(check int) "footprint 24" (32 + 16) (Meta.Local_offset.footprint ~size:24)

(* ---- subheap scheme ---- *)

let test_subheap_roundtrip () =
  let _, meta = mk_ctx () in
  Meta.Subheap.set_creg meta 2
    (Some { Meta.Subheap.block_size_log2 = 12; metadata_offset = 0L });
  (* block at 0x3000 (4 KiB aligned), slots of 32 bytes from offset 32 *)
  Meta.Subheap.write_block_metadata meta ~creg:2 ~block_base:0x3000L
    ~slot_start:32 ~slot_end:4064 ~slot_size:32 ~obj_size:24 ~layout_ptr:0L;
  (* pointer into slot 3 *)
  let addr = Int64.add 0x3000L (Int64.of_int (32 + (3 * 32) + 8)) in
  let p = Meta.Subheap.tag_pointer ~creg:2 ~addr in
  (match Meta.Subheap.lookup meta p with
  | Ok om, fetches, _div ->
    Alcotest.(check int64) "slot base" (Int64.add 0x3000L 128L) om.Meta.obj_base;
    Alcotest.(check int) "obj size" 24 om.obj_size;
    Alcotest.(check int) "four fetches" 4 (List.length fetches)
  | Error e, _, _ -> Alcotest.fail e);
  (* pointer into the metadata area itself is rejected *)
  let bad = Meta.Subheap.tag_pointer ~creg:2 ~addr:(Int64.add 0x3000L 8L) in
  match Meta.Subheap.lookup meta bad with
  | Error _, _, _ -> ()
  | Ok _, _, _ -> Alcotest.fail "metadata-area pointer accepted"

let test_subheap_unconfigured_creg () =
  let _, meta = mk_ctx () in
  let p = Meta.Subheap.tag_pointer ~creg:9 ~addr:0x5000L in
  match Meta.Subheap.lookup meta p with
  | Error _, _, _ -> ()
  | Ok _, _, _ -> Alcotest.fail "unconfigured creg accepted"

let test_subheap_tamper () =
  let mem, meta = mk_ctx () in
  Meta.Subheap.set_creg meta 0
    (Some { Meta.Subheap.block_size_log2 = 12; metadata_offset = 0L });
  Meta.Subheap.write_block_metadata meta ~creg:0 ~block_base:0x4000L
    ~slot_start:32 ~slot_end:4064 ~slot_size:64 ~obj_size:48 ~layout_ptr:0L;
  Memory.write_u32 mem (Int64.add 0x4000L 12L) 64L (* obj_size 48->64 *);
  let p = Meta.Subheap.tag_pointer ~creg:0 ~addr:(Int64.add 0x4000L 64L) in
  match Meta.Subheap.lookup meta p with
  | Error e, _, _ ->
    Alcotest.(check string) "mac mismatch" "MAC mismatch" e
  | Ok _, _, _ -> Alcotest.fail "tampered block metadata accepted"

(* ---- global-table scheme ---- *)

let test_global_table_roundtrip () =
  let _, meta = mk_ctx () in
  match Meta.Global_table.register meta ~base:0x6000L ~size:4096 ~layout_ptr:0L with
  | None -> Alcotest.fail "table full"
  | Some p -> (
    Alcotest.(check bool) "scheme" true (Tag.scheme p = Tag.Global_table);
    (match Meta.Global_table.lookup meta p with
    | Ok om, _ ->
      Alcotest.(check int64) "base" 0x6000L om.Meta.obj_base;
      Alcotest.(check int) "size" 4096 om.obj_size
    | Error e, _ -> Alcotest.fail e);
    Meta.Global_table.deregister meta p;
    match Meta.Global_table.lookup meta p with
    | Error _, _ -> ()
    | Ok _, _ -> Alcotest.fail "freed row still valid")

let test_global_table_exhaustion () =
  let _, meta = mk_ctx () in
  (* 256 entries, row 0 reserved: 255 registrations possible *)
  let rec fill n =
    match
      Meta.Global_table.register meta ~base:(Int64.of_int (0x10000 + (n * 64)))
        ~size:64 ~layout_ptr:0L
    with
    | Some _ -> fill (n + 1)
    | None -> n
  in
  Alcotest.(check int) "255 rows" 255 (fill 0);
  Alcotest.(check int) "rows in use" 255 (Meta.Global_table.rows_in_use meta)

(* ---- promote ---- *)

let test_promote_bypasses () =
  let _, meta = mk_ctx () in
  let null = Tag.make_legacy 0L in
  let r = Promote.run meta null in
  Alcotest.(check bool) "null bypass" true (r.Promote.outcome = Promote.Bypass_null);
  let legacy = Tag.make_legacy 0x1234L in
  let r = Promote.run meta legacy in
  Alcotest.(check bool) "legacy bypass" true
    (r.Promote.outcome = Promote.Bypass_legacy);
  Alcotest.(check bool) "no bounds" true (r.Promote.bounds = Bounds.no_bounds);
  let poisoned = Tag.with_poison legacy Tag.Invalid in
  let r = Promote.run meta poisoned in
  Alcotest.(check bool) "poisoned bypass" true
    (r.Promote.outcome = Promote.Bypass_poisoned);
  Alcotest.(check bool) "none accessed metadata" true
    (not (Promote.accessed_metadata r))

let test_promote_local_offset_narrowing () =
  let _, meta = mk_ctx () in
  let lt = Meta.intern_layout meta tenv_s (Ctype.Struct "S") in
  let p = Meta.Local_offset.register meta ~base:0x2000L ~size:24 ~layout_ptr:lt in
  (* derive a pointer to S.array[1].v4: offset 4+8+4 = 16, index 4;
     ifpadd keeps the granule offset pointing at the metadata *)
  let q = Insn.ifpadd p ~delta:16L ~bounds:Bounds.no_bounds in
  let q = Insn.ifpidx q 4 in
  let r = Promote.run meta q in
  (match r.Promote.outcome with
  | Promote.Retrieved Promote.Narrowed -> ()
  | _ -> Alcotest.fail "expected narrowing");
  Alcotest.(check bool) "narrowed to v4" true
    (Bounds.equal r.Promote.bounds
       (Bounds.make ~lo:(Int64.add 0x2000L 16L) ~hi:(Int64.add 0x2000L 20L)));
  Alcotest.(check bool) "walker fetched elements" true (r.Promote.walk_elems >= 2);
  Alcotest.(check int) "mac checked" 1 r.Promote.mac_checks

let test_promote_no_layout_falls_back () =
  let _, meta = mk_ctx () in
  let p = Meta.Local_offset.register meta ~base:0x2100L ~size:24 ~layout_ptr:0L in
  let q = Insn.ifpidx (Insn.ifpadd p ~delta:8L ~bounds:Bounds.no_bounds) 2 in
  let r = Promote.run meta q in
  (match r.Promote.outcome with
  | Promote.Retrieved (Promote.Narrow_failed _) -> ()
  | _ -> Alcotest.fail "expected narrow failure");
  Alcotest.(check bool) "object bounds" true
    (Bounds.equal r.Promote.bounds (Bounds.make ~lo:0x2100L ~hi:(Int64.add 0x2100L 24L)))

let test_promote_invalid_metadata_poisons () =
  let _, meta = mk_ctx () in
  (* a fabricated local-offset pointer with no metadata behind it *)
  let p = Tag.make_local_offset ~addr:0x7000L ~granule_off:5 ~subobj:0 in
  let r = Promote.run meta p in
  (match r.Promote.outcome with
  | Promote.Metadata_invalid _ -> ()
  | _ -> Alcotest.fail "expected invalid metadata");
  Alcotest.(check bool) "output poisoned" true (Tag.poison r.Promote.ptr = Tag.Invalid)

let test_promote_oob_pointer_recovers () =
  let _, meta = mk_ctx () in
  let p = Meta.Local_offset.register meta ~base:0x2200L ~size:24 ~layout_ptr:0L in
  (* one-past-the-end pointer: ifpadd marks it recoverable *)
  let q =
    Insn.ifpadd p ~delta:24L ~bounds:(Bounds.of_base_size 0x2200L 24)
  in
  let r = Promote.run meta q in
  Alcotest.(check bool) "metadata still found" true (Promote.accessed_metadata r);
  Alcotest.(check bool) "stays oob (not valid)" true
    (Tag.poison r.Promote.ptr = Tag.Oob)

(* property: promote on a pointer anywhere inside a registered object
   returns bounds that contain the address *)
let prop_promote_contains_addr =
  QCheck.Test.make ~count:200 ~name:"promote bounds contain in-object address"
    QCheck.(pair (int_bound 23) (int_bound 5))
    (fun (off, idx) ->
      let _, meta = mk_ctx () in
      let lt = Meta.intern_layout meta tenv_s (Ctype.Struct "S") in
      let p = Meta.Local_offset.register meta ~base:0x2000L ~size:24 ~layout_ptr:lt in
      let q =
        Insn.ifpidx
          (Insn.ifpadd p ~delta:(Int64.of_int off) ~bounds:Bounds.no_bounds)
          idx
      in
      let r = Promote.run meta q in
      match r.Promote.bounds with
      | Bounds.No_bounds -> false
      | Bounds.Bounds { lo; hi } ->
        (* bounds always stay within the object *)
        Int64.compare 0x2000L lo <= 0
        && Int64.compare hi (Int64.add 0x2000L 24L) <= 0)

let tests =
  [
    Alcotest.test_case "mac" `Quick test_mac;
    Alcotest.test_case "layout interning" `Quick test_intern_layout;
    Alcotest.test_case "local-offset roundtrip" `Quick test_local_offset_roundtrip;
    Alcotest.test_case "local-offset tamper" `Quick test_local_offset_tamper_detected;
    Alcotest.test_case "local-offset deregister" `Quick test_local_offset_deregister;
    Alcotest.test_case "local-offset limits" `Quick test_local_offset_limits;
    Alcotest.test_case "subheap roundtrip" `Quick test_subheap_roundtrip;
    Alcotest.test_case "subheap unconfigured creg" `Quick
      test_subheap_unconfigured_creg;
    Alcotest.test_case "subheap tamper" `Quick test_subheap_tamper;
    Alcotest.test_case "global-table roundtrip" `Quick test_global_table_roundtrip;
    Alcotest.test_case "global-table exhaustion" `Quick test_global_table_exhaustion;
    Alcotest.test_case "promote bypasses" `Quick test_promote_bypasses;
    Alcotest.test_case "promote narrows (local offset)" `Quick
      test_promote_local_offset_narrowing;
    Alcotest.test_case "promote without layout" `Quick
      test_promote_no_layout_falls_back;
    Alcotest.test_case "promote invalid metadata" `Quick
      test_promote_invalid_metadata_poisons;
    Alcotest.test_case "promote oob recoverable" `Quick
      test_promote_oob_pointer_recovers;
    QCheck_alcotest.to_alcotest prop_promote_contains_addr;
  ]
