(* Property-based differential testing: generate random well-typed,
   memory-safe MiniC programs and check that every VM configuration
   (baseline, subheap, wrapped, mixed, both no-promote controls, the
   no-narrowing ablation, and wrapper inference) computes the same
   checksum. This is the strongest end-to-end invariant of the system:
   instrumentation must never change the semantics of correct programs
   (the paper's "passing all non-vulnerable cases" at scale). *)

open Core
open Ir

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "box";
      fields =
        [
          { fname = "value"; fty = Ctype.I64 };
          { fname = "arr"; fty = Ctype.Array (Ctype.I64, 4) };
          { fname = "next"; fty = Ctype.Ptr (Ctype.Struct "box") };
        ];
    }

let box = Ctype.Struct "box"
let bp = Ctype.Ptr box
let ip = Ctype.Ptr Ctype.I64

(* indexes are masked to the power-of-two array sizes, so every generated
   access is in bounds by construction *)
let mask n e = Binop (BAnd, e, i (n - 1))

(* scalar int expressions over the fixed environment *)
let rec gen_expr depth st =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> i n) (int_range (-20) 20);
        oneofl [ v "s0"; v "s1"; v "s2"; v "k" ];
        return (Load (Ctype.I64, Gep (box, v "b", [ fld "value" ])));
        map
          (fun k -> Load (Ctype.I64, Gep (Ctype.I64, v "a", [ at (i (k land 7)) ])))
          (int_bound 7);
      ]
  in
  if depth = 0 then leaf st
  else
    let sub = gen_expr (depth - 1) in
    oneof
      [
        leaf;
        map2 (fun a b -> a +: b) sub sub;
        map2 (fun a b -> a -: b) sub sub;
        map2 (fun a b -> Binop (BXor, a, b)) sub sub;
        map (fun a -> a *: i 3) sub;
        (* dynamic but masked (always safe) indexed loads *)
        map
          (fun a -> Load (Ctype.I64, Gep (Ctype.I64, v "a", [ at (mask 8 a) ])))
          sub;
        map
          (fun a ->
            Load (Ctype.I64, Gep (box, v "b", [ fld "arr"; at (mask 4 a) ])))
          sub;
        map2 (fun a b -> Call ("mix", [ a; b ])) sub sub;
      ]
      st

let gen_cond st =
  let open QCheck.Gen in
  (let* a = gen_expr 1 in
   let* b = gen_expr 1 in
   oneofl [ a <: b; a ==: b; a <>: b ])
    st

let rec gen_stmt depth st =
  let open QCheck.Gen in
  let assign =
    let* var = oneofl [ "s0"; "s1"; "s2" ] in
    let* e = gen_expr 2 in
    return (Assign (var, e))
  in
  let store_a =
    let* idx = gen_expr 1 in
    let* e = gen_expr 2 in
    return (Store (Ctype.I64, Gep (Ctype.I64, v "a", [ at (mask 8 idx) ]), e))
  in
  let store_box =
    let* e = gen_expr 2 in
    oneofl
      [
        Store (Ctype.I64, Gep (box, v "b", [ fld "value" ]), e);
        Store (Ctype.I64, Gep (box, v "b", [ fld "arr"; at (mask 4 e) ]), i 7);
      ]
  in
  let simple = oneof [ assign; store_a; store_box ] in
  if depth = 0 then simple st
  else
    let block n = list_size (int_range 1 n) (gen_stmt (depth - 1)) in
    oneof
      [
        simple;
        (* bounded loop over k *)
        (let* body = block 3 in
         let* bound = int_range 1 6 in
         return
           (While
              ( v "k" <: i bound,
                body @ [ Assign ("k", v "k" +: i 1) ] )));
        (let* c = gen_cond in
         let* t = block 3 in
         let* e = block 2 in
         return (If (c, t, e)));
      ]
      st

(* reset the loop counter before each While so nested/sequential loops
   terminate; done by construction: prefix every generated stmt list *)
let gen_body st =
  let open QCheck.Gen in
  (let* stmts = list_size (int_range 3 10) (gen_stmt 2) in
   (* interleave counter resets before every statement (cheap and safe) *)
   return (List.concat_map (fun s -> [ Assign ("k", i 0); s ]) stmts))
    st

let gen_program st =
  let body = gen_body st in
  let mix =
    func "mix" [ ("x", Ctype.I64); ("y", Ctype.I64) ] Ctype.I64
      [ Return (Some (Binop (BXor, v "x" +: v "y", Binop (Shr, v "x", i 3)))) ]
  in
  let checksum =
    (* fold everything observable into the return value *)
    [
      Let ("acc", Ctype.I64, v "s0" +: v "s1" +: v "s2");
      Let ("j", Ctype.I64, i 0);
      While
        ( v "j" <: i 8,
          [
            Assign ("acc",
                    Binop (BXor, v "acc",
                           Load (Ctype.I64, Gep (Ctype.I64, v "a", [ at (v "j") ]))
                           +: v "j"));
            Assign ("j", v "j" +: i 1);
          ] );
      Let ("j2", Ctype.I64, i 0);
      While
        ( v "j2" <: i 4,
          [
            Assign ("acc",
                    Binop (BXor, v "acc",
                           Load (Ctype.I64,
                                 Gep (box, v "b", [ fld "arr"; at (v "j2") ]))));
            Assign ("j2", v "j2" +: i 1);
          ] );
      Return (Some (v "acc" +: Load (Ctype.I64, Gep (box, v "b", [ fld "value" ]))));
    ]
  in
  let prelude =
    [
      Let ("s0", Ctype.I64, i 1);
      Let ("s1", Ctype.I64, i 2);
      Let ("s2", Ctype.I64, i 3);
      Let ("k", Ctype.I64, i 0);
      Let ("a", ip, Malloc (Ctype.I64, i 8));
      Let ("b", bp, Malloc (box, i 1));
      Let ("z", Ctype.I64, i 0);
      While
        ( v "z" <: i 8,
          [
            Store (Ctype.I64, Gep (Ctype.I64, v "a", [ at (v "z") ]), v "z");
            Assign ("z", v "z" +: i 1);
          ] );
      Store (Ctype.I64, Gep (box, v "b", [ fld "value" ]), i 5);
      Let ("z2", Ctype.I64, i 0);
      While
        ( v "z2" <: i 4,
          [
            Store (Ctype.I64, Gep (box, v "b", [ fld "arr"; at (v "z2") ]), v "z2");
            Assign ("z2", v "z2" +: i 1);
          ] );
      Store (bp, Gep (box, v "b", [ fld "next" ]), null box);
    ]
  in
  program ~tenv ~globals:[]
    [ mix; func "main" [] Ctype.I64 (prelude @ body @ checksum) ]

let configs =
  [
    ("baseline", Vm.baseline);
    ("subheap", Vm.ifp_subheap);
    ("wrapped", Vm.ifp_wrapped);
    ("mixed", Vm.ifp_mixed);
    ("subheap-np", Vm.no_promote Vm.Alloc_subheap);
    ("no-narrowing", Vm.no_narrowing Vm.Alloc_subheap);
    ("infer-types", { Vm.ifp_subheap with infer_alloc_types = true });
  ]

let arbitrary_program =
  QCheck.make gen_program ~print:(fun p -> Ir_pp.program_to_string p)

let prop_all_configs_agree =
  QCheck.Test.make ~count:60 ~name:"random safe programs: all configs agree"
    arbitrary_program (fun prog ->
      match Typecheck.check_program prog with
      | exception Typecheck.Type_error e -> QCheck.Test.fail_report e
      | () -> (
        let run cfg = Vm.run ~config:cfg prog in
        match (run Vm.baseline).Vm.outcome with
        | Vm.Trapped t ->
          QCheck.Test.fail_report ("baseline trapped: " ^ Trap.to_string t)
        | Vm.Aborted m -> QCheck.Test.fail_report ("baseline aborted: " ^ Vm.abort_reason_string m)
        | Vm.Finished expected ->
          List.for_all
            (fun (name, cfg) ->
              match (run cfg).Vm.outcome with
              | Vm.Finished got when Int64.equal got expected -> true
              | Vm.Finished got ->
                QCheck.Test.fail_report
                  (Printf.sprintf "%s returned %Ld, expected %Ld" name got
                     expected)
              | Vm.Trapped t ->
                QCheck.Test.fail_report
                  (name ^ " trapped (false positive): " ^ Trap.to_string t)
              | Vm.Aborted m -> QCheck.Test.fail_report (name ^ " aborted: " ^ Vm.abort_reason_string m))
            configs))

let prop_generated_programs_typecheck =
  QCheck.Test.make ~count:100 ~name:"generated programs typecheck"
    arbitrary_program (fun prog ->
      match Typecheck.check_program prog with
      | () -> true
      | exception Typecheck.Type_error _ -> false)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_generated_programs_typecheck;
    QCheck_alcotest.to_alcotest prop_all_configs_agree;
  ]
