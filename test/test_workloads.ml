(* Every workload must typecheck, finish under every configuration, and
   produce the same checksum in all of them (instrumentation must never
   change program semantics). Structural expectations from the paper's
   Table 4 are also checked per workload. *)

open Core
module W = Ifp_workloads.Workload
module Registry = Ifp_workloads.Registry

let quick_configs =
  [ ("baseline", Vm.baseline); ("subheap", Vm.ifp_subheap);
    ("wrapped", Vm.ifp_wrapped); ("subheap-np", Vm.no_promote Vm.Alloc_subheap);
    ("wrapped-np", Vm.no_promote Vm.Alloc_wrapped) ]

let ret_of name (r : Vm.result) =
  match r.Vm.outcome with
  | Vm.Finished x -> x
  | Vm.Trapped t -> Alcotest.fail (name ^ " trapped: " ^ Trap.to_string t)
  | Vm.Aborted m -> Alcotest.fail (name ^ " aborted: " ^ Vm.abort_reason_string m)

let results : (string, (string * Vm.result) list) Hashtbl.t = Hashtbl.create 32

let run_all (wl : W.t) =
  match Hashtbl.find_opt results wl.name with
  | Some r -> r
  | None ->
    let prog = Lazy.force wl.prog in
    let r = List.map (fun (n, cfg) -> (n, Vm.run ~config:cfg prog)) quick_configs in
    Hashtbl.replace results wl.name r;
    r

let test_checksums (wl : W.t) () =
  let rs = run_all wl in
  let base = ret_of wl.name (List.assoc "baseline" rs) in
  List.iter
    (fun (cfg_name, r) ->
      Alcotest.(check int64)
        (wl.name ^ "/" ^ cfg_name ^ " checksum")
        base
        (ret_of (wl.name ^ "/" ^ cfg_name) r))
    rs

let test_instrumented_runs_do_work (wl : W.t) () =
  let rs = run_all wl in
  let sub = List.assoc "subheap" rs in
  Alcotest.(check bool) (wl.name ^ " executes instructions") true
    (Counters.total_instrs sub.Vm.counters > 1000);
  Alcotest.(check bool) (wl.name ^ " allocates or registers objects") true
    (sub.Vm.counters.heap_objs + sub.Vm.counters.local_objs
     + sub.Vm.counters.global_objs
    > 0)

(* paper-profile expectations for selected benchmarks *)

let test_treeadd_profile () =
  let rs = run_all (Option.get (Registry.find "treeadd")) in
  let c = (List.assoc "subheap" rs).Vm.counters in
  (* half of treeadd's promotes see NULL children (Table 4: 50%) *)
  let total = Counters.promotes_total c in
  let null_share = float_of_int c.promotes_null /. float_of_int total in
  Alcotest.(check bool) "about half null" true
    (null_share > 0.4 && null_share < 0.6);
  Alcotest.(check bool) "heap objects = tree nodes" true (c.heap_objs = 32767)

let test_coremark_narrowing_fails () =
  (* CoreMark allocates through a type-erased arena: subobject narrowing
     must fail back to object bounds (paper §5.2.1) *)
  let rs = run_all (Option.get (Registry.find "coremark")) in
  let c = (List.assoc "subheap" rs).Vm.counters in
  Alcotest.(check int) "no successful narrowing" 0 c.narrows_ok

let test_sjeng_uses_global_table () =
  let rs = run_all (Option.get (Registry.find "sjeng")) in
  let c = (List.assoc "subheap" rs).Vm.counters in
  Alcotest.(check bool) "global object registered" true (c.global_objs >= 1);
  Alcotest.(check bool) "local move arrays registered" true (c.local_objs > 100)

let test_anagram_sees_legacy_pointers () =
  let rs = run_all (Option.get (Registry.find "anagram")) in
  let c = (List.assoc "subheap" rs).Vm.counters in
  Alcotest.(check bool) "legacy-pointer promotes occur" true
    (c.promotes_legacy > 0)

let test_subheap_beats_wrapped_on_alloc_heavy () =
  (* the paper's headline: allocation-heavy tree benchmarks run faster
     under the subheap allocator than under the wrapped one *)
  List.iter
    (fun name ->
      let rs = run_all (Option.get (Registry.find name)) in
      let cyc cfg = (List.assoc cfg rs).Vm.counters.Counters.cycles in
      Alcotest.(check bool) (name ^ ": subheap < wrapped") true
        (cyc "subheap" < cyc "wrapped"))
    [ "treeadd"; "perimeter" ]

let test_subheap_memory_win_on_nodes () =
  List.iter
    (fun name ->
      let rs = run_all (Option.get (Registry.find name)) in
      let fp cfg = (List.assoc cfg rs).Vm.mem_footprint in
      Alcotest.(check bool) (name ^ ": subheap footprint < baseline") true
        (fp "subheap" < fp "baseline");
      Alcotest.(check bool) (name ^ ": wrapped footprint > baseline") true
        (fp "wrapped" > fp "baseline"))
    [ "treeadd"; "bisort"; "ft" ]

let test_no_promote_cheaper () =
  (* disabling metadata access must never be slower *)
  List.iter
    (fun (wl : W.t) ->
      let rs = run_all wl in
      let cyc cfg = (List.assoc cfg rs).Vm.counters.Counters.cycles in
      Alcotest.(check bool) (wl.name ^ ": np <= full") true
        (cyc "subheap-np" <= cyc "subheap"))
    Registry.all

let tests =
  List.concat_map
    (fun (wl : W.t) ->
      [
        Alcotest.test_case (wl.name ^ " checksums equal") `Slow (test_checksums wl);
        Alcotest.test_case (wl.name ^ " does work") `Slow
          (test_instrumented_runs_do_work wl);
      ])
    Registry.all
  @ [
      Alcotest.test_case "treeadd profile" `Slow test_treeadd_profile;
      Alcotest.test_case "coremark narrowing fails" `Slow
        test_coremark_narrowing_fails;
      Alcotest.test_case "sjeng global table" `Slow test_sjeng_uses_global_table;
      Alcotest.test_case "anagram legacy promotes" `Slow
        test_anagram_sees_legacy_pointers;
      Alcotest.test_case "subheap wins on alloc-heavy" `Slow
        test_subheap_beats_wrapped_on_alloc_heavy;
      Alcotest.test_case "subheap memory win" `Slow test_subheap_memory_win_on_nodes;
      Alcotest.test_case "no-promote cheaper" `Slow test_no_promote_cheaper;
    ]
