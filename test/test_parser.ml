(* Tests for the textual MiniC frontend: lexing, parsing, local type
   inference, and end-to-end runs of parsed programs under the VM. *)

open Core

let parse = Ifp_compiler.Parser.parse

let run ?(config = Vm.baseline) src = Vm.run ~config (parse src)

let ret ?config src =
  match (run ?config src).Vm.outcome with
  | Vm.Finished x -> x
  | Vm.Trapped t -> Alcotest.fail ("trapped: " ^ Trap.to_string t)
  | Vm.Aborted m -> Alcotest.fail ("aborted: " ^ Vm.abort_reason_string m)

let test_arith_and_control () =
  let src =
    {|
    i64 main() {
      let s: i64 = 0;
      let k: i64 = 0;
      while (k < 10) {
        if (k % 2 == 0) { s = s + k; } else { s = s - 1; }
        k = k + 1;
      }
      return s * 2 + (1 << 4) - 0x10;
    }
    |}
  in
  (* s = (0+2+4+6+8) - 5 = 15 *)
  Alcotest.(check int64) "value" 30L (ret src)

let test_structs_and_heap () =
  let src =
    {|
    struct node { i64 value; node* next; };

    i64 sum(node* p) {
      let acc: i64 = 0;
      while (p != null(node)) {
        acc = acc + p->value;
        p = p->next;
      }
      return acc;
    }

    i64 main() {
      let head: node* = null(node);
      let k: i64 = 0;
      while (k < 10) {
        let n: node* = malloc(node);
        n->value = k;
        n->next = head;
        head = n;
        k = k + 1;
      }
      return sum(head);
    }
    |}
  in
  Alcotest.(check int64) "list sum" 45L (ret src);
  Alcotest.(check int64) "list sum (ifp)" 45L (ret ~config:Vm.ifp_subheap src)

let test_stack_arrays_and_address_of () =
  let src =
    {|
    void fill(i64* p, i64 n) {
      let k: i64 = 0;
      while (k < n) { p[k] = k * k; k = k + 1; }
    }

    i64 main() {
      var buf: i64[8];
      fill(&buf[0], 8);
      return buf[7] + buf[2];
    }
    |}
  in
  Alcotest.(check int64) "49+4" 53L (ret src);
  Alcotest.(check int64) "same under ifp" 53L (ret ~config:Vm.ifp_wrapped src)

let test_globals () =
  let src =
    {|
    global i64 counter;
    global i64* gp;

    void bump() { counter = counter + 1; }

    i64 main() {
      bump(); bump(); bump();
      let a: i64* = malloc(i64, 4);
      a[2] = 40;
      gp = a;
      return gp[2] + counter;
    }
    |}
  in
  Alcotest.(check int64) "43" 43L (ret src);
  Alcotest.(check int64) "43 under ifp" 43L (ret ~config:Vm.ifp_subheap src)

let test_floats () =
  let src =
    {|
    i64 main() {
      let x: f64 = 1.5;
      let y: f64 = x * 4.0 + 1.0;
      if (y < 6.9) { return 0; }
      return cast(i64, y);
    }
    |}
  in
  Alcotest.(check int64) "7" 7L (ret src)

let test_struct_member_arrays () =
  let src =
    {|
    struct S { i8 vulnerable[12]; i8 sensitive[12]; };

    i64 main() {
      var boo: S;
      let p: S* = &boo;
      let k: i64 = 0;
      while (k < 12) { p->vulnerable[k] = k; k = k + 1; }
      p->sensitive[0] = 99;
      return cast(i64, p->vulnerable[5]) + cast(i64, p->sensitive[0]);
    }
    |}
  in
  Alcotest.(check int64) "104" 104L (ret src);
  Alcotest.(check int64) "104 under ifp" 104L (ret ~config:Vm.ifp_subheap src)

let test_parsed_overflow_detected () =
  (* the paper's Listing 1/2 written as source text: the intra-object
     overflow must trap under IFP and pass silently under baseline *)
  let src =
    {|
    struct S { i8 vulnerable[12]; i8 sensitive[12]; };
    global S* gv_ptr;

    void foo(i64 off) {
      let p: S* = gv_ptr;
      p->vulnerable[off] = 65;
    }

    i64 main() {
      var boo: S;
      gv_ptr = &boo;
      foo(12);
      return cast(i64, boo.sensitive[0]);
    }
    |}
  in
  (match (run src).Vm.outcome with
  | Vm.Finished x -> Alcotest.(check int64) "baseline silent corruption" 65L x
  | _ -> Alcotest.fail "baseline should finish");
  match (run ~config:Vm.ifp_wrapped src).Vm.outcome with
  | Vm.Trapped _ -> ()
  | _ -> Alcotest.fail "ifp should trap the intra-object overflow"

let test_legacy_functions () =
  let src =
    {|
    legacy i64* lib_pass(i64* p) { return p; }

    i64 main() {
      let a: i64* = malloc(i64, 4);
      let q: i64* = lib_pass(a);
      q[9] = 1;   // out of bounds, but unchecked: bounds cleared at boundary
      return 0;
    }
    |}
  in
  match (run ~config:Vm.ifp_subheap src).Vm.outcome with
  | Vm.Finished _ -> ()
  | _ -> Alcotest.fail "legacy-returned pointer should be unchecked"

let test_malloc_bytes_and_sizeof () =
  let src =
    {|
    struct pair { i64 a; i64 b; };

    i64 main() {
      let p: pair* = cast(pair*, malloc_bytes(sizeof(pair)));
      p->a = 20;
      p->b = 22;
      return p->a + p->b;
    }
    |}
  in
  Alcotest.(check int64) "42" 42L (ret src);
  Alcotest.(check int64) "42 ifp" 42L (ret ~config:Vm.ifp_subheap src)

let test_comments_and_hex () =
  let src =
    {|
    // line comment
    i64 main() {
      /* block
         comment */
      return 0xFF & 0x0F;
    }
    |}
  in
  Alcotest.(check int64) "15" 15L (ret src)

let test_parse_errors () =
  let bad srcs =
    List.iter
      (fun src ->
        match parse src with
        | exception Ifp_compiler.Parser.Parse_error _ -> ()
        | exception Ifp_compiler.Lexer.Lex_error _ -> ()
        | _ -> Alcotest.fail ("parsed invalid program: " ^ src))
      srcs
  in
  bad
    [
      "i64 main( { return 0; }";
      "i64 main() { return unknown_var; }";
      "i64 main() { let x: nosuchtype = 1; return x; }";
      "i64 main() { return 1 + ; }";
      "struct S { i64 }; i64 main() { return 0; }";
      "i64 main() { @ }";
    ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.equal (String.sub hay i nn) needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let test_pp_roundtrip () =
  (* parse -> pretty-print -> still contains the expected constructs *)
  let src =
    {|
    struct node { i64 value; node* next; };
    i64 main() {
      let n: node* = malloc(node);
      n->value = 1;
      n->next = null(node);
      let m: node* = n->next;    // pointer load: needs a promote
      if (m != null(node)) { return 1; }
      return n->value;
    }
    |}
  in
  let printed = Ir_pp.program_to_string (parse src) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains printed needle))
    [ "malloc"; "->value"; "struct node" ];
  (* the instrumented program shows the inserted IFP forms *)
  let instr, _ = Instrument.run (parse src) in
  Alcotest.(check bool) "instrumented shows promote" true
    (contains (Ir_pp.program_to_string instr) "IFP_Promote")

let tests =
  [
    Alcotest.test_case "arith + control" `Quick test_arith_and_control;
    Alcotest.test_case "structs + heap" `Quick test_structs_and_heap;
    Alcotest.test_case "stack arrays + &" `Quick test_stack_arrays_and_address_of;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "floats" `Quick test_floats;
    Alcotest.test_case "struct member arrays" `Quick test_struct_member_arrays;
    Alcotest.test_case "parsed overflow detected" `Quick
      test_parsed_overflow_detected;
    Alcotest.test_case "legacy functions" `Quick test_legacy_functions;
    Alcotest.test_case "malloc_bytes + sizeof" `Quick test_malloc_bytes_and_sizeof;
    Alcotest.test_case "comments + hex" `Quick test_comments_and_hex;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "pretty-printer" `Quick test_pp_roundtrip;
  ]
