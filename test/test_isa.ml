(* Tests for the pointer-tag codec, bounds, and the single-cycle IFP
   instructions. *)

open Core

let test_tag_fields () =
  let p = Tag.make_local_offset ~addr:0x1230L ~granule_off:7 ~subobj:3 in
  Alcotest.(check int64) "addr" 0x1230L (Tag.addr p);
  Alcotest.(check bool) "scheme" true (Tag.scheme p = Tag.Local_offset);
  Alcotest.(check int) "granule off" 7 (Tag.granule_offset p);
  Alcotest.(check (option int)) "subobj" (Some 3) (Tag.subobj_index p);
  Alcotest.(check bool) "valid poison" true (Tag.poison p = Tag.Valid)

let test_legacy_is_canonical () =
  let p = Tag.make_legacy 0xDEAD0000BEEFL in
  Alcotest.(check bool) "scheme legacy" true (Tag.scheme p = Tag.Legacy);
  Alcotest.(check int64) "tag all zero" 0L (Int64.shift_right_logical p 48)

let test_subheap_tag () =
  let p = Tag.make_subheap ~addr:0x8000L ~creg:11 ~subobj:200 in
  Alcotest.(check int) "creg" 11 (Tag.creg_index p);
  Alcotest.(check (option int)) "subobj 8 bits" (Some 200) (Tag.subobj_index p);
  Alcotest.(check bool) "scheme" true (Tag.scheme p = Tag.Subheap)

let test_global_tag () =
  let p = Tag.make_global_table ~addr:0x9000L ~index:4095 in
  Alcotest.(check int) "index" 4095 (Tag.table_index p);
  Alcotest.(check (option int)) "no subobj field" None (Tag.subobj_index p)

let test_poison_states () =
  let p = Tag.make_legacy 0x1000L in
  let p = Tag.with_poison p Tag.Oob in
  Alcotest.(check bool) "oob" true (Tag.poison p = Tag.Oob);
  let p = Tag.with_poison p Tag.Invalid in
  Alcotest.(check bool) "invalid" true (Tag.poison p = Tag.Invalid);
  let p = Tag.with_poison p Tag.Valid in
  Alcotest.(check bool) "valid again" true (Tag.poison p = Tag.Valid)

let test_metadata_addr () =
  (* object at 0x1000, size 96 -> metadata at 0x1060, granule offset 6 *)
  let p = Tag.make_local_offset ~addr:0x1000L ~granule_off:6 ~subobj:0 in
  Alcotest.(check int64) "meta addr" 0x1060L (Tag.metadata_addr_local_offset p);
  (* interior pointer at +0x28 (granule 2), offset 4 granules *)
  let q = Tag.make_local_offset ~addr:0x1028L ~granule_off:4 ~subobj:0 in
  Alcotest.(check int64) "interior meta addr" 0x1060L
    (Tag.metadata_addr_local_offset q)

let prop_tag_roundtrip =
  QCheck.Test.make ~count:500 ~name:"tag field writes are independent"
    QCheck.(triple int64 (int_bound 63) (int_bound 63))
    (fun (addr, go, so) ->
      (* addresses are 44-bit; bits 44..47 hold the temporal generation *)
      let a = Int64.logand addr Tag.addr_mask in
      let p = Tag.make_local_offset ~addr:a ~granule_off:go ~subobj:so in
      let g = go land (Tag.gen_states - 1) in
      let q = Tag.with_gen p g in
      Tag.granule_offset p = go
      && Tag.subobj_index p = Some so
      && Int64.equal (Tag.addr p) a
      && Tag.gen p = 0
      && Tag.gen q = g
      && Int64.equal (Tag.addr q) a
      && Tag.granule_offset q = go)

let test_bounds_contains () =
  let b = Bounds.make ~lo:0x100L ~hi:0x200L in
  Alcotest.(check bool) "inside" true (Bounds.contains b ~addr:0x100L ~size:8);
  Alcotest.(check bool) "fills exactly" true
    (Bounds.contains b ~addr:0x1F8L ~size:8);
  Alcotest.(check bool) "one byte out" false
    (Bounds.contains b ~addr:0x1F9L ~size:8);
  Alcotest.(check bool) "below" false (Bounds.contains b ~addr:0xFFL ~size:1);
  Alcotest.(check bool) "no bounds passes" true
    (Bounds.contains Bounds.no_bounds ~addr:0xFFFFFFL ~size:64)

let test_ifpadd_updates_granule_offset () =
  (* object base 0x1000, size 96, metadata at 0x1060 *)
  let p = Tag.make_local_offset ~addr:0x1000L ~granule_off:6 ~subobj:0 in
  let b = Bounds.make ~lo:0x1000L ~hi:0x1060L in
  let q = Insn.ifpadd p ~delta:32L ~bounds:b in
  Alcotest.(check int64) "moved" 0x1020L (Tag.addr q);
  Alcotest.(check int64) "metadata reachable" 0x1060L
    (Tag.metadata_addr_local_offset q);
  Alcotest.(check bool) "still valid" true (Tag.poison q = Tag.Valid);
  (* moving backwards also maintains it *)
  let r = Insn.ifpadd q ~delta:(-16L) ~bounds:b in
  Alcotest.(check int64) "metadata after move back" 0x1060L
    (Tag.metadata_addr_local_offset r)

let test_ifpadd_poison () =
  let p = Tag.make_local_offset ~addr:0x1000L ~granule_off:6 ~subobj:0 in
  let b = Bounds.make ~lo:0x1000L ~hi:0x1060L in
  let q = Insn.ifpadd p ~delta:0x60L ~bounds:b in
  Alcotest.(check bool) "one past end = recoverable" true (Tag.poison q = Tag.Oob);
  let r = Insn.ifpadd q ~delta:(-8L) ~bounds:b in
  Alcotest.(check bool) "back in = valid" true (Tag.poison r = Tag.Valid)

let test_ifpadd_unreachable_metadata () =
  let p = Tag.make_local_offset ~addr:0x1000L ~granule_off:6 ~subobj:0 in
  (* way past the representable granule offset *)
  let q = Insn.ifpadd p ~delta:4096L ~bounds:Bounds.no_bounds in
  Alcotest.(check bool) "invalid" true (Tag.poison q = Tag.Invalid)

let test_ifpidx_increments () =
  let p = Tag.make_local_offset ~addr:0x1000L ~granule_off:6 ~subobj:2 in
  let q = Insn.ifpidx p 3 in
  Alcotest.(check (option int)) "incremented" (Some 5) (Tag.subobj_index q);
  (* saturation at the 6-bit max *)
  let r = Insn.ifpidx p 100 in
  Alcotest.(check (option int)) "saturated" (Some 63) (Tag.subobj_index r);
  (* no-op on global-table pointers *)
  let g = Tag.make_global_table ~addr:0x1000L ~index:7 in
  Alcotest.(check int) "gt untouched" 7 (Tag.table_index (Insn.ifpidx g 3))

let test_ifpchk () =
  let p = Tag.make_legacy 0x100L in
  let b = Bounds.make ~lo:0x100L ~hi:0x140L in
  Insn.ifpchk p ~bounds:b ~size:8;
  Alcotest.check_raises "violation traps"
    (Trap.Trap (Trap.Bounds_violation { ptr = p; lo = 0x100L; hi = 0x140L; size = 0x80 }))
    (fun () -> Insn.ifpchk p ~bounds:b ~size:0x80)

let test_poison_check_on_deref () =
  Insn.load_store_poison_check (Tag.make_legacy 0x1000L);
  let bad = Tag.with_poison (Tag.make_legacy 0x1000L) Tag.Oob in
  Alcotest.check_raises "oob traps" (Trap.Trap (Trap.Poisoned_dereference bad))
    (fun () -> Insn.load_store_poison_check bad)

let test_ifpextract_demote () =
  let p = Tag.make_local_offset ~addr:0x10A0L ~granule_off:2 ~subobj:0 in
  let b = Bounds.make ~lo:0x1000L ~hi:0x1060L in
  let q = Insn.ifpextract p ~bounds:b in
  Alcotest.(check bool) "wildly out marked oob" true (Tag.poison q = Tag.Oob)

(* every trap constructor renders: to_string is total and injective over
   the constructors, and pp agrees with it *)
let test_trap_strings_total () =
  let traps =
    [
      Trap.Poisoned_dereference 0x1000L;
      Trap.Bounds_violation { ptr = 1L; lo = 0L; hi = 8L; size = 16 };
      Trap.Invalid_metadata { ptr = 2L; reason = "r" };
      Trap.Mac_mismatch { ptr = 3L };
      Trap.Memory_fault 0x4L;
    ]
  in
  List.iter
    (fun t ->
      Alcotest.(check bool) "to_string non-empty" true
        (String.length (Trap.to_string t) > 0);
      let b = Buffer.create 64 in
      let fmt = Format.formatter_of_buffer b in
      Trap.pp fmt t;
      Format.pp_print_flush fmt ();
      Alcotest.(check string) "pp agrees with to_string" (Trap.to_string t)
        (Buffer.contents b))
    traps;
  let labels = List.map Trap.to_string traps in
  Alcotest.(check int) "labels pairwise distinct" (List.length labels)
    (List.length (List.sort_uniq compare labels))

(* a trapped run's trace always closes with the T_trap event *)
let test_trapped_trace_ends_in_trap () =
  let plan =
    Ifp_faultinject.Fault.default_plan Ifp_faultinject.Fault.Tag_flip ~seed:0L
  in
  let config =
    { Vm.ifp_wrapped with Vm.trace_limit = 256; fault_plan = Some plan }
  in
  let r = Vm.run ~config (Ifp_faultinject.Victim.program ()) in
  Alcotest.(check bool) "run trapped" true
    (match r.Vm.outcome with Vm.Trapped _ -> true | _ -> false);
  match List.rev r.Vm.trace with
  | Vm.T_trap _ :: _ -> ()
  | _ -> Alcotest.fail "trace does not end in T_trap"

let tests =
  [
    Alcotest.test_case "tag fields" `Quick test_tag_fields;
    Alcotest.test_case "legacy canonical" `Quick test_legacy_is_canonical;
    Alcotest.test_case "subheap tag" `Quick test_subheap_tag;
    Alcotest.test_case "global tag" `Quick test_global_tag;
    Alcotest.test_case "poison states" `Quick test_poison_states;
    Alcotest.test_case "metadata address" `Quick test_metadata_addr;
    QCheck_alcotest.to_alcotest prop_tag_roundtrip;
    Alcotest.test_case "bounds contains" `Quick test_bounds_contains;
    Alcotest.test_case "ifpadd granule offset" `Quick
      test_ifpadd_updates_granule_offset;
    Alcotest.test_case "ifpadd poison" `Quick test_ifpadd_poison;
    Alcotest.test_case "ifpadd unreachable metadata" `Quick
      test_ifpadd_unreachable_metadata;
    Alcotest.test_case "ifpidx increments" `Quick test_ifpidx_increments;
    Alcotest.test_case "ifpchk" `Quick test_ifpchk;
    Alcotest.test_case "poison check on deref" `Quick test_poison_check_on_deref;
    Alcotest.test_case "ifpextract demote" `Quick test_ifpextract_demote;
    Alcotest.test_case "trap strings total" `Quick test_trap_strings_total;
    Alcotest.test_case "trapped trace ends in T_trap" `Quick
      test_trapped_trace_ends_in_trap;
  ]
