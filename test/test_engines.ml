(* Three-engine differential testing: the slot-resolved interpreter
   (Vm), the name-keyed reference (Vm_ref) and the closure-compiled
   engine (Vm_closure) must be observationally identical — same outcome,
   every counter, IFP trace, cache statistics, footprint and output —
   on workloads, on failure paths (aborts, budget exhaustion, bounds
   traps), and on a seeded stream of randomly generated programs that
   mixes arithmetic, gep chains and promote-heavy pointer traffic.

   The closure engine's fused superinstructions and inline caches are
   specializations, not semantics: any divergence here is a bug in the
   compiler, and this suite is what keeps it honest. *)

open Core
open Ir

let engines : (string * (Vm.config -> Ir.program -> Vm.result)) list =
  [
    ("vm", fun config prog -> Vm.run ~config prog);
    ("vm-ref", fun config prog -> Vm_ref.run ~config prog);
    ("closure", fun config prog -> Vm_closure.run ~config prog);
  ]

(* ---- full observable signature of a run ---------------------------- *)

let outcome_str = function
  | Vm.Finished v -> "finished:" ^ Int64.to_string v
  | Vm.Trapped t -> "trapped:" ^ Trap.to_string t
  | Vm.Aborted r -> "aborted:" ^ Vm.abort_reason_string r

let trace_str = function
  | Vm.T_promote { ptr; outcome; bounds } ->
    Printf.sprintf "promote:%Lx:%s:%s" ptr outcome bounds
  | Vm.T_register { what; ptr; size } ->
    Printf.sprintf "register:%s:%Lx:%d" what ptr size
  | Vm.T_deregister { what; ptr } -> Printf.sprintf "deregister:%s:%Lx" what ptr
  | Vm.T_trap m -> "trap:" ^ m

(* every observable field folded into one string, so a mismatch anywhere
   fails with a diffable report *)
let result_sig (r : Vm.result) =
  let c = r.Vm.counters in
  let b = Buffer.create 256 in
  let f fmt = Printf.ksprintf (fun s -> Buffer.add_string b s) fmt in
  f "outcome=%s\n" (outcome_str r.Vm.outcome);
  f "base_instrs=%d cycles=%d loads=%d stores=%d checks=%d\n"
    c.Counters.base_instrs c.Counters.cycles c.Counters.loads c.Counters.stores
    c.Counters.implicit_checks;
  f "ifp=[%s]\n"
    (String.concat ","
       (List.map string_of_int (Array.to_list c.Counters.ifp)));
  f "promotes=%d/%d/%d/%d/%d subobj=%d narrows=%d/%d\n"
    c.Counters.promotes_valid c.Counters.promotes_null
    c.Counters.promotes_legacy c.Counters.promotes_poisoned
    c.Counters.promotes_invalid_meta c.Counters.promotes_subobj
    c.Counters.narrows_ok c.Counters.narrows_failed;
  f "objs=%d/%d %d/%d %d/%d\n" c.Counters.global_objs
    c.Counters.global_objs_layout c.Counters.local_objs
    c.Counters.local_objs_layout c.Counters.heap_objs
    c.Counters.heap_objs_layout;
  f "cache=%d/%d footprint=%d\n" r.Vm.cache_accesses r.Vm.cache_misses
    r.Vm.mem_footprint;
  f "output=%s\n" (String.concat "|" r.Vm.output);
  f "trace=%s\n" (String.concat ";" (List.map trace_str r.Vm.trace));
  Buffer.contents b

let check_all_engines_agree name config prog =
  match engines with
  | [] -> assert false
  | (ref_name, ref_run) :: rest ->
    let expected = result_sig (ref_run config prog) in
    List.iter
      (fun (ename, erun) ->
        Alcotest.check Alcotest.string
          (Printf.sprintf "%s: %s vs %s" name ename ref_name)
          expected
          (result_sig (erun config prog)))
      rest

let configs =
  [
    ("baseline", Vm.baseline);
    ("ifp-subheap", { Vm.ifp_subheap with trace_limit = 64 });
    ("ifp-wrapped", { Vm.ifp_wrapped with trace_limit = 64 });
    ("ifp-mixed", Vm.ifp_mixed);
    ("subheap-np", Vm.no_promote Vm.Alloc_subheap);
    ("no-narrowing", Vm.no_narrowing Vm.Alloc_subheap);
  ]

(* ---- workloads ------------------------------------------------------ *)

let test_workloads () =
  List.iter
    (fun wname ->
      match Ifp_workloads.Registry.find wname with
      | None -> Alcotest.fail ("missing workload " ^ wname)
      | Some w ->
        let prog = Lazy.force w.Ifp_workloads.Workload.prog in
        List.iter
          (fun (cname, config) ->
            check_all_engines_agree (wname ^ "/" ^ cname) config prog)
          configs)
    [ "treeadd"; "mst"; "ft"; "power" ]

(* ---- failure paths -------------------------------------------------- *)

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "pair";
      fields =
        [
          { fname = "a"; fty = Ctype.Array (Ctype.I64, 4) };
          { fname = "b"; fty = Ctype.I64 };
        ];
    }

let pair = Ctype.Struct "pair"

let test_failure_paths () =
  let div0 =
    program ~tenv ~globals:[]
      [ func "main" [] Ctype.I64 [ Return (Some (i 1 /: i 0)) ] ]
  in
  let spin =
    program ~tenv ~globals:[]
      [
        func "main" [] Ctype.I64
          [ While (i 1, [ Let ("x", Ctype.I64, i 0) ]); Return (Some (i 0)) ];
      ]
  in
  (* heap overflow: in-bounds writes then one past the end — traps under
     IFP (through the fused gep→check→store path), runs to completion
     under baseline; engines must agree per config either way *)
  let oob =
    program ~tenv ~globals:[]
      [
        func "main" [] Ctype.I64
          [
            Let ("p", Ctype.Ptr Ctype.I64, Malloc (Ctype.I64, i 4));
            Let ("j", Ctype.I64, i 0);
            While
              ( v "j" <: i 5,
                [
                  Store (Ctype.I64, idx (v "p") (v "j") [] Ctype.I64, v "j");
                  Assign ("j", v "j" +: i 1);
                ] );
            Return (Some (i 0));
          ];
      ]
  in
  (* subobject escape: narrowed bounds from a field gep, then an access
     beyond the field — the subobject-granularity trap *)
  let subobj =
    program ~tenv ~globals:[]
      [
        func "main" [] Ctype.I64
          [
            Let ("p", Ctype.Ptr pair, Malloc (pair, i 1));
            Let ("q", Ctype.Ptr Ctype.I64, Gep (pair, v "p", [ fld "a"; at (i 0) ]));
            Let ("j", Ctype.I64, i 0);
            While
              ( v "j" <: i 6,
                [
                  Store (Ctype.I64, idx (v "q") (v "j") [] Ctype.I64, i 7);
                  Assign ("j", v "j" +: i 1);
                ] );
            Return (Some (i 0));
          ];
      ]
  in
  List.iter
    (fun (cname, config) ->
      check_all_engines_agree ("div0/" ^ cname) config div0;
      check_all_engines_agree ("spin/" ^ cname)
        { config with Vm.max_cycles = 10_000 }
        spin;
      check_all_engines_agree ("oob/" ^ cname) config oob;
      check_all_engines_agree ("subobj/" ^ cname) config subobj)
    configs

(* ---- local registration (inline-cache path) ------------------------- *)

let test_local_registration () =
  (* address-taken locals in a function called repeatedly: the closure
     engine's per-site inline cache must serve every repeat without
     changing a single counter *)
  let prog =
    program ~tenv ~globals:[]
      [
        func "work" [ ("k", Ctype.I64) ] Ctype.I64
          [
            Decl_local ("t", pair);
            Store (Ctype.I64, Gep (pair, Addr_local "t", [ fld "b" ]), v "k");
            Store
              ( Ctype.I64,
                Gep (pair, Addr_local "t", [ fld "a"; at (v "k" %: i 4) ]),
                v "k" *: i 3 );
            Return
              (Some
                 (Load (Ctype.I64, Gep (pair, Addr_local "t", [ fld "b" ]))
                 +: Load
                      ( Ctype.I64,
                        Gep (pair, Addr_local "t", [ fld "a"; at (v "k" %: i 4) ])
                      )));
          ];
        func "main" [] Ctype.I64
          [
            Let ("acc", Ctype.I64, i 0);
            Let ("j", Ctype.I64, i 0);
            While
              ( v "j" <: i 50,
                [
                  Assign ("acc", v "acc" +: Call ("work", [ v "j" ]));
                  Assign ("j", v "j" +: i 1);
                ] );
            Return (Some (v "acc"));
          ];
      ]
  in
  List.iter
    (fun (cname, config) ->
      check_all_engines_agree ("local-reg/" ^ cname) config prog)
    configs

(* ---- seeded random programs ----------------------------------------- *)

(* A compact generator in the spirit of test_differential's, with the
   mixes the closure engine specializes on: integer arithmetic chains,
   single-step field/index geps (the fused shapes), multi-step gep
   chains (the generic path), promote-heavy loads, and calls. Indexes
   are masked to power-of-two array sizes so generated programs are
   memory-safe by construction; all engines must then agree under every
   config, counters included. *)

let box_tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "box";
      fields =
        [
          { fname = "value"; fty = Ctype.I64 };
          { fname = "arr"; fty = Ctype.Array (Ctype.I64, 4) };
          { fname = "next"; fty = Ctype.Ptr (Ctype.Struct "box") };
        ];
    }

let box = Ctype.Struct "box"
let mask n e = Binop (BAnd, e, i (n - 1))

let rec gen_expr depth st =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> i n) (int_range (-20) 20);
        oneofl [ v "s0"; v "s1"; v "s2"; v "k" ];
        return (Load (Ctype.I64, Gep (box, v "b", [ fld "value" ])));
        map
          (fun k -> Load (Ctype.I64, Gep (Ctype.I64, v "a", [ at (i (k land 7)) ])))
          (int_bound 7);
      ]
  in
  if depth = 0 then leaf st
  else
    let sub = gen_expr (depth - 1) in
    oneof
      [
        leaf;
        map2 (fun a b -> a +: b) sub sub;
        map2 (fun a b -> a -: b) sub sub;
        map2 (fun a b -> Binop (BXor, a, b)) sub sub;
        map2 (fun a b -> Binop (Shr, a, Binop (BAnd, b, i 7))) sub sub;
        map (fun a -> a *: i 3) sub;
        map
          (fun a -> Load (Ctype.I64, Gep (Ctype.I64, v "a", [ at (mask 8 a) ])))
          sub;
        map
          (fun a ->
            Load (Ctype.I64, Gep (box, v "b", [ fld "arr"; at (mask 4 a) ])))
          sub;
        map2 (fun a b -> Call ("mix", [ a; b ])) sub sub;
      ]
      st

let gen_cond st =
  let open QCheck.Gen in
  (let* a = gen_expr 1 in
   let* b = gen_expr 1 in
   oneofl [ a <: b; a ==: b; a <>: b ])
    st

let rec gen_stmt depth st =
  let open QCheck.Gen in
  let assign =
    let* var = oneofl [ "s0"; "s1"; "s2" ] in
    let* e = gen_expr 2 in
    return (Assign (var, e))
  in
  let store_a =
    let* idx = gen_expr 1 in
    let* e = gen_expr 2 in
    return (Store (Ctype.I64, Gep (Ctype.I64, v "a", [ at (mask 8 idx) ]), e))
  in
  let store_box =
    let* e = gen_expr 2 in
    oneofl
      [
        Store (Ctype.I64, Gep (box, v "b", [ fld "value" ]), e);
        Store (Ctype.I64, Gep (box, v "b", [ fld "arr"; at (mask 4 e) ]), i 7);
      ]
  in
  let simple = oneof [ assign; store_a; store_box ] in
  if depth = 0 then simple st
  else
    let block n = list_size (int_range 1 n) (gen_stmt (depth - 1)) in
    oneof
      [
        simple;
        (let* body = block 3 in
         let* bound = int_range 1 6 in
         return
           (While (v "k" <: i bound, body @ [ Assign ("k", v "k" +: i 1) ])));
        (let* c = gen_cond in
         let* t = block 3 in
         let* e = block 2 in
         return (If (c, t, e)));
      ]
      st

let gen_program st =
  let open QCheck.Gen in
  let stmts =
    (list_size (int_range 3 8) (gen_stmt 2)) st |> List.concat_map (fun s ->
        [ Assign ("k", i 0); s ])
  in
  let mix =
    func "mix" [ ("x", Ctype.I64); ("y", Ctype.I64) ] Ctype.I64
      [ Return (Some (Binop (BXor, v "x" +: v "y", Binop (Shr, v "x", i 3)))) ]
  in
  let prelude =
    [
      Let ("s0", Ctype.I64, i 1);
      Let ("s1", Ctype.I64, i 2);
      Let ("s2", Ctype.I64, i 3);
      Let ("k", Ctype.I64, i 0);
      Let ("a", Ctype.Ptr Ctype.I64, Malloc (Ctype.I64, i 8));
      Let ("b", Ctype.Ptr box, Malloc (box, i 1));
      Let ("z", Ctype.I64, i 0);
      While
        ( v "z" <: i 8,
          [
            Store (Ctype.I64, Gep (Ctype.I64, v "a", [ at (v "z") ]), v "z");
            Assign ("z", v "z" +: i 1);
          ] );
      Store (Ctype.I64, Gep (box, v "b", [ fld "value" ]), i 5);
      Store (Ctype.Ptr box, Gep (box, v "b", [ fld "next" ]), null box);
    ]
  in
  let checksum =
    [
      Let ("acc", Ctype.I64, v "s0" +: v "s1" +: v "s2");
      Let ("j", Ctype.I64, i 0);
      While
        ( v "j" <: i 8,
          [
            Assign
              ( "acc",
                Binop
                  ( BXor,
                    v "acc",
                    Load (Ctype.I64, Gep (Ctype.I64, v "a", [ at (v "j") ]))
                    +: v "j" ) );
            Assign ("j", v "j" +: i 1);
          ] );
      Return
        (Some (v "acc" +: Load (Ctype.I64, Gep (box, v "b", [ fld "value" ]))));
    ]
  in
  program ~tenv:box_tenv ~globals:[]
    [ mix; func "main" [] Ctype.I64 (prelude @ stmts @ checksum) ]

let random_configs =
  [
    ("baseline", Vm.baseline);
    ("ifp-subheap", { Vm.ifp_subheap with trace_limit = 32 });
    ("ifp-wrapped", Vm.ifp_wrapped);
  ]

let test_random_programs () =
  (* fixed seed: the same 40 programs every run, so a failure here is
     reproducible without qcheck seed plumbing *)
  let rand = Random.State.make [| 0x1F9; 2026 |] in
  for n = 1 to 40 do
    let prog = QCheck.Gen.generate1 ~rand gen_program in
    (match Typecheck.check_program prog with
    | exception Typecheck.Type_error e ->
      Alcotest.fail (Printf.sprintf "program %d ill-typed: %s" n e)
    | () -> ());
    List.iter
      (fun (cname, config) ->
        check_all_engines_agree
          (Printf.sprintf "random-%d/%s" n cname)
          config prog)
      random_configs
  done

(* ---- dispatch and profiling ----------------------------------------- *)

let test_engines_dispatch () =
  (* Engines.run must route on config.engine and Engines.of_string must
     round-trip the CLI spellings *)
  List.iter
    (fun eng ->
      let name = Engines.to_string eng in
      Alcotest.(check bool)
        ("of_string " ^ name) true
        (Engines.of_string name = Some eng))
    Engines.all;
  Alcotest.(check bool) "unknown engine" true (Engines.of_string "jit" = None);
  let w = Option.get (Ifp_workloads.Registry.find "treeadd") in
  let prog = Lazy.force w.Ifp_workloads.Workload.prog in
  let base = Vm.run ~config:Vm.ifp_subheap prog in
  List.iter
    (fun eng ->
      let r =
        Engines.run ~config:{ Vm.ifp_subheap with engine = eng } prog
      in
      Alcotest.check Alcotest.string
        ("dispatch " ^ Engines.to_string eng)
        (result_sig base) (result_sig r))
    Engines.all

let test_profile () =
  (* deterministic fake clock: +1 "ns" per probe; the profiler must see
     every dispatch and attribute self-time without losing any *)
  let ticks = ref 0.0 in
  let clock () =
    ticks := !ticks +. 1.0;
    !ticks
  in
  let p = Profile.create ~clock in
  let w = Option.get (Ifp_workloads.Registry.find "treeadd") in
  let prog = Lazy.force w.Ifp_workloads.Workload.prog in
  let r = Vm_closure.run ~config:Vm.ifp_subheap ~profile:p prog in
  (match r.Vm.outcome with
  | Vm.Finished _ -> ()
  | o -> Alcotest.fail ("treeadd did not finish: " ^ outcome_str o));
  let rows = Profile.report p in
  Alcotest.(check bool) "has rows" true (List.length rows > 3);
  let total_count =
    List.fold_left (fun acc (row : Profile.row) -> acc + row.count) 0 rows
  in
  Alcotest.(check bool) "counted dispatches" true (total_count > 1000);
  let shares = List.fold_left (fun acc (r : Profile.row) -> acc +. r.share) 0.0 rows in
  Alcotest.(check bool) "shares sum to 1" true (abs_float (shares -. 1.0) < 1e-9);
  (* the ifp-subheap treeadd run must hit the fused gep superinstructions *)
  Alcotest.(check bool) "fused ops present" true
    (List.exists
       (fun (r : Profile.row) ->
         String.length r.op >= 3 && String.sub r.op 0 3 = "gep"
         && String.contains r.op '+')
       rows)

let tests =
  [
    Alcotest.test_case "three engines agree on workloads" `Quick test_workloads;
    Alcotest.test_case "three engines agree on failure paths" `Quick
      test_failure_paths;
    Alcotest.test_case "local registration via inline cache" `Quick
      test_local_registration;
    Alcotest.test_case "three engines agree on random programs" `Quick
      test_random_programs;
    Alcotest.test_case "engine dispatch and names" `Quick test_engines_dispatch;
    Alcotest.test_case "closure dispatch profiler" `Quick test_profile;
  ]
