(* Semantic tests for the VM: arithmetic, control flow, recursion,
   memory, calling convention and the IFP execution modes. *)

open Core
open Ir

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "cons";
      fields =
        [
          { fname = "hd"; fty = Ctype.I64 };
          { fname = "tl"; fty = Ctype.Ptr (Ctype.Struct "cons") };
        ];
    }

let run_main ?(config = Vm.baseline) ?(globals = []) ?(funcs = []) body =
  let p = program ~tenv ~globals (funcs @ [ func "main" [] Ctype.I64 body ]) in
  Vm.run ~config p

let expect_ret ?config ?globals ?funcs expected body =
  let r = run_main ?config ?globals ?funcs body in
  match r.Vm.outcome with
  | Vm.Finished x -> Alcotest.(check int64) "return value" expected x
  | Vm.Trapped t -> Alcotest.fail ("trapped: " ^ Trap.to_string t)
  | Vm.Aborted m -> Alcotest.fail ("aborted: " ^ Vm.abort_reason_string m)

let test_arith () =
  expect_ret 42L [ Return (Some ((i 6 *: i 8) -: (i 12 /: i 2))) ];
  expect_ret 1L [ Return (Some (i 7 %: i 3)) ];
  expect_ret (-5L) [ Return (Some (Unop (Neg, i 5))) ];
  expect_ret 12L [ Return (Some (Binop (Shl, i 3, i 2))) ];
  expect_ret 1L [ Return (Some (i 3 <: i 4)) ];
  expect_ret 0L [ Return (Some (i 4 <: i 3)) ]

let test_float () =
  expect_ret 7L
    [ Return (Some (Cast (Ctype.I64, Binop (FAdd, Float 3.5, Float 3.5)))) ];
  expect_ret 1L [ Return (Some (Binop (FLt, Float 1.0, Float 2.0))) ]

let test_short_circuit () =
  (* the right operand must not be evaluated: it would divide by zero *)
  expect_ret 0L [ Return (Some (i 0 &&: (i 1 /: i 0))) ];
  expect_ret 1L [ Return (Some (i 1 ||: (i 1 /: i 0))) ]

let test_control_flow () =
  expect_ret 10L
    [
      Let ("s", Ctype.I64, i 0);
      Let ("k", Ctype.I64, i 0);
      While
        ( v "k" <: i 5,
          [ Assign ("s", v "s" +: v "k"); Assign ("k", v "k" +: i 1) ] );
      Return (Some (v "s"));
    ];
  expect_ret 3L
    [
      Let ("k", Ctype.I64, i 0);
      While
        ( i 1,
          [
            Assign ("k", v "k" +: i 1);
            If (v "k" >=: i 3, [ Break ], []);
          ] );
      Return (Some (v "k"));
    ]

let test_recursion () =
  let fib =
    func "fib" [ ("n", Ctype.I64) ] Ctype.I64
      [
        If (v "n" <=: i 1, [ Return (Some (v "n")) ], []);
        Return (Some (Call ("fib", [ v "n" -: i 1 ]) +: Call ("fib", [ v "n" -: i 2 ])));
      ]
  in
  expect_ret ~funcs:[ fib ] 55L [ Return (Some (Call ("fib", [ i 10 ]))) ]

let test_heap_linked_list () =
  let body =
    [
      Let ("head", Ctype.Ptr (Ctype.Struct "cons"), null (Ctype.Struct "cons"));
      Let ("k", Ctype.I64, i 0);
      While
        ( v "k" <: i 10,
          [
            Let ("c", Ctype.Ptr (Ctype.Struct "cons"), Malloc (Ctype.Struct "cons", i 1));
            Store (Ctype.I64, Gep (Ctype.Struct "cons", v "c", [ fld "hd" ]), v "k");
            Store (Ctype.Ptr (Ctype.Struct "cons"),
                   Gep (Ctype.Struct "cons", v "c", [ fld "tl" ]), v "head");
            Assign ("head", v "c");
            Assign ("k", v "k" +: i 1);
          ] );
      Let ("s", Ctype.I64, i 0);
      While
        ( Binop (Ne, v "head", null (Ctype.Struct "cons")),
          [
            Assign ("s", v "s" +: Load (Ctype.I64, Gep (Ctype.Struct "cons", v "head", [ fld "hd" ])));
            Assign ("head",
                    Load (Ctype.Ptr (Ctype.Struct "cons"),
                          Gep (Ctype.Struct "cons", v "head", [ fld "tl" ])));
          ] );
      Return (Some (v "s"));
    ]
  in
  expect_ret 45L body;
  expect_ret ~config:Vm.ifp_subheap 45L body;
  expect_ret ~config:Vm.ifp_wrapped 45L body

let test_narrow_int_store () =
  (* i8 store truncates; i8 load sign-extends *)
  expect_ret (-1L)
    [
      Let ("p", Ctype.Ptr Ctype.I8, Malloc (Ctype.I8, i 4));
      Store (Ctype.I8, v "p", i 0xFF);
      Return (Some (Cast (Ctype.I64, Load (Ctype.I8, v "p"))));
    ]

let test_globals () =
  let g = global "acc" Ctype.I64 in
  expect_ret ~globals:[ g ] 7L
    [
      Store_global ("acc", i 3);
      Store_global ("acc", Load_global "acc" +: i 4);
      Return (Some (Load_global "acc"));
    ]

let test_division_by_zero_aborts () =
  let r = run_main [ Return (Some (i 1 /: i 0)) ] in
  match r.Vm.outcome with
  | Vm.Aborted _ -> ()
  | _ -> Alcotest.fail "expected abort"

let test_stack_overflow_aborts () =
  let looper =
    func "deep" [ ("n", Ctype.I64) ] Ctype.I64
      [
        Decl_local ("pad", Ctype.Array (Ctype.I64, 512));
        Store (Ctype.I64,
               Gep (Ctype.Array (Ctype.I64, 512), Addr_local "pad", [ at (i 0) ]),
               v "n");
        Return (Some (Call ("deep", [ v "n" +: i 1 ])));
      ]
  in
  let r = run_main ~funcs:[ looper ] [ Return (Some (Call ("deep", [ i 0 ]))) ] in
  match r.Vm.outcome with
  | Vm.Aborted msg ->
    Alcotest.(check string)
      "stack overflow" "stack overflow"
      (Vm.abort_reason_string msg)
  | _ -> Alcotest.fail "expected stack overflow"

let test_legacy_clears_bounds () =
  (* a legacy callee returns a pointer it received; the caller must not
     inherit stale bounds through it (implicit bounds clearing §4.1.2),
     so a subsequent out-of-bounds dereference goes unchecked *)
  let lib =
    func ~instrumented:false "lib_pass" [ ("p", Ctype.Ptr Ctype.I64) ]
      (Ctype.Ptr Ctype.I64)
      [ Return (Some (v "p")) ]
  in
  let body =
    [
      Let ("p", Ctype.Ptr Ctype.I64, Malloc (Ctype.I64, i 2));
      Let ("q", Ctype.Ptr Ctype.I64, Call ("lib_pass", [ v "p" ]));
      (* out of bounds, but q has cleared bounds -> silent *)
      Store (Ctype.I64, Gep (Ctype.I64, v "q", [ at (i 5) ]), i 1);
      Return (Some (i 0));
    ]
  in
  let r = run_main ~config:Vm.ifp_subheap ~funcs:[ lib ] body in
  (match r.Vm.outcome with
  | Vm.Finished _ -> ()
  | _ -> Alcotest.fail "legacy-returned pointer should be unchecked");
  (* while the same store through the original pointer traps *)
  let body2 =
    [
      Let ("p", Ctype.Ptr Ctype.I64, Malloc (Ctype.I64, i 2));
      Store (Ctype.I64, Gep (Ctype.I64, v "p", [ at (i 5) ]), i 1);
      Return (Some (i 0));
    ]
  in
  let r2 = run_main ~config:Vm.ifp_subheap body2 in
  match r2.Vm.outcome with
  | Vm.Trapped _ -> ()
  | _ -> Alcotest.fail "instrumented pointer should be checked"

let test_bounds_through_call () =
  (* bounds travel with pointer arguments: the callee's bad access traps
     without any promote *)
  let writer =
    func "writer" [ ("p", Ctype.Ptr Ctype.I64); ("k", Ctype.I64) ] Ctype.Void
      [ Store (Ctype.I64, Gep (Ctype.I64, v "p", [ at (v "k") ]), i 1); Return None ]
  in
  let mk k =
    [
      Let ("p", Ctype.Ptr Ctype.I64, Malloc (Ctype.I64, i 4));
      Expr (Call ("writer", [ v "p"; i k ]));
      Return (Some (i 0));
    ]
  in
  let ok = run_main ~config:Vm.ifp_subheap ~funcs:[ writer ] (mk 3) in
  (match ok.Vm.outcome with
  | Vm.Finished _ -> ()
  | _ -> Alcotest.fail "in-bounds call access");
  let bad = run_main ~config:Vm.ifp_subheap ~funcs:[ writer ] (mk 4) in
  (match bad.Vm.outcome with
  | Vm.Trapped _ -> ()
  | _ -> Alcotest.fail "oob call access should trap");
  (* and no promote was needed for the argument *)
  Alcotest.(check int) "no promotes" 0
    (Counters.ifp_count ok.Vm.counters Insn.Promote)

let test_free_reuse () =
  expect_ret ~config:Vm.ifp_subheap 3L
    [
      Let ("p", Ctype.Ptr Ctype.I64, Malloc (Ctype.I64, i 4));
      Free (v "p");
      Let ("q", Ctype.Ptr Ctype.I64, Malloc (Ctype.I64, i 4));
      Store (Ctype.I64, v "q", i 3);
      Return (Some (Load (Ctype.I64, v "q")));
    ]

let test_checksums_equal_across_variants () =
  (* one program, five configurations, one answer *)
  let body =
    [
      Let ("p", Ctype.Ptr (Ctype.Struct "cons"), Malloc (Ctype.Struct "cons", i 3));
      Let ("k", Ctype.I64, i 0);
      While
        ( v "k" <: i 3,
          [
            Store (Ctype.I64, Gep (Ctype.Struct "cons", v "p", [ at (v "k"); fld "hd" ]),
                   v "k" *: i 10);
            Assign ("k", v "k" +: i 1);
          ] );
      Return
        (Some
           (Load (Ctype.I64, Gep (Ctype.Struct "cons", v "p", [ at (i 2); fld "hd" ]))));
    ]
  in
  List.iter
    (fun cfg -> expect_ret ~config:cfg 20L body)
    [ Vm.baseline; Vm.ifp_subheap; Vm.ifp_wrapped;
      Vm.no_promote Vm.Alloc_subheap; Vm.no_promote Vm.Alloc_wrapped ]

let test_cycle_budget () =
  let r =
    run_main
      ~config:{ Vm.baseline with max_cycles = 1000 }
      [ Let ("k", Ctype.I64, i 0);
        While (i 1, [ Assign ("k", v "k" +: i 1) ]);
        Return (Some (i 0)) ]
  in
  match r.Vm.outcome with
  | Vm.Aborted _ -> ()
  | _ -> Alcotest.fail "expected budget abort"

let test_output () =
  let r =
    run_main
      [ Expr (Call ("__print_i64", [ i 41 +: i 1 ])); Return (Some (i 0)) ]
  in
  Alcotest.(check (list string)) "printed" [ "42" ] r.Vm.output

(* ---- slot-resolution determinism ---------------------------------- *)

(* The slot-resolved interpreter must be observationally identical to
   the frozen name-keyed reference: same outcome, every counter, cache
   statistics, footprint, output and IFP trace, across all execution
   modes. *)

let outcome_str = function
  | Vm.Finished v -> "finished:" ^ Int64.to_string v
  | Vm.Trapped t -> "trapped:" ^ Trap.to_string t
  | Vm.Aborted r -> "aborted:" ^ Vm.abort_reason_string r

let trace_str = function
  | Vm.T_promote { ptr; outcome; bounds } ->
    Printf.sprintf "promote:%Lx:%s:%s" ptr outcome bounds
  | Vm.T_register { what; ptr; size } ->
    Printf.sprintf "register:%s:%Lx:%d" what ptr size
  | Vm.T_deregister { what; ptr } -> Printf.sprintf "deregister:%s:%Lx" what ptr
  | Vm.T_trap m -> "trap:" ^ m

let check_engines_agree name config prog =
  let a = Vm.run ~config prog in
  let b = Vm_ref.run ~config prog in
  let chk what = Alcotest.check Alcotest.string (name ^ ": " ^ what) in
  chk "outcome" (outcome_str b.Vm.outcome) (outcome_str a.Vm.outcome);
  let ca = a.Vm.counters and cb = b.Vm.counters in
  let chki what x y = Alcotest.(check int) (name ^ ": " ^ what) y x in
  chki "base_instrs" ca.Counters.base_instrs cb.Counters.base_instrs;
  chki "cycles" ca.Counters.cycles cb.Counters.cycles;
  chki "loads" ca.Counters.loads cb.Counters.loads;
  chki "stores" ca.Counters.stores cb.Counters.stores;
  chki "implicit_checks" ca.Counters.implicit_checks cb.Counters.implicit_checks;
  chki "promotes_valid" ca.Counters.promotes_valid cb.Counters.promotes_valid;
  chki "promotes_total" (Counters.promotes_total ca) (Counters.promotes_total cb);
  Array.iteri
    (fun i x -> chki (Printf.sprintf "ifp[%d]" i) x cb.Counters.ifp.(i))
    ca.Counters.ifp;
  chki "cache_accesses" a.Vm.cache_accesses b.Vm.cache_accesses;
  chki "cache_misses" a.Vm.cache_misses b.Vm.cache_misses;
  chki "mem_footprint" a.Vm.mem_footprint b.Vm.mem_footprint;
  chk "output"
    (String.concat "|" b.Vm.output)
    (String.concat "|" a.Vm.output);
  chk "trace"
    (String.concat ";" (List.map trace_str b.Vm.trace))
    (String.concat ";" (List.map trace_str a.Vm.trace))

let determinism_configs =
  [
    ("baseline", Vm.baseline);
    ("ifp-subheap", { Vm.ifp_subheap with trace_limit = 64 });
    ("ifp-wrapped", { Vm.ifp_wrapped with trace_limit = 64 });
    ("ifp-mixed", Vm.ifp_mixed);
  ]

let test_engine_agreement_workloads () =
  List.iter
    (fun wname ->
      match Ifp_workloads.Registry.find wname with
      | None -> Alcotest.fail ("missing workload " ^ wname)
      | Some w ->
        let prog = Lazy.force w.Ifp_workloads.Workload.prog in
        List.iter
          (fun (cname, config) ->
            check_engines_agree (wname ^ "/" ^ cname) config prog)
          determinism_configs)
    [ "treeadd"; "mst"; "power" ]

let test_engine_agreement_failures () =
  (* failure paths must match too: division abort and budget abort *)
  let div0 =
    program ~tenv ~globals:[] [ func "main" [] Ctype.I64 [ Return (Some (i 1 /: i 0)) ] ]
  in
  let spin =
    program ~tenv ~globals:[]
      [
        func "main" [] Ctype.I64
          [ While (i 1, [ Let ("x", Ctype.I64, i 0) ]); Return (Some (i 0)) ]
      ]
  in
  List.iter
    (fun (cname, config) ->
      check_engines_agree ("div0/" ^ cname) config div0;
      check_engines_agree ("spin/" ^ cname)
        { config with Vm.max_cycles = 10_000 }
        spin)
    determinism_configs

let tests =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "floats" `Quick test_float;
    Alcotest.test_case "short circuit" `Quick test_short_circuit;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "heap linked list (3 modes)" `Quick test_heap_linked_list;
    Alcotest.test_case "narrow int store" `Quick test_narrow_int_store;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero_aborts;
    Alcotest.test_case "stack overflow" `Quick test_stack_overflow_aborts;
    Alcotest.test_case "legacy clears bounds" `Quick test_legacy_clears_bounds;
    Alcotest.test_case "bounds through calls" `Quick test_bounds_through_call;
    Alcotest.test_case "free + reuse" `Quick test_free_reuse;
    Alcotest.test_case "checksums across variants" `Quick
      test_checksums_equal_across_variants;
    Alcotest.test_case "cycle budget" `Quick test_cycle_budget;
    Alcotest.test_case "host output" `Quick test_output;
    Alcotest.test_case "engines agree on workloads" `Quick
      test_engine_agreement_workloads;
    Alcotest.test_case "engines agree on failure paths" `Quick
      test_engine_agreement_failures;
  ]
