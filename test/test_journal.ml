(* Tests for the campaign write-ahead journal: framed append/replay
   round-trips, idempotent replay, torn-tail tolerance byte by byte,
   resume-truncation, and the engine treating replayed records as
   authoritative (no re-run). *)

open Core
module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Journal = Ifp_campaign.Journal
module Crc32 = Ifp_util.Crc32

let temp_path prefix =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s-%d-%d.wal" prefix (Unix.getpid ()) (Random.bits ()))

let with_temp_path prefix f =
  let path = temp_path prefix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let tiny_prog i =
  Ir.program ~tenv:Ctype.empty_tenv ~globals:[]
    [ Ir.func "main" [] Ctype.I64 [ Ir.Return (Some (Ir.i i)) ] ]

let tiny_job i =
  Job.make
    ~name:(Printf.sprintf "tiny/%d" i)
    ~group:"tiny" ~variant:"subheap" ~config:Vm.ifp_subheap (tiny_prog i)

(* one real Vm.result so the marshalled payload has the full shape *)
let sample_result =
  lazy (Vm.run ~config:Vm.ifp_subheap (tiny_prog 1))

let sample_entries () =
  [
    { Journal.digest = String.make 32 'a'; job_name = "j/a";
      status = Journal.Done; result = Some (Lazy.force sample_result) };
    { Journal.digest = String.make 32 'b'; job_name = "j/b";
      status = Journal.Failed "injected"; result = None };
    { Journal.digest = String.make 32 'c'; job_name = "j/c";
      status = Journal.Timed_out; result = None };
  ]

let entry_key (e : Journal.entry) =
  ( e.Journal.digest,
    e.Journal.job_name,
    (match e.Journal.status with
    | Journal.Done -> "done"
    | Journal.Failed w -> "failed:" ^ w
    | Journal.Timed_out -> "timed_out"
    | Journal.Skipped -> "skipped"),
    e.Journal.result <> None )

let write_entries path entries =
  let j = Journal.create ~path in
  List.iter (Journal.append j) entries;
  Journal.close j

let test_roundtrip () =
  with_temp_path "ifp-journal-rt" (fun path ->
      let entries = sample_entries () in
      write_entries path entries;
      let rep = Journal.replay ~path in
      Alcotest.(check bool) "no torn tail" false rep.Journal.torn_tail;
      Alcotest.(check int) "all records back" (List.length entries)
        (List.length rep.Journal.entries);
      List.iter2
        (fun e r ->
          Alcotest.(check bool) "entry round-trips" true
            (entry_key e = entry_key r))
        entries rep.Journal.entries;
      (* the Done record's result is the full Vm.result, byte-for-byte *)
      let done_entry = List.hd rep.Journal.entries in
      Alcotest.(check bool) "result payload identical" true
        (done_entry.Journal.result = Some (Lazy.force sample_result)))

let test_replay_idempotent () =
  with_temp_path "ifp-journal-idem" (fun path ->
      let entries = sample_entries () in
      write_entries path entries;
      let r1 = Journal.replay ~path in
      let r2 = Journal.replay ~path in
      Alcotest.(check bool) "replaying twice = once" true
        (List.map entry_key r1.Journal.entries
        = List.map entry_key r2.Journal.entries);
      (* a duplicate digest replays to one entry: the later record wins *)
      let j = Journal.create ~path in
      Journal.append j
        { Journal.digest = "d"; job_name = "dup"; status = Journal.Failed "v1";
          result = None };
      Journal.append j
        { Journal.digest = "d"; job_name = "dup";
          status = Journal.Failed "v2"; result = None };
      Journal.close j;
      let rep = Journal.replay ~path in
      Alcotest.(check int) "duplicates collapse" 1
        (List.length rep.Journal.entries);
      Alcotest.(check bool) "last record wins" true
        (match (List.hd rep.Journal.entries).Journal.status with
        | Journal.Failed "v2" -> true
        | _ -> false);
      (* resume-replay is itself idempotent: open/close cycles do not
         change what replays *)
      let j2, rep2 = Journal.open_resume ~path in
      Journal.close j2;
      let j3, rep3 = Journal.open_resume ~path in
      Journal.close j3;
      Alcotest.(check bool) "open_resume twice = once" true
        (List.map entry_key rep2.Journal.entries
        = List.map entry_key rep3.Journal.entries))

let test_torn_tail_every_byte () =
  (* chop the file after every byte boundary inside the final record:
     replay must always return the first two records intact and never
     error — the torn-record loss is exactly one record *)
  with_temp_path "ifp-journal-torn" (fun path ->
      let entries = sample_entries () in
      write_entries path entries;
      let full = (Unix.stat path).Unix.st_size in
      write_entries path (List.filteri (fun i _ -> i < 2) entries);
      let two = (Unix.stat path).Unix.st_size in
      let read_file p =
        let ic = open_in_bin p in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      write_entries path entries;
      let bytes = read_file path in
      for cut = two + 1 to full - 1 do
        let oc = open_out_bin path in
        output_string oc (String.sub bytes 0 cut);
        close_out oc;
        let rep = Journal.replay ~path in
        Alcotest.(check int)
          (Printf.sprintf "cut at %d keeps two records" cut)
          2
          (List.length rep.Journal.entries);
        Alcotest.(check bool)
          (Printf.sprintf "cut at %d reports torn tail" cut)
          true rep.Journal.torn_tail
      done;
      (* resume after a torn cut physically truncates back to the last
         intact frame and appending again converges *)
      let oc = open_out_bin path in
      output_string oc (String.sub bytes 0 (full - 1));
      close_out oc;
      let j, rep = Journal.open_resume ~path in
      Alcotest.(check bool) "resume saw the torn tail" true
        rep.Journal.torn_tail;
      Alcotest.(check int) "file truncated to intact prefix" two
        (Unix.stat path).Unix.st_size;
      Journal.append j (List.nth entries 2);
      Journal.close j;
      let rep = Journal.replay ~path in
      Alcotest.(check bool) "re-append converges to the full set" true
        (List.map entry_key rep.Journal.entries
        = List.map entry_key (sample_entries ()))
      )

let test_missing_empty_and_bad_magic () =
  let missing = temp_path "ifp-journal-missing" in
  let rep = Journal.replay ~path:missing in
  Alcotest.(check (pair int bool)) "missing file: empty, not torn" (0, false)
    (List.length rep.Journal.entries, rep.Journal.torn_tail);
  with_temp_path "ifp-journal-badmagic" (fun path ->
      let oc = open_out_bin path in
      output_string oc "this is not a journal at all.......";
      close_out oc;
      Alcotest.check_raises "bad magic raises" (Journal.Bad_magic path)
        (fun () -> ignore (Journal.replay ~path)));
  with_temp_path "ifp-journal-empty" (fun path ->
      let oc = open_out_bin path in
      close_out oc;
      let j, rep = Journal.open_resume ~path in
      Alcotest.(check int) "empty file resumes to zero entries" 0
        (List.length rep.Journal.entries);
      Journal.append j (List.hd (sample_entries ()));
      Journal.close j;
      Alcotest.(check int) "append after empty-resume lands" 1
        (List.length (Journal.replay ~path).Journal.entries))

let test_engine_replay_is_authoritative () =
  with_temp_path "ifp-journal-engine" (fun path ->
      let jobs = List.init 3 tiny_job in
      let journal = Journal.create ~path in
      let first, s1 = Engine.run ~journal jobs in
      Journal.close journal;
      Alcotest.(check int) "fresh run replays nothing" 0
        s1.Engine.journal_replays;
      Alcotest.(check int) "journal holds every completion" 3
        (List.length (Journal.replay ~path).Journal.entries);
      (* resume with a runner that must never fire: replayed records are
         authoritative, so the engine serves all three without running *)
      let journal, _ = Journal.open_resume ~path in
      let booby (_ : Job.t) = failwith "runner must not run on replay" in
      let again, s2 = Engine.run ~journal ~runner:booby ~retries:0 jobs in
      Journal.close journal;
      Alcotest.(check int) "all jobs replayed" 3 s2.Engine.journal_replays;
      Alcotest.(check int) "no failures" 0 s2.Engine.failed;
      Array.iteri
        (fun i (o : Engine.outcome) ->
          Alcotest.(check bool) "flagged from_journal" true
            o.Engine.from_journal;
          Alcotest.(check int) "zero attempts" 0 o.Engine.attempts;
          Alcotest.(check bool) "replayed result identical" true
            (o.Engine.result = first.(i).Engine.result))
        again)

(* property: the backoff envelope (satellite spec) — for any digest and
   attempt, delay in [base*2^(n-1), 1.5*base*2^(n-1)] capped at 5 s *)
let prop_backoff_envelope =
  let gen =
    QCheck.Gen.(
      triple
        (string_size ~gen:(oneofl [ '0'; '7'; 'a'; 'f'; 'z' ]) (return 32))
        (int_range 1 12)
        (float_range 0.001 2.0))
  in
  QCheck.Test.make ~count:500
    ~name:"backoff delay within [lo, 1.5*lo] capped at 5s, deterministic"
    (QCheck.make gen) (fun (digest, attempt, base) ->
      let d = Engine.backoff_delay ~base ~digest ~attempt in
      let d' = Engine.backoff_delay ~base ~digest ~attempt in
      let lo = base *. (2.0 ** float_of_int (attempt - 1)) in
      d = d'
      && d >= Float.min lo 5.0
      && d <= Float.min (1.5 *. lo) 5.0)

let tests =
  [
    Alcotest.test_case "framed append/replay round-trip" `Quick test_roundtrip;
    Alcotest.test_case "replay is idempotent; duplicates collapse" `Quick
      test_replay_idempotent;
    Alcotest.test_case "torn tail tolerated at every byte offset" `Quick
      test_torn_tail_every_byte;
    Alcotest.test_case "missing/empty/bad-magic files" `Quick
      test_missing_empty_and_bad_magic;
    Alcotest.test_case "engine serves replayed records without re-running"
      `Quick test_engine_replay_is_authoritative;
    QCheck_alcotest.to_alcotest prop_backoff_envelope;
  ]
