(* Resilience tests: the circuit-breaker state machine (deterministic,
   injected clock), chaos-proxy fault-schedule determinism, the
   jittered desynchronized busy backoff, worker-crash supervision with
   poison-digest quarantine, the idle/slow-loris connection reaper, an
   end-to-end resilient-client run through a hostile chaos proxy, and
   SIGKILL-the-daemon-mid-burst crash-restart durability over the
   write-ahead journal (forking the service_child victim binary). *)

open Core
module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Events = Ifp_campaign.Events
module Frame = Ifp_service.Frame
module Protocol = Ifp_service.Protocol
module Shard = Ifp_service.Shard
module Server = Ifp_service.Server
module Client = Ifp_service.Client
module Breaker = Ifp_service.Breaker
module Chaosproxy = Ifp_service.Chaosproxy

let child_exe =
  let beside =
    Filename.concat (Filename.dirname Sys.executable_name) "service_child.exe"
  in
  if Sys.file_exists beside then beside else "./service_child.exe"

let temp_dir prefix =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let job i =
  let prog =
    Ir.program ~tenv:Ctype.empty_tenv ~globals:[]
      [ Ir.func "main" [] Ctype.I64 [ Ir.Return (Some (Ir.i (i * 7))) ] ]
  in
  Job.make
    ~name:(Printf.sprintf "res/%02d" i)
    ~group:"res" ~variant:"subheap" ~config:Vm.ifp_subheap prog

let direct_bytes j = Protocol.encode_result (Some (Engine.default_runner j))

let assoc_int key = function
  | Events.Obj fields -> (
    match List.assoc_opt key fields with
    | Some (Events.Int n) -> n
    | _ -> Alcotest.fail ("snapshot missing int field " ^ key))
  | _ -> Alcotest.fail "snapshot is not an object"

(* ---------------- in-process server harness ---------------- *)

type running = {
  r_stop : bool Atomic.t;
  r_thread : Thread.t;
  r_final : Events.json option ref;
}

let start_server ?(workers = 1) ?shard ?(queue_depth = 64)
    ?(poison_threshold = 3) ?(idle_timeout = 60.0) ?(io_timeout = 30.0)
    ?runner ~socket () =
  let stop = Atomic.make false in
  let final = ref None in
  let cfg =
    {
      (Server.default_config ~socket_path:socket) with
      Server.workers;
      shard;
      queue_depth;
      poison_threshold;
      idle_timeout;
      io_timeout;
      runner;
    }
  in
  let th =
    Thread.create
      (fun () ->
        final := Some (Server.run ~stop:(fun () -> Atomic.get stop) cfg))
      ()
  in
  let rec wait n =
    if Sys.file_exists socket then ()
    else if n <= 0 then Alcotest.fail "server did not bind its socket"
    else begin
      Thread.delay 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  { r_stop = stop; r_thread = th; r_final = final }

let stop_server r =
  Atomic.set r.r_stop true;
  Thread.join r.r_thread;
  match !(r.r_final) with
  | Some json -> json
  | None -> Alcotest.fail "server returned no snapshot"

(* ---------------- circuit breaker ---------------- *)

let check_state what expected b =
  Alcotest.(check string) what
    (Breaker.state_name expected)
    (Breaker.state_name (Breaker.state b))

let test_breaker_state_machine () =
  let t0 = 1000.0 in
  let b = Breaker.create ~failure_threshold:3 ~reset_timeout:1.0 () in
  check_state "starts closed" Breaker.Closed b;
  Alcotest.(check bool) "closed allows" true (Breaker.allow ~now:t0 b);
  Breaker.on_failure ~now:t0 b;
  Breaker.on_failure ~now:t0 b;
  check_state "below threshold stays closed" Breaker.Closed b;
  (* a success resets the streak: two more failures still aren't three
     consecutive *)
  Breaker.on_success b;
  Breaker.on_failure ~now:t0 b;
  Breaker.on_failure ~now:t0 b;
  check_state "streak reset by success" Breaker.Closed b;
  Breaker.on_failure ~now:t0 b;
  check_state "trips at threshold" Breaker.Open b;
  Alcotest.(check bool) "open rejects during cool-down" false
    (Breaker.allow ~now:(t0 +. 0.5) b);
  Alcotest.(check int) "rejection counted" 1 (Breaker.rejected b);
  Alcotest.(check bool) "cool-down elapsed admits the probe" true
    (Breaker.allow ~now:(t0 +. 1.1) b);
  check_state "probing" Breaker.Half_open b;
  Alcotest.(check bool) "single probe at a time" false
    (Breaker.allow ~now:(t0 +. 1.1) b);
  Breaker.on_success b;
  check_state "probe success closes" Breaker.Closed b;
  let opens, half_opens, closes = Breaker.transitions b in
  Alcotest.(check (triple int int int))
    "transitions after first cycle" (1, 1, 1)
    (opens, half_opens, closes);
  (* re-trip: a failed probe goes straight back to Open and restarts
     the cool-down clock *)
  Breaker.on_failure ~now:(t0 +. 2.0) b;
  Breaker.on_failure ~now:(t0 +. 2.0) b;
  Breaker.on_failure ~now:(t0 +. 2.0) b;
  check_state "re-tripped" Breaker.Open b;
  Alcotest.(check bool) "second probe admitted" true
    (Breaker.allow ~now:(t0 +. 3.1) b);
  Breaker.on_failure ~now:(t0 +. 3.1) b;
  check_state "probe failure re-opens" Breaker.Open b;
  Alcotest.(check bool) "clock restarted at probe failure" false
    (Breaker.allow ~now:(t0 +. 3.5) b);
  Alcotest.(check bool) "new cool-down elapsed" true
    (Breaker.allow ~now:(t0 +. 4.2) b);
  Breaker.on_success b;
  check_state "closed again" Breaker.Closed b;
  let opens, half_opens, closes = Breaker.transitions b in
  Alcotest.(check (triple int int int))
    "transitions after re-trip cycle" (3, 3, 2)
    (opens, half_opens, closes)

(* ---------------- chaos-proxy schedule determinism ---------------- *)

let hostile_plan seed =
  Chaosproxy.plan ~delay_rate:0.1 ~corrupt_rate:0.1 ~drop_rate:0.1
    ~truncate_rate:0.05 ~dribble_rate:0.05 ~duplicate_rate:0.05
    ~seed ()

let schedule plan =
  List.concat_map
    (fun conn ->
      List.concat_map
        (fun dir ->
          List.init 40 (fun chunk -> Chaosproxy.decide plan ~conn ~dir ~chunk))
        [ Chaosproxy.C2s; Chaosproxy.S2c ])
    (List.init 8 Fun.id)

let test_chaos_plan_determinism () =
  let p = hostile_plan 42L in
  Alcotest.(check bool) "same plan, same schedule" true
    (schedule p = schedule (hostile_plan 42L));
  Alcotest.(check bool) "different seed, different schedule" true
    (schedule p <> schedule (hostile_plan 43L));
  let faults =
    List.length
      (List.filter (fun a -> a <> Chaosproxy.Forward) (schedule p))
  in
  Alcotest.(check bool) "hostile plan actually injects" true (faults > 0);
  let calm = Chaosproxy.plan ~seed:42L () in
  Alcotest.(check bool) "zero rates forward everything" true
    (List.for_all (fun a -> a = Chaosproxy.Forward) (schedule calm))

(* ---------------- desynchronized busy backoff ---------------- *)

let test_busy_delay_desync () =
  let digests = List.init 8 (fun i -> Job.digest (job (100 + i))) in
  let delays =
    List.map
      (fun d -> Client.busy_delay ~digest:d ~attempt:1 ~retry_after:0.01)
      digests
  in
  List.iter
    (fun d ->
      Alcotest.(check bool) "delay within the jitter envelope" true
        (d >= 0.01 && d < 0.015))
    delays;
  (* the retry-storm fix: clients bounced together wake up apart *)
  Alcotest.(check int) "delays pairwise distinct across digests" 8
    (List.length (List.sort_uniq compare delays));
  Alcotest.(check bool) "deterministic for a given (digest, attempt)" true
    (delays
    = List.map
        (fun d -> Client.busy_delay ~digest:d ~attempt:1 ~retry_after:0.01)
        digests);
  let d0 = List.hd digests in
  Alcotest.(check bool) "exponential in attempt" true
    (Client.busy_delay ~digest:d0 ~attempt:3 ~retry_after:0.01
    > Client.busy_delay ~digest:d0 ~attempt:1 ~retry_after:0.01)

(* ---------------- worker crash -> restart -> quarantine ------------- *)

let crash_name = "res/crash"

let crash_job () =
  let prog =
    Ir.program ~tenv:Ctype.empty_tenv ~globals:[]
      [ Ir.func "main" [] Ctype.I64 [ Ir.Return (Some (Ir.i 13)) ] ]
  in
  Job.make ~name:crash_name ~group:"res" ~variant:"subheap"
    ~config:Vm.ifp_subheap prog

let test_worker_crash_quarantine () =
  let dir = temp_dir "ifp-res-crash" in
  let socket = Filename.concat dir "s.sock" in
  let runner (j : Job.t) =
    if j.Job.name = crash_name then raise (Server.Worker_crash "injected")
    else Engine.default_runner j
  in
  let r =
    start_server ~workers:1 ~poison_threshold:2 ~runner ~socket ()
  in
  let stopped = ref false in
  let stop () =
    if not !stopped then begin
      stopped := true;
      stop_server r
    end
    else Events.Null
  in
  Fun.protect ~finally:(fun () -> ignore (stop ())) @@ fun () ->
  let c = Client.connect ~socket ~tenant:"quarantine" () in
  (* healthy baseline *)
  let comp = Client.submit_wait c (job 1) in
  Alcotest.(check bool) "healthy job served" true
    (String.equal comp.Protocol.c_result_bytes (direct_bytes (job 1)));
  (* the poisonous job: crash 1 requeues it, crash 2 quarantines it —
     one submit, two worker deaths, then a Poisoned verdict *)
  (match Client.submit c (crash_job ()) with
  | _ -> Alcotest.fail "crash job should be quarantined"
  | exception Client.Poisoned p ->
    Alcotest.(check int) "crash count at quarantine" 2 p.Protocol.p_crashes);
  (* the fleet healed: the restarted worker serves the next job *)
  let comp = Client.submit_wait c (job 2) in
  Alcotest.(check bool) "worker restarted and serving" true
    (String.equal comp.Protocol.c_result_bytes (direct_bytes (job 2)));
  (* quarantine is sticky: a re-submit is answered immediately, without
     touching another worker *)
  (match Client.submit c (crash_job ()) with
  | _ -> Alcotest.fail "quarantine should be sticky"
  | exception Client.Poisoned p ->
    Alcotest.(check int) "sticky crash count" 2 p.Protocol.p_crashes);
  Client.close c;
  let snap = stop () in
  Alcotest.(check int) "worker_crashes" 2 (assoc_int "worker_crashes" snap);
  Alcotest.(check int) "worker_restarts" 2 (assoc_int "worker_restarts" snap);
  Alcotest.(check int) "crash_requeues" 1 (assoc_int "crash_requeues" snap);
  Alcotest.(check int) "poisoned_replies" 2
    (assoc_int "poisoned_replies" snap);
  rm_rf dir

(* ---------------- idle / slow-loris reaper ---------------- *)

let frame_header ~len ~crc =
  let b = Bytes.create 8 in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.set_int32_be b 4 crc;
  Bytes.to_string b

let write_raw fd s =
  let b = Bytes.of_string s in
  ignore (Unix.write fd b 0 (Bytes.length b))

let wait_eof what fd =
  let buf = Bytes.create 64 in
  let deadline = Unix.gettimeofday () +. 8.0 in
  let rec go () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail (what ^ ": connection was not reaped")
    else
      match Unix.select [ fd ] [] [] 0.2 with
      | [], _, _ -> go ()
      | _ -> (
        match Unix.read fd buf 0 64 with
        | 0 -> ()  (* EOF: the reaper closed us *)
        | _ -> go ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let test_slow_loris_reaped () =
  let dir = temp_dir "ifp-res-loris" in
  let socket = Filename.concat dir "s.sock" in
  let r =
    start_server ~workers:1 ~idle_timeout:0.4 ~io_timeout:0.4 ~socket ()
  in
  let stopped = ref false in
  let stop () =
    if not !stopped then begin
      stopped := true;
      stop_server r
    end
    else Events.Null
  in
  Fun.protect ~finally:(fun () -> ignore (stop ())) @@ fun () ->
  (* tenant 1: a half-open handshake that never says hello *)
  let idle_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect idle_fd (Unix.ADDR_UNIX socket);
  (* tenant 2: handshakes, then dribbles a frame header claiming 64
     bytes and stalls after 8 — a slow-loris mid-frame *)
  let loris = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect loris (Unix.ADDR_UNIX socket);
  Frame.write loris
    (Protocol.encode_handshake
       {
         Protocol.hs_magic = Protocol.magic;
         hs_version = Protocol.version;
         hs_tenant = "loris";
         hs_weight = 1;
       });
  (match Frame.read loris with
  | Some payload -> (
    match Protocol.decode_reply payload with
    | Protocol.Welcome _ -> ()
    | _ -> Alcotest.fail "loris handshake refused")
  | None -> Alcotest.fail "no handshake reply");
  write_raw loris (frame_header ~len:64 ~crc:0l);
  write_raw loris (String.make 8 'z');
  (* a healthy tenant is unaffected while both stallers hang *)
  let c = Client.connect ~socket ~tenant:"healthy" () in
  let comp = Client.submit_wait c (job 3) in
  Alcotest.(check bool) "healthy tenant served during the stall" true
    (String.equal comp.Protocol.c_result_bytes (direct_bytes (job 3)));
  Client.close c;
  wait_eof "half-open handshake" idle_fd;
  wait_eof "slow-loris frame" loris;
  Unix.close idle_fd;
  Unix.close loris;
  let snap = stop () in
  Alcotest.(check bool) "both stallers counted" true
    (assoc_int "reaped_connections" snap >= 2);
  rm_rf dir

(* ---------------- resilient client through the chaos proxy ---------- *)

(* pick the first seed whose very first client->server chunk of the
   first connection is dropped: the run is then guaranteed to exercise
   recovery (and the fault counters), not just pass bytes through *)
let rec dropping_plan seed =
  let p = Chaosproxy.plan ~drop_rate:0.15 ~corrupt_rate:0.15 ~seed () in
  if Chaosproxy.decide p ~conn:0 ~dir:Chaosproxy.C2s ~chunk:0 = Chaosproxy.Drop
  then p
  else dropping_plan (Int64.add seed 1L)

let test_resilient_through_chaos () =
  let dir = temp_dir "ifp-res-chaos" in
  let socket = Filename.concat dir "s.sock" in
  let r = start_server ~workers:2 ~socket () in
  let plan = dropping_plan 1L in
  let listen = socket ^ ".chaos" in
  let proxy = Chaosproxy.start ~plan ~listen ~upstream:socket () in
  (* stop everything even on assertion failure: a later test forks, and
     Unix.fork refuses while worker domains are still running *)
  Fun.protect
    ~finally:(fun () ->
      Chaosproxy.stop proxy;
      ignore (stop_server r);
      rm_rf dir)
    (fun () ->
      let breaker = Breaker.create ~reset_timeout:0.1 () in
      let rt =
        Client.Resilient.create
          (Client.Resilient.config ~connect_timeout:2.0 ~io_timeout:5.0
             ~call_budget:60.0 ~reconnect_base:0.01 ~breaker ~socket:listen
             ~tenant:"storm" ())
      in
      List.iter
        (fun i ->
          let j = job (300 + i) in
          let comp = Client.Resilient.submit rt j in
          Alcotest.(check bool)
            (Printf.sprintf "job %d byte-identical through hostile network" i)
            true
            (String.equal comp.Protocol.c_result_bytes (direct_bytes j)))
        (List.init 6 Fun.id);
      Alcotest.(check bool) "client recovered at least once" true
        (Client.Resilient.reconnects rt >= 1);
      Client.Resilient.close rt;
      Alcotest.(check bool) "the plan fired" true
        (assoc_int "faults_injected" (Chaosproxy.stats_json proxy) >= 1))

(* ---------------- SIGKILL mid-burst -> restart -> converge ---------- *)

(* create_process, not fork: other tests in this binary have spawned
   (and joined) domains, after which Unix.fork is refused in OCaml 5 *)
let start_child ~socket ~cache ~journal =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process child_exe
      [| child_exe; socket; cache; journal; "2" |]
      Unix.stdin devnull devnull
  in
  Unix.close devnull;
  let rec wait n =
    if Sys.file_exists socket then ()
    else if n <= 0 then Alcotest.fail "service_child did not bind"
    else begin
      Thread.delay 0.02;
      wait (n - 1)
    end
  in
  wait 400;
  pid

let test_kill_restart_durability () =
  let dir = temp_dir "ifp-res-kill" in
  let socket = Filename.concat dir "s.sock" in
  let cache = Filename.concat dir "cache" in
  let journal = Filename.concat dir "j.wal" in
  let jobs = Array.init 10 (fun i -> job (400 + i)) in
  let pid1 = start_child ~socket ~cache ~journal in
  let results = Array.make (Array.length jobs) None in
  let burst_error = ref None in
  let rt =
    Client.Resilient.create
      (Client.Resilient.config ~connect_timeout:2.0 ~io_timeout:10.0
         ~call_budget:60.0 ~reconnect_base:0.02
         ~breaker:(Breaker.create ~reset_timeout:0.2 ())
         ~socket ~tenant:"burst" ())
  in
  (* the burst: paced so the SIGKILL below lands mid-burst, with
     submits in flight on both sides of the crash *)
  let th =
    Thread.create
      (fun () ->
        try
          Array.iteri
            (fun i j ->
              results.(i) <- Some (Client.Resilient.submit rt j);
              Thread.delay 0.05)
            jobs
        with e -> burst_error := Some (Printexc.to_string e))
      ()
  in
  Thread.delay 0.15;
  Unix.kill pid1 Sys.sigkill;
  ignore (Unix.waitpid [] pid1);
  let pid2 = start_child ~socket ~cache ~journal in
  Thread.join th;
  (match !burst_error with
  | Some e -> Alcotest.fail ("burst client failed: " ^ e)
  | None -> ());
  Array.iteri
    (fun i j ->
      match results.(i) with
      | None -> Alcotest.failf "job %d never completed" i
      | Some comp ->
        Alcotest.(check bool)
          (Printf.sprintf "job %d byte-identical across the crash" i)
          true
          (String.equal comp.Protocol.c_result_bytes (direct_bytes j)))
    jobs;
  Alcotest.(check bool) "the burst actually crossed the restart" true
    (Client.Resilient.reconnects rt >= 1);
  Client.Resilient.close rt;
  (* the restarted daemon serves every pre-crash result byte-identically
     (journal replay is authoritative) *)
  let c = Client.connect ~socket ~tenant:"replay" () in
  Array.iter
    (fun j ->
      let comp = Client.submit_wait c j in
      Alcotest.(check bool) "replayed result byte-identical" true
        (String.equal comp.Protocol.c_result_bytes (direct_bytes j)))
    jobs;
  Client.close c;
  (* SIGTERM is the success path: drain and exit 0 *)
  Unix.kill pid2 Sys.sigterm;
  (match Unix.waitpid [] pid2 with
  | _, Unix.WEXITED 0 -> ()
  | _, st ->
    Alcotest.failf "service_child did not drain cleanly (%s)"
      (match st with
      | Unix.WEXITED n -> Printf.sprintf "exit %d" n
      | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
      | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
  rm_rf dir

let tests =
  [
    Alcotest.test_case "breaker state machine" `Quick
      test_breaker_state_machine;
    Alcotest.test_case "chaos plan determinism" `Quick
      test_chaos_plan_determinism;
    Alcotest.test_case "busy backoff desynchronized" `Quick
      test_busy_delay_desync;
    Alcotest.test_case "worker crash restart + quarantine" `Quick
      test_worker_crash_quarantine;
    Alcotest.test_case "slow-loris and idle conns reaped" `Quick
      test_slow_loris_reaped;
    Alcotest.test_case "resilient client through chaos proxy" `Quick
      test_resilient_through_chaos;
    Alcotest.test_case "SIGKILL mid-burst restart durability" `Quick
      test_kill_restart_durability;
  ]
