(* Tests for the future-work extensions: the mixed allocator, the
   layout-walker ablation, and allocation-wrapper type inference. *)

open Core
module J = Ifp_juliet.Juliet
module Registry = Ifp_workloads.Registry

let test_mixed_allocator_semantics () =
  (* every workload must still produce the baseline checksum under the
     mixed allocator *)
  List.iter
    (fun name ->
      let wl = Option.get (Registry.find name) in
      let prog = Lazy.force wl.Ifp_workloads.Workload.prog in
      let base = Vm.run ~config:Vm.baseline prog in
      let mixed = Vm.run ~config:Vm.ifp_mixed prog in
      match (base.Vm.outcome, mixed.Vm.outcome) with
      | Vm.Finished a, Vm.Finished b ->
        Alcotest.(check int64) (name ^ " checksum") a b
      | _ -> Alcotest.fail (name ^ " did not finish"))
    [ "em3d"; "treeadd"; "health"; "bzip2" ]

let test_mixed_beats_subheap_on_em3d_memory () =
  (* the policy goal: array-heavy em3d avoids subheap fragmentation *)
  let wl = Option.get (Registry.find "em3d") in
  let prog = Lazy.force wl.Ifp_workloads.Workload.prog in
  let fp cfg = (Vm.run ~config:cfg prog).Vm.mem_footprint in
  Alcotest.(check bool) "mixed < subheap" true
    (fp Vm.ifp_mixed < fp Vm.ifp_subheap)

let test_mixed_keeps_subheap_speed_on_treeadd () =
  let wl = Option.get (Registry.find "treeadd") in
  let prog = Lazy.force wl.Ifp_workloads.Workload.prog in
  let cyc cfg = (Vm.run ~config:cfg prog).Vm.counters.Counters.cycles in
  Alcotest.(check bool) "mixed << wrapped" true
    (cyc Vm.ifp_mixed < cyc Vm.ifp_wrapped)

let test_mixed_protection_complete () =
  let _, s = J.run_all ~config:Vm.ifp_mixed (J.all_cases ()) in
  Alcotest.(check int) "mixed detects all" s.J.total s.J.detected;
  Alcotest.(check int) "no false positives" 0 s.J.good_failures

let test_no_narrowing_object_granularity () =
  let cases = J.all_cases () in
  let outcomes, s = J.run_all ~config:(Vm.no_narrowing Vm.Alloc_subheap) cases in
  (* exactly the intra-object/nested-intra memory-round-trip cases are lost *)
  Alcotest.(check int) "64/72" 64 s.J.detected;
  List.iter
    (fun (o : J.outcome) ->
      match o.bad_verdict with
      | J.Silent ->
        Alcotest.(check bool) (o.case.id ^ " is intra-object via-global") true
          ((o.case.kind = J.Intra_object || o.case.kind = J.Nested_intra)
          && (o.case.flow = J.Via_global || o.case.flow = J.Via_field))
      | _ -> ())
    outcomes

let test_promote_narrow_flag () =
  (* the architectural knob itself: promote with ~narrow:false returns
     object bounds even for subobject pointers *)
  let mem = Memory.create () in
  Memory.map mem ~base:0x1000L ~size:65536;
  Memory.map mem ~base:0x200000L ~size:65536;
  Memory.map mem ~base:0x300000L ~size:65536;
  let meta =
    Meta.create ~memory:mem ~mac_key:5L ~layout_region:(0x200000L, 65536)
      ~global_table:(0x300000L, 64) ()
  in
  let tenv =
    Ctype.declare Ctype.empty_tenv
      {
        Ctype.sname = "two";
        fields =
          [ { fname = "a"; fty = Ctype.Array (Ctype.I8, 8) };
            { fname = "b"; fty = Ctype.Array (Ctype.I8, 8) } ];
      }
  in
  let lt = Meta.intern_layout meta tenv (Ctype.Struct "two") in
  let p = Meta.Local_offset.register meta ~base:0x1000L ~size:16 ~layout_ptr:lt in
  let q = Insn.ifpidx p 1 in
  let narrowed = Promote.run meta q in
  let wide = Promote.run ~narrow:false meta q in
  Alcotest.(check bool) "narrowed is subobject" true
    (Bounds.equal narrowed.Promote.bounds (Bounds.make ~lo:0x1000L ~hi:0x1008L));
  Alcotest.(check bool) "disabled falls back to object" true
    (Bounds.equal wide.Promote.bounds (Bounds.make ~lo:0x1000L ~hi:0x1010L));
  Alcotest.(check int) "no walk performed" 0 wide.Promote.walk_elems

let test_infer_alloc_types_pass () =
  let open Ir in
  let tenv =
    Ctype.declare Ctype.empty_tenv
      {
        Ctype.sname = "pair";
        fields =
          [ { fname = "a"; fty = Ctype.I64 }; { fname = "b"; fty = Ctype.I64 } ];
      }
  in
  let pp = Ctype.Ptr (Ctype.Struct "pair") in
  let prog =
    program ~tenv ~globals:[]
      [
        func "main" [] Ctype.I64
          [
            Let ("p", pp, Cast (pp, Malloc_bytes (i 16)));
            Store (Ctype.I64, Gep (Ctype.Struct "pair", v "p", [ fld "a" ]), i 1);
            Return (Some (i 0));
          ];
      ]
  in
  let _, off = Instrument.run prog in
  Alcotest.(check int) "no inference by default" 0 off.alloc_types_inferred;
  let p', on =
    Instrument.run ~config:{ Instrument.infer_alloc_types = true } prog
  in
  Alcotest.(check int) "one site inferred" 1 on.alloc_types_inferred;
  (* the rewritten program still runs and attaches a layout table *)
  let r = Vm.run ~config:{ Vm.ifp_subheap with infer_alloc_types = true } prog in
  (match r.Vm.outcome with
  | Vm.Finished _ -> ()
  | _ -> Alcotest.fail "inferred program failed");
  Alcotest.(check int) "heap object has layout" 1 r.Vm.counters.heap_objs_layout;
  ignore p'

let test_infer_recovers_wolfcrypt_layouts () =
  let wl = Option.get (Registry.find "wolfcrypt-dh") in
  let prog = Lazy.force wl.Ifp_workloads.Workload.prog in
  let lt cfg = (Vm.run ~config:cfg prog).Vm.counters.Counters.heap_objs_layout in
  Alcotest.(check int) "no layouts without inference" 0 (lt Vm.ifp_subheap);
  Alcotest.(check bool) "layouts recovered with inference" true
    (lt { Vm.ifp_subheap with infer_alloc_types = true } > 0)

let test_infer_preserves_semantics () =
  List.iter
    (fun name ->
      let wl = Option.get (Registry.find name) in
      let prog = Lazy.force wl.Ifp_workloads.Workload.prog in
      let base = Vm.run ~config:Vm.baseline prog in
      let inf =
        Vm.run ~config:{ Vm.ifp_subheap with infer_alloc_types = true } prog
      in
      match (base.Vm.outcome, inf.Vm.outcome) with
      | Vm.Finished a, Vm.Finished b ->
        Alcotest.(check int64) (name ^ " checksum") a b
      | _ -> Alcotest.fail (name ^ " did not finish"))
    [ "wolfcrypt-dh"; "health"; "coremark"; "bzip2" ]

let tests =
  [
    Alcotest.test_case "mixed allocator semantics" `Slow
      test_mixed_allocator_semantics;
    Alcotest.test_case "mixed fixes em3d memory" `Slow
      test_mixed_beats_subheap_on_em3d_memory;
    Alcotest.test_case "mixed keeps treeadd speed" `Slow
      test_mixed_keeps_subheap_speed_on_treeadd;
    Alcotest.test_case "mixed protection complete" `Slow
      test_mixed_protection_complete;
    Alcotest.test_case "no-narrowing = object granularity" `Slow
      test_no_narrowing_object_granularity;
    Alcotest.test_case "promote narrow flag" `Quick test_promote_narrow_flag;
    Alcotest.test_case "wrapper inference pass" `Quick test_infer_alloc_types_pass;
    Alcotest.test_case "inference recovers wolfcrypt layouts" `Slow
      test_infer_recovers_wolfcrypt_layouts;
    Alcotest.test_case "inference preserves semantics" `Slow
      test_infer_preserves_semantics;
  ]
