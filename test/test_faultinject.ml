(* Tests for lib/faultinject: every fault class lands and is classified
   under the Ifp variant, Baseline shows the expected silent corruption
   for heap smashes, injection is deterministic per seed, and fault
   campaigns are engine-clean (serial = parallel, plans in the digest). *)

open Core
module Fault = Ifp_faultinject.Fault
module Classify = Ifp_faultinject.Classify
module Victim = Ifp_faultinject.Victim
module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine

let victim = lazy (Victim.program ())

let observed (r : Vm.result) =
  {
    Classify.outcome =
      (match r.Vm.outcome with
      | Vm.Finished n -> `Finished n
      | Vm.Trapped t -> `Trapped t
      | Vm.Aborted m -> `Aborted (Vm.abort_reason_string m));
    output = r.Vm.output;
  }

let run_planned config plan =
  Vm.run ~config:{ config with Vm.fault_plan = plan } (Lazy.force victim)

let classify_seed config cls seed =
  let plan = Fault.default_plan cls ~seed:(Int64.of_int seed) in
  let golden = observed (run_planned config None) in
  let r = run_planned config (Some plan) in
  let fired = r.Vm.fault_injections <> [] in
  (fired, Classify.classify ~cls ~fired ~golden ~faulted:(observed r))

(* Every class, on the full Ifp variant: the fault fires, the harness
   survives, and the run is classified. The defended classes — tag,
   bounds, metadata, MAC, stale metadata — must be detected with a
   class-appropriate trap; a heap smash hits unprotected data and may
   land anywhere in the three-way split. *)
let test_ifp_every_class_classified () =
  List.iter
    (fun cls ->
      List.iter
        (fun seed ->
          let name = Printf.sprintf "%s/%d" (Fault.class_name cls) seed in
          let fired, c = classify_seed Vm.ifp_wrapped cls seed in
          Alcotest.(check bool) (name ^ ": fired under Ifp") true fired;
          match cls with
          | Fault.Heap_smash ->
            Alcotest.(check bool) (name ^ ": classified") true
              (match c with
              | Classify.Detected _ | Classify.Silent_corruption
              | Classify.Benign ->
                true
              | Classify.Not_fired | Classify.Aborted _ -> false)
          | _ ->
            Alcotest.(check bool)
              (name ^ ": detected with the expected trap")
              true
              (match c with
              | Classify.Detected { expected; _ } -> expected
              | _ -> false))
        [ 0; 1 ])
    Fault.all_classes

(* Baseline has no defense: heap smashes must produce silent corruption
   on at least one seed (never a trap — there is no hardware to trap). *)
let test_baseline_heap_smash_is_silent () =
  let seeds = [ 0; 1; 2; 3; 4 ] in
  let results =
    List.map (fun s -> classify_seed Vm.baseline Fault.Heap_smash s) seeds
  in
  List.iter
    (fun (_, c) ->
      Alcotest.(check bool) "baseline never detects" false
        (match c with Classify.Detected _ -> true | _ -> false))
    results;
  Alcotest.(check bool) "some smash silently corrupts baseline" true
    (List.exists (fun (_, c) -> c = Classify.Silent_corruption) results)

(* Same plan, same program: identical corruption record, outcome and
   output — the property that makes campaign results cacheable. *)
let test_same_seed_same_classification () =
  List.iter
    (fun cls ->
      let plan = Fault.default_plan cls ~seed:7L in
      let r1 = run_planned Vm.ifp_wrapped (Some plan) in
      let r2 = run_planned Vm.ifp_wrapped (Some plan) in
      Alcotest.(check (list string))
        (Fault.class_name cls ^ ": same injections")
        r1.Vm.fault_injections r2.Vm.fault_injections;
      Alcotest.(check bool)
        (Fault.class_name cls ^ ": same outcome")
        true
        (r1.Vm.outcome = r2.Vm.outcome && r1.Vm.output = r2.Vm.output))
    Fault.all_classes

(* A fault plan is part of the job identity: a planned job must never
   share a cache entry with the unplanned run of the same config. *)
let test_plan_in_job_digest () =
  let prog = Lazy.force victim in
  let plain =
    Job.make ~name:"v/plain" ~group:"v" ~variant:"ifp" ~config:Vm.ifp_wrapped
      prog
  in
  let planned seed =
    Job.make ~name:"v/planned" ~group:"v" ~variant:"ifp"
      ~config:
        {
          Vm.ifp_wrapped with
          Vm.fault_plan = Some (Fault.default_plan Fault.Tag_flip ~seed);
        }
      prog
  in
  Alcotest.(check bool) "plan changes digest" false
    (Job.digest plain = Job.digest (planned 0L));
  Alcotest.(check bool) "seed changes digest" false
    (Job.digest (planned 0L) = Job.digest (planned 1L))

(* A small fault campaign through the engine is worker-count invariant. *)
let test_campaign_serial_parallel () =
  let prog = Lazy.force victim in
  let jobs =
    List.concat_map
      (fun cls ->
        List.map
          (fun seed ->
            Job.make
              ~name:(Printf.sprintf "%s/%d" (Fault.class_name cls) seed)
              ~group:"fault" ~variant:"ifp"
              ~config:
                {
                  Vm.ifp_wrapped with
                  Vm.fault_plan =
                    Some (Fault.default_plan cls ~seed:(Int64.of_int seed));
                }
              prog)
          [ 0; 1 ])
      [ Fault.Tag_flip; Fault.Mac_flip; Fault.Heap_smash ]
  in
  let serial, s_stats = Engine.run ~workers:1 jobs in
  let parallel, p_stats = Engine.run ~workers:4 jobs in
  Alcotest.(check int) "all completed serially" (List.length jobs)
    s_stats.Engine.completed;
  Alcotest.(check int) "all completed in parallel" (List.length jobs)
    p_stats.Engine.completed;
  Array.iteri
    (fun idx (s : Engine.outcome) ->
      let p = parallel.(idx) in
      Alcotest.(check string) "submission order kept" s.Engine.job.Job.name
        p.Engine.job.Job.name;
      Alcotest.(check bool)
        (s.Engine.job.Job.name ^ ": results identical")
        true
        (s.Engine.result = p.Engine.result))
    serial

let tests =
  [
    Alcotest.test_case "Ifp: every class fires and is classified" `Quick
      test_ifp_every_class_classified;
    Alcotest.test_case "Baseline: heap smash corrupts silently" `Quick
      test_baseline_heap_smash_is_silent;
    Alcotest.test_case "same seed, same classification" `Quick
      test_same_seed_same_classification;
    Alcotest.test_case "fault plan is part of the job digest" `Quick
      test_plan_in_job_digest;
    Alcotest.test_case "fault campaign: serial = parallel" `Slow
      test_campaign_serial_parallel;
  ]
