(* Tests for the MiniC typechecker and the instrumentation pass. *)

open Core
open Ir

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "pair";
      fields =
        [ { fname = "a"; fty = Ctype.I64 }; { fname = "b"; fty = Ctype.I64 } ];
    }

let prog ?(globals = []) funcs = program ~tenv ~globals funcs

let check_ok p = Typecheck.check_program p

let check_fails p =
  match Typecheck.check_program p with
  | () -> Alcotest.fail "expected Type_error"
  | exception Typecheck.Type_error _ -> ()

let test_accepts_valid () =
  check_ok
    (prog
       [
         func "main" [] Ctype.I64
           [
             Let ("p", Ctype.Ptr (Ctype.Struct "pair"), Malloc (Ctype.Struct "pair", i 1));
             Store (Ctype.I64, Gep (Ctype.Struct "pair", v "p", [ fld "a" ]), i 1);
             Return (Some (Load (Ctype.I64, Gep (Ctype.Struct "pair", v "p", [ fld "b" ]))));
           ];
       ])

let test_rejects_unknown_var () =
  check_fails (prog [ func "main" [] Ctype.I64 [ Return (Some (v "nope")) ] ])

let test_rejects_bad_field () =
  check_fails
    (prog
       [
         func "main" [] Ctype.I64
           [
             Let ("p", Ctype.Ptr (Ctype.Struct "pair"), Malloc (Ctype.Struct "pair", i 1));
             Return (Some (Load (Ctype.I64, Gep (Ctype.Struct "pair", v "p", [ fld "zz" ]))));
           ];
       ])

let test_rejects_aggregate_load () =
  check_fails
    (prog
       [
         func "main" [] Ctype.I64
           [
             Let ("p", Ctype.Ptr (Ctype.Struct "pair"), Malloc (Ctype.Struct "pair", i 1));
             Expr (Load (Ctype.Struct "pair", v "p"));
             Return (Some (i 0));
           ];
       ])

let test_rejects_arity_mismatch () =
  check_fails
    (prog
       [
         func "f" [ ("x", Ctype.I64) ] Ctype.I64 [ Return (Some (v "x")) ];
         func "main" [] Ctype.I64 [ Return (Some (Call ("f", []))) ];
       ])

let test_rejects_ptr_type_mismatch () =
  check_fails
    (prog
       [
         func "f" [ ("x", Ctype.Ptr Ctype.I64) ] Ctype.Void [ Return None ];
         func "main" [] Ctype.I64
           [
             Let ("p", Ctype.Ptr Ctype.I8, Malloc (Ctype.I8, i 4));
             Expr (Call ("f", [ v "p" ]));
             Return (Some (i 0));
           ];
       ])

let test_void_ptr_compat () =
  check_ok
    (prog
       [
         func "f" [ ("x", Ctype.Ptr Ctype.Void) ] Ctype.Void [ Return None ];
         func "main" [] Ctype.I64
           [
             Let ("p", Ctype.Ptr Ctype.I8, Malloc (Ctype.I8, i 4));
             Expr (Call ("f", [ v "p" ]));
             Return (Some (i 0));
           ];
       ])

let test_rejects_break_outside_loop () =
  check_fails (prog [ func "main" [] Ctype.I64 [ Break; Return (Some (i 0)) ] ])

let test_rejects_addr_of_register_local () =
  check_fails
    (prog
       [
         func "main" [] Ctype.I64
           [ Let ("x", Ctype.I64, i 1); Expr (Addr_local "x"); Return (Some (i 0)) ];
       ])

let test_layout_path () =
  let t =
    Ctype.declare tenv
      {
        Ctype.sname = "outer";
        fields =
          [ { fname = "ps"; fty = Ctype.Array (Ctype.Struct "pair", 3) } ];
      }
  in
  let path =
    Typecheck.layout_path t (Ctype.Struct "outer")
      [ fld "ps"; at (i 1); fld "b" ]
  in
  Alcotest.(check bool) "path shape" true
    (path = [ Layout.Field "ps"; Layout.Index; Layout.Field "b" ]);
  (* leading pointer index disappears from the layout path *)
  let path2 = Typecheck.layout_path t (Ctype.Struct "pair") [ at (i 4); fld "a" ] in
  Alcotest.(check bool) "leading index dropped" true
    (path2 = [ Layout.Field "a" ])

(* ---- instrumentation pass ---- *)

let test_static_safety_analysis () =
  (* constant in-bounds accesses: no registration needed *)
  let f_safe =
    func "f" [] Ctype.I64
      [
        Decl_local ("a", Ctype.Array (Ctype.I64, 4));
        Store (Ctype.I64, Gep (Ctype.Array (Ctype.I64, 4), Addr_local "a", [ at (i 2) ]), i 5);
        Return (Some (Load (Ctype.I64, Gep (Ctype.Array (Ctype.I64, 4), Addr_local "a", [ at (i 2) ]))));
      ]
  in
  Alcotest.(check bool) "static safe -> not registered" false
    (Instrument.local_needs_registration tenv f_safe "a");
  (* dynamic index: must be registered *)
  let f_dyn =
    func "g" [ ("k", Ctype.I64) ] Ctype.I64
      [
        Decl_local ("a", Ctype.Array (Ctype.I64, 4));
        Return (Some (Load (Ctype.I64, Gep (Ctype.Array (Ctype.I64, 4), Addr_local "a", [ at (v "k") ]))));
      ]
  in
  Alcotest.(check bool) "dynamic index -> registered" true
    (Instrument.local_needs_registration tenv f_dyn "a");
  (* escaping address: must be registered *)
  let f_escape =
    func "h" [] Ctype.I64
      [
        Decl_local ("a", Ctype.Array (Ctype.I64, 4));
        Expr (Call ("sink", [ Cast (Ctype.Ptr Ctype.I64, Addr_local "a") ]));
        Return (Some (i 0));
      ]
  in
  Alcotest.(check bool) "escape -> registered" true
    (Instrument.local_needs_registration tenv f_escape "a");
  (* constant out-of-bounds index is not statically safe *)
  let f_oob =
    func "k" [] Ctype.I64
      [
        Decl_local ("a", Ctype.Array (Ctype.I64, 4));
        Store (Ctype.I64, Gep (Ctype.Array (Ctype.I64, 4), Addr_local "a", [ at (i 9) ]), i 5);
        Return (Some (i 0));
      ]
  in
  Alcotest.(check bool) "const oob -> registered" true
    (Instrument.local_needs_registration tenv f_oob "a")

let count_stmts pred (f : Ir.func) =
  let n = ref 0 in
  let rec go s =
    if pred s then incr n;
    match s with
    | If (_, a, b) ->
      List.iter go a;
      List.iter go b
    | While (_, b) -> List.iter go b
    | _ -> ()
  in
  List.iter go f.body;
  !n

let test_pass_inserts_registration_and_promotes () =
  let p =
    prog
      [
        func "sink" [ ("x", Ctype.Ptr Ctype.I64) ] Ctype.Void [ Return None ];
        func "main" [] Ctype.I64
          [
            Decl_local ("a", Ctype.Array (Ctype.I64, 4));
            Expr (Call ("sink", [ Gep (Ctype.Array (Ctype.I64, 4), Addr_local "a", [ at (i 0) ]) ]));
            Let ("pp", Ctype.Ptr (Ctype.Ptr Ctype.I64), Malloc (Ctype.Ptr Ctype.I64, i 1));
            Let ("q", Ctype.Ptr Ctype.I64, Load (Ctype.Ptr Ctype.I64, v "pp"));
            Return (Some (i 0));
          ];
      ]
  in
  let p', rep = Instrument.run p in
  Alcotest.(check int) "one local registered" 1 rep.Instrument.locals_registered;
  Alcotest.(check bool) "promote inserted for pointer load" true
    (rep.promotes_inserted >= 1);
  let mainf = Option.get (Ir.find_func p' "main") in
  Alcotest.(check int) "register stmt present" 1
    (count_stmts (function Ifp_register_local _ -> true | _ -> false) mainf);
  Alcotest.(check int) "deregister before return" 1
    (count_stmts (function Ifp_deregister_local _ -> true | _ -> false) mainf)

let test_pass_leaves_legacy_functions () =
  let p =
    prog
      [
        func ~instrumented:false "lib" [ ("p", Ctype.Ptr Ctype.I64) ] Ctype.I64
          [ Return (Some (Load (Ctype.I64, v "p"))) ];
        func "main" [] Ctype.I64 [ Return (Some (i 0)) ];
      ]
  in
  let p', _ = Instrument.run p in
  let libf = Option.get (Ir.find_func p' "lib") in
  let has_promote = ref false in
  let rec scan_expr = function
    | Ifp_promote _ -> has_promote := true
    | Load (_, e) | Unop (_, e) | Cast (_, e) -> scan_expr e
    | Binop (_, a, b) -> scan_expr a; scan_expr b
    | _ -> ()
  in
  List.iter
    (function Return (Some e) -> scan_expr e | _ -> ())
    libf.body;
  Alcotest.(check bool) "no promote in legacy code" false !has_promote

let test_pass_marks_globals () =
  let g1 = global "taken" (Ctype.Array (Ctype.I64, 8)) in
  let g2 = global "byname" Ctype.I64 in
  let p =
    program ~tenv ~globals:[ g1; g2 ]
      [
        func "main" [] Ctype.I64
          [
            Expr (Gep (Ctype.Array (Ctype.I64, 8), Addr_global "taken", [ at (i 1) ]));
            Store_global ("byname", i 3);
            Return (Some (Load_global "byname"));
          ];
      ]
  in
  let instrumented, rep = Instrument.run p in
  Alcotest.(check int) "only address-taken global registered" 1
    rep.Instrument.globals_registered;
  let out name = Option.get (find_global instrumented name) in
  Alcotest.(check bool) "flag set" true (out "taken").registered;
  Alcotest.(check bool) "by-name global untouched" false (out "byname").registered;
  (* the pass must not mutate its input: the source program is shared
     with concurrent runs and content-digest computations *)
  Alcotest.(check bool) "input program untouched" false g1.registered

let tests =
  [
    Alcotest.test_case "accepts valid program" `Quick test_accepts_valid;
    Alcotest.test_case "rejects unknown var" `Quick test_rejects_unknown_var;
    Alcotest.test_case "rejects bad field" `Quick test_rejects_bad_field;
    Alcotest.test_case "rejects aggregate load" `Quick test_rejects_aggregate_load;
    Alcotest.test_case "rejects arity mismatch" `Quick test_rejects_arity_mismatch;
    Alcotest.test_case "rejects pointer mismatch" `Quick
      test_rejects_ptr_type_mismatch;
    Alcotest.test_case "void* compatible" `Quick test_void_ptr_compat;
    Alcotest.test_case "rejects break outside loop" `Quick
      test_rejects_break_outside_loop;
    Alcotest.test_case "rejects & of register local" `Quick
      test_rejects_addr_of_register_local;
    Alcotest.test_case "layout path" `Quick test_layout_path;
    Alcotest.test_case "static safety analysis" `Quick test_static_safety_analysis;
    Alcotest.test_case "pass inserts reg + promote" `Quick
      test_pass_inserts_registration_and_promotes;
    Alcotest.test_case "pass leaves legacy code" `Quick
      test_pass_leaves_legacy_functions;
    Alcotest.test_case "pass marks globals" `Quick test_pass_marks_globals;
  ]
