(* Tests for the simulated memory and the L1 cache model. *)

open Core

let mapped_mem () =
  let m = Memory.create () in
  Memory.map m ~base:0x1000L ~size:65536;
  m

let test_rw_roundtrip () =
  let m = mapped_mem () in
  Memory.write_u8 m 0x1000L 0xAB;
  Alcotest.(check int) "u8" 0xAB (Memory.read_u8 m 0x1000L);
  Memory.write_u16 m 0x1010L 0xBEEF;
  Alcotest.(check int) "u16" 0xBEEF (Memory.read_u16 m 0x1010L);
  Memory.write_u32 m 0x1020L 0xDEADBEEFL;
  Alcotest.(check int64) "u32" 0xDEADBEEFL (Memory.read_u32 m 0x1020L);
  Memory.write_u64 m 0x1030L 0x0123456789ABCDEFL;
  Alcotest.(check int64) "u64" 0x0123456789ABCDEFL (Memory.read_u64 m 0x1030L)

let test_little_endian () =
  let m = mapped_mem () in
  Memory.write_u32 m 0x1000L 0x11223344L;
  Alcotest.(check int) "LSB first" 0x44 (Memory.read_u8 m 0x1000L);
  Alcotest.(check int) "MSB last" 0x11 (Memory.read_u8 m 0x1003L)

let test_cross_page () =
  let m = mapped_mem () in
  (* straddle the boundary between two pages *)
  let a = Int64.of_int ((0x2000 - 4) + 0) in
  Memory.write_u64 m a 0xCAFEBABE12345678L;
  Alcotest.(check int64) "cross-page u64" 0xCAFEBABE12345678L (Memory.read_u64 m a)

let test_unmapped_faults () =
  let m = mapped_mem () in
  Alcotest.check_raises "read fault"
    (Memory.Fault (Memory.Unmapped, 0x999999L))
    (fun () -> ignore (Memory.read_u8 m 0x999999L));
  Alcotest.check_raises "write fault"
    (Memory.Fault (Memory.Unmapped, 0x999999L))
    (fun () -> Memory.write_u8 m 0x999999L 1)

let test_unmap () =
  let m = mapped_mem () in
  Memory.write_u64 m 0x1000L 42L;
  Memory.unmap m ~base:0x1000L ~size:4096;
  Alcotest.(check bool) "not mapped" false (Memory.is_mapped m 0x1000L);
  Alcotest.check_raises "fault after unmap"
    (Memory.Fault (Memory.Unmapped, 0x1000L))
    (fun () -> ignore (Memory.read_u8 m 0x1000L))

let test_zero_fill () =
  let m = mapped_mem () in
  Alcotest.(check int64) "fresh page zero" 0L (Memory.read_u64 m 0x1FF8L)

let test_strings () =
  let m = mapped_mem () in
  Memory.blit_string m 0x1100L "hello";
  Alcotest.(check string) "blit/read" "hello"
    (Memory.read_string m 0x1100L ~len:5)

let test_tag_bits_ignored () =
  let m = mapped_mem () in
  (* the upper 16 bits of an address are not part of the location *)
  let tagged = Int64.logor 0x1200L (Int64.shift_left 0xABCDL 48) in
  Memory.write_u64 m tagged 7L;
  Alcotest.(check int64) "tag-stripped access" 7L (Memory.read_u64 m 0x1200L)

let prop_rw_any =
  QCheck.Test.make ~count:300 ~name:"write then read returns the value"
    QCheck.(triple (int_bound 65528) int64 (int_range 0 3))
    (fun (off, value, szsel) ->
      let m = mapped_mem () in
      let bytes = [| 1; 2; 4; 8 |].(szsel) in
      let a = Int64.add 0x1000L (Int64.of_int off) in
      let v = Int64.logand value (Bits.mask (8 * bytes - 1)) in
      Memory.write_size m a ~bytes v;
      Int64.equal (Memory.read_size m a ~bytes) v)

let test_map_size_zero () =
  let m = Memory.create () in
  Memory.map m ~base:0x5000L ~size:0;
  Alcotest.(check bool) "size-0 map maps nothing" false (Memory.is_mapped m 0x5000L);
  Alcotest.(check int) "no bytes mapped" 0 (Memory.mapped_bytes m);
  Alcotest.check_raises "still faults"
    (Memory.Fault (Memory.Unmapped, 0x5000L))
    (fun () -> ignore (Memory.read_u8 m 0x5000L))

let test_map_intervals () =
  let m = Memory.create () in
  Memory.map m ~base:0x0L ~size:4096;
  Memory.map m ~base:0x2000L ~size:8192;
  (* filling the gap must merge the regions, not double-count them *)
  Memory.map m ~base:0x1000L ~size:4096;
  Memory.map m ~base:0x2000L ~size:4096 (* remap is a no-op *);
  Alcotest.(check bool) "merged region mapped" true (Memory.is_mapped m 0x3FFFL);
  Alcotest.(check int) "mapped bytes" (4 * 4096) (Memory.mapped_bytes m);
  Memory.unmap m ~base:0x1000L ~size:4096;
  Alcotest.(check bool) "hole unmapped" false (Memory.is_mapped m 0x1000L);
  Alcotest.(check bool) "left of hole intact" true (Memory.is_mapped m 0xFFFL);
  Alcotest.(check bool) "right of hole intact" true (Memory.is_mapped m 0x2000L);
  Alcotest.(check int) "mapped bytes after hole" (3 * 4096) (Memory.mapped_bytes m)

let test_torn_store () =
  (* a store straddling into an unmapped page must fault before any
     byte is committed (no torn store) *)
  let m = Memory.create () in
  Memory.map m ~base:0x1000L ~size:4096;
  Memory.write_u64 m 0x1FF0L 0x1122334455667788L;
  (match Memory.write_u64 m 0x1FFCL 0xDEADBEEFCAFEBABEL with
  | () -> Alcotest.fail "expected fault"
  | exception Memory.Fault (Memory.Unmapped, a) ->
    Alcotest.(check int64) "faults at first unmapped byte" 0x2000L a);
  Alcotest.(check int64) "earlier data intact" 0x1122334455667788L
    (Memory.read_u64 m 0x1FF0L);
  for i = 0 to 3 do
    Alcotest.(check int) "no partial bytes written" 0
      (Memory.read_u8 m (Int64.add 0x1FFCL (Int64.of_int i)))
  done

(* Byte-wise reference model: a [Bytes.t] shadow of the mapped region,
   updated little-endian on every successful store. The simulated
   memory must agree byte-for-byte after an arbitrary op sequence —
   any size, any alignment, page-straddling or faulting. *)
let model_base = 0x10000L
let model_size = 4 * 4096

let model_write model off bytes v =
  for i = 0 to bytes - 1 do
    Bytes.set model (off + i)
      (Char.chr
         (Int64.to_int
            (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let model_read model off bytes =
  let r = ref 0L in
  for i = bytes - 1 downto 0 do
    r :=
      Int64.logor
        (Int64.shift_left !r 8)
        (Int64.of_int (Char.code (Bytes.get model (off + i))))
  done;
  !r

let prop_byte_model =
  QCheck.Test.make ~count:100 ~name:"memory agrees with a byte-wise model"
    QCheck.(
      list_of_size (Gen.int_range 1 40)
        (triple (int_bound (model_size + 64)) int64 (int_range 0 7)))
    (fun ops ->
      let m = Memory.create () in
      Memory.map m ~base:model_base ~size:model_size;
      let model = Bytes.make model_size '\000' in
      let ok = ref true in
      List.iter
        (fun (off, v, sel) ->
          let bytes = [| 1; 2; 4; 8 |].(sel land 3) in
          (* half the ops are forced onto a page boundary so straddling
             paths stay exercised *)
          let off =
            if sel >= 4 then (off / 4096 * 4096) + 4096 - (bytes / 2) - 1
            else off
          in
          let a = Int64.add model_base (Int64.of_int off) in
          if off >= 0 && off + bytes <= model_size then begin
            Memory.write_size m a ~bytes v;
            model_write model off bytes v;
            if not (Int64.equal (Memory.read_size m a ~bytes) (model_read model off bytes))
            then ok := false
          end
          else begin
            (* outside (or straddling out of) the region: the write
               must fault and leave memory untouched; the final sweep
               checks the latter *)
            match Memory.write_size m a ~bytes v with
            | () -> ok := false
            | exception Memory.Fault _ -> ()
          end)
        ops;
      for i = 0 to model_size - 1 do
        if
          Memory.read_u8 m (Int64.add model_base (Int64.of_int i))
          <> Char.code (Bytes.get model i)
        then ok := false
      done;
      !ok)

let test_cache_hit_miss () =
  let c = Cache.create () in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0x1000L Cache.Load);
  Alcotest.(check bool) "warm hit" true (Cache.access c 0x1000L Cache.Load);
  Alcotest.(check bool) "same line hit" true (Cache.access c 0x103FL Cache.Load);
  Alcotest.(check bool) "next line miss" false (Cache.access c 0x1040L Cache.Load);
  Alcotest.(check int) "accesses" 4 (Cache.accesses c);
  Alcotest.(check int) "misses" 2 (Cache.misses c)

let test_cache_lru_eviction () =
  (* tiny cache: 2 ways x 1 set of 64-byte lines *)
  let c = Cache.create ~size_bytes:128 ~ways:2 ~line_bytes:64 () in
  ignore (Cache.access c 0x0L Cache.Load);
  ignore (Cache.access c 0x40L Cache.Load);
  ignore (Cache.access c 0x0L Cache.Load);
  (* fills the set; evicts 0x40 (LRU), not 0x0 *)
  ignore (Cache.access c 0x80L Cache.Load);
  Alcotest.(check bool) "0x0 still resident" true (Cache.access c 0x0L Cache.Load);
  Alcotest.(check bool) "0x40 evicted" false (Cache.access c 0x40L Cache.Load)

let test_cache_range () =
  let c = Cache.create () in
  (* an 8-byte access crossing a line boundary touches two lines *)
  let misses = Cache.access_range c 0x103CL ~bytes:8 Cache.Load in
  Alcotest.(check int) "two cold lines" 2 misses;
  let misses = Cache.access_range c 0x103CL ~bytes:8 Cache.Load in
  Alcotest.(check int) "warm" 0 misses

let test_cache_empty_range () =
  let c = Cache.create () in
  Alcotest.(check int) "zero-byte range misses nothing" 0
    (Cache.access_range c 0x1000L ~bytes:0 Cache.Load);
  Alcotest.(check int) "and records no access" 0 (Cache.accesses c);
  Alcotest.(check int) "negative size likewise" 0
    (Cache.access_range c 0x1000L ~bytes:(-4) Cache.Load)

let test_cache_set_indexing () =
  (* conflicting lines must land in the same set and evict LRU-first;
     a set-index masking bug would spread them across sets *)
  let c = Cache.create ~size_bytes:256 ~ways:2 ~line_bytes:64 () in
  (* 2 sets: even lines map to set 0, odd lines to set 1 *)
  ignore (Cache.access c 0x000L Cache.Load) (* set 0 *);
  ignore (Cache.access c 0x040L Cache.Load) (* set 1 *);
  ignore (Cache.access c 0x080L Cache.Load) (* set 0 *);
  ignore (Cache.access c 0x100L Cache.Load) (* set 0: evicts LRU 0x000 *);
  Alcotest.(check bool) "other set undisturbed" true
    (Cache.access c 0x040L Cache.Load);
  Alcotest.(check bool) "LRU way evicted" false
    (Cache.access c 0x000L Cache.Load);
  Alcotest.(check bool) "recent way kept" true
    (Cache.access c 0x100L Cache.Load)

let test_cache_flush () =
  let c = Cache.create () in
  ignore (Cache.access c 0x1000L Cache.Load);
  Cache.flush c;
  Alcotest.(check int) "stats reset" 0 (Cache.accesses c);
  Alcotest.(check bool) "cold again" false (Cache.access c 0x1000L Cache.Load)

let tests =
  [
    Alcotest.test_case "rw roundtrip" `Quick test_rw_roundtrip;
    Alcotest.test_case "little endian" `Quick test_little_endian;
    Alcotest.test_case "cross page access" `Quick test_cross_page;
    Alcotest.test_case "unmapped faults" `Quick test_unmapped_faults;
    Alcotest.test_case "unmap" `Quick test_unmap;
    Alcotest.test_case "zero fill" `Quick test_zero_fill;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "tag bits ignored" `Quick test_tag_bits_ignored;
    QCheck_alcotest.to_alcotest prop_rw_any;
    Alcotest.test_case "map size zero" `Quick test_map_size_zero;
    Alcotest.test_case "map interval merging" `Quick test_map_intervals;
    Alcotest.test_case "no torn store on straddle fault" `Quick test_torn_store;
    QCheck_alcotest.to_alcotest prop_byte_model;
    Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache range access" `Quick test_cache_range;
    Alcotest.test_case "cache empty range" `Quick test_cache_empty_range;
    Alcotest.test_case "cache set indexing" `Quick test_cache_set_indexing;
    Alcotest.test_case "cache flush" `Quick test_cache_flush;
  ]
