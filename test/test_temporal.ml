(* Temporal-safety mode: free-epoch generations in the metadata records,
   mirrored into the pointer tag, checked at promote and at the
   allocator free paths. Covers the per-scheme epoch semantics
   (including the MAC-less global-table rows), deterministic generation
   wraparound (the documented ABA-after-16 limitation), the
   wipe-vs-legitimate-free classification split, the Juliet temporal
   families, and the two free-path regressions (mixed dispatch, baseline
   double free). *)

open Core
module J = Ifp_juliet.Juliet

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let mk_ctx ?(temporal = true) () =
  let mem = Memory.create () in
  Memory.map mem ~base:0x1000L ~size:(1 lsl 20);
  Memory.map mem ~base:0x200000L ~size:(1 lsl 16);
  Memory.map mem ~base:0x300000L ~size:(4096 * 16);
  let meta =
    Meta.create ~temporal ~memory:mem ~mac_key:0x7E3AL
      ~layout_region:(0x200000L, 1 lsl 16)
      ~global_table:(0x300000L, 256) ()
  in
  (mem, meta)

let temporal_cfg alloc = { Vm.ifp_wrapped with Vm.alloc; temporal = true }

(* ---- per-scheme free-epoch semantics ---- *)

let test_local_offset_epoch () =
  let _, meta = mk_ctx () in
  let p = Meta.Local_offset.register meta ~base:0x2000L ~size:48 ~layout_ptr:0L in
  (match (Promote.run meta p).Promote.outcome with
  | Promote.Retrieved _ -> ()
  | _ -> Alcotest.fail "live pointer should promote");
  Alcotest.(check bool) "first free ok" true
    (Meta.Local_offset.deregister_temporal meta p = `Freed_ok);
  let r = Promote.run meta p in
  (match r.Promote.outcome with
  | Promote.Temporal_stale { freed = true; _ } -> ()
  | _ -> Alcotest.fail "stale promote must report Temporal_stale");
  Alcotest.(check bool) "stale pointer poisoned Freed" true
    (Tag.poison r.Promote.ptr = Tag.Freed);
  Alcotest.(check bool) "bounds cleared" true
    (r.Promote.bounds = Bounds.No_bounds);
  Alcotest.(check bool) "second free is the double-free witness" true
    (Meta.Local_offset.deregister_temporal meta p = `Already_freed)

let test_global_table_epoch () =
  let _, meta = mk_ctx () in
  (* MAC-less rows: the epoch lives in the row bits themselves *)
  let p =
    match Meta.Global_table.register meta ~base:0x4000L ~size:4096 ~layout_ptr:0L with
    | Some p -> p
    | None -> Alcotest.fail "table full"
  in
  let rows = Meta.Global_table.rows_in_use meta in
  Alcotest.(check bool) "first free ok" true
    (Meta.Global_table.deregister_temporal meta p = `Freed_ok);
  (match (Promote.run meta p).Promote.outcome with
  | Promote.Temporal_stale { freed = true; _ } -> ()
  | _ -> Alcotest.fail "freed row must promote Temporal_stale");
  Alcotest.(check bool) "re-free detected" true
    (Meta.Global_table.deregister_temporal meta p = `Already_freed);
  (* the row is quarantined, not recycled: it stays in use after the
     free, and a new registration must not resurrect its index *)
  Alcotest.(check int) "quarantined row still counted in use" rows
    (Meta.Global_table.rows_in_use meta);
  (match Meta.Global_table.register meta ~base:0x8000L ~size:4096 ~layout_ptr:0L with
  | Some q ->
    Alcotest.(check bool) "quarantined row not reused" true
      (Tag.table_index q <> Tag.table_index p)
  | None -> ());
  Alcotest.(check int) "new registration claims a fresh row" (rows + 1)
    (Meta.Global_table.rows_in_use meta)

let test_subheap_epoch () =
  let mem, meta = mk_ctx () in
  let tenv = Ctype.empty_tenv in
  let a =
    Subheap_alloc.create ~meta ~tenv ~memory:mem ~base:0x1000_0000L
      ~size_log2:22
  in
  let p, _ = a.Alloc.malloc ~size:32 ~cty:None in
  let q, _ = a.Alloc.malloc ~size:32 ~cty:None in
  Alcotest.(check bool) "subheap scheme" true (Tag.scheme p = Tag.Subheap);
  a.Alloc.free p |> ignore;
  (match (Promote.run meta p).Promote.outcome with
  | Promote.Temporal_stale { freed = true; _ } -> ()
  | _ -> Alcotest.fail "freed slot must promote Temporal_stale");
  (* the sibling slot in the same block is untouched *)
  (match (Promote.run meta q).Promote.outcome with
  | Promote.Retrieved _ -> ()
  | _ -> Alcotest.fail "live sibling slot must still promote");
  (match a.Alloc.free p with
  | exception Trap.Trap (Trap.Double_free _) -> ()
  | _ -> Alcotest.fail "second free must trap Double_free");
  (* quarantine: freed slots are never handed out again *)
  let r, _ = a.Alloc.malloc ~size:32 ~cty:None in
  Alcotest.(check bool) "freed slot not recycled" true
    (not (Int64.equal (Tag.addr r) (Tag.addr p)))

let test_gen_wraparound () =
  let _, meta = mk_ctx () in
  let base = 0x2000L in
  let p0 = Meta.Local_offset.register meta ~base ~size:48 ~layout_ptr:0L in
  Alcotest.(check int) "fresh pointer carries gen 0" 0 (Tag.gen p0);
  (* free/reuse the same address through all 16 generations: each
     re-registration inherits the bumped epoch, so the original pointer
     stays stale... *)
  let last = ref p0 in
  for k = 1 to Tag.gen_states - 1 do
    Alcotest.(check bool) "free ok" true
      (Meta.Local_offset.deregister_temporal meta !last = `Freed_ok);
    let p = Meta.Local_offset.register meta ~base ~size:48 ~layout_ptr:0L in
    Alcotest.(check int) "reused slot inherits bumped gen" k (Tag.gen p);
    (match (Promote.run meta p0).Promote.outcome with
    | Promote.Temporal_stale { freed = false; gen_ptr = 0; gen_meta } ->
      Alcotest.(check int) "mismatch against current epoch" k gen_meta
    | _ -> Alcotest.fail "recycled allocation must be Temporal_stale");
    last := p
  done;
  (* ...until the 4-bit generation wraps: after 16 epochs the stale
     pointer aliases the live record again (the documented ABA window) *)
  Alcotest.(check bool) "free 16 ok" true
    (Meta.Local_offset.deregister_temporal meta !last = `Freed_ok);
  let p16 = Meta.Local_offset.register meta ~base ~size:48 ~layout_ptr:0L in
  Alcotest.(check int) "generation wrapped" 0 (Tag.gen p16);
  match (Promote.run meta p0).Promote.outcome with
  | Promote.Retrieved _ -> ()
  | _ -> Alcotest.fail "wrapped generation aliases (ABA after 16)"

let test_wipe_vs_free_classification () =
  (* a legitimate free leaves a valid-but-stale record (Temporal_stale);
     an attacker wipe garbles it (Metadata_invalid / MAC) — the two must
     not be conflated *)
  let _, meta = mk_ctx () in
  let p = Meta.Local_offset.register meta ~base:0x2000L ~size:48 ~layout_ptr:0L in
  let q = Meta.Local_offset.register meta ~base:0x3000L ~size:48 ~layout_ptr:0L in
  ignore (Meta.Local_offset.deregister_temporal meta p);
  (match Meta.live_entries meta with
  | entries -> (
    let qe =
      List.find
        (fun (e : Meta.live_entry) ->
          Int64.equal e.Meta.meta_addr (Tag.metadata_addr_local_offset q))
        entries
    in
    Meta.wipe_entry meta qe));
  (match (Promote.run meta p).Promote.outcome with
  | Promote.Temporal_stale _ -> ()
  | _ -> Alcotest.fail "freed record must classify Temporal_stale");
  match (Promote.run meta q).Promote.outcome with
  | Promote.Metadata_invalid _ -> ()
  | Promote.Temporal_stale _ ->
    Alcotest.fail "wiped record must NOT classify Temporal_stale"
  | _ -> Alcotest.fail "wiped record must classify Metadata_invalid"

(* ---- free-path regressions ---- *)

let test_mixed_dispatch_regression () =
  (* a Subheap-tagged pointer whose free legitimately costs zero (its
     control register was never configured) must never fall through to
     the wrapped heap — the old physical-equality probe did exactly
     that, pushing a never-allocated address into the baseline bins *)
  let mem, meta = mk_ctx ~temporal:false () in
  let base_alloc =
    Baseline_alloc.create ~memory:mem ~base:0x2000_0000L ~size:(1 lsl 22)
  in
  let wrapped = Wrapped_alloc.create ~meta ~tenv:Ctype.empty_tenv ~base_alloc in
  let subheap =
    Subheap_alloc.create ~meta ~tenv:Ctype.empty_tenv ~memory:mem
      ~base:0x1000_0000L ~size_log2:22
  in
  let mixed = Mixed_alloc.create ~subheap ~wrapped in
  let w, _ = wrapped.Alloc.malloc ~size:64 ~cty:None in
  let frees_before = (wrapped.Alloc.stats ()).Alloc.n_frees in
  let evil = Meta.Subheap.tag_pointer ~creg:15 ~addr:(Tag.addr w) in
  mixed.Alloc.free evil |> ignore;
  Alcotest.(check int) "wrapped heap untouched by stray subheap free"
    frees_before
    ((wrapped.Alloc.stats ()).Alloc.n_frees);
  (* ownership drives the schemes both sides can produce *)
  Alcotest.(check bool) "wrapped owns its pointer" true (wrapped.Alloc.owns w);
  Alcotest.(check bool) "subheap does not" false (subheap.Alloc.owns w);
  mixed.Alloc.free w |> ignore;
  Alcotest.(check int) "legitimate free routed to wrapped" (frees_before + 1)
    ((wrapped.Alloc.stats ()).Alloc.n_frees)

let test_baseline_double_free_detected () =
  let mem, _ = mk_ctx ~temporal:false () in
  let a = Baseline_alloc.create ~memory:mem ~base:0x1000_0000L ~size:(1 lsl 20) in
  let p, _ = a.Alloc.malloc ~size:48 ~cty:None in
  a.Alloc.free p |> ignore;
  (match a.Alloc.free p with
  | exception Alloc.Double_free a -> Alcotest.(check int64) "address" p a
  | _ -> Alcotest.fail "glibc-style double free must be detected");
  (* the classic tcache bypass stays a bypass: free / malloc / free *)
  let q, _ = a.Alloc.malloc ~size:48 ~cty:None in
  Alcotest.(check int64) "chunk recycled" p q;
  a.Alloc.free p |> ignore

let test_baseline_double_free_aborts_vm () =
  let prog =
    let open Ifp_compiler.Ir in
    program ~tenv:Ctype.empty_tenv ~globals:[]
      [
        func "main" [] Ctype.I64
          [
            Let ("p", Ctype.Ptr Ctype.I64, Malloc (Ctype.I64, i 4));
            Free (v "p");
            Free (v "p");
            Return (Some (i 0));
          ];
      ]
  in
  match (Vm.run ~config:Vm.baseline prog).Vm.outcome with
  | Vm.Aborted (Vm.Program_error m) ->
    Alcotest.(check bool) "names the double free" true
      (contains_sub ~sub:"double free" m)
  | _ -> Alcotest.fail "baseline double free must abort the program"

(* ---- Juliet temporal families ---- *)

let tcases = lazy (J.temporal_cases ())

let test_temporal_case_count () =
  Alcotest.(check int) "3 kinds x 2 flows" 6 (List.length (Lazy.force tcases))

let test_temporal_detection_both_allocs () =
  List.iter
    (fun (name, alloc) ->
      let config = temporal_cfg alloc in
      let _, s = J.run_all ~config (Lazy.force tcases) in
      Alcotest.(check int) (name ^ " detects all temporal bads") s.J.total
        s.J.detected;
      Alcotest.(check int) (name ^ " no false positives") 0 s.J.good_failures)
    [ ("wrapped", Vm.Alloc_wrapped); ("subheap", Vm.Alloc_subheap) ]

let test_spatial_misses_temporal () =
  (* the point of the extension: a spatial-only config promotes the
     stale pointer against the churn object's valid metadata *)
  let _, s = J.run_all ~config:Vm.ifp_wrapped (Lazy.force tcases) in
  Alcotest.(check int) "spatial IFP misses every temporal bad" s.J.total
    s.J.missed;
  Alcotest.(check int) "and stays clean on the goods" 0 s.J.good_failures;
  let _, sb = J.run_all ~config:Vm.baseline (Lazy.force tcases) in
  Alcotest.(check int) "baseline detects nothing" 0 sb.J.detected;
  Alcotest.(check int) "baseline goods fine" 0 sb.J.good_failures

let test_temporal_trap_taxonomy () =
  let config = temporal_cfg Vm.Alloc_wrapped in
  let trap_of kind =
    let case =
      List.find (fun (c : J.case) -> c.J.kind = kind && c.J.flow = J.Via_field)
        (Lazy.force tcases)
    in
    match (Vm.run ~config case.J.bad).Vm.outcome with
    | Vm.Trapped t -> t
    | _ -> Alcotest.fail (J.kind_to_string kind ^ " did not trap")
  in
  (match trap_of J.Use_after_free with
  | Trap.Use_after_free _ -> ()
  | t -> Alcotest.fail ("UAF load: " ^ Trap.to_string t));
  (match trap_of J.Write_to_freed with
  | Trap.Write_to_freed _ -> ()
  | t -> Alcotest.fail ("freed store: " ^ Trap.to_string t));
  match trap_of J.Double_free with
  | Trap.Double_free _ -> ()
  | t -> Alcotest.fail ("double free: " ^ Trap.to_string t)

let test_engines_agree_on_temporal () =
  let config = temporal_cfg Vm.Alloc_wrapped in
  let case = List.hd (Lazy.force tcases) in
  List.iter
    (fun prog ->
      let r0 = Engines.run ~config:{ config with Vm.engine = Vm.Eng_vm } prog in
      let r1 = Engines.run ~config:{ config with Vm.engine = Vm.Eng_ref } prog in
      let r2 =
        Engines.run ~config:{ config with Vm.engine = Vm.Eng_closure } prog
      in
      let obs (r : Vm.result) = (r.Vm.outcome, r.Vm.counters, r.Vm.output) in
      Alcotest.(check bool) "ref agrees" true (obs r0 = obs r1);
      Alcotest.(check bool) "closure agrees" true (obs r0 = obs r2))
    [ case.J.bad; case.J.good ]

(* ---- fault-injection classification split ---- *)

let test_fault_classes_split () =
  let module Fault = Ifp_faultinject.Fault in
  let module Victim = Ifp_faultinject.Victim in
  let config = temporal_cfg Vm.Alloc_wrapped in
  let run cls =
    let plan = Fault.default_plan cls ~seed:3L in
    Vm.run
      ~config:{ config with Vm.fault_plan = Some plan }
      (Victim.temporal_program ())
  in
  (* a legitimate injected free surfaces as the temporal trap family... *)
  (match (run Fault.Uaf_use).Vm.outcome with
  | Vm.Trapped (Trap.Use_after_free _ | Trap.Write_to_freed _ | Trap.Double_free _)
    -> ()
  | o ->
    Alcotest.fail
      ("uaf_use should trap temporally, got "
      ^
      match o with
      | Vm.Trapped t -> Trap.to_string t
      | Vm.Finished _ -> "finished"
      | Vm.Aborted m -> Vm.abort_reason_string m));
  (* ...a wipe of the same records surfaces as metadata corruption *)
  match (run Fault.Stale_meta).Vm.outcome with
  | Vm.Trapped
      ( Trap.Mac_mismatch _ | Trap.Invalid_metadata _
      | Trap.Poisoned_dereference _ | Trap.Bounds_violation _
      | Trap.Memory_fault _ ) ->
    ()
  | Vm.Trapped t ->
    Alcotest.fail ("stale_meta must not classify temporally: " ^ Trap.to_string t)
  | _ -> Alcotest.fail "stale_meta should trap under armed promote"

let tests =
  [
    Alcotest.test_case "local-offset free epoch" `Quick test_local_offset_epoch;
    Alcotest.test_case "global-table free epoch (MAC-less rows)" `Quick
      test_global_table_epoch;
    Alcotest.test_case "subheap free epoch + quarantine" `Quick
      test_subheap_epoch;
    Alcotest.test_case "generation wraparound (ABA after 16)" `Quick
      test_gen_wraparound;
    Alcotest.test_case "wipe vs legitimate free classify differently" `Quick
      test_wipe_vs_free_classification;
    Alcotest.test_case "mixed free dispatch regression" `Quick
      test_mixed_dispatch_regression;
    Alcotest.test_case "baseline double-free detection" `Quick
      test_baseline_double_free_detected;
    Alcotest.test_case "baseline double free aborts the VM" `Quick
      test_baseline_double_free_aborts_vm;
    Alcotest.test_case "temporal Juliet case count" `Quick
      test_temporal_case_count;
    Alcotest.test_case "temporal Juliet: both allocators detect all" `Quick
      test_temporal_detection_both_allocs;
    Alcotest.test_case "temporal Juliet: spatial mode misses all" `Quick
      test_spatial_misses_temporal;
    Alcotest.test_case "temporal trap taxonomy" `Quick
      test_temporal_trap_taxonomy;
    Alcotest.test_case "engines bit-identical under temporal mode" `Quick
      test_engines_agree_on_temporal;
    Alcotest.test_case "uaf_use vs stale_meta classification" `Quick
      test_fault_classes_split;
  ]
