(* Victim daemon forked (and SIGKILLed) by the crash-restart durability
   tests in test_resilience.ml: a minimal ifp_serviced — shard cache +
   write-ahead journal + SIGTERM drain — whose whole point is to be
   killed without warning and restarted over the same cache/journal.

   argv: SOCKET CACHE_DIR JOURNAL_PATH WORKERS *)

module Cli = Ifp_campaign.Cli
module Journal = Ifp_campaign.Journal
module Shard = Ifp_service.Shard
module Server = Ifp_service.Server

let () =
  let socket = Sys.argv.(1) in
  let cache_dir = Sys.argv.(2) in
  let journal_path = Sys.argv.(3) in
  let workers = max 1 (int_of_string Sys.argv.(4)) in
  let journal, _replay = Journal.open_resume ~path:journal_path in
  let shard = Shard.create ~dir:cache_dir ~shards:4 () in
  let signals = Cli.install_stop () in
  let cfg =
    {
      (Server.default_config ~socket_path:socket) with
      Server.workers;
      shard = Some shard;
      journal = Some journal;
      (* short reaper deadlines so a test never waits on a wedged peer *)
      drain_timeout = 10.0;
      idle_timeout = 10.0;
      io_timeout = 5.0;
      banner = "service_child";
    }
  in
  ignore (Server.run ~stop:signals.Cli.stop cfg);
  signals.Cli.restore ();
  Journal.close journal;
  exit 0
