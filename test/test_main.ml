let () =
  Alcotest.run "infat-pointer"
    [
      ("util", Test_util.tests);
      ("machine", Test_machine.tests);
      ("types", Test_types.tests);
      ("layout-random", Test_layout_random.tests);
      ("isa", Test_isa.tests);
      ("metadata", Test_metadata.tests);
      ("alloc", Test_alloc.tests);
      ("compiler", Test_compiler.tests);
      ("resolve", Test_resolve.tests);
      ("vm", Test_vm.tests);
      ("engines", Test_engines.tests);
      ("pipeline", Test_pipeline.tests);
      ("workloads", Test_workloads.tests);
      ("juliet", Test_juliet.tests);
      ("models", Test_models.tests);
      ("extensions", Test_extensions.tests);
      ("differential", Test_differential.tests);
      ("lexer", Test_lexer.tests);
      ("parser", Test_parser.tests);
      ("trace-report", Test_trace_report.tests);
      ("campaign", Test_campaign.tests);
      ("journal", Test_journal.tests);
      ("chaos", Test_chaos.tests);
      ("faultinject", Test_faultinject.tests);
      ("guarantees", Test_guarantees.tests);
      ("service", Test_service.tests);
      ("resilience", Test_resilience.tests);
      ("fuzz", Test_fuzz.tests);
      ("temporal", Test_temporal.tests);
    ]
