(* Victim campaign binary for the chaos integration tests (the host-layer
   analogue of faultinject's pointer_maze victim): a small, fully
   deterministic job matrix driven through the real engine with a real
   journal, so the parent test can SIGKILL/SIGTERM an actual process at a
   seeded point and assert that --resume converges to byte-identical
   output.

   Usage: chaos_child --out FILE [--journal FILE] [--resume FILE]
                      [--cache DIR] [-j N] [--kill-after N] [--slow-ms M]

   The result table is written to --out only when the campaign runs to
   completion; an interrupted run exits 130 (or dies raw on SIGKILL)
   leaving only the journal behind. *)

open Core
module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Rcache = Ifp_campaign.Cache
module Chaos = Ifp_campaign.Chaos
module Cli = Ifp_campaign.Cli

let n_jobs = 30

(* each job is a distinct program (distinct digest) with a deterministic
   cycle count, so the rendered table detects any wrong-result mixup *)
let job i =
  let prog =
    Ir.program ~tenv:Ctype.empty_tenv ~globals:[]
      [ Ir.func "main" [] Ctype.I64 [ Ir.Return (Some (Ir.i (i * 7))) ] ]
  in
  Job.make
    ~name:(Printf.sprintf "chaos/%02d" i)
    ~group:"chaos" ~variant:"subheap" ~config:Vm.ifp_subheap prog

let () =
  let out = ref None in
  let journal_path = ref None in
  let resume = ref false in
  let cache_dir = ref None in
  let workers = ref 1 in
  let kill_after = ref None in
  let slow_ms = ref 0 in
  let argv = Sys.argv in
  let i = ref 1 in
  let next what =
    incr i;
    if !i >= Array.length argv then (
      Printf.eprintf "chaos_child: missing argument to %s\n" what;
      exit 2)
    else argv.(!i)
  in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "--out" -> out := Some (next "--out")
    | "--journal" -> journal_path := Some (next "--journal")
    | "--resume" ->
      journal_path := Some (next "--resume");
      resume := true
    | "--cache" -> cache_dir := Some (next "--cache")
    | "-j" -> workers := max 1 (int_of_string (next "-j"))
    | "--kill-after" -> kill_after := Some (int_of_string (next "--kill-after"))
    | "--slow-ms" -> slow_ms := max 0 (int_of_string (next "--slow-ms"))
    | s ->
      Printf.eprintf "chaos_child: unknown option %s\n" s;
      exit 2);
    incr i
  done;
  let jobs = List.init n_jobs job in
  let cache = Option.map (fun dir -> Rcache.create ~dir ()) !cache_dir in
  let stop = Cli.install_interrupt () in
  let journal, _replay = Cli.open_journal ~path:!journal_path ~resume:!resume in
  let on_job_done =
    match !kill_after with
    | Some n -> Chaos.arm_kill ~after:n
    | None -> fun _ -> ()
  in
  let runner (j : Job.t) =
    if !slow_ms > 0 then Unix.sleepf (float_of_int !slow_ms /. 1000.0);
    Vm.run ~config:j.Job.config j.Job.prog
  in
  let outcomes, stats =
    Engine.run ~workers:!workers ?cache ?journal ~stop ~on_job_done ~runner
      jobs
  in
  if stats.Engine.interrupted then
    Cli.finish ~hint:"chaos_child: interrupted" ~journal ~log:Ifp_campaign.Events.null
      ~interrupted:true ();
  let render (o : Engine.outcome) =
    match (o.Engine.status, o.Engine.result) with
    | Engine.Done, Some r ->
      Printf.sprintf "%s done cycles=%d" o.Engine.job.Job.name
        r.Vm.counters.Counters.cycles
    | Engine.Done, None -> o.Engine.job.Job.name ^ " done <no result>"
    | Engine.Failed why, _ -> o.Engine.job.Job.name ^ " failed: " ^ why
    | Engine.Timed_out, _ -> o.Engine.job.Job.name ^ " timed_out"
    | Engine.Skipped, _ -> o.Engine.job.Job.name ^ " skipped"
  in
  let table =
    String.concat "\n" (Array.to_list (Array.map render outcomes)) ^ "\n"
  in
  (match !out with
  | None -> print_string table
  | Some path ->
    let oc = open_out path in
    output_string oc table;
    close_out oc);
  Cli.finish ~journal ~log:Ifp_campaign.Events.null ~interrupted:false ()
