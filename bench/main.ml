(* Bechamel benchmark harness: one group per reproduced table/figure
   (see DESIGN.md's experiment index), plus microbenchmarks of the core
   promote mechanism and an ablation group.

   Groups:
     promote.*    — latency of the promote path per scheme and per
                    narrowing depth (the cost model behind Fig. 10/11)
     table4.*     — dynamic-count collection runs (Table 4 pipeline)
     fig10.*      — runtime-overhead measurement runs (Fig. 10)
     fig11.*      — instruction-mix measurement runs (Fig. 11)
     fig12.*      — memory-footprint measurement runs (Fig. 12)
     fig13.*      — hardware area model evaluation (Fig. 13)
     juliet.*     — functional-evaluation detection runs (§5.1)
     baselines.*  — comparator-model projections (§5.2.2)
     ablation.*   — design-choice ablations called out in DESIGN.md *)

open Bechamel
open Toolkit
open Core

(* ---- fixtures ------------------------------------------------------ *)

let tenv_s =
  let t = Ctype.empty_tenv in
  let t =
    Ctype.declare t
      {
        Ctype.sname = "NestedTy";
        fields =
          [ { fname = "v3"; fty = Ctype.I32 }; { fname = "v4"; fty = Ctype.I32 } ];
      }
  in
  Ctype.declare t
    {
      Ctype.sname = "S";
      fields =
        [
          { fname = "v1"; fty = Ctype.I32 };
          { fname = "array"; fty = Ctype.Array (Ctype.Struct "NestedTy", 2) };
          { fname = "v5"; fty = Ctype.I32 };
        ];
    }

type fixture = {
  meta : Meta.t;
  p_local : int64;
  p_local_deep : int64;
  p_subheap : int64;
  p_global : int64;
  p_legacy : int64;
}

let fixture =
  lazy
    (let mem = Memory.create () in
     Memory.map mem ~base:0x10000L ~size:(1 lsl 20);
     Memory.map mem ~base:0x200000L ~size:(1 lsl 16);
     Memory.map mem ~base:0x300000L ~size:(4096 * 16);
     let meta =
       Meta.create ~memory:mem ~mac_key:0xFEEDL
         ~layout_region:(0x200000L, 1 lsl 16)
         ~global_table:(0x300000L, 4096) ()
     in
     let lt = Meta.intern_layout meta tenv_s (Ctype.Struct "S") in
     let p_local =
       Meta.Local_offset.register meta ~base:0x10000L ~size:24 ~layout_ptr:lt
     in
     let p_local_deep =
       Insn.ifpidx (Insn.ifpadd p_local ~delta:12L ~bounds:Bounds.no_bounds) 3
     in
     Meta.Subheap.set_creg meta 0
       (Some { Meta.Subheap.block_size_log2 = 12; metadata_offset = 0L });
     Meta.Subheap.write_block_metadata meta ~creg:0 ~block_base:0x20000L
       ~slot_start:32 ~slot_end:4064 ~slot_size:32 ~obj_size:24 ~layout_ptr:lt;
     let p_subheap = Meta.Subheap.tag_pointer ~creg:0 ~addr:0x20040L in
     let p_global =
       Option.get
         (Meta.Global_table.register meta ~base:0x30000L ~size:4096 ~layout_ptr:0L)
     in
     { meta; p_local; p_local_deep; p_subheap; p_global; p_legacy = 0x4000L })

let promote_bench sel name =
  Test.make ~name
    (Staged.stage (fun () ->
         let f = Lazy.force fixture in
         ignore (Promote.run f.meta (sel f))))

(* small program for macro benches: the full pipeline (typecheck +
   instrument + execute) on a scaled-down treeadd *)
let small_prog =
  lazy
    (let open Ir in
     let tenv =
       Ctype.declare Ctype.empty_tenv
         {
           Ctype.sname = "tnode";
           fields =
             [
               { fname = "val"; fty = Ctype.I64 };
               { fname = "left"; fty = Ctype.Ptr (Ctype.Struct "tnode") };
               { fname = "right"; fty = Ctype.Ptr (Ctype.Struct "tnode") };
             ];
         }
     in
     let np = Ctype.Ptr (Ctype.Struct "tnode") in
     let build_fn =
       func "build" [ ("d", Ctype.I64) ] np
         [
           If (v "d" <=: i 0, [ Return (Some (null (Ctype.Struct "tnode"))) ], []);
           Let ("p", np, Malloc (Ctype.Struct "tnode", i 1));
           Store (Ctype.I64, Gep (Ctype.Struct "tnode", v "p", [ fld "val" ]), i 1);
           Store (np, Gep (Ctype.Struct "tnode", v "p", [ fld "left" ]),
                  Call ("build", [ v "d" -: i 1 ]));
           Store (np, Gep (Ctype.Struct "tnode", v "p", [ fld "right" ]),
                  Call ("build", [ v "d" -: i 1 ]));
           Return (Some (v "p"));
         ]
     in
     let sum_fn =
       func "sum" [ ("p", np) ] Ctype.I64
         [
           If (Binop (Eq, v "p", null (Ctype.Struct "tnode")),
               [ Return (Some (i 0)) ], []);
           Return
             (Some
                (Load (Ctype.I64, Gep (Ctype.Struct "tnode", v "p", [ fld "val" ]))
                +: Call ("sum", [ Load (np, Gep (Ctype.Struct "tnode", v "p", [ fld "left" ])) ])
                +: Call ("sum", [ Load (np, Gep (Ctype.Struct "tnode", v "p", [ fld "right" ])) ])));
         ]
     in
     let main =
       func "main" [] Ctype.I64
         [
           Let ("t", np, Call ("build", [ i 8 ]));
           Return (Some (Call ("sum", [ v "t" ])));
         ]
     in
     program ~tenv ~globals:[] [ build_fn; sum_fn; main ])

let run_bench name cfg =
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Vm.run ~config:cfg (Lazy.force small_prog))))

let juliet_case =
  lazy
    (List.find
       (fun (c : Ifp_juliet.Juliet.case) ->
         String.equal c.id "intra-object-heap-via-global")
       (Ifp_juliet.Juliet.all_cases ()))

let tests =
  [
    promote_bench (fun f -> f.p_local) "promote/local_offset";
    promote_bench (fun f -> f.p_local_deep) "promote/local_offset_narrow_depth2";
    promote_bench (fun f -> f.p_subheap) "promote/subheap";
    promote_bench (fun f -> f.p_global) "promote/global_table";
    promote_bench (fun f -> f.p_legacy) "promote/legacy_bypass";
    run_bench "table4/dynamic_counts_subheap" Vm.ifp_subheap;
    run_bench "fig10/runtime_baseline" Vm.baseline;
    run_bench "fig10/runtime_subheap" Vm.ifp_subheap;
    run_bench "fig10/runtime_wrapped" Vm.ifp_wrapped;
    run_bench "fig11/instr_mix_subheap" Vm.ifp_subheap;
    run_bench "fig12/footprint_wrapped" Vm.ifp_wrapped;
    Test.make ~name:"fig13/hw_area_model"
      (Staged.stage (fun () ->
           let open Ifp_hwmodel.Hwmodel in
           ignore (by_stage full);
           ignore (lut_increase_pct full)));
    Test.make ~name:"juliet/intra_object_detection"
      (Staged.stage (fun () ->
           ignore
             (Ifp_juliet.Juliet.run_case ~config:Vm.ifp_subheap
                (Lazy.force juliet_case))));
    Test.make ~name:"baselines/projection"
      (Staged.stage (fun () ->
           let prog = Lazy.force small_prog in
           let baseline = Vm.run ~config:Vm.baseline prog in
           let ifp = Vm.run ~config:Vm.ifp_subheap prog in
           List.iter
             (fun m -> ignore (Ifp_baselines.Baselines.project m ~baseline ~ifp))
             Ifp_baselines.Baselines.all));
    run_bench "ablation/no_promote" (Vm.no_promote Vm.Alloc_subheap);
    run_bench "ablation/wrapped_allocator" Vm.ifp_wrapped;
    (* campaign.* — the orchestration layer's own hot paths: content
       digesting (paid once per job per run) and a cache round-trip
       (what a warm `ifp_experiments all` consists of) *)
    Test.make ~name:"campaign/job_digest"
      (Staged.stage (fun () ->
           let job =
             Ifp_campaign.Job.make ~name:"bench/subheap" ~group:"bench"
               ~variant:"subheap" ~config:Vm.ifp_subheap
               (Lazy.force small_prog)
           in
           ignore (Ifp_campaign.Job.digest job)));
    Test.make ~name:"campaign/cache_roundtrip"
      (Staged.stage
         (let dir =
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Printf.sprintf "ifp-bench-cache-%d" (Unix.getpid ()))
          in
          let cache = Ifp_campaign.Cache.create ~dir () in
          let result = Vm.run ~config:Vm.ifp_subheap (Lazy.force small_prog) in
          let digest = String.make 32 'a' in
          fun () ->
            Ifp_campaign.Cache.store cache ~digest ~job_name:"bench" result;
            ignore (Ifp_campaign.Cache.find cache ~digest)));
  ]

let () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~kde:(Some 10)
      ~stabilize:false ()
  in
  Printf.printf "%-42s %14s %8s\n" "benchmark" "time/run" "samples";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name (b : Benchmark.t) ->
          let m = b.Benchmark.lr in
          let label = Measure.label Instance.monotonic_clock in
          let total_time =
            Array.fold_left
              (fun acc raw -> acc +. Measurement_raw.get ~label raw)
              0.0 m
          in
          let total_runs =
            Array.fold_left (fun acc raw -> acc +. Measurement_raw.run raw) 0.0 m
          in
          let per_run = if total_runs > 0.0 then total_time /. total_runs else 0.0 in
          Printf.printf "%-42s %11.0f ns %8d\n" name per_run (Array.length m))
        results)
    tests
