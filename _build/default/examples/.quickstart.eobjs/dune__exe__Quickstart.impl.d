examples/quickstart.ml: Bounds Core Ctype Format Insn Layout Mac Memory Meta Option Printf Prng Promote Tag Trap
