examples/allocator_tour.mli:
