examples/legacy_interop.ml: Core Ctype Ir Printf Trap Vm
