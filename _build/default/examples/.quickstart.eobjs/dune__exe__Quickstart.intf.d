examples/quickstart.mli:
