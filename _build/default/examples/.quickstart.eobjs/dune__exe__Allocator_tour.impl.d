examples/allocator_tour.ml: Core Counters Ctype Ir List Printf Trap Vm
