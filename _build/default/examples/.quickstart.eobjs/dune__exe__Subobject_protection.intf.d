examples/subobject_protection.mli:
