examples/subobject_protection.ml: Core Ctype Ir Printf Trap Vm
