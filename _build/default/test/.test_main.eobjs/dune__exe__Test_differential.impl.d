test/test_differential.ml: Core Ctype Int64 Ir Ir_pp List Printf QCheck QCheck_alcotest Trap Typecheck Vm
