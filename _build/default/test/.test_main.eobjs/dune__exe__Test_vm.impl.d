test/test_vm.ml: Alcotest Core Counters Ctype Insn Ir List Trap Vm
