test/test_juliet.ml: Alcotest Core Hashtbl Ifp_juliet Lazy List Vm
