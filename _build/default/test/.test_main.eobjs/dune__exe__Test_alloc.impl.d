test/test_alloc.ml: Alcotest Alloc Baseline_alloc Bits Buddy Core Ctype Gen Int64 List Memory Meta Option QCheck QCheck_alcotest Subheap_alloc Tag Wrapped_alloc
