test/test_types.ml: Alcotest Core Ctype Int64 Layout Printf QCheck QCheck_alcotest
