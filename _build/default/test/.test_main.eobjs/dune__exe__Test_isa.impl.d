test/test_isa.ml: Alcotest Bits Bounds Core Insn Int64 QCheck QCheck_alcotest Tag Trap
