test/test_machine.ml: Alcotest Array Bits Cache Core Int64 Memory QCheck QCheck_alcotest
