test/test_lexer.ml: Alcotest Format Ifp_compiler List
