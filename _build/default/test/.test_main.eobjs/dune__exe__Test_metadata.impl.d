test/test_metadata.ml: Alcotest Bits Bounds Core Ctype Insn Int64 Layout List Mac Memory Meta Promote QCheck QCheck_alcotest Tag
