test/test_pipeline.ml: Alcotest Core Counters Ctype Insn Instrument Ir List Trap Vm
