test/test_compiler.ml: Alcotest Core Ctype Instrument Ir Layout List Option Typecheck
