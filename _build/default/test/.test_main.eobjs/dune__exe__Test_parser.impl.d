test/test_parser.ml: Alcotest Core Ifp_compiler Instrument Ir_pp List String Trap Vm
