test/test_layout_random.ml: Array Core Ctype Fun Int64 Layout List Memory Meta Printf QCheck QCheck_alcotest
