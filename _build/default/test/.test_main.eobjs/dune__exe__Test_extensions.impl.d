test/test_extensions.ml: Alcotest Bounds Core Counters Ctype Ifp_juliet Ifp_workloads Insn Instrument Ir Lazy List Memory Meta Option Promote Vm
