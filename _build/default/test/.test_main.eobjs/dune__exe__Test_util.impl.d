test/test_util.ml: Alcotest Array Bits Core Fun Int64 List Prng QCheck QCheck_alcotest Stats String Table
