test/test_trace_report.ml: Alcotest Core Ctype Ir List Report String Vm
