test/test_models.ml: Alcotest Core Ifp_baselines Ifp_hwmodel Ifp_juliet Ifp_workloads Lazy List Option Vm
