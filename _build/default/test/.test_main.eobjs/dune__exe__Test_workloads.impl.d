test/test_workloads.ml: Alcotest Core Counters Hashtbl Ifp_workloads Lazy List Option Trap Vm
