test/test_guarantees.ml: Alcotest Core Ctype Ir Trap Vm
