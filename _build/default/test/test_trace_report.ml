(* Tests for the VM event trace and the Report evaluation harness. *)

open Core
open Ir

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "S";
      fields =
        [
          { fname = "data"; fty = Ctype.Array (Ctype.I64, 4) };
          { fname = "guard"; fty = Ctype.I64 };
        ];
    }

let sp = Ctype.Ptr (Ctype.Struct "S")

let prog ~off =
  let gv = global "g" sp in
  program ~tenv ~globals:[ gv ]
    [
      func "main" [] Ctype.I64
        [
          Let ("p", sp, Malloc (Ctype.Struct "S", i 1));
          Store_global ("g", v "p");
          Let ("q", sp, Load_global "g");
          Store (Ctype.I64, Gep (Ctype.Struct "S", v "q", [ fld "data"; at (i off) ]), i 1);
          Free (v "p");
          Return (Some (i 0));
        ];
    ]

let test_trace_collects_promotes () =
  let cfg = { Vm.ifp_subheap with trace_limit = 16 } in
  let r = Vm.run ~config:cfg (prog ~off:1) in
  let promotes =
    List.filter (function Vm.T_promote _ -> true | _ -> false) r.Vm.trace
  in
  Alcotest.(check bool) "at least one promote traced" true (promotes <> []);
  (* the traced promote retrieved metadata *)
  Alcotest.(check bool) "outcome recorded" true
    (List.exists
       (function
         | Vm.T_promote { outcome; _ } ->
           String.length outcome >= 9 && String.sub outcome 0 9 = "retrieved"
         | _ -> false)
       r.Vm.trace)

let test_trace_records_trap () =
  let cfg = { Vm.ifp_subheap with trace_limit = 16 } in
  let r = Vm.run ~config:cfg (prog ~off:4) in
  (match r.Vm.outcome with
  | Vm.Trapped _ -> ()
  | _ -> Alcotest.fail "expected trap");
  match List.rev r.Vm.trace with
  | Vm.T_trap _ :: _ -> ()
  | _ -> Alcotest.fail "trace should end with the trap"

let test_trace_off_by_default () =
  let r = Vm.run ~config:Vm.ifp_subheap (prog ~off:1) in
  Alcotest.(check (list reject)) "no trace" [] (List.map (fun _ -> ()) r.Vm.trace)
  [@@warning "-33"]

let test_trace_limit_respected () =
  let cfg = { Vm.ifp_subheap with trace_limit = 2 } in
  let r = Vm.run ~config:cfg (prog ~off:1) in
  Alcotest.(check bool) "at most 2 events" true (List.length r.Vm.trace <= 2)

let test_report_row () =
  let row = Report.evaluate ~name:"tiny" (prog ~off:1) in
  Alcotest.(check (list (pair string string))) "all variants clean" []
    (Report.check_outcomes row);
  let ov = Report.runtime_overhead ~baseline:row.baseline row.subheap in
  Alcotest.(check bool) "overhead sane" true (ov > 0.5 && ov < 10.0);
  let io = Report.instr_overhead ~baseline:row.baseline row.wrapped in
  Alcotest.(check bool) "instr overhead >= 1" true (io >= 1.0);
  let mo = Report.memory_overhead ~baseline:row.baseline row.wrapped in
  Alcotest.(check bool) "memory overhead positive" true (mo > 0.0)

let test_report_flags_traps () =
  let row = Report.evaluate ~name:"bad" (prog ~off:4) in
  (* baseline finishes, IFP variants trap: check_outcomes reports them *)
  let bad = Report.check_outcomes row in
  Alcotest.(check bool) "ifp variants flagged" true
    (List.mem_assoc "subheap" bad && List.mem_assoc "wrapped" bad);
  Alcotest.(check bool) "baseline not flagged" true
    (not (List.mem_assoc "baseline" bad))

let tests =
  [
    Alcotest.test_case "trace collects promotes" `Quick
      test_trace_collects_promotes;
    Alcotest.test_case "trace records trap" `Quick test_trace_records_trap;
    Alcotest.test_case "trace off by default" `Quick test_trace_off_by_default;
    Alcotest.test_case "trace limit" `Quick test_trace_limit_respected;
    Alcotest.test_case "report row" `Quick test_report_row;
    Alcotest.test_case "report flags traps" `Quick test_report_flags_traps;
  ]
