(* Tests for the C type model and the layout-table generator, including
   the paper's Fig. 9 example verified element by element. *)

open Core

let tenv_fig9 =
  (* struct S { int v1; struct NestedTy { int v3; int v4; } array[2];
       int v5; }  (paper Fig. 9a) *)
  let t = Ctype.empty_tenv in
  let t =
    Ctype.declare t
      {
        Ctype.sname = "NestedTy";
        fields =
          [ { fname = "v3"; fty = Ctype.I32 }; { fname = "v4"; fty = Ctype.I32 } ];
      }
  in
  Ctype.declare t
    {
      Ctype.sname = "S";
      fields =
        [
          { fname = "v1"; fty = Ctype.I32 };
          { fname = "array"; fty = Ctype.Array (Ctype.Struct "NestedTy", 2) };
          { fname = "v5"; fty = Ctype.I32 };
        ];
    }

let s_ty = Ctype.Struct "S"

let test_sizeof_align () =
  Alcotest.(check int) "sizeof S = 24" 24 (Ctype.sizeof tenv_fig9 s_ty);
  Alcotest.(check int) "sizeof NestedTy" 8
    (Ctype.sizeof tenv_fig9 (Ctype.Struct "NestedTy"));
  Alcotest.(check int) "align S" 4 (Ctype.alignof tenv_fig9 s_ty);
  Alcotest.(check int) "sizeof ptr" 8 (Ctype.sizeof tenv_fig9 (Ctype.Ptr s_ty));
  Alcotest.(check int) "array size" 48
    (Ctype.sizeof tenv_fig9 (Ctype.Array (s_ty, 2)))

let test_padding () =
  let t =
    Ctype.declare Ctype.empty_tenv
      {
        Ctype.sname = "P";
        fields =
          [ { fname = "c"; fty = Ctype.I8 }; { fname = "x"; fty = Ctype.I64 } ];
      }
  in
  Alcotest.(check int) "padded size" 16 (Ctype.sizeof t (Ctype.Struct "P"));
  let off, _ = Ctype.field_offset t "P" "x" in
  Alcotest.(check int) "aligned field" 8 off

let test_field_offsets () =
  let check name expected =
    let off, _ = Ctype.field_offset tenv_fig9 "S" name in
    Alcotest.(check int) name expected off
  in
  check "v1" 0;
  check "array" 4;
  check "v5" 20;
  Alcotest.check_raises "unknown field" Not_found (fun () ->
      ignore (Ctype.field_offset tenv_fig9 "S" "nope"))

let test_recursive_struct () =
  let t =
    Ctype.declare Ctype.empty_tenv
      {
        Ctype.sname = "node";
        fields =
          [
            { fname = "v"; fty = Ctype.I64 };
            { fname = "next"; fty = Ctype.Ptr (Ctype.Struct "node") };
          ];
      }
  in
  Alcotest.(check int) "recursive via pointer" 16
    (Ctype.sizeof t (Ctype.Struct "node"))

(* ---- layout tables (Fig. 9b) ---- *)

let layout_fig9 () = Layout.build tenv_fig9 s_ty

let test_fig9_table () =
  let l = layout_fig9 () in
  Alcotest.(check int) "6 elements" 6 (Layout.length l);
  let e i = Layout.get l i in
  let check i ~parent ~base ~bound ~size =
    let el = e i in
    Alcotest.(check (list int))
      (Printf.sprintf "element %d" i)
      [ parent; base; bound; size ]
      [ el.Layout.parent; el.base; el.bound; el.elem_size ]
  in
  (* exactly the paper's Fig. 9b *)
  check 0 ~parent:0 ~base:0 ~bound:24 ~size:24;
  check 1 ~parent:0 ~base:0 ~bound:4 ~size:4;
  check 2 ~parent:0 ~base:4 ~bound:20 ~size:8;
  check 3 ~parent:2 ~base:0 ~bound:4 ~size:4;
  check 4 ~parent:2 ~base:4 ~bound:8 ~size:4;
  check 5 ~parent:0 ~base:20 ~bound:24 ~size:4

let test_index_of_path () =
  let l = layout_fig9 () in
  let check path expected =
    Alcotest.(check (option int)) "path index" expected (Layout.index_of_path l path)
  in
  check [] (Some 0);
  check [ Layout.Field "v1" ] (Some 1);
  check [ Layout.Field "array" ] (Some 2);
  check [ Layout.Field "array"; Layout.Index ] (Some 2);
  check [ Layout.Field "array"; Layout.Index; Layout.Field "v3" ] (Some 3);
  check [ Layout.Field "array"; Layout.Index; Layout.Field "v4" ] (Some 4);
  check [ Layout.Field "v5" ] (Some 5);
  check [ Layout.Field "nope" ] None

let test_narrow_fig9 () =
  let l = layout_fig9 () in
  let base = 0x1000L in
  (* pointer to S.array[1].v3: offset 4 + 8 + 0 = 12 *)
  let addr = Int64.add base 12L in
  (match Layout.narrow l ~obj_base:base ~obj_size:24 ~addr ~index:3 with
  | Some (lo, hi) ->
    Alcotest.(check int64) "v3 lo" (Int64.add base 12L) lo;
    Alcotest.(check int64) "v3 hi" (Int64.add base 16L) hi
  | None -> Alcotest.fail "narrow failed");
  (* pointer to S.v5 *)
  (match Layout.narrow l ~obj_base:base ~obj_size:24 ~addr:(Int64.add base 20L)
           ~index:5 with
  | Some (lo, hi) ->
    Alcotest.(check int64) "v5 lo" (Int64.add base 20L) lo;
    Alcotest.(check int64) "v5 hi" (Int64.add base 24L) hi
  | None -> Alcotest.fail "narrow failed");
  (* whole array keeps array bounds (iteration allowed) *)
  match Layout.narrow l ~obj_base:base ~obj_size:24 ~addr:(Int64.add base 12L)
          ~index:2 with
  | Some (lo, hi) ->
    Alcotest.(check int64) "array lo" (Int64.add base 4L) lo;
    Alcotest.(check int64) "array hi" (Int64.add base 20L) hi
  | None -> Alcotest.fail "narrow failed"

let test_narrow_array_of_struct_snapping () =
  (* an object that is an array of S (heap array): element 0's stride
     snaps children to the right S copy *)
  let l = layout_fig9 () in
  let base = 0x2000L in
  (* second copy of S starts at +24; its v5 at +44 *)
  match Layout.narrow l ~obj_base:base ~obj_size:48 ~addr:(Int64.add base 44L)
          ~index:5 with
  | Some (lo, hi) ->
    Alcotest.(check int64) "snapped v5 lo" (Int64.add base 44L) lo;
    Alcotest.(check int64) "snapped v5 hi" (Int64.add base 48L) hi
  | None -> Alcotest.fail "narrow failed"

let test_narrow_out_of_range () =
  let l = layout_fig9 () in
  Alcotest.(check bool) "bad index" true
    (Layout.narrow l ~obj_base:0L ~obj_size:24 ~addr:4L ~index:9 = None);
  Alcotest.(check bool) "address outside object" true
    (Layout.narrow l ~obj_base:0L ~obj_size:24 ~addr:100L ~index:1 = None)

let test_walk_steps () =
  let l = layout_fig9 () in
  Alcotest.(check int) "element 0 free" 0 (Layout.walk_steps l ~index:0);
  Alcotest.(check int) "flattened child 1 step" 1 (Layout.walk_steps l ~index:5);
  Alcotest.(check int) "array child 2 steps" 2 (Layout.walk_steps l ~index:3)

let test_scalar_layout_trivial () =
  let l = Layout.build Ctype.empty_tenv Ctype.I64 in
  Alcotest.(check int) "single element" 1 (Layout.length l);
  let l2 = Layout.build Ctype.empty_tenv (Ctype.Array (Ctype.I32, 16)) in
  Alcotest.(check int) "scalar array single element" 1 (Layout.length l2)

(* property: for random valid subobject indices, narrowing yields bounds
   contained in the object and containing the probe address's subobject *)
let prop_narrow_contained =
  QCheck.Test.make ~count:200 ~name:"narrowed bounds are within the object"
    QCheck.(pair (int_bound 5) (int_bound 23))
    (fun (index, off) ->
      let l = layout_fig9 () in
      let base = 0x4000L in
      let addr = Int64.add base (Int64.of_int off) in
      match Layout.narrow l ~obj_base:base ~obj_size:24 ~addr ~index with
      | None -> true
      | Some (lo, hi) ->
        Int64.compare base lo <= 0
        && Int64.compare hi (Int64.add base 24L) <= 0
        && Int64.compare lo hi < 0)

let tests =
  [
    Alcotest.test_case "sizeof/align" `Quick test_sizeof_align;
    Alcotest.test_case "padding" `Quick test_padding;
    Alcotest.test_case "field offsets" `Quick test_field_offsets;
    Alcotest.test_case "recursive struct" `Quick test_recursive_struct;
    Alcotest.test_case "Fig.9 layout table" `Quick test_fig9_table;
    Alcotest.test_case "index_of_path" `Quick test_index_of_path;
    Alcotest.test_case "narrow Fig.9" `Quick test_narrow_fig9;
    Alcotest.test_case "narrow snaps array-of-struct" `Quick
      test_narrow_array_of_struct_snapping;
    Alcotest.test_case "narrow out of range" `Quick test_narrow_out_of_range;
    Alcotest.test_case "walk steps" `Quick test_walk_steps;
    Alcotest.test_case "scalar layouts trivial" `Quick test_scalar_layout_trivial;
    QCheck_alcotest.to_alcotest prop_narrow_contained;
  ]
