(* Unit and property tests for Ifp_util: bit fields, PRNG, stats, tables. *)

open Core

let test_mask () =
  Alcotest.(check int64) "mask 0" 0L (Bits.mask 0);
  Alcotest.(check int64) "mask 1" 1L (Bits.mask 1);
  Alcotest.(check int64) "mask 16" 0xFFFFL (Bits.mask 16);
  Alcotest.(check int64) "mask 48" 0xFFFF_FFFF_FFFFL (Bits.mask 48);
  Alcotest.check_raises "mask 64 rejected" (Invalid_argument "Bits.mask")
    (fun () -> ignore (Bits.mask 64))

let test_extract_insert () =
  let x = 0xDEAD_BEEF_CAFE_F00DL in
  Alcotest.(check int64) "extract low byte" 0x0DL (Bits.extract x ~lo:0 ~width:8);
  Alcotest.(check int64) "extract mid" 0xFEL (Bits.extract x ~lo:16 ~width:8);
  let y = Bits.insert x ~lo:48 ~width:16 0x1234L in
  Alcotest.(check int64) "insert top" 0x1234L (Bits.extract y ~lo:48 ~width:16);
  Alcotest.(check int64) "insert preserves rest" (Bits.u48 x) (Bits.u48 y)

let test_pow2 () =
  Alcotest.(check bool) "1 is pow2" true (Bits.is_pow2 1);
  Alcotest.(check bool) "4096 is pow2" true (Bits.is_pow2 4096);
  Alcotest.(check bool) "0 is not" false (Bits.is_pow2 0);
  Alcotest.(check bool) "6 is not" false (Bits.is_pow2 6);
  Alcotest.(check int) "log2 4096" 12 (Bits.log2_exact 4096);
  Alcotest.(check int) "ceil_log2 1" 0 (Bits.ceil_log2 1);
  Alcotest.(check int) "ceil_log2 1000" 10 (Bits.ceil_log2 1000);
  Alcotest.(check int) "ceil_log2 1024" 10 (Bits.ceil_log2 1024)

let test_align () =
  Alcotest.(check int) "align_up 5 16" 16 (Bits.align_up 5 16);
  Alcotest.(check int) "align_up 16 16" 16 (Bits.align_up 16 16);
  Alcotest.(check int) "align_down 31 16" 16 (Bits.align_down 31 16);
  Alcotest.(check int64) "align_up64" 32L (Bits.align_up64 17L 16);
  Alcotest.(check int64) "align_down64" 16L (Bits.align_down64 31L 16)

let prop_insert_extract =
  QCheck.Test.make ~count:500 ~name:"insert then extract round-trips"
    QCheck.(triple int64 (int_bound 47) (int_range 1 16))
    (fun (x, lo, width) ->
      let v = Int64.logand x (Bits.mask width) in
      Int64.equal (Bits.extract (Bits.insert 0L ~lo ~width v) ~lo ~width) v)

let prop_align_up_ge =
  QCheck.Test.make ~count:500 ~name:"align_up is >= and aligned"
    QCheck.(pair (int_bound 1_000_000) (int_range 0 12))
    (fun (x, l) ->
      let a = 1 lsl l in
      let r = Bits.align_up x a in
      r >= x && r mod a = 0 && r - x < a)

let test_prng_determinism () =
  let a = Prng.create 99L and b = Prng.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_bounds () =
  let r = Prng.create 7L in
  for _ = 1 to 1000 do
    let x = Prng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done;
  for _ = 1 to 1000 do
    let x = Prng.int_in r (-5) 5 in
    Alcotest.(check bool) "int_in range" true (x >= -5 && x <= 5)
  done

let test_prng_shuffle_permutes () =
  let r = Prng.create 3L in
  let a = Array.init 50 Fun.id in
  Prng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_mix2_sensitivity () =
  let base = Prng.mix2 1L 2L in
  Alcotest.(check bool) "first arg matters" true
    (not (Int64.equal base (Prng.mix2 2L 2L)));
  Alcotest.(check bool) "second arg matters" true
    (not (Int64.equal base (Prng.mix2 1L 3L)))

let test_stats () =
  Alcotest.(check (float 1e-9)) "geomean of equal" 2.0
    (Stats.geomean [ 2.0; 2.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "geomean 1 for empty" 1.0 (Stats.geomean []);
  Alcotest.(check (float 1e-6)) "geomean 2,8" 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  Alcotest.(check string) "percent +" "+12.0%" (Stats.percent 1.12);
  Alcotest.(check string) "percent -" "-6.0%" (Stats.percent 0.94);
  Alcotest.(check (float 1e-9)) "ratio guard" 0.0 (Stats.ratio 5.0 0.0)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "b" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ] in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.index_opt s 'a' <> None);
  (* all lines have the same width *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let widths = List.map String.length lines in
  Alcotest.(check bool) "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let tests =
  [
    Alcotest.test_case "mask" `Quick test_mask;
    Alcotest.test_case "extract/insert" `Quick test_extract_insert;
    Alcotest.test_case "pow2 helpers" `Quick test_pow2;
    Alcotest.test_case "align" `Quick test_align;
    QCheck_alcotest.to_alcotest prop_insert_extract;
    QCheck_alcotest.to_alcotest prop_align_up_ge;
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "mix2 sensitivity" `Quick test_mix2_sensitivity;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "table render" `Quick test_table_render;
  ]
