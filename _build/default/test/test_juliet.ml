(* Functional-evaluation invariants (paper §5.1): IFP detects every bad
   case with no false positives; the baseline is silent; the no-promote
   control misses exactly the flows that need promote. *)

open Core
module J = Ifp_juliet.Juliet

let cases = lazy (J.all_cases ())

let summaries = Hashtbl.create 8

let summary config_name config =
  match Hashtbl.find_opt summaries config_name with
  | Some s -> s
  | None ->
    let _, s = J.run_all ~config (Lazy.force cases) in
    Hashtbl.replace summaries config_name s;
    s

let test_case_count () =
  Alcotest.(check int) "6 kinds x 2 places x 6 flows" 72
    (List.length (Lazy.force cases))

let test_ifp_detects_all () =
  List.iter
    (fun (name, cfg) ->
      let s = summary name cfg in
      Alcotest.(check int) (name ^ " detects all") s.J.total s.J.detected;
      Alcotest.(check int) (name ^ " no false positives") 0 s.J.good_failures)
    [ ("wrapped", Vm.ifp_wrapped); ("subheap", Vm.ifp_subheap) ]

let test_baseline_silent () =
  let s = summary "baseline" Vm.baseline in
  Alcotest.(check int) "baseline detects nothing" 0 s.J.detected;
  Alcotest.(check int) "baseline good cases fine" 0 s.J.good_failures

let test_no_promote_misses_memory_flows () =
  let config = Vm.no_promote Vm.Alloc_subheap in
  let outcomes, s = J.run_all ~config (Lazy.force cases) in
  Alcotest.(check int) "misses exactly the 24 memory-round-trip cases" 24
    s.J.missed;
  List.iter
    (fun (o : J.outcome) ->
      match o.bad_verdict with
      | J.Silent ->
        Alcotest.(check bool)
          (o.case.id ^ " missed case is a memory round trip")
          true
          (o.case.flow = J.Via_global || o.case.flow = J.Via_field)
      | _ -> ())
    outcomes;
  Alcotest.(check int) "still no false positives" 0 s.J.good_failures

let test_intra_object_needs_subobject_granularity () =
  (* run only intra-object cases under full IFP: all caught *)
  let intra =
    List.filter
      (fun (c : J.case) -> c.kind = J.Intra_object || c.kind = J.Nested_intra)
      (Lazy.force cases)
  in
  let _, s = J.run_all ~config:Vm.ifp_subheap intra in
  Alcotest.(check int) "all intra-object detected" s.J.total s.J.detected

let test_good_programs_return_same_value_instrumented () =
  (* instrumentation must not change the semantics of correct programs *)
  List.iter
    (fun (c : J.case) ->
      let r1 = Vm.run ~config:Vm.baseline c.good in
      let r2 = Vm.run ~config:Vm.ifp_subheap c.good in
      match (r1.Vm.outcome, r2.Vm.outcome) with
      | Vm.Finished a, Vm.Finished b ->
        Alcotest.(check int64) (c.id ^ " good checksum") a b
      | _ -> Alcotest.fail (c.id ^ " good case did not finish"))
    (Lazy.force cases)

let tests =
  [
    Alcotest.test_case "case inventory" `Quick test_case_count;
    Alcotest.test_case "IFP detects all" `Slow test_ifp_detects_all;
    Alcotest.test_case "baseline silent" `Slow test_baseline_silent;
    Alcotest.test_case "no-promote misses via-global" `Slow
      test_no_promote_misses_memory_flows;
    Alcotest.test_case "intra-object granularity" `Slow
      test_intra_object_needs_subobject_granularity;
    Alcotest.test_case "good semantics preserved" `Slow
      test_good_programs_return_same_value_instrumented;
  ]
