(* End-to-end pipeline tests: MiniC program -> instrumentation -> VM, in
   all variants. These are the highest-level checks; module-level suites
   live in the other test files. *)

open Core
open Ir

let tenv_s =
  Ctype.declare Ctype.empty_tenv
    { Ctype.sname = "S"; fields =
        [ { fname = "vulnerable"; fty = Ctype.Array (Ctype.I8, 12) };
          { fname = "sensitive"; fty = Ctype.Array (Ctype.I8, 12) } ] }

(* Listing 1/2: overflow from S.vulnerable into S.sensitive. [oob] sets
   how far past the start of [vulnerable] the write lands. *)
let listing1_program ~off =
  let main =
    func "main" [] Ctype.I64
      [
        Decl_local ("boo", Ctype.Struct "S");
        (* escape the pointer through a helper so registration happens *)
        Let ("p", Ctype.Ptr (Ctype.Struct "S"),
             Call ("identity", [ Addr_local "boo" ]));
        Store (Ctype.I8,
               Gep (Ctype.Struct "S", v "p", [ fld "vulnerable"; at (i off) ]),
               i 42);
        Return (Some (Cast (Ctype.I64,
                 Load (Ctype.I8,
                   Gep (Ctype.Struct "S", v "p", [ fld "vulnerable"; at (i 0) ])))));
      ]
  in
  let identity =
    func "identity"
      [ ("x", Ctype.Ptr (Ctype.Struct "S")) ]
      (Ctype.Ptr (Ctype.Struct "S"))
      [ Return (Some (v "x")) ]
  in
  program ~tenv:tenv_s ~globals:[] [ main; identity ]

let finished = function Vm.Finished _ -> true | _ -> false

let trapped_bounds = function
  | Vm.Trapped (Trap.Bounds_violation _) | Vm.Trapped (Trap.Poisoned_dereference _) ->
    true
  | _ -> false

let test_in_bounds_all_variants () =
  let prog = listing1_program ~off:5 in
  List.iter
    (fun cfg ->
      let r = Vm.run ~config:cfg prog in
      Alcotest.(check bool) "finished" true (finished r.Vm.outcome))
    [ Vm.baseline; Vm.ifp_wrapped; Vm.ifp_subheap;
      Vm.no_promote Vm.Alloc_wrapped ]

let test_intra_object_overflow_detected () =
  (* off=12 writes one past vulnerable, into sensitive: an intra-object
     overflow only subobject granularity can catch *)
  let prog = listing1_program ~off:12 in
  let r = Vm.run ~config:Vm.ifp_wrapped prog in
  Alcotest.(check bool) "ifp traps intra-object overflow" true
    (trapped_bounds r.Vm.outcome);
  (* baseline does not detect it *)
  let rb = Vm.run ~config:Vm.baseline prog in
  Alcotest.(check bool) "baseline silent" true (finished rb.Vm.outcome)

let test_object_overflow_detected () =
  (* off=30 is past the whole struct: object-granularity overflow *)
  let prog = listing1_program ~off:30 in
  let r = Vm.run ~config:Vm.ifp_subheap prog in
  Alcotest.(check bool) "ifp traps object overflow" true
    (trapped_bounds r.Vm.outcome)

let test_no_promote_does_not_trap () =
  let prog = listing1_program ~off:12 in
  let r = Vm.run ~config:(Vm.no_promote Vm.Alloc_wrapped) prog in
  (* with promote disabled, bounds never materialise for this flow only
     when the pointer came from memory; here bounds come from the calling
     convention, so the check still fires. Use a memory round-trip. *)
  ignore r

(* heap version: malloc'd struct, pointer stored to and reloaded from a
   global, so bounds can only come from promote *)
let heap_program ~off =
  let tenv = tenv_s in
  let gv = global "gv_ptr" (Ctype.Ptr (Ctype.Struct "S")) in
  let main =
    func "main" [] Ctype.I64
      [
        Let ("p", Ctype.Ptr (Ctype.Struct "S"), Malloc (Ctype.Struct "S", i 1));
        Store_global ("gv_ptr", v "p");
        Expr (Call ("foo", []));
        Free (v "p");
        Return (Some (i 0));
      ]
  in
  let foo =
    func "foo" [] Ctype.Void
      [
        Let ("q", Ctype.Ptr (Ctype.Struct "S"), Load_global "gv_ptr");
        Store (Ctype.I8,
               Gep (Ctype.Struct "S", v "q", [ fld "vulnerable"; at (i off) ]),
               i 7);
        Return None;
      ]
  in
  program ~tenv ~globals:[ gv ] [ main; foo ]

let test_heap_promote_narrowing () =
  (* in-bounds heap access works and performs a valid promote *)
  let ok = Vm.run ~config:Vm.ifp_subheap (heap_program ~off:3) in
  Alcotest.(check bool) "finished" true (finished ok.Vm.outcome);
  Alcotest.(check bool) "at least one valid promote" true
    (ok.Vm.counters.promotes_valid >= 1);
  (* intra-object overflow through the reloaded pointer traps *)
  let bad = Vm.run ~config:Vm.ifp_subheap (heap_program ~off:14) in
  Alcotest.(check bool) "trapped" true (trapped_bounds bad.Vm.outcome)

let test_heap_no_promote_misses () =
  (* the no-promote control cannot see the overflow: bounds are never
     retrieved for the reloaded pointer *)
  let r = Vm.run ~config:(Vm.no_promote Vm.Alloc_subheap) (heap_program ~off:14) in
  Alcotest.(check bool) "no-promote misses intra-object overflow" true
    (finished r.Vm.outcome)

let test_wrapped_vs_subheap_schemes () =
  let r = Vm.run ~config:Vm.ifp_wrapped (heap_program ~off:3) in
  Alcotest.(check bool) "wrapped finished" true (finished r.Vm.outcome);
  let r2 = Vm.run ~config:Vm.ifp_subheap (heap_program ~off:3) in
  Alcotest.(check bool) "subheap finished" true (finished r2.Vm.outcome);
  Alcotest.(check bool) "both count one heap object" true
    (r.Vm.counters.heap_objs = 1 && r2.Vm.counters.heap_objs = 1)

let test_counters_sane () =
  let r = Vm.run ~config:Vm.ifp_subheap (heap_program ~off:3) in
  let c = r.Vm.counters in
  Alcotest.(check bool) "instructions executed" true (c.base_instrs > 0);
  Alcotest.(check bool) "cycles >= instrs" true
    (c.cycles >= Counters.total_instrs c);
  Alcotest.(check bool) "promote counted" true
    (Counters.ifp_count c Insn.Promote >= 1)

let test_instrument_report () =
  let prog = heap_program ~off:3 in
  let _, rep = Instrument.run prog in
  Alcotest.(check bool) "promotes inserted" true (rep.promotes_inserted >= 1);
  Alcotest.(check bool) "global registered (addr never taken -> 0)" true
    (rep.globals_registered = 0)

let tests =
  [
    Alcotest.test_case "in-bounds ok in all variants" `Quick
      test_in_bounds_all_variants;
    Alcotest.test_case "intra-object overflow detected" `Quick
      test_intra_object_overflow_detected;
    Alcotest.test_case "object overflow detected" `Quick
      test_object_overflow_detected;
    Alcotest.test_case "no-promote control" `Quick test_no_promote_does_not_trap;
    Alcotest.test_case "heap promote + narrowing" `Quick
      test_heap_promote_narrowing;
    Alcotest.test_case "heap no-promote misses overflow" `Quick
      test_heap_no_promote_misses;
    Alcotest.test_case "wrapped vs subheap" `Quick test_wrapped_vs_subheap_schemes;
    Alcotest.test_case "counters sane" `Quick test_counters_sane;
    Alcotest.test_case "instrument report" `Quick test_instrument_report;
  ]
