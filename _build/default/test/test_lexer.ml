(* Unit tests for the MiniC lexer. *)

module L = Ifp_compiler.Lexer

let toks src =
  let lx = L.create src in
  let rec go acc =
    match L.next lx with L.EOF -> List.rev acc | t -> go (t :: acc)
  in
  go []

let tok = Alcotest.testable (fun fmt t -> Format.pp_print_string fmt (L.token_to_string t)) ( = )

let test_basic () =
  Alcotest.(check (list tok)) "idents + punct"
    [ L.KW "i64"; L.IDENT "main"; L.PUNCT "("; L.PUNCT ")" ]
    (toks "i64 main()");
  Alcotest.(check (list tok)) "numbers"
    [ L.INT 42L; L.FLOAT 1.5; L.INT 255L ]
    (toks "42 1.5 0xFF")

let test_longest_match () =
  Alcotest.(check (list tok)) "multi-char operators"
    [ L.PUNCT "<<"; L.PUNCT "<="; L.PUNCT "<"; L.PUNCT "->"; L.PUNCT "-";
      L.PUNCT "&&"; L.PUNCT "&" ]
    (toks "<< <= < -> - && &")

let test_comments () =
  Alcotest.(check (list tok)) "comments stripped"
    [ L.INT 1L; L.INT 2L ]
    (toks "1 // x\n/* y\n z */ 2")

let test_line_tracking () =
  let lx = L.create "a\nb\n\nc" in
  ignore (L.next lx);
  ignore (L.next lx);
  ignore (L.next lx);
  Alcotest.(check int) "line 4 after c" 4 (L.line lx)

let test_peek2 () =
  let lx = L.create "a b c" in
  Alcotest.(check tok) "peek" (L.IDENT "a") (L.peek lx);
  Alcotest.(check tok) "peek2" (L.IDENT "b") (L.peek2 lx);
  Alcotest.(check tok) "next still a" (L.IDENT "a") (L.next lx);
  Alcotest.(check tok) "then b" (L.IDENT "b") (L.next lx)

let test_errors () =
  (match toks "@" with
  | exception L.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected lex error");
  match toks "/* unterminated" with
  | exception L.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected unterminated-comment error"

let test_keywords_vs_idents () =
  Alcotest.(check (list tok)) "keyword recognition"
    [ L.KW "struct"; L.IDENT "structx"; L.IDENT "mystruct"; L.KW "malloc" ]
    (toks "struct structx mystruct malloc")

let tests =
  [
    Alcotest.test_case "basic tokens" `Quick test_basic;
    Alcotest.test_case "longest match" `Quick test_longest_match;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "line tracking" `Quick test_line_tracking;
    Alcotest.test_case "peek2" `Quick test_peek2;
    Alcotest.test_case "lex errors" `Quick test_errors;
    Alcotest.test_case "keywords vs idents" `Quick test_keywords_vs_idents;
  ]
