(* Functional evaluation (paper §5.1): run the generated Juliet-style
   suite under the chosen configuration and report detection results. *)

let config_of = function
  | "baseline" -> Core.Vm.baseline
  | "subheap" -> Core.Vm.ifp_subheap
  | "wrapped" -> Core.Vm.ifp_wrapped
  | "subheap-np" -> Core.Vm.no_promote Core.Vm.Alloc_subheap
  | "wrapped-np" -> Core.Vm.no_promote Core.Vm.Alloc_wrapped
  | "mixed" -> Core.Vm.ifp_mixed
  | "no-narrowing" -> Core.Vm.no_narrowing Core.Vm.Alloc_subheap
  | s ->
    Printf.eprintf "unknown config %s\n" s;
    exit 1

let () =
  let cfg_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "wrapped" in
  let verbose = Array.exists (String.equal "-v") Sys.argv in
  let config = config_of cfg_name in
  let cases = Ifp_juliet.Juliet.all_cases () in
  let outcomes, summary = Ifp_juliet.Juliet.run_all ~config cases in
  Printf.printf "Juliet-style functional evaluation under %s (%d cases)\n\n"
    cfg_name summary.total;
  List.iter
    (fun (o : Ifp_juliet.Juliet.outcome) ->
      let verdict =
        match o.bad_verdict with
        | Ifp_juliet.Juliet.Detected -> "DETECTED"
        | Silent -> "missed"
        | False_positive -> "false-positive"
        | Error m -> "ERROR " ^ m
      in
      if verbose || o.bad_verdict <> Ifp_juliet.Juliet.Detected || not o.good_ok
      then
        Printf.printf "  %-36s bad: %-10s good: %s\n" o.case.id verdict
          (if o.good_ok then "ok" else "FAILED"))
    outcomes;
  Printf.printf
    "\nsummary: %d/%d bad cases detected, %d missed, %d good-case failures\n"
    summary.detected summary.total summary.missed summary.good_failures
