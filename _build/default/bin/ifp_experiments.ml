(* Regenerate every table and figure of the paper's evaluation (§5):
     table2    — metadata-scheme constraints (Table 2)
     table4    — dynamic event counts (Table 4)
     fig10     — runtime overhead, subheap/wrapped +/- no-promote (Fig. 10)
     fig11     — dynamic IFP-instruction mix (Fig. 11)
     fig12     — memory overhead (Fig. 12)
     fig13     — hardware area model (Fig. 13)
     baselines — comparator schemes on the same runs (Table 1 / §5.2.2)
     juliet    — functional evaluation summary (§5.1)
     all       — everything above *)

open Core
module W = Ifp_workloads.Workload
module Registry = Ifp_workloads.Registry
module Table = Ifp_util.Table

let rows : (string, Report.row) Hashtbl.t = Hashtbl.create 32

let row_of (wl : W.t) =
  match Hashtbl.find_opt rows wl.name with
  | Some r -> r
  | None ->
    let prog = Lazy.force wl.prog in
    let r = Report.evaluate ~name:wl.name prog in
    (match Report.check_outcomes r with
    | [] -> ()
    | bad ->
      List.iter
        (fun (vname, why) ->
          Printf.eprintf "WARNING: %s/%s did not finish: %s\n%!" wl.name vname why)
        bad);
    Hashtbl.replace rows wl.name r;
    r

let fmt_x r = Printf.sprintf "%.2fx" r
let fmt_pct r = Ifp_util.Stats.percent r

let sci n =
  if n = 0 then "0"
  else if n < 100_000 then string_of_int n
  else Printf.sprintf "%.2e" (float_of_int n)

(* ---------------- Table 2 ---------------- *)

let table2 () =
  print_endline "== Table 2: object metadata schemes (constraints measured) ==";
  let rows =
    [
      [ "local offset"; "base granule-aligned"; "<= 1008 B"; "unlimited";
        "small objects, locals" ];
      [ "subheap"; "pow2-aligned blocks"; "block-capacity bound";
        "16 control regs / block sizes"; "heap objects" ];
      [ "global table"; "none"; "none";
        Printf.sprintf "%d rows" (Tag.global_table_entries - 1);
        "large globals, fallback" ];
    ]
  in
  Table.print
    ~header:[ "scheme"; "placement constraint"; "max object size";
              "object count limit"; "use scenario" ]
    rows;
  (* verify the constants against the implementation *)
  Printf.printf
    "\n(tag budget: 16 bits = 2 poison + 2 selector + 12 scheme/subobject;\n\
    \ local offset: %d B granule, %d B max object, %d layout elements;\n\
    \ subheap: %d subobject-index values; global table: %d entries)\n\n"
    Tag.granule Tag.local_offset_max_object Tag.local_offset_max_elements
    Tag.subheap_max_elements Tag.global_table_entries

(* ---------------- Table 4 ---------------- *)

let table4 () =
  print_endline
    "== Table 4: object instrumentation, valid promotes, dynamic instructions ==";
  let header =
    [ "benchmark"; "glob(LT%)"; "local(LT%)"; "heap(LT%)"; "valid promote";
      "(% of promotes)"; "baseline instrs"; "subheap"; "wrapped" ]
  in
  let body =
    List.map
      (fun (wl : W.t) ->
        let r = row_of wl in
        let c = r.subheap.Vm.counters in
        let pct a b = if b = 0 then "-" else Printf.sprintf "%d%%" (100 * a / b) in
        let objs n lt = if n = 0 then "0" else sci n ^ " (" ^ pct lt n ^ ")" in
        let promotes = Counters.promotes_total c in
        let base_instrs = Counters.total_instrs r.baseline.Vm.counters in
        [
          wl.name;
          objs c.global_objs c.global_objs_layout;
          objs c.local_objs c.local_objs_layout;
          objs c.heap_objs c.heap_objs_layout;
          sci c.promotes_valid;
          pct c.promotes_valid promotes;
          sci base_instrs;
          fmt_x (Report.instr_overhead ~baseline:r.baseline r.subheap);
          fmt_x (Report.instr_overhead ~baseline:r.baseline r.wrapped);
        ])
      Registry.all
  in
  Table.print ~header body;
  let geo sel =
    Ifp_util.Stats.geomean
      (List.map
         (fun (wl : W.t) ->
           let r = row_of wl in
           Report.instr_overhead ~baseline:r.baseline (sel r))
         Registry.all)
  in
  Printf.printf
    "\ngeo-mean dynamic instruction increase: subheap %s, wrapped %s\n\
     (paper: subheap +5%%, wrapped +14%%)\n\n"
    (fmt_pct (geo (fun r -> r.Report.subheap)))
    (fmt_pct (geo (fun r -> r.Report.wrapped)))

(* ---------------- Fig 10 ---------------- *)

let fig10 () =
  print_endline "== Figure 10: runtime overhead (cycles vs baseline) ==";
  let header =
    [ "benchmark"; "subheap"; "wrapped"; "subheap-np"; "wrapped-np" ]
  in
  let body =
    List.map
      (fun (wl : W.t) ->
        let r = row_of wl in
        let ov x = fmt_pct (Report.runtime_overhead ~baseline:r.baseline x) in
        [ wl.name; ov r.subheap; ov r.wrapped; ov r.subheap_np; ov r.wrapped_np ])
      Registry.all
  in
  Table.print ~header body;
  let geo sel =
    Ifp_util.Stats.geomean
      (List.map
         (fun (wl : W.t) ->
           let r = row_of wl in
           Report.runtime_overhead ~baseline:r.baseline (sel r))
         Registry.all)
  in
  Printf.printf
    "\ngeo-mean runtime overhead: subheap %s, wrapped %s (paper: ~12%%, ~24%%)\n\
     no-promote controls:       subheap %s, wrapped %s\n\n"
    (fmt_pct (geo (fun r -> r.Report.subheap)))
    (fmt_pct (geo (fun r -> r.Report.wrapped)))
    (fmt_pct (geo (fun r -> r.Report.subheap_np)))
    (fmt_pct (geo (fun r -> r.Report.wrapped_np)))

(* ---------------- Fig 11 ---------------- *)

let fig11 () =
  print_endline
    "== Figure 11: dynamic counts of In-Fat Pointer instructions (subheap) ==";
  let header =
    [ "benchmark"; "promote"; "ifp arithmetic"; "bounds ld/st"; "% of baseline" ]
  in
  let body =
    List.map
      (fun (wl : W.t) ->
        let r = row_of wl in
        let c = r.subheap.Vm.counters in
        let n k = Counters.ifp_count c k in
        let promote = n Insn.Promote in
        let arith =
          n Insn.Ifpadd + n Insn.Ifpidx + n Insn.Ifpbnd + n Insn.Ifpchk
          + n Insn.Ifpextract + n Insn.Ifpmd + n Insn.Ifpmac
        in
        let ldst = n Insn.Ldbnd + n Insn.Stbnd in
        let basei = Counters.total_instrs r.baseline.Vm.counters in
        [
          wl.name; sci promote; sci arith; sci ldst;
          Printf.sprintf "%.1f%%"
            (100.0 *. float_of_int (promote + arith + ldst) /. float_of_int basei);
        ])
      Registry.all
  in
  Table.print ~header body;
  print_newline ()

(* ---------------- Fig 12 ---------------- *)

(* the paper excludes programs whose footprint is below `time -v`'s
   resolution (<6 MB there); at our scaled-down sizes the equivalent
   cutoff is 16 KiB of baseline footprint *)
let fig12_cutoff = 16 * 1024

let fig12 () =
  print_endline "== Figure 12: memory overhead (max footprint vs baseline) ==";
  let header = [ "benchmark"; "subheap"; "wrapped" ] in
  let included, excluded =
    List.partition
      (fun (wl : W.t) ->
        (row_of wl).baseline.Vm.mem_footprint >= fig12_cutoff)
      Registry.all
  in
  let fig12_excluded = List.map (fun (wl : W.t) -> wl.W.name) excluded in
  let body =
    List.map
      (fun (wl : W.t) ->
        let r = row_of wl in
        let ov x = fmt_pct (Report.memory_overhead ~baseline:r.baseline x) in
        [ wl.name; ov r.subheap; ov r.wrapped ])
      included
  in
  Table.print ~header body;
  let geo sel =
    Ifp_util.Stats.geomean
      (List.map
         (fun (wl : W.t) ->
           let r = row_of wl in
           Report.memory_overhead ~baseline:r.baseline (sel r))
         included)
  in
  Printf.printf
    "\ngeo-mean memory overhead: subheap %s, wrapped %s (paper: -6%%, +21%%)\n\
     (excluded, as in the paper: %s)\n\n"
    (fmt_pct (geo (fun r -> r.Report.subheap)))
    (fmt_pct (geo (fun r -> r.Report.wrapped)))
    (String.concat ", " fig12_excluded)

(* ---------------- Fig 13 ---------------- *)

let fig13 () =
  print_endline "== Figure 13: LUT increase in the modified processor (model) ==";
  let open Ifp_hwmodel.Hwmodel in
  Table.print
    ~header:[ "component"; "stage"; "LUTs"; "FFs" ]
    (List.map
       (fun c ->
         [ c.cname; stage_to_string c.stage; string_of_int c.luts;
           string_of_int c.ffs ])
       components);
  Printf.printf "\nper-stage added LUTs:\n";
  List.iter
    (fun (s, l) -> Printf.printf "  %-16s %d\n" (stage_to_string s) l)
    (by_stage full);
  Printf.printf
    "\ntotals: %d -> %d LUTs (+%.0f%%), %d -> %d FFs\n\
     (paper: 37,088 -> 59,261 LUTs, +60%%; 21,993 -> 32,545 FFs, +48%%)\n"
    vanilla_luts (total_luts full) (lut_increase_pct full) vanilla_ffs
    (total_ffs full);
  let no_walker = { full with layout_walker = false } in
  let no_bregs = { full with bounds_registers = false } in
  Printf.printf
    "\nablations (§5.3):\n\
    \  drop layout walker:    +%d LUTs (+%.0f%%) — loses hardware narrowing\n\
    \  drop bounds registers: +%d LUTs (+%.0f%%) — the largest single saving\n\n"
    (added_luts no_walker) (lut_increase_pct no_walker) (added_luts no_bregs)
    (lut_increase_pct no_bregs)

(* ---------------- Baselines ---------------- *)

let baselines () =
  print_endline
    "== Comparators (Table 1 / §5.2.2): projected overheads, geo-mean over all benchmarks ==";
  let header =
    [ "scheme"; "instr overhead"; "runtime overhead"; "memory"; "subobject?" ]
  in
  let geo f =
    Ifp_util.Stats.geomean (List.map (fun (wl : W.t) -> f (row_of wl)) Registry.all)
  in
  let comparator_rows =
    List.map
      (fun model ->
        let gi =
          geo (fun r ->
              (Ifp_baselines.Baselines.project model ~baseline:r.Report.baseline
                 ~ifp:r.Report.subheap)
                .instr_overhead)
        in
        let gc =
          geo (fun r ->
              (Ifp_baselines.Baselines.project model ~baseline:r.Report.baseline
                 ~ifp:r.Report.subheap)
                .cycle_overhead)
        in
        let det =
          match model.Ifp_baselines.Baselines.subobject with
          | Ifp_baselines.Baselines.Full -> "yes"
          | Object_only -> "object only"
          | Probabilistic p -> Printf.sprintf "prob. %.0f%%" (100.0 *. p)
          | None_ -> "no"
        in
        [ model.Ifp_baselines.Baselines.name; fmt_x gi; fmt_x gc;
          fmt_x model.memory_factor; det ])
      Ifp_baselines.Baselines.all
  in
  (* memory ratios only over benchmarks above the footprint cutoff, as
     in Fig. 12 *)
  let geo_mem sel =
    Ifp_util.Stats.geomean
      (List.filter_map
         (fun (wl : W.t) ->
           let r = row_of wl in
           if r.Report.baseline.Vm.mem_footprint < fig12_cutoff then None
           else Some (Report.memory_overhead ~baseline:r.baseline (sel r)))
         Registry.all)
  in
  let ifp_rows =
    [
      [ "In-Fat Pointer (subheap)";
        fmt_x (geo (fun r -> Report.instr_overhead ~baseline:r.Report.baseline r.subheap));
        fmt_x (geo (fun r -> Report.runtime_overhead ~baseline:r.Report.baseline r.subheap));
        fmt_x (geo_mem (fun r -> r.Report.subheap));
        "yes" ];
      [ "In-Fat Pointer (wrapped)";
        fmt_x (geo (fun r -> Report.instr_overhead ~baseline:r.Report.baseline r.wrapped));
        fmt_x (geo (fun r -> Report.runtime_overhead ~baseline:r.Report.baseline r.wrapped));
        fmt_x (geo_mem (fun r -> r.Report.wrapped));
        "yes" ];
    ]
  in
  Table.print ~header (comparator_rows @ ifp_rows);
  print_newline ()

(* ---------------- Extensions / ablations ---------------- *)

let extensions () =
  print_endline
    "== Extensions & ablations (paper future work / §5.3 trade-offs) ==";
  (* A1a: drop the layout-table walker -> object granularity only *)
  let cases = Ifp_juliet.Juliet.all_cases () in
  let _, s_full = Ifp_juliet.Juliet.run_all ~config:Vm.ifp_subheap cases in
  let _, s_nonarrow =
    Ifp_juliet.Juliet.run_all ~config:(Vm.no_narrowing Vm.Alloc_subheap) cases
  in
  Printf.printf
    "layout-walker ablation (saves %d LUTs in the area model):\n\
    \  full narrowing: %d/%d detected; walker disabled: %d/%d\n\
    \  -> the difference is exactly the intra-object cases only hardware\n\
    \     narrowing can catch after a pointer's round trip through memory\n\n"
    3059 s_full.detected s_full.total s_nonarrow.detected s_nonarrow.total;
  (* A1b: mixed allocator fixes the subheap's array-fragmentation cost *)
  let em3d = Option.get (Registry.find "em3d") in
  let treeadd = Option.get (Registry.find "treeadd") in
  Printf.printf "mixed allocator (runtime scheme selection, §4.2.1 future work):\n";
  List.iter
    (fun (wl : W.t) ->
      let prog = Lazy.force wl.prog in
      let fp cfg = (Vm.run ~config:cfg prog).Vm.mem_footprint in
      let cyc cfg = (Vm.run ~config:cfg prog).Vm.counters.Counters.cycles in
      Printf.printf
        "  %-8s footprint: subheap %d / mixed %d / wrapped %d; cycles: %d / %d / %d\n"
        wl.name (fp Vm.ifp_subheap) (fp Vm.ifp_mixed) (fp Vm.ifp_wrapped)
        (cyc Vm.ifp_subheap) (cyc Vm.ifp_mixed) (cyc Vm.ifp_wrapped))
    [ em3d; treeadd ];
  (* A1c: allocation-wrapper type inference (§5.2.1 future work) *)
  Printf.printf
    "\nallocation-wrapper type inference (recovers layout tables):\n";
  List.iter
    (fun name ->
      let wl = Option.get (Registry.find name) in
      let prog = Lazy.force wl.W.prog in
      let lt cfg =
        let c = (Vm.run ~config:cfg prog).Vm.counters in
        (c.Counters.heap_objs_layout, c.Counters.heap_objs)
      in
      let off_lt, off_n = lt Vm.ifp_subheap in
      let on_lt, on_n =
        lt { Vm.ifp_subheap with infer_alloc_types = true }
      in
      Printf.printf "  %-14s layout tables: %d/%d objects -> %d/%d with inference\n"
        name off_lt off_n on_lt on_n)
    [ "wolfcrypt-dh"; "health"; "coremark" ];
  print_newline ()

(* ---------------- Juliet ---------------- *)

let juliet () =
  print_endline "== Functional evaluation (§5.1): Juliet-style suite ==";
  let cases = Ifp_juliet.Juliet.all_cases () in
  let run name config =
    let _, s = Ifp_juliet.Juliet.run_all ~config cases in
    Printf.printf "  %-12s %d/%d bad cases detected, %d good-case failures\n"
      name s.detected s.total s.good_failures
  in
  run "baseline" Vm.baseline;
  run "wrapped" Vm.ifp_wrapped;
  run "subheap" Vm.ifp_subheap;
  run "subheap-np" (Vm.no_promote Vm.Alloc_subheap);
  print_newline ()

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let run = function
    | "table2" -> table2 ()
    | "table4" -> table4 ()
    | "fig10" -> fig10 ()
    | "fig11" -> fig11 ()
    | "fig12" -> fig12 ()
    | "fig13" -> fig13 ()
    | "baselines" -> baselines ()
    | "extensions" -> extensions ()
    | "juliet" -> juliet ()
    | other ->
      Printf.eprintf "unknown experiment %s\n" other;
      exit 1
  in
  match which with
  | "all" ->
    List.iter run
      [ "table2"; "table4"; "fig10"; "fig11"; "fig12"; "fig13"; "baselines";
        "extensions"; "juliet" ]
  | w -> run w
