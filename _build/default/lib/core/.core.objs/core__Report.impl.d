lib/core/report.ml: Ifp_isa Ifp_util Ifp_vm List
