lib/core/core.ml: Ifp_alloc Ifp_compiler Ifp_isa Ifp_machine Ifp_metadata Ifp_types Ifp_util Ifp_vm Report
