lib/core/report.mli: Ifp_compiler Ifp_vm
