module Vm = Ifp_vm.Vm

type row = {
  name : string;
  baseline : Vm.result;
  subheap : Vm.result;
  wrapped : Vm.result;
  subheap_np : Vm.result;
  wrapped_np : Vm.result;
}

let evaluate ~name prog =
  {
    name;
    baseline = Vm.run ~config:Vm.baseline prog;
    subheap = Vm.run ~config:Vm.ifp_subheap prog;
    wrapped = Vm.run ~config:Vm.ifp_wrapped prog;
    subheap_np = Vm.run ~config:(Vm.no_promote Vm.Alloc_subheap) prog;
    wrapped_np = Vm.run ~config:(Vm.no_promote Vm.Alloc_wrapped) prog;
  }

let evaluate_variants ~name prog variants =
  ignore name;
  List.map (fun (vname, config) -> (vname, Vm.run ~config prog)) variants

let runtime_overhead ~(baseline : Vm.result) (r : Vm.result) =
  Ifp_util.Stats.ratio
    (float_of_int r.counters.cycles)
    (float_of_int baseline.counters.cycles)

let instr_overhead ~(baseline : Vm.result) (r : Vm.result) =
  Ifp_util.Stats.ratio
    (float_of_int (Ifp_vm.Counters.total_instrs r.counters))
    (float_of_int (Ifp_vm.Counters.total_instrs baseline.counters))

let memory_overhead ~(baseline : Vm.result) (r : Vm.result) =
  Ifp_util.Stats.ratio
    (float_of_int r.mem_footprint)
    (float_of_int baseline.mem_footprint)

let outcome_reason (r : Vm.result) =
  match r.outcome with
  | Vm.Finished _ -> None
  | Vm.Trapped t -> Some ("trap: " ^ Ifp_isa.Trap.to_string t)
  | Vm.Aborted msg -> Some ("abort: " ^ msg)

let check_outcomes row =
  List.filter_map
    (fun (vname, r) ->
      match outcome_reason r with None -> None | Some why -> Some (vname, why))
    [
      ("baseline", row.baseline);
      ("subheap", row.subheap);
      ("wrapped", row.wrapped);
      ("subheap-np", row.subheap_np);
      ("wrapped-np", row.wrapped_np);
    ]
