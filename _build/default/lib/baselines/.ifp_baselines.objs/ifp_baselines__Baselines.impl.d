lib/baselines/baselines.ml: Ifp_isa Ifp_juliet Ifp_vm
