lib/baselines/baselines.mli: Ifp_juliet Ifp_vm
