lib/machine/cache.mli:
