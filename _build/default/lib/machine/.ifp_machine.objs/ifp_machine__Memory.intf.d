lib/machine/memory.mli:
