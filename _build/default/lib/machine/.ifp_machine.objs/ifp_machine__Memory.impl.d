lib/machine/memory.ml: Bytes Char Hashtbl Ifp_util Int64 String
