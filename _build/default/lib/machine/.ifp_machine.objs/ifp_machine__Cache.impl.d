lib/machine/cache.ml: Array Ifp_util Int64
