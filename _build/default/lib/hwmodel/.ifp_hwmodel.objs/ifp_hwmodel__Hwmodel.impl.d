lib/hwmodel/hwmodel.ml: List
