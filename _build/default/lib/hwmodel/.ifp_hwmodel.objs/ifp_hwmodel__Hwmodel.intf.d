lib/hwmodel/hwmodel.mli:
