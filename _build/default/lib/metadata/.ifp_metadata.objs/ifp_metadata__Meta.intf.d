lib/metadata/meta.mli: Ifp_machine Ifp_types Mac
