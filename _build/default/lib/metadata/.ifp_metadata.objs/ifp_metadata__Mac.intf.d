lib/metadata/mac.mli: Ifp_util
