lib/metadata/mac.ml: Ifp_util Int64 List
