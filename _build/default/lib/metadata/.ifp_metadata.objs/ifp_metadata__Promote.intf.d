lib/metadata/promote.mli: Ifp_isa Meta
