lib/metadata/meta.ml: Array Bits Hashtbl Ifp_isa Ifp_machine Ifp_types Ifp_util Int64 List Mac Printf
