lib/metadata/promote.ml: Ifp_isa Ifp_types Int64 List Meta
