lib/types/layout.ml: Array Ctype Format Int64 List
