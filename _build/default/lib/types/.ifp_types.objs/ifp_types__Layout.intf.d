lib/types/layout.mli: Ctype Format
