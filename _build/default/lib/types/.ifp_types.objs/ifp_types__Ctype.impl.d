lib/types/ctype.ml: Format Ifp_util List Map String
