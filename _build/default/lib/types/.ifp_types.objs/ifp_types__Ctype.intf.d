lib/types/ctype.mli: Format
