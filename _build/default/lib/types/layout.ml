type element = { parent : int; base : int; bound : int; elem_size : int }

type step = Field of string | Index

type path = step list

(* Path-resolution tree mirroring the subobject structure. [children] maps
   struct-field names to nodes; [into] is the node reached by an [Index]
   step when the array element is itself an array (row descent), [None]
   when an [Index] step stays on the same element. *)
type node = { idx : int; children : (string * node) list; into : node option }

type t = { root_ty : Ctype.t; elems : element array; tree : node }

let root_type t = t.root_ty
let elements t = t.elems
let length t = Array.length t.elems

let get t i =
  if i < 0 || i >= Array.length t.elems then invalid_arg "Layout.get";
  t.elems.(i)

let build env ty =
  let acc = ref [] in
  let count = ref 0 in
  let add e =
    let i = !count in
    incr count;
    acc := e :: !acc;
    i
  in
  let size = Ctype.sizeof env ty in
  let elem0_stride =
    (* For a root array the stride element 0 exposes to its children is the
       array element size, so that heap arrays of T share T's table. *)
    match ty with Ctype.Array (elt, _) -> Ctype.sizeof env elt | _ -> size
  in
  let _ = add { parent = 0; base = 0; bound = size; elem_size = elem0_stride } in
  let rec visit_struct sname ~frame ~frame_off =
    let fields = Ctype.fields_with_offsets env sname in
    List.filter_map
      (fun ((f : Ctype.field), off) ->
        let abs = frame_off + off in
        match f.fty with
        | Ctype.Void -> None
        | Ctype.(I8 | I16 | I32 | I64 | F64 | Ptr _) ->
          let sz = Ctype.sizeof env f.fty in
          let idx =
            add { parent = frame; base = abs; bound = abs + sz; elem_size = sz }
          in
          Some (f.fname, { idx; children = []; into = None })
        | Ctype.Struct s2 ->
          let sz = Ctype.sizeof env f.fty in
          let idx =
            add { parent = frame; base = abs; bound = abs + sz; elem_size = sz }
          in
          (* flattened: nested-struct children stay in the same frame *)
          let children = visit_struct s2 ~frame ~frame_off:abs in
          Some (f.fname, { idx; children; into = None })
        | Ctype.Array (elt, n) ->
          Some (f.fname, visit_array elt n ~frame ~off:abs))
      fields
  and visit_array elt n ~frame ~off =
    let esz = Ctype.sizeof env elt in
    let idx =
      add { parent = frame; base = off; bound = off + (n * esz); elem_size = esz }
    in
    match elt with
    | Ctype.Struct s ->
      { idx; children = visit_struct s ~frame:idx ~frame_off:0; into = None }
    | Ctype.Array (e2, n2) ->
      { idx; children = []; into = Some (visit_array e2 n2 ~frame:idx ~off:0) }
    | Ctype.(Void | I8 | I16 | I32 | I64 | F64 | Ptr _) ->
      { idx; children = []; into = None }
  in
  let children =
    match ty with
    | Ctype.Struct s -> visit_struct s ~frame:0 ~frame_off:0
    | Ctype.Array (Ctype.Struct s, _) -> visit_struct s ~frame:0 ~frame_off:0
    | Ctype.Array (Ctype.Array (e2, n2), _) ->
      [ ("", visit_array e2 n2 ~frame:0 ~off:0) ]
    | Ctype.(Void | I8 | I16 | I32 | I64 | F64 | Ptr _ | Array _) -> []
  in
  let tree = { idx = 0; children; into = None } in
  { root_ty = ty; elems = Array.of_list (List.rev !acc); tree }

let index_of_path t path =
  let rec go node = function
    | [] -> Some node.idx
    | Field f :: rest -> (
      match List.assoc_opt f node.children with
      | None -> None
      | Some child -> go child rest)
    | Index :: rest -> (
      match node.into with
      | Some row -> go row rest
      | None -> go node rest)
  in
  go t.tree path

let type_of_path env ty path =
  let rec go ty = function
    | [] -> Some ty
    | Field f :: rest -> (
      match ty with
      | Ctype.Struct s -> (
        match Ctype.field_offset env s f with
        | _, fty -> go fty rest
        | exception Not_found -> None)
      | _ -> None)
    | Index :: rest -> (
      match ty with Ctype.Array (e, _) -> go e rest | _ -> None)
  in
  go ty path

let narrow t ~obj_base ~obj_size ~addr ~index =
  let n = Array.length t.elems in
  if index < 0 || index >= n then None
  else
    let obj_hi = Int64.add obj_base (Int64.of_int obj_size) in
    if Int64.compare addr obj_base < 0 || Int64.compare addr obj_hi >= 0 then
      None
    else
      let rec bounds_of idx =
        if idx = 0 then (obj_base, obj_hi)
        else
          let e = t.elems.(idx) in
          let pb, _ = bounds_of e.parent in
          let stride = t.elems.(e.parent).elem_size in
          let off = Int64.to_int (Int64.sub addr pb) in
          let frame =
            if stride <= 0 then pb
            else Int64.add pb (Int64.of_int (off / stride * stride))
          in
          ( Int64.add frame (Int64.of_int e.base),
            Int64.add frame (Int64.of_int e.bound) )
      in
      let lo, hi = bounds_of index in
      (* a subobject index inconsistent with the address (e.g. after a bad
         cast) must never widen protection past the object: clamp, and
         treat an empty result as a failed narrowing (paper §3: only the
         object-bounds guarantee survives an incorrect cast) *)
      let lo = if Int64.compare lo obj_base < 0 then obj_base else lo in
      let hi = if Int64.compare hi obj_hi > 0 then obj_hi else hi in
      if Int64.compare lo hi >= 0 then None else Some (lo, hi)

let walk_steps t ~index =
  let rec go idx acc =
    if idx = 0 then acc
    else go t.elems.(idx).parent (acc + 1)
  in
  if index <= 0 || index >= Array.length t.elems then 0 else go index 0

let pp fmt t =
  Format.fprintf fmt "@[<v>layout (%d elements):@," (Array.length t.elems);
  Array.iteri
    (fun i e ->
      Format.fprintf fmt "  %d: parent=%d [%d,%d) size=%d@," i e.parent e.base
        e.bound e.elem_size)
    t.elems;
  Format.fprintf fmt "@]"
