(** Layout tables (paper §3.4, Fig. 9).

    A layout table flattens the subobject tree of a type into an array of
    elements [{parent; base; bound; elem_size}]. Element 0 always stands
    for the whole object. For an element whose parent is [0] — or more
    generally whose offsets were {e flattened} — [base]/[bound] are byte
    offsets from the parent element's start; for children of
    array-of-struct elements they are offsets from the start of {e one
    array element}, and the narrowing hardware snaps the current address
    to the element stride (paper Fig. 9c).

    Flattening rule (paper: "if a type hierarchy only contains struct
    members or arrays of elementary type, then it can be flattened"):
    every subobject's parent is its nearest ancestor that is an
    array-of-aggregate element, or element 0 when there is none, so the
    common case needs a single table lookup.

    Subobject indices assigned here are the values the compiler loads
    into the pointer tag's subobject-index field with [ifpidx]. *)

type element = {
  parent : int;  (** index of the parent element; element 0 is its own parent *)
  base : int;  (** byte offset of the subobject from the parent frame *)
  bound : int;  (** one-past-end byte offset from the parent frame *)
  elem_size : int;
      (** stride: size of one array element for arrays, else [bound - base] *)
}

type step =
  | Field of string  (** select a struct member *)
  | Index  (** move into an array (element index is dynamic) *)

type path = step list

type t

val build : Ctype.tenv -> Ctype.t -> t
(** Build the table for a root type. Scalars and scalar arrays get a
    1-element table (just the object element). *)

val root_type : t -> Ctype.t
val elements : t -> element array
val length : t -> int

val get : t -> int -> element
(** @raise Invalid_argument when out of range. *)

val index_of_path : t -> path -> int option
(** The subobject index a pointer obtained by following [path] from the
    object base should carry; [None] if the path is invalid for the type.
    [Some 0] means "whole object". *)

val type_of_path : Ctype.tenv -> Ctype.t -> path -> Ctype.t option
(** Static type reached by a path. *)

val narrow :
  t ->
  obj_base:int64 ->
  obj_size:int ->
  addr:int64 ->
  index:int ->
  (int64 * int64) option
(** [narrow t ~obj_base ~obj_size ~addr ~index] executes the recursive
    subobject-bounds computation of Fig. 9c in software: element 0's
    bounds are the {e actual} object bounds [\[obj_base,
    obj_base+obj_size)] (which may span several copies of the root type
    for array allocations), children of an element are located by
    snapping [addr] to the parent's [elem_size] stride. Returns the
    absolute [(lo, hi)] subobject bounds; [None] when [index] is out of
    table range or [addr] lies outside the object (narrowing is then
    impossible and the caller falls back to object bounds).

    This function is the reference model for the hardware layout-table
    walker. *)

val walk_steps : t -> index:int -> int
(** Number of table elements the hardware walker fetches to narrow to
    [index] (the cost model charges per fetched element). *)

val pp : Format.formatter -> t -> unit
