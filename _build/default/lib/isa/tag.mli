(** Pointer-tag codec (paper Fig. 4).

    A pointer is a 64-bit word whose top 16 bits are the tag:

    {v
    63..62  poison bits        00 valid / 01 out-of-bounds-recoverable /
                               1x invalid
    61..60  scheme selector    00 legacy / 01 local-offset / 10 subheap /
                               11 global-table
    59..48  scheme metadata + subobject index, per scheme:
              local-offset:  59..54 granule offset, 53..48 subobject index
              subheap:       59..56 control-register index,
                             55..48 subobject index
              global-table:  59..48 table index (no subobject index)
    47..0   address
    v}

    The all-zero tag is a canonical user-space address, i.e. a legacy
    pointer — exactly the compatibility property the paper relies on. *)

type poison = Valid | Oob | Invalid

type scheme = Legacy | Local_offset | Subheap | Global_table

val granule : int
(** Local-offset scheme granule: 16 bytes. *)

val local_offset_max_object : int
(** 1008 bytes: (2^6 - 1) granules. *)

val local_offset_max_elements : int
(** 64 layout-table elements (6-bit subobject index). *)

val subheap_max_elements : int
(** 256 layout-table elements (8-bit subobject index). *)

val global_table_entries : int
(** 4096 rows (12-bit index). *)

val addr : int64 -> int64
(** Low 48 bits. *)

val with_addr : int64 -> int64 -> int64
(** [with_addr p a] keeps the tag of [p], replaces the address. *)

val poison : int64 -> poison
val with_poison : int64 -> poison -> int64

val scheme : int64 -> scheme
val with_scheme : int64 -> scheme -> int64

val meta12 : int64 -> int
(** Raw 12-bit scheme-metadata/subobject field. *)

val with_meta12 : int64 -> int -> int64

val subobj_index : int64 -> int option
(** Subobject index for schemes that have one; [None] for legacy and
    global-table pointers. *)

val with_subobj_index : int64 -> int -> int64
(** Saturating write of the subobject-index field; no-op for legacy and
    global-table pointers. *)

val granule_offset : int64 -> int
(** Local-offset granule-offset field (meaningless for other schemes). *)

val with_granule_offset : int64 -> int -> int64

val creg_index : int64 -> int
(** Subheap control-register index field. *)

val table_index : int64 -> int
(** Global-table index field. *)

val make_legacy : int64 -> int64
(** Canonical pointer: tag zeroed. *)

val make_local_offset : addr:int64 -> granule_off:int -> subobj:int -> int64
val make_subheap : addr:int64 -> creg:int -> subobj:int -> int64
val make_global_table : addr:int64 -> index:int -> int64

val is_null : int64 -> bool
(** Address part is zero. *)

val metadata_addr_local_offset : int64 -> int64
(** For a local-offset pointer: [align_down(addr, granule) +
    granule_offset * granule] — the address of the object metadata. *)

val pp : Format.formatter -> int64 -> unit
