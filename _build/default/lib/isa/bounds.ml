type t = No_bounds | Bounds of { lo : int64; hi : int64 }

let no_bounds = No_bounds

let make ~lo ~hi =
  Bounds { lo = Ifp_util.Bits.u48 lo; hi = Ifp_util.Bits.u48 hi }

let of_base_size base size =
  let lo = Ifp_util.Bits.u48 base in
  make ~lo ~hi:(Int64.add lo (Int64.of_int size))

let contains t ~addr ~size =
  match t with
  | No_bounds -> true
  | Bounds { lo; hi } ->
    let a = Ifp_util.Bits.u48 addr in
    Int64.compare lo a <= 0
    && Int64.compare (Int64.add a (Int64.of_int size)) hi <= 0

let in_range t addr = contains t ~addr ~size:0

let equal a b =
  match (a, b) with
  | No_bounds, No_bounds -> true
  | Bounds a, Bounds b -> Int64.equal a.lo b.lo && Int64.equal a.hi b.hi
  | (No_bounds | Bounds _), _ -> false

let pp fmt = function
  | No_bounds -> Format.pp_print_string fmt "<no bounds>"
  | Bounds { lo; hi } -> Format.fprintf fmt "[0x%Lx, 0x%Lx)" lo hi
