lib/isa/tag.ml: Bits Format Ifp_util Int64
