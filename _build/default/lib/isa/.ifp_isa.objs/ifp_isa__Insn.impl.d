lib/isa/insn.ml: Bounds Ifp_util Int64 Tag Trap
