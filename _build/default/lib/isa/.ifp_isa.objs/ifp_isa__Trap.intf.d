lib/isa/trap.mli: Format
