lib/isa/insn.mli: Bounds
