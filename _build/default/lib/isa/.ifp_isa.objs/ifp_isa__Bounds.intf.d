lib/isa/bounds.mli: Format
