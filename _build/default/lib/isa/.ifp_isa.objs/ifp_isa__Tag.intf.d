lib/isa/tag.mli: Format
