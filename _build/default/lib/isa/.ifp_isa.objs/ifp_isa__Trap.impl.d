lib/isa/trap.ml: Format Ifp_util Printf
