lib/isa/bounds.ml: Format Ifp_util Int64
