(** Pointer bounds as held in an In-Fat Pointer Register (IFPR).

    Each IFPR is a (general-purpose register, 96-bit bounds register)
    pair; the bounds register holds two 48-bit addresses. Cleared bounds
    mean "not subject to checking" — the state of legacy and NULL
    pointers after a (bypassed) promote (paper §3.2, Fig. 5). *)

type t = No_bounds | Bounds of { lo : int64; hi : int64 }

val no_bounds : t
val make : lo:int64 -> hi:int64 -> t

val of_base_size : int64 -> int -> t
(** [of_base_size base size] — the [ifpbnd] instruction: bounds of
    exactly [size] bytes starting at the address of [base]. *)

val contains : t -> addr:int64 -> size:int -> bool
(** Access-size check (paper §4.1): [lo <= addr && addr + size <= hi].
    [No_bounds] always passes. *)

val in_range : t -> int64 -> bool
(** [contains] with [size = 0] — used by [ifpadd] poison updates, where
    pointing one past the end is legal. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
