(* 458.sjeng (reduced depth, as in the paper's modified ref input):
   alpha-beta game-tree search over a global board. The board is a
   1 KiB+ global array — too large for the local-offset scheme, so it
   lands in the global table (sjeng is one of the two benchmarks using
   it in Table 4). Per-node move lists are stack arrays indexed
   dynamically, which makes them registered local objects. *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let board_cells = 144 (* 12x12 padded board, i64 cells -> 1152 B > 1008 *)
let board_ty = Ctype.Array (Ctype.I64, board_cells)
let moves_ty = Ctype.Array (Ctype.I64, 32)
let depth = 4

let build () =
  let board p k = Gep (board_ty, p, [ at k ]) in
  (* generate pseudo-moves: cells adjacent to occupied squares *)
  let gen_moves =
    func "gen_moves" [ ("side", Ctype.I64); ("out", Ctype.Ptr moves_ty) ] Ctype.I64
      (Wl_util.block
         [
           [ Let ("n", Ctype.I64, i 0);
             Let ("b", Ctype.Ptr board_ty, Load_global "gboard") ];
           Wl_util.for_ "k" ~from:(i 13) ~below:(i (board_cells - 13))
             [
               If
                 ( Binop (BAnd,
                          Load (Ctype.I64, board (v "b") (v "k")) ==: i 0,
                          Binop (BOr,
                                 Load (Ctype.I64, board (v "b") (v "k" -: i 1)) ==: v "side",
                                 Load (Ctype.I64, board (v "b") (v "k" +: i 1)) ==: v "side")),
                   [
                     If (v "n" <: i 32,
                         [
                           Store (Ctype.I64,
                                  Gep (moves_ty, v "out", [ at (v "n") ]), v "k");
                           Assign ("n", v "n" +: i 1);
                         ], []);
                   ],
                   [] );
             ];
           [ Return (Some (v "n")) ];
         ])
  in
  let evaluate =
    func "evaluate" [] Ctype.I64
      (Wl_util.block
         [
           [ Let ("s", Ctype.I64, i 0);
             Let ("b", Ctype.Ptr board_ty, Load_global "gboard") ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(i board_cells)
             [
               Assign ("s", v "s" +: (Load (Ctype.I64, board (v "b") (v "k")) *: (v "k" %: i 7)));
             ];
           [ Return (Some (v "s")) ];
         ])
  in
  let search =
    func "search" [ ("d", Ctype.I64); ("side", Ctype.I64);
                    ("alpha", Ctype.I64); ("beta", Ctype.I64) ]
      Ctype.I64
      [
        If (v "d" <=: i 0, [ Return (Some (Call ("evaluate", []))) ], []);
        Decl_local ("moves", moves_ty);
        Let ("n", Ctype.I64, Call ("gen_moves", [ v "side"; Addr_local "moves" ]));
        If (v "n" ==: i 0, [ Return (Some (Call ("evaluate", []))) ], []);
        Let ("best", Ctype.I64, Unop (Neg, i 1000000));
        Let ("k", Ctype.I64, i 0);
        Let ("b", Ctype.Ptr board_ty, Load_global "gboard");
        While
          ( Binop (BAnd, v "k" <: v "n", v "best" <: v "beta"),
            [
              Let ("mv", Ctype.I64,
                   Load (Ctype.I64, Gep (moves_ty, Addr_local "moves", [ at (v "k") ])));
              (* make move *)
              Store (Ctype.I64, Gep (board_ty, v "b", [ at (v "mv") ]), v "side");
              Let ("score", Ctype.I64,
                   Unop (Neg,
                         Call ("search",
                               [ v "d" -: i 1; i 3 -: v "side";
                                 Unop (Neg, v "beta");
                                 Unop (Neg, v "alpha") ])));
              (* unmake *)
              Store (Ctype.I64, Gep (board_ty, v "b", [ at (v "mv") ]), i 0);
              If (v "score" >: v "best", [ Assign ("best", v "score") ], []);
              If (v "best" >: v "alpha", [ Assign ("alpha", v "best") ], []);
              Assign ("k", v "k" +: i 1);
            ] );
        Return (Some (v "best"));
      ]
  in
  let main =
    func "main" [] Ctype.I64
      (Wl_util.block
         [
           [ Wl_util.srand 2;
             Store_global ("gboard", Addr_global "board");
             Let ("b", Ctype.Ptr board_ty, Load_global "gboard") ];
           (* initial position: a few stones for each side *)
           Wl_util.for_ "k" ~from:(i 0) ~below:(i 10)
             [
               Store (Ctype.I64,
                      Gep (board_ty, v "b", [ at (i 14 +: Wl_util.rand_mod 100) ]), i 1);
               Store (Ctype.I64,
                      Gep (board_ty, v "b", [ at (i 14 +: Wl_util.rand_mod 100) ]), i 2);
             ];
           [
             Return
               (Some
                  (Call ("search",
                         [ i depth; i 1; Unop (Neg, i 1000000); i 1000000 ])));
           ];
         ])
  in
  program
    ~tenv:Ctype.empty_tenv
    ~globals:
      [ Wl_util.seed_global; global "board" board_ty;
        global "gboard" (Ctype.Ptr board_ty) ]
    [ Wl_util.rand_func; gen_moves; evaluate; search; main ]

let workload =
  Workload.make ~name:"sjeng" ~suite:"misc"
    ~description:"alpha-beta search, global-table board + stack move lists"
    build
