open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let seed_global = global "__seed" Ctype.I64

let rand_func =
  func "__rand" [] Ctype.I64
    [
      Store_global
        ( "__seed",
          Load_global "__seed" *: i64 6364136223846793005L
          +: i64 1442695040888963407L );
      Return (Some (Binop (Shr, Load_global "__seed", i 33) %: i64 0x40000000L));
    ]

let rand = Call ("__rand", [])

let rand_mod n = rand %: i n

let srand s = Store_global ("__seed", i s)

let for_ v ~from ~below body =
  [
    Let (v, Ctype.I64, from);
    While (Var v <: below, body @ [ Assign (v, Var v +: i 1) ]);
  ]

let block = List.concat
