(* PtrDist ks: Kernighan-Lin-style graph partitioning. Modules are
   heap-allocated structs reached through a pointer array, so every gain
   computation reloads module pointers from memory — the promote-heavy
   profile of the original (~17% of ks's dynamic instructions are
   promotes in Table 4). *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let mod_ty = Ctype.Struct "module_"
let mp = Ctype.Ptr mod_ty
let mpp = Ctype.Ptr mp

let n_modules = 64
let n_nets = 12
let passes = 6

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "module_";
      fields =
        [
          { fname = "part"; fty = Ctype.I64 };
          { fname = "gain"; fty = Ctype.I64 };
          { fname = "nets"; fty = Ctype.Array (Ctype.I64, n_nets) };
        ];
    }

let mfield p f = Gep (mod_ty, p, [ fld f ])
let net p k = Gep (mod_ty, p, [ fld "nets"; at k ])

let build () =
  let modat =
    func "modat" [ ("arr", mpp); ("j", Ctype.I64) ] mp
      [ Return (Some (Load (mp, Gep (mp, v "arr", [ at (v "j") ])))) ]
  in
  let gain_of =
    (* cut-edge count difference for module j *)
    func "gain_of" [ ("arr", mpp); ("j", Ctype.I64) ] Ctype.I64
      (Wl_util.block
         [
           [
             Let ("m", mp, Call ("modat", [ v "arr"; v "j" ]));
             Let ("mypart", Ctype.I64, Load (Ctype.I64, mfield (v "m") "part"));
             Let ("g", Ctype.I64, i 0);
           ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(i n_nets)
             [
               Let ("other", Ctype.I64, Load (Ctype.I64, net (v "m") (v "k")));
               Let ("om", mp, Call ("modat", [ v "arr"; v "other" ]));
               If (Load (Ctype.I64, mfield (v "om") "part") ==: v "mypart",
                   [ Assign ("g", v "g" -: i 1) ],
                   [ Assign ("g", v "g" +: i 1) ]);
             ];
           [ Return (Some (v "g")) ];
         ])
  in
  let main =
    func "main" [] Ctype.I64
      (Wl_util.block
         [
           [ Wl_util.srand 808; Let ("arr", mpp, Malloc (mp, i n_modules)) ];
           Wl_util.for_ "j" ~from:(i 0) ~below:(i n_modules)
             (Wl_util.block
                [
                  [
                    Let ("m", mp, Malloc (mod_ty, i 1));
                    Store (mp, Gep (mp, v "arr", [ at (v "j") ]), v "m");
                    Store (Ctype.I64, mfield (v "m") "part", v "j" %: i 2);
                    Store (Ctype.I64, mfield (v "m") "gain", i 0);
                  ];
                  Wl_util.for_ "k" ~from:(i 0) ~below:(i n_nets)
                    [
                      Store (Ctype.I64, net (v "m") (v "k"), Wl_util.rand_mod n_modules);
                    ];
                ]);
           [ Let ("improved", Ctype.I64, i 0) ];
           Wl_util.for_ "p" ~from:(i 0) ~below:(i passes)
             (Wl_util.block
                [
                  (* recompute gains *)
                  Wl_util.for_ "j1" ~from:(i 0) ~below:(i n_modules)
                    [
                      Let ("m1", mp, Call ("modat", [ v "arr"; v "j1" ]));
                      Store (Ctype.I64, mfield (v "m1") "gain",
                             Call ("gain_of", [ v "arr"; v "j1" ]));
                    ];
                  (* swap the best positive-gain module across partitions *)
                  [
                    Let ("bi", Ctype.I64, i 0);
                    Let ("bg", Ctype.I64, Unop (Neg, i 1000));
                    Let ("j2", Ctype.I64, i 0);
                    While
                      ( v "j2" <: i n_modules,
                        [
                          Let ("m2", mp, Call ("modat", [ v "arr"; v "j2" ]));
                          If (Load (Ctype.I64, mfield (v "m2") "gain") >: v "bg",
                              [
                                Assign ("bg", Load (Ctype.I64, mfield (v "m2") "gain"));
                                Assign ("bi", v "j2");
                              ], []);
                          Assign ("j2", v "j2" +: i 1);
                        ] );
                    If
                      ( v "bg" >: i 0,
                        [
                          Let ("mb", mp, Call ("modat", [ v "arr"; v "bi" ]));
                          Store (Ctype.I64, mfield (v "mb") "part",
                                 i 1 -: Load (Ctype.I64, mfield (v "mb") "part"));
                          Assign ("improved", v "improved" +: v "bg");
                        ],
                        [] );
                  ];
                ]);
           [ Return (Some (v "improved")) ];
         ])
  in
  program ~tenv
    ~globals:[ Wl_util.seed_global ]
    [ Wl_util.rand_func; modat; gain_of; main ]

let workload =
  Workload.make ~name:"ks" ~suite:"ptrdist"
    ~description:"Kernighan-Lin-style partitioning over pointed-to modules"
    build
