let all =
  [
    Olden_bh.workload;
    Olden_bisort.workload;
    Olden_em3d.workload;
    Olden_health.workload;
    Olden_mst.workload;
    Olden_perimeter.workload;
    Olden_power.workload;
    Olden_treeadd.workload;
    Olden_tsp.workload;
    Olden_voronoi.workload;
    Ptrdist_anagram.workload;
    Ptrdist_ft.workload;
    Ptrdist_ks.workload;
    Ptrdist_yacr2.workload;
    Misc_wolfcrypt.workload;
    Misc_sjeng.workload;
    Misc_coremark.workload;
    Misc_bzip2.workload;
  ]

let find name =
  List.find_opt (fun (w : Workload.t) -> String.equal w.name name) all

let names = List.map (fun (w : Workload.t) -> w.Workload.name) all
