(* WolfCrypt Diffie-Hellman benchmark: multi-precision modular
   exponentiation with 32-bit limbs. As in wolfcrypt, each bignum is an
   mp_int-style struct whose limb buffer is allocated through a
   type-erased XMALLOC wrapper — the limb pointer is reloaded from the
   struct inside every primitive, producing the near-100%-valid promote
   stream of the paper's wolfcrypt row (with no layout tables, due to
   the wrapper). *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let mp_ty = Ctype.Struct "mp_int"
let mpp = Ctype.Ptr mp_ty
let ip = Ctype.Ptr Ctype.I64

let limbs = 8 (* 256-bit numbers *)
let base_radix = 0x100000000L (* 2^32 *)

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "mp_int";
      fields =
        [
          { fname = "used"; fty = Ctype.I64 };
          { fname = "dp"; fty = Ctype.Ptr Ctype.I64 };
        ];
    }

let dp_of m = Load (ip, Gep (mp_ty, m, [ fld "dp" ]))

let build () =
  let at_ p k = Gep (Ctype.I64, p, [ at k ]) in
  (* XMALLOC-style wrappers: type-erased allocations *)
  let mp_new =
    func "mp_new" [] mpp
      [
        Let ("m", mpp, Cast (mpp, Malloc_bytes (i 16)));
        Store (Ctype.I64, Gep (mp_ty, v "m", [ fld "used" ]), i limbs);
        Store (ip, Gep (mp_ty, v "m", [ fld "dp" ]),
               Cast (ip, Malloc_bytes (i (8 * limbs))));
        Return (Some (v "m"));
      ]
  in
  let zero_fn =
    func "mp_zero" [ ("a", mpp) ] Ctype.Void
      (Wl_util.block
         [
           [ Let ("d", ip, dp_of (v "a")) ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(i limbs)
             [ Store (Ctype.I64, at_ (v "d") (v "k"), i 0) ];
           [ Return None ];
         ])
  in
  let copy_fn =
    func "mp_copy" [ ("dst", mpp); ("src", mpp) ] Ctype.Void
      (Wl_util.block
         [
           [ Let ("dd", ip, dp_of (v "dst")); Let ("sd", ip, dp_of (v "src")) ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(i limbs)
             [ Store (Ctype.I64, at_ (v "dd") (v "k"),
                      Load (Ctype.I64, at_ (v "sd") (v "k"))) ];
           [ Return None ];
         ])
  in
  (* dst = (a * b) mod 2^256 with school multiplication, then a cheap
     pseudo-Mersenne fold *)
  let mulmod =
    func "mp_mulmod" [ ("dst", mpp); ("a", mpp); ("b", mpp); ("tmp", mpp) ]
      Ctype.Void
      (Wl_util.block
         [
           [
             Expr (Call ("mp_zero", [ v "tmp" ]));
             Let ("ad", ip, dp_of (v "a"));
             Let ("bd", ip, dp_of (v "b"));
             Let ("td", ip, dp_of (v "tmp"));
           ];
           Wl_util.for_ "j" ~from:(i 0) ~below:(i limbs)
             (Wl_util.block
                [
                  [
                    Let ("aj", Ctype.I64, Load (Ctype.I64, at_ (v "ad") (v "j")));
                    Let ("carry", Ctype.I64, i 0);
                  ];
                  Wl_util.for_ "k" ~from:(i 0) ~below:(i limbs -: v "j")
                    [
                      Let ("cur", Ctype.I64,
                           Load (Ctype.I64, at_ (v "td") (v "j" +: v "k"))
                           +: (v "aj" *: Load (Ctype.I64, at_ (v "bd") (v "k")))
                           +: v "carry");
                      Store (Ctype.I64, at_ (v "td") (v "j" +: v "k"),
                             v "cur" %: i64 base_radix);
                      Assign ("carry", v "cur" /: i64 base_radix);
                    ];
                ]);
           [
             Store (Ctype.I64, at_ (v "td") (i 0),
                    (Load (Ctype.I64, at_ (v "td") (i 0)) +: i 9) %: i64 base_radix);
             Expr (Call ("mp_copy", [ v "dst"; v "tmp" ]));
             Return None;
           ];
         ])
  in
  (* result = g^e (mod p implicit in the fold), square-and-multiply *)
  let expmod =
    func "mp_expmod" [ ("result", mpp); ("g", mpp); ("e", Ctype.I64) ] Ctype.Void
      (Wl_util.block
         [
           [
             Let ("acc", mpp, Call ("mp_new", []));
             Let ("sq", mpp, Call ("mp_new", []));
             Let ("tmp", mpp, Call ("mp_new", []));
             Expr (Call ("mp_zero", [ v "acc" ]));
             Store (Ctype.I64, at_ (dp_of (v "acc")) (i 0), i 1);
             Expr (Call ("mp_copy", [ v "sq"; v "g" ]));
             Let ("bit", Ctype.I64, v "e");
           ];
           [
             While
               ( v "bit" >: i 0,
                 [
                   If (Binop (BAnd, v "bit", i 1) <>: i 0,
                       [ Expr (Call ("mp_mulmod", [ v "acc"; v "acc"; v "sq"; v "tmp" ])) ],
                       []);
                   Expr (Call ("mp_mulmod", [ v "sq"; v "sq"; v "sq"; v "tmp" ]));
                   Assign ("bit", Binop (Shr, v "bit", i 1));
                 ] );
           ];
           [
             Expr (Call ("mp_copy", [ v "result"; v "acc" ]));
             Return None;
           ];
         ])
  in
  let main =
    func "main" [] Ctype.I64
      (Wl_util.block
         [
           [
             Wl_util.srand 1717;
             Let ("g", mpp, Call ("mp_new", []));
             Expr (Call ("mp_zero", [ v "g" ]));
             Store (Ctype.I64, Gep (Ctype.I64, dp_of (v "g"), [ at (i 0) ]), i 5);
             Let ("pub_a", mpp, Call ("mp_new", []));
             Let ("pub_b", mpp, Call ("mp_new", []));
             Let ("shared", mpp, Call ("mp_new", []));
             Let ("xa", Ctype.I64, i64 0x5DEECE66DL);
             Let ("xb", Ctype.I64, i64 0x2545F4914FL);
             (* key exchange: A = g^xa, B = g^xb, S = B^xa *)
             Expr (Call ("mp_expmod", [ v "pub_a"; v "g"; v "xa" ]));
             Expr (Call ("mp_expmod", [ v "pub_b"; v "g"; v "xb" ]));
             Expr (Call ("mp_expmod", [ v "shared"; v "pub_b"; v "xa" ]));
             (* checksum over the shared secret *)
             Let ("sd", ip, dp_of (v "shared"));
             Let ("acc2", Ctype.I64, i 0);
             Let ("k", Ctype.I64, i 0);
             While
               ( v "k" <: i limbs,
                 [
                   Assign ("acc2",
                           Binop (BXor, v "acc2",
                                  Load (Ctype.I64, Gep (Ctype.I64, v "sd", [ at (v "k") ]))
                                  +: v "k"));
                   Assign ("k", v "k" +: i 1);
                 ] );
             Return (Some (v "acc2"));
           ];
         ])
  in
  program ~tenv
    ~globals:[ Wl_util.seed_global ]
    [ Wl_util.rand_func; mp_new; zero_fn; copy_fn; mulmod; expmod; main ]

let workload =
  Workload.make ~name:"wolfcrypt-dh" ~suite:"misc"
    ~description:"Diffie-Hellman modexp over mp_int structs, XMALLOC wrappers"
    build
