(* Olden tsp: closest-point heuristic tour over cities held in a
   doubly-linked circular list — list splicing and float distance math. *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let city_ty = Ctype.Struct "city"
let cp = Ctype.Ptr city_ty

let n_cities = 192

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "city";
      fields =
        [
          { fname = "x"; fty = Ctype.F64 };
          { fname = "y"; fty = Ctype.F64 };
          { fname = "next"; fty = Ctype.Ptr (Ctype.Struct "city") };
          { fname = "visited"; fty = Ctype.I64 };
        ];
    }

let f64 x = Float x
let cfield p f = Gep (city_ty, p, [ fld f ])
let ld_f p = Load (Ctype.F64, p)

let build () =
  let dist2 =
    func "dist2" [ ("a", cp); ("b", cp) ] Ctype.F64
      [
        Let ("dx", Ctype.F64, Binop (FSub, ld_f (cfield (v "a") "x"), ld_f (cfield (v "b") "x")));
        Let ("dy", Ctype.F64, Binop (FSub, ld_f (cfield (v "a") "y"), ld_f (cfield (v "b") "y")));
        Return (Some (Binop (FAdd, Binop (FMul, v "dx", v "dx"), Binop (FMul, v "dy", v "dy"))));
      ]
  in
  let main =
    func "main" [] Ctype.I64
      (Wl_util.block
         [
           [ Wl_util.srand 77; Let ("head", cp, null city_ty) ];
           Wl_util.for_ "j" ~from:(i 0) ~below:(i n_cities)
             [
               Let ("c", cp, Malloc (city_ty, i 1));
               Store (Ctype.F64, cfield (v "c") "x",
                      Binop (FDiv, Cast (Ctype.F64, Wl_util.rand_mod 10000), f64 100.0));
               Store (Ctype.F64, cfield (v "c") "y",
                      Binop (FDiv, Cast (Ctype.F64, Wl_util.rand_mod 10000), f64 100.0));
               Store (Ctype.I64, cfield (v "c") "visited", i 0);
               Store (cp, cfield (v "c") "next", v "head");
               Assign ("head", v "c");
             ];
           (* nearest-neighbour tour: repeatedly scan the list for the
              closest unvisited city *)
           [
             Let ("cur", cp, v "head");
             Store (Ctype.I64, cfield (v "cur") "visited", i 1);
             Let ("len", Ctype.F64, f64 0.0);
             Let ("done_", Ctype.I64, i 1);
           ];
           [
             While
               ( v "done_" <: i n_cities,
                 [
                   Let ("best", cp, null city_ty);
                   Let ("bestd", Ctype.F64, f64 1.0e18);
                   Let ("w", cp, v "head");
                   While
                     ( Binop (Ne, v "w", null city_ty),
                       [
                         If
                           ( Load (Ctype.I64, cfield (v "w") "visited") ==: i 0,
                             [
                               Let ("d", Ctype.F64, Call ("dist2", [ v "cur"; v "w" ]));
                               If (Binop (FLt, v "d", v "bestd"),
                                   [ Assign ("bestd", v "d"); Assign ("best", v "w") ],
                                   []);
                             ],
                             [] );
                         Assign ("w", Load (cp, cfield (v "w") "next"));
                       ] );
                   Store (Ctype.I64, cfield (v "best") "visited", i 1);
                   Assign ("len", Binop (FAdd, v "len", v "bestd"));
                   Assign ("cur", v "best");
                   Assign ("done_", v "done_" +: i 1);
                 ] );
           ];
           [ Return (Some (Cast (Ctype.I64, v "len"))) ];
         ])
  in
  program ~tenv
    ~globals:[ Wl_util.seed_global ]
    [ Wl_util.rand_func; dist2; main ]

let workload =
  Workload.make ~name:"tsp" ~suite:"olden"
    ~description:"nearest-neighbour tour over a linked city list" build
