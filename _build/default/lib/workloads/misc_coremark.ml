(* CoreMark: list processing + matrix multiply + CRC state machine. As in
   the original, a single type-erased allocation provides the arena and
   every data structure is carved out of it by pointer arithmetic — so
   promotes of interior pointers find object metadata without a layout
   table and subobject narrowing fails back to object bounds
   (paper §5.2.1: CoreMark's narrowings all fail). *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let node_ty = Ctype.Struct "lnode"
let np = Ctype.Ptr node_ty
let ip = Ctype.Ptr Ctype.I64
let i8p = Ctype.Ptr Ctype.I8

let n_list = 64
let mat_n = 12
let iters = 10

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "lnode";
      fields =
        [
          { fname = "value"; fty = Ctype.I64 };
          { fname = "next"; fty = Ctype.Ptr (Ctype.Struct "lnode") };
        ];
    }

let nf p f = Gep (node_ty, p, [ fld f ])

let build () =
  let crc =
    func "crc16" [ ("x", Ctype.I64); ("acc", Ctype.I64) ] Ctype.I64
      (Wl_util.block
         [
           [ Let ("c", Ctype.I64, v "acc") ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(i 8)
             [
               Let ("bit", Ctype.I64,
                    Binop (BAnd, Binop (BXor, v "c", Binop (Shr, v "x", v "k")), i 1));
               Assign ("c", Binop (Shr, v "c", i 1));
               If (v "bit" <>: i 0,
                   [ Assign ("c", Binop (BXor, v "c", i 0xA001)) ], []);
             ];
           [ Return (Some (v "c")) ];
         ])
  in
  let list_reverse =
    func "list_reverse" [ ("head", np) ] np
      [
        Let ("prev", np, null node_ty);
        Let ("cur", np, v "head");
        While
          ( Binop (Ne, v "cur", null node_ty),
            [
              Let ("nxt", np, Load (np, nf (v "cur") "next"));
              Store (np, nf (v "cur") "next", v "prev");
              Assign ("prev", v "cur");
              Assign ("cur", v "nxt");
            ] );
        Return (Some (v "prev"));
      ]
  in
  let list_find =
    func "list_find" [ ("head", np); ("value", Ctype.I64) ] Ctype.I64
      [
        Let ("cur", np, v "head");
        Let ("pos", Ctype.I64, i 0);
        While
          ( Binop (Ne, v "cur", null node_ty),
            [
              If (Load (Ctype.I64, nf (v "cur") "value") ==: v "value",
                  [ Return (Some (v "pos")) ], []);
              Assign ("cur", Load (np, nf (v "cur") "next"));
              Assign ("pos", v "pos" +: i 1);
            ] );
        Return (Some (Unop (Neg, i 1)));
      ]
  in
  let matmul =
    (* c = a*b over mat_n x mat_n i64 matrices inside the arena *)
    func "matmul" [ ("a", ip); ("b", ip); ("c", ip) ] Ctype.I64
      (Wl_util.block
         [
           [ Let ("acc", Ctype.I64, i 0) ];
           Wl_util.for_ "r" ~from:(i 0) ~below:(i mat_n)
             (Wl_util.block
                [
                  Wl_util.for_ "cc" ~from:(i 0) ~below:(i mat_n)
                    (Wl_util.block
                       [
                         [ Let ("s", Ctype.I64, i 0) ];
                         Wl_util.for_ "k" ~from:(i 0) ~below:(i mat_n)
                           [
                             Assign ("s",
                                     v "s"
                                     +: (Load (Ctype.I64,
                                               Gep (Ctype.I64, v "a",
                                                    [ at ((v "r" *: i mat_n) +: v "k") ]))
                                         *: Load (Ctype.I64,
                                                  Gep (Ctype.I64, v "b",
                                                       [ at ((v "k" *: i mat_n) +: v "cc") ]))));
                           ];
                         [
                           Store (Ctype.I64,
                                  Gep (Ctype.I64, v "c",
                                       [ at ((v "r" *: i mat_n) +: v "cc") ]),
                                  v "s");
                           Assign ("acc", Binop (BXor, v "acc", v "s"));
                         ];
                       ]);
                ]);
           [ Return (Some (v "acc")) ];
         ])
  in
  let node_bytes = 16 in
  let mat_bytes = mat_n * mat_n * 8 in
  let arena_bytes = (n_list * node_bytes) + (3 * mat_bytes) in
  let main =
    func "main" [] Ctype.I64
      (Wl_util.block
         [
           [
             Wl_util.srand 66;
             (* the single allocation *)
             Let ("arena", i8p, Malloc_bytes (i arena_bytes));
             (* carve: list nodes first, then three matrices *)
             Let ("head", np, null node_ty);
           ];
           Wl_util.for_ "j" ~from:(i 0) ~below:(i n_list)
             [
               Let ("node", np,
                    Cast (np, Gep (Ctype.I8, v "arena", [ at (v "j" *: i node_bytes) ])));
               Store (Ctype.I64, nf (v "node") "value", Wl_util.rand_mod 256);
               Store (np, nf (v "node") "next", v "head");
               Assign ("head", v "node");
             ];
           [
             Let ("a", ip,
                  Cast (ip, Gep (Ctype.I8, v "arena", [ at (i (n_list * node_bytes)) ])));
             Let ("b", ip,
                  Cast (ip, Gep (Ctype.I8, v "arena",
                                 [ at (i ((n_list * node_bytes) + mat_bytes)) ])));
             Let ("c", ip,
                  Cast (ip, Gep (Ctype.I8, v "arena",
                                 [ at (i ((n_list * node_bytes) + (2 * mat_bytes))) ])));
           ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(i (mat_n * mat_n))
             [
               Store (Ctype.I64, Gep (Ctype.I64, v "a", [ at (v "k") ]), Wl_util.rand_mod 100);
               Store (Ctype.I64, Gep (Ctype.I64, v "b", [ at (v "k") ]), Wl_util.rand_mod 100);
             ];
           [ Let ("crc_acc", Ctype.I64, i 0xFFFF) ];
           Wl_util.for_ "it" ~from:(i 0) ~below:(i iters)
             [
               Assign ("head", Call ("list_reverse", [ v "head" ]));
               Assign ("crc_acc",
                       Call ("crc16",
                             [ Call ("list_find", [ v "head"; v "it" %: i 256 ]);
                               v "crc_acc" ]));
               Assign ("crc_acc",
                       Call ("crc16", [ Call ("matmul", [ v "a"; v "b"; v "c" ]); v "crc_acc" ]));
             ];
           [ Return (Some (v "crc_acc")) ];
         ])
  in
  program ~tenv
    ~globals:[ Wl_util.seed_global ]
    [ Wl_util.rand_func; crc; list_reverse; list_find; matmul; main ]

let workload =
  Workload.make ~name:"coremark" ~suite:"misc"
    ~description:"list + matmul + CRC inside one type-erased arena" build
