type t = {
  name : string;
  suite : string;
  description : string;
  prog : Ifp_compiler.Ir.program Lazy.t;
}

let make ~name ~suite ~description build =
  { name; suite; description; prog = Lazy.from_fun build }
