(* bzip2 (compressing a synthetic buffer): run-length encoding,
   move-to-front transform and a frequency model — bzip2's pipeline
   stages over heap buffers allocated via type-erased wrappers (bzip2
   allocates through function-pointer-invoked wrappers, so no layout
   tables attach; paper §5.2.1). Few, large allocations. *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let i8p = Ctype.Ptr Ctype.I8
let ip = Ctype.Ptr Ctype.I64

let input_len = 24 * 1024

(* bzip2's EState: all stage buffers hang off one struct, and each stage
   reloads the buffer pointers from it (promotes per stage iteration) *)
let estate_ty = Ctype.Struct "estate"
let ep = Ctype.Ptr estate_ty

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "estate";
      fields =
        [
          { fname = "input"; fty = Ctype.Ptr Ctype.I8 };
          { fname = "rle"; fty = Ctype.Ptr Ctype.I8 };
          { fname = "mtf"; fty = Ctype.Ptr Ctype.I8 };
          { fname = "freq"; fty = Ctype.Ptr Ctype.I64 };
          { fname = "order"; fty = Ctype.Ptr Ctype.I8 };
        ];
    }

let ef s f ty = Load (ty, Gep (estate_ty, v s, [ fld f ]))

let build () =
  let bzalloc =
    func "bzalloc" [ ("n", Ctype.I64) ] i8p
      [ Return (Some (Malloc_bytes (v "n"))) ]
  in
  let at8 p k = Gep (Ctype.I8, p, [ at k ]) in
  let at64 p k = Gep (Ctype.I64, p, [ at k ]) in
  let main =
    func "main" [] Ctype.I64
      (Wl_util.block
         [
           [
             Wl_util.srand 4242;
             Let ("input", i8p, Call ("bzalloc", [ i input_len ]));
             Let ("rle", i8p, Call ("bzalloc", [ i (2 * input_len) ]));
             Let ("mtf", i8p, Call ("bzalloc", [ i (2 * input_len) ]));
             Let ("freq", ip, Cast (ip, Call ("bzalloc", [ i (256 * 8) ])));
             Let ("order", i8p, Call ("bzalloc", [ i 256 ]));
             Let ("st", ep, Cast (ep, Call ("bzalloc", [ i 40 ])));
             Store (i8p, Gep (estate_ty, v "st", [ fld "input" ]), v "input");
             Store (i8p, Gep (estate_ty, v "st", [ fld "rle" ]), v "rle");
             Store (i8p, Gep (estate_ty, v "st", [ fld "mtf" ]), v "mtf");
             Store (ip, Gep (estate_ty, v "st", [ fld "freq" ]), v "freq");
             Store (i8p, Gep (estate_ty, v "st", [ fld "order" ]), v "order");
           ];
           (* synthetic compressible input: runs of repeated bytes *)
           [
             Let ("pos", Ctype.I64, i 0);
             While
               ( v "pos" <: i input_len,
                 [
                   Let ("byte", Ctype.I64, Wl_util.rand_mod 32);
                   Let ("run", Ctype.I64, i 1 +: Wl_util.rand_mod 12);
                   While
                     ( Binop (BAnd, v "run" >: i 0, v "pos" <: i input_len),
                       [
                         Store (Ctype.I8, at8 (v "input") (v "pos"), v "byte");
                         Assign ("pos", v "pos" +: i 1);
                         Assign ("run", v "run" -: i 1);
                       ] );
                 ] );
           ];
           (* RLE stage *)
           [
             Let ("out", Ctype.I64, i 0);
             Let ("p2", Ctype.I64, i 0);
             While
               ( v "p2" <: i input_len,
                 [
                   Assign ("input", ef "st" "input" i8p);
                   Assign ("rle", ef "st" "rle" i8p);
                   Let ("c", Ctype.I64,
                        Cast (Ctype.I64, Load (Ctype.I8, at8 (v "input") (v "p2"))));
                   Let ("r", Ctype.I64, i 1);
                   While
                     ( (v "p2" +: v "r") <: i input_len
                       &&: (Cast (Ctype.I64,
                                  Load (Ctype.I8, at8 (v "input") (v "p2" +: v "r")))
                            ==: v "c")
                       &&: (v "r" <: i 255),
                       [ Assign ("r", v "r" +: i 1) ] );
                   Store (Ctype.I8, at8 (v "rle") (v "out"), v "c");
                   Store (Ctype.I8, at8 (v "rle") (v "out" +: i 1), v "r");
                   Assign ("out", v "out" +: i 2);
                   Assign ("p2", v "p2" +: v "r");
                 ] );
           ];
           (* move-to-front over the RLE output *)
           Wl_util.for_ "k" ~from:(i 0) ~below:(i 256)
             [ Store (Ctype.I8, at8 (v "order") (v "k"), v "k") ];
           [
             Let ("p3", Ctype.I64, i 0);
             While
               ( v "p3" <: v "out",
                 [
                   Assign ("rle", ef "st" "rle" i8p);
                   Assign ("order", ef "st" "order" i8p);
                   Assign ("mtf", ef "st" "mtf" i8p);
                   Let ("c3", Ctype.I64,
                        Cast (Ctype.I64, Load (Ctype.I8, at8 (v "rle") (v "p3"))) %: i 256);
                   (* find rank of c3 *)
                   Let ("rank", Ctype.I64, i 0);
                   While
                     ( Binop (BAnd,
                              (Cast (Ctype.I64, Load (Ctype.I8, at8 (v "order") (v "rank")))
                               %: i 256)
                              <>: v "c3",
                              v "rank" <: i 255),
                       [ Assign ("rank", v "rank" +: i 1) ] );
                   (* shift down and move to front *)
                   Let ("m", Ctype.I64, v "rank");
                   While
                     ( v "m" >: i 0,
                       [
                         Store (Ctype.I8, at8 (v "order") (v "m"),
                                Load (Ctype.I8, at8 (v "order") (v "m" -: i 1)));
                         Assign ("m", v "m" -: i 1);
                       ] );
                   Store (Ctype.I8, at8 (v "order") (i 0), v "c3");
                   Store (Ctype.I8, at8 (v "mtf") (v "p3"), v "rank");
                   Assign ("p3", v "p3" +: i 1);
                 ] );
           ];
           (* frequency model + entropy-proxy checksum *)
           Wl_util.for_ "k2" ~from:(i 0) ~below:(i 256)
             [ Store (Ctype.I64, at64 (v "freq") (v "k2"), i 0) ];
           [
             Let ("p4", Ctype.I64, i 0);
             While
               ( v "p4" <: v "out",
                 [
                   Assign ("mtf", ef "st" "mtf" i8p);
                   Assign ("freq", ef "st" "freq" ip);
                   Let ("c4", Ctype.I64,
                        Cast (Ctype.I64, Load (Ctype.I8, at8 (v "mtf") (v "p4"))) %: i 256);
                   Store (Ctype.I64, at64 (v "freq") (v "c4"),
                          Load (Ctype.I64, at64 (v "freq") (v "c4")) +: i 1);
                   Assign ("p4", v "p4" +: i 1);
                 ] );
             Let ("bits", Ctype.I64, i 0);
             Let ("k3", Ctype.I64, i 0);
             While
               ( v "k3" <: i 256,
                 [
                   Let ("f", Ctype.I64, Load (Ctype.I64, at64 (v "freq") (v "k3")));
                   (* cost ~ f * (8 - min(7, log2-ish(rank))) *)
                   Assign ("bits", v "bits" +: (v "f" *: (i 1 +: (v "k3" %: i 8))));
                   Assign ("k3", v "k3" +: i 1);
                 ] );
             Return (Some ((v "out" *: i 100000) +: (v "bits" %: i 100000)));
           ];
         ])
  in
  program ~tenv
    ~globals:[ Wl_util.seed_global ]
    [ Wl_util.rand_func; bzalloc; main ]

let workload =
  Workload.make ~name:"bzip2" ~suite:"misc"
    ~description:"RLE + move-to-front + frequency model over heap buffers"
    build
