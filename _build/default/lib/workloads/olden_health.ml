(* Olden health: Columbian health-care simulation — a four-level village
   hierarchy, each village with waiting/assess lists of patients that are
   allocated, moved between lists and freed every time step. Patients are
   allocated through a type-erased wrapper (as the original does through
   its own allocation helpers), so most object metadata carries no layout
   table — matching the <1% LT column of Table 4. *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let village_ty = Ctype.Struct "village"
let patient_ty = Ctype.Struct "patient"
let list_ty = Ctype.Struct "plist"
let vp = Ctype.Ptr village_ty
let pp = Ctype.Ptr patient_ty
let lp = Ctype.Ptr list_ty

let branching = 4
let levels = 4
let steps = 40

let tenv =
  let t = Ctype.empty_tenv in
  let t =
    Ctype.declare t
      {
        Ctype.sname = "patient";
        fields =
          [
            { fname = "id"; fty = Ctype.I64 };
            { fname = "time"; fty = Ctype.I64 };
            { fname = "hosps"; fty = Ctype.I64 };
          ];
      }
  in
  let t =
    Ctype.declare t
      {
        Ctype.sname = "plist";
        fields =
          [
            { fname = "pat"; fty = Ctype.Ptr (Ctype.Struct "patient") };
            { fname = "next"; fty = Ctype.Ptr (Ctype.Struct "plist") };
          ];
      }
  in
  Ctype.declare t
    {
      Ctype.sname = "village";
      fields =
        [
          { fname = "id"; fty = Ctype.I64 };
          { fname = "waiting"; fty = Ctype.Ptr (Ctype.Struct "plist") };
          { fname = "treated"; fty = Ctype.I64 };
          { fname = "kids"; fty = Ctype.Array (Ctype.Ptr (Ctype.Struct "village"), branching) };
        ];
    }

let build () =
  (* type-erased patient allocation (custom wrapper, no layout table) *)
  let alloc_patient =
    func "alloc_patient" [ ("id", Ctype.I64) ] pp
      [
        (* direct wrapper pattern: recoverable by --infer-alloc-types *)
        Let ("p", pp, Cast (pp, Malloc_bytes (i 24)));
        Store (Ctype.I64, Gep (patient_ty, v "p", [ fld "id" ]), v "id");
        Store (Ctype.I64, Gep (patient_ty, v "p", [ fld "time" ]), i 0);
        Store (Ctype.I64, Gep (patient_ty, v "p", [ fld "hosps" ]), i 0);
        Return (Some (v "p"));
      ]
  in
  let mk_village =
    func "mk_village" [ ("level", Ctype.I64); ("id", Ctype.I64) ] vp
      (Wl_util.block
         [
           [
             Let ("p", vp, Malloc (village_ty, i 1));
             Store (Ctype.I64, Gep (village_ty, v "p", [ fld "id" ]), v "id");
             Store (lp, Gep (village_ty, v "p", [ fld "waiting" ]), null list_ty);
             Store (Ctype.I64, Gep (village_ty, v "p", [ fld "treated" ]), i 0);
           ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(i branching)
             [
               If
                 ( v "level" >: i 1,
                   [
                     Store (vp, Gep (village_ty, v "p", [ fld "kids"; at (v "k") ]),
                            Call ("mk_village",
                                  [ v "level" -: i 1; (v "id" *: i branching) +: v "k" ]));
                   ],
                   [
                     Store (vp, Gep (village_ty, v "p", [ fld "kids"; at (v "k") ]),
                            null village_ty);
                   ] );
             ];
           [ Return (Some (v "p")) ];
         ])
  in
  let push =
    func "push" [ ("vg", vp); ("pat", pp) ] Ctype.Void
      [
        Let ("cell", lp, Malloc (list_ty, i 1));
        Store (pp, Gep (list_ty, v "cell", [ fld "pat" ]), v "pat");
        Store (lp, Gep (list_ty, v "cell", [ fld "next" ]),
               Load (lp, Gep (village_ty, v "vg", [ fld "waiting" ])));
        Store (lp, Gep (village_ty, v "vg", [ fld "waiting" ]), v "cell");
        Return None;
      ]
  in
  (* one simulation step for a village subtree: age patients, treat and
     free some, generate arrivals at the leaves, refer others upward *)
  let sim =
    func "sim" [ ("vg", vp); ("level", Ctype.I64) ] Ctype.I64
      (Wl_util.block
         [
           [ Let ("treated", Ctype.I64, i 0) ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(i branching)
             [
               Let ("kid", vp, Load (vp, Gep (village_ty, v "vg", [ fld "kids"; at (v "k") ])));
               If (Binop (Ne, v "kid", null village_ty),
                   [ Assign ("treated",
                             v "treated" +: Call ("sim", [ v "kid"; v "level" -: i 1 ])) ],
                   []);
             ];
           [
             (* walk the waiting list *)
             Let ("cur", lp, Load (lp, Gep (village_ty, v "vg", [ fld "waiting" ])));
             Store (lp, Gep (village_ty, v "vg", [ fld "waiting" ]), null list_ty);
             While
               ( Binop (Ne, v "cur", null list_ty),
                 [
                   Let ("nxt", lp, Load (lp, Gep (list_ty, v "cur", [ fld "next" ])));
                   Let ("pat", pp, Load (pp, Gep (list_ty, v "cur", [ fld "pat" ])));
                   Store (Ctype.I64, Gep (patient_ty, v "pat", [ fld "time" ]),
                          Load (Ctype.I64, Gep (patient_ty, v "pat", [ fld "time" ])) +: i 1);
                   If
                     ( Load (Ctype.I64, Gep (patient_ty, v "pat", [ fld "time" ])) >: i 3,
                       [
                         (* treated: free the patient and the cell *)
                         Assign ("treated", v "treated" +: i 1);
                         Free (Cast (Ctype.Ptr Ctype.I8, v "pat"));
                         Free (v "cur");
                       ],
                       [
                         (* still waiting: requeue *)
                         Store (lp, Gep (list_ty, v "cur", [ fld "next" ]),
                                Load (lp, Gep (village_ty, v "vg", [ fld "waiting" ])));
                         Store (lp, Gep (village_ty, v "vg", [ fld "waiting" ]), v "cur");
                       ] );
                   Assign ("cur", v "nxt");
                 ] );
             (* arrivals at leaf villages *)
             If
               ( v "level" ==: i 1,
                 [
                   If (Wl_util.rand_mod 3 ==: i 0,
                       [
                         Expr (Call ("push",
                                     [ v "vg"; Call ("alloc_patient", [ Wl_util.rand ]) ]));
                       ], []);
                 ],
                 [] );
             Store (Ctype.I64, Gep (village_ty, v "vg", [ fld "treated" ]),
                    Load (Ctype.I64, Gep (village_ty, v "vg", [ fld "treated" ]))
                    +: v "treated");
             Return (Some (v "treated"));
           ];
         ])
  in
  let main =
    func "main" [] Ctype.I64
      (Wl_util.block
         [
           [ Wl_util.srand 2024 ];
           [ Let ("root", vp, Call ("mk_village", [ i levels; i 1 ])) ];
           [ Let ("total", Ctype.I64, i 0) ];
           Wl_util.for_ "t" ~from:(i 0) ~below:(i steps)
             [ Assign ("total", v "total" +: Call ("sim", [ v "root"; i levels ])) ];
           [ Return (Some (v "total")) ];
         ])
  in
  program ~tenv
    ~globals:[ Wl_util.seed_global ]
    [ Wl_util.rand_func; alloc_patient; mk_village; push; sim; main ]

let workload =
  Workload.make ~name:"health" ~suite:"olden"
    ~description:"hospital simulation: village tree + patient lists, alloc/free churn"
    build
