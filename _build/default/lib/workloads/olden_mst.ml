(* Olden mst: minimum spanning tree over a synthetic dense graph whose
   adjacency weights live in per-vertex chained hash tables — the
   pointer-chasing hash walk dominates, as in the original. *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let vert_ty = Ctype.Struct "vertex"
let hash_ty = Ctype.Struct "hent"
let vp = Ctype.Ptr vert_ty
let hp = Ctype.Ptr hash_ty

let n_vertices = 48
let hash_size = 8

let tenv =
  let t = Ctype.empty_tenv in
  let t =
    Ctype.declare t
      {
        Ctype.sname = "hent";
        fields =
          [
            { fname = "key"; fty = Ctype.I64 };
            { fname = "weight"; fty = Ctype.I64 };
            { fname = "next"; fty = Ctype.Ptr (Ctype.Struct "hent") };
          ];
      }
  in
  Ctype.declare t
    {
      Ctype.sname = "vertex";
      fields =
        [
          { fname = "id"; fty = Ctype.I64 };
          { fname = "mindist"; fty = Ctype.I64 };
          { fname = "intree"; fty = Ctype.I64 };
          { fname = "buckets"; fty = Ctype.Array (Ctype.Ptr (Ctype.Struct "hent"), hash_size) };
          { fname = "next"; fty = Ctype.Ptr (Ctype.Struct "vertex") };
        ];
    }

let bucket p k = Gep (vert_ty, p, [ fld "buckets"; at k ])

let build () =
  let hash_insert =
    func "hash_insert" [ ("vx", vp); ("key", Ctype.I64); ("w", Ctype.I64) ] Ctype.Void
      [
        Let ("b", Ctype.I64, v "key" %: i hash_size);
        Let ("e", hp, Malloc (hash_ty, i 1));
        Store (Ctype.I64, Gep (hash_ty, v "e", [ fld "key" ]), v "key");
        Store (Ctype.I64, Gep (hash_ty, v "e", [ fld "weight" ]), v "w");
        Store (hp, Gep (hash_ty, v "e", [ fld "next" ]),
               Load (hp, bucket (v "vx") (v "b")));
        Store (hp, bucket (v "vx") (v "b"), v "e");
        Return None;
      ]
  in
  let hash_find =
    func "hash_find" [ ("vx", vp); ("key", Ctype.I64) ] Ctype.I64
      [
        Let ("b", Ctype.I64, v "key" %: i hash_size);
        Let ("e", hp, Load (hp, bucket (v "vx") (v "b")));
        While
          ( Binop (Ne, v "e", null hash_ty),
            [
              If (Load (Ctype.I64, Gep (hash_ty, v "e", [ fld "key" ])) ==: v "key",
                  [ Return (Some (Load (Ctype.I64, Gep (hash_ty, v "e", [ fld "weight" ])))) ],
                  []);
              Assign ("e", Load (hp, Gep (hash_ty, v "e", [ fld "next" ])));
            ] );
        Return (Some (i64 0x3FFFFFFFL));
      ]
  in
  let main =
    func "main" [] Ctype.I64
      (Wl_util.block
         [
           [ Wl_util.srand 5 ];
           (* build vertex list *)
           [ Let ("head", vp, null vert_ty) ];
           Wl_util.for_ "j" ~from:(i 0) ~below:(i n_vertices)
             (Wl_util.block
                [
                  [
                    Let ("vx", vp, Malloc (vert_ty, i 1));
                    Store (Ctype.I64, Gep (vert_ty, v "vx", [ fld "id" ]), v "j");
                    Store (Ctype.I64, Gep (vert_ty, v "vx", [ fld "mindist" ]),
                           i64 0x3FFFFFFFL);
                    Store (Ctype.I64, Gep (vert_ty, v "vx", [ fld "intree" ]), i 0);
                  ];
                  Wl_util.for_ "b" ~from:(i 0) ~below:(i hash_size)
                    [ Store (hp, bucket (v "vx") (v "b"), null hash_ty) ];
                  [
                    Store (vp, Gep (vert_ty, v "vx", [ fld "next" ]), v "head");
                    Assign ("head", v "vx");
                  ];
                ]);
           (* add edges: each vertex gets a weight to every other vertex *)
           [ Let ("vi", vp, v "head") ];
           While
             ( Binop (Ne, v "vi", null vert_ty),
               Wl_util.block
                 [
                   Wl_util.for_ "k" ~from:(i 0) ~below:(i n_vertices)
                     [
                       If (v "k" <>: Load (Ctype.I64, Gep (vert_ty, v "vi", [ fld "id" ])),
                           [
                             Expr (Call ("hash_insert",
                                         [ v "vi"; v "k"; i 1 +: Wl_util.rand_mod 100 ]));
                           ], []);
                     ];
                   [ Assign ("vi", Load (vp, Gep (vert_ty, v "vi", [ fld "next" ]))) ];
                 ] )
           :: [];
           (* Prim's algorithm over the vertex list *)
           [
             Let ("total", Ctype.I64, i 0);
             Store (Ctype.I64, Gep (vert_ty, v "head", [ fld "intree" ]), i 1);
             Let ("current", vp, v "head");
             Let ("added", Ctype.I64, i 1);
           ];
           [
             While
               ( v "added" <: i n_vertices,
                 Wl_util.block
                   [
                     [
                       Let ("cid", Ctype.I64,
                            Load (Ctype.I64, Gep (vert_ty, v "current", [ fld "id" ])));
                       (* relax distances via hash lookups *)
                       Let ("w", vp, v "head");
                     ];
                     [
                       While
                         ( Binop (Ne, v "w", null vert_ty),
                           [
                             If
                               ( Load (Ctype.I64, Gep (vert_ty, v "w", [ fld "intree" ])) ==: i 0,
                                 [
                                   Let ("d", Ctype.I64,
                                        Call ("hash_find",
                                              [ v "w"; v "cid" ]));
                                   If (v "d" <: Load (Ctype.I64,
                                                      Gep (vert_ty, v "w", [ fld "mindist" ])),
                                       [
                                         Store (Ctype.I64,
                                                Gep (vert_ty, v "w", [ fld "mindist" ]), v "d");
                                       ], []);
                                 ],
                                 [] );
                             Assign ("w", Load (vp, Gep (vert_ty, v "w", [ fld "next" ])));
                           ] );
                     ];
                     (* pick the closest fringe vertex *)
                     [
                       Let ("best", vp, null vert_ty);
                       Let ("bestd", Ctype.I64, i64 0x7FFFFFFFL);
                       Let ("w2", vp, v "head");
                       While
                         ( Binop (Ne, v "w2", null vert_ty),
                           [
                             If
                               ( Binop (BAnd,
                                        Load (Ctype.I64,
                                              Gep (vert_ty, v "w2", [ fld "intree" ])) ==: i 0,
                                        Load (Ctype.I64,
                                              Gep (vert_ty, v "w2", [ fld "mindist" ]))
                                        <: v "bestd"),
                                 [
                                   Assign ("best", v "w2");
                                   Assign ("bestd",
                                           Load (Ctype.I64,
                                                 Gep (vert_ty, v "w2", [ fld "mindist" ])));
                                 ],
                                 [] );
                             Assign ("w2", Load (vp, Gep (vert_ty, v "w2", [ fld "next" ])));
                           ] );
                       Store (Ctype.I64, Gep (vert_ty, v "best", [ fld "intree" ]), i 1);
                       Assign ("total", v "total" +: v "bestd");
                       Assign ("current", v "best");
                       Assign ("added", v "added" +: i 1);
                     ];
                   ] );
           ];
           [ Return (Some (v "total")) ];
         ])
  in
  program ~tenv
    ~globals:[ Wl_util.seed_global ]
    [ Wl_util.rand_func; hash_insert; hash_find; main ]

let workload =
  Workload.make ~name:"mst" ~suite:"olden"
    ~description:"Prim's MST with per-vertex chained hash tables" build
