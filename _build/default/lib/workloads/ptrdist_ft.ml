(* PtrDist ft: minimum spanning forest via a mergeable heap. We implement
   the heap as a leftist heap — merge-dominated pointer chasing, matching
   ft's profile (the paper's largest promote count relative to size). *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let node_ty = Ctype.Struct "hnode"
let np = Ctype.Ptr node_ty

let n_ops = 3000

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "hnode";
      fields =
        [
          { fname = "key"; fty = Ctype.I64 };
          { fname = "rank"; fty = Ctype.I64 };
          { fname = "left"; fty = Ctype.Ptr (Ctype.Struct "hnode") };
          { fname = "right"; fty = Ctype.Ptr (Ctype.Struct "hnode") };
        ];
    }

let nf p f = Gep (node_ty, p, [ fld f ])

let build () =
  let merge =
    func "hmerge" [ ("a", np); ("b", np) ] np
      [
        If (Binop (Eq, v "a", null node_ty), [ Return (Some (v "b")) ], []);
        If (Binop (Eq, v "b", null node_ty), [ Return (Some (v "a")) ], []);
        (* ensure a has the smaller key *)
        If
          ( Load (Ctype.I64, nf (v "b") "key") <: Load (Ctype.I64, nf (v "a") "key"),
            [
              Let ("t", np, v "a");
              Assign ("a", v "b");
              Assign ("b", v "t");
            ],
            [] );
        Store (np, nf (v "a") "right",
               Call ("hmerge", [ Load (np, nf (v "a") "right"); v "b" ]));
        (* leftist property: left rank >= right rank *)
        Let ("lr", Ctype.I64, i 0);
        Let ("rr", Ctype.I64, i 0);
        Let ("l", np, Load (np, nf (v "a") "left"));
        Let ("r", np, Load (np, nf (v "a") "right"));
        If (Binop (Ne, v "l", null node_ty),
            [ Assign ("lr", Load (Ctype.I64, nf (v "l") "rank")) ], []);
        If (Binop (Ne, v "r", null node_ty),
            [ Assign ("rr", Load (Ctype.I64, nf (v "r") "rank")) ], []);
        If (v "lr" <: v "rr",
            [
              Store (np, nf (v "a") "left", v "r");
              Store (np, nf (v "a") "right", v "l");
              Store (Ctype.I64, nf (v "a") "rank", v "lr" +: i 1);
            ],
            [ Store (Ctype.I64, nf (v "a") "rank", v "rr" +: i 1) ]);
        Return (Some (v "a"));
      ]
  in
  let insert =
    func "hinsert" [ ("h", np); ("key", Ctype.I64) ] np
      [
        Let ("p", np, Malloc (node_ty, i 1));
        Store (Ctype.I64, nf (v "p") "key", v "key");
        Store (Ctype.I64, nf (v "p") "rank", i 1);
        Store (np, nf (v "p") "left", null node_ty);
        Store (np, nf (v "p") "right", null node_ty);
        Return (Some (Call ("hmerge", [ v "h"; v "p" ])));
      ]
  in
  let main =
    func "main" [] Ctype.I64
      (Wl_util.block
         [
           [ Wl_util.srand 555; Let ("h", np, null node_ty) ];
           Wl_util.for_ "j" ~from:(i 0) ~below:(i n_ops)
             [ Assign ("h", Call ("hinsert", [ v "h"; Wl_util.rand_mod 100000 ])) ];
           (* drain: delete-min repeatedly, accumulating a checksum *)
           [
             Let ("acc", Ctype.I64, i 0);
             Let ("n", Ctype.I64, i 0);
             While
               ( Binop (Ne, v "h", null node_ty),
                 [
                   Assign ("acc",
                           (v "acc" +: Load (Ctype.I64, nf (v "h") "key"))
                           %: i64 1000000007L);
                   Let ("old", np, v "h");
                   Assign ("h",
                           Call ("hmerge",
                                 [ Load (np, nf (v "h") "left");
                                   Load (np, nf (v "h") "right") ]));
                   Free (v "old");
                   Assign ("n", v "n" +: i 1);
                 ] );
             Return (Some (v "acc" +: v "n"));
           ];
         ])
  in
  program ~tenv
    ~globals:[ Wl_util.seed_global ]
    [ Wl_util.rand_func; merge; insert; main ]

let workload =
  Workload.make ~name:"ft" ~suite:"ptrdist"
    ~description:"leftist-heap insert/delete-min churn (merge-dominated)" build
