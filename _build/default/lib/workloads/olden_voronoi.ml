(* Olden voronoi: divide-and-conquer over points. We keep the
   structurally significant part — recursive merge sort over a linked
   point list followed by nearest-neighbour scans — and, as in the
   paper's profile, a large share of promotes see legacy pointers because
   comparisons call into an uninstrumented library comparator. *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let pt_ty = Ctype.Struct "point"
let pp = Ctype.Ptr pt_ty

let n_points = 384

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "point";
      fields =
        [
          { fname = "x"; fty = Ctype.I64 };
          { fname = "y"; fty = Ctype.I64 };
          { fname = "next"; fty = Ctype.Ptr (Ctype.Struct "point") };
        ];
    }

let pfield p f = Gep (pt_ty, p, [ fld f ])

let build () =
  (* legacy (uninstrumented) comparator library, as if linked from an
     uninstrumented .a: pointers passing through lose their bounds *)
  let cmp =
    func ~instrumented:false "cmp_points" [ ("a", pp); ("b", pp) ] Ctype.I64
      [
        Let ("ax", Ctype.I64, Load (Ctype.I64, pfield (v "a") "x"));
        Let ("bx", Ctype.I64, Load (Ctype.I64, pfield (v "b") "x"));
        If (v "ax" <: v "bx", [ Return (Some (Unop (Neg, i 1))) ], []);
        If (v "ax" >: v "bx", [ Return (Some (i 1)) ], []);
        Return (Some (i 0));
      ]
  in
  let split =
    (* split list in two halves: returns second half, truncates first *)
    func "split" [ ("head", pp) ] pp
      [
        Let ("slow", pp, v "head");
        Let ("fast", pp, Load (pp, pfield (v "head") "next"));
        While
          ( Binop (Ne, v "fast", null pt_ty),
            [
              Assign ("fast", Load (pp, pfield (v "fast") "next"));
              If
                ( Binop (Ne, v "fast", null pt_ty),
                  [
                    Assign ("slow", Load (pp, pfield (v "slow") "next"));
                    Assign ("fast", Load (pp, pfield (v "fast") "next"));
                  ],
                  [] );
            ] );
        Let ("second", pp, Load (pp, pfield (v "slow") "next"));
        Store (pp, pfield (v "slow") "next", null pt_ty);
        Return (Some (v "second"));
      ]
  in
  let merge =
    func "merge" [ ("a", pp); ("b", pp) ] pp
      [
        If (Binop (Eq, v "a", null pt_ty), [ Return (Some (v "b")) ], []);
        If (Binop (Eq, v "b", null pt_ty), [ Return (Some (v "a")) ], []);
        If
          ( Call ("cmp_points", [ v "a"; v "b" ]) <=: i 0,
            [
              Store (pp, pfield (v "a") "next",
                     Call ("merge", [ Load (pp, pfield (v "a") "next"); v "b" ]));
              Return (Some (v "a"));
            ],
            [
              Store (pp, pfield (v "b") "next",
                     Call ("merge", [ v "a"; Load (pp, pfield (v "b") "next") ]));
              Return (Some (v "b"));
            ] );
      ]
  in
  let msort =
    func "msort" [ ("head", pp) ] pp
      [
        If (Binop (Eq, v "head", null pt_ty), [ Return (Some (v "head")) ], []);
        If (Binop (Eq, Load (pp, pfield (v "head") "next"), null pt_ty),
            [ Return (Some (v "head")) ], []);
        Let ("second", pp, Call ("split", [ v "head" ]));
        Return
          (Some (Call ("merge",
                       [ Call ("msort", [ v "head" ]); Call ("msort", [ v "second" ]) ])));
      ]
  in
  let main =
    func "main" [] Ctype.I64
      (Wl_util.block
         [
           [ Wl_util.srand 13; Let ("head", pp, null pt_ty) ];
           Wl_util.for_ "j" ~from:(i 0) ~below:(i n_points)
             [
               Let ("p", pp, Malloc (pt_ty, i 1));
               Store (Ctype.I64, pfield (v "p") "x", Wl_util.rand_mod 100000);
               Store (Ctype.I64, pfield (v "p") "y", Wl_util.rand_mod 100000);
               Store (pp, pfield (v "p") "next", v "head");
               Assign ("head", v "p");
             ];
           [ Assign ("head", Call ("msort", [ v "head" ])) ];
           (* closest adjacent pair after sort (Delaunay-ish scan) *)
           [
             Let ("best", Ctype.I64, i64 0x7FFFFFFFFFFFFFL);
             Let ("w", pp, v "head");
             While
               ( Binop (Ne, Load (pp, pfield (v "w") "next"), null pt_ty),
                 [
                   Let ("nx", pp, Load (pp, pfield (v "w") "next"));
                   Let ("dx", Ctype.I64,
                        Load (Ctype.I64, pfield (v "w") "x")
                        -: Load (Ctype.I64, pfield (v "nx") "x"));
                   Let ("dy", Ctype.I64,
                        Load (Ctype.I64, pfield (v "w") "y")
                        -: Load (Ctype.I64, pfield (v "nx") "y"));
                   Let ("d", Ctype.I64, (v "dx" *: v "dx") +: (v "dy" *: v "dy"));
                   If (v "d" <: v "best", [ Assign ("best", v "d") ], []);
                   Assign ("w", v "nx");
                 ] );
             Return (Some (v "best"));
           ];
         ])
  in
  program ~tenv
    ~globals:[ Wl_util.seed_global ]
    [ Wl_util.rand_func; cmp; split; merge; msort; main ]

let workload =
  Workload.make ~name:"voronoi" ~suite:"olden"
    ~description:"linked-list merge sort + closest-pair scan, legacy comparator"
    build
