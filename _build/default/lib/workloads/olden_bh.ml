(* Olden bh: Barnes-Hut n-body. Bodies are inserted into a quadtree;
   force evaluation walks the tree with an opening criterion. The force
   kernel keeps a small address-taken vector struct on the stack and
   passes it to helpers — the pattern behind bh's huge local-object
   registration count in Table 4. *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let body_ty = Ctype.Struct "body"
let cell_ty = Ctype.Struct "cell"
let vec_ty = Ctype.Struct "vec2"
let bp = Ctype.Ptr body_ty
let cp = Ctype.Ptr cell_ty
let vecp = Ctype.Ptr vec_ty

let n_bodies = 96
let steps = 2

let tenv =
  let t = Ctype.empty_tenv in
  let t =
    Ctype.declare t
      {
        Ctype.sname = "vec2";
        fields =
          [ { fname = "x"; fty = Ctype.F64 }; { fname = "y"; fty = Ctype.F64 } ];
      }
  in
  let t =
    Ctype.declare t
      {
        Ctype.sname = "body";
        fields =
          [
            { fname = "x"; fty = Ctype.F64 };
            { fname = "y"; fty = Ctype.F64 };
            { fname = "mass"; fty = Ctype.F64 };
            { fname = "fx"; fty = Ctype.F64 };
            { fname = "fy"; fty = Ctype.F64 };
          ];
      }
  in
  Ctype.declare t
    {
      Ctype.sname = "cell";
      fields =
        [
          { fname = "cx"; fty = Ctype.F64 };
          { fname = "cy"; fty = Ctype.F64 };
          { fname = "half"; fty = Ctype.F64 };
          { fname = "mass"; fty = Ctype.F64 };
          { fname = "mx"; fty = Ctype.F64 };
          { fname = "my"; fty = Ctype.F64 };
          { fname = "body"; fty = Ctype.Ptr (Ctype.Struct "body") };
          { fname = "kids"; fty = Ctype.Array (Ctype.Ptr (Ctype.Struct "cell"), 4) };
        ];
    }

let f64 x = Float x
let cf p f = Gep (cell_ty, p, [ fld f ])
let bf p f = Gep (body_ty, p, [ fld f ])
let ld_f p = Load (Ctype.F64, p)

let build () =
  let mk_cell =
    func "mk_cell"
      [ ("cx", Ctype.F64); ("cy", Ctype.F64); ("half", Ctype.F64) ]
      cp
      (Wl_util.block
         [
           [
             Let ("p", cp, Malloc (cell_ty, i 1));
             Store (Ctype.F64, cf (v "p") "cx", v "cx");
             Store (Ctype.F64, cf (v "p") "cy", v "cy");
             Store (Ctype.F64, cf (v "p") "half", v "half");
             Store (Ctype.F64, cf (v "p") "mass", f64 0.0);
             Store (Ctype.F64, cf (v "p") "mx", f64 0.0);
             Store (Ctype.F64, cf (v "p") "my", f64 0.0);
             Store (bp, cf (v "p") "body", null body_ty);
           ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(i 4)
             [ Store (cp, Gep (cell_ty, v "p", [ fld "kids"; at (v "k") ]), null cell_ty) ];
           [ Return (Some (v "p")) ];
         ])
  in
  (* quadrant of (x, y) relative to cell centre *)
  let quadrant =
    func "quadrant" [ ("c", cp); ("x", Ctype.F64); ("y", Ctype.F64) ] Ctype.I64
      [
        Let ("q", Ctype.I64, i 0);
        If (Binop (FLt, ld_f (cf (v "c") "cx"), v "x"), [ Assign ("q", v "q" +: i 1) ], []);
        If (Binop (FLt, ld_f (cf (v "c") "cy"), v "y"), [ Assign ("q", v "q" +: i 2) ], []);
        Return (Some (v "q"));
      ]
  in
  let insert =
    func "insert" [ ("c", cp); ("b", bp) ] Ctype.Void
      [
        Let ("q", Ctype.I64,
             Call ("quadrant", [ v "c"; ld_f (bf (v "b") "x"); ld_f (bf (v "b") "y") ]));
        Let ("kid", cp, Load (cp, Gep (cell_ty, v "c", [ fld "kids"; at (v "q") ])));
        If
          ( Binop (Eq, v "kid", null cell_ty),
            [
              (* make a child cell for this quadrant *)
              Let ("h", Ctype.F64, Binop (FMul, ld_f (cf (v "c") "half"), f64 0.5));
              Let ("dx", Ctype.F64,
                   Binop (FSub, Binop (FMul, Cast (Ctype.F64, v "q" %: i 2), f64 2.0), f64 1.0));
              Let ("dy", Ctype.F64,
                   Binop (FSub, Binop (FMul, Cast (Ctype.F64, v "q" /: i 2), f64 2.0), f64 1.0));
              Let ("nc", cp,
                   Call ("mk_cell",
                         [
                           Binop (FAdd, ld_f (cf (v "c") "cx"), Binop (FMul, v "dx", v "h"));
                           Binop (FAdd, ld_f (cf (v "c") "cy"), Binop (FMul, v "dy", v "h"));
                           v "h";
                         ]));
              Store (cp, Gep (cell_ty, v "c", [ fld "kids"; at (v "q") ]), v "nc");
              Store (bp, cf (v "nc") "body", v "b");
            ],
            [
              If
                ( Binop (Ne, Load (bp, cf (v "kid") "body"), null body_ty),
                  [
                    (* split: push the resident body down, then insert *)
                    Let ("old", bp, Load (bp, cf (v "kid") "body"));
                    Store (bp, cf (v "kid") "body", null body_ty);
                    If (Binop (FLt, f64 0.001, ld_f (cf (v "kid") "half")),
                        [
                          Expr (Call ("insert", [ v "kid"; v "old" ]));
                          Expr (Call ("insert", [ v "kid"; v "b" ]));
                        ],
                        [ Store (bp, cf (v "kid") "body", v "b") ]);
                  ],
                  [ Expr (Call ("insert", [ v "kid"; v "b" ])) ] );
            ] );
        Return None;
      ]
  in
  (* centre-of-mass accumulation *)
  let summarize =
    func "summarize" [ ("c", cp) ] Ctype.F64
      (Wl_util.block
         [
           [
             Let ("m", Ctype.F64, f64 0.0);
             Let ("b", bp, Load (bp, cf (v "c") "body"));
             If
               ( Binop (Ne, v "b", null body_ty),
                 [
                   Assign ("m", ld_f (bf (v "b") "mass"));
                   Store (Ctype.F64, cf (v "c") "mx", ld_f (bf (v "b") "x"));
                   Store (Ctype.F64, cf (v "c") "my", ld_f (bf (v "b") "y"));
                 ],
                 [] );
           ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(i 4)
             [
               Let ("kid", cp, Load (cp, Gep (cell_ty, v "c", [ fld "kids"; at (v "k") ])));
               If (Binop (Ne, v "kid", null cell_ty),
                   [ Assign ("m", Binop (FAdd, v "m", Call ("summarize", [ v "kid" ]))) ],
                   []);
             ];
           [
             Store (Ctype.F64, cf (v "c") "mass", v "m");
             Return (Some (v "m"));
           ];
         ])
  in
  (* d = (bx, by) - (cell mx, my), written through an address-taken local
     vector — this is what registers a local object per call *)
  let accel =
    func "accel" [ ("out", vecp); ("bx", Ctype.F64); ("by", Ctype.F64);
                   ("px", Ctype.F64); ("py", Ctype.F64); ("m", Ctype.F64) ]
      Ctype.Void
      [
        Let ("dx", Ctype.F64, Binop (FSub, v "px", v "bx"));
        Let ("dy", Ctype.F64, Binop (FSub, v "py", v "by"));
        Let ("r2", Ctype.F64,
             Binop (FAdd, Binop (FAdd, Binop (FMul, v "dx", v "dx"),
                                 Binop (FMul, v "dy", v "dy")),
                    f64 0.01));
        Let ("inv", Ctype.F64, Binop (FDiv, v "m", Binop (FMul, v "r2", v "r2")));
        Store (Ctype.F64, Gep (vec_ty, v "out", [ fld "x" ]),
               Binop (FAdd, Load (Ctype.F64, Gep (vec_ty, v "out", [ fld "x" ])),
                      Binop (FMul, v "dx", v "inv")));
        Store (Ctype.F64, Gep (vec_ty, v "out", [ fld "y" ]),
               Binop (FAdd, Load (Ctype.F64, Gep (vec_ty, v "out", [ fld "y" ])),
                      Binop (FMul, v "dy", v "inv")));
        Return None;
      ]
  in
  let force =
    func "force" [ ("c", cp); ("b", bp); ("acc", vecp) ] Ctype.Void
      (Wl_util.block
         [
           [
             If (Binop (Eq, v "c", null cell_ty), [ Return None ], []);
             Let ("dx", Ctype.F64,
                  Binop (FSub, ld_f (cf (v "c") "mx"), ld_f (bf (v "b") "x")));
             Let ("dy", Ctype.F64,
                  Binop (FSub, ld_f (cf (v "c") "my"), ld_f (bf (v "b") "y")));
             Let ("d2", Ctype.F64,
                  Binop (FAdd, Binop (FMul, v "dx", v "dx"), Binop (FMul, v "dy", v "dy")));
             Let ("s", Ctype.F64, Binop (FMul, ld_f (cf (v "c") "half"), f64 2.0));
             (* opening criterion: s^2 < 0.25 d^2 -> treat as point mass *)
             If
               ( Binop (FLt, Binop (FMul, v "s", v "s"),
                        Binop (FMul, f64 0.25, v "d2")),
                 [
                   Expr (Call ("accel",
                               [ v "acc"; ld_f (bf (v "b") "x"); ld_f (bf (v "b") "y");
                                 ld_f (cf (v "c") "mx"); ld_f (cf (v "c") "my");
                                 ld_f (cf (v "c") "mass") ]));
                   Return None;
                 ],
                 [] );
           ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(i 4)
             [
               Expr (Call ("force",
                           [ Load (cp, Gep (cell_ty, v "c", [ fld "kids"; at (v "k") ]));
                             v "b"; v "acc" ]));
             ];
           [
             Let ("rb", bp, Load (bp, cf (v "c") "body"));
             If (Binop (Ne, v "rb", null body_ty),
                 [
                   Expr (Call ("accel",
                               [ v "acc"; ld_f (bf (v "b") "x"); ld_f (bf (v "b") "y");
                                 ld_f (bf (v "rb") "x"); ld_f (bf (v "rb") "y");
                                 ld_f (bf (v "rb") "mass") ]));
                 ], []);
             Return None;
           ];
         ])
  in
  let main =
    func "main" [] Ctype.I64
      (Wl_util.block
         [
           [ Wl_util.srand 31 ];
           [ Let ("bodies", Ctype.Ptr bp, Malloc (bp, i n_bodies)) ];
           Wl_util.for_ "j" ~from:(i 0) ~below:(i n_bodies)
             [
               Let ("b", bp, Malloc (body_ty, i 1));
               Store (Ctype.F64, bf (v "b") "x",
                      Binop (FDiv, Cast (Ctype.F64, Wl_util.rand_mod 1000), f64 500.0));
               Store (Ctype.F64, bf (v "b") "y",
                      Binop (FDiv, Cast (Ctype.F64, Wl_util.rand_mod 1000), f64 500.0));
               Store (Ctype.F64, bf (v "b") "mass", f64 1.0);
               Store (Ctype.F64, bf (v "b") "fx", f64 0.0);
               Store (Ctype.F64, bf (v "b") "fy", f64 0.0);
               Store (bp, Gep (bp, v "bodies", [ at (v "j") ]), v "b");
             ];
           Wl_util.for_ "step" ~from:(i 0) ~below:(i steps)
             (Wl_util.block
                [
                  [ Let ("root", cp, Call ("mk_cell", [ f64 1.0; f64 1.0; f64 1.0 ])) ];
                  Wl_util.for_ "j2" ~from:(i 0) ~below:(i n_bodies)
                    [
                      Expr (Call ("insert",
                                  [ v "root"; Load (bp, Gep (bp, v "bodies", [ at (v "j2") ])) ]));
                    ];
                  [ Expr (Call ("summarize", [ v "root" ])) ];
                  Wl_util.for_ "j3" ~from:(i 0) ~below:(i n_bodies)
                    [
                      Let ("b3", bp, Load (bp, Gep (bp, v "bodies", [ at (v "j3") ])));
                      Decl_local ("dv", vec_ty);
                      Store (Ctype.F64, Gep (vec_ty, Addr_local "dv", [ fld "x" ]), f64 0.0);
                      Store (Ctype.F64, Gep (vec_ty, Addr_local "dv", [ fld "y" ]), f64 0.0);
                      Expr (Call ("force", [ v "root"; v "b3"; Addr_local "dv" ]));
                      Store (Ctype.F64, bf (v "b3") "fx",
                             Load (Ctype.F64, Gep (vec_ty, Addr_local "dv", [ fld "x" ])));
                      Store (Ctype.F64, bf (v "b3") "fy",
                             Load (Ctype.F64, Gep (vec_ty, Addr_local "dv", [ fld "y" ])));
                    ];
                ]);
           [
             Let ("acc", Ctype.F64, f64 0.0);
             Let ("j4", Ctype.I64, i 0);
             While
               ( v "j4" <: i n_bodies,
                 [
                   Let ("b4", bp, Load (bp, Gep (bp, v "bodies", [ at (v "j4") ])));
                   Assign ("acc", Binop (FAdd, v "acc", ld_f (bf (v "b4") "fx")));
                   Assign ("acc", Binop (FAdd, v "acc", ld_f (bf (v "b4") "fy")));
                   Assign ("j4", v "j4" +: i 1);
                 ] );
             Return (Some (Cast (Ctype.I64, Binop (FMul, v "acc", f64 1000.0))));
           ];
         ])
  in
  program ~tenv
    ~globals:[ Wl_util.seed_global ]
    [ Wl_util.rand_func; mk_cell; quadrant; insert; summarize; accel; force; main ]

let workload =
  Workload.make ~name:"bh" ~suite:"olden"
    ~description:"Barnes-Hut n-body with quadtree and stack vector locals"
    build
