lib/workloads/wl_util.mli: Ifp_compiler
