lib/workloads/workload.mli: Ifp_compiler Lazy
