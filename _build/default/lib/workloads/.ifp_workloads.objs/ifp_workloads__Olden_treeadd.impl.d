lib/workloads/olden_treeadd.ml: Ifp_compiler Ifp_types Workload
