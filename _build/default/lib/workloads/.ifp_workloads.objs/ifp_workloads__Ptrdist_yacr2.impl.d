lib/workloads/ptrdist_yacr2.ml: Ifp_compiler Ifp_types Wl_util Workload
