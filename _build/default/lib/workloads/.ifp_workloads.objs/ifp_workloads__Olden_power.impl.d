lib/workloads/olden_power.ml: Ifp_compiler Ifp_types Wl_util Workload
