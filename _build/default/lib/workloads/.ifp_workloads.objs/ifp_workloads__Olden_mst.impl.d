lib/workloads/olden_mst.ml: Ifp_compiler Ifp_types Wl_util Workload
