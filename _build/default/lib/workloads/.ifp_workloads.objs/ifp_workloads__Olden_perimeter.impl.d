lib/workloads/olden_perimeter.ml: Ifp_compiler Ifp_types Wl_util Workload
