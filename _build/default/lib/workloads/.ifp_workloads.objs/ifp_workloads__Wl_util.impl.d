lib/workloads/wl_util.ml: Ifp_compiler Ifp_types List
