lib/workloads/misc_sjeng.ml: Ifp_compiler Ifp_types Wl_util Workload
