lib/workloads/olden_voronoi.ml: Ifp_compiler Ifp_types Wl_util Workload
