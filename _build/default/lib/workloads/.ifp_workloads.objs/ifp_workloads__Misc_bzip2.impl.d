lib/workloads/misc_bzip2.ml: Ifp_compiler Ifp_types Wl_util Workload
