lib/workloads/olden_health.ml: Ifp_compiler Ifp_types Wl_util Workload
