lib/workloads/misc_coremark.ml: Ifp_compiler Ifp_types Wl_util Workload
