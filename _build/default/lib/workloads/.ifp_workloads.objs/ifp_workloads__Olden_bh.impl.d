lib/workloads/olden_bh.ml: Ifp_compiler Ifp_types Wl_util Workload
