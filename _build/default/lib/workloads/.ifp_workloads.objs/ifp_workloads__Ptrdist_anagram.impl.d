lib/workloads/ptrdist_anagram.ml: Ifp_compiler Ifp_types Wl_util Workload
