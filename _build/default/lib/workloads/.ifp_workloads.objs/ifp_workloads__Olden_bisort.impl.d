lib/workloads/olden_bisort.ml: Ifp_compiler Ifp_types Wl_util Workload
