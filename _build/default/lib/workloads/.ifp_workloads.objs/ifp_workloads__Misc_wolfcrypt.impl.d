lib/workloads/misc_wolfcrypt.ml: Ifp_compiler Ifp_types Wl_util Workload
