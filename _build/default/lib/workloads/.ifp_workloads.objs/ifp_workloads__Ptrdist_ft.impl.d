lib/workloads/ptrdist_ft.ml: Ifp_compiler Ifp_types Wl_util Workload
