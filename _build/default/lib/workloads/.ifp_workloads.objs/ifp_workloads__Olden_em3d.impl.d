lib/workloads/olden_em3d.ml: Ifp_compiler Ifp_types Wl_util Workload
