lib/workloads/ptrdist_ks.ml: Ifp_compiler Ifp_types Wl_util Workload
