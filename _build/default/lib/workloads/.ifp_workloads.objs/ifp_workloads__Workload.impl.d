lib/workloads/workload.ml: Ifp_compiler Lazy
