lib/workloads/olden_tsp.ml: Ifp_compiler Ifp_types Wl_util Workload
