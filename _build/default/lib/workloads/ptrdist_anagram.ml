(* PtrDist anagram: letter-signature matching over a synthetic word list.
   Words are heap-allocated i8 buffers; the per-character classification
   goes through a trait-table pointer stored in a global and produced by
   legacy (uninstrumented) library code — so its promotes always see
   legacy pointers, the pattern the paper reports for anagram's
   __ctype_b_loc usage. *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let word_ty = Ctype.Struct "word"
let wp = Ctype.Ptr word_ty
let i8p = Ctype.Ptr Ctype.I8

let n_words = 320
let word_len = 5

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "word";
      fields =
        [
          { fname = "text"; fty = Ctype.Ptr Ctype.I8 };
          { fname = "sig_"; fty = Ctype.I64 };
          { fname = "next"; fty = Ctype.Ptr (Ctype.Struct "word") };
        ];
    }

let wfield p f = Gep (word_ty, p, [ fld f ])

let build () =
  let traits = global "traits_tbl" (Ctype.Array (Ctype.I8, 128)) in
  let gtraits = global "gtraits" (Ctype.Ptr Ctype.I8) in
  (* legacy library: returns the trait table pointer (untagged) *)
  let get_traits =
    func ~instrumented:false "get_traits" [] i8p
      [ Return (Some (Gep (Ctype.Array (Ctype.I8, 128), Addr_global "traits_tbl", [ at (i 0) ]))) ]
  in
  let init_traits =
    func ~instrumented:false "init_traits" [] Ctype.Void
      (Wl_util.block
         [
           Wl_util.for_ "k" ~from:(i 0) ~below:(i 128)
             [
               Store (Ctype.I8,
                      Gep (Ctype.Array (Ctype.I8, 128), Addr_global "traits_tbl",
                           [ at (v "k") ]),
                      Binop (BAnd, v "k", i 31));
             ];
           [ Return None ];
         ])
  in
  let sign_word =
    (* 26-ish-bit signature: or of (1 << trait(c)) for each char *)
    func "sign_word" [ ("txt", i8p); ("len", Ctype.I64) ] Ctype.I64
      (Wl_util.block
         [
           [ Let ("s", Ctype.I64, i 0) ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(v "len")
             [
               Let ("tp", i8p, Load_global "gtraits");
               Let ("c", Ctype.I64,
                    Cast (Ctype.I64, Load (Ctype.I8, Gep (Ctype.I8, v "txt", [ at (v "k") ])))
                    %: i 128);
               Let ("t", Ctype.I64,
                    Cast (Ctype.I64, Load (Ctype.I8, Gep (Ctype.I8, v "tp", [ at (v "c") ])))
                    %: i 26);
               Assign ("s", Binop (BOr, v "s", Binop (Shl, i 1, v "t")));
             ];
           [ Return (Some (v "s")) ];
         ])
  in
  let main =
    func "main" [] Ctype.I64
      (Wl_util.block
         [
           [
             Wl_util.srand 404;
             Expr (Call ("init_traits", []));
             Store_global ("gtraits", Call ("get_traits", []));
             Let ("head", wp, null word_ty);
           ];
           (* build the word list *)
           Wl_util.for_ "j" ~from:(i 0) ~below:(i n_words)
             (Wl_util.block
                [
                  [
                    Let ("txt", i8p, Malloc (Ctype.I8, i word_len));
                  ];
                  Wl_util.for_ "k" ~from:(i 0) ~below:(i word_len)
                    [
                      Store (Ctype.I8, Gep (Ctype.I8, v "txt", [ at (v "k") ]),
                             i 97 +: Wl_util.rand_mod 10);
                    ];
                  [
                    Let ("w", wp, Malloc (word_ty, i 1));
                    Store (i8p, wfield (v "w") "text", v "txt");
                    Store (Ctype.I64, wfield (v "w") "sig_",
                           Call ("sign_word", [ v "txt"; i word_len ]));
                    Store (wp, wfield (v "w") "next", v "head");
                    Assign ("head", v "w");
                  ];
                ]);
           (* count signature collisions (anagram candidates) *)
           [
             Let ("pairs", Ctype.I64, i 0);
             Let ("a", wp, v "head");
             While
               ( Binop (Ne, v "a", null word_ty),
                 [
                   Let ("b", wp, Load (wp, wfield (v "a") "next"));
                   Let ("sa", Ctype.I64, Load (Ctype.I64, wfield (v "a") "sig_"));
                   While
                     ( Binop (Ne, v "b", null word_ty),
                       [
                         If (v "sa" ==: Load (Ctype.I64, wfield (v "b") "sig_"),
                             [ Assign ("pairs", v "pairs" +: i 1) ], []);
                         Assign ("b", Load (wp, wfield (v "b") "next"));
                       ] );
                   Assign ("a", Load (wp, wfield (v "a") "next"));
                 ] );
             Return (Some (v "pairs"));
           ];
         ])
  in
  program ~tenv
    ~globals:[ Wl_util.seed_global; traits; gtraits ]
    [ Wl_util.rand_func; get_traits; init_traits; sign_word; main ]

let workload =
  Workload.make ~name:"anagram" ~suite:"ptrdist"
    ~description:"letter-signature anagram matching, legacy trait table" build
