(** A benchmark workload: a MiniC program port, structurally faithful to
    the corresponding program of the paper's evaluation (§5.2) — same
    data-structure shapes, allocation behaviour and pointer-use patterns,
    scaled to simulator-friendly sizes.

    Every workload's [main] returns a checksum; all VM variants must
    produce the same value (checked by the test suite). *)

type t = {
  name : string;  (** paper's name, e.g. "treeadd" *)
  suite : string;  (** "olden", "ptrdist" or "misc" *)
  description : string;
  prog : Ifp_compiler.Ir.program Lazy.t;
}

val make :
  name:string ->
  suite:string ->
  description:string ->
  (unit -> Ifp_compiler.Ir.program) ->
  t
