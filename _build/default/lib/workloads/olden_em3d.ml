(* Olden em3d: electromagnetic wave propagation on a bipartite graph.
   Each node owns malloc'd arrays (neighbour pointers and coefficients) —
   the array-of-different-sizes allocation pattern that gives the subheap
   allocator its worst memory overhead in the paper (Fig. 12). *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let node_ty = Ctype.Struct "enode"
let np = Ctype.Ptr node_ty
let npp = Ctype.Ptr np (* enode** *)
let fp = Ctype.Ptr Ctype.F64

let n_nodes = 96
let iters = 24

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "enode";
      fields =
        [
          { fname = "value"; fty = Ctype.F64 };
          { fname = "degree"; fty = Ctype.I64 };
          { fname = "coeffs"; fty = Ctype.Ptr Ctype.F64 };
          { fname = "from"; fty = Ctype.Ptr (Ctype.Ptr (Ctype.Struct "enode")) };
        ];
    }

let build () =
  (* degree varies per node so the subheap allocator needs distinct pools *)
  let mk_node =
    func "mk_node" [ ("deg", Ctype.I64) ] np
      (Wl_util.block
         [
           [
             Let ("p", np, Malloc (node_ty, i 1));
             Store (Ctype.F64, Gep (node_ty, v "p", [ fld "value" ]),
                    Binop (FDiv, Cast (Ctype.F64, Wl_util.rand_mod 1000), Float 1000.0));
             Store (Ctype.I64, Gep (node_ty, v "p", [ fld "degree" ]), v "deg");
             Store (fp, Gep (node_ty, v "p", [ fld "coeffs" ]),
                    Malloc (Ctype.F64, v "deg"));
             Store (npp, Gep (node_ty, v "p", [ fld "from" ]),
                    Malloc (np, v "deg"));
             Let ("cs", fp, Load (fp, Gep (node_ty, v "p", [ fld "coeffs" ])));
           ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(v "deg")
             [
               Store (Ctype.F64, Gep (Ctype.F64, v "cs", [ at (v "k") ]),
                      Float 0.01);
             ];
           [ Return (Some (v "p")) ];
         ])
  in
  let connect =
    (* wire node [p]'s in-edges to random nodes of the other partition *)
    func "connect" [ ("p", np); ("others", npp); ("n", Ctype.I64) ] Ctype.Void
      (Wl_util.block
         [
           [
             Let ("deg", Ctype.I64, Load (Ctype.I64, Gep (node_ty, v "p", [ fld "degree" ])));
             Let ("fr", npp, Load (npp, Gep (node_ty, v "p", [ fld "from" ])));
           ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(v "deg")
             [
               Store (np, Gep (np, v "fr", [ at (v "k") ]),
                      Load (np, Gep (np, v "others", [ at (Wl_util.rand %: v "n") ])));
             ];
           [ Return None ];
         ])
  in
  let relax =
    func "relax" [ ("nodes", npp); ("n", Ctype.I64) ] Ctype.Void
      (Wl_util.block
         [
           Wl_util.for_ "j" ~from:(i 0) ~below:(v "n")
             (Wl_util.block
                [
                  [
                    Let ("p", np, Load (np, Gep (np, v "nodes", [ at (v "j") ])));
                    Let ("deg", Ctype.I64,
                         Load (Ctype.I64, Gep (node_ty, v "p", [ fld "degree" ])));
                    Let ("fr", npp, Load (npp, Gep (node_ty, v "p", [ fld "from" ])));
                    Let ("cs", fp, Load (fp, Gep (node_ty, v "p", [ fld "coeffs" ])));
                    Let ("acc", Ctype.F64,
                         Load (Ctype.F64, Gep (node_ty, v "p", [ fld "value" ])));
                  ];
                  Wl_util.for_ "k" ~from:(i 0) ~below:(v "deg")
                    [
                      Let ("src", np, Load (np, Gep (np, v "fr", [ at (v "k") ])));
                      Assign ("acc",
                              Binop (FSub, v "acc",
                                     Binop (FMul,
                                            Load (Ctype.F64,
                                                  Gep (Ctype.F64, v "cs", [ at (v "k") ])),
                                            Load (Ctype.F64,
                                                  Gep (node_ty, v "src", [ fld "value" ])))));
                    ];
                  [ Store (Ctype.F64, Gep (node_ty, v "p", [ fld "value" ]), v "acc") ];
                ]);
           [ Return None ];
         ])
  in
  let main =
    func "main" [] Ctype.I64
      (Wl_util.block
         [
           [ Wl_util.srand 7 ];
           [
             Let ("e_nodes", npp, Malloc (np, i n_nodes));
             Let ("h_nodes", npp, Malloc (np, i n_nodes));
           ];
           Wl_util.for_ "j" ~from:(i 0) ~below:(i n_nodes)
             [
               Store (np, Gep (np, v "e_nodes", [ at (v "j") ]),
                      Call ("mk_node", [ i 2 +: Wl_util.rand_mod 7 ]));
               Store (np, Gep (np, v "h_nodes", [ at (v "j") ]),
                      Call ("mk_node", [ i 2 +: Wl_util.rand_mod 7 ]));
             ];
           Wl_util.for_ "j2" ~from:(i 0) ~below:(i n_nodes)
             [
               Expr (Call ("connect",
                           [ Load (np, Gep (np, v "e_nodes", [ at (v "j2") ]));
                             v "h_nodes"; i n_nodes ]));
               Expr (Call ("connect",
                           [ Load (np, Gep (np, v "h_nodes", [ at (v "j2") ]));
                             v "e_nodes"; i n_nodes ]));
             ];
           Wl_util.for_ "it" ~from:(i 0) ~below:(i iters)
             [
               Expr (Call ("relax", [ v "e_nodes"; i n_nodes ]));
               Expr (Call ("relax", [ v "h_nodes"; i n_nodes ]));
             ];
           [
             Let ("p0", np, Load (np, Gep (np, v "e_nodes", [ at (i 0) ])));
             Return
               (Some
                  (Cast (Ctype.I64,
                         Binop (FMul,
                                Load (Ctype.F64, Gep (node_ty, v "p0", [ fld "value" ])),
                                Float 1000000.0))));
           ];
         ])
  in
  program ~tenv
    ~globals:[ Wl_util.seed_global ]
    [ Wl_util.rand_func; mk_node; connect; relax; main ]

let workload =
  Workload.make ~name:"em3d" ~suite:"olden"
    ~description:"bipartite-graph wave propagation, per-node malloc'd arrays"
    build
