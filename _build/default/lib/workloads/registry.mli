(** All 18 benchmark workloads (10 Olden + 4 PtrDist + 4 others),
    matching the paper's §5.2 benchmark set. *)

val all : Workload.t list
val find : string -> Workload.t option
val names : string list
