(* Olden treeadd: recursive binary-tree build and sum. Allocation-heavy
   with tiny fixed-size nodes — the showcase for the subheap allocator
   (paper: the subheap version runs *faster* than baseline). *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let node_ty = Ctype.Struct "tnode"

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "tnode";
      fields =
        [
          { fname = "val"; fty = Ctype.I64 };
          { fname = "left"; fty = Ctype.Ptr (Ctype.Struct "tnode") };
          { fname = "right"; fty = Ctype.Ptr (Ctype.Struct "tnode") };
        ];
    }

let np = Ctype.Ptr node_ty

let build () =
  let build_fn =
    func "build" [ ("depth", Ctype.I64) ] np
      [
        If (v "depth" <=: i 0, [ Return (Some (null node_ty)) ], []);
        Let ("p", np, Malloc (node_ty, i 1));
        Store (Ctype.I64, Gep (node_ty, v "p", [ fld "val" ]), i 1);
        Store (np, Gep (node_ty, v "p", [ fld "left" ]),
               Call ("build", [ v "depth" -: i 1 ]));
        Store (np, Gep (node_ty, v "p", [ fld "right" ]),
               Call ("build", [ v "depth" -: i 1 ]));
        Return (Some (v "p"));
      ]
  in
  let sum_fn =
    func "sum" [ ("p", np) ] Ctype.I64
      [
        If (Binop (Eq, v "p", null node_ty), [ Return (Some (i 0)) ], []);
        Return
          (Some
             (Load (Ctype.I64, Gep (node_ty, v "p", [ fld "val" ]))
             +: Call ("sum", [ Load (np, Gep (node_ty, v "p", [ fld "left" ])) ])
             +: Call ("sum", [ Load (np, Gep (node_ty, v "p", [ fld "right" ])) ])));
      ]
  in
  let main =
    func "main" [] Ctype.I64
      [
        Let ("t", np, Call ("build", [ i 15 ]));
        Let ("acc", Ctype.I64, i 0);
        Let ("iter", Ctype.I64, i 0);
        While
          ( v "iter" <: i 4,
            [
              Assign ("acc", v "acc" +: Call ("sum", [ v "t" ]));
              Assign ("iter", v "iter" +: i 1);
            ] );
        Return (Some (v "acc"));
      ]
  in
  program ~tenv ~globals:[] [ build_fn; sum_fn; main ]

let workload =
  Workload.make ~name:"treeadd" ~suite:"olden"
    ~description:"recursive binary-tree build and sum (2^15 nodes, 4 passes)"
    build
