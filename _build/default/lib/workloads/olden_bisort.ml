(* Olden bisort: bitonic sort over a perfect binary tree of random
   values — recursive tree walks with pairwise value swaps. *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let node_ty = Ctype.Struct "bnode"
let np = Ctype.Ptr node_ty

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "bnode";
      fields =
        [
          { fname = "val"; fty = Ctype.I64 };
          { fname = "left"; fty = Ctype.Ptr (Ctype.Struct "bnode") };
          { fname = "right"; fty = Ctype.Ptr (Ctype.Struct "bnode") };
        ];
    }

let fld_val p = Gep (node_ty, p, [ fld "val" ])
let fld_left p = Gep (node_ty, p, [ fld "left" ])
let fld_right p = Gep (node_ty, p, [ fld "right" ])

let build () =
  let build_fn =
    func "build" [ ("depth", Ctype.I64) ] np
      [
        If (v "depth" <=: i 0, [ Return (Some (null node_ty)) ], []);
        Let ("p", np, Malloc (node_ty, i 1));
        Store (Ctype.I64, fld_val (v "p"), Wl_util.rand);
        Store (np, fld_left (v "p"), Call ("build", [ v "depth" -: i 1 ]));
        Store (np, fld_right (v "p"), Call ("build", [ v "depth" -: i 1 ]));
        Return (Some (v "p"));
      ]
  in
  (* swap values across mirrored subtrees so the [dir] order holds *)
  let swaptree =
    func "swaptree" [ ("a", np); ("b", np); ("dir", Ctype.I64) ] Ctype.Void
      [
        If (Binop (Eq, v "a", null node_ty), [ Return None ], []);
        If (Binop (Eq, v "b", null node_ty), [ Return None ], []);
        Let ("av", Ctype.I64, Load (Ctype.I64, fld_val (v "a")));
        Let ("bv", Ctype.I64, Load (Ctype.I64, fld_val (v "b")));
        Let ("want_swap", Ctype.I64,
             Binop (BOr,
                    Binop (BAnd, v "dir" ==: i 0, v "av" >: v "bv"),
                    Binop (BAnd, v "dir" <>: i 0, v "av" <: v "bv")));
        If (v "want_swap" <>: i 0,
            [
              Store (Ctype.I64, fld_val (v "a"), v "bv");
              Store (Ctype.I64, fld_val (v "b"), v "av");
            ], []);
        Expr (Call ("swaptree",
                    [ Load (np, fld_left (v "a")); Load (np, fld_left (v "b")); v "dir" ]));
        Expr (Call ("swaptree",
                    [ Load (np, fld_right (v "a")); Load (np, fld_right (v "b")); v "dir" ]));
        Return None;
      ]
  in
  let bimerge =
    func "bimerge" [ ("p", np); ("dir", Ctype.I64) ] Ctype.Void
      [
        If (Binop (Eq, v "p", null node_ty), [ Return None ], []);
        Expr (Call ("swaptree",
                    [ Load (np, fld_left (v "p")); Load (np, fld_right (v "p")); v "dir" ]));
        Expr (Call ("bimerge", [ Load (np, fld_left (v "p")); v "dir" ]));
        Expr (Call ("bimerge", [ Load (np, fld_right (v "p")); v "dir" ]));
        Return None;
      ]
  in
  let bisort =
    func "bisort" [ ("p", np); ("dir", Ctype.I64) ] Ctype.Void
      [
        If (Binop (Eq, v "p", null node_ty), [ Return None ], []);
        Expr (Call ("bisort", [ Load (np, fld_left (v "p")); v "dir" ]));
        Expr (Call ("bisort", [ Load (np, fld_right (v "p")); i 1 -: v "dir" ]));
        Expr (Call ("bimerge", [ v "p"; v "dir" ]));
        Return None;
      ]
  in
  let checksum =
    func "checksum" [ ("p", np) ] Ctype.I64
      [
        If (Binop (Eq, v "p", null node_ty), [ Return (Some (i 0)) ], []);
        Return
          (Some
             (Binop (BXor,
                     Load (Ctype.I64, fld_val (v "p"))
                     +: Call ("checksum", [ Load (np, fld_left (v "p")) ]),
                     Call ("checksum", [ Load (np, fld_right (v "p")) ]))));
      ]
  in
  let main =
    func "main" [] Ctype.I64
      [
        Wl_util.srand 1234;
        Let ("t", np, Call ("build", [ i 11 ]));
        Expr (Call ("bisort", [ v "t"; i 0 ]));
        Expr (Call ("bisort", [ v "t"; i 1 ]));
        Return (Some (Call ("checksum", [ v "t" ]) %: i64 1000000007L));
      ]
  in
  program ~tenv
    ~globals:[ Wl_util.seed_global ]
    [ Wl_util.rand_func; build_fn; swaptree; bimerge; bisort; checksum; main ]

let workload =
  Workload.make ~name:"bisort" ~suite:"olden"
    ~description:"bitonic sort over a binary tree (2^11 depth, two passes)"
    build
