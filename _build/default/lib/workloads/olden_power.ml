(* Olden power: power-system pricing over a fixed three-level tree
   (root -> laterals -> branches -> leaves) with floating-point demand
   propagation. Few allocations, compute-bound: the paper reports ~0%
   overhead here. *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let leaf_ty = Ctype.Struct "pleaf"
let branch_ty = Ctype.Struct "pbranch"
let lateral_ty = Ctype.Struct "plateral"
let lp = Ctype.Ptr leaf_ty
let bp = Ctype.Ptr branch_ty
let ap = Ctype.Ptr lateral_ty

let n_lateral = 8
let n_branch = 6
let n_leaf = 8
let iters = 12

let tenv =
  let t = Ctype.empty_tenv in
  let t =
    Ctype.declare t
      {
        Ctype.sname = "pleaf";
        fields =
          [
            { fname = "pi"; fty = Ctype.F64 };
            { fname = "demand"; fty = Ctype.F64 };
          ];
      }
  in
  let t =
    Ctype.declare t
      {
        Ctype.sname = "pbranch";
        fields =
          [
            { fname = "alpha"; fty = Ctype.F64 };
            { fname = "total"; fty = Ctype.F64 };
            { fname = "leaves"; fty = Ctype.Array (Ctype.Ptr (Ctype.Struct "pleaf"), n_leaf) };
          ];
      }
  in
  Ctype.declare t
    {
      Ctype.sname = "plateral";
      fields =
        [
          { fname = "r"; fty = Ctype.F64 };
          { fname = "total"; fty = Ctype.F64 };
          { fname = "branches"; fty = Ctype.Array (Ctype.Ptr (Ctype.Struct "pbranch"), n_branch) };
        ];
    }

let build () =
  let mk_leaf =
    func "mk_leaf" [] lp
      [
        Let ("p", lp, Malloc (leaf_ty, i 1));
        Store (Ctype.F64, Gep (leaf_ty, v "p", [ fld "pi" ]), Float 1.0);
        Store (Ctype.F64, Gep (leaf_ty, v "p", [ fld "demand" ]), Float 1.0);
        Return (Some (v "p"));
      ]
  in
  let mk_branch =
    func "mk_branch" [] bp
      (Wl_util.block
         [
           [
             Let ("p", bp, Malloc (branch_ty, i 1));
             Store (Ctype.F64, Gep (branch_ty, v "p", [ fld "alpha" ]), Float 0.9);
             Store (Ctype.F64, Gep (branch_ty, v "p", [ fld "total" ]), Float 0.0);
           ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(i n_leaf)
             [
               Store (lp, Gep (branch_ty, v "p", [ fld "leaves"; at (v "k") ]),
                      Call ("mk_leaf", []));
             ];
           [ Return (Some (v "p")) ];
         ])
  in
  let mk_lateral =
    func "mk_lateral" [] ap
      (Wl_util.block
         [
           [
             Let ("p", ap, Malloc (lateral_ty, i 1));
             Store (Ctype.F64, Gep (lateral_ty, v "p", [ fld "r" ]), Float 1.1);
             Store (Ctype.F64, Gep (lateral_ty, v "p", [ fld "total" ]), Float 0.0);
           ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(i n_branch)
             [
               Store (bp, Gep (lateral_ty, v "p", [ fld "branches"; at (v "k") ]),
                      Call ("mk_branch", []));
             ];
           [ Return (Some (v "p")) ];
         ])
  in
  let compute_branch =
    func "compute_branch" [ ("b", bp); ("price", Ctype.F64) ] Ctype.F64
      (Wl_util.block
         [
           [ Let ("sum", Ctype.F64, Float 0.0) ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(i n_leaf)
             [
               Let ("lf", lp,
                    Load (lp, Gep (branch_ty, v "b", [ fld "leaves"; at (v "k") ])));
               Let ("pi0", Ctype.F64, Load (Ctype.F64, Gep (leaf_ty, v "lf", [ fld "pi" ])));
               Let ("d", Ctype.F64,
                    Binop (FDiv, v "pi0", Binop (FAdd, v "price", Float 0.5)));
               Store (Ctype.F64, Gep (leaf_ty, v "lf", [ fld "demand" ]), v "d");
               Assign ("sum", Binop (FAdd, v "sum", v "d"));
             ];
           [
             Store (Ctype.F64, Gep (branch_ty, v "b", [ fld "total" ]), v "sum");
             Return
               (Some
                  (Binop (FMul, v "sum",
                          Load (Ctype.F64, Gep (branch_ty, v "b", [ fld "alpha" ])))));
           ];
         ])
  in
  let compute_lateral =
    func "compute_lateral" [ ("a", ap); ("price", Ctype.F64) ] Ctype.F64
      (Wl_util.block
         [
           [ Let ("sum", Ctype.F64, Float 0.0) ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(i n_branch)
             [
               Assign ("sum",
                       Binop (FAdd, v "sum",
                              Call ("compute_branch",
                                    [
                                      Load (bp, Gep (lateral_ty, v "a",
                                                     [ fld "branches"; at (v "k") ]));
                                      v "price";
                                    ])));
             ];
           [
             Store (Ctype.F64, Gep (lateral_ty, v "a", [ fld "total" ]), v "sum");
             Return
               (Some
                  (Binop (FMul, v "sum",
                          Load (Ctype.F64, Gep (lateral_ty, v "a", [ fld "r" ])))));
           ];
         ])
  in
  let main =
    func "main" [] Ctype.I64
      (Wl_util.block
         [
           [ Let ("roots", Ctype.Ptr ap, Malloc (ap, i n_lateral)) ];
           Wl_util.for_ "k" ~from:(i 0) ~below:(i n_lateral)
             [
               Store (ap, Gep (ap, v "roots", [ at (v "k") ]), Call ("mk_lateral", []));
             ];
           [ Let ("price", Ctype.F64, Float 1.0); Let ("total", Ctype.F64, Float 0.0) ];
           Wl_util.for_ "it" ~from:(i 0) ~below:(i iters)
             (Wl_util.block
                [
                  [ Let ("t", Ctype.F64, Float 0.0) ];
                  Wl_util.for_ "k" ~from:(i 0) ~below:(i n_lateral)
                    [
                      Assign ("t",
                              Binop (FAdd, v "t",
                                     Call ("compute_lateral",
                                           [
                                             Load (ap, Gep (ap, v "roots", [ at (v "k") ]));
                                             v "price";
                                           ])));
                    ];
                  [
                    Assign ("price",
                            Binop (FAdd, v "price", Binop (FMul, v "t", Float 0.0001)));
                    Assign ("total", v "t");
                  ];
                ]);
           [ Return (Some (Cast (Ctype.I64, Binop (FMul, v "total", Float 1000.0)))) ];
         ])
  in
  program ~tenv ~globals:[]
    [ mk_leaf; mk_branch; mk_lateral; compute_branch; compute_lateral; main ]

let workload =
  Workload.make ~name:"power" ~suite:"olden"
    ~description:"power-system pricing tree, float compute-bound" build
