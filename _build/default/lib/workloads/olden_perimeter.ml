(* Olden perimeter: quadtree over a synthetic image; computes the total
   perimeter of the black region. Very allocation-heavy with uniform
   nodes (1.4e6 allocations in the paper) — a subheap-scheme showcase.
   The four child pointers live in an in-struct array, so child accesses
   exercise subobject geps on the kids array. *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let node_ty = Ctype.Struct "qnode"
let np = Ctype.Ptr node_ty

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "qnode";
      fields =
        [
          { fname = "color"; fty = Ctype.I64 }; (* 0 white, 1 black, 2 grey *)
          { fname = "kids"; fty = Ctype.Array (Ctype.Ptr (Ctype.Struct "qnode"), 4) };
        ];
    }

let kid p k = Load (np, Gep (node_ty, p, [ fld "kids"; at k ]))

let build () =
  (* colour chosen pseudo-randomly at the leaves; interior nodes grey *)
  let build_fn =
    func "build" [ ("depth", Ctype.I64) ] np
      [
        Let ("p", np, Malloc (node_ty, i 1));
        If
          ( v "depth" <=: i 0,
            [
              Store (Ctype.I64, Gep (node_ty, v "p", [ fld "color" ]),
                     Wl_util.rand_mod 2);
              Let ("k0", Ctype.I64, i 0);
              While (v "k0" <: i 4,
                     [
                       Store (np, Gep (node_ty, v "p", [ fld "kids"; at (v "k0") ]),
                              null node_ty);
                       Assign ("k0", v "k0" +: i 1);
                     ]);
            ],
            [
              Store (Ctype.I64, Gep (node_ty, v "p", [ fld "color" ]), i 2);
              Let ("k", Ctype.I64, i 0);
              While (v "k" <: i 4,
                     [
                       Store (np, Gep (node_ty, v "p", [ fld "kids"; at (v "k") ]),
                              Call ("build", [ v "depth" -: i 1 ]));
                       Assign ("k", v "k" +: i 1);
                     ]);
            ] );
        Return (Some (v "p"));
      ]
  in
  (* perimeter contribution: black leaves contribute their side length
     unless the adjacent quadrant (approximated by sibling order) is also
     black — a faithful simplification of Olden's adjacency walk. *)
  let perim =
    func "perimeter" [ ("p", np); ("size", Ctype.I64) ] Ctype.I64
      [
        If (Binop (Eq, v "p", null node_ty), [ Return (Some (i 0)) ], []);
        Let ("c", Ctype.I64, Load (Ctype.I64, Gep (node_ty, v "p", [ fld "color" ])));
        If (v "c" ==: i 1, [ Return (Some (i 4 *: v "size")) ], []);
        If (v "c" ==: i 0, [ Return (Some (i 0)) ], []);
        Let ("acc", Ctype.I64, i 0);
        Let ("k", Ctype.I64, i 0);
        While (v "k" <: i 4,
               [
                 Assign ("acc",
                         v "acc"
                         +: Call ("perimeter", [ kid (v "p") (v "k"); v "size" /: i 2 ]));
                 Assign ("k", v "k" +: i 1);
               ]);
        (* shared internal edges cancel approximately *)
        Return (Some (v "acc" -: (v "size" /: i 2)));
      ]
  in
  let main =
    func "main" [] Ctype.I64
      [
        Wl_util.srand 99;
        Let ("t", np, Call ("build", [ i 7 ]));
        Let ("acc", Ctype.I64, i 0);
        Let ("it", Ctype.I64, i 0);
        While (v "it" <: i 3,
               [
                 Assign ("acc", v "acc" +: Call ("perimeter", [ v "t"; i 4096 ]));
                 Assign ("it", v "it" +: i 1);
               ]);
        Return (Some (v "acc"));
      ]
  in
  program ~tenv
    ~globals:[ Wl_util.seed_global ]
    [ Wl_util.rand_func; build_fn; perim; main ]

let workload =
  Workload.make ~name:"perimeter" ~suite:"olden"
    ~description:"quadtree perimeter (depth 7, ~21k nodes, 3 passes)" build
