(* PtrDist yacr2: VLSI channel routing. Nets with (start, end) column
   spans are assigned to tracks subject to horizontal-overlap
   constraints — dense array scans over heap arrays, matching yacr2's
   array-heavy profile. Input data is generated in-program (the paper
   also embedded yacr2's input to avoid file parsing). *)

open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let net_ty = Ctype.Struct "net"
let np = Ctype.Ptr net_ty
let ip = Ctype.Ptr Ctype.I64

let n_nets = 96
let n_cols = 128

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "net";
      fields =
        [
          { fname = "lo"; fty = Ctype.I64 };
          { fname = "hi"; fty = Ctype.I64 };
          { fname = "track"; fty = Ctype.I64 };
        ];
    }

let nfield base j f = Gep (net_ty, base, [ at j; fld f ])

let build () =
  let main =
    func "main" [] Ctype.I64
      (Wl_util.block
         [
           [
             Wl_util.srand 60;
             Let ("nets", np, Malloc (net_ty, i n_nets));
             Let ("density", ip, Malloc (Ctype.I64, i n_cols));
             (* channel data lives in globals, as in the original *)
             Store_global ("gnets", v "nets");
             Store_global ("gdensity", v "density");
           ];
           Wl_util.for_ "c" ~from:(i 0) ~below:(i n_cols)
             [ Store (Ctype.I64, Gep (Ctype.I64, v "density", [ at (v "c") ]), i 0) ];
           (* generate nets and column density *)
           Wl_util.for_ "j" ~from:(i 0) ~below:(i n_nets)
             (Wl_util.block
                [
                  [
                    Let ("a", Ctype.I64, Wl_util.rand_mod n_cols);
                    Let ("b", Ctype.I64, Wl_util.rand_mod n_cols);
                    Let ("lo", Ctype.I64, v "a");
                    Let ("hi", Ctype.I64, v "b");
                    If (v "b" <: v "a",
                        [ Assign ("lo", v "b"); Assign ("hi", v "a") ], []);
                    Store (Ctype.I64, nfield (v "nets") (v "j") "lo", v "lo");
                    Store (Ctype.I64, nfield (v "nets") (v "j") "hi", v "hi");
                    Store (Ctype.I64, nfield (v "nets") (v "j") "track", Unop (Neg, i 1));
                  ];
                  Wl_util.for_ "c2" ~from:(v "lo") ~below:(v "hi" +: i 1)
                    [
                      Store (Ctype.I64, Gep (Ctype.I64, v "density", [ at (v "c2") ]),
                             Load (Ctype.I64, Gep (Ctype.I64, v "density", [ at (v "c2") ]))
                             +: i 1);
                    ];
                ]);
           (* greedy left-edge track assignment *)
           [
             Let ("tracks_used", Ctype.I64, i 0);
             Let ("assigned", Ctype.I64, i 0);
             Let ("track_end", ip, Malloc (Ctype.I64, i n_nets));
             While
               ( v "assigned" <: i n_nets,
                 Wl_util.block
                   [
                     [
                       Store (Ctype.I64,
                              Gep (Ctype.I64, v "track_end", [ at (v "tracks_used") ]),
                              Unop (Neg, i 1));
                     ];
                     (* place every unassigned net that fits on this track,
                        scanning in lo order *)
                     Wl_util.for_ "scan" ~from:(i 0) ~below:(i n_cols)
                       (Wl_util.block
                          [
                            Wl_util.for_ "j3" ~from:(i 0) ~below:(i n_nets)
                              [
                                Let ("nets3", np, Load_global "gnets");
                                If
                                  ( Binop (BAnd,
                                           Load (Ctype.I64,
                                                 nfield (v "nets3") (v "j3") "track")
                                           <: i 0,
                                           Binop (BAnd,
                                                  Load (Ctype.I64,
                                                        nfield (v "nets3") (v "j3") "lo")
                                                  ==: v "scan",
                                                  Load (Ctype.I64,
                                                        nfield (v "nets3") (v "j3") "lo")
                                                  >: Load (Ctype.I64,
                                                           Gep (Ctype.I64, v "track_end",
                                                                [ at (v "tracks_used") ])))),
                                    [
                                      Store (Ctype.I64,
                                             nfield (v "nets3") (v "j3") "track",
                                             v "tracks_used");
                                      Store (Ctype.I64,
                                             Gep (Ctype.I64, v "track_end",
                                                  [ at (v "tracks_used") ]),
                                             Load (Ctype.I64,
                                                   nfield (v "nets3") (v "j3") "hi"));
                                      Assign ("assigned", v "assigned" +: i 1);
                                    ],
                                    [] );
                              ];
                          ]);
                     [ Assign ("tracks_used", v "tracks_used" +: i 1) ];
                   ] );
           ];
           (* checksum: tracks used + max density + sum of assignments *)
           [
             Let ("maxd", Ctype.I64, i 0);
             Let ("c3", Ctype.I64, i 0);
             While
               ( v "c3" <: i n_cols,
                 [
                   Let ("d", Ctype.I64,
                        Load (Ctype.I64, Gep (Ctype.I64, v "density", [ at (v "c3") ])));
                   If (v "d" >: v "maxd", [ Assign ("maxd", v "d") ], []);
                   Assign ("c3", v "c3" +: i 1);
                 ] );
             Let ("sum", Ctype.I64, i 0);
             Let ("j4", Ctype.I64, i 0);
             While
               ( v "j4" <: i n_nets,
                 [
                   Assign ("sum",
                           v "sum" +: Load (Ctype.I64, nfield (v "nets") (v "j4") "track"));
                   Assign ("j4", v "j4" +: i 1);
                 ] );
             Return (Some ((v "tracks_used" *: i 1000000) +: (v "maxd" *: i 10000) +: v "sum"));
           ];
         ])
  in
  program ~tenv
    ~globals:
      [ Wl_util.seed_global; global "gnets" np; global "gdensity" ip ]
    [ Wl_util.rand_func; main ]

let workload =
  Workload.make ~name:"yacr2" ~suite:"ptrdist"
    ~description:"greedy channel routing over heap arrays" build
