(** Small numeric helpers for the evaluation harness. *)

val geomean : float list -> float
(** Geometric mean of positive values. Empty list yields [1.0]. *)

val geomean_overhead : float list -> float
(** Geometric mean of overhead ratios expressed as e.g. [1.12] for +12%;
    values must be positive. Returns the mean ratio. *)

val mean : float list -> float
val percent : float -> string
(** [percent 1.12] is ["+12%"]; [percent 0.94] is ["-6%"]. *)

val ratio : float -> float -> float
(** [ratio x base] with a guard against a zero base. *)
