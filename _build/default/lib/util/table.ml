type align = Left | Right

let default_aligns n = Left :: List.init (max 0 (n - 1)) (fun _ -> Right)

let render ?aligns ~header rows =
  let ncols = List.length header in
  let aligns =
    match aligns with Some a -> a | None -> default_aligns ncols
  in
  let widths = Array.make ncols 0 in
  let note_row r =
    List.iteri
      (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      r
  in
  note_row header;
  List.iter note_row rows;
  let pad a w s =
    let n = w - String.length s in
    if n <= 0 then s
    else
      match a with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let fmt_row r =
    let cells =
      List.mapi
        (fun i cell ->
          let a = try List.nth aligns i with _ -> Right in
          pad a widths.(i) cell)
        r
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "|"
    ^ String.concat "|"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (fmt_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (fmt_row r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?aligns ~header rows = print_string (render ?aligns ~header rows)
