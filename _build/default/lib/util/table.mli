(** Plain-text table rendering for experiment reports. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] renders an ASCII table. [aligns] defaults to
    left for the first column and right for the rest. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit
