lib/util/bits.mli:
