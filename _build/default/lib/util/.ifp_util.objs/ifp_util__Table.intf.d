lib/util/table.mli:
