lib/util/prng.mli:
