lib/util/stats.mli:
