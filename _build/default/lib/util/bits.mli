(** Bit-field manipulation helpers over [int64] machine words.

    All field positions are given as [(lo, width)] pairs where [lo] is the
    index of the least-significant bit of the field (bit 0 = LSB) and
    [width] is the field width in bits, [1 <= width <= 63]. *)

val mask : int -> int64
(** [mask w] is an [int64] with the low [w] bits set. [0 <= w <= 63]. *)

val extract : int64 -> lo:int -> width:int -> int64
(** [extract x ~lo ~width] reads the field as an unsigned value. *)

val insert : int64 -> lo:int -> width:int -> int64 -> int64
(** [insert x ~lo ~width v] replaces the field with the low [width] bits
    of [v]. *)

val extract_int : int64 -> lo:int -> width:int -> int
(** Like {!extract} but returns an OCaml [int]; [width <= 62]. *)

val insert_int : int64 -> lo:int -> width:int -> int -> int64

val is_pow2 : int -> bool
(** [is_pow2 n] holds when [n] is a positive power of two. *)

val log2_exact : int -> int
(** [log2_exact n] for a positive power of two [n].
    @raise Invalid_argument otherwise. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is the smallest [k] with [2^k >= n]; [n >= 1]. *)

val align_up : int -> int -> int
(** [align_up x a] rounds [x] up to the next multiple of [a] ([a] power
    of two). *)

val align_down : int -> int -> int

val align_up64 : int64 -> int -> int64
val align_down64 : int64 -> int -> int64

val u48 : int64 -> int64
(** Truncate to the low 48 bits (canonical address part of a pointer). *)
