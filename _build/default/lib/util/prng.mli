(** Deterministic pseudo-random number generation (splitmix64).

    All randomness in the repository flows through this module so that
    workloads, the Juliet generator and the MAC key derivation are fully
    reproducible from a seed. *)

type t

val create : int64 -> t
(** [create seed] makes an independent generator. *)

val copy : t -> t

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]; [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val mix2 : int64 -> int64 -> int64
(** [mix2 a b] is a stateless strong mix of two words (used as a PRF for
    MAC computation). *)
