open Alloc_intf
module Tag = Ifp_isa.Tag

let small_cutoff = 256

let create ~subheap ~wrapped =
  let malloc ~size ~cty =
    if size <= small_cutoff && cty <> None then subheap.malloc ~size ~cty
    else wrapped.malloc ~size ~cty
  in
  let free ptr =
    (* the scheme selector on the tag names the owning allocator *)
    match Tag.scheme ptr with
    | Tag.Subheap -> subheap.free ptr
    | Tag.Local_offset | Tag.Legacy -> wrapped.free ptr
    | Tag.Global_table ->
      (* both allocators can produce global-table pointers; the subheap
         allocator recognises its own (huge buddy blocks) and returns a
         zero cost for foreign ones *)
      let c = subheap.free ptr in
      if c == zero_cost then wrapped.free ptr else c
  in
  let stats () =
    let a = subheap.stats () and b = wrapped.stats () in
    {
      live_bytes = a.live_bytes + b.live_bytes;
      peak_live_bytes = a.peak_live_bytes + b.peak_live_bytes;
      footprint_bytes = a.footprint_bytes + b.footprint_bytes;
      n_allocs = a.n_allocs + b.n_allocs;
      n_frees = a.n_frees + b.n_frees;
    }
  in
  {
    name = "mixed";
    malloc;
    free;
    stats;
    extra_stats =
      (fun () ->
        List.map (fun (k, n) -> ("subheap." ^ k, n)) (subheap.extra_stats ())
        @ List.map (fun (k, n) -> ("wrapped." ^ k, n)) (wrapped.extra_stats ()));
  }
