(** Baseline dynamic memory allocator modelling glibc's malloc: 16-byte
    chunk headers, 16-byte-aligned payloads, segregated exact-size free
    bins (no coalescing — our workloads recycle fixed-size nodes, which
    this models well; see DESIGN.md). Returns untagged (legacy)
    pointers; the uninstrumented baseline runs use it directly and the
    wrapped allocator builds on it.

    Instruction-cost calibration: bin-hit malloc 80, wilderness-carve
    malloc 150, free 60 — rough glibc _int_malloc/_int_free path
    lengths. *)

val create : memory:Ifp_machine.Memory.t -> base:int64 -> size:int -> Alloc_intf.t

val create_raw :
  memory:Ifp_machine.Memory.t ->
  base:int64 ->
  size:int ->
  Alloc_intf.t * (align:int -> int -> int64 option)
(** Also exposes an aligned raw-carve entry point used by the wrapped
    allocator for over-aligned needs. *)
