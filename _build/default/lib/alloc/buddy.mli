(** Binary buddy allocator over a power-of-two arena.

    Used by the subheap allocator to carve the power-of-two-sized,
    naturally aligned memory blocks that the subheap metadata scheme
    requires (paper §3.3.2). *)

type t

val create : base:int64 -> size_log2:int -> min_log2:int -> t
(** [base] must be aligned to [2^size_log2]. *)

val alloc : t -> int -> int64 option
(** [alloc t log2] returns a [2^log2]-aligned block of that size, or
    [None] when the arena is exhausted. [log2] is clamped to
    [min_log2]. *)

val free : t -> int64 -> int -> unit
(** [free t addr log2] returns a block; buddies are coalesced. *)

val high_water : t -> int64
(** Highest address ever handed out (footprint accounting). *)

val bytes_in_use : t -> int
