(** Mixed allocator: subheap and wrapped allocators used simultaneously,
    with a per-allocation policy — the runtime-selection extension the
    paper leaves as future work (§4.2.1: "it is possible to use both
    allocators simultaneously and the runtime library can dynamically
    select allocators and metadata schemes").

    Policy: small fixed-size typed allocations (<= [small_cutoff] bytes)
    go to the subheap allocator, where same-type pooling pays off;
    everything else (large buffers, type-erased allocations) goes to the
    wrapped allocator, avoiding the subheap's power-of-two block
    fragmentation on odd-sized arrays (its em3d weakness, Fig. 12).
    Frees dispatch on the pointer's scheme-selector tag bits — no extra
    bookkeeping needed, which is exactly why the tagged-pointer design
    makes the mixed mode cheap. *)

val small_cutoff : int
(** 256 bytes. *)

val create :
  subheap:Alloc_intf.t -> wrapped:Alloc_intf.t -> Alloc_intf.t
