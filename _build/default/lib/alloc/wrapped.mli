(** The wrapped allocator (paper §4.2.1): a transparent wrapper over the
    baseline [malloc]/[free] that over-allocates so the local-offset
    metadata fits after the object, and falls back to the global-table
    scheme for objects above the 1008-byte local-offset limit. This
    models retrofitting In-Fat Pointer onto an existing allocator that
    cannot support the subheap scheme. *)

val create :
  meta:Ifp_metadata.Meta.t ->
  tenv:Ifp_types.Ctype.tenv ->
  base_alloc:Alloc_intf.t ->
  Alloc_intf.t

val unprotected_allocs : Alloc_intf.t -> int
(** Allocations that could not be registered (global table full) and were
    returned as legacy pointers. Only meaningful on allocators returned
    by [create]; 0 otherwise. *)
