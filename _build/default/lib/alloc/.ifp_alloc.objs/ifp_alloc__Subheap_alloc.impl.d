lib/alloc/subheap_alloc.ml: Alloc_intf Buddy Hashtbl Ifp_isa Ifp_machine Ifp_metadata Ifp_types Ifp_util Int64 List
