lib/alloc/alloc_intf.mli: Ifp_isa Ifp_types
