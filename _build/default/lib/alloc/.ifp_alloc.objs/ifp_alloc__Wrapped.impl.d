lib/alloc/wrapped.ml: Alloc_intf Ifp_isa Ifp_metadata List
