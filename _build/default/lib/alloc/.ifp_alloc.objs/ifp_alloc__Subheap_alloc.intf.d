lib/alloc/subheap_alloc.mli: Alloc_intf Ifp_machine Ifp_metadata Ifp_types
