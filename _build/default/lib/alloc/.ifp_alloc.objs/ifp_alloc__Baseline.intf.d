lib/alloc/baseline.mli: Alloc_intf Ifp_machine
