lib/alloc/buddy.mli:
