lib/alloc/buddy.ml: Hashtbl Ifp_util Int64 List
