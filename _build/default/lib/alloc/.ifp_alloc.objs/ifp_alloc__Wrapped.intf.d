lib/alloc/wrapped.mli: Alloc_intf Ifp_metadata Ifp_types
