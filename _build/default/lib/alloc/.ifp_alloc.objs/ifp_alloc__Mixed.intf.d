lib/alloc/mixed.mli: Alloc_intf
