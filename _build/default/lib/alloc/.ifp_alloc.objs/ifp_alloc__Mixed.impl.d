lib/alloc/mixed.ml: Alloc_intf Ifp_isa List
