lib/alloc/baseline.ml: Alloc_intf Hashtbl Ifp_machine Ifp_util Int64
