lib/alloc/alloc_intf.ml: Ifp_isa Ifp_types Int64
