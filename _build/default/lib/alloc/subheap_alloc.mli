(** The subheap allocator (paper §4.2.1): a pool allocator on top of a
    buddy allocator, implementing the subheap metadata scheme.

    Objects of the same (size, type) are packed into power-of-two-sized,
    naturally aligned blocks; each block holds the 32-byte shared
    metadata at offset 0 followed by an array of fixed-size slots. The
    block size for a pool is the smallest power of two (at least 4 KiB)
    that fits eight slots; each distinct block size claims one of the 16
    subheap control registers. Allocations too large for the largest
    block fall back to the global-table scheme over raw buddy blocks.

    This models "state-of-the-art scalable memory allocators modified to
    support the subheap scheme" — same-size objects are packed tightly
    with no per-object header, which is why allocation-heavy workloads
    can run faster and smaller than glibc (paper §5.2.2–5.2.3). *)

val create :
  meta:Ifp_metadata.Meta.t ->
  tenv:Ifp_types.Ctype.tenv ->
  memory:Ifp_machine.Memory.t ->
  base:int64 ->
  size_log2:int ->
  Alloc_intf.t
(** [base] must be [2^size_log2]-aligned and the region gets mapped. *)
