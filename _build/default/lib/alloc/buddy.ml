type t = {
  base : int64;
  size_log2 : int;
  min_log2 : int;
  free_lists : (int, int64 list ref) Hashtbl.t;
  mutable high : int64; (* highest address handed out, relative end *)
  mutable in_use : int;
}

let create ~base ~size_log2 ~min_log2 =
  if min_log2 > size_log2 then invalid_arg "Buddy.create";
  if
    not
      (Int64.equal (Ifp_util.Bits.align_down64 base (1 lsl size_log2)) base)
  then invalid_arg "Buddy.create: misaligned base";
  let free_lists = Hashtbl.create 16 in
  Hashtbl.replace free_lists size_log2 (ref [ base ]);
  { base; size_log2; min_log2; free_lists; high = base; in_use = 0 }

let list_for t l =
  match Hashtbl.find_opt t.free_lists l with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace t.free_lists l r;
    r

let rec take t l =
  if l > t.size_log2 then None
  else
    let lst = list_for t l in
    match !lst with
    | b :: rest ->
      lst := rest;
      Some b
    | [] -> (
      (* split a bigger block *)
      match take t (l + 1) with
      | None -> None
      | Some b ->
        let half = Int64.add b (Int64.of_int (1 lsl l)) in
        let lst = list_for t l in
        lst := half :: !lst;
        Some b)

let alloc t log2 =
  let l = max log2 t.min_log2 in
  match take t l with
  | None -> None
  | Some b ->
    let top = Int64.add b (Int64.of_int (1 lsl l)) in
    if Int64.compare top t.high > 0 then t.high <- top;
    t.in_use <- t.in_use + (1 lsl l);
    Some b

let buddy_of t addr l =
  Int64.add t.base
    (Int64.logxor (Int64.sub addr t.base) (Int64.of_int (1 lsl l)))

let rec insert t addr l =
  if l >= t.size_log2 then begin
    let lst = list_for t l in
    lst := addr :: !lst
  end
  else
    let buddy = buddy_of t addr l in
    let lst = list_for t l in
    if List.exists (Int64.equal buddy) !lst then begin
      lst := List.filter (fun b -> not (Int64.equal b buddy)) !lst;
      let merged = if Int64.compare addr buddy < 0 then addr else buddy in
      insert t merged (l + 1)
    end
    else lst := addr :: !lst

let free t addr log2 =
  let l = max log2 t.min_log2 in
  t.in_use <- t.in_use - (1 lsl l);
  insert t addr l

let high_water t = t.high
let bytes_in_use t = t.in_use
