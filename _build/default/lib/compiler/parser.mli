(** Textual frontend for MiniC: a C-like surface syntax parsed (with
    local type inference) into {!Ir} programs. This is the convenient way
    to write workloads and tests; the generated IR is exactly what the
    combinator DSL produces, so everything downstream (typechecker,
    instrumentation, VM) is shared.

    Syntax sketch:

    {v
    struct node { i64 value; node* next; i64 pad[2]; };
    global i64 counter;
    global node* head;

    i64 sum(node* p) {
      let acc: i64 = 0;
      while (p != null(node)) {
        acc = acc + p->value;
        p = p->next;
      }
      return acc;
    }

    legacy i64* lib_pass(i64* p) { return p; }   // uninstrumented

    i64 main() {
      var buf: i64[8];                            // stack local
      buf[3] = 7;
      let n: node* = malloc(node);                // malloc(node, k) for arrays
      n->value = buf[3];
      head = n;
      return sum(head) + counter;
    }
    v}

    Notes: struct types are referenced by bare name; [var] declares a
    stack local (address-taken / aggregate), [let] a register local;
    assignments infer the store type from the lvalue; [+ - * /] map to
    float operations when an operand is [f64]; [cast(T, e)] converts;
    [malloc_bytes(e)] is the type-erased allocation. Line comments [//]
    and block comments are supported. *)

exception Parse_error of string * int  (** message, line *)

val parse : string -> Ir.program
(** @raise Parse_error on syntax or local-typing errors. The result is
    not yet checked by {!Typecheck} — callers (e.g. {!Ifp_vm.Vm.run}) do
    that. *)
