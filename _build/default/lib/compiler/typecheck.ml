module Ctype = Ifp_types.Ctype
module Layout = Ifp_types.Layout

exception Type_error of string

let err fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let builtin_sig = function
  | "__print_i64" -> Some ([ Ctype.I64 ], Ctype.Void)
  | "__print_f64" -> Some ([ Ctype.F64 ], Ctype.Void)
  | "__abort" -> Some ([], Ctype.Void)
  | _ -> None

let is_int = function
  | Ctype.I8 | Ctype.I16 | Ctype.I32 | Ctype.I64 -> true
  | Ctype.(Void | F64 | Ptr _ | Struct _ | Array _) -> false

(* pointee types match structurally, with [void] as a wildcard at any
   level — integer-width laxity does NOT apply under a pointer *)
let rec pointee_compat a b =
  match (a, b) with
  | Ctype.Void, _ | _, Ctype.Void -> true
  | Ctype.Ptr x, Ctype.Ptr y -> pointee_compat x y
  | x, y -> Ctype.equal x y

let compat a b =
  match (a, b) with
  | x, y when is_int x && is_int y -> true
  | Ctype.F64, Ctype.F64 -> true
  | Ctype.Ptr x, Ctype.Ptr y -> pointee_compat x y
  | x, y -> Ctype.equal x y

let type_of_gep tenv pointee steps =
  let rec go ty steps ~leading =
    match steps with
    | [] -> ty
    | Ir.S_field f :: rest -> (
      match ty with
      | Ctype.Struct s -> (
        match Ctype.field_offset tenv s f with
        | _, fty -> go fty rest ~leading:false
        | exception Not_found -> err "Gep: struct %s has no field %s" s f)
      | _ -> err "Gep: field %s selected on non-struct %s" f (Ctype.to_string tenv ty))
    | Ir.S_index _ :: rest -> (
      match ty with
      | Ctype.Array (elt, _) -> go elt rest ~leading:false
      | _ when leading -> go ty rest ~leading:false (* pointer arithmetic *)
      | _ -> err "Gep: index into non-array %s" (Ctype.to_string tenv ty))
  in
  go pointee steps ~leading:true

let layout_path tenv pointee steps =
  let rec go ty steps ~leading acc =
    match steps with
    | [] -> List.rev acc
    | Ir.S_field f :: rest -> (
      match ty with
      | Ctype.Struct s ->
        let _, fty = Ctype.field_offset tenv s f in
        go fty rest ~leading:false (Layout.Field f :: acc)
      | _ -> err "layout_path: non-struct")
    | Ir.S_index _ :: rest -> (
      match ty with
      | Ctype.Array (elt, _) -> go elt rest ~leading:false (Layout.Index :: acc)
      | _ when leading -> go ty rest ~leading:false acc
      | _ -> err "layout_path: non-array")
  in
  go pointee steps ~leading:true []

type ctx = {
  tenv : Ctype.tenv;
  prog : Ir.program;
  vars : (string, [ `Reg of Ctype.t | `Stack of Ctype.t ]) Hashtbl.t;
  fn : Ir.func;
}

let var_type ctx name =
  match Hashtbl.find_opt ctx.vars name with
  | Some (`Reg ty | `Stack ty) -> ty
  | None -> err "%s: unknown variable %s" ctx.fn.fname name

let rec type_of ctx (e : Ir.expr) : Ctype.t =
  match e with
  | Int _ -> Ctype.I64
  | Float _ -> Ctype.F64
  | Var name -> var_type ctx name
  | Binop (op, a, b) -> type_of_binop ctx op a b
  | Unop (op, a) -> type_of_unop ctx op a
  | Load (ty, addr) ->
    if not (Ctype.is_scalar ty) then
      err "%s: load of non-scalar %s" ctx.fn.fname (Ctype.to_string ctx.tenv ty);
    let aty = type_of ctx addr in
    if not (compat aty (Ctype.Ptr ty)) then
      err "%s: load address has type %s, expected %s*" ctx.fn.fname
        (Ctype.to_string ctx.tenv aty)
        (Ctype.to_string ctx.tenv ty);
    ty
  | Addr_local name -> (
    match Hashtbl.find_opt ctx.vars name with
    | Some (`Stack ty) -> Ctype.Ptr ty
    | Some (`Reg _) ->
      err "%s: address taken of register local %s (use Decl_local)"
        ctx.fn.fname name
    | None -> err "%s: unknown local %s" ctx.fn.fname name)
  | Addr_global g -> (
    match Ir.find_global ctx.prog g with
    | Some { gty; _ } -> Ctype.Ptr gty
    | None -> err "%s: unknown global %s" ctx.fn.fname g)
  | Load_global g -> (
    match Ir.find_global ctx.prog g with
    | Some { gty; _ } when Ctype.is_scalar gty -> gty
    | Some _ -> err "%s: by-name access to aggregate global %s" ctx.fn.fname g
    | None -> err "%s: unknown global %s" ctx.fn.fname g)
  | Gep (pointee, base, steps) ->
    let bty = type_of ctx base in
    if not (compat bty (Ctype.Ptr pointee)) then
      err "%s: Gep base has type %s, expected %s*" ctx.fn.fname
        (Ctype.to_string ctx.tenv bty)
        (Ctype.to_string ctx.tenv pointee);
    List.iter
      (function
        | Ir.S_index ie ->
          let ity = type_of ctx ie in
          if not (is_int ity) then err "%s: Gep index not an integer" ctx.fn.fname
        | Ir.S_field _ -> ())
      steps;
    Ctype.Ptr (type_of_gep ctx.tenv pointee steps)
  | Call (fn, args) -> (
    match Ir.find_func ctx.prog fn with
    | None -> (
      match builtin_sig fn with
      | Some (ptys, ret) ->
        if List.length args <> List.length ptys then
          err "%s: builtin %s arity" ctx.fn.fname fn;
        List.iter2
          (fun arg pty ->
            if not (compat (type_of ctx arg) pty) then
              err "%s: builtin %s argument type" ctx.fn.fname fn)
          args ptys;
        ret
      | None -> err "%s: call to unknown function %s" ctx.fn.fname fn)
    | Some f ->
      if List.length args <> List.length f.params then
        err "%s: call to %s with %d args, expected %d" ctx.fn.fname fn
          (List.length args) (List.length f.params);
      List.iter2
        (fun arg (pname, pty) ->
          let aty = type_of ctx arg in
          if not (compat aty pty) then
            err "%s: call %s argument %s: got %s, expected %s" ctx.fn.fname fn
              pname
              (Ctype.to_string ctx.tenv aty)
              (Ctype.to_string ctx.tenv pty))
        args f.params;
      f.ret)
  | Malloc (ty, n) ->
    if not (is_int (type_of ctx n)) then
      err "%s: malloc count not an integer" ctx.fn.fname;
    Ctype.Ptr ty
  | Malloc_bytes n ->
    if not (is_int (type_of ctx n)) then
      err "%s: malloc_bytes size not an integer" ctx.fn.fname;
    Ctype.Ptr Ctype.I8
  | Malloc_sized (ty, n) ->
    if not (is_int (type_of ctx n)) then
      err "%s: malloc_sized size not an integer" ctx.fn.fname;
    Ctype.Ptr ty
  | Cast (ty, e) ->
    let ety = type_of ctx e in
    (match (ty, ety) with
    | (Ctype.Ptr _ | Ctype.I64), _ | _, (Ctype.Ptr _ | Ctype.I64) -> ()
    | a, b when is_int a && is_int b -> ()
    | Ctype.F64, b when is_int b -> ()
    | a, Ctype.F64 when is_int a -> ()
    | _ ->
      err "%s: invalid cast from %s to %s" ctx.fn.fname
        (Ctype.to_string ctx.tenv ety)
        (Ctype.to_string ctx.tenv ty));
    ty
  | Ifp_promote e -> type_of ctx e

and type_of_binop ctx op a b =
  let ta = type_of ctx a and tb = type_of ctx b in
  match op with
  | LAnd | LOr ->
    let truthy = function
      | Ctype.(I8 | I16 | I32 | I64 | Ptr _) -> true
      | Ctype.(Void | F64 | Struct _ | Array _) -> false
    in
    if truthy ta && truthy tb then Ctype.I64
    else err "%s: logical op on %s/%s" ctx.fn.fname
        (Ctype.to_string ctx.tenv ta) (Ctype.to_string ctx.tenv tb)
  | Add | Sub | Mul | Div | Rem | BAnd | BOr | BXor | Shl | Shr ->
    if is_int ta && is_int tb then Ctype.I64
    else err "%s: integer binop on %s/%s" ctx.fn.fname
        (Ctype.to_string ctx.tenv ta) (Ctype.to_string ctx.tenv tb)
  | Eq | Ne | Lt | Le | Gt | Ge ->
    let both_int = is_int ta && is_int tb in
    let both_ptr =
      match (ta, tb) with Ctype.Ptr _, Ctype.Ptr _ -> true | _ -> false
    in
    if both_int || both_ptr then Ctype.I64
    else err "%s: comparison of %s and %s" ctx.fn.fname
        (Ctype.to_string ctx.tenv ta) (Ctype.to_string ctx.tenv tb)
  | FAdd | FSub | FMul | FDiv ->
    if Ctype.equal ta Ctype.F64 && Ctype.equal tb Ctype.F64 then Ctype.F64
    else err "%s: float binop on non-floats" ctx.fn.fname
  | FEq | FLt | FLe ->
    if Ctype.equal ta Ctype.F64 && Ctype.equal tb Ctype.F64 then Ctype.I64
    else err "%s: float comparison on non-floats" ctx.fn.fname

and type_of_unop ctx op a =
  let ta = type_of ctx a in
  match op with
  | Neg | BNot | LNot ->
    if is_int ta then Ctype.I64 else err "%s: integer unop on non-int" ctx.fn.fname
  | FNeg ->
    if Ctype.equal ta Ctype.F64 then Ctype.F64
    else err "%s: fneg on non-float" ctx.fn.fname
  | I2F ->
    if is_int ta then Ctype.F64 else err "%s: i2f on non-int" ctx.fn.fname
  | F2I ->
    if Ctype.equal ta Ctype.F64 then Ctype.I64
    else err "%s: f2i on non-float" ctx.fn.fname

let rec check_stmt ctx ~in_loop (s : Ir.stmt) =
  match s with
  | Let (name, ty, e) ->
    (* re-declaration is allowed (C block scoping is flattened per
       function) but must keep a compatible type *)
    (match Hashtbl.find_opt ctx.vars name with
    | Some (`Stack _) ->
      err "%s: %s redeclared as register local" ctx.fn.fname name
    | Some (`Reg old) when not (compat old ty) ->
      err "%s: %s redeclared with incompatible type" ctx.fn.fname name
    | Some (`Reg _) | None -> ());
    if not (Ctype.is_scalar ty) then
      err "%s: Let %s of aggregate type (use Decl_local)" ctx.fn.fname name;
    let ety = type_of ctx e in
    if not (compat ety ty) then
      err "%s: Let %s: got %s, expected %s" ctx.fn.fname name
        (Ctype.to_string ctx.tenv ety)
        (Ctype.to_string ctx.tenv ty);
    Hashtbl.replace ctx.vars name (`Reg ty)
  | Assign (name, e) ->
    let ty = var_type ctx name in
    (match Hashtbl.find_opt ctx.vars name with
    | Some (`Stack _) ->
      err "%s: assignment to stack local %s (use Store)" ctx.fn.fname name
    | Some (`Reg _) | None -> ());
    let ety = type_of ctx e in
    if not (compat ety ty) then
      err "%s: assign %s: got %s, expected %s" ctx.fn.fname name
        (Ctype.to_string ctx.tenv ety)
        (Ctype.to_string ctx.tenv ty)
  | Decl_local (name, ty) ->
    if Hashtbl.mem ctx.vars name then
      err "%s: duplicate variable %s" ctx.fn.fname name;
    if Ctype.sizeof ctx.tenv ty <= 0 then
      err "%s: zero-sized local %s" ctx.fn.fname name;
    Hashtbl.replace ctx.vars name (`Stack ty)
  | Store (ty, addr, value) ->
    if not (Ctype.is_scalar ty) then err "%s: store of non-scalar" ctx.fn.fname;
    let aty = type_of ctx addr in
    if not (compat aty (Ctype.Ptr ty)) then
      err "%s: store address has type %s, expected %s*" ctx.fn.fname
        (Ctype.to_string ctx.tenv aty)
        (Ctype.to_string ctx.tenv ty);
    let vty = type_of ctx value in
    if not (compat vty ty) then
      err "%s: store value has type %s, expected %s" ctx.fn.fname
        (Ctype.to_string ctx.tenv vty)
        (Ctype.to_string ctx.tenv ty)
  | Store_global (g, e) -> (
    match Ir.find_global ctx.prog g with
    | Some { gty; _ } when Ctype.is_scalar gty ->
      let ety = type_of ctx e in
      if not (compat ety gty) then
        err "%s: store_global %s type mismatch" ctx.fn.fname g
    | Some _ -> err "%s: by-name store to aggregate global %s" ctx.fn.fname g
    | None -> err "%s: unknown global %s" ctx.fn.fname g)
  | If (c, t, e) ->
    ignore (type_of ctx c);
    List.iter (check_stmt ctx ~in_loop) t;
    List.iter (check_stmt ctx ~in_loop) e
  | While (c, body) ->
    ignore (type_of ctx c);
    List.iter (check_stmt ctx ~in_loop:true) body
  | Return None ->
    if not (Ctype.equal ctx.fn.ret Ctype.Void) then
      err "%s: empty return from non-void function" ctx.fn.fname
  | Return (Some e) ->
    let ety = type_of ctx e in
    if Ctype.equal ctx.fn.ret Ctype.Void then
      err "%s: value return from void function" ctx.fn.fname;
    if not (compat ety ctx.fn.ret) then
      err "%s: return type %s, expected %s" ctx.fn.fname
        (Ctype.to_string ctx.tenv ety)
        (Ctype.to_string ctx.tenv ctx.fn.ret)
  | Expr e -> ignore (type_of ctx e)
  | Free e -> (
    match type_of ctx e with
    | Ctype.Ptr _ -> ()
    | ty -> err "%s: free of non-pointer %s" ctx.fn.fname (Ctype.to_string ctx.tenv ty))
  | Break | Continue ->
    if not in_loop then err "%s: break/continue outside loop" ctx.fn.fname
  | Ifp_register_local name | Ifp_deregister_local name -> (
    match Hashtbl.find_opt ctx.vars name with
    | Some (`Stack _) -> ()
    | Some (`Reg _) | None ->
      err "%s: Ifp_(de)register_local of non-stack var %s" ctx.fn.fname name)

let check_func prog f =
  let ctx =
    { tenv = prog.Ir.tenv; prog; vars = Hashtbl.create 16; fn = f }
  in
  List.iter
    (fun (name, ty) ->
      if not (Ctype.is_scalar ty) then
        err "%s: aggregate parameter %s (pass a pointer)" f.Ir.fname name;
      Hashtbl.replace ctx.vars name (`Reg ty))
    f.Ir.params;
  List.iter (check_stmt ctx ~in_loop:false) f.Ir.body

let check_program prog =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      if Hashtbl.mem seen f.fname then err "duplicate function %s" f.fname;
      Hashtbl.replace seen f.fname ())
    prog.Ir.funcs;
  let gseen = Hashtbl.create 16 in
  List.iter
    (fun (g : Ir.global) ->
      if Hashtbl.mem gseen g.gname then err "duplicate global %s" g.gname;
      Hashtbl.replace gseen g.gname ())
    prog.Ir.globals;
  List.iter (check_func prog) prog.Ir.funcs
