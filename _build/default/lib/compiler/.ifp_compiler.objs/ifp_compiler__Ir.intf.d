lib/compiler/ir.mli: Ifp_types
