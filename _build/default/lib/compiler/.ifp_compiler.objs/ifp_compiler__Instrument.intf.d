lib/compiler/instrument.mli: Ifp_types Ir
