lib/compiler/typecheck.mli: Ifp_types Ir
