lib/compiler/ir.ml: Ifp_types Int64 List String
