lib/compiler/parser.mli: Ir
