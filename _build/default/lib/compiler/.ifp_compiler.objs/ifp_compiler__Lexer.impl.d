lib/compiler/lexer.ml: Char Int64 List Printf String
