lib/compiler/ir_pp.mli: Format Ifp_types Ir
