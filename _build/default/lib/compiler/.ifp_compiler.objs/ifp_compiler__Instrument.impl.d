lib/compiler/instrument.ml: Hashtbl Ifp_types Int64 Ir List Printf
