lib/compiler/ir_pp.ml: Format Ifp_types Ir List String
