lib/compiler/lexer.mli:
