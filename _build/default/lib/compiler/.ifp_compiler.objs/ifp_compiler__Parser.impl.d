lib/compiler/parser.ml: Format Hashtbl Ifp_types Int64 Ir Lexer List String Typecheck
