lib/compiler/typecheck.ml: Format Hashtbl Ifp_types Ir List
