module Ctype = Ifp_types.Ctype
module L = Lexer

exception Parse_error of string * int

type st = {
  lx : L.t;
  mutable tenv : Ctype.tenv;
  mutable struct_names : string list;
  (* pre-scanned signatures: name -> (param types, return type, legacy) *)
  sigs : (string, Ctype.t list * Ctype.t) Hashtbl.t;
  globals : (string, Ctype.t) Hashtbl.t;
  (* current function scope: name -> (type, is_stack) *)
  scope : (string, Ctype.t * bool) Hashtbl.t;
}

let err st fmt =
  Format.kasprintf (fun m -> raise (Parse_error (m, L.line st.lx))) fmt

let expect_punct st p =
  match L.next st.lx with
  | L.PUNCT q when String.equal p q -> ()
  | tok -> err st "expected '%s', got %s" p (L.token_to_string tok)

let expect_kw st k =
  match L.next st.lx with
  | L.KW q when String.equal k q -> ()
  | tok -> err st "expected '%s', got %s" k (L.token_to_string tok)

let expect_ident st =
  match L.next st.lx with
  | L.IDENT s -> s
  | tok -> err st "expected identifier, got %s" (L.token_to_string tok)

let accept_punct st p =
  match L.peek st.lx with
  | L.PUNCT q when String.equal p q ->
    ignore (L.next st.lx);
    true
  | _ -> false

(* ---- types --------------------------------------------------------- *)

(* base type possibly followed by '*'s; array suffixes are parsed by the
   declaration sites (they bind to the name, C-style but postfix) *)
let parse_type st =
  let base =
    match L.next st.lx with
    | L.KW "i8" -> Ctype.I8
    | L.KW "i16" -> Ctype.I16
    | L.KW "i32" -> Ctype.I32
    | L.KW "i64" -> Ctype.I64
    | L.KW "f64" -> Ctype.F64
    | L.KW "void" -> Ctype.Void
    | L.KW "struct" -> Ctype.Struct (expect_ident st)
    | L.IDENT s when List.mem s st.struct_names -> Ctype.Struct s
    | tok -> err st "expected a type, got %s" (L.token_to_string tok)
  in
  let rec stars ty = if accept_punct st "*" then stars (Ctype.Ptr ty) else ty in
  stars base

let parse_array_suffix st ty =
  (* i64 x[4][2] parses as array of 4 arrays of 2 *)
  let rec dims acc =
    if accept_punct st "[" then begin
      match L.next st.lx with
      | L.INT n ->
        expect_punct st "]";
        dims (Int64.to_int n :: acc)
      | tok -> err st "expected array dimension, got %s" (L.token_to_string tok)
    end
    else acc
  in
  let ds = dims [] in
  List.fold_left (fun ty n -> Ctype.Array (ty, n)) ty ds

(* ---- typed expressions ---------------------------------------------- *)

(* a parsed expression is either a pure value or a place (memory
   location reached through a typed gep path) *)
type pexpr =
  | Val of Ir.expr * Ctype.t
  | Place of { base : Ir.expr; pointee : Ctype.t; steps : Ir.gstep list; ty : Ctype.t }

let addr_of_place = function
  | Place { base; steps = []; _ } -> base
  | Place { base; pointee; steps; ty = _ } -> Ir.Gep (pointee, base, steps)
  | Val _ -> invalid_arg "addr_of_place"

let rvalue st (p : pexpr) : Ir.expr * Ctype.t =
  match p with
  | Val (e, ty) -> (e, ty)
  | Place ({ ty; _ } as pl) -> (
    match ty with
    | ty when Ctype.is_scalar ty -> (Ir.Load (ty, addr_of_place p), ty)
    | Ctype.Array (elt, _) ->
      (* array-to-pointer decay: the address, typed elt* *)
      (addr_of_place (Place { pl with ty }), Ctype.Ptr elt)
    | Ctype.Struct _ -> err st "struct value used where a scalar is expected"
    | Ctype.Void -> err st "void value"
    | _ -> assert false)

and coerce_f64 (e, ty) = if Ctype.equal ty Ctype.F64 then e else Ir.Unop (Ir.I2F, e)

(* ---- expression grammar (precedence climbing) ---------------------- *)

let rec parse_expr st : pexpr = parse_or st

and parse_or st =
  let rec go acc =
    if accept_punct st "||" then
      let l, _ = rvalue st acc in
      let r, _ = rvalue st (parse_and st) in
      go (Val (Ir.Binop (Ir.LOr, l, r), Ctype.I64))
    else acc
  in
  go (parse_and st)

and parse_and st =
  let rec go acc =
    if accept_punct st "&&" then
      let l, _ = rvalue st acc in
      let r, _ = rvalue st (parse_bor st) in
      go (Val (Ir.Binop (Ir.LAnd, l, r), Ctype.I64))
    else acc
  in
  go (parse_bor st)

and binop_level st ~ops ~next acc0 =
  let rec go acc =
    match L.peek st.lx with
    | L.PUNCT p when List.mem_assoc p ops ->
      ignore (L.next st.lx);
      let mk = List.assoc p ops in
      let l = rvalue st acc in
      let r = rvalue st (next st) in
      let e, ty = mk st l r in
      go (Val (e, ty))
    | _ -> acc
  in
  go acc0

and arith name iop fop st (le, lt) (re, rt) =
  if Ctype.equal lt Ctype.F64 || Ctype.equal rt Ctype.F64 then
    match fop with
    | Some f -> (Ir.Binop (f, coerce_f64 (le, lt), coerce_f64 (re, rt)), Ctype.F64)
    | None -> err st "operator %s not defined on f64" name
  else (Ir.Binop (iop, le, re), Ctype.I64)

and cmp iop fop st (le, lt) (re, rt) =
  if Ctype.equal lt Ctype.F64 || Ctype.equal rt Ctype.F64 then
    match fop with
    | Some f -> (Ir.Binop (f, coerce_f64 (le, lt), coerce_f64 (re, rt)), Ctype.I64)
    | None ->
      (* a >= b  ==>  !(a < b); a > b ==> b < a handled at call sites *)
      err st "comparison not defined on f64"
  else (Ir.Binop (iop, le, re), Ctype.I64)

and parse_bor st =
  binop_level st
    ~ops:[ ("|", arith "|" Ir.BOr None) ]
    ~next:parse_bxor (parse_bxor st)

and parse_bxor st =
  binop_level st
    ~ops:[ ("^", arith "^" Ir.BXor None) ]
    ~next:parse_band (parse_band st)

and parse_band st =
  binop_level st
    ~ops:[ ("&", arith "&" Ir.BAnd None) ]
    ~next:parse_eq (parse_eq st)

and parse_eq st =
  binop_level st
    ~ops:[ ("==", cmp Ir.Eq (Some Ir.FEq)); ("!=", cmp Ir.Ne None) ]
    ~next:parse_rel (parse_rel st)

and parse_rel st =
  let gt st l r = cmp Ir.Lt (Some Ir.FLt) st r l in
  let ge st l r =
    (* a >= b  <=>  b <= a *)
    cmp Ir.Le (Some Ir.FLe) st r l
  in
  binop_level st
    ~ops:
      [ ("<", cmp Ir.Lt (Some Ir.FLt)); ("<=", cmp Ir.Le (Some Ir.FLe));
        (">", gt); (">=", ge) ]
    ~next:parse_shift (parse_shift st)

and parse_shift st =
  binop_level st
    ~ops:[ ("<<", arith "<<" Ir.Shl None); (">>", arith ">>" Ir.Shr None) ]
    ~next:parse_add (parse_add st)

and parse_add st =
  binop_level st
    ~ops:
      [ ("+", arith "+" Ir.Add (Some Ir.FAdd));
        ("-", arith "-" Ir.Sub (Some Ir.FSub)) ]
    ~next:parse_mul (parse_mul st)

and parse_mul st =
  binop_level st
    ~ops:
      [ ("*", arith "*" Ir.Mul (Some Ir.FMul));
        ("/", arith "/" Ir.Div (Some Ir.FDiv));
        ("%", arith "%" Ir.Rem None) ]
    ~next:parse_unary (parse_unary st)

and parse_unary st : pexpr =
  match L.peek st.lx with
  | L.PUNCT "-" ->
    ignore (L.next st.lx);
    let e, ty = rvalue st (parse_unary st) in
    if Ctype.equal ty Ctype.F64 then Val (Ir.Unop (Ir.FNeg, e), Ctype.F64)
    else Val (Ir.Unop (Ir.Neg, e), Ctype.I64)
  | L.PUNCT "!" ->
    ignore (L.next st.lx);
    let e, _ = rvalue st (parse_unary st) in
    Val (Ir.Unop (Ir.LNot, e), Ctype.I64)
  | L.PUNCT "~" ->
    ignore (L.next st.lx);
    let e, _ = rvalue st (parse_unary st) in
    Val (Ir.Unop (Ir.BNot, e), Ctype.I64)
  | L.PUNCT "*" ->
    ignore (L.next st.lx);
    let e, ty = rvalue st (parse_unary st) in
    (match ty with
    | Ctype.Ptr t -> Place { base = e; pointee = t; steps = []; ty = t }
    | _ -> err st "dereference of non-pointer")
  | L.PUNCT "&" ->
    ignore (L.next st.lx);
    (match parse_unary st with
    | Place ({ ty; _ } as pl) -> Val (addr_of_place (Place pl), Ctype.Ptr ty)
    | Val _ -> err st "address of non-lvalue")
  | L.KW "cast" ->
    ignore (L.next st.lx);
    expect_punct st "(";
    let ty = parse_type st in
    expect_punct st ",";
    let e, _ = rvalue st (parse_expr st) in
    expect_punct st ")";
    Val (Ir.Cast (ty, e), ty)
  | _ -> parse_postfix st (parse_primary st)

and parse_postfix st (p : pexpr) : pexpr =
  match L.peek st.lx with
  | L.PUNCT "[" -> (
    ignore (L.next st.lx);
    let idx, _ = rvalue st (parse_expr st) in
    expect_punct st "]";
    match p with
    | Place ({ ty = Ctype.Array (elt, _); _ } as pl) ->
      parse_postfix st
        (Place { pl with steps = pl.steps @ [ Ir.S_index idx ]; ty = elt })
    | _ -> (
      let e, ty = rvalue st p in
      match ty with
      | Ctype.Ptr t ->
        parse_postfix st
          (Place { base = e; pointee = t; steps = [ Ir.S_index idx ]; ty = t })
      | _ -> err st "indexing a non-pointer"))
  | L.PUNCT "->" -> (
    ignore (L.next st.lx);
    let f = expect_ident st in
    let e, ty = rvalue st p in
    match ty with
    | Ctype.Ptr (Ctype.Struct s) -> (
      match Ctype.field_offset st.tenv s f with
      | _, fty ->
        parse_postfix st
          (Place
             { base = e; pointee = Ctype.Struct s; steps = [ Ir.S_field f ];
               ty = fty })
      | exception Not_found -> err st "struct %s has no field %s" s f)
    | _ -> err st "-> on non-struct-pointer")
  | L.PUNCT "." -> (
    ignore (L.next st.lx);
    let f = expect_ident st in
    match p with
    | Place ({ ty = Ctype.Struct s; _ } as pl) -> (
      match Ctype.field_offset st.tenv s f with
      | _, fty ->
        parse_postfix st
          (Place { pl with steps = pl.steps @ [ Ir.S_field f ]; ty = fty })
      | exception Not_found -> err st "struct %s has no field %s" s f)
    | _ -> err st ". on non-struct place")
  | _ -> p

and parse_call st name =
  expect_punct st "(";
  let rec args acc =
    if accept_punct st ")" then List.rev acc
    else begin
      let e, _ = rvalue st (parse_expr st) in
      if accept_punct st "," then args (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    end
  in
  let actuals = args [] in
  let ret =
    match Hashtbl.find_opt st.sigs name with
    | Some (_, ret) -> ret
    | None -> (
      match Typecheck.builtin_sig name with
      | Some (_, ret) -> ret
      | None -> err st "call to unknown function %s" name)
  in
  Val (Ir.Call (name, actuals), ret)

and parse_primary st : pexpr =
  match L.next st.lx with
  | L.INT x -> Val (Ir.Int x, Ctype.I64)
  | L.FLOAT f -> Val (Ir.Float f, Ctype.F64)
  | L.PUNCT "(" ->
    let e = parse_expr st in
    expect_punct st ")";
    e
  | L.KW "malloc" ->
    expect_punct st "(";
    let ty = parse_type st in
    let count =
      if accept_punct st "," then fst (rvalue st (parse_expr st)) else Ir.Int 1L
    in
    expect_punct st ")";
    Val (Ir.Malloc (ty, count), Ctype.Ptr ty)
  | L.KW "malloc_bytes" ->
    expect_punct st "(";
    let e, _ = rvalue st (parse_expr st) in
    expect_punct st ")";
    Val (Ir.Malloc_bytes e, Ctype.Ptr Ctype.I8)
  | L.KW "null" ->
    expect_punct st "(";
    let ty = parse_type st in
    expect_punct st ")";
    Val (Ir.Cast (Ctype.Ptr ty, Ir.Int 0L), Ctype.Ptr ty)
  | L.KW "sizeof" ->
    expect_punct st "(";
    let ty = parse_type st in
    expect_punct st ")";
    Val (Ir.Int (Int64.of_int (Ctype.sizeof st.tenv ty)), Ctype.I64)
  | L.IDENT name -> (
    if L.peek st.lx = L.PUNCT "(" then parse_call st name
    else
      match Hashtbl.find_opt st.scope name with
      | Some (ty, false) -> Val (Ir.Var name, ty)
      | Some (ty, true) ->
        Place { base = Ir.Addr_local name; pointee = ty; steps = []; ty }
      | None -> (
        match Hashtbl.find_opt st.globals name with
        | Some ty when Ctype.is_scalar ty -> Val (Ir.Load_global name, ty)
        | Some ty ->
          Place { base = Ir.Addr_global name; pointee = ty; steps = []; ty }
        | None -> err st "unknown identifier %s" name))
  | tok -> err st "unexpected %s in expression" (L.token_to_string tok)

(* ---- statements ------------------------------------------------------ *)

let store_to st (lhs : pexpr) (rhs : Ir.expr) (rty : Ctype.t) : Ir.stmt =
  match lhs with
  | Val (Ir.Var name, ty) ->
    ignore ty;
    ignore rty;
    Ir.Assign (name, rhs)
  | Val (Ir.Load_global g, gty) ->
    let rhs = if Ctype.equal gty Ctype.F64 then coerce_f64 (rhs, rty) else rhs in
    Ir.Store_global (g, rhs)
  | Place { ty; _ } when Ctype.is_scalar ty ->
    let rhs = if Ctype.equal ty Ctype.F64 then coerce_f64 (rhs, rty) else rhs in
    Ir.Store (ty, addr_of_place lhs, rhs)
  | Place _ -> err st "assignment to aggregate lvalue"
  | Val _ -> err st "assignment to non-lvalue"

let rec parse_stmt st : Ir.stmt =
  match L.peek st.lx with
  | L.KW "var" ->
    ignore (L.next st.lx);
    let name = expect_ident st in
    expect_punct st ":";
    let ty = parse_type st in
    let ty = parse_array_suffix st ty in
    expect_punct st ";";
    Hashtbl.replace st.scope name (ty, true);
    Ir.Decl_local (name, ty)
  | L.KW "let" ->
    ignore (L.next st.lx);
    let name = expect_ident st in
    expect_punct st ":";
    let ty = parse_type st in
    (match L.next st.lx with
    | L.PUNCT "=" -> ()
    | tok -> err st "expected '=', got %s" (L.token_to_string tok));
    let e, ety = rvalue st (parse_expr st) in
    expect_punct st ";";
    Hashtbl.replace st.scope name (ty, false);
    let e = if Ctype.equal ty Ctype.F64 then coerce_f64 (e, ety) else e in
    Ir.Let (name, ty, e)
  | L.KW "if" ->
    ignore (L.next st.lx);
    expect_punct st "(";
    let c, _ = rvalue st (parse_expr st) in
    expect_punct st ")";
    let t = parse_block st in
    let e =
      match L.peek st.lx with
      | L.KW "else" ->
        ignore (L.next st.lx);
        parse_block st
      | _ -> []
    in
    Ir.If (c, t, e)
  | L.KW "while" ->
    ignore (L.next st.lx);
    expect_punct st "(";
    let c, _ = rvalue st (parse_expr st) in
    expect_punct st ")";
    Ir.While (c, parse_block st)
  | L.KW "return" ->
    ignore (L.next st.lx);
    if accept_punct st ";" then Ir.Return None
    else begin
      let e, _ = rvalue st (parse_expr st) in
      expect_punct st ";";
      Ir.Return (Some e)
    end
  | L.KW "break" ->
    ignore (L.next st.lx);
    expect_punct st ";";
    Ir.Break
  | L.KW "continue" ->
    ignore (L.next st.lx);
    expect_punct st ";";
    Ir.Continue
  | L.KW "free" ->
    ignore (L.next st.lx);
    expect_punct st "(";
    let e, _ = rvalue st (parse_expr st) in
    expect_punct st ")";
    expect_punct st ";";
    Ir.Free e
  | _ ->
    let lhs = parse_expr st in
    if accept_punct st "=" then begin
      let rhs, rty = rvalue st (parse_expr st) in
      expect_punct st ";";
      store_to st lhs rhs rty
    end
    else begin
      expect_punct st ";";
      match lhs with
      | Val (e, _) -> Ir.Expr e
      | Place _ -> Ir.Expr (fst (rvalue st lhs))
    end

and parse_block st : Ir.stmt list =
  expect_punct st "{";
  let rec go acc =
    if accept_punct st "}" then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

(* ---- declarations ---------------------------------------------------- *)

let parse_struct_decl st =
  expect_kw st "struct";
  let name = expect_ident st in
  st.struct_names <- name :: st.struct_names;
  expect_punct st "{";
  let rec fields acc =
    if accept_punct st "}" then List.rev acc
    else begin
      let fty = parse_type st in
      let fname = expect_ident st in
      let fty = parse_array_suffix st fty in
      expect_punct st ";";
      fields ({ Ctype.fname; fty } :: acc)
    end
  in
  let fs = fields [] in
  expect_punct st ";";
  st.tenv <- Ctype.declare st.tenv { Ctype.sname = name; fields = fs }

let parse_params st =
  expect_punct st "(";
  if accept_punct st ")" then []
  else
    let rec go acc =
      let ty = parse_type st in
      let name = expect_ident st in
      if accept_punct st "," then go ((name, ty) :: acc)
      else begin
        expect_punct st ")";
        List.rev ((name, ty) :: acc)
      end
    in
    go []

let parse_func st ~instrumented =
  let ret = parse_type st in
  let name = expect_ident st in
  let params = parse_params st in
  Hashtbl.reset st.scope;
  List.iter (fun (p, ty) -> Hashtbl.replace st.scope p (ty, false)) params;
  let body = parse_block st in
  Ir.func ~instrumented name params ret body

(* pre-scan: collect struct names (so types parse), then function
   signatures and globals, skipping bodies *)
let prescan src =
  let lx = L.create src in
  let struct_names = ref [] in
  let rec skip_braces depth =
    match L.next lx with
    | L.PUNCT "{" -> skip_braces (depth + 1)
    | L.PUNCT "}" -> if depth > 1 then skip_braces (depth - 1)
    | L.EOF -> raise (Parse_error ("unexpected eof in body", L.line lx))
    | _ -> skip_braces depth
  in
  let rec go () =
    match L.peek lx with
    | L.EOF -> ()
    | L.KW "struct" ->
      ignore (L.next lx);
      (match L.next lx with
      | L.IDENT s -> struct_names := s :: !struct_names
      | tok ->
        raise
          (Parse_error ("expected struct name, got " ^ L.token_to_string tok,
                        L.line lx)));
      (match L.next lx with
      | L.PUNCT "{" -> skip_braces 1
      | _ -> ());
      (* trailing ';' and field tokens are skipped by skip_braces *)
      (match L.peek lx with
      | L.PUNCT ";" -> ignore (L.next lx)
      | _ -> ());
      go ()
    | _ ->
      ignore (L.next lx);
      (match L.peek lx with
      | L.PUNCT "{" ->
        ignore (L.next lx);
        skip_braces 1
      | _ -> ());
      go ()
  in
  go ();
  !struct_names

let parse src =
  let struct_names = prescan src in
  let st =
    {
      lx = L.create src;
      tenv = Ctype.empty_tenv;
      struct_names;
      sigs = Hashtbl.create 16;
      globals = Hashtbl.create 16;
      scope = Hashtbl.create 16;
    }
  in
  (* pass 1: declarations and signatures (bodies skipped) *)
  let lx_save = st.lx in
  let rec sig_pass () =
    match L.peek st.lx with
    | L.EOF -> ()
    | L.KW "struct" ->
      (* full struct parse builds the tenv in order; at top level the
         'struct' keyword always begins a declaration (functions refer to
         struct types by bare name) *)
      parse_struct_decl st;
      sig_pass ()
    | L.KW "global" ->
      ignore (L.next st.lx);
      let ty = parse_type st in
      let name = expect_ident st in
      let ty = parse_array_suffix st ty in
      expect_punct st ";";
      Hashtbl.replace st.globals name ty;
      sig_pass ()
    | _ ->
      let _legacy =
        match L.peek st.lx with
        | L.KW "legacy" ->
          ignore (L.next st.lx);
          true
        | _ -> false
      in
      let ret = parse_type st in
      let name = expect_ident st in
      let params = parse_params st in
      Hashtbl.replace st.sigs name (List.map snd params, ret);
      (* skip the body *)
      expect_punct st "{";
      let rec skip depth =
        match L.next st.lx with
        | L.PUNCT "{" -> skip (depth + 1)
        | L.PUNCT "}" -> if depth > 1 then skip (depth - 1)
        | L.EOF -> err st "unexpected eof in function body"
        | _ -> skip depth
      in
      skip 1;
      sig_pass ()
  in
  sig_pass ();
  ignore lx_save;
  (* pass 2: full parse with all signatures known *)
  let st = { st with lx = L.create src } in
  let funcs = ref [] in
  let globals = ref [] in
  let rec go () =
    match L.peek st.lx with
    | L.EOF -> ()
    | L.KW "struct" ->
      (* already declared in pass 1: skip the declaration *)
      let rec skip_decl () =
        match L.next st.lx with
        | L.PUNCT "}" ->
          (match L.peek st.lx with
          | L.PUNCT ";" -> ignore (L.next st.lx)
          | _ -> ())
        | L.EOF -> err st "unexpected eof in struct"
        | _ -> skip_decl ()
      in
      skip_decl ();
      go ()
    | L.KW "global" ->
      ignore (L.next st.lx);
      let ty = parse_type st in
      let name = expect_ident st in
      let ty = parse_array_suffix st ty in
      expect_punct st ";";
      globals := Ir.global name ty :: !globals;
      go ()
    | L.KW "legacy" ->
      ignore (L.next st.lx);
      funcs := parse_func st ~instrumented:false :: !funcs;
      go ()
    | _ ->
      funcs := parse_func st ~instrumented:true :: !funcs;
      go ()
  in
  go ();
  Ir.program ~tenv:st.tenv ~globals:(List.rev !globals) (List.rev !funcs)
