type var = string

type binop =
  | Add | Sub | Mul | Div | Rem
  | BAnd | BOr | BXor | Shl | Shr
  | LAnd | LOr
  | Eq | Ne | Lt | Le | Gt | Ge
  | FAdd | FSub | FMul | FDiv
  | FEq | FLt | FLe

type unop = Neg | LNot | BNot | FNeg | I2F | F2I

type gstep = S_field of string | S_index of expr

and expr =
  | Int of int64
  | Float of float
  | Var of var
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Load of Ifp_types.Ctype.t * expr
  | Addr_local of var
  | Addr_global of string
  | Load_global of string
  | Gep of Ifp_types.Ctype.t * expr * gstep list
  | Call of string * expr list
  | Malloc of Ifp_types.Ctype.t * expr
  | Malloc_bytes of expr
  | Malloc_sized of Ifp_types.Ctype.t * expr
  | Cast of Ifp_types.Ctype.t * expr
  | Ifp_promote of expr

and stmt =
  | Let of var * Ifp_types.Ctype.t * expr
  | Assign of var * expr
  | Decl_local of var * Ifp_types.Ctype.t
  | Store of Ifp_types.Ctype.t * expr * expr
  | Store_global of string * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Expr of expr
  | Free of expr
  | Break
  | Continue
  | Ifp_register_local of var
  | Ifp_deregister_local of var

type func = {
  fname : string;
  params : (var * Ifp_types.Ctype.t) list;
  ret : Ifp_types.Ctype.t;
  body : stmt list;
  instrumented : bool;
}

type global = {
  gname : string;
  gty : Ifp_types.Ctype.t;
  mutable registered : bool;
}

type program = {
  tenv : Ifp_types.Ctype.tenv;
  globals : global list;
  funcs : func list;
}

let func ?(instrumented = true) fname params ret body =
  { fname; params; ret; body; instrumented }

let global gname gty = { gname; gty; registered = false }

let program ~tenv ~globals funcs = { tenv; globals; funcs }

let find_func p name =
  List.find_opt (fun f -> String.equal f.fname name) p.funcs

let find_global p name =
  List.find_opt (fun g -> String.equal g.gname name) p.globals

let i n = Int (Int64.of_int n)
let i64 n = Int n
let v name = Var name
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( %: ) a b = Binop (Rem, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( >: ) a b = Binop (Gt, a, b)
let ( >=: ) a b = Binop (Ge, a, b)
let ( ==: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Ne, a, b)
let ( &&: ) a b = Binop (LAnd, a, b)
let ( ||: ) a b = Binop (LOr, a, b)
let not_ a = Unop (LNot, a)
let null ty = Cast (Ifp_types.Ctype.Ptr ty, Int 0L)

let idx base index steps pointee = Gep (pointee, base, S_index index :: steps)
let fld name = S_field name
let at e = S_index e
