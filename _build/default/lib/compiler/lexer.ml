type token =
  | INT of int64
  | FLOAT of float
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

exception Lex_error of string * int

let keywords =
  [ "struct"; "global"; "legacy"; "let"; "var"; "if"; "else"; "while";
    "return"; "break"; "continue"; "free"; "malloc"; "malloc_bytes"; "null";
    "sizeof"; "i8"; "i16"; "i32"; "i64"; "f64"; "void"; "cast" ]

(* multi-character operators first (longest match) *)
let puncts =
  [ "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "->"; "+"; "-"; "*"; "/";
    "%"; "&"; "|"; "^"; "!"; "~"; "<"; ">"; "="; "("; ")"; "{"; "}"; "[";
    "]"; ";"; ","; "."; ":" ]

type t = {
  src : string;
  mutable pos : int;
  mutable line_no : int;
  mutable tok : token;
  mutable tok2 : token option;
}

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws t =
  if t.pos >= String.length t.src then ()
  else
    match t.src.[t.pos] with
    | ' ' | '\t' | '\r' ->
      t.pos <- t.pos + 1;
      skip_ws t
    | '\n' ->
      t.pos <- t.pos + 1;
      t.line_no <- t.line_no + 1;
      skip_ws t
    | '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
      while t.pos < String.length t.src && t.src.[t.pos] <> '\n' do
        t.pos <- t.pos + 1
      done;
      skip_ws t
    | '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '*' ->
      let rec go p =
        if p + 1 >= String.length t.src then
          raise (Lex_error ("unterminated comment", t.line_no))
        else if t.src.[p] = '*' && t.src.[p + 1] = '/' then t.pos <- p + 2
        else begin
          if t.src.[p] = '\n' then t.line_no <- t.line_no + 1;
          go (p + 1)
        end
      in
      go (t.pos + 2);
      skip_ws t
    | _ -> ()

let scan t =
  skip_ws t;
  if t.pos >= String.length t.src then EOF
  else
    let c = t.src.[t.pos] in
    if is_digit c then begin
      let start = t.pos in
      while t.pos < String.length t.src && is_digit t.src.[t.pos] do
        t.pos <- t.pos + 1
      done;
      (* hex *)
      if
        t.pos < String.length t.src
        && (t.src.[t.pos] = 'x' || t.src.[t.pos] = 'X')
        && t.pos = start + 1
        && t.src.[start] = '0'
      then begin
        t.pos <- t.pos + 1;
        let hstart = t.pos in
        while
          t.pos < String.length t.src
          && (is_digit t.src.[t.pos]
             || (Char.lowercase_ascii t.src.[t.pos] >= 'a'
                && Char.lowercase_ascii t.src.[t.pos] <= 'f'))
        do
          t.pos <- t.pos + 1
        done;
        if t.pos = hstart then raise (Lex_error ("bad hex literal", t.line_no));
        INT (Int64.of_string ("0x" ^ String.sub t.src hstart (t.pos - hstart)))
      end
      else if t.pos < String.length t.src && t.src.[t.pos] = '.' then begin
        t.pos <- t.pos + 1;
        while t.pos < String.length t.src && is_digit t.src.[t.pos] do
          t.pos <- t.pos + 1
        done;
        FLOAT (float_of_string (String.sub t.src start (t.pos - start)))
      end
      else INT (Int64.of_string (String.sub t.src start (t.pos - start)))
    end
    else if is_ident_start c then begin
      let start = t.pos in
      while t.pos < String.length t.src && is_ident t.src.[t.pos] do
        t.pos <- t.pos + 1
      done;
      let s = String.sub t.src start (t.pos - start) in
      if List.mem s keywords then KW s else IDENT s
    end
    else
      let rec try_puncts = function
        | [] ->
          raise (Lex_error (Printf.sprintf "unexpected character %c" c, t.line_no))
        | p :: rest ->
          let n = String.length p in
          if
            t.pos + n <= String.length t.src
            && String.equal (String.sub t.src t.pos n) p
          then begin
            t.pos <- t.pos + n;
            PUNCT p
          end
          else try_puncts rest
      in
      try_puncts puncts

let create src =
  let t = { src; pos = 0; line_no = 1; tok = EOF; tok2 = None } in
  t.tok <- scan t;
  t

let peek t = t.tok

let peek2 t =
  match t.tok2 with
  | Some tok -> tok
  | None ->
    let tok = scan t in
    t.tok2 <- Some tok;
    tok

let next t =
  let cur = t.tok in
  (match t.tok2 with
  | Some tok ->
    t.tok <- tok;
    t.tok2 <- None
  | None -> t.tok <- scan t);
  cur

let line t = t.line_no

let token_to_string = function
  | INT x -> Int64.to_string x
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> Printf.sprintf "'%s'" s
  | EOF -> "<eof>"
