(** Hand-written lexer for the MiniC surface syntax (see {!Parser}). *)

type token =
  | INT of int64
  | FLOAT of float
  | IDENT of string
  | KW of string  (** keyword: struct, global, legacy, let, var, if, … *)
  | PUNCT of string  (** operator or punctuation, longest-match *)
  | EOF

type t

val create : string -> t
val peek : t -> token
val peek2 : t -> token
val next : t -> token
val line : t -> int

exception Lex_error of string * int  (** message, line *)

val token_to_string : token -> string
