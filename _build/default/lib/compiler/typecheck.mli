(** Static checker for MiniC programs.

    Catches ill-typed workloads before they run: unknown
    variables/fields, malformed {!Ir.Gep} paths, loads/stores of
    non-scalar types, arity mismatches, [break] outside loops, etc.
    Integer types are mutually convertible (C-style); pointer types must
    match exactly, via an explicit {!Ir.Cast}, or through [Ptr Void]
    (which is compatible with every pointer type, as in C). *)

exception Type_error of string

val builtin_sig : string -> (Ifp_types.Ctype.t list * Ifp_types.Ctype.t) option
(** Host builtins callable from MiniC: [__print_i64 : i64 -> void],
    [__print_f64 : f64 -> void], [__abort : void -> void]. *)

val check_program : Ir.program -> unit
(** @raise Type_error with a location-ish message on the first error. *)

val type_of_gep :
  Ifp_types.Ctype.tenv ->
  Ifp_types.Ctype.t ->
  Ir.gstep list ->
  Ifp_types.Ctype.t
(** Resulting pointee type of a Gep over a pointee type; raises
    {!Type_error} for invalid paths. Shared with the instrumentation
    pass and the VM. *)

val layout_path :
  Ifp_types.Ctype.tenv -> Ifp_types.Ctype.t -> Ir.gstep list -> Ifp_types.Layout.path
(** The {!Ifp_types.Layout.path} corresponding to a Gep: [S_field]
    becomes [Field]; [S_index] becomes [Index] when it indexes an
    array-typed subobject and is dropped when it is leading pointer
    arithmetic (which does not change the subobject). *)
