module Ctype = Ifp_types.Ctype

let binop_str (op : Ir.binop) =
  match op with
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | BAnd -> "&" | BOr -> "|" | BXor -> "^" | Shl -> "<<" | Shr -> ">>"
  | LAnd -> "&&" | LOr -> "||"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | FAdd -> "+." | FSub -> "-." | FMul -> "*." | FDiv -> "/."
  | FEq -> "==." | FLt -> "<." | FLe -> "<=."

let unop_str (op : Ir.unop) =
  match op with
  | Neg -> "-" | LNot -> "!" | BNot -> "~" | FNeg -> "-."
  | I2F -> "(f64)" | F2I -> "(i64)"

let rec pp_expr tenv fmt (e : Ir.expr) =
  let pe = pp_expr tenv in
  match e with
  | Int x -> Format.fprintf fmt "%Ld" x
  | Float f -> Format.fprintf fmt "%g" f
  | Var v -> Format.pp_print_string fmt v
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pe a (binop_str op) pe b
  | Unop (op, a) -> Format.fprintf fmt "%s%a" (unop_str op) pe a
  | Load (ty, a) -> Format.fprintf fmt "*(%s*)%a" (Ctype.to_string tenv ty) pe a
  | Addr_local v -> Format.fprintf fmt "&%s" v
  | Addr_global g -> Format.fprintf fmt "&%s" g
  | Load_global g -> Format.pp_print_string fmt g
  | Gep (pointee, base, steps) ->
    Format.fprintf fmt "&(%a : %s*)" pe base (Ctype.to_string tenv pointee);
    List.iter
      (function
        | Ir.S_field f -> Format.fprintf fmt "->%s" f
        | Ir.S_index ie -> Format.fprintf fmt "[%a]" pe ie)
      steps
  | Call (f, args) ->
    Format.fprintf fmt "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pe)
      args
  | Malloc (ty, n) ->
    Format.fprintf fmt "malloc(%a * sizeof(%s))" pe n (Ctype.to_string tenv ty)
  | Malloc_bytes n -> Format.fprintf fmt "malloc_bytes(%a)" pe n
  | Malloc_sized (ty, n) ->
    Format.fprintf fmt "malloc_sized<%s>(%a)" (Ctype.to_string tenv ty) pe n
  | Cast (ty, a) -> Format.fprintf fmt "(%s)%a" (Ctype.to_string tenv ty) pe a
  | Ifp_promote e -> Format.fprintf fmt "IFP_Promote(%a)" pe e

let rec pp_stmt tenv fmt (s : Ir.stmt) =
  let pe = pp_expr tenv in
  match s with
  | Let (v, ty, e) ->
    Format.fprintf fmt "@[<h>%s %s = %a;@]" (Ctype.to_string tenv ty) v pe e
  | Assign (v, e) -> Format.fprintf fmt "@[<h>%s = %a;@]" v pe e
  | Decl_local (v, ty) ->
    Format.fprintf fmt "@[<h>%s %s; /* stack */@]" (Ctype.to_string tenv ty) v
  | Store (ty, a, e) ->
    Format.fprintf fmt "@[<h>*(%s*)%a = %a;@]" (Ctype.to_string tenv ty) pe a pe e
  | Store_global (g, e) -> Format.fprintf fmt "@[<h>%s = %a;@]" g pe e
  | If (c, t, []) ->
    Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,}" pe c (pp_block tenv) t
  | If (c, t, e) ->
    Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pe c
      (pp_block tenv) t (pp_block tenv) e
  | While (c, b) ->
    Format.fprintf fmt "@[<v 2>while (%a) {@,%a@]@,}" pe c (pp_block tenv) b
  | Return None -> Format.pp_print_string fmt "return;"
  | Return (Some e) -> Format.fprintf fmt "@[<h>return %a;@]" pe e
  | Expr e -> Format.fprintf fmt "@[<h>%a;@]" pe e
  | Free e -> Format.fprintf fmt "@[<h>free(%a);@]" pe e
  | Break -> Format.pp_print_string fmt "break;"
  | Continue -> Format.pp_print_string fmt "continue;"
  | Ifp_register_local v -> Format.fprintf fmt "IFP_Register(%s);" v
  | Ifp_deregister_local v -> Format.fprintf fmt "IFP_Deregister(%s);" v

and pp_block tenv fmt stmts =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_cut fmt ())
    (pp_stmt tenv) fmt stmts

let pp_func tenv fmt (f : Ir.func) =
  let params =
    String.concat ", "
      (List.map
         (fun (name, ty) -> Ctype.to_string tenv ty ^ " " ^ name)
         f.Ir.params)
  in
  Format.fprintf fmt "@[<v 2>%s%s %s(%s) {@,%a@]@,}@,"
    (if f.instrumented then "" else "/* legacy */ ")
    (Ctype.to_string tenv f.ret) f.fname params (pp_block tenv) f.body

let pp_program fmt (p : Ir.program) =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (g : Ir.global) ->
      Format.fprintf fmt "%s %s;%s@,"
        (Ctype.to_string p.tenv g.gty)
        g.gname
        (if g.registered then " /* registered */" else ""))
    p.globals;
  List.iter (fun f -> pp_func p.tenv fmt f) p.funcs;
  Format.fprintf fmt "@]"

let program_to_string p = Format.asprintf "%a" pp_program p
