(** C-like pretty-printer for MiniC programs.

    Renders the IR as readable pseudo-C — including the [Ifp_*] forms the
    instrumentation pass inserts (printed as [IFP_Register(x)],
    [IFP_Promote(e)], …, matching the paper's Listing 2 presentation) —
    so instrumented and raw programs can be diffed by eye. *)

val pp_expr : Ifp_types.Ctype.tenv -> Format.formatter -> Ir.expr -> unit
val pp_stmt : Ifp_types.Ctype.tenv -> Format.formatter -> Ir.stmt -> unit
val pp_func : Ifp_types.Ctype.tenv -> Format.formatter -> Ir.func -> unit
val pp_program : Format.formatter -> Ir.program -> unit

val program_to_string : Ir.program -> string
