(** The In-Fat Pointer compiler instrumentation pass (paper Fig. 3).

    Given a checked MiniC program, produces the instrumented program a
    modified Clang/LLVM would emit:

    - {b object registration}: every stack local whose use cannot be
      proven statically safe (its address escapes, or it is indexed
      dynamically) gets [Ifp_register_local]/[Ifp_deregister_local]
      around its live range; statically safe locals are left alone.
      Globals whose address is taken anywhere in the program are marked
      for startup registration (the "getptr" mechanism of §4.2.2) —
      by-name scalar accesses stay uninstrumented.
    - {b promote insertion}: every load of a pointer from memory (including
      pointer-typed globals) is wrapped in [Ifp_promote]; pointers that
      stay in registers inherit bounds through the extended calling
      convention (§4.1.2) and the pass inserts no promote for them — this
      is the paper's promote hoisting.
    - Pointer arithmetic, tag updates, demotes and implicit checks need no
      IR rewriting: the VM executes [Gep]/[Store] with IFP semantics when
      running an instrumented program (the instructions exist at the ISA
      level, not the IR level).

    Functions with [instrumented = false] (legacy libraries) are left
    untouched. *)

type report = {
  locals_registered : int;  (** static count of instrumented locals *)
  locals_skipped : int;  (** locals proven statically safe *)
  promotes_inserted : int;  (** static promote sites *)
  globals_registered : int;
  alloc_types_inferred : int;
      (** type-erased allocations whose element type the wrapper
          inference recovered *)
}

type config = {
  infer_alloc_types : bool;
      (** recover element types (and thus layout tables) from
          [Cast (T*, malloc_bytes e)] allocation-wrapper patterns — the
          future-work improvement of paper §5.2.1. Default [false]: the
          paper's prototype cannot see through wrappers. *)
}

val default_config : config

val run : ?config:config -> Ir.program -> Ir.program * report

val local_needs_registration :
  Ifp_types.Ctype.tenv -> Ir.func -> string -> bool
(** Exposed for tests: the escape/static-safety analysis verdict for one
    local of one function. *)
