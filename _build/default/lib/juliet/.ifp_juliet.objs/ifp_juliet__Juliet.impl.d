lib/juliet/juliet.ml: Ifp_compiler Ifp_types Ifp_vm List Printf
