lib/juliet/juliet.mli: Ifp_compiler Ifp_vm
