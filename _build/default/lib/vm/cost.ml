let alu = 1
let mul = 3
let div = 12
let fp = 4
let branch = 1
let call = 5
let mem = 1
let miss_penalty = 20
let promote_base = 2
let walk_per_elem = 2
let mac_check = 1

let ifp_cycles (k : Ifp_isa.Insn.kind) =
  match k with
  | Promote -> promote_base
  | Ifpmac -> 4
  | Ldbnd | Stbnd -> 2
  | Ifpbnd | Ifpadd | Ifpidx | Ifpchk | Ifpextract | Ifpmd -> 1
