(** Dynamic event counters — everything Table 4, Fig. 10, Fig. 11 and
    Fig. 12 of the paper are computed from. *)

type t = {
  mutable base_instrs : int;  (** non-IFP dynamic instructions *)
  ifp : int array;  (** per {!Ifp_isa.Insn.kind} dynamic counts *)
  mutable cycles : int;
  mutable loads : int;
  mutable stores : int;
  mutable implicit_checks : int;
  (* promote breakdown (Table 4 "valid promote") *)
  mutable promotes_valid : int;  (** accessed object metadata *)
  mutable promotes_null : int;
  mutable promotes_legacy : int;
  mutable promotes_poisoned : int;
  mutable promotes_invalid_meta : int;
  mutable promotes_subobj : int;  (** operand had a non-zero subobject index *)
  mutable narrows_ok : int;
  mutable narrows_failed : int;
  (* object instrumentation (Table 4 left columns) *)
  mutable global_objs : int;
  mutable global_objs_layout : int;
  mutable local_objs : int;
  mutable local_objs_layout : int;
  mutable heap_objs : int;
  mutable heap_objs_layout : int;
}

val create : unit -> t
val kind_index : Ifp_isa.Insn.kind -> int
val add_ifp : t -> Ifp_isa.Insn.kind -> int -> unit
val ifp_count : t -> Ifp_isa.Insn.kind -> int
val ifp_total : t -> int
val total_instrs : t -> int
val promotes_total : t -> int
val pp : Format.formatter -> t -> unit
