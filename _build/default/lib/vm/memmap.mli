(** Virtual-address-space layout used by the VM (all regions fit in the
    48-bit address space; the heap base is naturally aligned for the
    subheap buddy arena). *)

val globals_base : int64
val globals_size : int
val layout_region_base : int64
val layout_region_size : int
val global_table_base : int64
val global_table_entries : int
val heap_base : int64
val heap_size_log2 : int
val stack_top : int64
val stack_size : int
