let globals_base = 0x0001_0000L
let globals_size = 16 * 1024 * 1024
let layout_region_base = 0x0200_0000L
let layout_region_size = 4 * 1024 * 1024
let global_table_base = 0x0300_0000L
let global_table_entries = 4096
let heap_base = 0x1000_0000L (* = 2^28, aligned for a 2^28-byte buddy arena *)
let heap_size_log2 = 28
let stack_top = 0x7000_0000L
let stack_size = 16 * 1024 * 1024
