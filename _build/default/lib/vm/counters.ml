type t = {
  mutable base_instrs : int;
  ifp : int array;
  mutable cycles : int;
  mutable loads : int;
  mutable stores : int;
  mutable implicit_checks : int;
  mutable promotes_valid : int;
  mutable promotes_null : int;
  mutable promotes_legacy : int;
  mutable promotes_poisoned : int;
  mutable promotes_invalid_meta : int;
  mutable promotes_subobj : int;
  mutable narrows_ok : int;
  mutable narrows_failed : int;
  mutable global_objs : int;
  mutable global_objs_layout : int;
  mutable local_objs : int;
  mutable local_objs_layout : int;
  mutable heap_objs : int;
  mutable heap_objs_layout : int;
}

let create () =
  {
    base_instrs = 0;
    ifp = Array.make 10 0;
    cycles = 0;
    loads = 0;
    stores = 0;
    implicit_checks = 0;
    promotes_valid = 0;
    promotes_null = 0;
    promotes_legacy = 0;
    promotes_poisoned = 0;
    promotes_invalid_meta = 0;
    promotes_subobj = 0;
    narrows_ok = 0;
    narrows_failed = 0;
    global_objs = 0;
    global_objs_layout = 0;
    local_objs = 0;
    local_objs_layout = 0;
    heap_objs = 0;
    heap_objs_layout = 0;
  }

let kind_index (k : Ifp_isa.Insn.kind) =
  match k with
  | Promote -> 0
  | Ifpmac -> 1
  | Ldbnd -> 2
  | Stbnd -> 3
  | Ifpbnd -> 4
  | Ifpadd -> 5
  | Ifpidx -> 6
  | Ifpchk -> 7
  | Ifpextract -> 8
  | Ifpmd -> 9

let add_ifp t k n = t.ifp.(kind_index k) <- t.ifp.(kind_index k) + n
let ifp_count t k = t.ifp.(kind_index k)
let ifp_total t = Array.fold_left ( + ) 0 t.ifp
let total_instrs t = t.base_instrs + ifp_total t

let promotes_total t =
  t.promotes_valid + t.promotes_null + t.promotes_legacy + t.promotes_poisoned
  + t.promotes_invalid_meta

let pp fmt t =
  Format.fprintf fmt
    "@[<v>instrs: %d base + %d ifp (promote %d, valid %d)@,\
     cycles: %d, loads %d, stores %d@,\
     objs: %d global (%d LT), %d local (%d LT), %d heap (%d LT)@,\
     narrows: %d ok, %d failed@]"
    t.base_instrs (ifp_total t)
    (ifp_count t Ifp_isa.Insn.Promote)
    t.promotes_valid t.cycles t.loads t.stores t.global_objs
    t.global_objs_layout t.local_objs t.local_objs_layout t.heap_objs
    t.heap_objs_layout t.narrows_ok t.narrows_failed
