lib/vm/counters.ml: Array Format Ifp_isa
