lib/vm/cost.ml: Ifp_isa
