lib/vm/counters.mli: Format Ifp_isa
