lib/vm/memmap.ml:
