lib/vm/vm.ml: Cost Counters Format Hashtbl Ifp_alloc Ifp_compiler Ifp_isa Ifp_machine Ifp_metadata Ifp_types Ifp_util Int64 List Memmap Option Printf
