lib/vm/cost.mli: Ifp_isa
