lib/vm/vm.mli: Counters Ifp_alloc Ifp_compiler Ifp_isa
