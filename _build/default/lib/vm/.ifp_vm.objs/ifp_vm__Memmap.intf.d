lib/vm/memmap.mli:
