(** Cycle-cost model, calibrated to the paper's CVA6-based prototype
    (single-issue in-order RV64, small L1).

    All single-cycle integer/IFP-ALU instructions cost {!alu}; the
    promote instruction is unpipelined and pays a base cost plus its
    metadata fetches through the D-cache, a per-element layout-walk cost,
    and a multi-cycle division per array-of-struct snap (§5.3: "complex
    state machines and multi-cycle division logic"). *)

val alu : int
val mul : int
val div : int
val fp : int
val branch : int
val call : int
val mem : int
(** Cycles for a cache hit access (beyond the instruction itself). *)

val miss_penalty : int
val promote_base : int
val walk_per_elem : int
val mac_check : int

val ifp_cycles : Ifp_isa.Insn.kind -> int
(** Cycles for the single-cycle-class IFP instructions ([promote] is
    costed separately by the VM). *)
