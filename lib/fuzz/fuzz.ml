module Job = Ifp_campaign.Job
module Vm = Ifp_vm.Vm
module Prng = Ifp_util.Prng
open Ifp_compiler

let salt = "fuzz-battery-v1"

let case_seed ~campaign_seed ~round ~idx =
  Prng.mix2 (Prng.mix2 campaign_seed (Int64.of_int round)) (Int64.of_int idx)

let subheap_config =
  List.assoc "ifp-subheap" Oracle.configs

let job ~knobs ~campaign_seed ~round ~idx =
  let seed = case_seed ~campaign_seed ~round ~idx in
  let prog = Gen.generate ~knobs ~seed () in
  Job.make ~salt
    ~name:(Printf.sprintf "fuzz/r%d/c%d" round idx)
    ~group:(Printf.sprintf "round%d" round)
    ~variant:"battery"
    ~config:{ subheap_config with Vm.seed }
    prog

let runner (j : Job.t) =
  let failures, golden = Oracle.check ~fault_seed:j.Job.config.Vm.seed j.Job.prog in
  {
    golden with
    Vm.outcome = Vm.Finished (if failures = [] then 0L else 1L);
    Vm.output = List.map Oracle.to_line failures;
    Vm.trace = [];
    Vm.fault_injections = [];
  }

let failures_of (r : Vm.result) = List.filter_map Oracle.of_line r.Vm.output

let reproduces ~fault_seed ~key text =
  match Parser.parse text with
  | exception _ -> false
  | p -> (
    match Typecheck.check_program p with
    | exception _ -> false
    | () ->
      let failures, _ = Oracle.check ~fault_seed p in
      List.exists (fun f -> String.equal (Oracle.failure_key f) key) failures)

let minimize ?(budget = 1200) ~fault_seed ~key prog =
  let keep cand = reproduces ~fault_seed ~key (Ir_pp.program_to_string cand) in
  let small = Shrink.minimize ~budget ~keep prog in
  (* canonicalize: the corpus stores the printed text, so make the
     returned AST the parse of that text (printing is then a fixpoint) *)
  let text = Ir_pp.program_to_string small in
  match Parser.parse text with p -> p | exception _ -> small

let check_source ?(fault_seed = 1L) src =
  match Parser.parse src with
  | exception Parser.Parse_error (m, l) ->
    Error (Printf.sprintf "line %d: parse error: %s" l m)
  | exception Lexer.Lex_error (m, l) ->
    Error (Printf.sprintf "line %d: lex error: %s" l m)
  | p -> (
    match Typecheck.check_program p with
    | exception Typecheck.Type_error m -> Error ("type error: " ^ m)
    | () -> Ok (fst (Oracle.check ~fault_seed p)))

(* ---- corpus ---------------------------------------------------------- *)

let text_digest src = String.sub (Digest.to_hex (Digest.string src)) 0 12

let corpus_write ~dir ~src ~seed ~keys =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let digest = text_digest src in
  let write path content =
    let oc = open_out path in
    output_string oc content;
    close_out oc
  in
  write (Filename.concat dir (digest ^ ".minic")) src;
  write
    (Filename.concat dir (digest ^ ".expect"))
    (Printf.sprintf "seed %Ld\n%s"
       seed
       (String.concat "" (List.map (fun k -> "failure " ^ k ^ "\n") keys)));
  digest

let corpus_entries ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".minic")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           let src = In_channel.with_open_text path In_channel.input_all in
           (Filename.chop_suffix f ".minic", src))
