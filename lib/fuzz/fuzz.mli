(** Campaign plumbing for the differential fuzzer: turning generated
    programs into {!Ifp_campaign.Job}s whose runner executes the whole
    oracle battery, minimizing failures into content-addressed corpus
    entries, and replaying them.

    One fuzz case = one job. The job's program is generated
    deterministically from [campaign_seed x round x index]; its config
    is the nominal ifp-subheap configuration with [config.seed] set to
    the case seed (which also seeds the fault plans), and a fuzz [salt]
    so battery results never share cache entries with plain runs of the
    same program. The runner returns a synthesized result whose outcome
    is [Finished 0] (all oracles agree) or [Finished 1] (divergence),
    with one {!Oracle.to_line} per failure in [output] — so the engine's
    cache, journal, resume and watchdog machinery applies to fuzz
    batteries unchanged, and a resumed campaign reaches the same report
    from journal replay alone. *)

val salt : string
(** Digest salt for battery jobs (versioned: bump when the battery
    semantics change, invalidating cached verdicts). *)

val case_seed : campaign_seed:int64 -> round:int -> idx:int -> int64

val job :
  knobs:Gen.knobs -> campaign_seed:int64 -> round:int -> idx:int ->
  Ifp_campaign.Job.t
(** @raise Gen.Gen_bug if the generator emits an invalid program. *)

val runner : Ifp_campaign.Job.t -> Ifp_vm.Vm.result
(** The battery: {!Oracle.check} with [fault_seed = config.seed]. *)

val failures_of : Ifp_vm.Vm.result -> Oracle.failure list
(** Decode a battery result's output lines (works on cached/journaled
    results too). *)

val minimize :
  ?budget:int -> fault_seed:int64 -> key:string ->
  Ifp_compiler.Ir.program -> Ifp_compiler.Ir.program
(** Shrink a diverging program while its printed text still re-parses,
    re-typechecks and reproduces a failure with key [key] under the same
    [fault_seed]. The result is re-parsed from its own printed text, so
    it is a parser-image program: printing it again is a fixpoint. *)

val check_source :
  ?fault_seed:int64 -> string -> (Oracle.failure list, string) result
(** Parse + typecheck + battery on MiniC source text; [Error] describes
    a parse/type failure. *)

(** Content-addressed counterexample corpus: [<digest>.minic] is the
    minimized program text ({!Ifp_compiler.Ir_pp} form), [<digest>.expect]
    a small sidecar recording the originating seed and failure keys. *)

val text_digest : string -> string
(** First 12 hex chars of the MD5 of the text. *)

val corpus_write :
  dir:string -> src:string -> seed:int64 -> keys:string list -> string
(** Writes (creating [dir] if needed); returns the digest. Idempotent
    for identical text. *)

val corpus_entries : dir:string -> (string * string) list
(** [(digest, source text)] for every [*.minic] in [dir], sorted by
    digest; empty if [dir] does not exist. *)
