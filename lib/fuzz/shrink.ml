open Ifp_compiler
module Ctype = Ifp_types.Ctype

(* ---- statement positions (pre-order over every function body) ------- *)

let count_stmts (p : Ir.program) =
  let rec block ss = List.fold_left (fun acc s -> acc + stmt s) 0 ss
  and stmt s =
    1
    +
    match s with
    | Ir.If (_, t, e) -> block t + block e
    | Ir.While (_, b) -> block b
    | _ -> 0
  in
  List.fold_left (fun acc f -> acc + block f.Ir.body) 0 p.Ir.funcs

(* rebuild the program with the [n]-th statement replaced by [f s]
   (deletion = [], unwrap = the branch's statements) *)
let edit_stmt_at (p : Ir.program) n (f : Ir.stmt -> Ir.stmt list) =
  let cnt = ref (-1) in
  let rec block ss = List.concat_map one ss
  and one s =
    incr cnt;
    if !cnt = n then f s
    else
      match s with
      | Ir.If (c, t, e) -> [ Ir.If (c, block t, block e) ]
      | Ir.While (c, b) -> [ Ir.While (c, block b) ]
      | s -> [ s ]
  in
  {
    p with
    Ir.funcs = List.map (fun fn -> { fn with Ir.body = block fn.Ir.body }) p.Ir.funcs;
  }

let stmt_at (p : Ir.program) n =
  let cnt = ref (-1) in
  let found = ref None in
  let rec block ss = List.iter one ss
  and one s =
    incr cnt;
    if !cnt = n then found := Some s;
    match s with
    | Ir.If (_, t, e) ->
      block t;
      block e
    | Ir.While (_, b) -> block b
    | _ -> ()
  in
  List.iter (fun fn -> block fn.Ir.body) p.Ir.funcs;
  !found

(* ---- expression positions (pre-order over every expr in the program) - *)

let expr_children = function
  | Ir.Binop (_, a, b) -> [ a; b ]
  | Ir.Unop (_, a)
  | Ir.Load (_, a)
  | Ir.Malloc (_, a)
  | Ir.Malloc_bytes a
  | Ir.Malloc_sized (_, a)
  | Ir.Cast (_, a)
  | Ir.Ifp_promote a ->
    [ a ]
  | Ir.Gep (_, b, steps) ->
    b
    :: List.filter_map
         (function Ir.S_index e -> Some e | Ir.S_field _ -> None)
         steps
  | Ir.Call (_, args) -> args
  | Ir.Int _ | Ir.Float _ | Ir.Var _ | Ir.Addr_local _ | Ir.Addr_global _
  | Ir.Load_global _ ->
    []

let fold_exprs (p : Ir.program) (f : 'a -> Ir.expr -> 'a) (init : 'a) =
  let acc = ref init in
  let rec expr e =
    acc := f !acc e;
    List.iter expr (expr_children e)
  in
  let rec stmt s =
    match s with
    | Ir.Let (_, _, e)
    | Ir.Assign (_, e)
    | Ir.Store_global (_, e)
    | Ir.Return (Some e)
    | Ir.Expr e
    | Ir.Free e ->
      expr e
    | Ir.Store (_, a, e) ->
      expr a;
      expr e
    | Ir.If (c, t, el) ->
      expr c;
      List.iter stmt t;
      List.iter stmt el
    | Ir.While (c, b) ->
      expr c;
      List.iter stmt b
    | Ir.Decl_local _ | Ir.Return None | Ir.Break | Ir.Continue
    | Ir.Ifp_register_local _ | Ir.Ifp_deregister_local _ ->
      ()
  in
  List.iter (fun fn -> List.iter stmt fn.Ir.body) p.Ir.funcs;
  !acc

let count_exprs p = fold_exprs p (fun n _ -> n + 1) 0

let expr_at (p : Ir.program) n =
  fold_exprs p
    (fun (i, found) e -> (i + 1, if i = n then Some e else found))
    (0, None)
  |> snd

(* rebuild the program with the [n]-th expression node replaced *)
let edit_expr_at (p : Ir.program) n (repl : Ir.expr) =
  let cnt = ref (-1) in
  let rec expr e =
    incr cnt;
    if !cnt = n then (
      (* keep the counter consistent: the replaced subtree's nodes no
         longer exist, but positions are recomputed per candidate *)
      ignore (fold_children e);
      repl)
    else rebuild e
  and fold_children e = List.iter count_subtree (expr_children e)
  and count_subtree e =
    incr cnt;
    List.iter count_subtree (expr_children e)
  and rebuild e =
    match e with
    | Ir.Binop (o, a, b) ->
      let a = expr a in
      let b = expr b in
      Ir.Binop (o, a, b)
    | Ir.Unop (o, a) -> Ir.Unop (o, expr a)
    | Ir.Load (t, a) -> Ir.Load (t, expr a)
    | Ir.Malloc (t, a) -> Ir.Malloc (t, expr a)
    | Ir.Malloc_bytes a -> Ir.Malloc_bytes (expr a)
    | Ir.Malloc_sized (t, a) -> Ir.Malloc_sized (t, expr a)
    | Ir.Cast (t, a) -> Ir.Cast (t, expr a)
    | Ir.Ifp_promote a -> Ir.Ifp_promote (expr a)
    | Ir.Gep (t, b, steps) ->
      let b = expr b in
      let steps =
        List.map
          (function
            | Ir.S_index e -> Ir.S_index (expr e)
            | Ir.S_field _ as s -> s)
          steps
      in
      Ir.Gep (t, b, steps)
    | Ir.Call (f, args) -> Ir.Call (f, List.map expr args)
    | Ir.Int _ | Ir.Float _ | Ir.Var _ | Ir.Addr_local _ | Ir.Addr_global _
    | Ir.Load_global _ ->
      e
  in
  let stmt_expr = expr in
  let rec stmt s =
    match s with
    | Ir.Let (v, t, e) -> Ir.Let (v, t, stmt_expr e)
    | Ir.Assign (v, e) -> Ir.Assign (v, stmt_expr e)
    | Ir.Store_global (g, e) -> Ir.Store_global (g, stmt_expr e)
    | Ir.Return (Some e) -> Ir.Return (Some (stmt_expr e))
    | Ir.Expr e -> Ir.Expr (stmt_expr e)
    | Ir.Free e -> Ir.Free (stmt_expr e)
    | Ir.Store (t, a, e) ->
      let a = stmt_expr a in
      let e = stmt_expr e in
      Ir.Store (t, a, e)
    | Ir.If (c, t, el) ->
      let c = stmt_expr c in
      Ir.If (c, List.map stmt t, List.map stmt el)
    | Ir.While (c, b) ->
      let c = stmt_expr c in
      Ir.While (c, List.map stmt b)
    | ( Ir.Decl_local _ | Ir.Return None | Ir.Break | Ir.Continue
      | Ir.Ifp_register_local _ | Ir.Ifp_deregister_local _ ) as s ->
      s
  in
  {
    p with
    Ir.funcs =
      List.map (fun fn -> { fn with Ir.body = List.map stmt fn.Ir.body }) p.Ir.funcs;
  }

(* ---- top-level drops ------------------------------------------------- *)

let drop_func p name =
  {
    p with
    Ir.funcs = List.filter (fun f -> not (String.equal f.Ir.fname name)) p.Ir.funcs;
  }

let drop_global p name =
  {
    p with
    Ir.globals =
      List.filter (fun g -> not (String.equal g.Ir.gname name)) p.Ir.globals;
  }

let drop_struct p name =
  let tenv =
    List.fold_left
      (fun env (n, def) ->
        if String.equal n name then env else Ctype.declare env def)
      Ctype.empty_tenv
      (Ctype.bindings p.Ir.tenv)
  in
  { p with Ir.tenv }

(* ---- the candidate lattice ------------------------------------------- *)

(* lazily enumerated one-edit candidates, coarsest edits first *)
let candidates (p : Ir.program) : Ir.program Seq.t =
  let funcs =
    List.filter_map
      (fun f -> if f.Ir.fname = "main" then None else Some f.Ir.fname)
      p.Ir.funcs
  in
  let drops =
    List.to_seq
      (List.map (fun n () -> drop_func p n) funcs
      @ List.map (fun (g : Ir.global) () -> drop_global p g.Ir.gname) p.Ir.globals
      @ List.map
          (fun (n, _) () -> drop_struct p n)
          (Ctype.bindings p.Ir.tenv))
  in
  let n_stmts = count_stmts p in
  let deletes =
    Seq.init n_stmts (fun i () -> edit_stmt_at p i (fun _ -> []))
  in
  let unwraps =
    Seq.concat_map
      (fun i ->
        match stmt_at p i with
        | Some (Ir.If (_, t, e)) ->
          List.to_seq
            [
              (fun () -> edit_stmt_at p i (fun _ -> t));
              (fun () -> edit_stmt_at p i (fun _ -> e));
            ]
        | Some (Ir.While (_, b)) ->
          List.to_seq [ (fun () -> edit_stmt_at p i (fun _ -> b)) ]
        | _ -> Seq.empty)
      (Seq.init n_stmts Fun.id)
  in
  let n_exprs = count_exprs p in
  let expr_edits =
    Seq.concat_map
      (fun i ->
        match expr_at p i with
        | None -> Seq.empty
        | Some e ->
          let repls =
            (match e with
            | Ir.Int 0L | Ir.Int 1L -> []
            | Ir.Int k when Int64.abs k > 1L -> [ Ir.Int (Int64.div k 2L) ]
            | _ -> [])
            @ [ Ir.Int 0L; Ir.Int 1L ]
            @ expr_children e
          in
          let repls =
            List.filter (fun r -> not (Ir.equal_expr r e)) repls
          in
          List.to_seq (List.map (fun r () -> edit_expr_at p i r) repls))
      (Seq.init n_exprs Fun.id)
  in
  Seq.concat
    (List.to_seq
       [
         drops;
         deletes;
         unwraps;
         Seq.map (fun f -> f) expr_edits;
       ])
  |> Seq.map (fun f -> f ())

let minimize ?(budget = 1200) ~keep p0 =
  if not (keep p0) then p0
  else begin
    let spent = ref 1 in
    let cur = ref p0 in
    let progress = ref true in
    while !progress && !spent < budget do
      progress := false;
      let seq = ref (candidates !cur) in
      let stop = ref false in
      while not !stop do
        match Seq.uncons !seq with
        | None -> stop := true
        | Some (cand, rest) ->
          if !spent >= budget then stop := true
          else begin
            incr spent;
            if keep cand then begin
              cur := cand;
              progress := true;
              stop := true
            end
            else seq := rest
          end
      done
    done;
    !cur
  end
