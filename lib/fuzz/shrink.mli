(** Greedy structural counterexample minimizer.

    {!minimize} repeatedly applies the smallest structural edit that
    keeps the caller's [keep] predicate true, restarting from the top of
    the edit lattice after every accepted edit, until a fixpoint (no
    single edit is keepable) or the [budget] of [keep] evaluations is
    exhausted. The edit lattice, coarsest first:

    + drop a whole non-[main] function, global, or struct;
    + delete one statement (at any nesting depth);
    + unwrap a control statement ([if] to one of its branches, [while]
      to its body or to nothing);
    + replace one expression with [0], [1], one of its direct
      subexpressions, or (for literals) its half.

    Candidates are not guaranteed well-typed — [keep] is expected to
    reject anything that fails to re-parse or re-typecheck (the fuzz
    driver's predicate prints, re-parses, re-typechecks and re-runs the
    oracle battery, so minimized repros are parser-image programs whose
    failure key is preserved by construction). *)

val minimize :
  ?budget:int ->
  keep:(Ifp_compiler.Ir.program -> bool) ->
  Ifp_compiler.Ir.program ->
  Ifp_compiler.Ir.program
(** [keep] must hold for the input (otherwise the input is returned
    unchanged). Default [budget] is 1200 [keep] evaluations. *)
