(** The three differential oracles of the fuzz campaign.

    Given one (generated or replayed) well-typed program, {!check} runs
    the full battery and returns every disagreement found:

    - oracle [engines] — for each configuration of {!configs}, the
      slot-resolved interpreter, the reference tree-walker and the
      closure-compiled engine must produce bit-identical observable
      signatures ({!result_sig}: outcome, every counter, IFP trace,
      cache statistics, footprint, output);
    - oracle [equivalence] — on a well-defined program (baseline run
      finishes), every IFP configuration must finish with the same exit
      value and the same output as baseline: instrumentation may change
      costs, never behavior;
    - oracle [faults] — an armed {!Ifp_faultinject} plan of each
      defended class against the subheap configuration must never
      classify as silent corruption: the defense either detects the
      corruption, aborts, or the fault was never consumed.

    A baseline run that does not finish is reported as oracle
    [wellformed] — a generator bug surfaced through the same pipeline.

    Each failure carries a stable [oracle/site] key used for
    counterexample dedup and for the shrinker's
    "still the same failure" predicate. *)

type failure = {
  oracle : string;  (** [engines] | [equivalence] | [faults] | [wellformed] *)
  site : string;  (** config, config/engine, or fault class *)
  detail : string;  (** first divergent signature lines, outcome, ... *)
}

val configs : (string * Ifp_vm.Vm.config) list
(** baseline, ifp-subheap (tracing), ifp-wrapped — each with a generous
    fixed cycle budget so instrumentation overhead can never turn a
    well-defined program into a budget abort. *)

val engines :
  (string * (Ifp_vm.Vm.config -> Ifp_compiler.Ir.program -> Ifp_vm.Vm.result))
  list

val defended : Ifp_faultinject.Fault.fault_class list
(** Every class except [Heap_smash] (data smashes are out of the
    architectural detection contract) and the temporal classes
    ([Uaf_use], [Double_free] — a spatial-only configuration is not
    contracted to catch a legitimately-freed record; they get their own
    battery in {!check_temporal}). Exactly the pre-temporal list, so
    cached battery verdicts stay valid. *)

val temporal_defended : Ifp_faultinject.Fault.fault_class list
(** [[Uaf_use; Double_free]] — the classes {!check_temporal} arms. *)

val temporal_configs : (string * Ifp_vm.Vm.config) list
(** The IFP configs of {!configs} with [temporal = true]
    (ifp-subheap-t, ifp-wrapped-t). *)

val result_sig : Ifp_vm.Vm.result -> string
(** Every observable field of a run folded into a line-oriented string;
    two runs are equivalent iff their signatures are equal. *)

val failure_key : failure -> string
(** ["oracle/site"] — the dedup and shrink-preservation key. *)

val to_line : failure -> string
(** One-line rendering (detail escaped); inverse of {!of_line}. *)

val of_line : string -> failure option

val check :
  ?fault_seed:int64 ->
  Ifp_compiler.Ir.program ->
  failure list * Ifp_vm.Vm.result
(** Runs the battery: 3 configs x 3 engines agreement, baseline-vs-IFP
    equivalence, and one armed plan per defended class (plan seeds
    derived from [fault_seed], default 1). Also returns the nominal
    ifp-subheap result (the golden run) so campaign runners can reuse
    it. Deterministic in [program x fault_seed]. *)

val check_temporal :
  ?fault_seed:int64 ->
  ?expect_fault:bool ->
  Ifp_compiler.Ir.program ->
  failure list
(** The temporal battery, over {!temporal_configs}:

    - oracle [engines] — the three engines must agree bit-identically
      under temporal configurations too;
    - with [expect_fault:true] (a program generated with
      {!Gen.knobs}[.temporal]): oracle [temporal] — the run must end in
      a temporal trap ([Use_after_free] / [Write_to_freed] /
      [Double_free]), never finish and never trap for a spatial reason;
    - with [expect_fault:false] (default, a safe program): the run must
      finish, and one armed plan per {!temporal_defended} class must
      never classify as silent corruption (oracle [temporal-faults]) —
      temporal-mode IFP either detects the injected free, aborts, or the
      trigger never fired. *)
