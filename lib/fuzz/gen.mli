(** Seeded, size-bounded MiniC program generator for differential
    fuzzing.

    The generator emits {e surface-syntax text} built by a typed
    construction discipline — every variable, lvalue path and operand is
    tracked with its type, array extents are powers of two and every
    dynamic index is masked to its extent, divisions and shifts are
    guarded, loops are bounded — so every generated program parses,
    typechecks and terminates by construction. {!generate} additionally
    runs the real parser and typechecker and raises {!Gen_bug} on any
    violation, so a generator bug can never masquerade as an engine
    divergence.

    Generated programs are memory-safe: under the differential oracles
    ({!Oracle}) the baseline and IFP configurations must behave
    identically on them, and the three engines must agree bit-for-bit.

    Everything is driven by one {!Ifp_util.Prng} stream: the same
    [seed × knobs] always yields byte-identical source. *)

type knobs = {
  stmts : int;  (** statement budget for main's random section *)
  expr_depth : int;  (** max expression nesting depth *)
  block_depth : int;  (** max if/while nesting depth *)
  extra_structs : int;  (** struct types beyond the fixed node struct S0 *)
  extra_fields : int;  (** max extra narrow scalar fields per struct *)
  ptr_density : int;
      (** 0..100: weight of pointer-derivation / allocation statements *)
  graze : bool;
      (** emit boundary-grazing accesses: index 0, extent-1 and
          full-extent loops rather than only masked random indices *)
  floats : bool;  (** include f64 locals, fields and float arithmetic *)
  helpers : bool;  (** emit callable helper functions (incl. a legacy one) *)
  list_len : int;  (** length of the linked-list prologue (>= 1) *)
  temporal : bool;
      (** emit one deliberate temporal-fault composite (use-after-free,
          write-to-freed or double-free, chosen by the seed): the pointer
          round-trips through heap memory and the freed chunk is churned
          with a same-typed allocation, so a temporal-mode run traps at
          the promote/access while baseline and spatial-only IFP run to
          completion. Programs generated with this knob are deliberately
          NOT memory-safe — feed them to {!Oracle.check_temporal} with
          [~expect_fault:true], never to {!Oracle.check}. Off by default;
          when off, no extra PRNG draws happen, so a given seed yields
          byte-identical source either way. *)
}

val default : knobs
(** The campaign shape: ~40-line programs covering every statement and
    expression form. *)

val quick : knobs
(** Smaller programs for smoke tests and CI. *)

exception Gen_bug of string
(** A generated program failed to parse or typecheck — a bug in the
    generator itself, never a property of the engines under test. *)

val source : ?knobs:knobs -> seed:int64 -> unit -> string
(** The generated MiniC source text. Deterministic in [seed] and
    [knobs]. *)

val generate : ?knobs:knobs -> seed:int64 -> unit -> Ifp_compiler.Ir.program
(** [source] fed through the real {!Ifp_compiler.Parser} and
    {!Ifp_compiler.Typecheck}.
    @raise Gen_bug if either rejects the program. *)
