(* Seeded MiniC generator: typed construction of surface text.

   The generator keeps a symbol table of everything it has brought into
   scope — integer registers, float registers, indexable array lvalue
   paths with their (power-of-two) extents, derived i64* pointers with
   their safe remaining extents, non-null linked-list node pointers —
   and only composes phrases whose types it knows. Safety discipline:

   - every dynamic index is masked with [& (extent-1)] against the
     lvalue's tracked extent (extents are powers of two);
   - a derived pointer [&base[c]] records remaining extent [extent - c],
     with [c] chosen so the remainder is again a power of two (IFP
     narrowing keeps the innermost array subobject, so indices
     [0 .. extent-1-c] stay in bounds — verified empirically against
     the subheap configuration);
   - divisions/remainders are guarded ([(e & 7) + 1]), shifts masked;
   - every loop is a fresh bounded counter; [continue] only appears in
     increment-first loops, [break] anywhere;
   - float expressions are float-typed at every node (the parser
     coerces int operands with I2F exactly where we allow them);
   - no pointer-to-int casts, no frees of tracked pointers (only a
     self-contained alloc/use/free composite). *)

module Prng = Ifp_util.Prng

type knobs = {
  stmts : int;
  expr_depth : int;
  block_depth : int;
  extra_structs : int;
  extra_fields : int;
  ptr_density : int;
  graze : bool;
  floats : bool;
  helpers : bool;
  list_len : int;
  temporal : bool;
}

let default =
  {
    stmts = 16;
    expr_depth = 3;
    block_depth = 2;
    extra_structs = 2;
    extra_fields = 2;
    ptr_density = 40;
    graze = true;
    floats = true;
    helpers = true;
    list_len = 3;
    temporal = false;
  }

let quick =
  {
    stmts = 8;
    expr_depth = 2;
    block_depth = 1;
    extra_structs = 1;
    extra_fields = 1;
    ptr_density = 40;
    graze = true;
    floats = false;
    helpers = true;
    list_len = 2;
    temporal = false;
  }

exception Gen_bug of string

(* an indexable int-array lvalue: [path][i] loads/stores i64 for
   i in [0, ext), ext a power of two *)
type arr = { path : string; ext : int }

(* a struct type's shape, as far as the generator uses it *)
type smeta = {
  sname : string;
  arr_ext : int option;  (** extent of the [arr] field, if present *)
  narrows : (string * string) list;  (** (field, width) narrow scalars *)
  has_w : bool;  (** f64 field [w] *)
  has_inner : bool;  (** [inner : S0] by-value field *)
}

type st = {
  rng : Prng.t;
  k : knobs;
  b : Buffer.t;
  mutable ind : int;
  mutable fresh : int;
  mutable ints : string list;  (** i64 register variables *)
  mutable fvars : string list;  (** f64 register variables *)
  mutable arrays : arr list;
  mutable iptrs : (string * int) list;  (** i64* vars, safe extent *)
  mutable nodes : string list;  (** non-null S0* variables *)
  mutable iplaces : string list;  (** scalar int lvalue paths *)
  mutable fplaces : string list;  (** f64 lvalue paths *)
}

let pct st p = Prng.int st.rng 100 < p
let pick st l = List.nth l (Prng.int st.rng (List.length l))

(* names declared inside a nested block go out of scope with it; the
   symbol table must forget them or a later statement could reference a
   dead (or never-initialized) variable *)
let snapshot st =
  (st.ints, st.fvars, st.arrays, st.iptrs, st.nodes, st.iplaces, st.fplaces)

let restore st (a, b, c, d, e, f, g) =
  st.ints <- a;
  st.fvars <- b;
  st.arrays <- c;
  st.iptrs <- d;
  st.nodes <- e;
  st.iplaces <- f;
  st.fplaces <- g

(* "i8", "f64", ... are type keywords; never hand them out as names *)
let reserved = [ "i8"; "i16"; "i32"; "i64"; "f32"; "f64" ]

let rec fresh st pfx =
  st.fresh <- st.fresh + 1;
  let name = Printf.sprintf "%s%d" pfx st.fresh in
  if List.mem name reserved then fresh st pfx else name

let line st fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string st.b (String.make (2 * st.ind) ' ');
      Buffer.add_string st.b s;
      Buffer.add_char st.b '\n')
    fmt

let blank st = Buffer.add_char st.b '\n'

(* power-of-two extents keep index masking exact *)
let pow2_ext st = pick st [ 4; 4; 8; 8; 16 ]

(* ---- expressions ----------------------------------------------------- *)

(* an index expression guaranteed in [0, ext) *)
let rec index_expr st ext =
  if st.k.graze && pct st 35 then
    string_of_int (pick st [ 0; 0; ext - 1; ext / 2 ])
  else if pct st 50 then string_of_int (Prng.int st.rng ext)
  else Printf.sprintf "(%s & %d)" (int_expr st 1) (ext - 1)

and int_leaf st =
  let lits () =
    if pct st 15 then Printf.sprintf "-%d" (1 + Prng.int st.rng 8)
    else string_of_int (Prng.int st.rng 17)
  in
  let choices =
    [ (fun () -> lits ()); (fun () -> pick st st.ints); (fun () -> "g0") ]
    @ (if st.iplaces <> [] then [ (fun () -> pick st st.iplaces) ] else [])
    @ (if st.arrays <> [] then
         [
           (fun () ->
             let a = pick st st.arrays in
             Printf.sprintf "%s[%s]" a.path (index_expr st a.ext));
         ]
       else [])
    @
    if st.iptrs <> [] then
      [
        (fun () ->
          let p, ext = pick st st.iptrs in
          Printf.sprintf "%s[%s]" p (index_expr st ext));
      ]
    else []
  in
  (pick st choices) ()

and int_expr st d =
  if d <= 0 then int_leaf st
  else
    match Prng.int st.rng 12 with
    | 0 | 1 | 2 ->
      Printf.sprintf "(%s %s %s)"
        (int_expr st (d - 1))
        (pick st [ "+"; "+"; "-"; "*" ])
        (int_expr st (d - 1))
    | 3 ->
      Printf.sprintf "(%s %s %s)"
        (int_expr st (d - 1))
        (pick st [ "&"; "|"; "^" ])
        (int_expr st (d - 1))
    | 4 ->
      Printf.sprintf "(%s %s (%s & 7))"
        (int_expr st (d - 1))
        (pick st [ "<<"; ">>" ])
        (int_expr st (d - 1))
    | 5 ->
      Printf.sprintf "(%s %s ((%s & 7) + 1))"
        (int_expr st (d - 1))
        (pick st [ "/"; "%" ])
        (int_expr st (d - 1))
    | 6 ->
      Printf.sprintf "(%s %s %s)"
        (int_expr st (d - 1))
        (pick st [ "<"; "<="; "=="; "!="; ">"; ">=" ])
        (int_expr st (d - 1))
    | 7 when st.k.helpers ->
      Printf.sprintf "hmix(%s, %s)" (int_expr st (d - 1)) (int_expr st (d - 1))
    | 8 -> Printf.sprintf "(~%s)" (int_leaf st)
    | 9 -> Printf.sprintf "(!%s)" (int_leaf st)
    | _ -> int_leaf st

and float_leaf st =
  let lit () = pick st [ "0.5"; "1.5"; "2.0"; "0.25"; "3.5"; "1.0"; "0.125" ] in
  let choices =
    [ (fun () -> lit ()) ]
    @ (if st.fvars <> [] then [ (fun () -> pick st st.fvars) ] else [])
    @ if st.fplaces <> [] then [ (fun () -> pick st st.fplaces) ] else []
  in
  (pick st choices) ()

and float_expr st d =
  if d <= 0 then float_leaf st
  else
    match Prng.int st.rng 6 with
    | 0 | 1 ->
      Printf.sprintf "(%s %s %s)"
        (float_expr st (d - 1))
        (pick st [ "+"; "-"; "*" ])
        (float_expr st (d - 1))
    (* int operand on the right: the parser coerces it with I2F *)
    | 2 -> Printf.sprintf "(%s + %s)" (float_expr st (d - 1)) (int_expr st 1)
    | 3 -> Printf.sprintf "(%s / 2.0)" (float_expr st (d - 1))
    | _ -> float_leaf st

and cond st =
  match Prng.int st.rng 6 with
  | 0 | 1 ->
    Printf.sprintf "(%s %s %s)" (int_expr st 1)
      (pick st [ "<"; "<="; "=="; "!=" ])
      (int_expr st 1)
  | 2 -> Printf.sprintf "(%s && %s)" (cond st) (cond st)
  | 3 -> Printf.sprintf "(!%s)" (cond st)
  | 4 when st.k.floats && (st.fvars <> [] || st.fplaces <> []) ->
    Printf.sprintf "(%s %s %s)" (float_expr st 1)
      (pick st [ "<"; "<="; "==" ])
      (float_expr st 1)
  | _ ->
    Printf.sprintf "(%s %s %s)" (int_expr st 1)
      (pick st [ "<"; ">" ])
      (int_expr st 1)

(* ---- statements ------------------------------------------------------ *)

(* a bounded init loop writing every element of [a] *)
let init_loop st (a : arr) =
  let i = fresh st "i" in
  line st "let %s: i64 = 0;" i;
  line st "while (%s < %d) {" i a.ext;
  st.ind <- st.ind + 1;
  line st "%s[%s] = (%s * %d + %d);" a.path i i
    (1 + Prng.int st.rng 5)
    (Prng.int st.rng 9);
  line st "%s = (%s + 1);" i i;
  st.ind <- st.ind - 1;
  line st "}"

let rec emit_stmt st ~bdepth ~in_loop =
  let d = st.k.expr_depth in
  let ptr_heavy = pct st st.k.ptr_density in
  let choice = Prng.int st.rng (if bdepth > 0 then 14 else 11) in
  match choice with
  | 0 | 1 -> line st "%s = %s;" (pick st st.ints) (int_expr st d)
  | 2 ->
    let x = fresh st "x" in
    line st "let %s: i64 = %s;" x (int_expr st d);
    st.ints <- x :: st.ints
  | 3 when st.arrays <> [] ->
    let a = pick st st.arrays in
    line st "%s[%s] = %s;" a.path (index_expr st a.ext) (int_expr st (d - 1))
  | 4 when ptr_heavy && st.arrays <> [] ->
    (* derive a pointer into an array subobject; remaining extent stays a
       power of two so masking remains exact *)
    let a = pick st st.arrays in
    let c =
      if st.k.graze && pct st 30 then a.ext - 1
      else pick st [ 0; 0; a.ext / 2 ]
    in
    let rem = a.ext - c in
    let rem = if rem land (rem - 1) <> 0 then 1 else rem in
    let q = fresh st "q" in
    line st "let %s: i64* = &%s[%d];" q a.path c;
    st.iptrs <- (q, rem) :: st.iptrs
  | 5 when st.iptrs <> [] ->
    let p, ext = pick st st.iptrs in
    line st "%s[%s] = %s;" p (index_expr st ext) (int_expr st (d - 1))
  | 6 when st.nodes <> [] ->
    let n = pick st st.nodes in
    (match Prng.int st.rng 3 with
    | 0 -> line st "%s->value = %s;" n (int_expr st (d - 1))
    | 1 -> line st "%s->tag = %s;" n (int_expr st 1)
    | _ ->
      (* guarded hop through the list: next may be null *)
      line st "if (%s->next != null(S0)) {" n;
      st.ind <- st.ind + 1;
      line st "%s->next->value = (%s->next->value + %s);" n n (int_expr st 1);
      st.ind <- st.ind - 1;
      line st "}")
  | 7 when st.k.floats && st.fvars <> [] ->
    if st.fplaces <> [] && pct st 40 then
      line st "%s = %s;" (pick st st.fplaces) (float_expr st (d - 1))
    else line st "%s = %s;" (pick st st.fvars) (float_expr st (d - 1))
  | 8 -> line st "g0 = (g0 + %s);" (int_expr st (d - 1))
  | 9 -> line st "__print_i64(%s);" (int_expr st (d - 1))
  | 10 ->
    if st.k.helpers && st.iptrs <> [] && pct st 50 then (
      let p, ext = pick st st.iptrs in
      let x = fresh st "x" in
      line st "let %s: i64 = hsum(%s, %d);" x p ext;
      st.ints <- x :: st.ints)
    else if st.k.helpers && st.nodes <> [] && pct st 50 then
      line st "%s = (%s + hchase(%s));" (pick st st.ints) (pick st st.ints)
        (pick st st.nodes)
    else if st.k.helpers && pct st 50 then
      line st "%s = hleg(%s);" (pick st st.ints) (int_expr st 1)
    else if ptr_heavy then (
      (* self-contained alloc / use / free composite *)
      let c = fresh st "c" in
      line st "let %s: i64* = malloc(i64, 4);" c;
      line st "%s[0] = %s;" c (int_expr st 1);
      line st "%s[1] = (%s[0] + 1);" c c;
      line st "%s = (%s ^ %s[1]);" (pick st st.ints) (pick st st.ints) c;
      line st "free(%s);" c)
    else if ptr_heavy then ()
    else line st "%s = %s;" (pick st st.ints) (int_expr st d)
  | 11 (* if *) ->
    let snap = snapshot st in
    line st "if %s {" (cond st);
    st.ind <- st.ind + 1;
    emit_block st ~bdepth:(bdepth - 1) ~in_loop ~n:(1 + Prng.int st.rng 3);
    st.ind <- st.ind - 1;
    restore st snap;
    if pct st 50 then begin
      line st "} else {";
      st.ind <- st.ind + 1;
      emit_block st ~bdepth:(bdepth - 1) ~in_loop ~n:(1 + Prng.int st.rng 2);
      st.ind <- st.ind - 1;
      restore st snap
    end;
    line st "}"
  | 12 (* counter loop, increment-last; may break *) ->
    let i = fresh st "i" in
    let bound = 2 + Prng.int st.rng 5 in
    let snap = snapshot st in
    line st "let %s: i64 = 0;" i;
    line st "while (%s < %d) {" i bound;
    st.ind <- st.ind + 1;
    emit_block st ~bdepth:(bdepth - 1) ~in_loop:true ~n:(1 + Prng.int st.rng 2);
    if pct st 25 then begin
      line st "if %s {" (cond st);
      st.ind <- st.ind + 1;
      line st "break;";
      st.ind <- st.ind - 1;
      line st "}"
    end;
    line st "%s = (%s + 1);" i i;
    st.ind <- st.ind - 1;
    restore st snap;
    line st "}"
  | 13 (* increment-first loop: continue is safe *) ->
    let i = fresh st "i" in
    let bound = 2 + Prng.int st.rng 5 in
    let snap = snapshot st in
    line st "let %s: i64 = 0;" i;
    line st "while (%s < %d) {" i bound;
    st.ind <- st.ind + 1;
    line st "%s = (%s + 1);" i i;
    line st "if %s {" (cond st);
    st.ind <- st.ind + 1;
    line st "continue;";
    st.ind <- st.ind - 1;
    line st "}";
    emit_block st ~bdepth:(bdepth - 1) ~in_loop:true ~n:(1 + Prng.int st.rng 2);
    st.ind <- st.ind - 1;
    restore st snap;
    line st "}"
  | _ ->
    ignore in_loop;
    line st "%s = %s;" (pick st st.ints) (int_expr st d)

and emit_block st ~bdepth ~in_loop ~n =
  for _ = 1 to n do
    emit_stmt st ~bdepth ~in_loop
  done

(* ---- structs --------------------------------------------------------- *)

let narrow_widths = [ "i8"; "i16"; "i32" ]

let make_metas st =
  let s0 =
    {
      sname = "S0";
      arr_ext = Some (pow2_ext st);
      narrows = [ ("tag", pick st narrow_widths) ];
      has_w = st.k.floats;
      has_inner = false;
    }
  in
  let extras =
    List.init st.k.extra_structs (fun j ->
        {
          sname = Printf.sprintf "S%d" (j + 1);
          arr_ext = (if pct st 70 then Some (pow2_ext st) else None);
          narrows =
            List.init
              (Prng.int st.rng (st.k.extra_fields + 1))
              (fun i -> (Printf.sprintf "m%d" i, pick st narrow_widths));
          has_w = st.k.floats && pct st 50;
          has_inner = pct st 50;
        })
  in
  s0 :: extras

let emit_struct st (m : smeta) =
  line st "struct %s {" m.sname;
  st.ind <- st.ind + 1;
  line st "i64 value;";
  (match m.arr_ext with
  | Some e -> line st "i64 arr[%d];" e
  | None -> ());
  if m.has_inner then line st "S0 inner;";
  List.iter (fun (f, w) -> line st "%s %s;" w f) m.narrows;
  if m.has_w then line st "f64 w;";
  if m.sname = "S0" then line st "S0* next;";
  st.ind <- st.ind - 1;
  line st "};"

(* ---- helpers --------------------------------------------------------- *)

let emit_helpers st =
  line st "i64 hmix(i64 x, i64 y) {";
  line st "  return (((x + y) ^ (x >> 3)) * 17 + 1);";
  line st "}";
  blank st;
  line st "i64 hsum(i64* p, i64 n) {";
  line st "  let acc: i64 = 0;";
  line st "  let i: i64 = 0;";
  line st "  while (i < n) {";
  line st "    acc = (acc + p[i]);";
  line st "    i = (i + 1);";
  line st "  }";
  line st "  return acc;";
  line st "}";
  blank st;
  line st "i64 hchase(S0* p) {";
  line st "  let acc: i64 = 0;";
  line st "  while (p != null(S0)) {";
  line st "    acc = (acc + p->value);";
  line st "    p = p->next;";
  line st "  }";
  line st "  return acc;";
  line st "}";
  blank st;
  line st "legacy i64 hleg(i64 x) {";
  line st "  return (x * 3 + 7);";
  line st "}";
  blank st

(* ---- program --------------------------------------------------------- *)

let source ?(knobs = default) ~seed () =
  let st =
    {
      rng = Prng.create seed;
      k = knobs;
      b = Buffer.create 4096;
      ind = 0;
      fresh = 0;
      ints = [];
      fvars = [];
      arrays = [];
      iptrs = [];
      nodes = [];
      iplaces = [];
      fplaces = [];
    }
  in
  let metas = make_metas st in
  let s0 = List.hd metas in
  let s0_ext = Option.get s0.arr_ext in
  List.iter (fun m -> emit_struct st m) metas;
  blank st;
  (* globals *)
  line st "global i64 g0;";
  let have_ga = pct st 60 in
  if have_ga then line st "global i64 ga[8];";
  let have_gs = pct st 50 in
  if have_gs then line st "global S0 gs;";
  blank st;
  if st.k.helpers then emit_helpers st;
  (* main *)
  line st "i64 main() {";
  st.ind <- 1;
  if have_ga then st.arrays <- { path = "ga"; ext = 8 } :: st.arrays;
  if have_gs then begin
    st.arrays <- { path = "gs.arr"; ext = s0_ext } :: st.arrays;
    st.iplaces <- "gs.value" :: st.iplaces
  end;
  (* linked-list prologue: n1 .. n<len>, each pointing at the previous *)
  let prev = ref None in
  for _ = 1 to max 1 st.k.list_len do
    let n = fresh st "n" in
    line st "let %s: S0* = malloc(S0);" n;
    line st "%s->value = %d;" n (Prng.int st.rng 50);
    line st "%s->tag = %d;" n (Prng.int st.rng 100);
    if s0.has_w then line st "%s->w = %s;" n (pick st [ "0.5"; "2.0"; "1.25" ]);
    (match !prev with
    | None -> line st "%s->next = null(S0);" n
    | Some p -> line st "%s->next = %s;" n p);
    init_loop st { path = n ^ "->arr"; ext = s0_ext };
    st.nodes <- n :: st.nodes;
    st.iplaces <- (n ^ "->value") :: (n ^ "->tag") :: st.iplaces;
    if s0.has_w then st.fplaces <- (n ^ "->w") :: st.fplaces;
    prev := Some n
  done;
  let head = Option.get !prev in
  (* the head node's array is the always-present indexable path *)
  st.arrays <- { path = head ^ "->arr"; ext = s0_ext } :: st.arrays;
  (* heap int array *)
  let p0 = fresh st "p" in
  let p0_ext = pow2_ext st in
  line st "let %s: i64* = malloc(i64, %d);" p0 p0_ext;
  init_loop st { path = p0; ext = p0_ext };
  st.iptrs <- (p0, p0_ext) :: st.iptrs;
  st.arrays <- { path = p0; ext = p0_ext } :: st.arrays;
  (* stack int array *)
  let a0 = fresh st "a" in
  let a0_ext = pow2_ext st in
  line st "var %s: i64[%d];" a0 a0_ext;
  init_loop st { path = a0; ext = a0_ext };
  st.arrays <- { path = a0; ext = a0_ext } :: st.arrays;
  (* stack struct of a random shape *)
  let tm = pick st metas in
  let t0 = fresh st "t" in
  line st "var %s: %s;" t0 tm.sname;
  line st "%s.value = %d;" t0 (Prng.int st.rng 40);
  st.iplaces <- (t0 ^ ".value") :: st.iplaces;
  (match tm.arr_ext with
  | Some e ->
    init_loop st { path = t0 ^ ".arr"; ext = e };
    st.arrays <- { path = t0 ^ ".arr"; ext = e } :: st.arrays
  | None -> ());
  List.iter
    (fun (f, _) ->
      line st "%s.%s = %d;" t0 f (Prng.int st.rng 60);
      st.iplaces <- Printf.sprintf "%s.%s" t0 f :: st.iplaces)
    tm.narrows;
  if tm.has_w then begin
    line st "%s.w = 1.5;" t0;
    st.fplaces <- (t0 ^ ".w") :: st.fplaces
  end;
  if tm.has_inner then begin
    line st "%s.inner.value = %d;" t0 (Prng.int st.rng 30);
    st.iplaces <- (t0 ^ ".inner.value") :: st.iplaces;
    init_loop st { path = t0 ^ ".inner.arr"; ext = s0_ext };
    st.arrays <- { path = t0 ^ ".inner.arr"; ext = s0_ext } :: st.arrays
  end;
  (* integer and float registers *)
  for _ = 1 to 3 do
    let x = fresh st "x" in
    line st "let %s: i64 = %d;" x (Prng.int st.rng 32);
    st.ints <- x :: st.ints
  done;
  if st.k.floats then begin
    let f = fresh st "f" in
    line st "let %s: f64 = %s;" f (pick st [ "0.75"; "2.5"; "1.0" ]);
    st.fvars <- [ f ]
  end;
  blank st;
  (* random body *)
  for _ = 1 to st.k.stmts do
    emit_stmt st ~bdepth:st.k.block_depth ~in_loop:false
  done;
  blank st;
  (* temporal-fault composite (knob-gated; no PRNG draws when off, so
     seeds yield byte-identical source with [temporal = false]): park a
     node pointer in a heap holder, free it, churn with a same-typed
     allocation so a recycling allocator re-issues the chunk, then
     reload the stale pointer from memory and misuse it. The memory
     round-trip matters: the reload is a promote, which is where the
     generation check lives — register-resident stale pointers are the
     documented blind spot. *)
  if st.k.temporal then begin
    let h = fresh st "h" and d = fresh st "d" and e = fresh st "e" in
    line st "let %s: S0* = malloc(S0);" h;
    line st "%s->next = null(S0);" h;
    line st "let %s: S0* = malloc(S0);" d;
    line st "%s->value = %d;" d (Prng.int st.rng 50);
    line st "%s->next = null(S0);" d;
    line st "%s->next = %s;" h d;
    line st "free(%s);" d;
    line st "let %s: S0* = malloc(S0);" e;
    line st "%s->value = %d;" e (Prng.int st.rng 50);
    line st "%s->next = null(S0);" e;
    (match Prng.int st.rng 3 with
    | 0 -> line st "g0 = (g0 + %s->next->value);" h (* use after free *)
    | 1 -> line st "%s->next->value = %d;" h (Prng.int st.rng 9)
      (* write to freed *)
    | _ -> line st "free(%s->next);" h (* double free *));
    blank st
  end;
  (* checksum epilogue: fold every piece of data into acc *)
  line st "let acc: i64 = g0;";
  List.iter (fun x -> line st "acc = (acc * 31 + %s);" x) st.ints;
  List.iter (fun pl -> line st "acc = (acc * 31 + %s);" pl) st.iplaces;
  List.iter
    (fun (a : arr) ->
      let i = fresh st "i" in
      line st "let %s: i64 = 0;" i;
      line st "while (%s < %d) {" i a.ext;
      st.ind <- st.ind + 1;
      line st "acc = ((acc * 31) ^ %s[%s]);" a.path i;
      line st "%s = (%s + 1);" i i;
      st.ind <- st.ind - 1;
      line st "}")
    st.arrays;
  if st.k.helpers then line st "acc = (acc + hchase(%s));" head
  else begin
    let cur = fresh st "n" in
    line st "let %s: S0* = %s;" cur head;
    line st "while (%s != null(S0)) {" cur;
    st.ind <- st.ind + 1;
    line st "acc = (acc + %s->value);" cur;
    line st "%s = %s->next;" cur cur;
    st.ind <- st.ind - 1;
    line st "}"
  end;
  List.iter
    (fun f ->
      line st "if (%s < 100000.0) {" f;
      st.ind <- st.ind + 1;
      line st "acc = (acc + 1);";
      st.ind <- st.ind - 1;
      line st "}")
    (st.fvars @ st.fplaces);
  line st "__print_i64(acc);";
  line st "__print_i64(g0);";
  line st "return (acc & 0xffff);";
  st.ind <- 0;
  line st "}";
  Buffer.contents st.b

let generate ?(knobs = default) ~seed () =
  let src = source ~knobs ~seed () in
  let prog =
    try Ifp_compiler.Parser.parse src with
    | Ifp_compiler.Parser.Parse_error (m, l) ->
      raise
        (Gen_bug (Printf.sprintf "seed %Ld: parse error at line %d: %s" seed l m))
    | Ifp_compiler.Lexer.Lex_error (m, l) ->
      raise
        (Gen_bug (Printf.sprintf "seed %Ld: lex error at line %d: %s" seed l m))
  in
  (try Ifp_compiler.Typecheck.check_program prog with
  | Ifp_compiler.Typecheck.Type_error m ->
    raise (Gen_bug (Printf.sprintf "seed %Ld: type error: %s" seed m)));
  prog
