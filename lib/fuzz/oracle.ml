module Vm = Ifp_vm.Vm
module Vm_ref = Ifp_vm.Vm_ref
module Vm_closure = Ifp_vm.Vm_closure
module Counters = Ifp_vm.Counters
module Trap = Ifp_isa.Trap
module Fault = Ifp_faultinject.Fault
module Classify = Ifp_faultinject.Classify
module Prng = Ifp_util.Prng

type failure = { oracle : string; site : string; detail : string }

(* generous fixed budget: IFP instrumentation overhead must never turn a
   terminating program into a budget abort, but a fault-corrupted run
   sent spinning must still die deterministically *)
let budget = 2_000_000

let configs =
  [
    ("baseline", { Vm.baseline with max_cycles = budget });
    ("ifp-subheap", { Vm.ifp_subheap with trace_limit = 32; max_cycles = budget });
    ("ifp-wrapped", { Vm.ifp_wrapped with max_cycles = budget });
  ]

let engines =
  [
    ("vm", fun config prog -> Vm.run ~config prog);
    ("vm-ref", fun config prog -> Vm_ref.run ~config prog);
    ("closure", fun config prog -> Vm_closure.run ~config prog);
  ]

(* Heap_smash is out of the architectural detection contract; the
   temporal classes free live records, which a spatial-only
   configuration is not contracted to catch — they get their own armed
   battery in {!check_temporal}, keeping this list (and every cached
   battery verdict) exactly what it was before temporal mode existed. *)
let defended =
  List.filter
    (fun c ->
      not (List.mem c [ Fault.Heap_smash; Fault.Uaf_use; Fault.Double_free ]))
    Fault.all_classes

let temporal_defended = [ Fault.Uaf_use; Fault.Double_free ]

let temporal_configs =
  List.filter_map
    (fun (name, cfg) ->
      if name = "baseline" then None
      else Some (name ^ "-t", { cfg with Vm.temporal = true }))
    configs

(* ---- observable signature (the full result, line-oriented) ----------- *)

let outcome_str = function
  | Vm.Finished v -> "finished:" ^ Int64.to_string v
  | Vm.Trapped t -> "trapped:" ^ Trap.to_string t
  | Vm.Aborted r -> "aborted:" ^ Vm.abort_reason_string r

let trace_str = function
  | Vm.T_promote { ptr; outcome; bounds } ->
    Printf.sprintf "promote:%Lx:%s:%s" ptr outcome bounds
  | Vm.T_register { what; ptr; size } ->
    Printf.sprintf "register:%s:%Lx:%d" what ptr size
  | Vm.T_deregister { what; ptr } -> Printf.sprintf "deregister:%s:%Lx" what ptr
  | Vm.T_trap m -> "trap:" ^ m

let result_sig (r : Vm.result) =
  let c = r.Vm.counters in
  let b = Buffer.create 256 in
  let f fmt = Printf.ksprintf (fun s -> Buffer.add_string b s) fmt in
  f "outcome=%s\n" (outcome_str r.Vm.outcome);
  f "base_instrs=%d cycles=%d loads=%d stores=%d checks=%d\n"
    c.Counters.base_instrs c.Counters.cycles c.Counters.loads c.Counters.stores
    c.Counters.implicit_checks;
  f "ifp=[%s]\n"
    (String.concat "," (List.map string_of_int (Array.to_list c.Counters.ifp)));
  f "promotes=%d/%d/%d/%d/%d subobj=%d narrows=%d/%d\n"
    c.Counters.promotes_valid c.Counters.promotes_null
    c.Counters.promotes_legacy c.Counters.promotes_poisoned
    c.Counters.promotes_invalid_meta c.Counters.promotes_subobj
    c.Counters.narrows_ok c.Counters.narrows_failed;
  f "objs=%d/%d %d/%d %d/%d\n" c.Counters.global_objs
    c.Counters.global_objs_layout c.Counters.local_objs
    c.Counters.local_objs_layout c.Counters.heap_objs
    c.Counters.heap_objs_layout;
  f "cache=%d/%d footprint=%d\n" r.Vm.cache_accesses r.Vm.cache_misses
    r.Vm.mem_footprint;
  f "output=%s\n" (String.concat "|" r.Vm.output);
  f "trace=%s\n" (String.concat ";" (List.map trace_str r.Vm.trace));
  Buffer.contents b

(* the first line where two signatures disagree, unified-diff style *)
let sig_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go la lb =
    match (la, lb) with
    | x :: la', y :: lb' ->
      if String.equal x y then go la' lb'
      else Printf.sprintf "-%s +%s" x y
    | x :: _, [] -> Printf.sprintf "-%s +<eof>" x
    | [], y :: _ -> Printf.sprintf "-<eof> +%s" y
    | [], [] -> "<equal>"
  in
  go la lb

let failure_key f = f.oracle ^ "/" ^ f.site

let to_line f =
  Printf.sprintf "FAIL %s %s %s" f.oracle f.site (String.escaped f.detail)

let of_line s =
  match String.split_on_char ' ' s with
  | "FAIL" :: oracle :: site :: rest ->
    let detail =
      try Scanf.unescaped (String.concat " " rest) with _ -> String.concat " " rest
    in
    Some { oracle; site; detail }
  | _ -> None

(* ---- the battery ----------------------------------------------------- *)

let observed (r : Vm.result) =
  {
    Classify.outcome =
      (match r.Vm.outcome with
      | Vm.Finished n -> `Finished n
      | Vm.Trapped t -> `Trapped t
      | Vm.Aborted m -> `Aborted (Vm.abort_reason_string m));
    output = r.Vm.output;
  }

let check ?(fault_seed = 1L) prog =
  let fails = ref [] in
  let add oracle site detail = fails := { oracle; site; detail } :: !fails in
  (* oracle A: three-way engine agreement, per configuration *)
  let vm_results =
    List.map
      (fun (cname, cfg) ->
        let r_vm = Vm.run ~config:cfg prog in
        let sig_vm = result_sig r_vm in
        List.iter
          (fun (ename, erun) ->
            if ename <> "vm" then
              let s = result_sig (erun cfg prog) in
              if not (String.equal s sig_vm) then
                add "engines" (cname ^ "/" ^ ename) (sig_diff sig_vm s))
          engines;
        (cname, cfg, r_vm))
      configs
  in
  let find name =
    let _, cfg, r = List.find (fun (n, _, _) -> String.equal n name) vm_results in
    (cfg, r)
  in
  let _, base_r = find "baseline" in
  let subheap_cfg, golden = find "ifp-subheap" in
  (* oracle B: instrumented-vs-baseline behavioral equivalence *)
  (match base_r.Vm.outcome with
  | Vm.Finished n ->
    List.iter
      (fun (cname, _, r) ->
        if cname <> "baseline" then
          match r.Vm.outcome with
          | Vm.Finished m
            when Int64.equal m n && r.Vm.output = base_r.Vm.output ->
            ()
          | Vm.Finished m when Int64.equal m n ->
            add "equivalence" cname
              (Printf.sprintf "output differs: baseline=[%s] %s=[%s]"
                 (String.concat "|" base_r.Vm.output)
                 cname
                 (String.concat "|" r.Vm.output))
          | o ->
            add "equivalence" cname
              (Printf.sprintf "baseline finished:%Ld but %s %s" n cname
                 (outcome_str o)))
      vm_results
  | o -> add "wellformed" "baseline" (outcome_str o));
  (* oracle C: armed plans never classify silent for defended classes *)
  (match golden.Vm.outcome with
  | Vm.Finished _ ->
    let golden_obs = observed golden in
    List.iteri
      (fun k cls ->
        let seed = Prng.mix2 fault_seed (Int64.of_int k) in
        let plan = Fault.default_plan cls ~seed in
        let cfg = { subheap_cfg with Vm.fault_plan = Some plan } in
        let r = Vm.run ~config:cfg prog in
        let fired = r.Vm.fault_injections <> [] in
        match
          Classify.classify ~cls ~fired ~golden:golden_obs ~faulted:(observed r)
        with
        | Classify.Silent_corruption ->
          add "faults" (Fault.class_name cls)
            (Printf.sprintf "plan %s fired [%s] yet finished %s vs golden %s"
               (Fault.fingerprint plan)
               (String.concat ";" r.Vm.fault_injections)
               (outcome_str r.Vm.outcome)
               (outcome_str golden.Vm.outcome))
        | _ -> ())
      defended
  | _ -> ());
  (List.rev !fails, golden)

(* ---- the temporal battery -------------------------------------------- *)

let check_temporal ?(fault_seed = 1L) ?(expect_fault = false) prog =
  let fails = ref [] in
  let add oracle site detail = fails := { oracle; site; detail } :: !fails in
  List.iter
    (fun (cname, cfg) ->
      let r0 = Vm.run ~config:cfg prog in
      (* oracle A, temporal edition: the three engines must agree under
         temporal configurations too *)
      let sig0 = result_sig r0 in
      List.iter
        (fun (ename, erun) ->
          if ename <> "vm" then
            let s = result_sig (erun cfg prog) in
            if not (String.equal s sig0) then
              add "engines" (cname ^ "/" ^ ename) (sig_diff sig0 s))
        engines;
      match (expect_fault, r0.Vm.outcome) with
      | true, Vm.Trapped (Trap.Use_after_free _ | Trap.Write_to_freed _ | Trap.Double_free _)
        ->
        (* a generated temporal-fault program must die with a temporal
           trap, never run to completion or trap for a spatial reason *)
        ()
      | true, o ->
        add "temporal" cname
          ("temporal-fault program did not trap temporally: " ^ outcome_str o)
      | false, Vm.Finished _ ->
        (* a safe program must finish under temporal mode; it is then the
           golden for the armed plans: temporal-mode IFP must never
           classify a defended temporal fault as silent corruption *)
        let golden_obs = observed r0 in
        List.iteri
          (fun k cls ->
            let seed = Prng.mix2 fault_seed (Int64.of_int k) in
            let plan = Fault.default_plan cls ~seed in
            let r =
              Vm.run ~config:{ cfg with Vm.fault_plan = Some plan } prog
            in
            let fired = r.Vm.fault_injections <> [] in
            match
              Classify.classify ~cls ~fired ~golden:golden_obs
                ~faulted:(observed r)
            with
            | Classify.Silent_corruption ->
              add "temporal-faults"
                (cname ^ "/" ^ Fault.class_name cls)
                (Printf.sprintf "plan %s fired [%s] yet finished %s"
                   (Fault.fingerprint plan)
                   (String.concat ";" r.Vm.fault_injections)
                   (outcome_str r.Vm.outcome))
            | _ -> ())
          temporal_defended
      | false, o ->
        add "temporal" cname
          ("safe program did not finish under temporal mode: " ^ outcome_str o))
    temporal_configs;
  List.rev !fails
