module Vm = Ifp_vm.Vm
module Counters = Ifp_vm.Counters
module Insn = Ifp_isa.Insn

type detection = Full | Object_only | Probabilistic of float | None_

type model = {
  name : string;
  ptr_load_instrs : int;
  ptr_load_mem : int;
  ptr_store_instrs : int;
  ptr_store_mem : int;
  deref_instrs : int;
  alloc_instrs : int;
  memory_factor : float;
  subobject : detection;
  object_ : detection;
  temporal : detection;
}

(* Intel MPX: bndldx/bndstx walk a two-level directory (expensive);
   bndcl/bndcu checks are cheap ALU ops; bounds tables roughly double
   memory for pointer-heavy programs. *)
let mpx =
  {
    name = "MPX-like";
    ptr_load_instrs = 6;
    ptr_load_mem = 3;
    ptr_store_instrs = 6;
    ptr_store_mem = 3;
    deref_instrs = 2;
    alloc_instrs = 10;
    memory_factor = 2.0;
    subobject = Full;
    object_ = Full;
    temporal = None_;
  }

(* SoftBound: pure software; shadow-space lookups on pointer loads and
   stores, 4-6 instruction check sequences. *)
let softbound =
  {
    name = "SoftBound-like";
    ptr_load_instrs = 5;
    ptr_load_mem = 2;
    ptr_store_instrs = 5;
    ptr_store_mem = 2;
    deref_instrs = 5;
    alloc_instrs = 20;
    memory_factor = 1.65;
    subobject = Full;
    object_ = Full;
    temporal = None_;
  }

(* FRAMER: software tagged-pointer; every dereference must mask the tag
   and every bounds retrieval recomputes the frame metadata address. *)
let framer =
  {
    name = "FRAMER-like";
    ptr_load_instrs = 14;
    ptr_load_mem = 2;
    ptr_store_instrs = 4;
    ptr_store_mem = 0;
    deref_instrs = 12;
    alloc_instrs = 40;
    memory_factor = 1.22;
    subobject = None_;
    object_ = Full;
    temporal = None_;
  }

(* AddressSanitizer: shadow-byte check per access, redzones around
   objects, no per-pointer metadata. Catches adjacent overflows only. *)
let asan =
  {
    name = "ASan-like";
    ptr_load_instrs = 0;
    ptr_load_mem = 0;
    ptr_store_instrs = 0;
    ptr_store_mem = 0;
    deref_instrs = 5;
    alloc_instrs = 60;
    memory_factor = 2.4;
    subobject = None_;
    object_ = Object_only;
    temporal = Full;
  }

(* ARM MTE: hardware tag check folded into the access; 4-bit tags give
   15/16 detection probability; tag memory ~3%. *)
let mte =
  {
    name = "MTE-like";
    ptr_load_instrs = 0;
    ptr_load_mem = 0;
    ptr_store_instrs = 0;
    ptr_store_mem = 0;
    deref_instrs = 0;
    alloc_instrs = 8;
    memory_factor = 1.03;
    subobject = None_;
    object_ = Probabilistic (15.0 /. 16.0);
    temporal = Probabilistic (15.0 /. 16.0);
  }

let all = [ mpx; softbound; framer; asan; mte ]

(* Temporal-safety comparators, kept out of {!all} so every spatial
   table (fig10/fig13 and their goldens) is byte-identical with the
   temporal extension merged. *)

(* CryptSan: ARM PAC-based; pointers are signed against per-object keys
   invalidated on free, so stale pointers fail authentication. Signing /
   authenticating on pointer loads, stores and dereferences. *)
let cryptsan =
  {
    name = "CryptSan-like";
    ptr_load_instrs = 8;
    ptr_load_mem = 2;
    ptr_store_instrs = 8;
    ptr_store_mem = 2;
    deref_instrs = 6;
    alloc_instrs = 30;
    memory_factor = 1.4;
    subobject = None_;
    object_ = Full;
    temporal = Full;
  }

(* RV-CURE: RISC-V full-system UAF defense; hardware tag checks folded
   into the pipeline with capability-revocation sweeps on free. *)
let rvcure =
  {
    name = "RV-CURE-like";
    ptr_load_instrs = 1;
    ptr_load_mem = 0;
    ptr_store_instrs = 1;
    ptr_store_mem = 0;
    deref_instrs = 1;
    alloc_instrs = 25;
    memory_factor = 1.12;
    subobject = None_;
    object_ = None_;
    temporal = Full;
  }

let temporal_models = [ cryptsan; rvcure ]

type projection = {
  model : model;
  instr_overhead : float;
  cycle_overhead : float;
  memory_overhead : float;
}

let project model ~(baseline : Vm.result) ~(ifp : Vm.result) =
  let c = ifp.Vm.counters in
  let ptr_loads = Counters.promotes_total c in
  let ptr_stores = Counters.ifp_count c Insn.Ifpextract in
  let derefs = c.implicit_checks in
  let allocs = c.heap_objs + c.local_objs in
  let extra_instrs =
    (ptr_loads * model.ptr_load_instrs)
    + (ptr_stores * model.ptr_store_instrs)
    + (derefs * model.deref_instrs)
    + (allocs * model.alloc_instrs)
  in
  let extra_mem =
    (ptr_loads * model.ptr_load_mem) + (ptr_stores * model.ptr_store_mem)
  in
  let base_instrs = float_of_int baseline.Vm.counters.base_instrs in
  let base_cycles = float_of_int baseline.Vm.counters.cycles in
  (* memory accesses cost ~2 cycles each on average (hit-dominated) *)
  let extra_cycles = float_of_int extra_instrs +. (2.0 *. float_of_int extra_mem) in
  {
    model;
    instr_overhead =
      (base_instrs +. float_of_int extra_instrs +. float_of_int extra_mem)
      /. base_instrs;
    cycle_overhead = (base_cycles +. extra_cycles) /. base_cycles;
    memory_overhead = model.memory_factor;
  }

let detects model (kind : Ifp_juliet.Juliet.kind) =
  match kind with
  | Ifp_juliet.Juliet.Intra_object | Ifp_juliet.Juliet.Nested_intra ->
    model.subobject
  | Overflow | Underwrite | Overread | Underread -> model.object_
  | Use_after_free | Write_to_freed | Double_free -> model.temporal
