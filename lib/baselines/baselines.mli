(** Comparator spatial-safety schemes (the related work of paper
    Table 1), reproduced over the same simulator runs.

    Each comparator is expressed as a per-event cost model projected onto
    the measured dynamic event counts of a workload: pointer loads
    (places the scheme must retrieve per-pointer metadata), pointer
    stores (metadata write-back), dereferences (checks), and heap
    allocations (object metadata setup). The event counts come from the
    instrumented run's architectural counters; the baseline run provides
    the denominator. The per-event costs are calibrated to the published
    overheads the paper cites: Intel MPX ~50% runtime / 1.9–2.1x memory,
    SoftBound ~67%, FRAMER 223%, AddressSanitizer ~73%, ARM MTE a few
    percent (probabilistic protection).

    Each comparator also carries its {e detection model}, evaluated
    against the Juliet-style suite: can it catch object-granularity
    overflows, and can it catch intra-object overflows? This
    regenerates the granularity column of Table 1 experimentally. *)

type detection = Full | Object_only | Probabilistic of float | None_

type model = {
  name : string;
  ptr_load_instrs : int;  (** instrs per pointer loaded from memory *)
  ptr_load_mem : int;  (** extra memory accesses per pointer load *)
  ptr_store_instrs : int;
  ptr_store_mem : int;
  deref_instrs : int;  (** instrs per checked dereference *)
  alloc_instrs : int;  (** instrs per heap (de)allocation *)
  memory_factor : float;  (** footprint multiplier (shadow/redzones) *)
  subobject : detection;
  object_ : detection;
  temporal : detection;
      (** use-after-free / double-free / write-to-freed (the Juliet
          temporal kinds): [None_] for the purely spatial schemes,
          [Full] for quarantine/authentication designs, probabilistic
          for small tag spaces *)
}

val mpx : model
val softbound : model
val framer : model
val asan : model
val mte : model
val all : model list

val cryptsan : model
(** ARM PAC-based temporal+spatial defense: pointers signed against
    per-object keys invalidated on free. *)

val rvcure : model
(** RISC-V full-system use-after-free defense: pipeline tag checks with
    revocation sweeps on free. *)

val temporal_models : model list
(** [[cryptsan; rvcure]] — deliberately not in {!all}, so the spatial
    comparison tables (and their goldens) are unchanged. *)

type projection = {
  model : model;
  instr_overhead : float;  (** ratio vs baseline, e.g. 1.5 = +50% *)
  cycle_overhead : float;
  memory_overhead : float;
}

val project :
  model -> baseline:Ifp_vm.Vm.result -> ifp:Ifp_vm.Vm.result -> projection
(** [ifp] supplies the dynamic event counts (promotes = pointer loads,
    ifpextract = pointer stores, implicit checks = dereferences). *)

val detects : model -> Ifp_juliet.Juliet.kind -> detection
(** What the comparator would report for a Juliet case of this kind. *)
