(** 48-bit metadata authentication codes (paper §3.3).

    Object metadata lives in ordinary memory and could be corrupted by
    legacy code or temporal errors; the MAC, checked during [promote],
    detects tampering. The paper does not specify the PRF; we use a keyed
    splitmix-based mixer, which has the properties that matter for the
    reproduction: deterministic per key, and any single-field change
    flips the MAC with overwhelming probability. *)

type key = int64

val bits : int
(** MAC width in bits (48) — the span a fault injector may flip. *)

val fresh_key : Ifp_util.Prng.t -> key

val compute : key:key -> int64 list -> int64
(** 48-bit MAC over a field list (order-sensitive). *)

val verify : key:key -> int64 list -> mac:int64 -> bool
