(** Object-metadata context: the three complementary metadata schemes
    (paper §3.3, Table 2), their in-memory encodings, and the shared
    layout-table store.

    The context owns:
    - the MAC key (a per-process secret held in a control register),
    - a bump region where layout tables are materialised — one table per
      distinct type, shared by every object of that type (paper §3.4),
    - the global metadata table (base held in a control register),
    - the 16 subheap control registers.

    In-memory encodings (the paper gives sizes but not field packings;
    ours are documented in DESIGN.md):
    - local-offset metadata, 16 B appended to the object at the next
      granule boundary: [size:u16 @0 | mac:u48 @2 | layout_ptr:u64 @8];
    - subheap block metadata, 32 B at a per-control-register offset into
      the power-of-two block:
      [slot_start:u32 | slot_end:u32 | slot_size:u32 | obj_size:u32 |
       layout_ptr:u64 | mac:u48 | flags:u16];
    - global-table row, 16 B:
      [base:u48 | size_lo:u16] [layout_ptr:u48 | size_hi:u16];
    - layout table: 16 B header [magic:u32 | count:u32 | pad] followed by
      16 B elements [parent:u16 | pad:u16 | base:u32 | bound:u32 |
      elem_size:u32]. *)

type t

type fetch = { addr : int64; bytes : int }
(** One metadata memory access performed by the promote hardware; the VM
    replays fetches through the D-cache model. *)

type obj_meta = {
  obj_base : int64;
  obj_size : int;
  layout_ptr : int64;  (** 0 when the object has no layout table *)
  gen : int;  (** free-epoch generation; 0 outside temporal mode *)
  freed : bool;  (** temporal mode: the allocation has been freed *)
}

type free_status = [ `Freed_ok | `Already_freed | `Invalid ]
(** Result of a temporal free-epoch transition: [`Already_freed] is the
    double-free witness; [`Invalid] means the record failed validation
    (clobbered or never registered). *)

val create :
  ?temporal:bool ->
  memory:Ifp_machine.Memory.t ->
  mac_key:Mac.key ->
  layout_region:int64 * int ->
  global_table:int64 * int ->
  unit ->
  t
(** [create ~memory ~mac_key ~layout_region:(base, size)
    ~global_table:(base, entries)] — both regions must already be mapped.
    [entries] is at most {!Ifp_isa.Tag.global_table_entries}; row 0 is
    reserved. [temporal] (default off) turns on free-epoch generations:
    every record carries a generation and freed flag, mirrored into the
    pointer tag and checked at promote; with it off, every encoding is
    bit-identical to the spatial-only design. *)

val memory : t -> Ifp_machine.Memory.t
val mac_key : t -> Mac.key

val temporal : t -> bool

(** {1 Live-entry registry}

    Every metadata record currently materialised in memory, tracked so
    the fault injector ({!Ifp_faultinject.Fault}) can pick tampering
    targets without re-deriving each scheme's placement rules. The
    registry is bookkeeping only — lookups never consult it. *)

type scheme = Scheme_local_offset | Scheme_subheap | Scheme_global_table

type live_entry = {
  scheme : scheme;
  meta_addr : int64;
  meta_bytes : int;  (** record length: 16, 32 or 16 bytes *)
  mac_off : int option;
      (** byte offset of the 48-bit MAC within the record; [None] for
          global-table rows, which carry no MAC *)
}

val live_entries : t -> live_entry list
(** Currently-registered records, sorted by address (deterministic). *)

val wipe_entry : t -> live_entry -> unit
(** Zero the record in memory (attacker memset / stale-metadata fault)
    without touching allocator bookkeeping. *)

val mark_freed : t -> live_entry -> free_status
(** A {e legitimate} free of a live record, as the allocator free path
    would perform it — the uaf_use / double_free fault classes. In
    temporal mode: bump the generation, set the freed flag, re-MAC where
    the scheme carries a MAC (for a subheap record, every slot of the
    block enters the freed epoch). Outside temporal mode the record is
    wiped, which is what the spatial-only free does. Contrast with
    {!wipe_entry}: a wipe garbles the record (classified as metadata
    tampering); [mark_freed] keeps it valid but stale (classified as a
    temporal fault). *)

(** {1 Layout tables} *)

val intern_layout : t -> Ifp_types.Ctype.tenv -> Ifp_types.Ctype.t -> int64
(** Materialise (once) the layout table for a type and return its
    address; returns [0L] for types with no subobjects (single-element
    tables), for which no narrowing is ever needed. *)

val layout_count : t -> int64 -> int
(** Element count read from a table header; 0 if the header is invalid. *)

val read_element : t -> int64 -> int -> Ifp_types.Layout.element
(** [read_element t table_ptr i] decodes element [i] from memory. *)

val layout_bytes_used : t -> int
(** Total bytes of layout tables materialised so far (memory-overhead
    accounting). *)

(** {1 Local-offset scheme} *)

module Local_offset : sig
  val metadata_size : int
  (** 16. *)

  val footprint : size:int -> int
  (** Bytes an allocation of [size] needs including padding to the
      granule and the appended metadata. *)

  val fits : size:int -> bool
  (** Object size within the scheme's 1008-byte limit. *)

  val register : t -> base:int64 -> size:int -> layout_ptr:int64 -> int64
  (** Write the metadata (at [base + align_up size granule]) and return
      the tagged pointer to [base]. [base] must be granule-aligned and
      the footprint must be mapped. Charged as [ifpmac + stores] by the
      caller. *)

  val deregister : t -> int64 -> unit
  (** Invalidate the metadata of a pointer previously returned by
      {!register} (zeroes the metadata block). Spatial-only free. *)

  val deregister_temporal : t -> int64 -> free_status
  (** Temporal free: validate the record, bump its generation, set the
      freed flag, re-MAC. The record stays in memory as the free-epoch
      witness. [`Already_freed] is the caller's double-free trap cue. *)

  val lookup : t -> int64 -> (obj_meta, string) result * fetch list
end

(** {1 Subheap scheme} *)

module Subheap : sig
  type creg = { block_size_log2 : int; metadata_offset : int64 }

  val n_cregs : int
  (** 16. *)

  val set_creg : t -> int -> creg option -> unit
  val get_creg : t -> int -> creg option

  val block_metadata_size : int
  (** 32. *)

  val temporal_metadata_size : int
  (** 64: the 32-byte header followed by a 256-bit freed-slot bitmap
      (temporal mode only). *)

  val record_size : t -> int
  (** 64 in temporal mode, 32 otherwise. *)

  val write_block_metadata :
    t ->
    creg:int ->
    block_base:int64 ->
    slot_start:int ->
    slot_end:int ->
    slot_size:int ->
    obj_size:int ->
    layout_ptr:int64 ->
    unit
  (** [creg] names the control register describing this block's size and
      metadata offset; it must be configured. *)

  val clear_block_metadata : t -> creg:int -> block_base:int64 -> unit
  (** In temporal mode the block generation survives the clear, bumped
      by one — pointers into the previous tenant of a recycled block
      mismatch on promote. *)

  val block_gen : t -> creg:int -> block_base:int64 -> int
  (** Current block generation (0 outside temporal mode). *)

  val tag_pointer : creg:int -> addr:int64 -> int64

  val slot_mark_freed :
    t -> creg:int -> block_base:int64 -> slot:int -> free_status
  (** Temporal free of one slot: set its bit in the freed-slot bitmap.
      [`Already_freed] is the caller's double-free trap cue. *)

  val lookup : t -> int64 -> (obj_meta, string) result * fetch list * int
  (** Returns the extra division count (slot-index computation) as the
      third component. *)
end

(** {1 Global-table scheme} *)

module Global_table : sig
  val register : t -> base:int64 -> size:int -> layout_ptr:int64 -> int64 option
  (** Claim a free row; [None] when the table is full. Returns the tagged
      pointer. *)

  val deregister : t -> int64 -> unit
  (** Free the row named by the pointer's index field (spatial-only). *)

  val deregister_temporal : t -> int64 -> free_status
  (** Temporal free: the row is quarantined — it keeps base/size so
      stale promotes still resolve, gains the freed bit and a bumped
      generation, and never returns to the free list. *)

  val rows_in_use : t -> int

  val lookup : t -> int64 -> (obj_meta, string) result * fetch list
end
