(** The [promote] instruction: pointer bounds retrieval (paper Fig. 5),
    i.e. object-metadata lookup dispatched on the scheme selector
    followed by subobject bounds narrowing via the in-memory layout table
    (Fig. 2, Fig. 9c).

    [run] is purely architectural — it performs the metadata memory reads
    and returns both the result and a cost descriptor ({!fetches},
    division and walk counts) that the VM folds into its cycle and cache
    models. *)

type narrow_status =
  | No_subobject  (** subobject index 0, or no layout table published *)
  | Narrowed  (** bounds refined to the subobject *)
  | Narrow_failed of string
      (** e.g. index out of table range, or address outside the object —
          bounds coarsened to the object granularity (paper §5.2.1) *)

type outcome =
  | Bypass_poisoned  (** input was invalid; no metadata access *)
  | Bypass_null
  | Bypass_legacy
  | Metadata_invalid of string  (** output pointer poisoned *)
  | Temporal_stale of { freed : bool; gen_ptr : int; gen_meta : int }
      (** temporal mode: metadata resolved but the allocation is in a
          later free epoch (freed flag set, or generation mismatch);
          output pointer poisoned [Freed], bounds cleared *)
  | Retrieved of narrow_status

type result = {
  ptr : int64;  (** output pointer (poison bits updated) *)
  bounds : Ifp_isa.Bounds.t;
  outcome : outcome;
  fetches : Meta.fetch list;  (** metadata memory reads, in order *)
  divisions : int;  (** multi-cycle divisions (slot index, array snap) *)
  walk_elems : int;  (** layout-table elements fetched by the walker *)
  mac_checks : int;
}

val run : ?narrow:bool -> Meta.t -> int64 -> result
(** [narrow] defaults to [true]; [~narrow:false] models hardware without
    the layout-table walker (the area ablation of §5.3): object-metadata
    lookup still happens but subobject narrowing is skipped, degrading
    protection to object granularity. *)

val accessed_metadata : result -> bool
(** True when the promote did not bypass the object-metadata lookup — the
    "valid promote" count of the paper's Table 4. *)
