type key = int64

let bits = 48

let fresh_key rng = Ifp_util.Prng.next64 rng

let compute ~key fields =
  let h = List.fold_left Ifp_util.Prng.mix2 key fields in
  (* fold to 48 bits so the value fits the metadata slot *)
  Ifp_util.Bits.u48 (Int64.logxor h (Int64.shift_right_logical h 48))

let verify ~key fields ~mac = Int64.equal (compute ~key fields) (Ifp_util.Bits.u48 mac)
