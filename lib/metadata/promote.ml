module Tag = Ifp_isa.Tag
module Bounds = Ifp_isa.Bounds

type narrow_status = No_subobject | Narrowed | Narrow_failed of string

type outcome =
  | Bypass_poisoned
  | Bypass_null
  | Bypass_legacy
  | Metadata_invalid of string
  | Temporal_stale of { freed : bool; gen_ptr : int; gen_meta : int }
      (** temporal mode: the record resolved but its allocation is in a
          later free epoch — freed outright, or the pointer's generation
          nibble no longer matches the record's *)
  | Retrieved of narrow_status

type result = {
  ptr : int64;
  bounds : Bounds.t;
  outcome : outcome;
  fetches : Meta.fetch list;
  divisions : int;
  walk_elems : int;
  mac_checks : int;
}

let bypass ptr outcome =
  { ptr; bounds = Bounds.no_bounds; outcome; fetches = []; divisions = 0;
    walk_elems = 0; mac_checks = 0 }

let poison_from_bounds ptr bounds =
  match bounds with
  | Bounds.No_bounds -> ptr
  | Bounds.Bounds { lo; hi } ->
    let a = Tag.addr ptr in
    if Int64.compare lo a <= 0 && Int64.compare a hi < 0 then
      Tag.with_poison ptr Tag.Valid
    else Tag.with_poison ptr Tag.Oob

let element_fetch table_ptr i =
  { Meta.addr = Int64.add table_ptr (Int64.of_int (16 + (i * 16))); bytes = 16 }

(* Subobject bounds narrowing: the hardware layout-table walker
   (paper §3.4, Fig. 9c). Fetches the parent chain from memory, then
   resolves bounds top-down, snapping the address to the parent's element
   stride at each array level. *)
let narrow_via_table t ~table_ptr ~index ~addr ~obj_base ~obj_size =
  let header_fetch = { Meta.addr = table_ptr; bytes = 8 } in
  let count = Meta.layout_count t table_ptr in
  if count <= 0 then
    (None, [ header_fetch ], 0, 1, Narrow_failed "bad layout table header")
  else if index >= count then
    (None, [ header_fetch ], 0, 1, Narrow_failed "subobject index out of range")
  else
    let obj_hi = Int64.add obj_base (Int64.of_int obj_size) in
    if Int64.compare addr obj_base < 0 || Int64.compare addr obj_hi >= 0 then
      (None, [ header_fetch ], 0, 1, Narrow_failed "address outside object")
    else begin
      (* collect the parent chain (target .. child-of-root) *)
      let rec chain i acc steps =
        if i = 0 then Some acc
        else if steps > count then None (* corrupt table: parent cycle *)
        else
          let e = Meta.read_element t table_ptr i in
          chain e.Ifp_types.Layout.parent ((i, e) :: acc) (steps + 1)
      in
      match chain index [] 0 with
      | None -> (None, [ header_fetch ], 0, 1, Narrow_failed "parent cycle")
      | Some chain_elems ->
        let elem0 = Meta.read_element t table_ptr 0 in
        let fetches =
          header_fetch :: element_fetch table_ptr 0
          :: List.map (fun (i, _) -> element_fetch table_ptr i) chain_elems
        in
        let walk_elems = List.length chain_elems + 1 in
        let divisions = ref 0 in
        let resolve (frame_lo, frame_hi, stride) (_, (e : Ifp_types.Layout.element)) =
          let extent = Int64.to_int (Int64.sub frame_hi frame_lo) in
          let off = Int64.to_int (Int64.sub addr frame_lo) in
          let elem_base =
            if stride <= 0 || stride >= extent then frame_lo
            else begin
              incr divisions;
              Int64.add frame_lo (Int64.of_int (off / stride * stride))
            end
          in
          ( Int64.add elem_base (Int64.of_int e.base),
            Int64.add elem_base (Int64.of_int e.bound),
            e.elem_size )
        in
        let lo, hi, _ =
          List.fold_left resolve (obj_base, obj_hi, elem0.elem_size) chain_elems
        in
        (* clamp: an index inconsistent with the address (bad cast) must
           never widen protection past the object bounds *)
        let lo = if Int64.compare lo obj_base < 0 then obj_base else lo in
        let hi = if Int64.compare hi obj_hi > 0 then obj_hi else hi in
        if Int64.compare lo hi >= 0 then
          (None, fetches, !divisions, walk_elems,
           Narrow_failed "index inconsistent with address")
        else (Some (lo, hi), fetches, !divisions, walk_elems, Narrowed)
    end

let run ?(narrow = true) t ptr =
  match Tag.poison ptr with
  | Tag.Invalid | Tag.Freed -> bypass ptr Bypass_poisoned
  | Tag.Valid | Tag.Oob ->
    if Tag.is_null ptr then bypass (Tag.make_legacy 0L) Bypass_null
    else begin
      match Tag.scheme ptr with
      | Tag.Legacy -> bypass ptr Bypass_legacy
      | Tag.Local_offset | Tag.Subheap | Tag.Global_table -> (
        let lookup_res, lookup_fetches, lookup_divs, macs =
          match Tag.scheme ptr with
          | Tag.Local_offset ->
            let r, f = Meta.Local_offset.lookup t ptr in
            (r, f, 0, 1)
          | Tag.Subheap ->
            let r, f, d = Meta.Subheap.lookup t ptr in
            (r, f, d, 1)
          | Tag.Global_table ->
            let r, f = Meta.Global_table.lookup t ptr in
            (r, f, 0, 0)
          | Tag.Legacy -> assert false
        in
        match lookup_res with
        | Error reason ->
          {
            ptr = Tag.with_poison ptr Tag.Invalid;
            bounds = Bounds.no_bounds;
            outcome = Metadata_invalid reason;
            fetches = lookup_fetches;
            divisions = lookup_divs;
            walk_elems = 0;
            mac_checks = macs;
          }
        | Ok { Meta.obj_base; obj_size; layout_ptr; gen; freed } ->
          if Meta.temporal t && (freed || gen <> Tag.gen ptr) then
            (* free-epoch check (temporal mode): the metadata resolved,
               but the allocation was freed — or this address has been
               recycled into a later generation. Poison as Freed and
               strip bounds; the access (or armed promote) traps. *)
            {
              ptr = Tag.with_poison ptr Tag.Freed;
              bounds = Bounds.no_bounds;
              outcome = Temporal_stale { freed; gen_ptr = Tag.gen ptr; gen_meta = gen };
              fetches = lookup_fetches;
              divisions = lookup_divs;
              walk_elems = 0;
              mac_checks = macs;
            }
          else
          let obj_bounds =
            Bounds.make ~lo:obj_base
              ~hi:(Int64.add obj_base (Int64.of_int obj_size))
          in
          let subobj = Tag.subobj_index ptr in
          let needs_narrow =
            match subobj with Some i when i > 0 -> Some i | Some _ | None -> None
          in
          (match needs_narrow with
          | None ->
            {
              ptr = poison_from_bounds ptr obj_bounds;
              bounds = obj_bounds;
              outcome = Retrieved No_subobject;
              fetches = lookup_fetches;
              divisions = lookup_divs;
              walk_elems = 0;
              mac_checks = macs;
            }
          | Some _ when not narrow ->
            (* layout walker absent: object-granularity bounds only *)
            {
              ptr = poison_from_bounds ptr obj_bounds;
              bounds = obj_bounds;
              outcome = Retrieved (Narrow_failed "narrowing disabled");
              fetches = lookup_fetches;
              divisions = lookup_divs;
              walk_elems = 0;
              mac_checks = macs;
            }
          | Some index ->
            if Int64.equal layout_ptr 0L then
              {
                ptr = poison_from_bounds ptr obj_bounds;
                bounds = obj_bounds;
                outcome = Retrieved (Narrow_failed "no layout table");
                fetches = lookup_fetches;
                divisions = lookup_divs;
                walk_elems = 0;
                mac_checks = macs;
              }
            else
              let narrowed, nfetches, ndivs, walk_elems, status =
                narrow_via_table t ~table_ptr:layout_ptr ~index
                  ~addr:(Tag.addr ptr) ~obj_base ~obj_size
              in
              let bounds =
                match narrowed with
                | Some (lo, hi) -> Bounds.make ~lo ~hi
                | None -> obj_bounds
              in
              {
                ptr = poison_from_bounds ptr bounds;
                bounds;
                outcome = Retrieved status;
                fetches = lookup_fetches @ nfetches;
                divisions = lookup_divs + ndivs;
                walk_elems;
                mac_checks = macs;
              }))
    end

let accessed_metadata r =
  match r.outcome with
  | Bypass_poisoned | Bypass_null | Bypass_legacy -> false
  | Metadata_invalid _ | Temporal_stale _ | Retrieved _ -> true
