open Ifp_util
module Memory = Ifp_machine.Memory
module Tag = Ifp_isa.Tag

type fetch = { addr : int64; bytes : int }

type obj_meta = {
  obj_base : int64;
  obj_size : int;
  layout_ptr : int64;
  gen : int;
  freed : bool;
}

type free_status = [ `Freed_ok | `Already_freed | `Invalid ]

type creg_v = { block_size_log2 : int; metadata_offset : int64 }

type scheme = Scheme_local_offset | Scheme_subheap | Scheme_global_table

type live_entry = {
  scheme : scheme;
  meta_addr : int64;
  meta_bytes : int;
  mac_off : int option;
}

type t = {
  mem : Memory.t;
  key : Mac.key;
  temporal : bool;
      (* free-epoch generations live in each record and deregister marks
         instead of reclaiming; off = bit-identical spatial-only layout *)
  layout_base : int64;
  layout_size : int;
  mutable layout_next : int64;
  layouts : (Ifp_types.Ctype.t, int64) Hashtbl.t;
  gt_base : int64;
  gt_entries : int;
  mutable gt_free : int list;
  mutable gt_used : int;
  cregs : creg_v option array;
  live : (int64, live_entry) Hashtbl.t;
      (* every metadata record currently in memory, keyed by address —
         the fault injector's target registry *)
}

let layout_magic = 0x4C544231L (* "LTB1" *)

let create ?(temporal = false) ~memory ~mac_key ~layout_region:(lbase, lsize)
    ~global_table:(gbase, entries) () =
  if entries < 1 || entries > Tag.global_table_entries then
    invalid_arg "Meta.create: global table entries";
  {
    mem = memory;
    key = mac_key;
    temporal;
    layout_base = lbase;
    layout_size = lsize;
    layout_next = lbase;
    layouts = Hashtbl.create 64;
    gt_base = gbase;
    gt_entries = entries;
    (* row 0 is reserved so that a zero index never looks valid *)
    gt_free = List.init (entries - 1) (fun i -> i + 1);
    gt_used = 0;
    cregs = Array.make 16 None;
    live = Hashtbl.create 64;
  }

let memory t = t.mem
let mac_key t = t.key
let temporal t = t.temporal

let live_add t e = Hashtbl.replace t.live e.meta_addr e
let live_remove t meta_addr = Hashtbl.remove t.live meta_addr

let live_entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.live []
  |> List.sort (fun a b -> Int64.compare a.meta_addr b.meta_addr)

let wipe_entry t e =
  for i = 0 to e.meta_bytes - 1 do
    Memory.write_u8 t.mem (Int64.add e.meta_addr (Int64.of_int i)) 0
  done;
  live_remove t e.meta_addr

(* ------------------------------------------------------------------ *)
(* Layout tables                                                       *)

let element_bytes = 16
let header_bytes = 16

let write_element t addr (e : Ifp_types.Layout.element) =
  Memory.write_u16 t.mem addr e.parent;
  Memory.write_u16 t.mem (Int64.add addr 2L) 0;
  Memory.write_u32 t.mem (Int64.add addr 4L) (Int64.of_int e.base);
  Memory.write_u32 t.mem (Int64.add addr 8L) (Int64.of_int e.bound);
  Memory.write_u32 t.mem (Int64.add addr 12L) (Int64.of_int e.elem_size)

let read_element t table_ptr i =
  let addr = Int64.add table_ptr (Int64.of_int (header_bytes + (i * element_bytes))) in
  {
    Ifp_types.Layout.parent = Memory.read_u16 t.mem addr;
    base = Int64.to_int (Memory.read_u32 t.mem (Int64.add addr 4L));
    bound = Int64.to_int (Memory.read_u32 t.mem (Int64.add addr 8L));
    elem_size = Int64.to_int (Memory.read_u32 t.mem (Int64.add addr 12L));
  }

let layout_count t table_ptr =
  if Int64.equal table_ptr 0L then 0
  else
    let magic = Memory.read_u32 t.mem table_ptr in
    if not (Int64.equal magic layout_magic) then 0
    else Int64.to_int (Memory.read_u32 t.mem (Int64.add table_ptr 4L))

let intern_layout t env ty =
  let layout = Ifp_types.Layout.build env ty in
  if Ifp_types.Layout.length layout <= 1 then 0L
  else
    match Hashtbl.find_opt t.layouts ty with
    | Some addr -> addr
    | None ->
      let n = Ifp_types.Layout.length layout in
      let bytes = header_bytes + (n * element_bytes) in
      let addr = t.layout_next in
      if
        Int64.compare
          (Int64.add addr (Int64.of_int bytes))
          (Int64.add t.layout_base (Int64.of_int t.layout_size))
        > 0
      then failwith "Meta.intern_layout: layout region exhausted";
      t.layout_next <- Int64.add addr (Int64.of_int bytes);
      Memory.write_u32 t.mem addr layout_magic;
      Memory.write_u32 t.mem (Int64.add addr 4L) (Int64.of_int n);
      Memory.write_u64 t.mem (Int64.add addr 8L) 0L;
      Array.iteri
        (fun i e ->
          write_element t
            (Int64.add addr (Int64.of_int (header_bytes + (i * element_bytes))))
            e)
        (Ifp_types.Layout.elements layout);
      Hashtbl.replace t.layouts ty addr;
      addr

let layout_bytes_used t = Int64.to_int (Int64.sub t.layout_next t.layout_base)

(* ------------------------------------------------------------------ *)
(* Local-offset scheme                                                 *)

module Local_offset = struct
  let metadata_size = 16

  let footprint ~size = Bits.align_up size Tag.granule + metadata_size

  let fits ~size = size > 0 && size <= Tag.local_offset_max_object

  (* The MAC covers the stored layout word verbatim; in temporal mode
     that word also packs the generation and freed flag (bits 59..56 and
     60), so tampering with the temporal state is caught exactly like
     tampering with the layout pointer. *)
  let mac_fields ~meta_addr ~size ~layout_word =
    [ meta_addr; Int64.of_int size; layout_word ]

  let lw_layout w = Int64.logand w 0xFF_FFFF_FFFF_FFFFL
  let lw_gen w = Int64.to_int (Int64.shift_right_logical w 56) land 0xF
  let lw_freed w = Int64.logand (Int64.shift_right_logical w 60) 1L = 1L

  let lw_pack ~layout_ptr ~gen ~freed =
    Int64.logor (lw_layout layout_ptr)
      (Int64.logor
         (Int64.shift_left (Int64.of_int (gen land 0xF)) 56)
         (if freed then Int64.shift_left 1L 60 else 0L))

  let write_record t ~meta_addr ~size ~layout_word =
    let mac = Mac.compute ~key:t.key (mac_fields ~meta_addr ~size ~layout_word) in
    Memory.write_u16 t.mem meta_addr size;
    Memory.write_u16 t.mem (Int64.add meta_addr 2L)
      (Int64.to_int (Int64.logand mac 0xFFFFL));
    Memory.write_u32 t.mem (Int64.add meta_addr 4L)
      (Int64.shift_right_logical mac 16);
    Memory.write_u64 t.mem (Int64.add meta_addr 8L) layout_word

  let register t ~base ~size ~layout_ptr =
    if not (fits ~size) then invalid_arg "Local_offset.register: size";
    if not (Int64.equal (Bits.align_down64 base Tag.granule) base) then
      invalid_arg "Local_offset.register: base not granule-aligned";
    let meta_addr = Int64.add base (Int64.of_int (Bits.align_up size Tag.granule)) in
    let gen =
      (* generation continuity: a reused slot (stack frames, recycled
         heap) inherits whatever epoch its previous record reached, so
         stale pointers into the previous tenant mismatch *)
      if t.temporal then
        Int64.to_int
          (Int64.shift_right_logical
             (Memory.read_u64 t.mem (Int64.add meta_addr 8L))
             56)
        land 0xF
      else 0
    in
    let layout_word =
      if t.temporal then lw_pack ~layout_ptr ~gen ~freed:false else layout_ptr
    in
    write_record t ~meta_addr ~size ~layout_word;
    live_add t
      { scheme = Scheme_local_offset; meta_addr; meta_bytes = metadata_size;
        mac_off = Some 2 };
    let granule_off = Bits.align_up size Tag.granule / Tag.granule in
    let p = Tag.make_local_offset ~addr:base ~granule_off ~subobj:0 in
    if t.temporal then Tag.with_gen p gen else p

  let read_meta t meta_addr =
    let size = Memory.read_u16 t.mem meta_addr in
    let mac_lo = Memory.read_u16 t.mem (Int64.add meta_addr 2L) in
    let mac_hi = Memory.read_u32 t.mem (Int64.add meta_addr 4L) in
    let mac = Int64.logor (Int64.of_int mac_lo) (Int64.shift_left mac_hi 16) in
    let layout_word = Memory.read_u64 t.mem (Int64.add meta_addr 8L) in
    (size, mac, layout_word)

  let deregister t ptr =
    let meta_addr = Tag.metadata_addr_local_offset ptr in
    for i = 0 to metadata_size - 1 do
      Memory.write_u8 t.mem (Int64.add meta_addr (Int64.of_int i)) 0
    done;
    live_remove t meta_addr

  (* temporal free: keep the record, bump its generation, set the freed
     flag, re-MAC — the record itself becomes the free-epoch witness *)
  let mark_freed_at t meta_addr : free_status =
    match read_meta t meta_addr with
    | exception Memory.Fault _ -> `Invalid
    | size, mac, word ->
      if
        (not (fits ~size))
        || not
             (Mac.verify ~key:t.key
                (mac_fields ~meta_addr ~size ~layout_word:word)
                ~mac)
      then `Invalid
      else if lw_freed word then `Already_freed
      else begin
        let gen = (lw_gen word + 1) mod Tag.gen_states in
        let layout_word =
          lw_pack ~layout_ptr:(lw_layout word) ~gen ~freed:true
        in
        write_record t ~meta_addr ~size ~layout_word;
        `Freed_ok
      end

  let deregister_temporal t ptr =
    mark_freed_at t (Tag.metadata_addr_local_offset ptr)

  let lookup t ptr =
    let meta_addr = Tag.metadata_addr_local_offset ptr in
    let fetches =
      [ { addr = meta_addr; bytes = 8 }; { addr = Int64.add meta_addr 8L; bytes = 8 } ]
    in
    match read_meta t meta_addr with
    | exception Memory.Fault (_, a) ->
      (Error (Printf.sprintf "metadata page fault at 0x%Lx" a), fetches)
    | size, mac, layout_word ->
      if not (fits ~size) then (Error "bad object size", fetches)
      else if
        not (Mac.verify ~key:t.key (mac_fields ~meta_addr ~size ~layout_word) ~mac)
      then (Error "MAC mismatch", fetches)
      else
        let obj_base =
          Int64.sub meta_addr (Int64.of_int (Bits.align_up size Tag.granule))
        in
        let layout_ptr = if t.temporal then lw_layout layout_word else layout_word in
        let gen = if t.temporal then lw_gen layout_word else 0 in
        let freed = t.temporal && lw_freed layout_word in
        (Ok { obj_base; obj_size = size; layout_ptr; gen; freed }, fetches)
end

(* ------------------------------------------------------------------ *)
(* Subheap scheme                                                      *)

module Subheap = struct
  type creg = creg_v = { block_size_log2 : int; metadata_offset : int64 }

  let n_cregs = 16

  let set_creg t i v =
    if i < 0 || i >= n_cregs then invalid_arg "Subheap.set_creg";
    t.cregs.(i) <- v

  let get_creg t i =
    if i < 0 || i >= n_cregs then invalid_arg "Subheap.get_creg";
    t.cregs.(i)

  let block_metadata_size = 32

  (* temporal mode doubles the record: the 32-byte header keeps its
     packing (the flags halfword at +30 becomes the block generation)
     and a 256-bit freed-slot bitmap follows at +32. Neither is covered
     by the block MAC — the same trust level as the MAC-less
     global-table rows. *)
  let temporal_metadata_size = 64

  let record_size t = if t.temporal then temporal_metadata_size else block_metadata_size

  let mac_fields ~block_base ~slot_start ~slot_end ~slot_size ~obj_size ~layout_ptr =
    [
      block_base;
      Int64.of_int slot_start;
      Int64.of_int slot_end;
      Int64.of_int slot_size;
      Int64.of_int obj_size;
      layout_ptr;
    ]

  let meta_addr_of ~creg ~block_base = Int64.add block_base creg.metadata_offset

  let write_block_metadata t ~creg ~block_base ~slot_start ~slot_end ~slot_size
      ~obj_size ~layout_ptr =
    let creg =
      match t.cregs.(creg) with
      | Some c -> c
      | None -> invalid_arg "Subheap.write_block_metadata: creg not configured"
    in
    let meta_addr = meta_addr_of ~creg ~block_base in
    let mac =
      Mac.compute ~key:t.key
        (mac_fields ~block_base ~slot_start ~slot_end ~slot_size ~obj_size
           ~layout_ptr)
    in
    Memory.write_u32 t.mem meta_addr (Int64.of_int slot_start);
    Memory.write_u32 t.mem (Int64.add meta_addr 4L) (Int64.of_int slot_end);
    Memory.write_u32 t.mem (Int64.add meta_addr 8L) (Int64.of_int slot_size);
    Memory.write_u32 t.mem (Int64.add meta_addr 12L) (Int64.of_int obj_size);
    Memory.write_u64 t.mem (Int64.add meta_addr 16L) layout_ptr;
    Memory.write_u16 t.mem (Int64.add meta_addr 24L)
      (Int64.to_int (Int64.logand mac 0xFFFFL));
    Memory.write_u32 t.mem (Int64.add meta_addr 26L)
      (Int64.shift_right_logical mac 16);
    if t.temporal then begin
      (* block generation continues from whatever the previous tenant of
         this block address reached (bumped by clear_block_metadata) *)
      let gen = Memory.read_u16 t.mem (Int64.add meta_addr 30L) land 0xF in
      Memory.write_u16 t.mem (Int64.add meta_addr 30L) gen;
      for i = 32 to temporal_metadata_size - 1 do
        Memory.write_u8 t.mem (Int64.add meta_addr (Int64.of_int i)) 0
      done
    end
    else Memory.write_u16 t.mem (Int64.add meta_addr 30L) 0;
    live_add t
      { scheme = Scheme_subheap; meta_addr; meta_bytes = record_size t;
        mac_off = Some 24 }

  let block_gen t ~creg ~block_base =
    if not t.temporal then 0
    else
      match t.cregs.(creg) with
      | None -> 0
      | Some c ->
        let meta_addr = meta_addr_of ~creg:c ~block_base in
        Memory.read_u16 t.mem (Int64.add meta_addr 30L) land 0xF

  let clear_block_metadata t ~creg ~block_base =
    match t.cregs.(creg) with
    | None -> ()
    | Some c ->
      let meta_addr = meta_addr_of ~creg:c ~block_base in
      let gen =
        if t.temporal then
          (Memory.read_u16 t.mem (Int64.add meta_addr 30L) + 1) land 0xF
        else 0
      in
      for i = 0 to record_size t - 1 do
        Memory.write_u8 t.mem (Int64.add meta_addr (Int64.of_int i)) 0
      done;
      if t.temporal then
        Memory.write_u16 t.mem (Int64.add meta_addr 30L) gen;
      live_remove t meta_addr

  let tag_pointer ~creg ~addr = Tag.make_subheap ~addr ~creg ~subobj:0

  (* per-slot temporal state: one freed bit per slot in the bitmap that
     trails the header *)
  let bitmap_byte_addr meta_addr slot =
    Int64.add meta_addr (Int64.of_int (32 + (slot lsr 3)))

  let slot_freed t ~meta_addr ~slot =
    t.temporal
    && slot >= 0
    && slot < 256
    && Memory.read_u8 t.mem (bitmap_byte_addr meta_addr slot)
       land (1 lsl (slot land 7))
       <> 0

  let slot_mark_freed t ~creg ~block_base ~slot : free_status =
    match t.cregs.(creg) with
    | None -> `Invalid
    | Some c ->
      if slot < 0 || slot >= 256 then `Invalid
      else begin
        let meta_addr = meta_addr_of ~creg:c ~block_base in
        let a = bitmap_byte_addr meta_addr slot in
        let byte = Memory.read_u8 t.mem a in
        let bit = 1 lsl (slot land 7) in
        if byte land bit <> 0 then `Already_freed
        else begin
          Memory.write_u8 t.mem a (byte lor bit);
          `Freed_ok
        end
      end

  let mark_all_slots_freed t meta_addr =
    for i = 32 to temporal_metadata_size - 1 do
      Memory.write_u8 t.mem (Int64.add meta_addr (Int64.of_int i)) 0xFF
    done

  let lookup t ptr =
    let creg_idx = Tag.creg_index ptr in
    match t.cregs.(creg_idx) with
    | None -> (Error "control register not configured", [], 0)
    | Some creg ->
      let addr = Tag.addr ptr in
      let block_base = Bits.align_down64 addr (1 lsl creg.block_size_log2) in
      let meta_addr = meta_addr_of ~creg ~block_base in
      let fetches =
        [
          { addr = meta_addr; bytes = 8 };
          { addr = Int64.add meta_addr 8L; bytes = 8 };
          { addr = Int64.add meta_addr 16L; bytes = 8 };
          { addr = Int64.add meta_addr 24L; bytes = 8 };
        ]
      in
      let read () =
        let slot_start = Int64.to_int (Memory.read_u32 t.mem meta_addr) in
        let slot_end =
          Int64.to_int (Memory.read_u32 t.mem (Int64.add meta_addr 4L))
        in
        let slot_size =
          Int64.to_int (Memory.read_u32 t.mem (Int64.add meta_addr 8L))
        in
        let obj_size =
          Int64.to_int (Memory.read_u32 t.mem (Int64.add meta_addr 12L))
        in
        let layout_ptr = Memory.read_u64 t.mem (Int64.add meta_addr 16L) in
        let mac_lo = Memory.read_u16 t.mem (Int64.add meta_addr 24L) in
        let mac_hi = Memory.read_u32 t.mem (Int64.add meta_addr 26L) in
        let mac =
          Int64.logor (Int64.of_int mac_lo) (Int64.shift_left mac_hi 16)
        in
        (slot_start, slot_end, slot_size, obj_size, layout_ptr, mac)
      in
      (match read () with
      | exception Memory.Fault (_, a) ->
        (Error (Printf.sprintf "metadata page fault at 0x%Lx" a), fetches, 0)
      | slot_start, slot_end, slot_size, obj_size, layout_ptr, mac ->
        if slot_size <= 0 || obj_size <= 0 || obj_size > slot_size then
          (Error "bad slot geometry", fetches, 0)
        else if
          not
            (Mac.verify ~key:t.key
               (mac_fields ~block_base ~slot_start ~slot_end ~slot_size
                  ~obj_size ~layout_ptr)
               ~mac)
        then (Error "MAC mismatch", fetches, 0)
        else
          let off = Int64.to_int (Int64.sub addr block_base) in
          if off < slot_start || off >= slot_end then
            (Error "address outside slot array", fetches, 0)
          else
            let slot = (off - slot_start) / slot_size in
            let obj_base =
              Int64.add block_base (Int64.of_int (slot_start + (slot * slot_size)))
            in
            let gen =
              if t.temporal then
                Memory.read_u16 t.mem (Int64.add meta_addr 30L) land 0xF
              else 0
            in
            let freed = slot_freed t ~meta_addr ~slot in
            let fetches =
              if t.temporal then
                fetches @ [ { addr = bitmap_byte_addr meta_addr slot; bytes = 1 } ]
              else fetches
            in
            (* the slot-size constraint (§3.3.2) makes this division a
               shift, so it is not charged as a multi-cycle divide *)
            (Ok { obj_base; obj_size; layout_ptr; gen; freed }, fetches, 0))
end

(* ------------------------------------------------------------------ *)
(* Global-table scheme                                                 *)

module Global_table = struct
  let row_addr t i = Int64.add t.gt_base (Int64.of_int (i * 16))

  (* With the 44-bit virtual address, bits 47..44 of each row word are
     spare: w0 bit 44 is the freed flag, w1 bits 47..44 the generation.
     Spatial-only rows leave them zero, so the packing is unchanged. *)
  let gt_freed_bit = Int64.shift_left 1L 44

  let gt_gen w1 = Int64.to_int (Int64.shift_right_logical w1 44) land 0xF

  let gt_with_gen w1 g =
    Bits.insert_int w1 ~lo:44 ~width:4 (g land 0xF)

  let register t ~base ~size ~layout_ptr =
    match t.gt_free with
    | [] -> None
    | i :: rest ->
      t.gt_free <- rest;
      t.gt_used <- t.gt_used + 1;
      let addr = row_addr t i in
      let w0 =
        Int64.logor (Bits.u48 base)
          (Int64.shift_left (Int64.of_int (size land 0xFFFF)) 48)
      in
      let w1 =
        Int64.logor (Bits.u48 layout_ptr)
          (Int64.shift_left (Int64.of_int ((size lsr 16) land 0xFFFF)) 48)
      in
      Memory.write_u64 t.mem addr w0;
      Memory.write_u64 t.mem (Int64.add addr 8L) w1;
      live_add t
        { scheme = Scheme_global_table; meta_addr = addr; meta_bytes = 16;
          mac_off = None };
      Some (Tag.make_global_table ~addr:base ~index:i)

  let deregister t ptr =
    let i = Tag.table_index ptr in
    if i > 0 && i < t.gt_entries then begin
      let addr = row_addr t i in
      Memory.write_u64 t.mem addr 0L;
      Memory.write_u64 t.mem (Int64.add addr 8L) 0L;
      live_remove t addr;
      t.gt_free <- i :: t.gt_free;
      t.gt_used <- t.gt_used - 1
    end

  (* temporal free: the row is quarantined — it keeps its base/size (so
     stale promotes still resolve and trap with the temporal reason),
     gains the freed bit and a bumped generation, and is never returned
     to the free list *)
  let mark_freed_at_row t addr : free_status =
    let w0 = Memory.read_u64 t.mem addr in
    let w1 = Memory.read_u64 t.mem (Int64.add addr 8L) in
    let base = Int64.logand w0 Tag.addr_mask in
    let size_lo = Int64.to_int (Int64.shift_right_logical w0 48) in
    let size_hi = Int64.to_int (Int64.shift_right_logical w1 48) in
    let size = size_lo lor (size_hi lsl 16) in
    if Int64.equal base 0L || size = 0 then `Invalid
    else if Int64.logand w0 gt_freed_bit <> 0L then `Already_freed
    else begin
      Memory.write_u64 t.mem addr (Int64.logor w0 gt_freed_bit);
      Memory.write_u64 t.mem (Int64.add addr 8L)
        (gt_with_gen w1 ((gt_gen w1 + 1) mod Tag.gen_states));
      `Freed_ok
    end

  let deregister_temporal t ptr : free_status =
    let i = Tag.table_index ptr in
    if i <= 0 || i >= t.gt_entries then `Invalid
    else mark_freed_at_row t (row_addr t i)

  let rows_in_use t = t.gt_used

  let lookup t ptr =
    let i = Tag.table_index ptr in
    if i <= 0 || i >= t.gt_entries then (Error "table index out of range", [])
    else
      let addr = row_addr t i in
      let fetches =
        [ { addr; bytes = 8 }; { addr = Int64.add addr 8L; bytes = 8 } ]
      in
      let w0 = Memory.read_u64 t.mem addr in
      let w1 = Memory.read_u64 t.mem (Int64.add addr 8L) in
      let base = if t.temporal then Int64.logand w0 Tag.addr_mask else Bits.u48 w0 in
      let size_lo = Int64.to_int (Int64.shift_right_logical w0 48) in
      let size_hi = Int64.to_int (Int64.shift_right_logical w1 48) in
      let size = size_lo lor (size_hi lsl 16) in
      let layout_ptr =
        if t.temporal then Int64.logand w1 Tag.addr_mask else Bits.u48 w1
      in
      let gen = if t.temporal then gt_gen w1 else 0 in
      let freed = t.temporal && Int64.logand w0 gt_freed_bit <> 0L in
      if Int64.equal base 0L || size = 0 then (Error "row not in use", fetches)
      else (Ok { obj_base = base; obj_size = size; layout_ptr; gen; freed }, fetches)
end

(* ------------------------------------------------------------------ *)
(* Fault-injector entry point: a LEGITIMATE free of a live record (the
   uaf_use / double_free fault classes), as opposed to [wipe_entry]'s
   attacker memset. In temporal mode this is the real free-epoch
   transition; outside it, it models what the spatial-only design does
   on free — the record simply vanishes. *)

let mark_freed t (e : live_entry) : free_status =
  if not t.temporal then begin
    wipe_entry t e;
    `Freed_ok
  end
  else
    match e.scheme with
    | Scheme_local_offset -> Local_offset.mark_freed_at t e.meta_addr
    | Scheme_subheap ->
      (* the injector frees the whole block's slots: every object in the
         block enters the freed epoch *)
      Subheap.mark_all_slots_freed t e.meta_addr;
      `Freed_ok
    | Scheme_global_table -> Global_table.mark_freed_at_row t e.meta_addr
