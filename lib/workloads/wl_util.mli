(** Shared MiniC fragments for the workloads: a deterministic LCG random
    number generator implemented {e in MiniC} (so its instructions are
    part of the measured program, like the benchmarks' own libc rand),
    plus small helpers. *)

val seed_global : Ifp_compiler.Ir.global
(** Scalar [i64] global ["__seed"], accessed by name (uninstrumented).

    Note for parallel campaigns: although this [Ir.global] record is
    shared by every workload program, the PRNG {e state} lives at the
    global's address in each run's own simulated memory — there is no
    host-side mutable state here, so concurrent runs of workloads using
    [__seed] stay independent and deterministic. *)

val rand_func : Ifp_compiler.Ir.func
(** [__rand() : i64] — LCG, returns a non-negative 31-bit value. *)

val rand : Ifp_compiler.Ir.expr
(** [Call ("__rand", [])]. *)

val rand_mod : int -> Ifp_compiler.Ir.expr
(** [__rand() % n]. *)

val srand : int -> Ifp_compiler.Ir.stmt
(** Seed assignment. *)

val for_ :
  string ->
  from:Ifp_compiler.Ir.expr ->
  below:Ifp_compiler.Ir.expr ->
  Ifp_compiler.Ir.stmt list ->
  Ifp_compiler.Ir.stmt list
(** C-style [for (v = from; v < below; v++) body] as Let+While. *)

val block : Ifp_compiler.Ir.stmt list list -> Ifp_compiler.Ir.stmt list
(** Concatenate statement groups. *)
