type cost = {
  instrs : int;
  ifp_instrs : (Ifp_isa.Insn.kind * int) list;
  touches : (int64 * int) list;
}

let cost ?(ifp_instrs = []) ?(touches = []) instrs = { instrs; ifp_instrs; touches }

let zero_cost = { instrs = 0; ifp_instrs = []; touches = [] }

let add_cost a b =
  {
    instrs = a.instrs + b.instrs;
    ifp_instrs = a.ifp_instrs @ b.ifp_instrs;
    touches = a.touches @ b.touches;
  }

type stats = {
  mutable live_bytes : int;
  mutable peak_live_bytes : int;
  mutable footprint_bytes : int;
  mutable n_allocs : int;
  mutable n_frees : int;
}

let fresh_stats () =
  { live_bytes = 0; peak_live_bytes = 0; footprint_bytes = 0; n_allocs = 0; n_frees = 0 }

let note_alloc s ~payload ~footprint ~base =
  s.live_bytes <- s.live_bytes + payload;
  if s.live_bytes > s.peak_live_bytes then s.peak_live_bytes <- s.live_bytes;
  let fp = Int64.to_int (Int64.sub footprint base) in
  if fp > s.footprint_bytes then s.footprint_bytes <- fp;
  s.n_allocs <- s.n_allocs + 1

let note_free s ~payload =
  s.live_bytes <- s.live_bytes - payload;
  s.n_frees <- s.n_frees + 1

type t = {
  name : string;
  malloc : size:int -> cty:Ifp_types.Ctype.t option -> int64 * cost;
  free : int64 -> cost;
  owns : int64 -> bool;
  stats : unit -> stats;
  extra_stats : unit -> (string * int) list;
}

exception Out_of_memory of string
exception Double_free of int64
