open Alloc_intf
module Memory = Ifp_machine.Memory

let header_size = 16

type state = {
  mem : Memory.t;
  base : int64;
  limit : int64;
  mutable brk : int64;
  bins : (int, int64 list ref) Hashtbl.t; (* size class -> free payloads *)
  stats : stats;
}

let bin_for st cls =
  match Hashtbl.find_opt st.bins cls with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace st.bins cls r;
    r

let carve st bytes ~align =
  let payload = Ifp_util.Bits.align_up64 (Int64.add st.brk 16L) align in
  let hdr = Int64.sub payload 16L in
  let top = Int64.add payload (Int64.of_int bytes) in
  if Int64.compare top st.limit > 0 then
    raise (Out_of_memory "baseline heap exhausted");
  st.brk <- top;
  (hdr, payload)

let write_header st ~hdr ~cls ~requested =
  Memory.write_u32 st.mem hdr (Int64.of_int cls);
  Memory.write_u32 st.mem (Int64.add hdr 4L) (Int64.of_int requested);
  Memory.write_u64 st.mem (Int64.add hdr 8L) 0xC0FFEEL

let malloc st ~size ~cty:_ =
  let size = max size 1 in
  let cls = Ifp_util.Bits.align_up size 16 in
  let bin = bin_for st cls in
  let payload, instrs =
    match !bin with
    | p :: rest ->
      bin := rest;
      write_header st ~hdr:(Int64.sub p 16L) ~cls ~requested:size;
      (p, 80)
    | [] ->
      let hdr, payload = carve st cls ~align:16 in
      write_header st ~hdr ~cls ~requested:size;
      (payload, 150)
  in
  note_alloc st.stats ~payload:size ~footprint:st.brk ~base:st.base;
  (payload, cost ~touches:[ (Int64.sub payload 16L, header_size) ] instrs)

let free st ptr =
  let p = Ifp_util.Bits.u48 ptr in
  if Int64.equal p 0L then zero_cost
  else begin
    let hdr = Int64.sub p 16L in
    let cls = Int64.to_int (Memory.read_u32 st.mem hdr) in
    let requested = Int64.to_int (Memory.read_u32 st.mem (Int64.add hdr 4L)) in
    let bin = bin_for st cls in
    (* glibc-style tcache double-free check: the payload is already
       sitting in its size-class bin. Detection is deterministic and
       touches no guest memory, so spatial-only runs are unaffected. *)
    if List.exists (Int64.equal p) !bin then raise (Double_free p);
    bin := p :: !bin;
    note_free st.stats ~payload:requested;
    cost ~touches:[ (hdr, header_size) ] 60
  end

let create_raw ~memory ~base ~size =
  Memory.map memory ~base ~size;
  let st =
    {
      mem = memory;
      base;
      limit = Int64.add base (Int64.of_int size);
      brk = base;
      bins = Hashtbl.create 64;
      stats = fresh_stats ();
    }
  in
  let alloc =
    {
      name = "baseline";
      malloc = (fun ~size ~cty -> malloc st ~size ~cty);
      free = (fun p -> free st p);
      owns =
        (fun p ->
          let a = Ifp_isa.Tag.addr p in
          Int64.compare a st.base >= 0 && Int64.compare a st.limit < 0);
      stats = (fun () -> st.stats);
      extra_stats = (fun () -> [ ("bins", Hashtbl.length st.bins) ]);
    }
  in
  let raw ~align bytes =
    match carve st bytes ~align with
    | _, payload ->
      note_alloc st.stats ~payload:bytes ~footprint:st.brk ~base:st.base;
      Some payload
    | exception Out_of_memory _ -> None
  in
  (alloc, raw)

let create ~memory ~base ~size = fst (create_raw ~memory ~base ~size)
