open Alloc_intf
module Meta = Ifp_metadata.Meta
module Tag = Ifp_isa.Tag
module Trap = Ifp_isa.Trap

let create ~meta ~tenv ~base_alloc =
  let unprotected = ref 0 in
  let quarantined = ref 0 in
  let temporal = Meta.temporal meta in
  let layout_of cty =
    match cty with
    | None -> 0L
    | Some ty -> Meta.intern_layout meta tenv ty
  in
  let malloc ~size ~cty =
    let size = max size 1 in
    let layout_ptr = layout_of cty in
    if Meta.Local_offset.fits ~size then begin
      let footprint = Meta.Local_offset.footprint ~size in
      let raw, c = base_alloc.malloc ~size:footprint ~cty:None in
      let tagged = Meta.Local_offset.register meta ~base:raw ~size ~layout_ptr in
      let meta_addr = Tag.metadata_addr_local_offset tagged in
      let c' =
        cost 30
          ~ifp_instrs:[ (Ifp_isa.Insn.Ifpmac, 1); (Ifp_isa.Insn.Ifpmd, 1) ]
          ~touches:[ (meta_addr, Meta.Local_offset.metadata_size) ]
      in
      (tagged, add_cost c c')
    end
    else begin
      let raw, c = base_alloc.malloc ~size ~cty:None in
      match Meta.Global_table.register meta ~base:raw ~size ~layout_ptr with
      | Some tagged ->
        (tagged, add_cost c (cost 50 ~ifp_instrs:[ (Ifp_isa.Insn.Ifpmd, 1) ]))
      | None ->
        incr unprotected;
        (raw, add_cost c (cost 20))
    end
  in
  (* Temporal free: the metadata record becomes the free-epoch witness
     (generation bumped, freed flag set) and the payload is quarantined —
     never returned to the base allocator, so the address range cannot be
     recycled into a colliding generation. A free of an already-freed
     record is the architectural double-free trap. *)
  let free_temporal ptr =
    let obj_size lookup_res =
      match lookup_res with Ok m -> m.Meta.obj_size | Error _ -> 0
    in
    match Tag.scheme ptr with
    | Tag.Local_offset -> (
      let size = obj_size (fst (Meta.Local_offset.lookup meta ptr)) in
      match Meta.Local_offset.deregister_temporal meta ptr with
      | `Already_freed -> Trap.raise_trap (Trap.Double_free { ptr })
      | `Invalid -> cost 15
      | `Freed_ok ->
        let fp = Meta.Local_offset.footprint ~size in
        quarantined := !quarantined + fp;
        note_free (base_alloc.stats ()) ~payload:fp;
        cost 20
          ~ifp_instrs:[ (Ifp_isa.Insn.Ifpmac, 1) ]
          ~touches:
            [ (Tag.metadata_addr_local_offset ptr, Meta.Local_offset.metadata_size) ])
    | Tag.Global_table -> (
      let size = obj_size (fst (Meta.Global_table.lookup meta ptr)) in
      match Meta.Global_table.deregister_temporal meta ptr with
      | `Already_freed -> Trap.raise_trap (Trap.Double_free { ptr })
      | `Invalid -> cost 15
      | `Freed_ok ->
        quarantined := !quarantined + size;
        note_free (base_alloc.stats ()) ~payload:size;
        cost 35)
    | Tag.Legacy | Tag.Subheap ->
      (* unprotected allocation (no metadata): no epoch to retire, the
         base free proceeds as in spatial mode *)
      base_alloc.free (Tag.addr ptr)
  in
  let free ptr =
    if Tag.is_null ptr then zero_cost
    else if temporal then free_temporal ptr
    else begin
      let raw = Tag.addr ptr in
      let extra =
        match Tag.scheme ptr with
        | Tag.Local_offset ->
          Meta.Local_offset.deregister meta ptr;
          cost 15
            ~touches:
              [ (Tag.metadata_addr_local_offset ptr, Meta.Local_offset.metadata_size) ]
        | Tag.Global_table ->
          Meta.Global_table.deregister meta ptr;
          cost 30
        | Tag.Legacy | Tag.Subheap -> zero_cost
      in
      add_cost (base_alloc.free raw) extra
    end
  in
  {
    name = "wrapped";
    malloc;
    free;
    owns = (fun p -> base_alloc.owns p);
    stats = (fun () -> (base_alloc.stats) ());
    extra_stats =
      (fun () ->
        ("unprotected_allocs", !unprotected)
        :: (if temporal then [ ("quarantined_bytes", !quarantined) ] else []));
  }

let unprotected_allocs t =
  match List.assoc_opt "unprotected_allocs" (t.extra_stats ()) with
  | Some n -> n
  | None -> 0
