(** Common allocator interface and accounting types.

    Every allocator returns, with each operation, a {!cost} describing
    the work the runtime-library code would have executed: an estimated
    instruction count (calibrated per allocator, see DESIGN.md) plus the
    list of memory locations touched, which the VM replays through the
    D-cache model. *)

type cost = {
  instrs : int;  (** dynamic instructions of the allocator fast/slow path *)
  ifp_instrs : (Ifp_isa.Insn.kind * int) list;
      (** IFP instructions executed by the runtime (e.g. [ifpmac],
          [ifpmd] during registration) *)
  touches : (int64 * int) list;  (** (address, bytes) memory traffic *)
}

val cost : ?ifp_instrs:(Ifp_isa.Insn.kind * int) list ->
  ?touches:(int64 * int) list -> int -> cost

val zero_cost : cost
val add_cost : cost -> cost -> cost

type stats = {
  mutable live_bytes : int;  (** payload bytes currently allocated *)
  mutable peak_live_bytes : int;
  mutable footprint_bytes : int;
      (** heap high-water mark including headers, padding and metadata —
          the maximum-resident-size proxy used for Fig. 12 *)
  mutable n_allocs : int;
  mutable n_frees : int;
}

val fresh_stats : unit -> stats
val note_alloc : stats -> payload:int -> footprint:int64 -> base:int64 -> unit
(** [footprint] is the current heap break; [base] the heap base. *)

val note_free : stats -> payload:int -> unit

(** A first-class allocator. [cty] is the static type of the allocation
    when the compiler could determine it (used to attach a layout table);
    [count] is the array length (1 for single objects) so that
    [malloc(n * sizeof t)] is expressible. *)
type t = {
  name : string;
  malloc : size:int -> cty:Ifp_types.Ctype.t option -> int64 * cost;
  free : int64 -> cost;
  owns : int64 -> bool;
      (** address-range ownership: does this allocator's arena contain
          the pointer's address? Composite allocators ({!Mixed}) dispatch
          frees on this instead of probing [free]'s return value. *)
  stats : unit -> stats;
  extra_stats : unit -> (string * int) list;
      (** allocator-specific counters (e.g. unprotected allocations,
          subheap blocks in use) *)
}

exception Out_of_memory of string

exception Double_free of int64
(** Raised by an allocator that detects a free of an already-free
    payload (the baseline allocator's glibc-style header check). The VM
    reports it as a program abort, not an IFP trap. *)
