open Alloc_intf
module Tag = Ifp_isa.Tag

let small_cutoff = 256

let create ~subheap ~wrapped =
  let malloc ~size ~cty =
    if size <= small_cutoff && cty <> None then subheap.malloc ~size ~cty
    else wrapped.malloc ~size ~cty
  in
  let free ptr =
    (* The scheme selector on the tag names the owning allocator for the
       schemes only one side produces; global-table pointers (and the
       untagged fallback when the table is full) can come from either, so
       those dispatch on the arena that contains the address. The old
       probe — call [subheap.free] and fall back to [wrapped.free] when
       the returned cost was physically [zero_cost] — misrouted every
       subheap-owned free whose legitimate cost was zero (stale creg,
       recycled block) into the wrapped heap, corrupting its bins. *)
    match Tag.scheme ptr with
    | Tag.Subheap -> subheap.free ptr
    | Tag.Local_offset -> wrapped.free ptr
    | Tag.Legacy | Tag.Global_table ->
      if subheap.owns ptr then subheap.free ptr else wrapped.free ptr
  in
  let stats () =
    let a = subheap.stats () and b = wrapped.stats () in
    {
      live_bytes = a.live_bytes + b.live_bytes;
      peak_live_bytes = a.peak_live_bytes + b.peak_live_bytes;
      footprint_bytes = a.footprint_bytes + b.footprint_bytes;
      n_allocs = a.n_allocs + b.n_allocs;
      n_frees = a.n_frees + b.n_frees;
    }
  in
  {
    name = "mixed";
    malloc;
    free;
    owns = (fun p -> subheap.owns p || wrapped.owns p);
    stats;
    extra_stats =
      (fun () ->
        List.map (fun (k, n) -> ("subheap." ^ k, n)) (subheap.extra_stats ())
        @ List.map (fun (k, n) -> ("wrapped." ^ k, n)) (wrapped.extra_stats ()));
  }
