open Alloc_intf
module Meta = Ifp_metadata.Meta
module Tag = Ifp_isa.Tag
module Trap = Ifp_isa.Trap
module Memory = Ifp_machine.Memory

let min_block_log2 = 12
let min_slots_per_block = 8

type block = {
  bbase : int64;
  nslots : int;
  mutable free_slots : int list;
  mutable next_uninit : int;
  mutable used : int;
}

type pool = {
  obj_size : int;
  slot_size : int;
  layout_ptr : int64;
  block_log2 : int;
  creg : int;
  mutable partial : block list; (* blocks with at least one free slot *)
  mutable n_blocks : int;
}

type state = {
  meta : Meta.t;
  tenv : Ifp_types.Ctype.tenv;
  buddy : Buddy.t;
  base : int64;
  limit : int64;
  max_block_log2 : int;
  slot_start : int;
      (* metadata occupies [0, slot_start) of each block: 32 B spatial,
         64 B in temporal mode (header + freed-slot bitmap) *)
  temporal : bool;
  mutable quarantined : int;
  pools : (int * int64, pool) Hashtbl.t;
  cregs_by_log2 : (int, int) Hashtbl.t;
  mutable next_creg : int;
  blocks : (int64, pool * block) Hashtbl.t;
  huge : (int64, int) Hashtbl.t; (* base -> block_log2 of global-table fallbacks *)
  stats : stats;
}

let creg_for st log2 =
  match Hashtbl.find_opt st.cregs_by_log2 log2 with
  | Some i -> Some i
  | None ->
    if st.next_creg >= Meta.Subheap.n_cregs then None
    else begin
      let i = st.next_creg in
      st.next_creg <- i + 1;
      Meta.Subheap.set_creg st.meta i
        (Some { Meta.Subheap.block_size_log2 = log2; metadata_offset = 0L });
      Hashtbl.replace st.cregs_by_log2 log2 i;
      Some i
    end

let max_pooled_slot = 4096

let block_log2_for st slot_size =
  let rec go l =
    if l > st.max_block_log2 then None
    else if ((1 lsl l) - st.slot_start) / slot_size >= min_slots_per_block then
      Some l
    else go (l + 1)
  in
  go min_block_log2

let new_block st pool =
  match Buddy.alloc st.buddy pool.block_log2 with
  | None -> raise (Out_of_memory "subheap arena exhausted")
  | Some bbase ->
    let capacity = (1 lsl pool.block_log2) - st.slot_start in
    let nslots = capacity / pool.slot_size in
    (* the temporal freed-slot bitmap is 256 bits wide *)
    let nslots = if st.temporal then min nslots 256 else nslots in
    Meta.Subheap.write_block_metadata st.meta ~creg:pool.creg ~block_base:bbase
      ~slot_start:st.slot_start
      ~slot_end:(st.slot_start + (nslots * pool.slot_size))
      ~slot_size:pool.slot_size ~obj_size:pool.obj_size
      ~layout_ptr:pool.layout_ptr;
    let b = { bbase; nslots; free_slots = []; next_uninit = 0; used = 0 } in
    pool.partial <- b :: pool.partial;
    pool.n_blocks <- pool.n_blocks + 1;
    Hashtbl.replace st.blocks bbase (pool, b);
    b

let pool_for st ~size ~layout_ptr =
  let slot_size = Ifp_util.Bits.align_up (max size 16) 16 in
  if slot_size > max_pooled_slot then None
  else
  match Hashtbl.find_opt st.pools (size, layout_ptr) with
  | Some p -> Some p
  | None -> (
    match block_log2_for st slot_size with
    | None -> None
    | Some log2 -> (
      match creg_for st log2 with
      | None -> None
      | Some creg ->
        let p =
          {
            obj_size = size;
            slot_size;
            layout_ptr;
            block_log2 = log2;
            creg;
            partial = [];
            n_blocks = 0;
          }
        in
        Hashtbl.replace st.pools (size, layout_ptr) p;
        Some p))

let malloc st ~size ~cty =
  let size = max size 1 in
  let layout_ptr =
    match cty with
    | None -> 0L
    | Some ty -> Meta.intern_layout st.meta st.tenv ty
  in
  match pool_for st ~size ~layout_ptr with
  | Some pool ->
    let b, block_cost =
      match pool.partial with
      | b :: _ -> (b, zero_cost)
      | [] ->
        let b = new_block st pool in
        ( b,
          cost 130
            ~ifp_instrs:[ (Ifp_isa.Insn.Ifpmac, 1) ]
            ~touches:[ (b.bbase, Meta.Subheap.record_size st.meta) ] )
    in
    let slot =
      match b.free_slots with
      | s :: rest ->
        b.free_slots <- rest;
        s
      | [] ->
        let s = b.next_uninit in
        b.next_uninit <- s + 1;
        s
    in
    b.used <- b.used + 1;
    if b.used = b.nslots then
      pool.partial <- List.filter (fun x -> x != b) pool.partial;
    let addr =
      Int64.add b.bbase (Int64.of_int (st.slot_start + (slot * pool.slot_size)))
    in
    note_alloc st.stats ~payload:size
      ~footprint:(Buddy.high_water st.buddy)
      ~base:st.base;
    let ptr = Meta.Subheap.tag_pointer ~creg:pool.creg ~addr in
    let ptr =
      if st.temporal then
        Tag.with_gen ptr
          (Meta.Subheap.block_gen st.meta ~creg:pool.creg ~block_base:b.bbase)
      else ptr
    in
    (ptr, add_cost block_cost (cost 25 ~ifp_instrs:[ (Ifp_isa.Insn.Ifpmd, 1) ]))
  | None -> begin
    (* oversized allocation: raw buddy block + global-table registration *)
    let log2 = max min_block_log2 (Ifp_util.Bits.ceil_log2 size) in
    match Buddy.alloc st.buddy log2 with
    | None -> raise (Out_of_memory "subheap arena exhausted (huge)")
    | Some base ->
      Hashtbl.replace st.huge base log2;
      note_alloc st.stats ~payload:size
        ~footprint:(Buddy.high_water st.buddy)
        ~base:st.base;
      let ptr =
        match Meta.Global_table.register st.meta ~base ~size ~layout_ptr with
        | Some p -> p
        | None -> base
      in
      (ptr, cost 150 ~ifp_instrs:[ (Ifp_isa.Insn.Ifpmd, 1) ])
  end

let free st ptr =
  if Tag.is_null ptr then zero_cost
  else
    let addr = Tag.addr ptr in
    match Tag.scheme ptr with
    | Tag.Subheap -> (
      let creg_idx = Tag.creg_index ptr in
      match Meta.Subheap.get_creg st.meta creg_idx with
      | None -> zero_cost
      | Some { Meta.Subheap.block_size_log2; _ } -> (
        let bbase = Ifp_util.Bits.align_down64 addr (1 lsl block_size_log2) in
        match Hashtbl.find_opt st.blocks bbase with
        | None -> zero_cost
        | Some (pool, b) ->
          let off = Int64.to_int (Int64.sub addr bbase) - st.slot_start in
          let slot = off / pool.slot_size in
          if st.temporal then begin
            (* quarantine: the slot's bit in the freed bitmap is the
               free-epoch witness; the slot is never handed out again *)
            match
              Meta.Subheap.slot_mark_freed st.meta ~creg:pool.creg
                ~block_base:bbase ~slot
            with
            | `Already_freed -> Trap.raise_trap (Trap.Double_free { ptr })
            | `Invalid -> zero_cost
            | `Freed_ok ->
              st.quarantined <- st.quarantined + pool.slot_size;
              note_free st.stats ~payload:pool.obj_size;
              cost 25 ~touches:[ (Int64.add bbase 32L, 1) ]
          end
          else begin
            let was_full = b.used = b.nslots in
            b.free_slots <- slot :: b.free_slots;
            b.used <- b.used - 1;
            if was_full then pool.partial <- b :: pool.partial;
            note_free st.stats ~payload:pool.obj_size;
            cost 20
          end))
    | Tag.Global_table -> (
      match Hashtbl.find_opt st.huge addr with
      | None -> zero_cost
      | Some log2 ->
        if st.temporal then begin
          (* the huge entry stays so a re-free reaches the quarantined
             row and traps as a double free; the buddy block is never
             returned *)
          match Meta.Global_table.deregister_temporal st.meta ptr with
          | `Already_freed -> Trap.raise_trap (Trap.Double_free { ptr })
          | `Invalid -> zero_cost
          | `Freed_ok ->
            st.quarantined <- st.quarantined + (1 lsl log2);
            note_free st.stats ~payload:0;
            cost 60
        end
        else begin
          Hashtbl.remove st.huge addr;
          Meta.Global_table.deregister st.meta ptr;
          Buddy.free st.buddy addr log2;
          note_free st.stats ~payload:0;
          cost 60
        end)
    | Tag.Legacy | Tag.Local_offset -> (
      (* pointer not from this allocator (or fallback legacy) *)
      match Hashtbl.find_opt st.huge addr with
      | Some log2 ->
        Hashtbl.remove st.huge addr;
        if st.temporal then st.quarantined <- st.quarantined + (1 lsl log2)
        else Buddy.free st.buddy addr log2;
        note_free st.stats ~payload:0;
        cost 60
      | None -> zero_cost)

let create ~meta ~tenv ~memory ~base ~size_log2 =
  Memory.map memory ~base ~size:(1 lsl size_log2);
  let st =
    {
      meta;
      tenv;
      buddy = Buddy.create ~base ~size_log2 ~min_log2:min_block_log2;
      base;
      limit = Int64.add base (Int64.of_int (1 lsl size_log2));
      max_block_log2 = min 22 size_log2;
      slot_start = Meta.Subheap.record_size meta;
      temporal = Meta.temporal meta;
      quarantined = 0;
      pools = Hashtbl.create 64;
      cregs_by_log2 = Hashtbl.create 8;
      next_creg = 0;
      blocks = Hashtbl.create 256;
      huge = Hashtbl.create 16;
      stats = fresh_stats ();
    }
  in
  {
    name = "subheap";
    malloc = (fun ~size ~cty -> malloc st ~size ~cty);
    free = (fun p -> free st p);
    owns =
      (fun p ->
        let a = Tag.addr p in
        Int64.compare a st.base >= 0 && Int64.compare a st.limit < 0);
    stats = (fun () -> st.stats);
    extra_stats =
      (fun () ->
        [
          ("pools", Hashtbl.length st.pools);
          ("blocks", Hashtbl.length st.blocks);
          ("cregs", st.next_creg);
          ("huge", Hashtbl.length st.huge);
        ]
        @ if st.temporal then [ ("quarantined_bytes", st.quarantined) ] else []);
  }
