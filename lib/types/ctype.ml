type t =
  | Void
  | I8
  | I16
  | I32
  | I64
  | F64
  | Ptr of t
  | Struct of string
  | Array of t * int

type field = { fname : string; fty : t }
type struct_def = { sname : string; fields : field list }

module Smap = Map.Make (String)

type tenv = struct_def Smap.t

let empty_tenv = Smap.empty

let declare env def =
  if Smap.mem def.sname env then
    invalid_arg ("Ctype.declare: duplicate struct " ^ def.sname);
  Smap.add def.sname def env

let lookup env name =
  match Smap.find_opt name env with
  | Some def -> def
  | None -> raise Not_found

let bindings env = Smap.bindings env

let rec alignof env = function
  | Void -> 1
  | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 | F64 | Ptr _ -> 8
  | Array (elt, _) -> alignof env elt
  | Struct name ->
    let def = lookup env name in
    List.fold_left (fun a f -> max a (alignof env f.fty)) 1 def.fields

let rec sizeof env = function
  | Void -> 0
  | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 | F64 | Ptr _ -> 8
  | Array (elt, n) -> n * sizeof env elt
  | Struct name as ty ->
    let def = lookup env name in
    let off =
      List.fold_left
        (fun off f ->
          Ifp_util.Bits.align_up off (alignof env f.fty) + sizeof env f.fty)
        0 def.fields
    in
    Ifp_util.Bits.align_up off (alignof env ty)

let fields_with_offsets env sname =
  let def = lookup env sname in
  let _, acc =
    List.fold_left
      (fun (off, acc) f ->
        let off = Ifp_util.Bits.align_up off (alignof env f.fty) in
        (off + sizeof env f.fty, (f, off) :: acc))
      (0, []) def.fields
  in
  List.rev acc

let field_offset env sname fname =
  let rec go = function
    | [] -> raise Not_found
    | (f, off) :: rest ->
      if String.equal f.fname fname then (off, f.fty) else go rest
  in
  go (fields_with_offsets env sname)

let is_scalar = function
  | I8 | I16 | I32 | I64 | F64 | Ptr _ -> true
  | Void | Struct _ | Array _ -> false

let rec equal a b =
  match (a, b) with
  | Void, Void | I8, I8 | I16, I16 | I32, I32 | I64, I64 | F64, F64 -> true
  | Ptr a, Ptr b -> equal a b
  | Struct a, Struct b -> String.equal a b
  | Array (a, n), Array (b, m) -> n = m && equal a b
  | (Void | I8 | I16 | I32 | I64 | F64 | Ptr _ | Struct _ | Array _), _ ->
    false

let rec pp env fmt = function
  | Void -> Format.pp_print_string fmt "void"
  | I8 -> Format.pp_print_string fmt "i8"
  | I16 -> Format.pp_print_string fmt "i16"
  | I32 -> Format.pp_print_string fmt "i32"
  | I64 -> Format.pp_print_string fmt "i64"
  | F64 -> Format.pp_print_string fmt "f64"
  | Ptr ty -> Format.fprintf fmt "%a*" (pp env) ty
  | Struct name -> Format.fprintf fmt "struct %s" name
  | Array (ty, n) -> Format.fprintf fmt "%a[%d]" (pp env) ty n

let to_string env ty = Format.asprintf "%a" (pp env) ty
