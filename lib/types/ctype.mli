(** C-like type language shared by the compiler, the metadata schemes and
    the layout-table generator.

    Structs are declared once in a {!tenv} and referenced by name so that
    recursive types (linked lists, trees) are expressible. Sizes and
    alignments follow the usual LP64 C rules: natural alignment for
    scalars, struct alignment is the max field alignment, struct size is
    rounded up to its alignment. *)

type t =
  | Void
  | I8
  | I16
  | I32
  | I64
  | F64  (** modelled as a 64-bit slot; arithmetic happens on floats *)
  | Ptr of t
  | Struct of string  (** reference to a named struct in the {!tenv} *)
  | Array of t * int

type field = { fname : string; fty : t }
type struct_def = { sname : string; fields : field list }

type tenv

val empty_tenv : tenv

val declare : tenv -> struct_def -> tenv
(** @raise Invalid_argument on duplicate name. *)

val lookup : tenv -> string -> struct_def
(** @raise Not_found if undeclared. *)

val bindings : tenv -> (string * struct_def) list
(** All declared structs, sorted by name (the canonical order used by
    printing and structural equality). *)

val sizeof : tenv -> t -> int
val alignof : tenv -> t -> int

val field_offset : tenv -> string -> string -> int * t
(** [field_offset env sname fname] is the byte offset and type of a
    field. @raise Not_found for unknown struct or field. *)

val fields_with_offsets : tenv -> string -> (field * int) list
(** All fields of a struct with their byte offsets, in declaration
    order. *)

val is_scalar : t -> bool
(** True for integer, float and pointer types. *)

val equal : t -> t -> bool

val pp : tenv -> Format.formatter -> t -> unit
val to_string : tenv -> t -> string
