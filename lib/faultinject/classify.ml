module Trap = Ifp_isa.Trap

type observed = {
  outcome : [ `Finished of int64 | `Trapped of Trap.t | `Aborted of string ];
  output : string list;
}

type t =
  | Detected of { trap : Trap.t; expected : bool }
  | Silent_corruption
  | Benign
  | Not_fired
  | Aborted of string

(* Which traps each fault class is architecturally supposed to raise.
   Poisoned_dereference appears everywhere a promote can poison the
   pointer instead of trapping immediately; Heap_smash may legitimately
   surface as any trap, depending on what the bytes hit. *)
let expected_trap cls (trap : Trap.t) =
  match (cls, trap) with
  | Fault.Heap_smash, _ -> true
  | Fault.Tag_flip, _ -> true
  | ( Fault.Bounds_corrupt,
      (Trap.Bounds_violation _ | Trap.Poisoned_dereference _) ) ->
    true
  | ( Fault.Meta_tamper,
      ( Trap.Mac_mismatch _ | Trap.Invalid_metadata _
      | Trap.Poisoned_dereference _ | Trap.Bounds_violation _ ) ) ->
    true
  | ( Fault.Mac_flip,
      ( Trap.Mac_mismatch _ | Trap.Invalid_metadata _
      | Trap.Poisoned_dereference _ ) ) ->
    true
  | Fault.Stale_meta, _ ->
    (* wiped metadata can surface as any of the five traps, depending on
       what the zeroed record aliases *)
    true
  | (Fault.Uaf_use | Fault.Double_free), _ ->
    (* temporal mode pins these to Use_after_free / Write_to_freed /
       Double_free at the stale promote or re-free; outside it the
       injection is a spatial wipe and, like [Stale_meta], any trap is a
       legitimate detection *)
    true
  | (Fault.Bounds_corrupt | Fault.Meta_tamper | Fault.Mac_flip), _ -> false

let classify ~cls ~fired ~golden ~faulted =
  match faulted.outcome with
  | `Trapped trap -> Detected { trap; expected = expected_trap cls trap }
  | `Aborted m -> Aborted m
  | `Finished ret ->
    if not fired then Not_fired
    else (
      match golden.outcome with
      | `Finished gret
        when Int64.equal gret ret && faulted.output = golden.output ->
        Benign
      | _ -> Silent_corruption)

let to_string = function
  | Detected { expected = true; _ } -> "detected"
  | Detected { expected = false; _ } -> "detected-unexpected"
  | Silent_corruption -> "silent"
  | Benign -> "benign"
  | Not_fired -> "not-fired"
  | Aborted _ -> "aborted"
