(** The fault-campaign victim: a MiniC program shaped so every fault
    class has something real to corrupt, continuously.

    Requirements it is built to meet:
    - allocates eagerly (~6 KiB of live heap data in the first pages) so
      heap smashes land on populated memory;
    - re-loads every heap pointer from memory each round, so promotes —
      and hence metadata/MAC checks — happen throughout the run, long
      after any trigger fires;
    - prints a running checksum every round, so a single corrupted data
      byte changes the observable output (silent corruption is visible
      to the classifier, not just a wrong exit code). *)

val name : string

val program : unit -> Ifp_compiler.Ir.program
(** The shared immutable program (instrumentation copies it; safe for
    concurrent campaign runs). *)

val rounds : int
(** Checksum lines the program prints. *)

val temporal_name : string

val temporal_program : unit -> Ifp_compiler.Ir.program
(** The maze plus a heap-retiring epilogue: after the measured rounds the
    program frees every filler chunk, node and pointer array, each
    through a pointer re-loaded from memory. Gives the temporal fault
    classes a program-issued free to collide with: a [Uaf_use] injection
    leaves the later reloads stale, a [Double_free] injection makes one
    of these frees the second free of its object. *)
