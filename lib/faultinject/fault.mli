(** Deterministic, seed-driven fault injection against the simulated
    machine — the attacker model of the paper's security argument
    (§3.3–§4.3): IFP claims to {e detect} corrupted pointer tags and
    tampered object metadata, so this module corrupts exactly those,
    mid-execution, and lets the campaign measure what the hardware
    actually catches.

    An injection {!plan} is pure data (fault class + trigger + seed);
    the {!injector} is the per-run mutable state the VM drives through
    the {!on_promote} / {!on_access} hooks. Everything downstream of the
    seed is deterministic: same plan + same program ⇒ same corruption at
    the same dynamic instant, which is what makes campaign results
    cacheable and reproducible. *)

(** What gets corrupted. *)
type fault_class =
  | Tag_flip
      (** flip a bit of the promoted pointer's scheme-metadata field
          (the field that locates the object metadata) *)
  | Bounds_corrupt
      (** overwrite the bounds register consulted by the current
          load/store so the access falls outside it *)
  | Meta_tamper
      (** flip a bit in a MAC-covered payload field of a live metadata
          record (size / layout pointer / slot geometry) *)
  | Mac_flip  (** flip a bit of a live metadata record's 48-bit MAC *)
  | Heap_smash
      (** xor random mapped heap bytes — the blunt attacker who corrupts
          data (and whatever metadata is in the way) without aiming *)
  | Stale_meta
      (** wipe a live metadata record: deregister-then-use *)
  | Uaf_use
      (** retire the record's free epoch ({!Ifp_metadata.Meta.mark_freed})
          while the program still holds pointers into it — use-after-free.
          Outside temporal mode this degenerates to the spatial free
          model (record wiped), measuring what spatial-only IFP misses. *)
  | Double_free
      (** same injection, but against the temporal victim that frees the
          object itself later — the program's own free becomes the second
          free and the allocator traps [Double_free] *)

val all_classes : fault_class list
(** Temporal classes last: campaign seed mixing is index-based, so the
    pre-temporal prefix (and every cached plan derived from it) is
    unchanged. *)

val class_name : fault_class -> string
val class_of_name : string -> fault_class option

(** When the corruption happens, counted in dynamic events. *)
type trigger =
  | Nth_promote of int
      (** arm at the [n]-th promote; fires at the first armed promote
          with a usable target (tagged pointer / live metadata entry) *)
  | Nth_access of int  (** likewise, counted in loads+stores *)
  | Addr_window of { lo : int64; hi : int64; nth : int }
      (** fires at the [nth] access whose address lies in [\[lo, hi)] *)

type plan = { cls : fault_class; trigger : trigger; seed : int64 }

val default_plan : fault_class -> seed:int64 -> plan
(** Class-appropriate trigger drawn from a PRNG seeded by [seed]:
    access-site classes get an [Nth_access] trigger, promote-site
    classes an [Nth_promote]. *)

val fingerprint : plan -> string
(** Stable one-line rendering, part of the campaign job digest — two
    runs differing only in their plan never share a cache entry. *)

type t
(** The per-run injector (one per [Vm.run], never shared). *)

val create : plan -> mem:Ifp_machine.Memory.t -> heap_base:int64 -> t

val attach_meta : t -> Ifp_metadata.Meta.t -> unit
(** Give the injector access to the metadata context (IFP variants
    only); without it the metadata-targeting classes never fire. *)

val fired : t -> bool

val injections : t -> string list
(** Human-readable record of each corruption performed, in order
    ([site:detail]); empty iff the fault never fired. *)

val on_promote : t -> int64 -> int64
(** VM hook at [promote] entry, every variant. Counts the event and, if
    due, corrupts: [Tag_flip] returns the flipped pointer; the metadata
    classes tamper with the promoted pointer's own record (falling back
    to a seeded pick among live records) and return the pointer
    unchanged. *)

val on_access :
  t -> addr:int64 -> size:int -> bounds:Ifp_isa.Bounds.t -> Ifp_isa.Bounds.t
(** VM hook before each load/store bounds check. Counts the event and,
    if due, corrupts: [Bounds_corrupt] returns bounds excluding
    [\[addr, addr+size)] (cannot fire on [No_bounds] accesses — there is
    no bounds register to corrupt); [Heap_smash] xors mapped heap bytes
    and returns the bounds unchanged. *)
