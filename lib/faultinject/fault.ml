module Memory = Ifp_machine.Memory
module Meta = Ifp_metadata.Meta
module Mac = Ifp_metadata.Mac
module Tag = Ifp_isa.Tag
module Bounds = Ifp_isa.Bounds
module Prng = Ifp_util.Prng
module Bits = Ifp_util.Bits

type fault_class =
  | Tag_flip
  | Bounds_corrupt
  | Meta_tamper
  | Mac_flip
  | Heap_smash
  | Stale_meta
  | Uaf_use
  | Double_free

(* the temporal classes sit at the end: campaign seed mixing is
   index-based, so appending keeps every pre-existing plan unchanged *)
let all_classes =
  [
    Tag_flip;
    Bounds_corrupt;
    Meta_tamper;
    Mac_flip;
    Heap_smash;
    Stale_meta;
    Uaf_use;
    Double_free;
  ]

let class_name = function
  | Tag_flip -> "tag_flip"
  | Bounds_corrupt -> "bounds_corrupt"
  | Meta_tamper -> "meta_tamper"
  | Mac_flip -> "mac_flip"
  | Heap_smash -> "heap_smash"
  | Stale_meta -> "stale_meta"
  | Uaf_use -> "uaf_use"
  | Double_free -> "double_free"

let class_of_name s =
  List.find_opt (fun c -> String.equal (class_name c) s) all_classes

type trigger =
  | Nth_promote of int
  | Nth_access of int
  | Addr_window of { lo : int64; hi : int64; nth : int }

type plan = { cls : fault_class; trigger : trigger; seed : int64 }

(* Trigger ranges are tuned to the victim programs of {!Victim}: promote
   triggers land within the first few rounds of the access loop (so the
   corrupted state is exercised many times afterwards), access triggers
   within the setup/first-round window. *)
let default_plan cls ~seed =
  let rng = Prng.create (Prng.mix2 seed 0x1FA7_0001L) in
  let trigger =
    match cls with
    | Bounds_corrupt | Heap_smash -> Nth_access (Prng.int_in rng 8 400)
    | Tag_flip | Meta_tamper | Mac_flip | Stale_meta | Uaf_use | Double_free ->
      Nth_promote (Prng.int_in rng 4 48)
  in
  { cls; trigger; seed }

let trigger_fingerprint = function
  | Nth_promote n -> Printf.sprintf "promote:%d" n
  | Nth_access n -> Printf.sprintf "access:%d" n
  | Addr_window { lo; hi; nth } -> Printf.sprintf "window:0x%Lx-0x%Lx:%d" lo hi nth

let fingerprint p =
  Printf.sprintf "%s@%s#%Ld" (class_name p.cls) (trigger_fingerprint p.trigger)
    p.seed

type t = {
  plan : plan;
  rng : Prng.t;
  mem : Memory.t;
  heap_base : int64;
  mutable meta : Meta.t option;
  mutable promotes : int;
  mutable accesses : int;
  mutable window_hits : int;
  mutable fired : bool;
  mutable log : string list; (* reversed *)
}

let create plan ~mem ~heap_base =
  {
    plan;
    rng = Prng.create (Prng.mix2 plan.seed 0xFA17_0002L);
    mem;
    heap_base;
    meta = None;
    promotes = 0;
    accesses = 0;
    window_hits = 0;
    fired = false;
    log = [];
  }

let attach_meta t m = t.meta <- Some m
let fired t = t.fired
let injections t = List.rev t.log

let note t site detail =
  t.fired <- true;
  t.log <- (site ^ ":" ^ detail) :: t.log

(* ---- fault actions ------------------------------------------------- *)

(* Flip one bit of the field that locates the object metadata, so the
   promote hardware looks somewhere it shouldn't: granule offset for
   local-offset pointers, control-register index for subheap, table
   index for global-table. *)
let flip_tag t ptr =
  let bit =
    match Tag.scheme ptr with
    | Tag.Local_offset -> 54 + Prng.int t.rng 6
    | Tag.Subheap -> 56 + Prng.int t.rng 4
    | Tag.Global_table | Tag.Legacy -> 48 + Prng.int t.rng 12
  in
  (Int64.logxor ptr (Int64.shift_left 1L bit), bit)

(* The live metadata record belonging to a tagged pointer, if the
   registry still holds it. *)
let entry_of_ptr m ptr =
  let find a =
    List.find_opt
      (fun (e : Meta.live_entry) -> Int64.equal e.meta_addr a)
      (Meta.live_entries m)
  in
  match Tag.scheme ptr with
  | Tag.Local_offset -> find (Tag.metadata_addr_local_offset ptr)
  | Tag.Subheap -> (
    match Meta.Subheap.get_creg m (Tag.creg_index ptr) with
    | None -> None
    | Some c ->
      let block =
        Bits.align_down64 (Tag.addr ptr) (1 lsl c.Meta.Subheap.block_size_log2)
      in
      find (Int64.add block c.Meta.Subheap.metadata_offset))
  | Tag.Global_table | Tag.Legacy -> None

(* Target for a metadata-class fault at a promote of [ptr]: prefer the
   promoted pointer's own record (detection at this very promote);
   otherwise a seeded pick among the live records. *)
let pick_entry t ~ptr ~need_mac =
  match t.meta with
  | None -> None
  | Some m -> (
    let usable (e : Meta.live_entry) = (not need_mac) || e.mac_off <> None in
    match entry_of_ptr m ptr with
    | Some e when usable e -> Some (m, e)
    | _ -> (
      match List.filter usable (Meta.live_entries m) with
      | [] -> None
      | es ->
        let arr = Array.of_list es in
        Some (m, arr.(Prng.int t.rng (Array.length arr)))))

(* MAC-covered payload bytes per record layout (never the MAC itself —
   that is [Mac_flip]'s job — and never the un-MACed subheap flags). *)
let payload_bytes (e : Meta.live_entry) =
  match e.scheme with
  | Meta.Scheme_local_offset -> [| 0; 1; 8; 9; 10; 11; 12; 13; 14; 15 |]
  | Meta.Scheme_subheap -> Array.init 24 Fun.id
  | Meta.Scheme_global_table -> Array.init 16 Fun.id

let tamper_entry t m (e : Meta.live_entry) =
  let cands = payload_bytes e in
  let off = cands.(Prng.int t.rng (Array.length cands)) in
  let mask = 1 lsl Prng.int t.rng 8 in
  Memory.xor_u8 (Meta.memory m) (Int64.add e.meta_addr (Int64.of_int off)) mask;
  Printf.sprintf "byte+%d^0x%02x@0x%Lx" off mask e.meta_addr

let flip_mac t m (e : Meta.live_entry) =
  match e.mac_off with
  | None -> assert false (* filtered by [pick_entry ~need_mac:true] *)
  | Some mo ->
    let bit = Prng.int t.rng Mac.bits in
    Memory.xor_u8 (Meta.memory m)
      (Int64.add e.meta_addr (Int64.of_int (mo + (bit / 8))))
      (1 lsl (bit mod 8));
    Printf.sprintf "bit%d@0x%Lx" bit e.meta_addr

(* Blunt heap corruption: xor a handful of mapped bytes in the first
   pages of the heap (the victims allocate eagerly, so this window is
   always populated). *)
let smash_window = 8192
let smash_spots = 4

let smash t =
  let hits = ref [] in
  for _ = 1 to smash_spots do
    let addr =
      Int64.add t.heap_base (Int64.of_int (Prng.int t.rng smash_window))
    in
    let mask = 1 + Prng.int t.rng 255 in
    if Memory.is_mapped t.mem addr then begin
      Memory.xor_u8 t.mem addr mask;
      hits := Printf.sprintf "0x%Lx^0x%02x" addr mask :: !hits
    end
  done;
  String.concat "," (List.rev !hits)

(* ---- hooks --------------------------------------------------------- *)

let due_promote t =
  (not t.fired)
  && match t.plan.trigger with Nth_promote n -> t.promotes >= n | _ -> false

let on_promote t ptr =
  t.promotes <- t.promotes + 1;
  if not (due_promote t) then ptr
  else
    match t.plan.cls with
    | Tag_flip ->
      if Tag.scheme ptr = Tag.Legacy || Tag.is_null ptr then ptr
      else begin
        let ptr', bit = flip_tag t ptr in
        note t "promote"
          (Printf.sprintf "tag-flip bit%d 0x%Lx->0x%Lx" bit ptr ptr');
        ptr'
      end
    | Meta_tamper -> (
      match pick_entry t ~ptr ~need_mac:false with
      | None -> ptr
      | Some (m, e) ->
        note t "promote" ("meta-tamper " ^ tamper_entry t m e);
        ptr)
    | Mac_flip -> (
      match pick_entry t ~ptr ~need_mac:true with
      | None -> ptr
      | Some (m, e) ->
        note t "promote" ("mac-flip " ^ flip_mac t m e);
        ptr)
    | Stale_meta -> (
      match pick_entry t ~ptr ~need_mac:false with
      | None -> ptr
      | Some (m, e) ->
        Meta.wipe_entry m e;
        note t "promote" (Printf.sprintf "stale-meta wiped@0x%Lx" e.meta_addr);
        ptr)
    (* Temporal classes: the injector performs the free the program never
       issued ([Uaf_use]) or issues first ([Double_free]) by retiring the
       record's epoch; the program keeps using — and, for the temporal
       victim, later re-freeing — the pointer. In temporal mode the
       record stays valid-but-stale and the promote/free hardware traps;
       outside it [Meta.mark_freed] degenerates to the spatial free model
       (record wiped), so the same plan measures what spatial-only IFP
       misses. Only a [`Freed_ok] transition counts as fired, so the
       trigger re-arms until it finds a record still in its live epoch. *)
    | Uaf_use | Double_free -> (
      match pick_entry t ~ptr ~need_mac:false with
      | None -> ptr
      | Some (m, e) ->
        (match Meta.mark_freed m e with
        | `Freed_ok ->
          let what =
            if t.plan.cls = Uaf_use then "uaf-freed" else "double-free-armed"
          in
          note t "promote" (Printf.sprintf "%s@0x%Lx" what e.meta_addr)
        | `Already_freed | `Invalid -> ());
        ptr)
    | Bounds_corrupt | Heap_smash -> ptr

let due_access t ~addr =
  (not t.fired)
  &&
  match t.plan.trigger with
  | Nth_access n -> t.accesses >= n
  | Addr_window { lo; hi; nth } ->
    if Int64.compare addr lo >= 0 && Int64.compare addr hi < 0 then begin
      t.window_hits <- t.window_hits + 1;
      t.window_hits >= nth
    end
    else false
  | Nth_promote _ -> false

let on_access t ~addr ~size ~bounds =
  t.accesses <- t.accesses + 1;
  if not (due_access t ~addr) then bounds
  else
    match t.plan.cls with
    | Heap_smash ->
      note t "access" ("smash " ^ smash t);
      bounds
    | Bounds_corrupt -> (
      match bounds with
      | Bounds.No_bounds -> bounds (* no bounds register to corrupt *)
      | Bounds.Bounds { lo; hi } ->
        let b' =
          if Prng.bool t.rng then
            (* raise the lower bound above the access *)
            Bounds.make ~lo:(Int64.add addr 1L) ~hi
          else
            (* drop the upper bound below the access end *)
            Bounds.make ~lo ~hi:(Int64.add addr (Int64.of_int (size - 1)))
        in
        note t "access"
          (Format.asprintf "bounds-corrupt %a -> %a" Bounds.pp bounds Bounds.pp
             b');
        b')
    | Tag_flip | Meta_tamper | Mac_flip | Stale_meta | Uaf_use | Double_free ->
      bounds
