open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype

let name = "pointer_maze"

let node_ty = Ctype.Struct "fnode"
let np = Ctype.Ptr node_ty
let ip = Ctype.Ptr Ctype.I64
let ipp = Ctype.Ptr ip

let n_nodes = 6
let n_fillers = 10
let filler_words = 64 (* 512 B each: fits the local-offset scheme *)
let node_vals = 6
let rounds = 12

let tenv =
  Ctype.declare Ctype.empty_tenv
    {
      Ctype.sname = "fnode";
      fields =
        [
          { fname = "vals"; fty = Ctype.Array (Ctype.I64, node_vals) };
          { fname = "next"; fty = Ctype.Ptr (Ctype.Struct "fnode") };
        ];
    }

let for_ var ~below body =
  [
    Let (var, Ctype.I64, i 0);
    While (v var <: below, body @ [ Assign (var, v var +: i 1) ]);
  ]

let build () =
  let main =
    func "main" [] Ctype.I64
      (List.concat
         [
           (* filler chunks, reachable only through a heap pointer array *)
           [ Let ("fills", ipp, Malloc (ip, i n_fillers)) ];
           for_ "f" ~below:(i n_fillers)
             (List.concat
                [
                  [ Let ("chunk", ip, Malloc (Ctype.I64, i filler_words)) ];
                  for_ "w" ~below:(i filler_words)
                    [
                      Store
                        ( Ctype.I64,
                          Gep (Ctype.I64, v "chunk", [ at (v "w") ]),
                          (v "f" *: i 1021) +: (v "w" *: i 7) );
                    ];
                  [
                    Store
                      ( ip,
                        Gep (ip, v "fills", [ at (v "f") ]),
                        v "chunk" );
                  ];
                ]);
           (* linked node list, head parked in heap memory *)
           [ Let ("head", np, null node_ty) ];
           for_ "k" ~below:(i n_nodes)
             (List.concat
                [
                  [ Let ("nd", np, Malloc (node_ty, i 1)) ];
                  for_ "j" ~below:(i node_vals)
                    [
                      Store
                        ( Ctype.I64,
                          Gep (node_ty, v "nd", [ fld "vals"; at (v "j") ]),
                          (v "k" *: i 131) +: v "j" );
                    ];
                  [
                    Store (np, Gep (node_ty, v "nd", [ fld "next" ]), v "head");
                    Assign ("head", v "nd");
                  ];
                ]);
           [
             Let ("hp", Ctype.Ptr np, Malloc (np, i 1));
             Store (np, Gep (np, v "hp", [ at (i 0) ]), v "head");
             Let ("sum", Ctype.I64, i 0);
           ];
           (* the measured loop: every pointer re-loaded from memory each
              round, so each round re-promotes (and re-checks) everything *)
           for_ "r" ~below:(i rounds)
             (List.concat
                [
                  [ Let ("p", np, Load (np, Gep (np, v "hp", [ at (i 0) ]))) ];
                  [
                    While
                      ( Binop (Ne, v "p", null node_ty),
                        List.concat
                          [
                            for_ "j" ~below:(i node_vals)
                              [
                                Assign
                                  ( "sum",
                                    v "sum"
                                    +: Load
                                         ( Ctype.I64,
                                           Gep
                                             ( node_ty,
                                               v "p",
                                               [ fld "vals"; at (v "j") ] ) )
                                  );
                              ];
                            [
                              Store
                                ( Ctype.I64,
                                  Gep
                                    ( node_ty,
                                      v "p",
                                      [ fld "vals"; at (v "r" %: i node_vals) ]
                                    ),
                                  v "sum" );
                              Assign
                                ( "p",
                                  Load (np, Gep (node_ty, v "p", [ fld "next" ]))
                                );
                            ];
                          ] );
                  ];
                  for_ "f" ~below:(i n_fillers)
                    (List.concat
                       [
                         [
                           Let
                             ( "c",
                               ip,
                               Load (ip, Gep (ip, v "fills", [ at (v "f") ])) );
                         ];
                         for_ "w" ~below:(i filler_words)
                           [
                             Assign
                               ( "sum",
                                 v "sum"
                                 +: Load
                                      ( Ctype.I64,
                                        Gep (Ctype.I64, v "c", [ at (v "w") ])
                                      ) );
                           ];
                       ]);
                  [ Expr (Call ("__print_i64", [ v "sum" ])) ];
                ]);
           [ Return (Some (v "sum")) ];
         ])
  in
  program ~tenv ~globals:[] [ main ]

let shared = lazy (build ())
let program () = Lazy.force shared

(* The temporal victim: the same maze, but the program retires its own
   heap at the end — every filler chunk, every node, the pointer arrays —
   each free going through a pointer re-loaded from memory (so it is
   promoted, like every other pointer use in the maze). A [Uaf_use]
   injection mid-run makes the later reloads stale; a [Double_free]
   injection makes one of these program-issued frees the second free. *)
let temporal_name = "pointer_maze_freeing"

let build_temporal () =
  let base = build () in
  let main = List.find (fun f -> f.fname = "main") base.funcs in
  let epilogue =
    List.concat
      [
        for_ "f" ~below:(i n_fillers)
          [
            Free (Load (ip, Gep (ip, v "fills", [ at (v "f") ])));
          ];
        [ Free (v "fills") ];
        [
          Let ("q", np, Load (np, Gep (np, v "hp", [ at (i 0) ])));
          While
            ( Binop (Ne, v "q", null node_ty),
              [
                Let ("nx", np, Load (np, Gep (node_ty, v "q", [ fld "next" ])));
                Free (v "q");
                Assign ("q", v "nx");
              ] );
          Free (v "hp");
        ];
      ]
  in
  let body =
    match List.rev main.body with
    | Return r :: rev_prefix -> List.rev_append rev_prefix (epilogue @ [ Return r ])
    | _ -> main.body @ epilogue
  in
  let main = { main with body } in
  Ifp_compiler.Ir.program ~tenv ~globals:[]
    (List.map (fun f -> if f.fname = "main" then main else f) base.funcs)

let shared_temporal = lazy (build_temporal ())
let temporal_program () = Lazy.force shared_temporal
