(** Outcome classification for fault-injection runs (the three-way split
    of the paper-style security evaluation, RV-CURE/CryptSan fashion):
    a faulted run either {e trapped} (the defense detected it), finished
    with output differing from the uninjected golden run ({e silent
    corruption} — what Baseline is expected to show), or finished
    identically ({e benign} — the flipped bits were never consumed).

    Kept free of [Vm] types so the library can sit below the VM:
    callers distil a run into an {!observed}. *)

type observed = {
  outcome :
    [ `Finished of int64 | `Trapped of Ifp_isa.Trap.t | `Aborted of string ];
  output : string list;
}

type t =
  | Detected of { trap : Ifp_isa.Trap.t; expected : bool }
      (** trapped; [expected] when the trap is one the fault class is
          architecturally supposed to raise *)
  | Silent_corruption
  | Benign
  | Not_fired  (** the trigger never found a usable injection point *)
  | Aborted of string
      (** the faulted run died in the simulator (e.g. cycle budget after
          corruption sent the program spinning) — counted separately,
          neither detection nor silence *)

val expected_trap : Fault.fault_class -> Ifp_isa.Trap.t -> bool

val classify : cls:Fault.fault_class -> fired:bool -> golden:observed -> faulted:observed -> t
(** [golden] must come from the same program/config with no plan. *)

val to_string : t -> string
(** Short machine-friendly label: [detected] / [detected-unexpected] /
    [silent] / [benign] / [not-fired] / [aborted]. *)
