(** Multi-variant evaluation of one workload: the five configurations the
    paper reports (baseline, subheap, wrapped, and the two no-promote
    controls), plus the derived overhead numbers that make up a row of
    Table 4 and of Figures 10–12. *)

type row = {
  name : string;
  baseline : Ifp_vm.Vm.result;
  subheap : Ifp_vm.Vm.result;
  wrapped : Ifp_vm.Vm.result;
  subheap_np : Ifp_vm.Vm.result;  (** subheap allocator, promote as nop *)
  wrapped_np : Ifp_vm.Vm.result;
}

val variants : (string * Ifp_vm.Vm.config) list
(** The five standard configurations of a row, in reporting order:
    [baseline], [subheap], [wrapped], [subheap-np], [wrapped-np]. *)

val of_results : name:string -> lookup:(string -> Ifp_vm.Vm.result) -> row
(** Assembles a row from per-variant results, e.g. ones computed by the
    campaign engine. [lookup] is applied to each name in {!variants}. *)

val aborted_result : string -> Ifp_vm.Vm.result
(** A zeroed placeholder result with [Aborted (Host_failure msg)]
    outcome — used to keep a row renderable when a variant's job failed
    at the engine level (the failure stays visible via
    {!check_outcomes} / {!status_string}). *)

val outcome_kind : Ifp_vm.Vm.result -> string option
(** [None] for a finished run, otherwise the short status-column label
    (["trap"] / ["budget"] / ["abort"]), derived from the outcome
    constructors — never by parsing reason strings. *)

val evaluate : name:string -> Ifp_compiler.Ir.program -> row
(** Runs the workload under all five configurations, serially in the
    calling domain. *)

val evaluate_variants :
  name:string ->
  Ifp_compiler.Ir.program ->
  (string * Ifp_vm.Vm.config) list ->
  (string * Ifp_vm.Vm.result) list
(** Custom configuration set. *)

val runtime_overhead : baseline:Ifp_vm.Vm.result -> Ifp_vm.Vm.result -> float
(** Cycle-count ratio ([1.12] = +12%). *)

val instr_overhead : baseline:Ifp_vm.Vm.result -> Ifp_vm.Vm.result -> float
(** Dynamic-instruction-count ratio (Table 4 right columns). *)

val memory_overhead : baseline:Ifp_vm.Vm.result -> Ifp_vm.Vm.result -> float
(** Footprint ratio (Fig. 12). *)

val check_outcomes : row -> (string * string) list
(** Configurations that did not finish cleanly, as (variant, reason) —
    expected to be empty for the benchmark workloads. *)

val status_string : row -> string
(** ["ok"], or a compact comma-separated summary of the variants that
    did not finish, e.g. ["wrapped(trap),subheap-np(abort)"] — the
    status column of the report tables. Full reasons are available from
    {!check_outcomes}. *)
