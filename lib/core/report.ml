module Vm = Ifp_vm.Vm

type row = {
  name : string;
  baseline : Vm.result;
  subheap : Vm.result;
  wrapped : Vm.result;
  subheap_np : Vm.result;
  wrapped_np : Vm.result;
}

let variants =
  [
    ("baseline", Vm.baseline);
    ("subheap", Vm.ifp_subheap);
    ("wrapped", Vm.ifp_wrapped);
    ("subheap-np", Vm.no_promote Vm.Alloc_subheap);
    ("wrapped-np", Vm.no_promote Vm.Alloc_wrapped);
  ]

let of_results ~name ~lookup =
  {
    name;
    baseline = lookup "baseline";
    subheap = lookup "subheap";
    wrapped = lookup "wrapped";
    subheap_np = lookup "subheap-np";
    wrapped_np = lookup "wrapped-np";
  }

let evaluate ~name prog =
  let results =
    List.map (fun (vname, config) -> (vname, Vm.run ~config prog)) variants
  in
  of_results ~name ~lookup:(fun vname -> List.assoc vname results)

let evaluate_variants ~name prog variants =
  ignore name;
  List.map (fun (vname, config) -> (vname, Vm.run ~config prog)) variants

let aborted_result msg =
  {
    Vm.outcome = Vm.Aborted (Vm.Host_failure msg);
    counters = Ifp_vm.Counters.create ();
    alloc_stats = Ifp_alloc.Alloc_intf.fresh_stats ();
    alloc_extra = [];
    cache_accesses = 0;
    cache_misses = 0;
    mem_footprint = 0;
    output = [];
    instrument_report = None;
    trace = [];
    fault_injections = [];
  }

let runtime_overhead ~(baseline : Vm.result) (r : Vm.result) =
  Ifp_util.Stats.ratio
    (float_of_int r.counters.cycles)
    (float_of_int baseline.counters.cycles)

let instr_overhead ~(baseline : Vm.result) (r : Vm.result) =
  Ifp_util.Stats.ratio
    (float_of_int (Ifp_vm.Counters.total_instrs r.counters))
    (float_of_int (Ifp_vm.Counters.total_instrs baseline.counters))

let memory_overhead ~(baseline : Vm.result) (r : Vm.result) =
  Ifp_util.Stats.ratio
    (float_of_int r.mem_footprint)
    (float_of_int baseline.mem_footprint)

let outcome_reason (r : Vm.result) =
  match r.outcome with
  | Vm.Finished _ -> None
  | Vm.Trapped t -> Some ("trap: " ^ Ifp_isa.Trap.to_string t)
  | Vm.Aborted reason -> Some ("abort: " ^ Vm.abort_reason_string reason)

(* Structured short label for a did-not-finish outcome — derived from the
   outcome constructors, never by parsing reason strings. *)
let outcome_kind (r : Vm.result) =
  match r.outcome with
  | Vm.Finished _ -> None
  | Vm.Trapped _ -> Some "trap"
  | Vm.Aborted Vm.Budget_exhausted -> Some "budget"
  | Vm.Aborted _ -> Some "abort"

let check_outcomes row =
  List.filter_map
    (fun (vname, r) ->
      match outcome_reason r with None -> None | Some why -> Some (vname, why))
    [
      ("baseline", row.baseline);
      ("subheap", row.subheap);
      ("wrapped", row.wrapped);
      ("subheap-np", row.subheap_np);
      ("wrapped-np", row.wrapped_np);
    ]

let status_string row =
  let bad =
    List.filter_map
      (fun (vname, r) ->
        match outcome_kind r with
        | None -> None
        | Some kind -> Some (vname ^ "(" ^ kind ^ ")"))
      [
        ("baseline", row.baseline);
        ("subheap", row.subheap);
        ("wrapped", row.wrapped);
        ("subheap-np", row.subheap_np);
        ("wrapped-np", row.wrapped_np);
      ]
  in
  match bad with [] -> "ok" | bad -> String.concat "," bad
