(** In-Fat Pointer: public entry point.

    This module re-exports the whole stack under one namespace:

    {ul
    {- {!Ctype}, {!Layout} — the C-like type language and layout tables}
    {- {!Tag}, {!Bounds}, {!Insn}, {!Trap} — the ISA extension}
    {- {!Memory}, {!Cache} — the simulated machine}
    {- {!Mac}, {!Meta}, {!Promote} — object metadata schemes and the
       promote engine}
    {- {!Alloc}, {!Baseline_alloc}, {!Wrapped_alloc}, {!Subheap_alloc},
       {!Buddy} — the runtime-library allocators}
    {- {!Ir}, {!Typecheck}, {!Instrument}, {!Resolve} — MiniC and the
       compiler passes}
    {- {!Vm}, {!Vm_ref}, {!Vm_closure}, {!Engines}, {!Profile},
       {!Counters}, {!Cost}, {!Memmap} — the execution engines
       (slot-resolved interpreter, reference tree walker,
       closure-compiled) and their dispatch/profiling support}
    {- {!Report} — multi-variant evaluation harness (Table 4 /
       Fig. 10–12 rows)}}

    Quickstart: build a MiniC program with the {!Ir} DSL and run it under
    all configurations with {!Report.evaluate}, or run a single variant
    with {!Vm.run}. *)

module Bits = Ifp_util.Bits
module Prng = Ifp_util.Prng
module Stats = Ifp_util.Stats
module Table = Ifp_util.Table
module Memory = Ifp_machine.Memory
module Cache = Ifp_machine.Cache
module Ctype = Ifp_types.Ctype
module Layout = Ifp_types.Layout
module Tag = Ifp_isa.Tag
module Bounds = Ifp_isa.Bounds
module Insn = Ifp_isa.Insn
module Trap = Ifp_isa.Trap
module Mac = Ifp_metadata.Mac
module Meta = Ifp_metadata.Meta
module Promote = Ifp_metadata.Promote
module Alloc = Ifp_alloc.Alloc_intf
module Baseline_alloc = Ifp_alloc.Baseline
module Wrapped_alloc = Ifp_alloc.Wrapped
module Subheap_alloc = Ifp_alloc.Subheap_alloc
module Mixed_alloc = Ifp_alloc.Mixed
module Buddy = Ifp_alloc.Buddy
module Ir = Ifp_compiler.Ir
module Ir_pp = Ifp_compiler.Ir_pp
module Lexer = Ifp_compiler.Lexer
module Parser = Ifp_compiler.Parser
module Typecheck = Ifp_compiler.Typecheck
module Instrument = Ifp_compiler.Instrument
module Resolve = Ifp_compiler.Resolve
module Vm = Ifp_vm.Vm
module Vm_ref = Ifp_vm.Vm_ref
module Vm_closure = Ifp_vm.Vm_closure
module Engines = Ifp_vm.Engines
module Profile = Ifp_vm.Profile
module Counters = Ifp_vm.Counters
module Cost = Ifp_vm.Cost
module Memmap = Ifp_vm.Memmap
module Report = Report
