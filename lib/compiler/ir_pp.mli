(** Surface-syntax printer for MiniC programs.

    [program_to_string] emits text in the language {!Parser} reads, so
    printed programs round-trip: for any program in the parser's image
    (everything the fuzz generator emits, and anything produced by
    [Parser.parse]), re-parsing the output yields an
    [Ir.equal_program]-equal program, and the printer is injective on
    well-typed programs — the property {!Ifp_campaign.Job}'s
    content-addressed digests rely on.

    Constructs with no surface form — the [Ifp_*] nodes the
    instrumentation pass inserts, [Malloc_sized], uncoerced [I2F]/[F2I],
    special float values — print in distinctive call-like spellings
    ([IFP_Promote(e)], [malloc_sized(t, n)], [i2f(e)], [f64_bits(0x…)],
    matching the paper's Listing 2 presentation) that lex but do not
    re-parse; they appear only in debug dumps. *)

val pp_expr : Ifp_types.Ctype.tenv -> Format.formatter -> Ir.expr -> unit
val pp_stmt : Ifp_types.Ctype.tenv -> Format.formatter -> Ir.stmt -> unit
val pp_func : Ifp_types.Ctype.tenv -> Format.formatter -> Ir.func -> unit
val pp_program : Format.formatter -> Ir.program -> unit

val program_to_string : Ir.program -> string
