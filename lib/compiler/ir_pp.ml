module Ctype = Ifp_types.Ctype

(* Surface-syntax printer.

   [program_to_string p] emits text in the same language {!Parser}
   reads, so printed programs round-trip: for any program in the
   parser's image (what [Parser.parse] can produce — this includes
   everything the fuzz generator emits), re-lexing and re-parsing the
   output yields a program that is [Ir.equal_program] to the input.
   The printer is also injective on well-typed programs (distinct
   programs print distinctly), which {!Ifp_campaign.Job} relies on for
   content-addressed result caching.

   Constructs outside the surface language — the [Ifp_*] forms the
   instrumentation pass inserts, [Malloc_sized], explicit [I2F]/[F2I]
   nodes in non-coercion positions, negative/special float literals —
   print in distinctive call-like spellings ([IFP_Promote(e)],
   [malloc_sized(t, n)], [i2f(e)], [f64_bits(0x…)]) that still lex but
   do not re-parse; they appear only in debug dumps of instrumented or
   DSL-built programs, never in generated/minimized repro text.

   Mapping notes, mirroring the parser exactly:
   - [a > b] parses as [Lt (b, a)], so [Gt]/[Ge] are not in the parser
     image; they still print as [a > b]/[a >= b] (DSL programs use
     them), which re-parses to the swapped-[Lt]/[Le] form.
   - the parser inserts [Unop (I2F, e)] only at f64 coercion points
     (float binop operands, f64 [let]/store right-hand sides); the
     printer strips exactly those wrappers and re-parsing reinserts
     them.
   - negative integer literals do not exist ([-1] parses as
     [Unop (Neg, Int 1)]); negative [Int] constants print as 16-digit
     hex, which [Int64.of_string] wraps back to the same value.
   - struct declarations print sorted by name (the type environment is
     a map; [Ir.equal_program] compares sorted bindings). *)

(* precedence levels, lowest-binding first, mirroring the parser's
   climbing order *)
let lv_expr = 0
let lv_unary = 11
let lv_postfix = 12
let lv_primary = 13

let binop_level : Ir.binop -> int = function
  | LOr -> 1
  | LAnd -> 2
  | BOr -> 3
  | BXor -> 4
  | BAnd -> 5
  | Eq | Ne | FEq -> 6
  | Lt | Le | Gt | Ge | FLt | FLe -> 7
  | Shl | Shr -> 8
  | Add | Sub | FAdd | FSub -> 9
  | Mul | Div | Rem | FMul | FDiv -> 10

let binop_token : Ir.binop -> string = function
  | Add | FAdd -> "+"
  | Sub | FSub -> "-"
  | Mul | FMul -> "*"
  | Div | FDiv -> "/"
  | Rem -> "%"
  | BAnd -> "&"
  | BOr -> "|"
  | BXor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | LAnd -> "&&"
  | LOr -> "||"
  | Eq | FEq -> "=="
  | Ne -> "!="
  | Lt | FLt -> "<"
  | Le | FLe -> "<="
  | Gt -> ">"
  | Ge -> ">="

let is_float_op : Ir.binop -> bool = function
  | FAdd | FSub | FMul | FDiv | FEq | FLt | FLe -> true
  | _ -> false

(* the parser wraps non-f64 operands of float operations (and f64
   let/store right-hand sides) in [I2F]; strip one wrapper so the
   re-parse reinserts it *)
let strip_i2f : Ir.expr -> Ir.expr = function
  | Ir.Unop (Ir.I2F, e) -> e
  | e -> e

let int_lit (x : int64) =
  if Int64.compare x 0L >= 0 then Int64.to_string x
  else Printf.sprintf "0x%Lx" x

let float_fallback f = Printf.sprintf "f64_bits(0x%Lx)" (Int64.bits_of_float f)

(* a float literal the lexer reads back to the same bits: digits, one
   dot, digits. Negative, non-finite and negative-zero values have no
   literal form and use the non-parseable fallback. *)
let float_lit f =
  if
    f <> f (* nan *)
    || f = infinity || f = neg_infinity
    || f < 0.0
    || (f = 0.0 && not (Int64.equal (Int64.bits_of_float f) 0L))
  then float_fallback f
  else begin
    let exact s =
      match float_of_string_opt s with
      | Some g -> Int64.equal (Int64.bits_of_float g) (Int64.bits_of_float f)
      | None -> false
    in
    let wellformed s =
      String.length s > 0
      && s.[0] >= '0'
      && s.[0] <= '9'
      && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.') s
      && String.fold_left (fun n c -> if c = '.' then n + 1 else n) 0 s = 1
    in
    let rec shortest p =
      if p > 17 then None
      else
        let s = Printf.sprintf "%.*g" p f in
        if wellformed s && exact s then Some s else shortest (p + 1)
    in
    match shortest 1 with
    | Some s -> s
    | None ->
      (* every finite double has a finite exact decimal expansion *)
      let s = Printf.sprintf "%.1074f" f in
      let last = ref (String.length s - 1) in
      while !last > 0 && s.[!last] = '0' do
        decr last
      done;
      let last = if s.[!last] = '.' then !last + 1 else !last in
      let s = String.sub s 0 (last + 1) in
      if wellformed s && exact s then s else float_fallback f
  end

(* a type in a [parse_type] position: base name (structs by bare name —
   the parser pre-scans declarations, so forward references work) plus
   ['*']s. Array types have no spelling there (declaration-suffix only)
   and print in the suffix form, which lexes but does not re-parse. *)
let rec ty_str : Ctype.t -> string = function
  | Ctype.Void -> "void"
  | Ctype.I8 -> "i8"
  | Ctype.I16 -> "i16"
  | Ctype.I32 -> "i32"
  | Ctype.I64 -> "i64"
  | Ctype.F64 -> "f64"
  | Ctype.Struct s -> s
  | Ctype.Ptr t -> ty_str t ^ "*"
  | Ctype.Array (t, n) -> Printf.sprintf "%s[%d]" (ty_str t) n

(* declaration sites take array extents as a name suffix:
   [Array (Array (t, 2), 4)] is [t x[4][2]] *)
let decl_ty ty =
  let rec peel acc = function
    | Ctype.Array (t, n) -> peel (n :: acc) t
    | t -> (t, List.rev acc)
  in
  peel [] ty

let dims_str dims = String.concat "" (List.map (Printf.sprintf "[%d]") dims)

(* the level at which an expression's printed form binds; [pe]
   parenthesizes when the context requires tighter. Must stay in sync
   with [pe0]'s choice of form. *)
let print_level (e : Ir.expr) =
  match e with
  | Int _ | Float _ | Var _ | Load_global _ | Call _ | Malloc _
  | Malloc_bytes _ | Malloc_sized _ | Ifp_promote _ ->
    lv_primary
  | Cast (Ctype.Ptr _, Int 0L) -> lv_primary (* null(t) *)
  | Cast _ -> lv_unary (* cast(…) cannot take postfix steps *)
  | Unop ((I2F | F2I), _) -> lv_primary (* call-form fallbacks *)
  | Unop _ -> lv_unary
  | Load (_, Gep (_, _, _ :: _)) -> lv_postfix (* place form *)
  | Load (_, Addr_local _) -> lv_primary (* bare stack-var name *)
  | Load _ -> lv_unary (* *e *)
  | Addr_local _ | Addr_global _ | Gep _ -> lv_unary (* &… *)
  | Binop (op, _, _) -> binop_level op

let rec pe buf req (e : Ir.expr) =
  if print_level e < req then begin
    Buffer.add_char buf '(';
    pe0 buf e;
    Buffer.add_char buf ')'
  end
  else pe0 buf e

and pe0 buf (e : Ir.expr) =
  let add = Buffer.add_string buf in
  match e with
  | Int x -> add (int_lit x)
  | Float f -> add (float_lit f)
  | Var x -> add x
  | Load_global g -> add g
  | Binop (op, a, b) ->
    let a, b = if is_float_op op then (strip_i2f a, strip_i2f b) else (a, b) in
    let l = binop_level op in
    (* left-associative: the right operand needs one level tighter *)
    pe buf l a;
    add (" " ^ binop_token op ^ " ");
    pe buf (l + 1) b
  | Unop (I2F, a) -> call_form buf "i2f" [ a ]
  | Unop (F2I, a) -> call_form buf "f2i" [ a ]
  | Unop ((Neg | FNeg), a) ->
    add "-";
    pe buf lv_unary a
  | Unop (LNot, a) ->
    add "!";
    pe buf lv_unary a
  | Unop (BNot, a) ->
    add "~";
    pe buf lv_unary a
  | Load (_, Gep (_, b, (_ :: _ as steps))) -> place buf b steps
  | Load (_, Addr_local x) -> add x (* scalar stack-var read *)
  | Load (_, Addr_global g) -> add ("*(&" ^ g ^ ")") (* debug only *)
  | Load (_, a) ->
    add "*";
    pe buf lv_unary a
  | Addr_local x -> add ("&" ^ x)
  | Addr_global g -> add ("&" ^ g)
  | Gep (_, b, []) ->
    (* degenerate path (DSL only): [&*b] re-parses to just [b] *)
    add "&*";
    pe buf lv_unary b
  | Gep (_, b, steps) ->
    add "&";
    place buf b steps
  | Call (f, args) -> call_form buf f args
  | Malloc (ty, n) ->
    add ("malloc(" ^ ty_str ty ^ ", ");
    pe buf lv_expr n;
    add ")"
  | Malloc_bytes n ->
    add "malloc_bytes(";
    pe buf lv_expr n;
    add ")"
  | Malloc_sized (ty, n) ->
    (* no surface form (wrapper-inference output); debug spelling *)
    add ("malloc_sized(" ^ ty_str ty ^ ", ");
    pe buf lv_expr n;
    add ")"
  | Cast (Ctype.Ptr t, Int 0L) -> add ("null(" ^ ty_str t ^ ")")
  | Cast (ty, a) ->
    add ("cast(" ^ ty_str ty ^ ", ");
    pe buf lv_expr a;
    add ")"
  | Ifp_promote a -> call_form buf "IFP_Promote" [ a ]

and call_form buf f args =
  Buffer.add_string buf (f ^ "(");
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_string buf ", ";
      pe buf lv_expr a)
    args;
  Buffer.add_string buf ")"

(* A memory place [base] + gep steps, printed in postfix syntax. The
   step spelling needs no type information: the first step off a
   pointer-valued root uses [->f] / pointer-arithmetic [\[i\]]; steps
   off an aggregate root ([&x]-style locals/globals) and all later
   steps use [.f] / [\[i\]]. *)
and place buf (base : Ir.expr) steps =
  let ptr_root =
    match base with Ir.Addr_local _ | Ir.Addr_global _ -> false | _ -> true
  in
  (match base with
  | Ir.Var x | Ir.Addr_local x | Ir.Addr_global x -> Buffer.add_string buf x
  | b -> pe buf lv_postfix b);
  List.iteri
    (fun i (s : Ir.gstep) ->
      match s with
      | S_field f ->
        Buffer.add_string buf ((if i = 0 && ptr_root then "->" else ".") ^ f)
      | S_index ie ->
        Buffer.add_string buf "[";
        pe buf lv_expr ie;
        Buffer.add_string buf "]")
    steps

(* ---- statements ------------------------------------------------------ *)

let rec ps buf ind gmap (s : Ir.stmt) =
  let add = Buffer.add_string buf in
  let pad () = add (String.make (2 * ind) ' ') in
  let strip ty e = if Ctype.equal ty Ctype.F64 then strip_i2f e else e in
  pad ();
  match s with
  | Ir.Let (x, ty, e) ->
    add ("let " ^ x ^ ": " ^ ty_str ty ^ " = ");
    pe buf lv_expr (strip ty e);
    add ";\n"
  | Ir.Assign (x, e) ->
    (* note: the parser inserts no f64 coercion on [Assign] *)
    add (x ^ " = ");
    pe buf lv_expr e;
    add ";\n"
  | Ir.Decl_local (x, ty) ->
    let core, dims = decl_ty ty in
    add ("var " ^ x ^ ": " ^ ty_str core ^ dims_str dims ^ ";\n")
  | Ir.Store (ty, addr, v) ->
    (match addr with
    | Ir.Gep (_, b, (_ :: _ as steps)) -> place buf b steps
    | Ir.Addr_local x -> add x
    | Ir.Addr_global g -> add ("*(&" ^ g ^ ")") (* debug only *)
    | a ->
      add "*";
      pe buf lv_unary a);
    add " = ";
    pe buf lv_expr (strip ty v);
    add ";\n"
  | Ir.Store_global (g, e) ->
    let e =
      match List.assoc_opt g gmap with Some ty -> strip ty e | None -> e
    in
    add (g ^ " = ");
    pe buf lv_expr e;
    add ";\n"
  | Ir.If (c, t, els) ->
    add "if (";
    pe buf lv_expr c;
    add ") {\n";
    List.iter (ps buf (ind + 1) gmap) t;
    pad ();
    (match els with
    | [] -> add "}\n"
    | _ ->
      add "} else {\n";
      List.iter (ps buf (ind + 1) gmap) els;
      pad ();
      add "}\n")
  | Ir.While (c, b) ->
    add "while (";
    pe buf lv_expr c;
    add ") {\n";
    List.iter (ps buf (ind + 1) gmap) b;
    pad ();
    add "}\n"
  | Ir.Return None -> add "return;\n"
  | Ir.Return (Some e) ->
    add "return ";
    pe buf lv_expr e;
    add ";\n"
  | Ir.Expr e ->
    pe buf lv_expr e;
    add ";\n"
  | Ir.Free e ->
    add "free(";
    pe buf lv_expr e;
    add ");\n"
  | Ir.Break -> add "break;\n"
  | Ir.Continue -> add "continue;\n"
  | Ir.Ifp_register_local x -> add ("IFP_Register(" ^ x ^ ");\n")
  | Ir.Ifp_deregister_local x -> add ("IFP_Deregister(" ^ x ^ ");\n")

(* ---- declarations ---------------------------------------------------- *)

let print_struct buf (d : Ctype.struct_def) =
  Buffer.add_string buf ("struct " ^ d.sname ^ " {\n");
  List.iter
    (fun (f : Ctype.field) ->
      let core, dims = decl_ty f.fty in
      Buffer.add_string buf
        ("  " ^ ty_str core ^ " " ^ f.fname ^ dims_str dims ^ ";\n"))
    d.fields;
  Buffer.add_string buf "};\n"

let print_global buf (g : Ir.global) =
  let core, dims = decl_ty g.gty in
  Buffer.add_string buf
    ("global " ^ ty_str core ^ " " ^ g.gname ^ dims_str dims ^ ";\n")

let print_func buf gmap (f : Ir.func) =
  let params =
    String.concat ", "
      (List.map (fun (name, ty) -> ty_str ty ^ " " ^ name) f.Ir.params)
  in
  Buffer.add_string buf
    ((if f.instrumented then "" else "legacy ")
    ^ ty_str f.ret ^ " " ^ f.fname ^ "(" ^ params ^ ") {\n");
  List.iter (ps buf 1 gmap) f.body;
  Buffer.add_string buf "}\n"

let print_program buf (p : Ir.program) =
  let gmap = List.map (fun (g : Ir.global) -> (g.gname, g.gty)) p.globals in
  List.iter
    (fun (_, d) -> print_struct buf d)
    (Ctype.bindings p.tenv);
  List.iter (print_global buf) p.globals;
  List.iteri
    (fun i f ->
      if i > 0 || p.globals <> [] || Ctype.bindings p.tenv <> [] then
        Buffer.add_char buf '\n';
      print_func buf gmap f)
    p.funcs

let program_to_string p =
  let buf = Buffer.create 1024 in
  print_program buf p;
  Buffer.contents buf

(* ---- Format-based wrappers (kept for callers and debug printing) ---- *)

let pp_expr _tenv fmt e =
  let buf = Buffer.create 64 in
  pe buf lv_expr e;
  Format.pp_print_string fmt (Buffer.contents buf)

let pp_stmt _tenv fmt s =
  let buf = Buffer.create 64 in
  ps buf 0 [] s;
  Format.pp_print_string fmt (Buffer.contents buf)

let pp_func _tenv fmt f =
  let buf = Buffer.create 256 in
  print_func buf [] f;
  Format.pp_print_string fmt (Buffer.contents buf)

let pp_program fmt p = Format.pp_print_string fmt (program_to_string p)
