(** Slot resolution: the lowering pass between {!Instrument} and the VM.

    A single walk over each function interns variable and stack-local
    names to dense integer slots, binds call targets to function
    indices, resolves globals to positions in a flat table, and
    precomputes everything the interpreter used to derive per access:
    scalar sizes, struct field offsets, gep element strides and the
    static subobject-index delta (the [ifpidx] immediate), malloc size
    scales and layout multiplicity, and cast/let coercion kinds.

    The pass is purely structural and must preserve observable
    behaviour bit-for-bit, including the failure modes of ill-formed
    programs that pass the type checker only because the offending code
    is dynamically unreachable: unbound names keep their slots (the VM
    aborts with the reference message on first touch via an unbound
    sentinel), and statically unresolvable references lower to
    {!expr.Bad} / {!stmt.Bad_store_global} nodes that abort with the
    reference message when executed. *)

module Ctype = Ifp_types.Ctype

type vclass = Cls_int | Cls_f64 | Cls_ptr
(** Scalar class of a memory access: how raw bytes become a value. *)

type cast_kind =
  | Cast_ptr
  | Cast_f64
  | Cast_int of int  (** sign-extension width: [max 1 (sizeof target)] *)

type coerce_kind = K_i8 | K_i16 | K_i32 | K_i64 | K_f64 | K_ptr | K_other

type call_target =
  | C_func of int  (** index into {!program.funcs} *)
  | C_print_i64
  | C_print_f64
  | C_abort
  | C_unknown of string  (** aborts after argument evaluation *)

type gstep =
  | Rs_field of { off : int; fsize : int }
  | Rs_index of { esize : int; idx : expr }
  | Rs_bad of string

and expr =
  | Int of int64
  | Float of float
  | Var of int
  | Binop of Ir.binop * expr * expr
  | Unop of Ir.unop * expr
  | Load of { cls : vclass; bytes : int; addr : expr }
  | Addr_local of int
  | Addr_global of int
  | Load_global of { g : int; cls : vclass; bytes : int }
  | Gep of { base : expr; steps : gstep list; idx_delta : int; site : int }
  | Call of { target : call_target; args : expr list; n_args : int }
  | Malloc of {
      scale : int;
      count : expr;
      cty : Ctype.t option;
      layout_multi : bool;
    }
  | Cast of { kind : cast_kind; e : expr }
  | Ifp_promote of { e : expr; site : int }
  | Bad of string

type stmt =
  | Let of { slot : int; k : coerce_kind; e : expr }
  | Assign of { slot : int; e : expr }
  | Decl_local of { slot : int; size : int; tyid : int }
  | Store of { cls : vclass; bytes : int; addr : expr; v : expr }
  | Store_global of { g : int; cls : vclass; bytes : int; e : expr }
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Expr of expr
  | Free of expr
  | Break
  | Continue
  | Ifp_register_local of { slot : int; site : int }
  | Ifp_deregister_local of int
  | Bad_store_global of { e : expr; msg : string }

type func = {
  fname : string;
  params : int list;  (** var slots of the parameters, in order *)
  n_vars : int;  (** frame value-array length *)
  var_names : string array;  (** slot -> source name, diagnostics only *)
  n_locals : int;  (** frame stack-local array length *)
  local_names : string array;
  body : stmt list;
  instrumented : bool;
  has_calls : bool;  (** spill cost model input *)
  ptr_regs : int;
}

type rglobal = {
  gname : string;
  gty : Ctype.t;
  gsize : int;  (** raw [sizeof]; the VM allocates [max 1 gsize] bytes *)
  gregistered : bool;
}

type program = {
  tenv : Ctype.tenv;
  globals : rglobal array;
  funcs : func array;
  main : int;  (** index into [funcs], or [-1] when absent *)
  types : Ctype.t array;
      (** distinct local-declaration types; [Decl_local.tyid] indexes
          this table, which sizes the VM's per-run layout-pointer
          cache *)
  n_sites : int;
      (** number of site ids handed out: every {!expr.Gep},
          {!expr.Ifp_promote} and {!stmt.Ifp_register_local} node carries
          a distinct [site] in [\[0, n_sites)]. Sites are assigned by a
          single program-order counter during the deterministic
          resolution walk, so re-resolving the same program yields the
          same ids at the same nodes — the closure engine keys its
          per-site inline caches and fused superinstructions on them,
          and digests of resolved programs stay reproducible. *)
}

val run : Ir.program -> program
(** Resolve an (instrumented) program. The input is not mutated and may
    be shared across concurrent resolutions; the pass is deterministic —
    resolving the same program twice yields structurally equal output,
    including slot assignment and site ids. *)
