(** MiniC: the typed intermediate representation the workloads are
    written in and the instrumentation pass transforms.

    The IR models the C subset that matters for spatial safety: structs,
    arrays, pointers, address-of, pointer arithmetic via {!Gep}
    (getelementptr-style typed paths), heap allocation, globals, and
    functions. Scalar locals that are never address-taken are declared
    with {!Let}/{!Assign} (register-allocated); aggregates and
    address-taken scalars are declared with {!Decl_local} (stack
    memory).

    The [Ifp_*] constructors are inserted by {!Instrument} — frontends
    (workloads, tests) never write them; the baseline VM mode never
    executes them. *)

type var = string

type binop =
  | Add | Sub | Mul | Div | Rem
  | BAnd | BOr | BXor | Shl | Shr
  | LAnd | LOr  (** short-circuit, like C [&&]/[||]; result 0/1 *)
  | Eq | Ne | Lt | Le | Gt | Ge  (** signed; pointers compare by address *)
  | FAdd | FSub | FMul | FDiv
  | FEq | FLt | FLe

type unop = Neg | LNot | BNot | FNeg | I2F | F2I

type gstep =
  | S_field of string  (** struct member selection *)
  | S_index of expr
      (** index: on the leading pointer it is pointer arithmetic, on an
          array-typed subobject it selects an element *)

and expr =
  | Int of int64
  | Float of float
  | Var of var
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Load of Ifp_types.Ctype.t * expr  (** [*(ty* )e]; [ty] scalar *)
  | Addr_local of var
  | Addr_global of string
  | Load_global of string  (** by-name scalar global read (no pointer) *)
  | Gep of Ifp_types.Ctype.t * expr * gstep list
      (** [Gep (pointee_ty, base, steps)]: typed address computation;
          [base : Ptr pointee_ty] *)
  | Call of string * expr list
  | Malloc of Ifp_types.Ctype.t * expr
      (** [Malloc (ty, n)] = [malloc (n * sizeof ty)] : [Ptr ty]; the
          element type is known to the compiler (layout table emitted) *)
  | Malloc_bytes of expr
      (** type-erased allocation through a wrapper function — no layout
          table can be attached (models CoreMark/bzip2/wolfcrypt,
          paper §5.2.1) : [Ptr I8] *)
  | Malloc_sized of Ifp_types.Ctype.t * expr
      (** [Malloc_sized (ty, bytes)] : [Ptr ty] — a byte-sized allocation
          whose element type was recovered by the allocation-wrapper
          inference of {!Instrument} (the paper's §5.2.1 future work);
          the layout table of [ty] is attached *)
  | Cast of Ifp_types.Ctype.t * expr
  | Ifp_promote of expr  (** inserted before untrusted pointer uses *)

and stmt =
  | Let of var * Ifp_types.Ctype.t * expr  (** scalar register local *)
  | Assign of var * expr
  | Decl_local of var * Ifp_types.Ctype.t  (** stack-allocated local *)
  | Store of Ifp_types.Ctype.t * expr * expr  (** [*(ty* )addr = v] *)
  | Store_global of string * expr  (** by-name scalar global write *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Expr of expr
  | Free of expr
  | Break
  | Continue
  | Ifp_register_local of var  (** set up object metadata for a local *)
  | Ifp_deregister_local of var

type func = {
  fname : string;
  params : (var * Ifp_types.Ctype.t) list;
  ret : Ifp_types.Ctype.t;
  body : stmt list;
  instrumented : bool;
      (** [false] models a legacy (uninstrumented) library function: the
          pass leaves it alone and the VM applies legacy semantics *)
}

type global = {
  gname : string;
  gty : Ifp_types.Ctype.t;
  mutable registered : bool;  (** set by the pass *)
}

type program = {
  tenv : Ifp_types.Ctype.tenv;
  globals : global list;
  funcs : func list;
}

val func :
  ?instrumented:bool ->
  string ->
  (var * Ifp_types.Ctype.t) list ->
  Ifp_types.Ctype.t ->
  stmt list ->
  func

val global : string -> Ifp_types.Ctype.t -> global

val program :
  tenv:Ifp_types.Ctype.tenv -> globals:global list -> func list -> program

val find_func : program -> string -> func option
val find_global : program -> string -> global option

(** {1 Structural equality}

    Deterministic deep equality used by the round-trip property
    ([parse (print p)] must equal [p]) and the fuzz shrinker. Floats
    compare by bit pattern; struct environments by their sorted
    bindings; the mutable [registered] flag (pass output, not program
    identity) is ignored. *)

val equal_expr : expr -> expr -> bool
val equal_stmt : stmt -> stmt -> bool
val equal_func : func -> func -> bool
val equal_program : program -> program -> bool

(** {1 Convenience constructors (frontend DSL)} *)

val i : int -> expr
val i64 : int64 -> expr
val v : string -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( ==: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr
val not_ : expr -> expr
val null : Ifp_types.Ctype.t -> expr
(** Typed NULL pointer constant. *)

val idx : expr -> expr -> gstep list -> Ifp_types.Ctype.t -> expr
(** [idx base i steps pointee_ty] = [Gep (pointee_ty, base, S_index i :: steps)]. *)

val fld : string -> gstep
val at : expr -> gstep
