(* Resolve: one-time lowering from the name-based IR to a slot-addressed
   program the VM can execute without any per-access hashing.

   The pass interns every variable and stack-local name to a dense
   integer slot, pre-binds call targets to function indices, resolves
   globals to indices in a flat table, and bakes in every quantity the
   interpreter previously recomputed per access: scalar sizes, struct
   field offsets, gep element strides and static subobject-index deltas,
   malloc size scales and layout multiplicity, cast/let coercion kinds.

   The lowering is purely structural — it must not change observable
   behaviour. Programs that fail at runtime in the reference
   interpreter (unbound variables reached through a non-taken branch,
   unknown locals, unknown call targets) keep failing with the same
   abort messages: slots for names that are never bound still exist and
   the VM detects the unbound state with a sentinel, and statically
   unresolvable references lower to [Bad]/[Bad_store_global] nodes that
   abort with the reference message when (and only when) executed. *)

module Ctype = Ifp_types.Ctype
module Layout = Ifp_types.Layout

(* Scalar class of a memory access: decides how raw little-endian bytes
   become a value and back. *)
type vclass = Cls_int | Cls_f64 | Cls_ptr

type cast_kind =
  | Cast_ptr
  | Cast_f64
  | Cast_int of int  (* sign-extension width: max 1 (sizeof target) *)

type coerce_kind = K_i8 | K_i16 | K_i32 | K_i64 | K_f64 | K_ptr | K_other

type call_target =
  | C_func of int
  | C_print_i64
  | C_print_f64
  | C_abort
  | C_unknown of string

type gstep =
  | Rs_field of { off : int; fsize : int }
      (** struct member: add [off]; narrowed bounds are [fsize] bytes *)
  | Rs_index of { esize : int; idx : expr }
      (** dynamic index with element stride [esize] *)
  | Rs_bad of string  (** ill-formed step: abort when executed *)

and expr =
  | Int of int64
  | Float of float
  | Var of int
  | Binop of Ir.binop * expr * expr
  | Unop of Ir.unop * expr
  | Load of { cls : vclass; bytes : int; addr : expr }
  | Addr_local of int
  | Addr_global of int
  | Load_global of { g : int; cls : vclass; bytes : int }
  | Gep of { base : expr; steps : gstep list; idx_delta : int; site : int }
  | Call of { target : call_target; args : expr list; n_args : int }
  | Malloc of {
      scale : int;  (* bytes per count unit: sizeof elem, or 1 *)
      count : expr;
      cty : Ctype.t option;  (* element type handed to the allocator *)
      layout_multi : bool;  (* layout table has > 1 element *)
    }
  | Cast of { kind : cast_kind; e : expr }
  | Ifp_promote of { e : expr; site : int }
  | Bad of string  (** statically-unresolvable reference; aborts *)

type stmt =
  | Let of { slot : int; k : coerce_kind; e : expr }
  | Assign of { slot : int; e : expr }
  | Decl_local of { slot : int; size : int; tyid : int }
  | Store of { cls : vclass; bytes : int; addr : expr; v : expr }
  | Store_global of { g : int; cls : vclass; bytes : int; e : expr }
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Expr of expr
  | Free of expr
  | Break
  | Continue
  | Ifp_register_local of { slot : int; site : int }
  | Ifp_deregister_local of int
  | Bad_store_global of { e : expr; msg : string }

type func = {
  fname : string;
  params : int list;  (* var slots of the parameters, in order *)
  n_vars : int;
  var_names : string array;  (* slot -> source name, diagnostics only *)
  n_locals : int;
  local_names : string array;
  body : stmt list;
  instrumented : bool;
  has_calls : bool;
  ptr_regs : int;
}

type rglobal = {
  gname : string;
  gty : Ctype.t;
  gsize : int;  (* raw sizeof; the VM allocates max 1 gsize bytes *)
  gregistered : bool;
}

type program = {
  tenv : Ctype.tenv;
  globals : rglobal array;
  funcs : func array;
  main : int;  (* index into funcs, or -1 *)
  types : Ctype.t array;  (* local-decl types: the VM's layout-ptr cache key *)
  n_sites : int;  (* program-wide site-id count (geps, promotes, registers) *)
}

(* ------------------------------------------------------------------ *)

type renv = {
  tenv : Ctype.tenv;
  fidx : (string, int) Hashtbl.t;  (* function name -> index, last wins *)
  gidx : (string, int) Hashtbl.t;  (* global name -> index, last wins *)
  gfirst : (string, Ctype.t) Hashtbl.t;  (* first-declaration type *)
  tyids : (Ctype.t, int) Hashtbl.t;
  mutable types_rev : Ctype.t list;
  mutable n_types : int;
  layouts : (Ctype.t, Layout.t) Hashtbl.t;  (* resolve-time only *)
  mutable n_sites : int;  (* next site id *)
}

(* Site ids name the static program points the closure engine keys its
   per-site state on (inline caches, fused superinstructions). They are
   assigned by a single program-order counter during the one
   deterministic resolution walk — never from hash-table iteration — so
   re-resolving the same program yields the same ids at the same nodes
   (required for inline-cache keying and for plan digests built over
   resolved programs to stay deterministic). *)
let new_site r =
  let s = r.n_sites in
  r.n_sites <- s + 1;
  s

type fenv = {
  vslots : (string, int) Hashtbl.t;
  mutable vnames_rev : string list;
  mutable n_vars : int;
  lslots : (string, int) Hashtbl.t;
  mutable lnames_rev : string list;
  mutable n_locals : int;
}

let tyid_of r ty =
  match Hashtbl.find_opt r.tyids ty with
  | Some i -> i
  | None ->
    let i = r.n_types in
    Hashtbl.replace r.tyids ty i;
    r.types_rev <- ty :: r.types_rev;
    r.n_types <- i + 1;
    i

let layout_of r ty =
  match Hashtbl.find_opt r.layouts ty with
  | Some l -> l
  | None ->
    let l = Layout.build r.tenv ty in
    Hashtbl.replace r.layouts ty l;
    l

let var_slot fe name =
  match Hashtbl.find_opt fe.vslots name with
  | Some s -> s
  | None ->
    let s = fe.n_vars in
    Hashtbl.replace fe.vslots name s;
    fe.vnames_rev <- name :: fe.vnames_rev;
    fe.n_vars <- s + 1;
    s

let local_slot fe name =
  match Hashtbl.find_opt fe.lslots name with
  | Some s -> s
  | None ->
    let s = fe.n_locals in
    Hashtbl.replace fe.lslots name s;
    fe.lnames_rev <- name :: fe.lnames_rev;
    fe.n_locals <- s + 1;
    s

let vclass_of ty =
  match ty with
  | Ctype.Ptr _ -> Cls_ptr
  | Ctype.F64 -> Cls_f64
  | _ -> Cls_int

let coerce_kind_of ty =
  match ty with
  | Ctype.I8 -> K_i8
  | Ctype.I16 -> K_i16
  | Ctype.I32 -> K_i32
  | Ctype.I64 -> K_i64
  | Ctype.F64 -> K_f64
  | Ctype.Ptr _ -> K_ptr
  | Ctype.Void | Ctype.Struct _ | Ctype.Array _ -> K_other

(* Static mirror of the interpreter's gep walk. A bad field aborts
   before anything on that step runs; a bad index aborts after the index
   expression has been evaluated and counted, hence the zero-stride
   [Rs_index] in front of its [Rs_bad]. *)
(* Merge runs of consecutive field steps: offsets add, and the narrowed
   bounds the VM derives come from the last field of the run at the
   accumulated address, so a single step with the summed offset and the
   last field's size is observationally identical. Most struct geps
   collapse to one static step this way. *)
let rec fold_fields = function
  | Rs_field { off = o1; fsize = _ } :: Rs_field { off = o2; fsize } :: rest ->
    fold_fields (Rs_field { off = o1 + o2; fsize } :: rest)
  | s :: rest -> s :: fold_fields rest
  | [] -> []

let rec resolve_gep_steps r fe pointee steps =
  let rec walk ty leading = function
    | [] -> []
    | Ir.S_field f :: rest -> (
      match ty with
      | Ctype.Struct s ->
        let off, fty = Ctype.field_offset r.tenv s f in
        let fsize = Ctype.sizeof r.tenv fty in
        Rs_field { off; fsize } :: walk fty false rest
      | _ -> [ Rs_bad "gep: bad field" ])
    | Ir.S_index ie :: rest -> (
      let idx = resolve_expr r fe ie in
      match ty with
      | Ctype.Array (elt, _) ->
        Rs_index { esize = Ctype.sizeof r.tenv elt; idx } :: walk elt false rest
      | _ when leading ->
        Rs_index { esize = Ctype.sizeof r.tenv ty; idx } :: walk ty false rest
      | _ -> [ Rs_index { esize = 0; idx }; Rs_bad "gep: index into non-array" ])
  in
  walk pointee true steps

and resolve_expr r fe (e : Ir.expr) : expr =
  match e with
  | Ir.Int x -> Int x
  | Ir.Float f -> Float f
  | Ir.Var name -> Var (var_slot fe name)
  | Ir.Binop (op, a, b) -> Binop (op, resolve_expr r fe a, resolve_expr r fe b)
  | Ir.Unop (op, a) -> Unop (op, resolve_expr r fe a)
  | Ir.Load (ty, addr) ->
    Load
      {
        cls = vclass_of ty;
        bytes = Ctype.sizeof r.tenv ty;
        addr = resolve_expr r fe addr;
      }
  | Ir.Addr_local name -> Addr_local (local_slot fe name)
  | Ir.Addr_global g -> (
    match Hashtbl.find_opt r.gidx g with
    | Some i -> Addr_global i
    | None -> Bad ("unknown global " ^ g))
  | Ir.Load_global g -> (
    match Hashtbl.find_opt r.gidx g with
    | Some i ->
      (* the reference interpreter reads the type from the first
         declaration of the name, the address from the last *)
      let gty = Hashtbl.find r.gfirst g in
      Load_global { g = i; cls = vclass_of gty; bytes = Ctype.sizeof r.tenv gty }
    | None -> Bad ("unknown global " ^ g))
  | Ir.Gep (pointee, base, steps) ->
    let site = new_site r in
    let rsteps = fold_fields (resolve_gep_steps r fe pointee steps) in
    let clean =
      List.for_all (function Rs_bad _ -> false | _ -> true) rsteps
    in
    let idx_delta =
      if not clean then 0
      else
        (* the static subobject-index immediate the compiler would bake
           into ifpidx (reference: Vm.gep_idx_delta) *)
        match Typecheck.layout_path r.tenv pointee steps with
        | [] -> 0
        | path -> (
          match Layout.index_of_path (layout_of r pointee) path with
          | Some d -> d
          | None -> 0)
        | exception Typecheck.Type_error _ -> 0
    in
    let base = resolve_expr r fe base in
    Gep { base; steps = rsteps; idx_delta; site }
  | Ir.Call (fn, args) ->
    let target =
      match fn with
      | "__print_i64" -> C_print_i64
      | "__print_f64" -> C_print_f64
      | "__abort" -> C_abort
      | _ -> (
        match Hashtbl.find_opt r.fidx fn with
        | Some i -> C_func i
        | None -> C_unknown fn)
    in
    Call
      {
        target;
        args = List.map (resolve_expr r fe) args;
        n_args = List.length args;
      }
  | Ir.Malloc (ty, n) ->
    Malloc
      {
        scale = Ctype.sizeof r.tenv ty;
        count = resolve_expr r fe n;
        cty = Some ty;
        layout_multi = Layout.length (layout_of r ty) > 1;
      }
  | Ir.Malloc_bytes n ->
    Malloc { scale = 1; count = resolve_expr r fe n; cty = None; layout_multi = false }
  | Ir.Malloc_sized (ty, n) ->
    Malloc
      {
        scale = 1;
        count = resolve_expr r fe n;
        cty = Some ty;
        layout_multi = Layout.length (layout_of r ty) > 1;
      }
  | Ir.Cast (ty, a) ->
    let kind =
      match ty with
      | Ctype.Ptr _ -> Cast_ptr
      | Ctype.F64 -> Cast_f64
      | _ -> Cast_int (max 1 (Ctype.sizeof r.tenv ty))
    in
    Cast { kind; e = resolve_expr r fe a }
  | Ir.Ifp_promote e ->
    let site = new_site r in
    Ifp_promote { e = resolve_expr r fe e; site }

let rec resolve_stmt r fe (s : Ir.stmt) : stmt =
  match s with
  | Ir.Let (name, ty, e) ->
    let e = resolve_expr r fe e in
    Let { slot = var_slot fe name; k = coerce_kind_of ty; e }
  | Ir.Assign (name, e) ->
    let e = resolve_expr r fe e in
    Assign { slot = var_slot fe name; e }
  | Ir.Decl_local (name, ty) ->
    Decl_local
      {
        slot = local_slot fe name;
        size = Ctype.sizeof r.tenv ty;
        tyid = tyid_of r ty;
      }
  | Ir.Store (ty, addr, v) ->
    Store
      {
        cls = vclass_of ty;
        bytes = Ctype.sizeof r.tenv ty;
        addr = resolve_expr r fe addr;
        v = resolve_expr r fe v;
      }
  | Ir.Store_global (g, e) -> (
    let e = resolve_expr r fe e in
    match Hashtbl.find_opt r.gidx g with
    | Some i ->
      let gty = Hashtbl.find r.gfirst g in
      Store_global
        { g = i; cls = vclass_of gty; bytes = Ctype.sizeof r.tenv gty; e }
    | None -> Bad_store_global { e; msg = "unknown global " ^ g })
  | Ir.If (c, t, e) ->
    If
      ( resolve_expr r fe c,
        List.map (resolve_stmt r fe) t,
        List.map (resolve_stmt r fe) e )
  | Ir.While (c, body) ->
    While (resolve_expr r fe c, List.map (resolve_stmt r fe) body)
  | Ir.Return None -> Return None
  | Ir.Return (Some e) -> Return (Some (resolve_expr r fe e))
  | Ir.Expr e -> Expr (resolve_expr r fe e)
  | Ir.Free e -> Free (resolve_expr r fe e)
  | Ir.Break -> Break
  | Ir.Continue -> Continue
  | Ir.Ifp_register_local name ->
    Ifp_register_local { slot = local_slot fe name; site = new_site r }
  | Ir.Ifp_deregister_local name -> Ifp_deregister_local (local_slot fe name)

(* Register-pressure scan for the spill cost model (reference:
   Vm.func_meta_of). *)
let func_meta_of (f : Ir.func) =
  let has_calls = ref false in
  let ptr_regs = ref 0 in
  List.iter
    (fun (_, ty) -> match ty with Ctype.Ptr _ -> incr ptr_regs | _ -> ())
    f.params;
  let rec scan_expr (e : Ir.expr) =
    match e with
    | Call _ -> has_calls := true
    | Int _ | Float _ | Var _ | Addr_local _ | Addr_global _ | Load_global _ -> ()
    | Binop (_, a, b) ->
      scan_expr a;
      scan_expr b
    | Unop (_, a) | Cast (_, a) | Ifp_promote a | Load (_, a) | Malloc (_, a)
    | Malloc_bytes a | Malloc_sized (_, a) ->
      scan_expr a
    | Gep (_, b, steps) ->
      scan_expr b;
      List.iter
        (function Ir.S_index ie -> scan_expr ie | Ir.S_field _ -> ())
        steps
  in
  let rec scan_stmt (s : Ir.stmt) =
    match s with
    | Let (_, Ctype.Ptr _, e) ->
      incr ptr_regs;
      scan_expr e
    | Let (_, _, e) | Assign (_, e) | Store_global (_, e) | Expr e | Free e ->
      scan_expr e
    | Store (_, a, e) ->
      scan_expr a;
      scan_expr e
    | If (c, t, e) ->
      scan_expr c;
      List.iter scan_stmt t;
      List.iter scan_stmt e
    | While (c, b) ->
      scan_expr c;
      List.iter scan_stmt b
    | Return (Some e) -> scan_expr e
    | Decl_local _ | Return None | Break | Continue | Ifp_register_local _
    | Ifp_deregister_local _ ->
      ()
  in
  List.iter scan_stmt f.body;
  (!has_calls, !ptr_regs)

let resolve_func r (f : Ir.func) : func =
  let fe =
    {
      vslots = Hashtbl.create 16;
      vnames_rev = [];
      n_vars = 0;
      lslots = Hashtbl.create 8;
      lnames_rev = [];
      n_locals = 0;
    }
  in
  let params = List.map (fun (pname, _) -> var_slot fe pname) f.params in
  let body = List.map (resolve_stmt r fe) f.body in
  let has_calls, ptr_regs = func_meta_of f in
  {
    fname = f.fname;
    params;
    n_vars = fe.n_vars;
    var_names = Array.of_list (List.rev fe.vnames_rev);
    n_locals = fe.n_locals;
    local_names = Array.of_list (List.rev fe.lnames_rev);
    body;
    instrumented = f.instrumented;
    has_calls;
    ptr_regs;
  }

let run (prog : Ir.program) : program =
  let r =
    {
      tenv = prog.tenv;
      fidx = Hashtbl.create 64;
      gidx = Hashtbl.create 16;
      gfirst = Hashtbl.create 16;
      tyids = Hashtbl.create 16;
      types_rev = [];
      n_types = 0;
      layouts = Hashtbl.create 16;
      n_sites = 0;
    }
  in
  List.iteri
    (fun i (g : Ir.global) ->
      (* last declaration wins for the address, like the reference
         interpreter's Hashtbl.replace during setup; the first wins for
         by-name access types, like Ir.find_global *)
      Hashtbl.replace r.gidx g.gname i;
      if not (Hashtbl.mem r.gfirst g.gname) then
        Hashtbl.replace r.gfirst g.gname g.gty)
    prog.globals;
  List.iteri (fun i (f : Ir.func) -> Hashtbl.replace r.fidx f.fname i) prog.funcs;
  let funcs = Array.of_list (List.map (resolve_func r) prog.funcs) in
  let globals =
    Array.of_list
      (List.map
         (fun (g : Ir.global) ->
           {
             gname = g.gname;
             gty = g.gty;
             gsize = Ctype.sizeof prog.tenv g.gty;
             gregistered = g.registered;
           })
         prog.globals)
  in
  let main =
    match Hashtbl.find_opt r.fidx "main" with Some i -> i | None -> -1
  in
  {
    tenv = prog.tenv;
    globals;
    funcs;
    main;
    types = Array.of_list (List.rev r.types_rev);
    n_sites = r.n_sites;
  }
