type var = string

type binop =
  | Add | Sub | Mul | Div | Rem
  | BAnd | BOr | BXor | Shl | Shr
  | LAnd | LOr
  | Eq | Ne | Lt | Le | Gt | Ge
  | FAdd | FSub | FMul | FDiv
  | FEq | FLt | FLe

type unop = Neg | LNot | BNot | FNeg | I2F | F2I

type gstep = S_field of string | S_index of expr

and expr =
  | Int of int64
  | Float of float
  | Var of var
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Load of Ifp_types.Ctype.t * expr
  | Addr_local of var
  | Addr_global of string
  | Load_global of string
  | Gep of Ifp_types.Ctype.t * expr * gstep list
  | Call of string * expr list
  | Malloc of Ifp_types.Ctype.t * expr
  | Malloc_bytes of expr
  | Malloc_sized of Ifp_types.Ctype.t * expr
  | Cast of Ifp_types.Ctype.t * expr
  | Ifp_promote of expr

and stmt =
  | Let of var * Ifp_types.Ctype.t * expr
  | Assign of var * expr
  | Decl_local of var * Ifp_types.Ctype.t
  | Store of Ifp_types.Ctype.t * expr * expr
  | Store_global of string * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Expr of expr
  | Free of expr
  | Break
  | Continue
  | Ifp_register_local of var
  | Ifp_deregister_local of var

type func = {
  fname : string;
  params : (var * Ifp_types.Ctype.t) list;
  ret : Ifp_types.Ctype.t;
  body : stmt list;
  instrumented : bool;
}

type global = {
  gname : string;
  gty : Ifp_types.Ctype.t;
  mutable registered : bool;
}

type program = {
  tenv : Ifp_types.Ctype.tenv;
  globals : global list;
  funcs : func list;
}

let func ?(instrumented = true) fname params ret body =
  { fname; params; ret; body; instrumented }

let global gname gty = { gname; gty; registered = false }

let program ~tenv ~globals funcs = { tenv; globals; funcs }

let find_func p name =
  List.find_opt (fun f -> String.equal f.fname name) p.funcs

let find_global p name =
  List.find_opt (fun g -> String.equal g.gname name) p.globals

(* ---- structural equality -------------------------------------------- *)

(* Explicit recursion rather than polymorphic compare: [tenv] is a Map
   (tree shape is not canonical), floats must compare by bits (so nan =
   nan and -0.0 <> 0.0 are both deterministic), and [registered] is
   mutable instrumentation state that two otherwise-identical programs
   may disagree on. *)

let rec equal_expr a b =
  match (a, b) with
  | Int x, Int y -> Int64.equal x y
  | Float x, Float y ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Var x, Var y -> String.equal x y
  | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
    o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | Unop (o1, a1), Unop (o2, a2) -> o1 = o2 && equal_expr a1 a2
  | Load (t1, e1), Load (t2, e2) ->
    Ifp_types.Ctype.equal t1 t2 && equal_expr e1 e2
  | Addr_local x, Addr_local y | Addr_global x, Addr_global y
  | Load_global x, Load_global y ->
    String.equal x y
  | Gep (t1, b1, s1), Gep (t2, b2, s2) ->
    Ifp_types.Ctype.equal t1 t2 && equal_expr b1 b2
    && List.length s1 = List.length s2
    && List.for_all2 equal_gstep s1 s2
  | Call (f1, a1), Call (f2, a2) ->
    String.equal f1 f2
    && List.length a1 = List.length a2
    && List.for_all2 equal_expr a1 a2
  | Malloc (t1, e1), Malloc (t2, e2) | Malloc_sized (t1, e1), Malloc_sized (t2, e2)
  | Cast (t1, e1), Cast (t2, e2) ->
    Ifp_types.Ctype.equal t1 t2 && equal_expr e1 e2
  | Malloc_bytes e1, Malloc_bytes e2 | Ifp_promote e1, Ifp_promote e2 ->
    equal_expr e1 e2
  | ( ( Int _ | Float _ | Var _ | Binop _ | Unop _ | Load _ | Addr_local _
      | Addr_global _ | Load_global _ | Gep _ | Call _ | Malloc _
      | Malloc_bytes _ | Malloc_sized _ | Cast _ | Ifp_promote _ ),
      _ ) ->
    false

and equal_gstep a b =
  match (a, b) with
  | S_field x, S_field y -> String.equal x y
  | S_index x, S_index y -> equal_expr x y
  | (S_field _ | S_index _), _ -> false

let rec equal_stmt a b =
  match (a, b) with
  | Let (v1, t1, e1), Let (v2, t2, e2) ->
    String.equal v1 v2 && Ifp_types.Ctype.equal t1 t2 && equal_expr e1 e2
  | Assign (v1, e1), Assign (v2, e2) | Store_global (v1, e1), Store_global (v2, e2)
    ->
    String.equal v1 v2 && equal_expr e1 e2
  | Decl_local (v1, t1), Decl_local (v2, t2) ->
    String.equal v1 v2 && Ifp_types.Ctype.equal t1 t2
  | Store (t1, a1, e1), Store (t2, a2, e2) ->
    Ifp_types.Ctype.equal t1 t2 && equal_expr a1 a2 && equal_expr e1 e2
  | If (c1, t1, e1), If (c2, t2, e2) ->
    equal_expr c1 c2 && equal_block t1 t2 && equal_block e1 e2
  | While (c1, b1), While (c2, b2) -> equal_expr c1 c2 && equal_block b1 b2
  | Return None, Return None -> true
  | Return (Some e1), Return (Some e2) -> equal_expr e1 e2
  | Expr e1, Expr e2 | Free e1, Free e2 -> equal_expr e1 e2
  | Break, Break | Continue, Continue -> true
  | Ifp_register_local v1, Ifp_register_local v2
  | Ifp_deregister_local v1, Ifp_deregister_local v2 ->
    String.equal v1 v2
  | ( ( Let _ | Assign _ | Decl_local _ | Store _ | Store_global _ | If _
      | While _ | Return _ | Expr _ | Free _ | Break | Continue
      | Ifp_register_local _ | Ifp_deregister_local _ ),
      _ ) ->
    false

and equal_block a b =
  List.length a = List.length b && List.for_all2 equal_stmt a b

let equal_func (a : func) (b : func) =
  String.equal a.fname b.fname
  && a.instrumented = b.instrumented
  && Ifp_types.Ctype.equal a.ret b.ret
  && List.length a.params = List.length b.params
  && List.for_all2
       (fun (n1, t1) (n2, t2) ->
         String.equal n1 n2 && Ifp_types.Ctype.equal t1 t2)
       a.params b.params
  && equal_block a.body b.body

(* [registered] is deliberately ignored: it is pass output, not program
   identity *)
let equal_global (a : global) (b : global) =
  String.equal a.gname b.gname && Ifp_types.Ctype.equal a.gty b.gty

let equal_tenv a b =
  let defs env =
    List.map
      (fun (name, (d : Ifp_types.Ctype.struct_def)) -> (name, d.sname, d.fields))
      (Ifp_types.Ctype.bindings env)
  in
  List.length (defs a) = List.length (defs b)
  && List.for_all2
       (fun (n1, s1, f1) (n2, s2, f2) ->
         String.equal n1 n2 && String.equal s1 s2
         && List.length f1 = List.length f2
         && List.for_all2
              (fun (x : Ifp_types.Ctype.field) (y : Ifp_types.Ctype.field) ->
                String.equal x.fname y.fname && Ifp_types.Ctype.equal x.fty y.fty)
              f1 f2)
       (defs a) (defs b)

let equal_program (a : program) (b : program) =
  equal_tenv a.tenv b.tenv
  && List.length a.globals = List.length b.globals
  && List.for_all2 equal_global a.globals b.globals
  && List.length a.funcs = List.length b.funcs
  && List.for_all2 equal_func a.funcs b.funcs

let i n = Int (Int64.of_int n)
let i64 n = Int n
let v name = Var name
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( %: ) a b = Binop (Rem, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( >: ) a b = Binop (Gt, a, b)
let ( >=: ) a b = Binop (Ge, a, b)
let ( ==: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Ne, a, b)
let ( &&: ) a b = Binop (LAnd, a, b)
let ( ||: ) a b = Binop (LOr, a, b)
let not_ a = Unop (LNot, a)
let null ty = Cast (Ifp_types.Ctype.Ptr ty, Int 0L)

let idx base index steps pointee = Gep (pointee, base, S_index index :: steps)
let fld name = S_field name
let at e = S_index e
