module Ctype = Ifp_types.Ctype

type report = {
  locals_registered : int;
  locals_skipped : int;
  promotes_inserted : int;
  globals_registered : int;
  alloc_types_inferred : int;
}

type config = { infer_alloc_types : bool }

let default_config = { infer_alloc_types = false }

(* A Gep path is statically safe when every index is a compile-time
   constant within the array bounds it indexes (and leading pointer
   arithmetic is absent or zero): accesses through it can never leave the
   object, so the local needs no runtime metadata. *)
let const_in_bounds tenv pointee steps =
  let rec go ty steps ~leading =
    match steps with
    | [] -> true
    | Ir.S_field f :: rest -> (
      match ty with
      | Ctype.Struct s -> (
        match Ctype.field_offset tenv s f with
        | _, fty -> go fty rest ~leading:false
        | exception Not_found -> false)
      | _ -> false)
    | Ir.S_index (Ir.Int k) :: rest -> (
      match ty with
      | Ctype.Array (elt, n) ->
        Int64.compare k 0L >= 0
        && Int64.compare k (Int64.of_int n) < 0
        && go elt rest ~leading:false
      | _ -> leading && Int64.equal k 0L && go ty rest ~leading:false)
    | Ir.S_index _ :: _ -> false
  in
  go pointee steps ~leading:true

(* Find the locals of [f] whose address use cannot be proven safe. *)
let escaping_locals tenv (f : Ir.func) =
  let escaped = Hashtbl.create 8 in
  let note v = Hashtbl.replace escaped v () in
  let rec expr ~deref (e : Ir.expr) =
    match e with
    | Int _ | Float _ | Var _ | Load_global _ -> ()
    | Binop (_, a, b) ->
      expr ~deref:false a;
      expr ~deref:false b
    | Unop (_, a) | Cast (_, a) | Ifp_promote a -> expr ~deref a
    | Load (_, addr) -> expr ~deref:true addr
    | Addr_local v -> if not deref then note v
    | Addr_global _ -> ()
    | Gep (pointee, base, steps) ->
      let safe = deref && const_in_bounds tenv pointee steps in
      expr ~deref:safe base;
      List.iter
        (function Ir.S_index ie -> expr ~deref:false ie | Ir.S_field _ -> ())
        steps
    | Call (_, args) -> List.iter (expr ~deref:false) args
    | Malloc (_, n) | Malloc_bytes n | Malloc_sized (_, n) ->
      expr ~deref:false n
  in
  let rec stmt (s : Ir.stmt) =
    match s with
    | Let (_, _, e) | Assign (_, e) | Store_global (_, e) | Expr e | Free e ->
      expr ~deref:false e
    | Decl_local _ | Break | Continue | Return None
    | Ifp_register_local _ | Ifp_deregister_local _ ->
      ()
    | Store (_, addr, value) ->
      expr ~deref:true addr;
      expr ~deref:false value
    | If (c, t, e) ->
      expr ~deref:false c;
      List.iter stmt t;
      List.iter stmt e
    | While (c, body) ->
      expr ~deref:false c;
      List.iter stmt body
    | Return (Some e) -> expr ~deref:false e
  in
  List.iter stmt f.body;
  escaped

let local_needs_registration tenv f v =
  Hashtbl.mem (escaping_locals tenv f) v

let fresh =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "__ifp_ret%d" !n

let instrument_func cfg tenv gtys (f : Ir.func) ~count_promote ~count_reg
    ~count_skip ~count_infer =
  let escaped = escaping_locals tenv f in
  (* collect all stack locals to classify *)
  let registered = Hashtbl.create 8 in
  let rec scan_decls stmts =
    List.iter
      (function
        | Ir.Decl_local (v, _) ->
          if Hashtbl.mem escaped v then begin
            Hashtbl.replace registered v ();
            count_reg ()
          end
          else count_skip ()
        | Ir.If (_, t, e) ->
          scan_decls t;
          scan_decls e
        | Ir.While (_, b) -> scan_decls b
        | _ -> ())
      stmts
  in
  scan_decls f.body;
  let deregs () =
    Hashtbl.fold (fun v () acc -> Ir.Ifp_deregister_local v :: acc) registered []
  in
  let rec expr (e : Ir.expr) : Ir.expr =
    match e with
    | Int _ | Float _ | Var _ | Addr_local _ | Addr_global _ | Load_global _ ->
      promote_if_pointer e
    | Binop (op, a, b) -> Binop (op, expr a, expr b)
    | Unop (op, a) -> Unop (op, expr a)
    | Load (ty, addr) -> promote_if_pointer (Load (ty, expr addr))
    | Gep (pt, base, steps) ->
      Gep
        ( pt,
          expr base,
          List.map
            (function
              | Ir.S_index ie -> Ir.S_index (expr ie)
              | Ir.S_field _ as s -> s)
            steps )
    | Call (fn, args) -> Call (fn, List.map expr args)
    | Malloc (ty, n) -> Malloc (ty, expr n)
    | Malloc_bytes n -> Malloc_bytes (expr n)
    | Malloc_sized (ty, n) -> Malloc_sized (ty, expr n)
    | Cast (Ctype.Ptr ty, Malloc_bytes n)
      when cfg.infer_alloc_types
           && (match ty with Ctype.Struct _ | Ctype.Array _ -> true | _ -> false)
      ->
      (* allocation-wrapper inference (paper §5.2.1 future work): the
         wrapper's type-erased allocation is immediately cast to a typed
         pointer, so the element type — and its layout table — can be
         recovered *)
      count_infer ();
      Cast (Ctype.Ptr ty, Malloc_sized (ty, expr n))
    | Cast (ty, a) -> Cast (ty, expr a)
    | Ifp_promote a -> Ifp_promote (expr a)
  and promote_if_pointer (e : Ir.expr) : Ir.expr =
    match e with
    | Load (Ctype.Ptr _, _) ->
      count_promote ();
      Ifp_promote e
    | Load_global g -> (
      (* a pointer-typed global read by name is still a pointer loaded
         from memory (Listing 2's gv_ptr): its bounds are unknown *)
      match Hashtbl.find_opt gtys g with
      | Some (Ctype.Ptr _) ->
        count_promote ();
        Ifp_promote e
      | _ -> e)
    | _ -> e
  in
  let xexpr = expr in
  let rec stmt (s : Ir.stmt) : Ir.stmt list =
    match s with
    | Let (v, ty, e) -> [ Let (v, ty, xexpr e) ]
    | Assign (v, e) -> [ Assign (v, xexpr e) ]
    | Decl_local (v, ty) ->
      if Hashtbl.mem registered v then
        [ Decl_local (v, ty); Ifp_register_local v ]
      else [ Decl_local (v, ty) ]
    | Store (ty, a, e) -> [ Store (ty, xexpr a, xexpr e) ]
    | Store_global (g, e) -> [ Store_global (g, xexpr e) ]
    | If (c, t, e) -> [ If (xexpr c, stmts t, stmts e) ]
    | While (c, b) -> [ While (xexpr c, stmts b) ]
    | Return None ->
      if Hashtbl.length registered = 0 then [ Return None ]
      else deregs () @ [ Return None ]
    | Return (Some e) ->
      let e = xexpr e in
      if Hashtbl.length registered = 0 then [ Return (Some e) ]
      else if Ctype.is_scalar f.ret then
        let tmp = fresh () in
        (Ir.Let (tmp, f.ret, e) :: deregs ()) @ [ Return (Some (Var tmp)) ]
      else deregs () @ [ Return (Some e) ]
    | Expr e -> [ Expr (xexpr e) ]
    | Free e -> [ Free (xexpr e) ]
    | (Break | Continue | Ifp_register_local _ | Ifp_deregister_local _) as s ->
      [ s ]
  and stmts ss = List.concat_map stmt ss in
  let body = stmts f.body in
  let body =
    (* fall-through function end also deregisters *)
    match List.rev body with
    | Ir.Return _ :: _ -> body
    | _ -> body @ deregs ()
  in
  { f with body }

let run ?(config = default_config) (prog : Ir.program) =
  let promotes = ref 0 and regs = ref 0 and skips = ref 0 and inferred = ref 0 in
  (* mark globals whose address is taken anywhere *)
  let addr_taken = Hashtbl.create 8 in
  let rec scan_expr (e : Ir.expr) =
    match e with
    | Addr_global g -> Hashtbl.replace addr_taken g ()
    | Int _ | Float _ | Var _ | Addr_local _ | Load_global _ -> ()
    | Binop (_, a, b) ->
      scan_expr a;
      scan_expr b
    | Unop (_, a) | Cast (_, a) | Ifp_promote a | Load (_, a)
    | Malloc (_, a) | Malloc_bytes a | Malloc_sized (_, a) ->
      scan_expr a
    | Gep (_, b, steps) ->
      scan_expr b;
      List.iter
        (function Ir.S_index ie -> scan_expr ie | Ir.S_field _ -> ())
        steps
    | Call (_, args) -> List.iter scan_expr args
  in
  let rec scan_stmt (s : Ir.stmt) =
    match s with
    | Let (_, _, e) | Assign (_, e) | Store_global (_, e) | Expr e | Free e ->
      scan_expr e
    | Store (_, a, e) ->
      scan_expr a;
      scan_expr e
    | If (c, t, e) ->
      scan_expr c;
      List.iter scan_stmt t;
      List.iter scan_stmt e
    | While (c, b) ->
      scan_expr c;
      List.iter scan_stmt b
    | Return (Some e) -> scan_expr e
    | Decl_local _ | Return None | Break | Continue | Ifp_register_local _
    | Ifp_deregister_local _ ->
      ()
  in
  List.iter
    (fun (f : Ir.func) -> if f.instrumented then List.iter scan_stmt f.body)
    prog.funcs;
  (* fresh global records: never mutate the input program — it may be
     shared with concurrent runs and with content-digest computations *)
  let globals =
    List.map
      (fun (g : Ir.global) ->
        { g with Ir.registered = Hashtbl.mem addr_taken g.gname })
      prog.globals
  in
  let gtys = Hashtbl.create 8 in
  List.iter (fun (g : Ir.global) -> Hashtbl.replace gtys g.gname g.gty) prog.globals;
  let funcs =
    List.map
      (fun (f : Ir.func) ->
        if not f.instrumented then f
        else
          instrument_func config prog.tenv gtys f
            ~count_promote:(fun () -> incr promotes)
            ~count_reg:(fun () -> incr regs)
            ~count_skip:(fun () -> incr skips)
            ~count_infer:(fun () -> incr inferred))
      prog.funcs
  in
  let globals_registered =
    List.length (List.filter (fun (g : Ir.global) -> g.registered) globals)
  in
  ( { prog with funcs; globals },
    {
      locals_registered = !regs;
      locals_skipped = !skips;
      promotes_inserted = !promotes;
      globals_registered;
      alloc_types_inferred = !inferred;
    } )
