type 'a queue = {
  m : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  mutable closed : bool;
}

let queue_create () =
  {
    m = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    closed = false;
  }

let push q x =
  Mutex.lock q.m;
  Queue.push x q.items;
  Condition.signal q.nonempty;
  Mutex.unlock q.m

let close q =
  Mutex.lock q.m;
  q.closed <- true;
  Condition.broadcast q.nonempty;
  Mutex.unlock q.m

(* blocks until an item is available or the queue is closed and drained *)
let pop q =
  Mutex.lock q.m;
  let rec loop () =
    match Queue.take_opt q.items with
    | Some x ->
      Mutex.unlock q.m;
      Some x
    | None ->
      if q.closed then (
        Mutex.unlock q.m;
        None)
      else (
        Condition.wait q.nonempty q.m;
        loop ())
  in
  loop ()

let run ~workers tasks =
  let n = Array.length tasks in
  if workers <= 1 || n <= 1 then
    Array.iter (fun task -> try task () with _ -> ()) tasks
  else begin
    let q = queue_create () in
    let worker () =
      let rec loop () =
        match pop q with
        | None -> ()
        | Some i ->
          (try tasks.(i) () with _ -> ());
          loop ()
      in
      loop ()
    in
    let domains =
      Array.init (min workers n) (fun _ -> Domain.spawn worker)
    in
    for i = 0 to n - 1 do
      push q i
    done;
    close q;
    Array.iter Domain.join domains
  end
