(** Chaos harness for the campaign engine {e itself} — the host-layer
    dual of [lib/faultinject].

    [lib/faultinject] corrupts the {e simulated} machine and asks
    whether the modelled hardware detects it; this module corrupts the
    {e host-side} campaign infrastructure — kills the runner process
    cold, tears cache entries mid-write, truncates the journal tail —
    and the chaos tests ask whether the crash-consistency machinery
    ({!Journal} replay, {!Cache} CRC quarantine, [--resume]) converges
    back to results byte-identical to an undisturbed run.

    Everything is seed-driven, like a fault plan: same seed ⇒ same kill
    point / same torn byte, so a failing chaos case replays exactly. *)

(** What gets attacked. *)
type cls =
  | Kill_runner
      (** SIGKILL the campaign process after the n-th journaled job — an
          uncatchable, un-drainable death (OOM killer, power loss) *)
  | Tear_cache_entry
      (** truncate a stored [.result] file at a seeded byte offset — a
          write torn by a crash racing the atomic rename, or bit rot;
          must surface as a CRC quarantine, never a wrong result *)
  | Truncate_journal_tail
      (** chop seeded bytes off the journal's end — the torn final
          append; replay must drop at most the torn record *)

val all_classes : cls list
val class_name : cls -> string
val class_of_name : string -> cls option

type plan = { cls : cls; seed : int64 }

val plan : cls -> seed:int64 -> plan

val fingerprint : plan -> string
(** Stable one-line rendering, for logs and test labels. *)

val kill_point : plan -> jobs:int -> int
(** Seeded kill point in [[1, jobs]]: the number of completions after
    which {!arm_kill}'s hook should fire for this plan. *)

val arm_kill : after:int -> 'a -> unit
(** [arm_kill ~after] is a hook for {!Engine.run}'s [on_job_done]: on
    its [after]-th invocation it SIGKILLs the current process — after
    the journal record is on disk, before anything else happens. The
    count is shared across worker domains. [after <= 0] kills on the
    first completion. *)

val tear_cache_entry : plan -> dir:string -> string option
(** Picks a seeded [.result] entry under cache directory [dir]
    (recursively, in sorted order for determinism) and truncates it at
    a seeded interior offset. Returns the damaged path, or [None] if
    the cache holds no entries. *)

val truncate_journal_tail : plan -> path:string -> int option
(** Chops a seeded number of trailing bytes (at least 1, never into the
    magic header) off the journal at [path]. Returns how many bytes
    were cut, or [None] if the journal has no body to cut. *)

val truncate_tail : path:string -> bytes:int -> bool
(** Byte-precise tail chop (clamped to keep at least the journal-magic
    length), for exhaustive torn-frame sweeps in tests. [false] if the
    file is missing or already that short. *)
