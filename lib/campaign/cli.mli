(** Shared crash-safety scaffolding for the campaign binaries
    ([ifp_experiments], [ifp_faults], [ifp_juliet]): signal-driven
    graceful shutdown, journal opening/resume, resumable event logs and
    the interrupted-exit path. Lives in the library so the three drivers
    stay flag-for-flag and event-for-event consistent. *)

val install_interrupt : unit -> unit -> bool
(** Installs SIGINT/SIGTERM handlers that set a shared flag and returns
    the polling function to pass as {!Engine.run}'s [?stop]. Handlers
    only set the flag — the engine drains in-flight jobs, the driver
    flushes and exits. Platforms without these signals are tolerated
    (the returned function then never fires). *)

val open_journal :
  path:string option ->
  resume:bool ->
  Journal.t option * Journal.replay option
(** [path = None]: no journal. [resume = false]: fresh journal at
    [path]. [resume = true]: {!Journal.open_resume} — the replay info is
    returned for the [campaign_resumed] event. *)

val open_log :
  path:string option -> resume:bool -> Events.t * bool
(** Opens the JSONL event log: truncating on a fresh run, appending
    (with torn-tail repair, via {!Events.open_append}) on resume. The
    flag reports whether a torn final line was dropped. *)

val emit_resumed :
  Events.t -> replay:Journal.replay option -> log_truncated:bool -> unit
(** Emits the [campaign_resumed] event (replayed-entry count, journal
    torn-tail flag, log torn-line flag) — a no-op when not resuming. *)

val finish :
  ?hint:string ->
  journal:Journal.t option ->
  log:Events.t ->
  interrupted:bool ->
  unit ->
  unit
(** The single exit point for a campaign driver, enforcing the
    process-exit contract of {!Engine}: flush and close the journal and
    log, then [Stdlib.exit] — [130] when [interrupted] (printing the
    resume [hint] to stderr, if any), [0] otherwise — rather than
    returning from [main] and waiting on abandoned watchdog domains
    that cannot be cancelled. Never returns. *)
