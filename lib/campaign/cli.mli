(** Shared crash-safety scaffolding for the campaign binaries
    ([ifp_experiments], [ifp_faults], [ifp_juliet]): signal-driven
    graceful shutdown, journal opening/resume, resumable event logs and
    the interrupted-exit path. Lives in the library so the three drivers
    stay flag-for-flag and event-for-event consistent. *)

type signals = {
  stop : unit -> bool;  (** true once any armed signal has been seen *)
  restore : unit -> unit;
      (** reinstall the handlers live before {!install_stop}; idempotent *)
}

val install_stop : ?signals:int list -> unit -> signals
(** Installs handlers (default SIGINT + SIGTERM) that set a shared stop
    flag, remembering the previous handlers so [restore] can put them
    back — the shape a long-running process (the experiment daemon)
    needs to install for one serving phase and cleanly uninstall on
    drain. Handlers only set the flag — the engine drains in-flight
    jobs, the driver flushes and exits. Platforms rejecting a signal are
    tolerated (that signal then never fires the flag). *)

val install_interrupt : unit -> unit -> bool
(** [(install_stop ()).stop] — the one-shot batch-CLI form, where the
    process exits right after the drain and never restores handlers. *)

val parse_bytes : string -> int option
(** Byte-count CLI arguments: plain digits, or with a [k]/[M]/[G]
    (case-insensitive, 1024-based) suffix. [None] on anything else or on
    negative values. *)

val open_journal :
  path:string option ->
  resume:bool ->
  Journal.t option * Journal.replay option
(** [path = None]: no journal. [resume = false]: fresh journal at
    [path]. [resume = true]: {!Journal.open_resume} — the replay info is
    returned for the [campaign_resumed] event. *)

val open_log :
  path:string option -> resume:bool -> Events.t * bool
(** Opens the JSONL event log: truncating on a fresh run, appending
    (with torn-tail repair, via {!Events.open_append}) on resume. The
    flag reports whether a torn final line was dropped. *)

val emit_resumed :
  Events.t -> replay:Journal.replay option -> log_truncated:bool -> unit
(** Emits the [campaign_resumed] event (replayed-entry count, journal
    torn-tail flag, log torn-line flag) — a no-op when not resuming. *)

val finish :
  ?hint:string ->
  ?signals:signals ->
  journal:Journal.t option ->
  log:Events.t ->
  interrupted:bool ->
  unit ->
  unit
(** The single exit point for a campaign driver, enforcing the
    process-exit contract of {!Engine}: flush and close the journal and
    log, restore [signals] handlers if given, then [Stdlib.exit] —
    [130] when [interrupted] (printing the resume [hint] to stderr, if
    any), [0] otherwise — rather than returning from [main] and waiting
    on abandoned watchdog domains that cannot be cancelled. Never
    returns. *)
