(** Persistent on-disk result cache for campaign jobs.

    Layout: [<dir>/v<format_version>/<d0d1>/<digest>.result], where
    [digest] is the job's content digest ({!Job.digest}) and [d0d1] its
    first two hex characters (fan-out to keep directories small). Each
    file is an atomic-renamed [Marshal] of a small header plus the
    {!Ifp_vm.Vm.result} payload; since format v3 the header carries the
    payload's length and CRC-32 ({!Ifp_util.Crc32}), so a torn write or
    flipped bit is detected {e deterministically} on read instead of
    depending on [Marshal] happening to raise.

    Invalidation is entirely key-driven: the job digest covers the
    lowered program, the configuration and the cost-model/ISA constants
    ({!Job.model_digest}), so any of those changing simply misses the
    cache. {!format_version} is bumped when the serialised shape itself
    changes; old version directories are ignored (and can be deleted
    freely — the cache is always safe to wipe).

    {2 Byte budget}

    With [?max_bytes], the cache is an LRU with size accounting: every
    successful [find] refreshes the entry's mtime, and a [store] that
    pushes the directory past the budget triggers a sweep that deletes
    oldest-mtime entries until it fits again. The sweep re-walks the
    directory (under a per-instance lock — the "per-shard lock" when the
    experiment daemon partitions one cache into digest shards), so
    concurrent campaign processes sharing a directory stay consistent:
    drift in the running tally heals at the next sweep, and entries
    deleted under us are skipped, never errors. *)

type t

val format_version : int

val create : ?max_bytes:int -> dir:string -> unit -> t
(** Opens (creating directories as needed) a cache rooted at [dir],
    grounding the size tally in whatever entries already exist there.
    [max_bytes] arms the LRU byte budget; omitted = unbounded (the
    pre-existing behaviour). *)

val dir : t -> string

type stats = {
  entries : int;  (** live entries (best-effort running tally) *)
  bytes : int;  (** total entry bytes on disk (best-effort) *)
  max_bytes : int option;
  hits : int;
  misses : int;  (** includes quarantined probes *)
  stores : int;
  evictions : int;  (** entries deleted by the byte-budget sweep *)
  evicted_bytes : int;
}

val stats : t -> stats
(** Counters since [create] (hits/misses/stores/evictions are
    per-instance, not persisted). *)

val stats_json : t -> Events.json
(** {!stats} as a JSON object, plus a derived [hit_rate] — the shape the
    daemon's [stats] reply and the JSONL log carry. *)

val sweep : t -> unit
(** Force an LRU sweep now (normally triggered by [store] crossing the
    budget). No-op without [max_bytes]. *)

(** Result of a cache probe. A damaged entry is never fatal: it is
    quarantined — renamed to [<digest>.corrupt] next to its original
    location, preserved for post-mortem — and reported so the engine can
    emit a [cache_corrupt] (or, for checksum failures,
    [cache_crc_mismatch]) event; the next probe for the same digest is a
    clean {!Miss}. *)
type lookup =
  | Hit of Ifp_vm.Vm.result
  | Miss
  | Quarantined of { path : string; reason : string; crc_mismatch : bool }
      (** [path] is the quarantine file; [reason] is why the entry was
          rejected. [crc_mismatch] holds when the CRC32 framing caught
          the damage (short or checksum-failing payload — a torn write
          or bit rot), as opposed to a header-level rejection (bad
          magic, digest mismatch, undecodable header). *)

val find : t -> digest:string -> lookup

val store : t -> digest:string -> job_name:string -> Ifp_vm.Vm.result -> unit
(** Atomic (write-to-temp then rename), so concurrent worker domains and
    concurrent campaign processes can share one cache directory. I/O
    errors are swallowed: failure to cache never fails the job. *)
