(** Persistent on-disk result cache for campaign jobs.

    Layout: [<dir>/v<format_version>/<d0d1>/<digest>.result], where
    [digest] is the job's content digest ({!Job.digest}) and [d0d1] its
    first two hex characters (fan-out to keep directories small). Each
    file is an atomic-renamed [Marshal] of a small header plus the
    {!Ifp_vm.Vm.result} payload; since format v3 the header carries the
    payload's length and CRC-32 ({!Ifp_util.Crc32}), so a torn write or
    flipped bit is detected {e deterministically} on read instead of
    depending on [Marshal] happening to raise.

    Invalidation is entirely key-driven: the job digest covers the
    lowered program, the configuration and the cost-model/ISA constants
    ({!Job.model_digest}), so any of those changing simply misses the
    cache. {!format_version} is bumped when the serialised shape itself
    changes; old version directories are ignored (and can be deleted
    freely — the cache is always safe to wipe). *)

type t

val format_version : int

val create : dir:string -> t
(** Opens (creating directories as needed) a cache rooted at [dir]. *)

val dir : t -> string

(** Result of a cache probe. A damaged entry is never fatal: it is
    quarantined — renamed to [<digest>.corrupt] next to its original
    location, preserved for post-mortem — and reported so the engine can
    emit a [cache_corrupt] (or, for checksum failures,
    [cache_crc_mismatch]) event; the next probe for the same digest is a
    clean {!Miss}. *)
type lookup =
  | Hit of Ifp_vm.Vm.result
  | Miss
  | Quarantined of { path : string; reason : string; crc_mismatch : bool }
      (** [path] is the quarantine file; [reason] is why the entry was
          rejected. [crc_mismatch] holds when the CRC32 framing caught
          the damage (short or checksum-failing payload — a torn write
          or bit rot), as opposed to a header-level rejection (bad
          magic, digest mismatch, undecodable header). *)

val find : t -> digest:string -> lookup

val store : t -> digest:string -> job_name:string -> Ifp_vm.Vm.result -> unit
(** Atomic (write-to-temp then rename), so concurrent worker domains and
    concurrent campaign processes can share one cache directory. I/O
    errors are swallowed: failure to cache never fails the job. *)
