(** Write-ahead journal for campaign runs: crash-safe completion records
    with tail-truncation-tolerant replay.

    The result cache ({!Cache}) already makes {e re-running} cheap, but
    it is content-addressed and best-effort: it says nothing about which
    jobs {e this campaign} already finished, and a process killed
    mid-campaign leaves no authoritative record of its progress. The
    journal closes that gap with the same discipline the paper demands
    of its metadata stores (§4.2's invariant that state must never be
    observable torn): one framed, checksummed record is appended — and
    flushed — per completed job, so after a SIGKILL, OOM or power loss
    the journal replays to exactly the prefix of work that finished.

    {2 On-disk format}

    A 16-byte magic header, then zero or more records. Each record is a
    frame

    {v <len : u32 BE> <crc32 : u32 BE> <payload : len bytes> v}

    where [payload] is a [Marshal] of the {!entry} and [crc32] covers
    the payload bytes. Appends are a single buffered write plus flush
    under a mutex, so concurrent worker domains never interleave frames;
    the only damage a crash can cause is a {e torn final frame}, which
    replay detects (short frame, short payload, CRC mismatch, or
    undecodable marshal) and drops — every preceding record is intact by
    construction. Nothing is ever rewritten in place.

    {2 Replay semantics}

    Replay is idempotent: records are keyed by job digest and a later
    record for the same digest wins, so replaying a journal twice (or a
    journal that somehow holds duplicates) yields the same entry set as
    replaying it once. {!open_resume} additionally truncates the file
    back to its last intact frame before reopening for append, so a torn
    tail is physically discarded rather than skipped forever. *)

(** Completion status of a journaled job. Mirrors {!Engine.status}
    (which re-exports this type). [Skipped] — a job not run because the
    campaign was interrupted — is {e never} written to the journal: an
    unjournaled job is exactly what resume must re-run. *)
type status = Done | Failed of string | Timed_out | Skipped

type entry = {
  digest : string;  (** {!Job.digest} — the replay key *)
  job_name : string;  (** human label, for logs and post-mortems *)
  status : status;
  result : Ifp_vm.Vm.result option;  (** [Some] iff [status = Done] *)
}

type replay = {
  entries : entry list;  (** intact records, file order, deduped by digest *)
  torn_tail : bool;
      (** the file ended in a damaged frame (crash mid-append) that was
          dropped *)
  valid_bytes : int;  (** offset of the last intact frame's end *)
}

type t
(** An open journal writer. *)

val magic : string
(** The 16-byte file header. Exposed for the chaos harness and tests
    (e.g. "chop the tail but never the head"). *)

exception Bad_magic of string
(** Raised (with the offending path) when an existing file is not a
    journal at all — a torn {e tail} is tolerated, a wrong {e head} is a
    caller error. *)

val create : path:string -> t
(** Opens [path] fresh for writing (truncating any previous content) and
    writes the magic header.
    @raise Sys_error if the path cannot be opened — an unwritable
    journal is a configuration error, not something to run without. *)

val open_resume : path:string -> t * replay
(** Replays [path] (an empty or missing file replays to no entries),
    truncates any torn tail, and reopens for append positioned after the
    last intact record. Replayed entries stay queryable via {!find}.
    @raise Bad_magic if the file exists but does not start with the
    journal magic. *)

val replay : path:string -> replay
(** Read-only replay, for tools and tests. Missing file: empty replay.
    @raise Bad_magic as for {!open_resume}. *)

val find : t -> digest:string -> entry option
(** Replayed-or-appended entry for [digest], if any. This is what lets
    {!Engine.run} treat the journal as an authoritative cache: a found
    entry is served without re-running the job. *)

val replayed : t -> int
(** Number of distinct entries recovered by {!open_resume} (0 for
    {!create}). *)

val append : t -> entry -> unit
(** Appends one framed record and flushes. Thread-safe. Entries with
    [status = Skipped] are asserted away — journaling a skip would make
    resume believe the job finished. I/O errors are swallowed (a
    journal-write failure must not fail the job), but the entry still
    becomes visible to {!find}. *)

val close : t -> unit
