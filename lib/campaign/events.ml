type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_to_string f =
  if Float.is_finite f then
    (* shortest representation that still round-trips readably *)
    let s = Printf.sprintf "%.6g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"
  else "null"

let rec render buf indent level j =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> Buffer.add_string buf (escape_string s)
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    nl ();
    List.iteri
      (fun i item ->
        if i > 0 then (
          Buffer.add_char buf ',';
          nl ());
        pad (level + 1);
        render buf indent (level + 1) item)
      items;
    nl ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    nl ();
    List.iteri
      (fun i (k, v) ->
        if i > 0 then (
          Buffer.add_char buf ',';
          nl ());
        pad (level + 1);
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf (if indent then ": " else ":");
        render buf indent (level + 1) v)
      fields;
    nl ();
    pad level;
    Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 256 in
  render buf false 0 j;
  Buffer.contents buf

let write_json_file ~path j =
  let buf = Buffer.create 1024 in
  render buf true 0 j;
  Buffer.add_char buf '\n';
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc

type t = {
  oc : out_channel option;
  mutex : Mutex.t;
  t0 : float;
}

let create ~path =
  { oc = Some (open_out path); mutex = Mutex.create (); t0 = Unix.gettimeofday () }

(* ---- crash-tolerant reading ----

   The writer appends [line ^ "\n"] and flushes, so the only damage a
   crash can do is a final line with no terminating newline. Complete
   lines are well-formed by construction; the object-shape filter below
   is belt-and-braces against foreign editors. *)

let looks_like_event l =
  String.length l >= 2 && l.[0] = '{' && l.[String.length l - 1] = '}'

let read_lines ~path =
  match open_in_bin path with
  | exception Sys_error _ -> ([], false)
  | ic ->
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in_noerr ic;
    let truncated = len > 0 && s.[len - 1] <> '\n' in
    (* the final split part is "" when the file is newline-terminated and
       the torn partial line otherwise — dropped either way *)
    let rec complete = function
      | [] | [ _ ] -> []
      | x :: rest -> x :: complete rest
    in
    ( List.filter looks_like_event (complete (String.split_on_char '\n' s)),
      truncated )

let iter_lines ~path f =
  let lines, truncated = read_lines ~path in
  List.iter f lines;
  truncated

let open_append ~path =
  (* byte offset just past the last complete line; everything after it
     is a torn append that must not be glued onto the next line *)
  let keep =
    match open_in_bin path with
    | exception Sys_error _ -> 0
    | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in_noerr ic;
      (match String.rindex_opt s '\n' with Some i -> i + 1 | None -> 0)
  in
  let truncated =
    match Unix.stat path with
    | exception Unix.Unix_error _ -> false
    | st -> st.Unix.st_size > keep
  in
  if truncated then (
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
    Unix.ftruncate fd keep;
    Unix.close fd);
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
  ( { oc = Some oc; mutex = Mutex.create (); t0 = Unix.gettimeofday () },
    truncated )

let null = { oc = None; mutex = Mutex.create (); t0 = 0.0 }

let emit t event fields =
  match t.oc with
  | None -> ()
  | Some oc ->
    let ts = Unix.gettimeofday () -. t.t0 in
    let line =
      json_to_string
        (Obj (("ts", Float ts) :: ("event", String event) :: fields))
    in
    Mutex.lock t.mutex;
    output_string oc line;
    output_char oc '\n';
    flush oc;
    Mutex.unlock t.mutex

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    Mutex.lock t.mutex;
    (try flush oc with Sys_error _ -> ());
    (try close_out oc with Sys_error _ -> ());
    Mutex.unlock t.mutex
