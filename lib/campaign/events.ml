type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_to_string f =
  if Float.is_finite f then
    (* shortest representation that still round-trips readably *)
    let s = Printf.sprintf "%.6g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"
  else "null"

let rec render buf indent level j =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> Buffer.add_string buf (escape_string s)
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    nl ();
    List.iteri
      (fun i item ->
        if i > 0 then (
          Buffer.add_char buf ',';
          nl ());
        pad (level + 1);
        render buf indent (level + 1) item)
      items;
    nl ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    nl ();
    List.iteri
      (fun i (k, v) ->
        if i > 0 then (
          Buffer.add_char buf ',';
          nl ());
        pad (level + 1);
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf (if indent then ": " else ":");
        render buf indent (level + 1) v)
      fields;
    nl ();
    pad level;
    Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 256 in
  render buf false 0 j;
  Buffer.contents buf

let write_json_file ~path j =
  let buf = Buffer.create 1024 in
  render buf true 0 j;
  Buffer.add_char buf '\n';
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc

type t = {
  oc : out_channel option;
  mutex : Mutex.t;
  t0 : float;
}

let create ~path =
  { oc = Some (open_out path); mutex = Mutex.create (); t0 = Unix.gettimeofday () }

let null = { oc = None; mutex = Mutex.create (); t0 = 0.0 }

let emit t event fields =
  match t.oc with
  | None -> ()
  | Some oc ->
    let ts = Unix.gettimeofday () -. t.t0 in
    let line =
      json_to_string
        (Obj (("ts", Float ts) :: ("event", String event) :: fields))
    in
    Mutex.lock t.mutex;
    output_string oc line;
    output_char oc '\n';
    flush oc;
    Mutex.unlock t.mutex

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    Mutex.lock t.mutex;
    (try flush oc with Sys_error _ -> ());
    (try close_out oc with Sys_error _ -> ());
    Mutex.unlock t.mutex
