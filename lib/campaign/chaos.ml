module Prng = Ifp_util.Prng

type cls = Kill_runner | Tear_cache_entry | Truncate_journal_tail

let all_classes = [ Kill_runner; Tear_cache_entry; Truncate_journal_tail ]

let class_name = function
  | Kill_runner -> "kill_runner"
  | Tear_cache_entry -> "tear_cache_entry"
  | Truncate_journal_tail -> "truncate_journal_tail"

let class_of_name s =
  List.find_opt (fun c -> class_name c = s) all_classes

type plan = { cls : cls; seed : int64 }

let plan cls ~seed = { cls; seed }

let fingerprint p =
  Printf.sprintf "chaos:%s;seed=%Ld" (class_name p.cls) p.seed

(* one PRNG per plan; the class index keeps different classes on the
   same seed decorrelated, as Fault.default_plan does *)
let rng_of p =
  let ci =
    match p.cls with
    | Kill_runner -> 1L
    | Tear_cache_entry -> 2L
    | Truncate_journal_tail -> 3L
  in
  Prng.create (Prng.mix2 p.seed ci)

let kill_point p ~jobs =
  if jobs <= 1 then 1 else 1 + Prng.int (rng_of p) jobs

let arm_kill ~after =
  let count = Atomic.make 0 in
  fun _ ->
    if Atomic.fetch_and_add count 1 + 1 >= max 1 after then
      (* SIGKILL, not exit: nothing may drain, flush or at_exit — this
         is the power-loss case the journal exists for *)
      Unix.kill (Unix.getpid ()) Sys.sigkill

let ftruncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd len)

let rec find_files ~suffix path =
  match Sys.is_directory path with
  | exception Sys_error _ -> []
  | true ->
    let sub = Sys.readdir path in
    Array.sort compare sub;
    Array.to_list sub
    |> List.concat_map (fun f -> find_files ~suffix (Filename.concat path f))
  | false -> if Filename.check_suffix path suffix then [ path ] else []

let tear_cache_entry p ~dir =
  match find_files ~suffix:".result" dir with
  | [] -> None
  | files ->
    let rng = rng_of p in
    let path = List.nth files (Prng.int rng (List.length files)) in
    let size = (Unix.stat path).Unix.st_size in
    (* an interior offset: never empty the file entirely (that is just a
       short header, a duller wound than a checksum-failing payload) *)
    let cut = if size <= 2 then 1 else 1 + Prng.int rng (size - 1) in
    (try
       ftruncate_file path cut;
       Some path
     with Unix.Unix_error _ -> None)

let magic_len = String.length Journal.magic

let truncate_tail ~path ~bytes =
  match Unix.stat path with
  | exception Unix.Unix_error _ -> false
  | st ->
    let keep = max magic_len (st.Unix.st_size - bytes) in
    if keep >= st.Unix.st_size then false
    else (
      try
        ftruncate_file path keep;
        true
      with Unix.Unix_error _ -> false)

let truncate_journal_tail p ~path =
  match Unix.stat path with
  | exception Unix.Unix_error _ -> None
  | st ->
    let body = st.Unix.st_size - magic_len in
    if body <= 0 then None
    else
      let cut = 1 + Prng.int (rng_of p) (min 256 body) in
      if truncate_tail ~path ~bytes:cut then Some cut else None
