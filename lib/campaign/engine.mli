(** The campaign engine: runs a batch of {!Job.t}s across a
    {!Pool.run} of worker domains, with per-job result caching
    ({!Cache}), a crash-safe write-ahead journal ({!Journal}), bounded
    retries with deterministic backoff, a per-job wall-clock watchdog,
    graceful shutdown, fault isolation and {!Events} JSONL
    observability.

    {2 Fault model}

    Guest-program failures — traps, aborts, and runaway programs cut off
    by the VM's [max_cycles] budget — are {e results}, not engine
    failures: the job completes [Done] and the reporting layer decides
    what a trapped variant means (for Juliet bad cases it is the expected
    outcome; for benchmark rows it becomes a status annotation). An
    engine-level failure is an OCaml exception escaping the runner (a
    simulator bug, out-of-memory, an injected fault in tests): the job is
    retried up to [retries] extra times — sleeping a deterministic
    exponential backoff with seeded jitter between attempts — and then
    marked {!Failed}, leaving every other job of the campaign unaffected.
    A job that exceeds [job_timeout] wall-clock seconds is marked
    {!Timed_out} without retry (a runaway job would only hang the
    watchdog again); its worker domain is abandoned, not killed — OCaml
    domains cannot be cancelled — so it keeps a core busy until the VM
    cycle budget trips, but the campaign itself proceeds. Corrupted
    cache entries are quarantined ({!Cache.lookup}) and surfaced as
    [cache_corrupt] (or [cache_crc_mismatch] when the CRC framing caught
    a torn write) events; the job then runs as a normal miss.

    {2 Crash consistency}

    With [?journal], every completion (including cache hits) is appended
    to a {!Journal} — framed, CRC32-checksummed, flushed — {e before}
    the [on_job_done] hook fires, so a process death at any instant
    loses at most the record being written, and that record is detected
    and dropped on replay. On startup, journaled entries are
    {e authoritative}: a job whose digest is already in the journal is
    served from it (a [journal_replay] event; [from_journal] outcome),
    ahead of the cache and without re-running — this is what
    [--resume] builds on. With [?stop], a polled cancellation flag
    (typically set from a SIGINT/SIGTERM handler) drains the campaign
    gracefully: jobs already started run to completion and are
    journaled; jobs not yet started complete as {!Skipped} (never
    journaled, so resume re-runs exactly those), and the final event is
    [campaign_interrupted] instead of [campaign_end].

    {2 Process-exit contract}

    After a campaign with {!Timed_out} jobs, the abandoned watchdog
    domains are still running (they cannot be cancelled) and may keep
    running until their VM cycle budget trips. A caller that has flushed
    its outputs (journal, event log, aggregate files) must therefore
    terminate via [Stdlib.exit] — which runs [at_exit] and then ends the
    process immediately — rather than returning from the program and
    leaving the runtime (or any landing pad that joins domains) to wait
    on work that may take arbitrarily long. The campaign binaries all
    end with an explicit [Stdlib.exit].

    {2 Determinism}

    Each job constructs its own VM state from scratch inside the runner
    (there is no shared mutable state in [lib/vm]; the workload PRNG
    [__seed] is a guest global living in per-run simulated memory), and
    outcomes are collected into a slot array indexed by submission order,
    so aggregation over the outcome array is independent of worker count
    and scheduling. [run ~workers:8 jobs] and [run ~workers:1 jobs]
    produce equal outcome data (modulo [elapsed] timings), and an
    interrupted-then-resumed campaign converges to the same outcome data
    as an uninterrupted one — the chaos tests assert this byte-for-byte
    on the rendered tables. Retry backoff delays are derived from
    [(digest, attempt)] alone, so a replayed campaign sleeps
    identically. *)

type status = Journal.status =
  | Done
  | Failed of string
  | Timed_out
  | Skipped
      (** not run: the campaign was interrupted before the job started.
          Never journaled — resume re-runs exactly the skipped jobs. *)

type outcome = {
  job : Job.t;
  digest : string;
  status : status;
  result : Ifp_vm.Vm.result option;  (** [Some] iff [status = Done] *)
  from_cache : bool;
  from_journal : bool;
      (** served from a replayed write-ahead journal entry *)
  attempts : int;
      (** runner invocations: 0 on a cache hit or journal replay,
          else >= 1 *)
  elapsed : float;  (** seconds, including cache probe and backoff *)
}

type stats = {
  jobs : int;
  completed : int;
  failed : int;
  timed_out : int;
  skipped : int;  (** jobs not started due to graceful shutdown *)
  cache_hits : int;
  journal_replays : int;
  retries : int;  (** total extra attempts across all jobs *)
  workers : int;
  wall_seconds : float;
  interrupted : bool;  (** the [stop] flag fired during this run *)
}

val backoff_delay : base:float -> digest:string -> attempt:int -> float
(** The deterministic retry delay: [base * 2^(attempt-1)] scaled by a
    jitter factor in [[1, 1.5)] seeded from [(digest, attempt)], capped
    at 5 s. [0.0] when [base <= 0.0]. Exposed for tests. *)

val run_job :
  ?fatal:(exn -> bool) ->
  cache:Cache.t option ->
  journal:Journal.t option ->
  on_job_done:(outcome -> unit) ->
  log:Events.t ->
  retries:int ->
  backoff:float ->
  job_timeout:float option ->
  runner:(Job.t -> Ifp_vm.Vm.result) ->
  digest:string ->
  Job.t ->
  outcome
(** One job through the full single-job path — journal-replay check,
    cache probe (with quarantine), retries/backoff/watchdog, journal
    append, events — without the batch scaffolding of {!run}. This is
    the experiment daemon's per-request entry point ([lib/service]), so
    daemon-served results flow through {e exactly} the code a direct
    {!run} would use and stay byte-identical to it. [digest] must be
    {!Job.digest} of [job] (computed by the caller, which typically also
    uses it as the cache-shard key).

    [fatal] (default: nothing) selects exceptions that must {e escape}
    the per-job isolation: instead of retries and a [Failed] outcome
    they re-raise to the caller, so a supervisor (the daemon's worker
    supervision) can treat them as a worker crash and restart the
    domain. *)

val default_runner : Job.t -> Ifp_vm.Vm.result
(** [Engines.run ~config:job.config job.prog] — the [runner] default.
    The engine named by [config.engine] executes the job; since engines
    are observationally identical and the field is excluded from
    {!Job.config_fingerprint}, cached and journaled results remain
    valid across engine choices. *)

val run :
  ?workers:int ->
  ?cache:Cache.t ->
  ?journal:Journal.t ->
  ?log:Events.t ->
  ?retries:int ->
  ?backoff:float ->
  ?job_timeout:float ->
  ?stop:(unit -> bool) ->
  ?on_job_done:(outcome -> unit) ->
  ?runner:(Job.t -> Ifp_vm.Vm.result) ->
  Job.t list ->
  outcome array * stats
(** Runs the batch. Defaults: [workers = 1], no cache, no journal, no
    log, [retries = 2] (i.e. up to 3 attempts), [backoff = 0.05] seconds
    base delay (pass [0.0] for immediate retries), no [job_timeout]
    (jobs may run forever), [stop] never fires, [on_job_done] is a no-op,
    [runner] = [Vm.run] with the job's config.

    [on_job_done] fires once per {e fresh} completion (run or cache
    hit — not journal replays, not skips), after the journal record for
    it is durably on disk; it runs on the worker domain that finished
    the job. The chaos harness ({!Chaos.arm_kill}) uses it to crash the
    process at a seeded point.

    Outcomes are in submission order. Events emitted: [campaign_start],
    [job_start], [job_finish], [cache_hit], [cache_corrupt],
    [cache_crc_mismatch], [journal_replay], [retry] (with [attempt] and
    [delay]), [job_timeout], [job_failed], and finally [campaign_end] —
    or [campaign_interrupted] when [stop] fired. *)

val stats_json : stats -> (string * Events.json) list
(** The stats record as JSON fields (used both for the [campaign_end] /
    [campaign_interrupted] event and for the end-of-run aggregate
    file). *)
