(** The campaign engine: runs a batch of {!Job.t}s across a
    {!Pool.run} of worker domains, with per-job result caching
    ({!Cache}), bounded retries, fault isolation and {!Events} JSONL
    observability.

    {2 Fault model}

    Guest-program failures — traps, aborts, and runaway programs cut off
    by the VM's [max_cycles] budget — are {e results}, not engine
    failures: the job completes [Done] and the reporting layer decides
    what a trapped variant means (for Juliet bad cases it is the expected
    outcome; for benchmark rows it becomes a status annotation). An
    engine-level failure is an OCaml exception escaping the runner (a
    simulator bug, out-of-memory, an injected fault in tests): the job is
    retried up to [retries] extra times and then marked {!Failed},
    leaving every other job of the campaign unaffected.

    {2 Determinism}

    Each job constructs its own VM state from scratch inside the runner
    (there is no shared mutable state in [lib/vm]; the workload PRNG
    [__seed] is a guest global living in per-run simulated memory), and
    outcomes are collected into a slot array indexed by submission order,
    so aggregation over the outcome array is independent of worker count
    and scheduling. [run ~workers:8 jobs] and [run ~workers:1 jobs]
    produce equal outcome data (modulo [elapsed] timings). *)

type status = Done | Failed of string

type outcome = {
  job : Job.t;
  digest : string;
  status : status;
  result : Ifp_vm.Vm.result option;  (** [Some] iff [status = Done] *)
  from_cache : bool;
  attempts : int;  (** runner invocations: 0 on a cache hit, else >= 1 *)
  elapsed : float;  (** seconds, including cache probe *)
}

type stats = {
  jobs : int;
  completed : int;
  failed : int;
  cache_hits : int;
  retries : int;  (** total extra attempts across all jobs *)
  workers : int;
  wall_seconds : float;
}

val run :
  ?workers:int ->
  ?cache:Cache.t ->
  ?log:Events.t ->
  ?retries:int ->
  ?runner:(Job.t -> Ifp_vm.Vm.result) ->
  Job.t list ->
  outcome array * stats
(** Runs the batch. Defaults: [workers = 1], no cache, no log,
    [retries = 2] (i.e. up to 3 attempts), [runner] = [Vm.run] with the
    job's config. Outcomes are in submission order. Events emitted:
    [campaign_start], [job_start], [job_finish], [cache_hit], [retry],
    [job_failed], [campaign_end]. *)

val stats_json : stats -> (string * Events.json) list
(** The stats record as JSON fields (used both for the [campaign_end]
    event and for the end-of-run aggregate file). *)
