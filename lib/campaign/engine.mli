(** The campaign engine: runs a batch of {!Job.t}s across a
    {!Pool.run} of worker domains, with per-job result caching
    ({!Cache}), bounded retries with deterministic backoff, a per-job
    wall-clock watchdog, fault isolation and {!Events} JSONL
    observability.

    {2 Fault model}

    Guest-program failures — traps, aborts, and runaway programs cut off
    by the VM's [max_cycles] budget — are {e results}, not engine
    failures: the job completes [Done] and the reporting layer decides
    what a trapped variant means (for Juliet bad cases it is the expected
    outcome; for benchmark rows it becomes a status annotation). An
    engine-level failure is an OCaml exception escaping the runner (a
    simulator bug, out-of-memory, an injected fault in tests): the job is
    retried up to [retries] extra times — sleeping a deterministic
    exponential backoff with seeded jitter between attempts — and then
    marked {!Failed}, leaving every other job of the campaign unaffected.
    A job that exceeds [job_timeout] wall-clock seconds is marked
    {!Timed_out} without retry (a runaway job would only hang the
    watchdog again); its worker domain is abandoned, not killed — OCaml
    domains cannot be cancelled — so it keeps a core busy until the VM
    cycle budget trips, but the campaign itself proceeds. Corrupted
    cache entries are quarantined ({!Cache.lookup}) and surfaced as
    [cache_corrupt] events; the job then runs as a normal miss.

    {2 Determinism}

    Each job constructs its own VM state from scratch inside the runner
    (there is no shared mutable state in [lib/vm]; the workload PRNG
    [__seed] is a guest global living in per-run simulated memory), and
    outcomes are collected into a slot array indexed by submission order,
    so aggregation over the outcome array is independent of worker count
    and scheduling. [run ~workers:8 jobs] and [run ~workers:1 jobs]
    produce equal outcome data (modulo [elapsed] timings). Retry backoff
    delays are derived from [(digest, attempt)] alone, so a replayed
    campaign sleeps identically. *)

type status = Done | Failed of string | Timed_out

type outcome = {
  job : Job.t;
  digest : string;
  status : status;
  result : Ifp_vm.Vm.result option;  (** [Some] iff [status = Done] *)
  from_cache : bool;
  attempts : int;  (** runner invocations: 0 on a cache hit, else >= 1 *)
  elapsed : float;  (** seconds, including cache probe and backoff *)
}

type stats = {
  jobs : int;
  completed : int;
  failed : int;
  timed_out : int;
  cache_hits : int;
  retries : int;  (** total extra attempts across all jobs *)
  workers : int;
  wall_seconds : float;
}

val backoff_delay : base:float -> digest:string -> attempt:int -> float
(** The deterministic retry delay: [base * 2^(attempt-1)] scaled by a
    jitter factor in [[1, 1.5)] seeded from [(digest, attempt)], capped
    at 5 s. [0.0] when [base <= 0.0]. Exposed for tests. *)

val run :
  ?workers:int ->
  ?cache:Cache.t ->
  ?log:Events.t ->
  ?retries:int ->
  ?backoff:float ->
  ?job_timeout:float ->
  ?runner:(Job.t -> Ifp_vm.Vm.result) ->
  Job.t list ->
  outcome array * stats
(** Runs the batch. Defaults: [workers = 1], no cache, no log,
    [retries = 2] (i.e. up to 3 attempts), [backoff = 0.05] seconds base
    delay (pass [0.0] for immediate retries), no [job_timeout] (jobs may
    run forever), [runner] = [Vm.run] with the job's config. Outcomes
    are in submission order. Events emitted: [campaign_start],
    [job_start], [job_finish], [cache_hit], [cache_corrupt], [retry]
    (with [attempt] and [delay]), [job_timeout], [job_failed],
    [campaign_end]. *)

val stats_json : stats -> (string * Events.json) list
(** The stats record as JSON fields (used both for the [campaign_end]
    event and for the end-of-run aggregate file). *)
