(** A [Domain]-based worker pool (OCaml 5, no external dependencies).

    Tasks are drained from a mutex/condition work queue by [workers]
    domains. With [workers <= 1] the tasks run inline on the calling
    domain in submission order — the guaranteed-serial reference path the
    determinism tests compare against.

    The pool is oblivious to results: tasks are [unit -> unit] thunks
    that record their own output (typically into a per-index slot of a
    pre-sized array, which is race-free since every slot has exactly one
    writer). Tasks must not raise; a stray exception is caught and
    dropped so one bad task cannot tear down a worker. *)

val run : workers:int -> (unit -> unit) array -> unit
(** Runs every task to completion before returning. Spawns
    [min workers (Array.length tasks)] domains ([workers <= 1]: none). *)
