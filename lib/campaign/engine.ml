module Vm = Ifp_vm.Vm

type status = Journal.status = Done | Failed of string | Timed_out | Skipped

type outcome = {
  job : Job.t;
  digest : string;
  status : status;
  result : Vm.result option;
  from_cache : bool;
  from_journal : bool;
  attempts : int;
  elapsed : float;
}

type stats = {
  jobs : int;
  completed : int;
  failed : int;
  timed_out : int;
  skipped : int;
  cache_hits : int;
  journal_replays : int;
  retries : int;
  workers : int;
  wall_seconds : float;
  interrupted : bool;
}

(* Engine dispatch lives in the config: a job whose config names the
   closure engine (or the reference) runs under it, with no caller
   plumbing. Safe for caching because engines are observationally
   identical and [engine] is excluded from config fingerprints. *)
let default_runner (job : Job.t) =
  Ifp_vm.Engines.run ~config:job.Job.config job.Job.prog

let outcome_string (r : Vm.result) =
  match r.Vm.outcome with
  | Vm.Finished _ -> "finished"
  | Vm.Trapped t -> "trapped: " ^ Ifp_isa.Trap.to_string t
  | Vm.Aborted m -> "aborted: " ^ Vm.abort_reason_string m

(* Deterministic retry backoff: [base * 2^(attempt-1)], scaled by a
   jitter in [1, 1.5) drawn from a PRNG seeded by (digest, attempt) — so
   two campaigns replaying the same jobs sleep identically, while jobs
   colliding on a flaky shared resource spread out instead of retrying
   in lockstep. *)
let backoff_delay ~base ~digest ~attempt =
  if base <= 0.0 then 0.0
  else
    let dseed =
      let hex = String.sub digest 0 (min 15 (String.length digest)) in
      try Int64.of_string ("0x" ^ hex) with Failure _ -> 1L
    in
    let rng =
      Ifp_util.Prng.create (Ifp_util.Prng.mix2 dseed (Int64.of_int attempt))
    in
    let jitter = 1.0 +. Ifp_util.Prng.float rng 0.5 in
    Float.min (base *. (2.0 ** float_of_int (attempt - 1)) *. jitter) 5.0

(* One runner invocation, optionally under a wall-clock watchdog. The
   stdlib has no timed condition wait, so the watchdog spawns the
   attempt on its own domain and polls an atomic result slot against the
   deadline. On timeout the domain is abandoned (OCaml domains cannot be
   killed): it keeps burning a core until its VM budget trips, but the
   campaign itself moves on. If the domain limit is hit, the attempt
   falls back to running inline (no watchdog, but the job still runs).

   [fatal] punches a hole in the isolation: an exception it selects
   (e.g. the experiment daemon's worker-crash sentinel, or OOM) is
   re-raised to the caller instead of becoming a [Failed] outcome, so a
   supervisor above the job layer can see it and restart the worker. *)
let run_attempt ~fatal ~job_timeout ~runner job =
  let attempt () =
    match runner job with
    | result -> `Ok result
    | exception exn when not (fatal exn) -> `Exn (Printexc.to_string exn)
  in
  match job_timeout with
  | None -> attempt ()
  | Some limit -> (
    let slot = Atomic.make None in
    let guarded () =
      match attempt () with r -> r | exception exn -> `Fatal exn
    in
    match Domain.spawn (fun () -> Atomic.set slot (Some (guarded ()))) with
    | exception _ -> attempt ()
    | d ->
      let deadline = Unix.gettimeofday () +. limit in
      let rec wait () =
        match Atomic.get slot with
        | Some (`Fatal exn) ->
          Domain.join d;
          raise exn
        | Some (`Ok _ | `Exn _) as some ->
          Domain.join d;
          (match some with
          | Some (`Ok r) -> `Ok r
          | Some (`Exn e) -> `Exn e
          | _ -> assert false)
        | None ->
          if Unix.gettimeofday () >= deadline then `Timeout
          else (
            Unix.sleepf 0.005;
            wait ())
      in
      wait ())

(* The write-ahead discipline: the record is framed, checksummed and
   flushed before [on_job_done] fires, so a chaos plan (or a real crash)
   that kills the process right after the n-th completion leaves a
   journal replaying to exactly n jobs. *)
let journal_append ~journal ~digest (job : Job.t) status result =
  match journal with
  | None -> ()
  | Some j ->
    Journal.append j
      { Journal.digest; job_name = job.Job.name; status; result }

let run_job ?(fatal = fun _ -> false) ~cache ~journal ~on_job_done ~log
    ~retries ~backoff ~job_timeout ~runner ~digest (job : Job.t) =
  let open Events in
  let t0 = Unix.gettimeofday () in
  let base_fields = [ ("job", String job.Job.name); ("digest", String digest) ] in
  let finish outcome =
    (match outcome.status with
    | Skipped -> ()
    | status ->
      if not outcome.from_journal then (
        journal_append ~journal ~digest job status outcome.result;
        on_job_done outcome));
    outcome
  in
  (* a journaled completion is authoritative: this campaign (or the one
     being resumed) already finished the job, whatever the cache says *)
  match Option.map (fun j -> Journal.find j ~digest) journal with
  | Some (Some entry) ->
    let elapsed = Unix.gettimeofday () -. t0 in
    emit log "journal_replay"
      (base_fields
      @ [ ("status",
           String
             (match entry.Journal.status with
             | Done -> "done"
             | Failed why -> "failed: " ^ why
             | Timed_out -> "timed_out"
             | Skipped -> "skipped"));
          ("elapsed", Float elapsed) ]);
    finish
      { job; digest; status = entry.Journal.status;
        result = entry.Journal.result; from_cache = false;
        from_journal = true; attempts = 0; elapsed }
  | Some None | None -> (
    let cached =
      match cache with
      | None -> Cache.Miss
      | Some c -> Cache.find c ~digest
    in
    match cached with
    | Cache.Hit result ->
      let elapsed = Unix.gettimeofday () -. t0 in
      emit log "cache_hit" (base_fields @ [ ("elapsed", Float elapsed) ]);
      finish
        { job; digest; status = Done; result = Some result; from_cache = true;
          from_journal = false; attempts = 0; elapsed }
    | Cache.Miss | Cache.Quarantined _ ->
      (match cached with
      | Cache.Quarantined { path; reason; crc_mismatch } ->
        emit log
          (if crc_mismatch then "cache_crc_mismatch" else "cache_corrupt")
          (base_fields @ [ ("path", String path); ("reason", String reason) ])
      | _ -> ());
      emit log "job_start" base_fields;
      let max_attempts = 1 + max 0 retries in
      let rec attempt n =
        match run_attempt ~fatal ~job_timeout ~runner job with
        | `Ok result -> (n, `Ok result)
        | `Timeout ->
          (* no retry: a runaway job would just hang the watchdog again *)
          (n, `Timeout)
        | `Exn why ->
          if n < max_attempts then (
            let delay = backoff_delay ~base:backoff ~digest ~attempt:n in
            emit log "retry"
              (base_fields
              @ [ ("attempt", Int n); ("delay", Float delay);
                  ("error", String why) ]);
            if delay > 0.0 then Unix.sleepf delay;
            attempt (n + 1))
          else (n, `Err why)
      in
      let attempts, outcome = attempt 1 in
      let elapsed = Unix.gettimeofday () -. t0 in
      (match outcome with
      | `Ok result ->
        (match cache with
        | Some c -> Cache.store c ~digest ~job_name:job.Job.name result
        | None -> ());
        emit log "job_finish"
          (base_fields
          @ [
              ("elapsed", Float elapsed);
              ("attempts", Int attempts);
              ("outcome", String (outcome_string result));
              ("cycles", Int result.Vm.counters.Ifp_vm.Counters.cycles);
              ("instrs", Int (Ifp_vm.Counters.total_instrs result.Vm.counters));
              ("mem_footprint", Int result.Vm.mem_footprint);
            ]);
        finish
          { job; digest; status = Done; result = Some result;
            from_cache = false; from_journal = false; attempts; elapsed }
      | `Timeout ->
        emit log "job_timeout"
          (base_fields
          @ [ ("elapsed", Float elapsed); ("attempts", Int attempts);
              ("limit", match job_timeout with
                | Some l -> Float l
                | None -> Null) ]);
        finish
          { job; digest; status = Timed_out; result = None;
            from_cache = false; from_journal = false; attempts; elapsed }
      | `Err why ->
        emit log "job_failed"
          (base_fields
          @ [ ("elapsed", Float elapsed); ("attempts", Int attempts);
              ("error", String why) ]);
        finish
          { job; digest; status = Failed why; result = None;
            from_cache = false; from_journal = false; attempts; elapsed }))

let stats_json s =
  let open Events in
  [
    ("jobs", Int s.jobs);
    ("completed", Int s.completed);
    ("failed", Int s.failed);
    ("timed_out", Int s.timed_out);
    ("skipped", Int s.skipped);
    ("cache_hits", Int s.cache_hits);
    ("journal_replays", Int s.journal_replays);
    ("retries", Int s.retries);
    ("workers", Int s.workers);
    ("wall_seconds", Float s.wall_seconds);
    ("interrupted", Bool s.interrupted);
    ( "cache_hit_rate",
      if s.jobs = 0 then Float 0.0
      else Float (float_of_int s.cache_hits /. float_of_int s.jobs) );
  ]

let run ?(workers = 1) ?cache ?journal ?(log = Events.null) ?(retries = 2)
    ?(backoff = 0.05) ?job_timeout ?(stop = fun () -> false)
    ?(on_job_done = fun _ -> ()) ?(runner = default_runner) jobs =
  let open Events in
  let t0 = Unix.gettimeofday () in
  let jobs_arr = Array.of_list jobs in
  let n = Array.length jobs_arr in
  emit log "campaign_start"
    [
      ("jobs", Int n);
      ("workers", Int workers);
      ("retries", Int retries);
      ("job_timeout", match job_timeout with Some l -> Float l | None -> Null);
      ("cache", match cache with
        | Some c -> String (Cache.dir c)
        | None -> Null);
      ("model_digest", String Job.model_digest);
    ];
  (* digests are computed up front on the dispatching domain, against the
     pristine programs — before any run can touch them *)
  let digests = Array.map Job.digest jobs_arr in
  let slots = Array.make n None in
  let tasks =
    Array.init n (fun i () ->
        slots.(i) <-
          Some
            (* graceful-shutdown drain: jobs already started run to
               completion (and are journaled); jobs not yet started are
               skipped, so resume re-runs exactly those *)
            (if stop () then
               { job = jobs_arr.(i); digest = digests.(i); status = Skipped;
                 result = None; from_cache = false; from_journal = false;
                 attempts = 0; elapsed = 0.0 }
             else
               run_job ~cache ~journal ~on_job_done ~log ~retries ~backoff
                 ~job_timeout ~runner ~digest:digests.(i) jobs_arr.(i)))
  in
  Pool.run ~workers tasks;
  let outcomes =
    Array.mapi
      (fun i slot ->
        match slot with
        | Some o -> o
        | None ->
          (* only reachable if the pool dropped a task on the floor *)
          { job = jobs_arr.(i); digest = digests.(i);
            status = Failed "task never ran"; result = None;
            from_cache = false; from_journal = false; attempts = 0;
            elapsed = 0.0 })
      slots
  in
  let stats =
    Array.fold_left
      (fun s o ->
        {
          s with
          completed = (s.completed + match o.status with Done -> 1 | _ -> 0);
          failed = (s.failed + match o.status with Failed _ -> 1 | _ -> 0);
          timed_out =
            (s.timed_out + match o.status with Timed_out -> 1 | _ -> 0);
          skipped = (s.skipped + match o.status with Skipped -> 1 | _ -> 0);
          cache_hits = (s.cache_hits + if o.from_cache then 1 else 0);
          journal_replays =
            (s.journal_replays + if o.from_journal then 1 else 0);
          retries = s.retries + max 0 (o.attempts - 1);
        })
      { jobs = n; completed = 0; failed = 0; timed_out = 0; skipped = 0;
        cache_hits = 0; journal_replays = 0; retries = 0; workers;
        wall_seconds = 0.0; interrupted = false }
      outcomes
  in
  let interrupted = stop () || stats.skipped > 0 in
  let stats =
    { stats with wall_seconds = Unix.gettimeofday () -. t0; interrupted }
  in
  emit log
    (if interrupted then "campaign_interrupted" else "campaign_end")
    (stats_json stats);
  (outcomes, stats)
