module Crc32 = Ifp_util.Crc32

type status = Done | Failed of string | Timed_out | Skipped

type entry = {
  digest : string;
  job_name : string;
  status : status;
  result : Ifp_vm.Vm.result option;
}

type replay = { entries : entry list; torn_tail : bool; valid_bytes : int }

type t = {
  path : string;
  mutable oc : out_channel option;  (** [None] after [close] *)
  mutex : Mutex.t;
  seen : (string, entry) Hashtbl.t;
  n_replayed : int;
}

exception Bad_magic of string

(* 16 bytes, newline-terminated so `head -c 16` identifies the file *)
let magic = "ifp-journal-v1.\n"

(* a frame longer than this is garbage, not a record — refuse to
   allocate for it (a torn length word can read as anything) *)
let max_frame = 64 * 1024 * 1024

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xff));
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xff));
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xff));
  Buffer.add_char buf (Char.chr (Int32.to_int v land 0xff))

let get_u32 s pos =
  let b i = Int32.of_int (Char.code s.[pos + i]) in
  Int32.logor
    (Int32.shift_left (b 0) 24)
    (Int32.logor
       (Int32.shift_left (b 1) 16)
       (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))

(* reads exactly [n] bytes or returns None (EOF / short read = torn) *)
let read_exact ic n =
  let buf = Bytes.create n in
  match really_input ic buf 0 n with
  | () -> Some (Bytes.unsafe_to_string buf)
  | exception End_of_file -> None

let replay_channel ~path ic =
  (match read_exact ic (String.length magic) with
  | Some m when m = magic -> ()
  | Some _ -> raise (Bad_magic path)
  | None ->
    (* shorter than the magic: an empty file is a fresh journal, a
       partial header is not a journal we can trust *)
    if in_channel_length ic = 0 then () else raise (Bad_magic path));
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  let valid = ref (min (in_channel_length ic) (String.length magic)) in
  let torn = ref false in
  let rec loop () =
    match read_exact ic 8 with
    | None -> if pos_in ic > !valid then torn := true
    | Some frame -> (
      let len = Int32.to_int (get_u32 frame 0) in
      let crc = get_u32 frame 4 in
      if len <= 0 || len > max_frame then torn := true
      else
        match read_exact ic len with
        | None -> torn := true
        | Some payload ->
          if Crc32.string payload <> crc then torn := true
          else
            match (Marshal.from_string payload 0 : entry) with
            | exception _ -> torn := true
            | e ->
              if not (Hashtbl.mem seen e.digest) then
                order := e.digest :: !order;
              Hashtbl.replace seen e.digest e;
              valid := pos_in ic;
              loop ())
  in
  loop ();
  let entries =
    List.rev_map (fun digest -> Hashtbl.find seen digest) !order
  in
  { entries; torn_tail = !torn; valid_bytes = !valid }

let replay ~path =
  match open_in_bin path with
  | exception Sys_error _ ->
    { entries = []; torn_tail = false; valid_bytes = 0 }
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> replay_channel ~path ic)

let create ~path =
  let oc = open_out_bin path in
  output_string oc magic;
  flush oc;
  { path; oc = Some oc; mutex = Mutex.create (); seen = Hashtbl.create 64;
    n_replayed = 0 }

let open_resume ~path =
  if not (Sys.file_exists path) then
    (create ~path, { entries = []; torn_tail = false; valid_bytes = 0 })
  else
    let rep = replay ~path in
    (* physically drop the torn tail, then append after the last intact
       frame: the file on disk is again a pure prefix of valid frames.
       An empty pre-existing file gets its magic written below. *)
    let oc =
      if rep.valid_bytes = 0 then (
        let oc = open_out_bin path in
        output_string oc magic;
        flush oc;
        Some oc)
      else
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        Unix.ftruncate fd rep.valid_bytes;
        let _ = Unix.lseek fd 0 Unix.SEEK_END in
        Some (Unix.out_channel_of_descr fd)
    in
    let seen = Hashtbl.create 64 in
    List.iter (fun e -> Hashtbl.replace seen e.digest e) rep.entries;
    ( { path; oc; mutex = Mutex.create (); seen;
        n_replayed = List.length rep.entries },
      rep )

let find t ~digest =
  Mutex.lock t.mutex;
  let e = Hashtbl.find_opt t.seen digest in
  Mutex.unlock t.mutex;
  e

let replayed t = t.n_replayed

let append t entry =
  assert (entry.status <> Skipped);
  let payload = Marshal.to_string entry [] in
  let buf = Buffer.create (String.length payload + 8) in
  put_u32 buf (Int32.of_int (String.length payload));
  put_u32 buf (Crc32.string payload);
  Buffer.add_string buf payload;
  Mutex.lock t.mutex;
  Hashtbl.replace t.seen entry.digest entry;
  (match t.oc with
  | None -> ()
  | Some oc -> (
    try
      Buffer.output_buffer oc buf;
      flush oc
    with Sys_error _ -> ()));
  Mutex.unlock t.mutex

let close t =
  Mutex.lock t.mutex;
  (match t.oc with
  | None -> ()
  | Some oc ->
    t.oc <- None;
    (try flush oc with Sys_error _ -> ());
    (try close_out oc with Sys_error _ -> ()));
  Mutex.unlock t.mutex
