(** The campaign job model.

    A job is one [workload × Vm.config] cell of the evaluation matrix: a
    lowered IR program plus the VM configuration to run it under. Jobs
    are content-addressed — {!digest} hashes the pretty-printed program,
    a stable fingerprint of the configuration, and {!model_digest} (the
    cost-model and ISA constants) — so the on-disk result cache is
    automatically invalidated whenever the program, the configuration or
    the simulator's cost model changes. *)

type t = {
  name : string;
      (** unique human-readable id within one campaign, e.g.
          ["em3d/subheap"] or ["juliet/overflow-stack-direct/bad/wrapped"] *)
  group : string;  (** grouping key for aggregation, e.g. the workload name *)
  variant : string;  (** configuration label, e.g. ["subheap-np"] *)
  config : Ifp_vm.Vm.config;
  prog : Ifp_compiler.Ir.program;
  salt : string;
      (** extra digest input (default [""]) distinguishing jobs whose
          runner computes something other than a plain [Engines.run] of
          [prog × config] — e.g. the fuzz driver's oracle-battery jobs,
          which must never share cache entries with ordinary runs of the
          same program *)
}

val make :
  ?salt:string ->
  name:string ->
  group:string ->
  variant:string ->
  config:Ifp_vm.Vm.config ->
  Ifp_compiler.Ir.program ->
  t

val config_fingerprint : Ifp_vm.Vm.config -> string
(** Stable, human-readable rendering of every configuration field. Two
    configs have equal fingerprints iff they are semantically equal. *)

val model_digest : string
(** Hex digest over the VM cost-model constants and the ISA tag-layout
    constants. Changing either (e.g. retuning {!Ifp_vm.Cost}) changes
    every job digest and thus invalidates all cached results. *)

val digest : t -> string
(** Hex content digest of the job: program text + config fingerprint +
    [salt] + {!model_digest}. Does {e not} include
    [name]/[group]/[variant], so identical work submitted under
    different labels shares cache entries. *)
