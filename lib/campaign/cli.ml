let install_interrupt () =
  let flag = Atomic.make false in
  let arm signum =
    try
      Sys.set_signal signum
        (Sys.Signal_handle (fun _ -> Atomic.set flag true))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  arm Sys.sigint;
  arm Sys.sigterm;
  fun () -> Atomic.get flag

let open_journal ~path ~resume =
  match path with
  | None -> (None, None)
  | Some path ->
    if resume then
      let j, rep = Journal.open_resume ~path in
      (Some j, Some rep)
    else (Some (Journal.create ~path), None)

let open_log ~path ~resume =
  match path with
  | None -> (Events.null, false)
  | Some path ->
    if resume then Events.open_append ~path
    else (Events.create ~path, false)

let emit_resumed log ~replay ~log_truncated =
  match replay with
  | None -> ()
  | Some (rep : Journal.replay) ->
    Events.emit log "campaign_resumed"
      [
        ("replayed", Events.Int (List.length rep.Journal.entries));
        ("journal_torn_tail", Events.Bool rep.Journal.torn_tail);
        ("log_torn_line", Events.Bool log_truncated);
      ]

let finish ?hint ~journal ~log ~interrupted () =
  (* order matters: the journal is the source of truth for resume — it
     goes down first; the log close is best-effort observability *)
  Option.iter Journal.close journal;
  Events.close log;
  if interrupted then (
    Option.iter prerr_endline hint;
    (* 130 = 128 + SIGINT, the conventional "killed by Ctrl-C" status;
       we use it for SIGTERM drains too — callers only need nonzero *)
    Stdlib.exit 130)
  else
    (* explicit exit, not a return from main: abandoned watchdog domains
       (Timed_out jobs) may still be running and must not be waited on
       once every output is flushed — see the Engine process-exit
       contract *)
    Stdlib.exit 0
