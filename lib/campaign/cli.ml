(* Shared plumbing for the campaign binaries (and the experiment
   daemon): signal-driven stop flags, journal/log opening under
   --resume, and the process-exit contract. *)

type signals = {
  stop : unit -> bool;  (** true once any armed signal has been seen *)
  restore : unit -> unit;
      (** reinstall the handlers that were live before [install_stop];
          idempotent, safe to call from a finaliser path *)
}

(* The stop-flag wiring, factored so a long-running process (the
   experiment daemon) can install it for one serving phase and cleanly
   uninstall on drain: [restore] puts back whatever handlers were
   previously installed, so nested or repeated install/restore cycles
   compose. *)
let install_stop ?(signals = [ Sys.sigint; Sys.sigterm ]) () =
  let flag = Atomic.make false in
  let saved =
    List.filter_map
      (fun signum ->
        match
          Sys.signal signum
            (Sys.Signal_handle (fun _ -> Atomic.set flag true))
        with
        | prev -> Some (signum, prev)
        | exception (Invalid_argument _ | Sys_error _) -> None)
      signals
  in
  let restored = Atomic.make false in
  {
    stop = (fun () -> Atomic.get flag);
    restore =
      (fun () ->
        if not (Atomic.exchange restored true) then
          List.iter
            (fun (signum, prev) ->
              try Sys.set_signal signum prev
              with Invalid_argument _ | Sys_error _ -> ())
            saved);
  }

let install_interrupt () = (install_stop ()).stop

(* "64k" / "100M" / "2G" / plain bytes — for --cache-max-bytes flags *)
let parse_bytes s =
  let s = String.trim s in
  let len = String.length s in
  if len = 0 then None
  else
    let scale, digits =
      match s.[len - 1] with
      | 'k' | 'K' -> (1024, String.sub s 0 (len - 1))
      | 'm' | 'M' -> (1024 * 1024, String.sub s 0 (len - 1))
      | 'g' | 'G' -> (1024 * 1024 * 1024, String.sub s 0 (len - 1))
      | '0' .. '9' -> (1, s)
      | _ -> (0, s)
    in
    if scale = 0 then None
    else
      match int_of_string_opt digits with
      | Some n when n >= 0 -> Some (n * scale)
      | _ -> None

let open_journal ~path ~resume =
  match path with
  | None -> (None, None)
  | Some path ->
    if resume then
      let j, rep = Journal.open_resume ~path in
      (Some j, Some rep)
    else (Some (Journal.create ~path), None)

let open_log ~path ~resume =
  match path with
  | None -> (Events.null, false)
  | Some path ->
    if resume then Events.open_append ~path
    else (Events.create ~path, false)

let emit_resumed log ~replay ~log_truncated =
  match replay with
  | None -> ()
  | Some (rep : Journal.replay) ->
    Events.emit log "campaign_resumed"
      [
        ("replayed", Events.Int (List.length rep.Journal.entries));
        ("journal_torn_tail", Events.Bool rep.Journal.torn_tail);
        ("log_torn_line", Events.Bool log_truncated);
      ]

let finish ?hint ?signals ~journal ~log ~interrupted () =
  (* order matters: the journal is the source of truth for resume — it
     goes down first; the log close is best-effort observability *)
  Option.iter Journal.close journal;
  Events.close log;
  Option.iter (fun s -> s.restore ()) signals;
  if interrupted then (
    Option.iter prerr_endline hint;
    (* 130 = 128 + SIGINT, the conventional "killed by Ctrl-C" status;
       we use it for SIGTERM drains too — callers only need nonzero *)
    Stdlib.exit 130)
  else
    (* explicit exit, not a return from main: abandoned watchdog domains
       (Timed_out jobs) may still be running and must not be waited on
       once every output is flushed — see the Engine process-exit
       contract *)
    Stdlib.exit 0
