module Vm = Ifp_vm.Vm
module Cost = Ifp_vm.Cost
module Tag = Ifp_isa.Tag
module Insn = Ifp_isa.Insn

type t = {
  name : string;
  group : string;
  variant : string;
  config : Vm.config;
  prog : Ifp_compiler.Ir.program;
  salt : string;
}

let make ?(salt = "") ~name ~group ~variant ~config prog =
  { name; group; variant; config; prog; salt }

let variant_string (v : Vm.variant) =
  match v with
  | Vm.Baseline -> "baseline"
  | Vm.Ifp -> "ifp"
  | Vm.Ifp_no_promote -> "ifp-no-promote"

let alloc_string (a : Vm.alloc_kind) =
  match a with
  | Vm.Alloc_baseline -> "baseline"
  | Vm.Alloc_wrapped -> "wrapped"
  | Vm.Alloc_subheap -> "subheap"
  | Vm.Alloc_mixed -> "mixed"

let fault_string (c : Vm.config) =
  match c.fault_plan with
  | None -> "none"
  | Some p -> Ifp_faultinject.Fault.fingerprint p

let config_fingerprint (c : Vm.config) =
  (* temporal mode appends rather than occupying a fixed field: every
     spatial fingerprint — and so every existing cache entry — is
     unchanged *)
  Printf.sprintf
    "variant=%s;alloc=%s;seed=%Ld;max_cycles=%d;narrowing=%b;\
     infer_alloc_types=%b;trace_limit=%d;fault=%s%s"
    (variant_string c.variant) (alloc_string c.alloc) c.seed c.max_cycles
    c.narrowing c.infer_alloc_types c.trace_limit (fault_string c)
    (if c.temporal then ";temporal=true" else "")

let model_digest =
  let ifp_kinds =
    [
      Insn.Promote; Insn.Ifpmac; Insn.Ldbnd; Insn.Stbnd; Insn.Ifpbnd;
      Insn.Ifpadd; Insn.Ifpidx; Insn.Ifpchk; Insn.Ifpextract; Insn.Ifpmd;
    ]
  in
  let cost_part =
    Printf.sprintf "alu=%d;mul=%d;div=%d;fp=%d;branch=%d;call=%d;mem=%d;miss=%d;promote=%d;walk=%d;mac=%d;ifp=%s"
      Cost.alu Cost.mul Cost.div Cost.fp Cost.branch Cost.call Cost.mem
      Cost.miss_penalty Cost.promote_base Cost.walk_per_elem Cost.mac_check
      (String.concat ","
         (List.map (fun k -> string_of_int (Cost.ifp_cycles k)) ifp_kinds))
  in
  let isa_part =
    Printf.sprintf "granule=%d;lo_max_obj=%d;lo_max_elems=%d;sh_max_elems=%d;gt_entries=%d"
      Tag.granule Tag.local_offset_max_object Tag.local_offset_max_elements
      Tag.subheap_max_elements Tag.global_table_entries
  in
  Digest.to_hex (Digest.string (cost_part ^ "|" ^ isa_part))

let digest t =
  let prog_text = Ifp_compiler.Ir_pp.program_to_string t.prog in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ model_digest; config_fingerprint t.config; t.salt; prog_text ]))
